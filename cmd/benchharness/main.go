// Command benchharness runs the paper-reproduction experiment suite
// (E1-E14 and E16-E19, see DESIGN.md §4 and EXPERIMENTS.md) and prints one
// report line per experiment. It exits non-zero if any experiment fails.
//
// With -observe <file>, it additionally measures the flow tracer's
// per-flow overhead at 1, 8 and 64 concurrent sessions and writes the
// points as JSON (the committed BENCH_observe.json baseline).
//
// With -gateway <file>, it measures the mediation gateway's per-flow
// overhead versus a direct mediator listener at the same concurrency
// levels, plus the shed-reject latency, and writes the result as JSON
// (the committed BENCH_gateway.json baseline).
//
// With -translate <file>, it measures γ translation directly —
// interpreted tree-walk vs the compiled fast path with a pooled
// environment — for the flickr and shopping case-study programs at the
// same concurrency levels, and writes the result as JSON (the committed
// BENCH_translate.json baseline).
//
// With -cache <file>, it measures the cross-flow response cache end to
// end (EXPERIMENTS.md E16): both case-study search mediators deployed
// through starlink.Deploy, cache off vs on, repeated-read and
// unique-query workloads at the same concurrency levels, and writes the
// result as JSON (the committed BENCH_cache.json baseline).
//
// With -balance <file>, it measures the backend replica-set balancing
// machinery's per-flow overhead — a mediator dialling a fixed service
// address vs one routing every checkout through a single-replica p2c set
// with the active prober running — at the same concurrency levels, and
// writes the result as JSON (the committed BENCH_balance.json baseline).
//
// With -discover <file>, it measures the steady-state cost of dynamic
// service discovery — a mediator balancing over a static backend set vs
// one whose identical set is driven by a file discovery source polling
// every 25ms — at the same concurrency levels, and writes the result as
// JSON (the committed BENCH_discover.json baseline).
//
// With -deadline <file>, it measures the per-flow cost of flow-deadline
// budgets on the healthy path — a mediator with budgets disabled vs one
// with a generous budget armed, so every SetDeadline clamp and
// remaining-budget check runs but nothing trips — at the same
// concurrency levels, and writes the result as JSON (the committed
// BENCH_deadline.json baseline).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"starlink/internal/harness"
)

func main() {
	observeOut := flag.String("observe", "", "write tracer-overhead measurements (JSON) to this file")
	gatewayOut := flag.String("gateway", "", "write gateway-overhead measurements (JSON) to this file")
	translateOut := flag.String("translate", "", "write γ-translation interpreted-vs-compiled measurements (JSON) to this file")
	cacheOut := flag.String("cache", "", "write response-cache off-vs-on measurements (JSON) to this file")
	balanceOut := flag.String("balance", "", "write backend-balancer overhead measurements (JSON) to this file")
	discoverOut := flag.String("discover", "", "write discovery steady-state overhead measurements (JSON) to this file")
	deadlineOut := flag.String("deadline", "", "write flow-deadline budget overhead measurements (JSON) to this file")
	flag.Parse()

	fmt.Println("Starlink experiment harness — MIDDLEWARE 2011 reproduction")
	fmt.Println()
	failures := 0
	for _, r := range harness.RunAll() {
		fmt.Println(r.String())
		if !r.OK() {
			failures++
		}
	}
	fmt.Println()
	if failures > 0 {
		fmt.Printf("%d experiment(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("all experiments passed")

	if *observeOut != "" {
		points, err := harness.MeasureObserveOverhead([]int{1, 8, 64}, 50)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchharness: observe measurement:", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(points, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*observeOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		fmt.Printf("tracer-overhead measurements written to %s\n", *observeOut)
		for _, p := range points {
			fmt.Printf("  %2d session(s): off %.0fns/flow, on %.0fns/flow (%+.1f%%)\n",
				p.Sessions, p.OffNsPerFlow, p.OnNsPerFlow, p.OverheadPct)
		}
	}

	if *gatewayOut != "" {
		bench, err := harness.MeasureGatewayOverhead([]int{1, 8, 64}, 400)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchharness: gateway measurement:", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*gatewayOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		fmt.Printf("gateway-overhead measurements written to %s\n", *gatewayOut)
		for _, p := range bench.Points {
			fmt.Printf("  %2d session(s): direct %.0fns/flow, gateway %.0fns/flow (%+.1f%%)\n",
				p.Sessions, p.DirectNsPerFlow, p.GatewayNsPerFlow, p.OverheadPct)
		}
		fmt.Printf("  shed reject: %.0fns mean\n", bench.ShedNsMean)
	}

	if *translateOut != "" {
		report, err := harness.MeasureTranslateOverhead([]int{1, 8, 64}, 2000)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchharness: translate measurement:", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*translateOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		fmt.Printf("translation measurements written to %s\n", *translateOut)
		for _, p := range report.Points {
			fmt.Printf("  %-8s %-11s %2d session(s): %.0fns/op, %.1f allocs/op\n",
				p.CaseStudy, p.Mode, p.Sessions, p.NsPerOp, p.AllocsPerOp)
		}
		for cs, r := range report.AllocsReduction {
			fmt.Printf("  %s: compiled path allocs/op reduced %.0f%%\n", cs, r*100)
		}
	}

	if *cacheOut != "" {
		report, err := harness.MeasureCacheOverhead([]int{1, 8, 64}, 100)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchharness: cache measurement:", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*cacheOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		fmt.Printf("response-cache measurements written to %s\n", *cacheOut)
		for _, p := range report.Points {
			fmt.Printf("  %-8s %-6s %-6s %2d session(s): %5d exchanges, p50 %.0fµs\n",
				p.CaseStudy, p.Workload, p.Mode, p.Sessions, p.ServiceExchanges, p.P50Ns/1e3)
		}
		for _, cs := range []string{"flickr", "shopping"} {
			fmt.Printf("  %s: %.0fx fewer service exchanges, p50 -%.0f%%, miss overhead %+.2f%%\n",
				cs, report.ExchangeReduction[cs], report.P50Reduction[cs]*100, report.MissOverheadPct[cs])
		}
	}

	if *balanceOut != "" {
		bench, err := harness.MeasureBalanceOverhead([]int{1, 8, 64}, 400)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchharness: balance measurement:", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*balanceOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		fmt.Printf("balancer-overhead measurements written to %s\n", *balanceOut)
		for _, p := range bench.Points {
			fmt.Printf("  %2d session(s): direct %.0fns/flow, balanced %.0fns/flow (%+.1f%%)\n",
				p.Sessions, p.DirectNsPerFlow, p.BalancedNsPerFlow, p.OverheadPct)
		}
	}

	if *discoverOut != "" {
		bench, err := harness.MeasureDiscoverOverhead([]int{1, 8, 64}, 400)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchharness: discover measurement:", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*discoverOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		fmt.Printf("discovery-overhead measurements written to %s\n", *discoverOut)
		for _, p := range bench.Points {
			fmt.Printf("  %2d session(s): static %.0fns/flow, discovered %.0fns/flow (%+.1f%%)\n",
				p.Sessions, p.StaticNsPerFlow, p.DiscoveredNsPerFlow, p.OverheadPct)
		}
	}

	if *deadlineOut != "" {
		bench, err := harness.MeasureDeadlineOverhead([]int{1, 8, 64}, 400)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchharness: deadline measurement:", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*deadlineOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		fmt.Printf("deadline-overhead measurements written to %s\n", *deadlineOut)
		for _, p := range bench.Points {
			fmt.Printf("  %2d session(s): off %.0fns/flow, on %.0fns/flow (%+.1f%%)\n",
				p.Sessions, p.OffNsPerFlow, p.OnNsPerFlow, p.OverheadPct)
		}
	}
}
