// Command benchharness runs the paper-reproduction experiment suite
// (E1-E12, see DESIGN.md §4 and EXPERIMENTS.md) and prints one report line
// per experiment. It exits non-zero if any experiment fails.
package main

import (
	"fmt"
	"os"

	"starlink/internal/harness"
)

func main() {
	fmt.Println("Starlink experiment harness — MIDDLEWARE 2011 reproduction")
	fmt.Println()
	failures := 0
	for _, r := range harness.RunAll() {
		fmt.Println(r.String())
		if !r.OK() {
			failures++
		}
	}
	fmt.Println()
	if failures > 0 {
		fmt.Printf("%d experiment(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("all experiments passed")
}
