package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestExportAndList(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "models")
	if err := run([]string{"export-models", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 12 {
		t.Errorf("exported %d files", len(entries))
	}
	if err := run([]string{"list", "-models", dir}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"zap"},
		{"export-models"},
		{"list", "-models", "/no/such"},
		{"run", "-models", "/no/such", "-mediator", "x"},
		{"run"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
	// Unknown mediator spec in a valid models dir.
	dir := filepath.Join(t.TempDir(), "m")
	if err := run([]string{"export-models", dir}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"run", "-models", dir, "-mediator", "nope"}); err == nil {
		t.Error("unknown mediator accepted")
	}
}
