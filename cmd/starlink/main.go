// Command starlink runs an application-middleware mediator from model
// files, and exports the built-in case-study models.
//
// Usage:
//
//	starlink run -models <dir> -mediator <name> [-listen addr] [-admin addr] [-backends] [-discover]
//	starlink gateway -models <dir> -gateway <name> [-listen addr] [-admin addr]
//	starlink export-models <dir>
//	starlink list -models <dir>
//
// The gateway subcommand hosts every route's mediator behind one
// sniffing front door; SIGHUP hot-reloads all of them from the models
// directory with zero downtime.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"starlink/internal/automata"
	"starlink/internal/casestudy"
	"starlink/starlink"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "starlink:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: starlink run|export-models|list ...")
	}
	switch args[0] {
	case "run":
		return runMediator(args[1:])
	case "gateway":
		return runGateway(args[1:])
	case "export-models":
		if len(args) != 2 {
			return fmt.Errorf("usage: starlink export-models <dir>")
		}
		return ExportCaseStudyModels(args[1])
	case "list":
		return listModels(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func runMediator(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	modelsDir := fs.String("models", "models", "models directory")
	name := fs.String("mediator", "", "mediator spec name")
	listen := fs.String("listen", "", "listen address override")
	admin := fs.String("admin", "", "admin endpoint address (overrides the spec's admin directive)")
	backends := fs.Bool("backends", false, "dump the spec's backend replica sets at startup")
	discover := fs.Bool("discover", false, "dump the spec's discovery sources at startup")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("-mediator is required")
	}
	models, err := starlink.LoadModels(*modelsDir)
	if err != nil {
		return err
	}
	dep, err := starlink.Deploy(*name, models, starlink.DeployOptions{Listen: *listen, Admin: *admin})
	if err != nil {
		return err
	}
	defer dep.Close()
	med, ok := dep.(*starlink.MediatorDeployment)
	if !ok {
		return fmt.Errorf("%q is not a mediator spec (use the gateway subcommand)", *name)
	}
	fmt.Printf("mediator %s listening on %s\n", *name, dep.Addr())
	if med.Admin != nil {
		fmt.Printf("admin endpoint on http://%s (/metrics /healthz /flows /automaton.dot /backends /discovery)\n", med.Admin.Addr())
	}
	if *backends {
		dumpBackends(med.Mediator)
	}
	if *discover {
		dumpDiscovery(med.Mediator)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return nil
}

// dumpBackends prints every backend replica set the mediator balances
// across — config line per set, state line per replica.
func dumpBackends(med *starlink.Mediator) {
	snaps := med.Backends()
	if snaps == nil {
		fmt.Println("no backend replica sets declared")
		return
	}
	for _, ss := range snaps {
		probe := "passive health only"
		if ss.ProbeInterval > 0 {
			probe = fmt.Sprintf("probe every %v (timeout %v)", ss.ProbeInterval, ss.ProbeTimeout)
		}
		fmt.Printf("backend %s: %s, %s, eject after %d fails (cooloff %v..%v, min live %d)\n",
			ss.Name, ss.Policy, probe, ss.FailThreshold, ss.Cooloff, ss.MaxCooloff, ss.MinLive)
		for _, rs := range ss.Replicas {
			state := "live"
			switch {
			case rs.Probation:
				state = "probation"
			case !rs.Live:
				state = "ejected"
			}
			fmt.Printf("  replica %s: %s\n", rs.Addr, state)
		}
	}
}

// dumpDiscovery prints every discovery source driving a backend set's
// membership — source and hysteresis tuning per set, then the members.
func dumpDiscovery(med *starlink.Mediator) {
	snaps := med.Discovery()
	if snaps == nil {
		fmt.Println("no discovery sources declared")
		return
	}
	for _, ds := range snaps {
		fmt.Printf("discover %s: %s, refresh %s (debounce %s, min ttl %s, min live %d)\n",
			ds.Set, ds.Source, ds.Refresh, ds.Debounce, ds.MinTTL, ds.MinLive)
		for _, addr := range ds.Members {
			fmt.Printf("  member %s\n", addr)
		}
		for _, addr := range ds.Pending {
			fmt.Printf("  pending %s (inside debounce)\n", addr)
		}
	}
}

func runGateway(args []string) error {
	fs := flag.NewFlagSet("gateway", flag.ContinueOnError)
	modelsDir := fs.String("models", "models", "models directory")
	name := fs.String("gateway", "", "gateway spec name")
	listen := fs.String("listen", "", "front-door address override")
	admin := fs.String("admin", "", "metrics endpoint address (overrides the spec's admin directive)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("-gateway is required")
	}
	models, err := starlink.LoadModels(*modelsDir)
	if err != nil {
		return err
	}
	dep, err := starlink.Deploy(*name, models, starlink.DeployOptions{Listen: *listen, Admin: *admin})
	if err != nil {
		return err
	}
	defer dep.Close()
	gw, ok := dep.(*starlink.GatewayDeployment)
	if !ok {
		return fmt.Errorf("%q is not a gateway spec (use the run subcommand)", *name)
	}
	fmt.Printf("gateway %s listening on %s (routes: %s)\n",
		*name, dep.Addr(), strings.Join(gw.Gateway.Routes(), ", "))
	if gw.Admin != nil {
		fmt.Printf("metrics endpoint on http://%s/metrics\n", gw.Admin.Addr())
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for s := range sig {
		if s != syscall.SIGHUP {
			break
		}
		fresh, err := starlink.LoadModels(*modelsDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "starlink: reload aborted:", err)
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err = gw.Reload(ctx, fresh)
		cancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "starlink: reload:", err)
			continue
		}
		fmt.Println("gateway reloaded")
	}
	fmt.Println("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return dep.Shutdown(ctx)
}

func listModels(args []string) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	modelsDir := fs.String("models", "models", "models directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	models, err := starlink.LoadModels(*modelsDir)
	if err != nil {
		return err
	}
	printSorted := func(kind string, names []string) {
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%-12s %s\n", kind, n)
		}
	}
	printSorted("automaton", keys(models.Automata))
	printSorted("merged", keys(models.Merged))
	printSorted("mdl", keys(models.MDL))
	printSorted("routes", keys(models.Routes))
	printSorted("equiv", keys(models.Equivalences))
	printSorted("mediator", keys(models.Mediators))
	printSorted("gateway", keys(models.Gateways))
	return nil
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// ExportCaseStudyModels writes the Flickr/Picasa and Add/Plus models to
// dir in their on-disk DSL forms.
func ExportCaseStudyModels(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writeAutomaton := func(file string, a *automata.Automaton) error {
		data, err := a.EncodeXML()
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dir, file), data, 0o644)
	}
	writeMerged := func(file string, m *automata.Merged) error {
		data, err := m.EncodeXML()
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dir, file), data, 0o644)
	}
	if err := writeAutomaton("flickr-usage.automaton.xml", casestudy.FlickrUsage()); err != nil {
		return err
	}
	if err := writeAutomaton("picasa-usage.automaton.xml", casestudy.PicasaUsage()); err != nil {
		return err
	}
	if err := writeAutomaton("add-usage.automaton.xml", casestudy.AddUsage()); err != nil {
		return err
	}
	if err := writeAutomaton("plus-usage.automaton.xml", casestudy.PlusUsage()); err != nil {
		return err
	}
	if err := writeMerged("flickr-xmlrpc-to-picasa-rest.merged.xml", casestudy.XMLRPCMediator()); err != nil {
		return err
	}
	if err := writeMerged("flickr-soap-to-picasa-rest.merged.xml", casestudy.SOAPMediator()); err != nil {
		return err
	}
	autoMerged, err := automata.Merge(casestudy.FlickrUsage(), casestudy.PicasaUsage(), automata.MergeOptions{
		Name:  "AFlickr+APicasa-auto",
		Equiv: casestudy.Equivalence(),
	})
	if err != nil {
		return err
	}
	if err := writeMerged("flickr-picasa-auto.merged.xml", autoMerged); err != nil {
		return err
	}
	if err := writeMerged("ssdp-to-slp.merged.xml", casestudy.DiscoveryMediator()); err != nil {
		return err
	}
	if err := writeMerged("picasa-to-flickr.merged.xml", casestudy.ReverseMediator()); err != nil {
		return err
	}
	files := map[string]string{
		"upnp-to-slp.typemap":    casestudy.DiscoveryTypeMapDoc,
		"discovery.mediator":     casestudy.DiscoveryMediatorSpecDoc,
		"picasa.routes":          casestudy.PicasaRoutesDoc,
		"flickr-picasa.equiv":    casestudy.EquivalenceDoc,
		"giop.mdl":               casestudy.GIOPMDLDoc,
		"http.mdl":               casestudy.HTTPMDLDoc,
		"flickr-xmlrpc.mediator": casestudy.XMLRPCMediatorSpecDoc,
		"flickr-soap.mediator":   casestudy.SOAPMediatorSpecDoc,
		"flickr.gateway":         casestudy.GatewaySpecDoc,
	}
	for file, content := range files {
		if err := os.WriteFile(filepath.Join(dir, file), []byte(content), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("exported %d model files to %s\n", 9+len(files), dir)
	return nil
}
