package main

import (
	"os"
	"path/filepath"
	"testing"

	"starlink/internal/casestudy"
)

func writeGIOPMDL(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "giop.mdl")
	if err := os.WriteFile(path, []byte(casestudy.GIOPMDLDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheck(t *testing.T) {
	if err := run([]string{"check", writeGIOPMDL(t)}); err != nil {
		t.Fatal(err)
	}
}

func TestParsePacket(t *testing.T) {
	mdlPath := writeGIOPMDL(t)
	// Compose a packet via the harness-tested codec path is overkill here:
	// reuse the check path with an invalid packet to exercise errors, then
	// a trivially composable GIOP request.
	pktPath := filepath.Join(t.TempDir(), "pkt.bin")
	if err := os.WriteFile(pktPath, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"parse", mdlPath, pktPath}); err == nil {
		t.Error("garbage packet accepted")
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"check"},
		{"zap", "x"},
		{"check", "/no/such/file.mdl"},
		{"parse", writeGIOPMDL(t)},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
	bad := filepath.Join(t.TempDir(), "bad.mdl")
	if err := os.WriteFile(bad, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"check", bad}); err == nil {
		t.Error("bad MDL accepted")
	}
}
