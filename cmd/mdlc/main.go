// Command mdlc validates and exercises Message Description Language
// documents.
//
// Usage:
//
//	mdlc check <file.mdl>             validate and summarise a document
//	mdlc parse <file.mdl> <packet>    parse a packet file and print the
//	                                  abstract message tree (use "-" for
//	                                  stdin)
package main

import (
	"fmt"
	"io"
	"os"

	"starlink/internal/mdl"
	"starlink/internal/mdl/binenc"
	"starlink/internal/mdl/textenc"
	"starlink/internal/mdl/xmlenc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mdlc:", err)
		os.Exit(1)
	}
}

func registry() *mdl.Registry {
	reg := &mdl.Registry{}
	binenc.Register(reg)
	textenc.Register(reg)
	xmlenc.Register(reg)
	return reg
}

func run(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: mdlc check|parse <file.mdl> [packet]")
	}
	data, err := os.ReadFile(args[1])
	if err != nil {
		return err
	}
	spec, err := mdl.ParseString(string(data))
	if err != nil {
		return err
	}
	codec, err := registry().NewCodec(spec)
	if err != nil {
		return err
	}
	switch args[0] {
	case "check":
		fmt.Printf("spec %s (%s encoding): %d message layout(s)\n",
			spec.Name, spec.Encoding, len(spec.Messages))
		for _, ms := range spec.Messages {
			fmt.Printf("  %-20s %d item(s), %d rule(s)\n", ms.Name, len(ms.Items), len(ms.Rules))
			for _, r := range ms.Rules {
				fmt.Printf("    rule %s = %s\n", r.Field, r.Value)
			}
		}
		return nil
	case "parse":
		if len(args) != 3 {
			return fmt.Errorf("usage: mdlc parse <file.mdl> <packet|->")
		}
		var packet []byte
		if args[2] == "-" {
			packet, err = io.ReadAll(os.Stdin)
		} else {
			packet, err = os.ReadFile(args[2])
		}
		if err != nil {
			return err
		}
		msg, err := codec.Parse(packet)
		if err != nil {
			return err
		}
		fmt.Println(msg.String())
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}
