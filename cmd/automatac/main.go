// Command automatac validates, merges and visualises Starlink automata.
//
// Usage:
//
//	automatac check <file.automaton.xml|file.merged.xml>
//	automatac dot <file.automaton.xml|file.merged.xml>
//	automatac merge -equiv <file.equiv> -name <name> [-o out.xml] <a1.xml> <a2.xml>
//	automatac mergeable -equiv <file.equiv> <a1.xml> <a2.xml>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"starlink/internal/automata"
	"starlink/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "automatac:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: automatac check|dot|merge ...")
	}
	switch args[0] {
	case "check":
		return withFile(args, func(path string, data []byte) error {
			kind, err := describe(path, data)
			if err != nil {
				return err
			}
			fmt.Println(kind)
			return nil
		})
	case "dot":
		return withFile(args, func(path string, data []byte) error {
			if strings.HasSuffix(path, ".merged.xml") {
				m, err := automata.UnmarshalMerged(strings.NewReader(string(data)))
				if err != nil {
					return err
				}
				fmt.Print(m.DOT())
				return nil
			}
			a, err := automata.ParseAutomaton(string(data))
			if err != nil {
				return err
			}
			fmt.Print(a.DOT())
			return nil
		})
	case "merge":
		return merge(args[1:])
	case "mergeable":
		return mergeable(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func withFile(args []string, f func(path string, data []byte) error) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: automatac %s <file>", args[0])
	}
	data, err := os.ReadFile(args[1])
	if err != nil {
		return err
	}
	return f(args[1], data)
}

func describe(path string, data []byte) (string, error) {
	if strings.HasSuffix(path, ".merged.xml") {
		m, err := automata.UnmarshalMerged(strings.NewReader(string(data)))
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("merged %s: %d states (%d bicolored), %d transitions, %s",
			m.Name, len(m.States), len(m.BicoloredStates()), len(m.Transitions), m.Strength), nil
	}
	a, err := automata.ParseAutomaton(string(data))
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("automaton %s (color %d): %d states, %d transitions, %d operations",
		a.Name, a.Color, len(a.States), len(a.Transitions), len(a.Operations())), nil
}

// mergeable prints the Definition 7 verdict plus the per-operation
// pairing report.
func mergeable(args []string) error {
	fs := flag.NewFlagSet("mergeable", flag.ContinueOnError)
	equivFile := fs.String("equiv", "", "equivalence table file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 2 {
		return fmt.Errorf("usage: automatac mergeable [-equiv f] <a1.xml> <a2.xml>")
	}
	load := func(path string) (*automata.Automaton, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return automata.ParseAutomaton(string(data))
	}
	a1, err := load(rest[0])
	if err != nil {
		return err
	}
	a2, err := load(rest[1])
	if err != nil {
		return err
	}
	var eq *automata.Equivalence
	if *equivFile != "" {
		data, err := os.ReadFile(*equivFile)
		if err != nil {
			return err
		}
		eq, err = core.ParseEquivalence(string(data))
		if err != nil {
			return err
		}
	}
	merged, err := automata.Merge(a1, a2, automata.MergeOptions{Equiv: eq})
	if err != nil {
		fmt.Printf("%s and %s are NOT mergeable: %v\n", a1.Name, a2.Name, err)
		return err
	}
	fmt.Printf("%s and %s are mergeable (%s)\n", a1.Name, a2.Name, merged.Strength)
	for _, p := range merged.Pairings {
		targets := ""
		for i, op := range p.A2Ops {
			if i > 0 {
				targets += " + "
			}
			targets += op.Request
		}
		if targets == "" {
			targets = "-"
		}
		fmt.Printf("  %-40s %-14s %s\n", p.A1Request, p.Kind, targets)
	}
	return nil
}

func merge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	equivFile := fs.String("equiv", "", "equivalence table file")
	name := fs.String("name", "", "merged automaton name")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 2 {
		return fmt.Errorf("usage: automatac merge [-equiv f] [-name n] [-o out] <a1.xml> <a2.xml>")
	}
	load := func(path string) (*automata.Automaton, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return automata.ParseAutomaton(string(data))
	}
	a1, err := load(rest[0])
	if err != nil {
		return err
	}
	a2, err := load(rest[1])
	if err != nil {
		return err
	}
	var eq *automata.Equivalence
	if *equivFile != "" {
		data, err := os.ReadFile(*equivFile)
		if err != nil {
			return err
		}
		eq, err = core.ParseEquivalence(string(data))
		if err != nil {
			return err
		}
	}
	merged, err := automata.Merge(a1, a2, automata.MergeOptions{Name: *name, Equiv: eq})
	if err != nil {
		return err
	}
	data, err := merged.EncodeXML()
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Print(string(data))
		return nil
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "merged %s (%s, %d bicolored states) -> %s\n",
		merged.Name, merged.Strength, len(merged.BicoloredStates()), *out)
	return nil
}
