package main

import (
	"os"
	"path/filepath"
	"testing"

	"starlink/internal/casestudy"
)

func writeModels(t *testing.T) (dir, flickrPath, picasaPath, equivPath, mergedPath string) {
	t.Helper()
	dir = t.TempDir()
	fl, err := casestudy.FlickrUsage().EncodeXML()
	if err != nil {
		t.Fatal(err)
	}
	pi, err := casestudy.PicasaUsage().EncodeXML()
	if err != nil {
		t.Fatal(err)
	}
	mg, err := casestudy.XMLRPCMediator().EncodeXML()
	if err != nil {
		t.Fatal(err)
	}
	flickrPath = filepath.Join(dir, "flickr.automaton.xml")
	picasaPath = filepath.Join(dir, "picasa.automaton.xml")
	equivPath = filepath.Join(dir, "fp.equiv")
	mergedPath = filepath.Join(dir, "m.merged.xml")
	for path, data := range map[string][]byte{
		flickrPath: fl,
		picasaPath: pi,
		equivPath:  []byte(casestudy.EquivalenceDoc),
		mergedPath: mg,
	} {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir, flickrPath, picasaPath, equivPath, mergedPath
}

func TestCheckAndDot(t *testing.T) {
	_, fl, _, _, mg := writeModels(t)
	for _, args := range [][]string{
		{"check", fl},
		{"check", mg},
		{"dot", fl},
		{"dot", mg},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestMergeCommand(t *testing.T) {
	dir, fl, pi, eq, _ := writeModels(t)
	out := filepath.Join(dir, "out.merged.xml")
	if err := run([]string{"merge", "-equiv", eq, "-name", "demo", "-o", out, fl, pi}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"check", out}); err != nil {
		t.Fatalf("merged output does not validate: %v", err)
	}
	// To stdout.
	if err := run([]string{"merge", "-equiv", eq, fl, pi}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	_, fl, pi, _, _ := writeModels(t)
	cases := [][]string{
		nil,
		{"zap"},
		{"check"},
		{"check", "/no/such"},
		{"dot", "/no/such"},
		{"merge", fl},
		{"merge", "-equiv", "/no/such", fl, pi},
		{"merge", fl, pi}, // no equivalence: not mergeable
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

func TestMergeableCommand(t *testing.T) {
	_, fl, pi, eq, _ := writeModels(t)
	if err := run([]string{"mergeable", "-equiv", eq, fl, pi}); err != nil {
		t.Fatal(err)
	}
	// Without an equivalence table the pair is not mergeable.
	if err := run([]string{"mergeable", fl, pi}); err == nil {
		t.Error("not-mergeable pair reported success")
	}
	if err := run([]string{"mergeable", fl}); err == nil {
		t.Error("missing operand accepted")
	}
}
