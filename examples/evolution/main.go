// Evolution: the paper's hypothesis 3 — API migrations handled with only
// the models (§5.2) — demonstrated live.
//
// The Picasa service ships a v2 API that renames its query parameters
// (q -> query, max-results -> limit). The program first shows the v1
// route model failing against the v2 service, then "edits" one line of
// the route model and reruns the same client successfully. No code, no
// merged automaton, no client changes — one model line.
//
// Run with: go run ./examples/evolution
package main

import (
	"fmt"
	"log"
	"strings"

	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/protocol/xmlrpc"
	"starlink/internal/services/photostore"
	"starlink/internal/services/picasa"
	"starlink/starlink"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	store := photostore.New()
	picV2, err := picasa.NewWithConfig(store, picasa.Config{
		SearchParam: "query", LimitParam: "limit",
	})
	if err != nil {
		return err
	}
	defer picV2.Close()
	fmt.Println("Picasa v2 (renamed parameters: query, limit) at", picV2.Addr())

	search := func(routesDoc, label string) error {
		routes, err := starlink.ParseRoutes(routesDoc)
		if err != nil {
			return err
		}
		restBinder, err := bind.NewRESTBinder(routes)
		if err != nil {
			return err
		}
		med, err := starlink.NewMediator(starlink.EngineConfig{
			Merged: casestudy.XMLRPCMediator(),
			Sides: map[int]*starlink.EngineSide{
				1: {Binder: &bind.XMLRPCBinder{Path: "/services/xmlrpc", Defs: casestudy.FlickrUsage().Messages}},
				2: {Binder: restBinder, Target: picV2.Addr()},
			},
			HostMap: map[string]string{casestudy.PicasaHost: picV2.Addr()},
		})
		if err != nil {
			return err
		}
		if err := med.Start("127.0.0.1:0"); err != nil {
			return err
		}
		defer med.Close()
		c := xmlrpc.NewClient(med.Addr(), "/services/xmlrpc")
		defer c.Close()
		v, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
			"text": "tree", "per_page": int64(2),
		})
		if err != nil {
			fmt.Printf("  [%s] search FAILED: %v\n", label, err)
			return nil
		}
		photos := v.(map[string]xmlrpc.Value)["photos"].([]xmlrpc.Value)
		fmt.Printf("  [%s] search OK: %d photos\n", label, len(photos))
		return nil
	}

	fmt.Println("\n1. Stale v1 route model against the v2 API:")
	fmt.Println("     route picasa.photos.search GET /data/feed/api/all q=q max-results=max-results -> feed")
	if err := search(casestudy.PicasaRoutesDoc, "v1 routes"); err != nil {
		return err
	}

	fmt.Println("\n2. The one-line model edit:")
	v2Routes := strings.ReplaceAll(casestudy.PicasaRoutesDoc,
		"q=q max-results=max-results", "query=q limit=max-results")
	fmt.Println("     route picasa.photos.search GET /data/feed/api/all query=q limit=max-results -> feed")
	if err := search(v2Routes, "v2 routes"); err != nil {
		return err
	}

	fmt.Println("\nMerged automaton, binders, engine, client: all unchanged.")
	return nil
}
