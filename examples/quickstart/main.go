// Quickstart: the paper's Fig. 7/8 scenario in ~80 lines.
//
// An unmodified CORBA-style client calls Add(x, y) over IIOP/GIOP. The
// only available service is a SOAP service exposing Plus(x, y). Starlink
// merges the two API usage automata automatically — resolving the
// operation-name mismatch — binds the merge to the two middlewares, and
// runs the resulting mediator. The client never learns it talked to SOAP.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strconv"

	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/protocol/giop"
	"starlink/internal/protocol/soap"
	"starlink/starlink"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The existing SOAP service: int Plus(int, int).
	plus, err := soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
		"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			x, _ := strconv.Atoi(params[0].Value)
			y, _ := strconv.Atoi(params[1].Value)
			return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	})
	if err != nil {
		return err
	}
	defer plus.Close()
	fmt.Println("SOAP service Plus(x,y) at", plus.Addr())

	// 2. Model both sides' API usage protocols and merge them. The only
	// application-specific input is the equivalence z ≅ result.
	merged, err := starlink.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), starlink.MergeOptions{
		Name:  "Add+Plus",
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		return err
	}
	fmt.Printf("merged automaton: %s (%d states, %s)\n",
		merged.Name, len(merged.States), merged.Strength)

	// 3. Bind the merge to the concrete middlewares and start the mediator.
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		return err
	}
	med, err := starlink.NewMediator(starlink.EngineConfig{
		Merged: merged,
		Sides: map[int]*starlink.EngineSide{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: plus.Addr()},
		},
	})
	if err != nil {
		return err
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer med.Close()
	fmt.Println("Starlink mediator at", med.Addr())

	// 4. The unmodified IIOP client calls Add against the mediator.
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		return err
	}
	defer client.Close()
	for _, pair := range [][2]int64{{20, 22}, {7, 11}, {-5, 100}} {
		results, err := client.Invoke("Add", giop.IntParam(pair[0]), giop.IntParam(pair[1]))
		if err != nil {
			return err
		}
		fmt.Printf("IIOP Add(%d, %d) = %s   (answered by SOAP Plus)\n",
			pair[0], pair[1], results[0].ValueString())
	}
	return nil
}
