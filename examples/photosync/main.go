// Photosync: the paper's Section 5.1 case study, end to end.
//
// A photo-sync tool written years ago against the Flickr XML-RPC API
// (search photos, fetch their info, read and post comments) must now work
// against a Picasa-style REST/GData service. The two services differ in
// operation names, parameter names, behaviour sequences (Picasa delivers
// photo URLs directly in the search feed; Flickr needs getInfo) and
// middleware (XML-RPC vs REST).
//
// Starlink loads the developer-written merged automaton (Figs. 3, 9, 10)
// and runs it as a mediator; the unmodified Flickr client completes its
// whole workflow against Picasa.
//
// Run with: go run ./examples/photosync
package main

import (
	"fmt"
	"log"

	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/protocol/xmlrpc"
	"starlink/internal/services/photostore"
	"starlink/internal/services/picasa"
	"starlink/starlink"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The Picasa-style service (simulated; same wire formats as Fig. 1).
	store := photostore.New()
	pic, err := picasa.New(store)
	if err != nil {
		return err
	}
	defer pic.Close()
	fmt.Println("Picasa REST service at", pic.Addr())

	// The mediator: the hand-authored merged automaton of Fig. 3 bound to
	// XML-RPC (client side) and REST (service side).
	routes, err := starlink.ParseRoutes(casestudy.PicasaRoutesDoc)
	if err != nil {
		return err
	}
	restBinder, err := bind.NewRESTBinder(routes)
	if err != nil {
		return err
	}
	med, err := starlink.NewMediator(starlink.EngineConfig{
		Merged: casestudy.XMLRPCMediator(),
		Sides: map[int]*starlink.EngineSide{
			1: {Binder: &bind.XMLRPCBinder{Path: "/services/xmlrpc", Defs: casestudy.FlickrUsage().Messages}},
			2: {Binder: restBinder, Target: pic.Addr()},
		},
		HostMap: map[string]string{casestudy.PicasaHost: pic.Addr()},
	})
	if err != nil {
		return err
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer med.Close()
	fmt.Println("Starlink mediator at", med.Addr())
	fmt.Println()

	// The legacy Flickr client, completely unchanged: it believes it talks
	// to Flickr's XML-RPC endpoint.
	c := xmlrpc.NewClient(med.Addr(), "/services/xmlrpc")
	defer c.Close()

	fmt.Println("flickr.photos.search(text=tree, per_page=3)")
	v, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
		"api_key": "demo", "text": "tree", "per_page": int64(3),
	})
	if err != nil {
		return err
	}
	photos := v.(map[string]xmlrpc.Value)["photos"].([]xmlrpc.Value)
	for _, p := range photos {
		st := p.(map[string]xmlrpc.Value)
		fmt.Printf("  photo %v  %q (by %v)\n", st["id"], st["title"], st["owner"])
	}

	first := photos[0].(map[string]xmlrpc.Value)["id"].(string)
	fmt.Printf("\nflickr.photos.getInfo(photo_id=%s)   [Fig. 10: no Picasa call — cache]\n", first)
	v, err = c.Call(casestudy.FlickrGetInfo, map[string]xmlrpc.Value{"photo_id": first})
	if err != nil {
		return err
	}
	info := v.(map[string]xmlrpc.Value)
	fmt.Printf("  title=%q url=%v\n", info["title"], info["url"])

	fmt.Printf("\nflickr.photos.comments.getList(photo_id=%s)\n", first)
	v, err = c.Call(casestudy.FlickrGetComments, map[string]xmlrpc.Value{"photo_id": first})
	if err != nil {
		return err
	}
	comments := v.(map[string]xmlrpc.Value)["comments"].([]xmlrpc.Value)
	for _, cm := range comments {
		st := cm.(map[string]xmlrpc.Value)
		fmt.Printf("  [%v] %v: %v\n", st["id"], st["author"], st["text"])
	}

	fmt.Printf("\nflickr.photos.comments.addComment(photo_id=%s, ...)\n", first)
	v, err = c.Call(casestudy.FlickrAddComment, map[string]xmlrpc.Value{
		"photo_id": first, "comment_text": "synced via Starlink",
	})
	if err != nil {
		return err
	}
	fmt.Printf("  comment_id=%v\n", v.(map[string]xmlrpc.Value)["comment_id"])

	// Show the comment really landed in the Picasa store.
	stored, err := store.Comments(first)
	if err != nil {
		return err
	}
	fmt.Printf("\nPicasa store now holds %d comment(s) on %s; last: %q by %s\n",
		len(stored), first, stored[len(stored)-1].Text, stored[len(stored)-1].Author)
	return nil
}
