// Soapbridge: the SOAP half of the case study, driven entirely by model
// files — the deployment path of Section 5.1.
//
// The program exports the case-study models to a directory, patches the
// deployment spec with the live Picasa address, loads everything back
// through the public API, and starts the mediator. It then contrasts the
// Starlink mediator with the naive protocol-only bridge on the same
// workload: the SOAP Flickr client succeeds through the mediator and
// fails through the bridge (the Section 1 argument, live).
//
// Run with: go run ./examples/soapbridge
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"starlink/internal/bind"
	"starlink/internal/bridge"
	"starlink/internal/casestudy"
	"starlink/internal/protocol/soap"
	"starlink/internal/services/photostore"
	"starlink/internal/services/picasa"
	"starlink/starlink"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	store := photostore.New()
	pic, err := picasa.New(store)
	if err != nil {
		return err
	}
	defer pic.Close()
	fmt.Println("Picasa REST service at", pic.Addr())

	// Materialise the model files, as `starlink export-models` would.
	dir, err := os.MkdirTemp("", "starlink-models-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := writeModels(dir, pic.Addr()); err != nil {
		return err
	}

	models, err := starlink.LoadModels(dir)
	if err != nil {
		return err
	}
	med, err := starlink.Deploy("flickr-soap", models, starlink.DeployOptions{Listen: "127.0.0.1:0"})
	if err != nil {
		return err
	}
	defer med.Close()
	fmt.Println("Starlink mediator (from model files) at", med.Addr())

	// The unmodified SOAP Flickr client, through the mediator.
	c := soap.NewClient(med.Addr(), "/services/soap")
	defer c.Close()
	results, err := c.Call(casestudy.FlickrSearch,
		soap.Param{Name: "text", Value: "cat"},
		soap.Param{Name: "per_page", Value: "2"},
	)
	if err != nil {
		return err
	}
	var ids []string
	for _, p := range results {
		if p.Name == "photo_id" {
			ids = append(ids, p.Value)
		}
	}
	fmt.Printf("mediated search(cat) -> %v\n", ids)
	info, err := c.Call(casestudy.FlickrGetInfo, soap.Param{Name: "photo_id", Value: ids[0]})
	if err != nil {
		return err
	}
	for _, p := range info {
		if p.Name == "url" {
			fmt.Printf("mediated getInfo(%s).url = %s\n", ids[0], p.Value)
		}
	}
	if _, err := c.Call(casestudy.FlickrGetComments, soap.Param{Name: "photo_id", Value: ids[0]}); err != nil {
		return err
	}
	added, err := c.Call(casestudy.FlickrAddComment,
		soap.Param{Name: "photo_id", Value: ids[0]},
		soap.Param{Name: "comment_text", Value: "what a cat"},
	)
	if err != nil {
		return err
	}
	fmt.Printf("mediated addComment -> %s\n", added[0].Value)

	// Now the strawman: a protocol-only bridge on the same workload.
	routes, err := starlink.ParseRoutes(casestudy.PicasaRoutesDoc)
	if err != nil {
		return err
	}
	restBinder, err := bind.NewRESTBinder(routes)
	if err != nil {
		return err
	}
	br := bridge.New(&bind.SOAPBinder{Path: "/services/soap"}, restBinder, pic.Addr())
	if err := br.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer br.Close()
	bc := soap.NewClient(br.Addr(), "/services/soap")
	defer bc.Close()
	if _, err := bc.Call(casestudy.FlickrSearch, soap.Param{Name: "text", Value: "cat"}); err != nil {
		fmt.Printf("\nprotocol-only bridge, same call: FAILS as the paper predicts\n  (%v)\n", err)
		return nil
	}
	return fmt.Errorf("the protocol-only bridge unexpectedly worked")
}

func writeModels(dir, picasaAddr string) error {
	merged, err := casestudy.SOAPMediator().EncodeXML()
	if err != nil {
		return err
	}
	spec := strings.ReplaceAll(casestudy.SOAPMediatorSpecDoc, "127.0.0.1:9002", picasaAddr)
	files := map[string][]byte{
		"flickr-soap-to-picasa-rest.merged.xml": merged,
		"picasa.routes":                         []byte(casestudy.PicasaRoutesDoc),
		"flickr-soap.mediator":                  []byte(spec),
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
