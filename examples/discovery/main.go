// Discovery: mediating heterogeneous service discovery (the Starlink
// lineage's other domain, extended here with application-level
// vocabulary translation).
//
// A UPnP control point multicasts SSDP M-SEARCH requests for
// "urn:schemas-upnp-org:service:Printer:1". The only registry on this
// network is an SLP Directory Agent that advertises
// "service:printer:lpr" — different middleware (HTTP-over-UDP text vs
// binary SLP) and a different service-type vocabulary. The Starlink
// mediator translates both: the maptype() vocabulary table plays the
// role the field-equivalence table plays in the photo case study.
//
// Run with: go run ./examples/discovery
package main

import (
	"fmt"
	"log"

	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/network"
	"starlink/internal/protocol/slp"
	"starlink/internal/protocol/ssdp"
	"starlink/starlink"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The SLP Directory Agent with two printers and a scanner.
	da, err := slp.NewDirectoryAgent("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer da.Close()
	da.Register("service:printer:lpr", slp.URLEntry{URL: "service:printer:lpr://laser.example:515", Lifetime: 300})
	da.Register("service:scanner:sane", slp.URLEntry{URL: "service:scanner:sane://flatbed.example", Lifetime: 300})
	fmt.Println("SLP Directory Agent (binary, UDP) at", da.Addr())

	// The discovery mediator: SSDP on color 1, SLP on color 2.
	slpBinder, err := bind.NewSLPBinder()
	if err != nil {
		return err
	}
	med, err := starlink.NewMediator(starlink.EngineConfig{
		Merged: casestudy.DiscoveryMediator(),
		Sides: map[int]*starlink.EngineSide{
			1: {Binder: &bind.SSDPBinder{}, Net: network.Semantics{Transport: "udp"}},
			2: {Binder: slpBinder, Net: network.Semantics{Transport: "udp"}, Target: da.Addr()},
		},
		Funcs: casestudy.DiscoveryFuncs(),
	})
	if err != nil {
		return err
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer med.Close()
	fmt.Println("Starlink discovery mediator (UDP) at", med.Addr())
	fmt.Println()

	for _, urn := range []string{
		"urn:schemas-upnp-org:service:Printer:1",
		"urn:schemas-upnp-org:service:Scanner:1",
	} {
		fmt.Printf("SSDP M-SEARCH ST=%s\n", urn)
		responses, err := ssdp.Search(med.Addr(), urn, 1, 1)
		if err != nil {
			return err
		}
		for _, r := range responses {
			fmt.Printf("  200 OK  LOCATION=%s\n          USN=%s\n", r.Location, r.USN)
		}
	}
	return nil
}
