GO ?= go

.PHONY: all build test check race bench fault-soak experiments fuzz fmt

all: check

build:
	$(GO) build ./...

# Tier-1: everything must build and every test pass.
test: build
	$(GO) test ./...

# Race-enabled pass over the subsystems with real concurrency: the
# mediation engine (sessions, pooling, lifecycle, retry/redial), the
# network layer (framers, fault injection, the shared connection pool),
# the observability subsystem (lock-free rings, tracer, admin) and the
# mediation gateway (sniffing, admission, hot swap).
race:
	$(GO) test -race ./internal/engine/... ./internal/network/... ./internal/harness/... ./internal/observe/... ./internal/gateway/...

# The full gate: vet, tier-1, and the race pass.
check: test
	$(GO) vet ./...
	$(MAKE) race

# Full benchmark suite with allocation stats; the raw tool output is
# kept in BENCH_pool.json for comparison across changes, and the
# tracer-overhead sweep in BENCH_observe.json.
bench:
	$(GO) test -bench . -benchmem -benchtime 50x -run '^$$' -json . > BENCH_pool.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_pool.json | cut -c11- | sed 's/\\t/\t/g; s/\\n//' || true
	$(GO) run ./cmd/benchharness -observe BENCH_observe.json

# The fault-path soak on its own: mediated flows while the service is
# periodically killed and restarted (see BenchmarkE11FaultRecoverySoak).
fault-soak:
	$(GO) test -bench BenchmarkE11FaultRecoverySoak -benchtime 200x -run '^$$' .

experiments:
	$(GO) run ./cmd/benchharness

# Short coverage-guided fuzz passes over the two parsers that face
# untrusted bytes: the MTL language parser and the gateway's wire
# sniffer. FUZZTIME can be raised for a longer local soak.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/mtl -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/gateway -run '^$$' -fuzz '^FuzzSniff$$' -fuzztime $(FUZZTIME)

fmt:
	gofmt -l -w .
