GO ?= go

.PHONY: all build test check race bench fault-soak experiments fmt

all: check

build:
	$(GO) build ./...

# Tier-1: everything must build and every test pass.
test: build
	$(GO) test ./...

# Race-enabled pass over the subsystems with real concurrency: the
# mediation engine (sessions, retry/redial) and the network layer
# (framers, fault injection).
race:
	$(GO) test -race ./internal/engine/... ./internal/network/...

# The full gate: vet, tier-1, and the race pass.
check: test
	$(GO) vet ./...
	$(MAKE) race

bench:
	$(GO) test -bench . -benchtime 50x -run '^$$' .

# The fault-path soak on its own: mediated flows while the service is
# periodically killed and restarted (see BenchmarkE11FaultRecoverySoak).
fault-soak:
	$(GO) test -bench BenchmarkE11FaultRecoverySoak -benchtime 200x -run '^$$' .

experiments:
	$(GO) run ./cmd/benchharness

fmt:
	gofmt -l -w .
