GO ?= go

.PHONY: all build test check race race-alloc bench bench-translate bench-cache bench-balance bench-discover bench-deadline fault-soak experiments fuzz fmt

all: check

build:
	$(GO) build ./...

# Tier-1: everything must build and every test pass.
test: build
	$(GO) test ./...

# Race-enabled pass over the subsystems with real concurrency: the
# mediation engine (sessions, pooling, lifecycle, retry/redial), the
# network layer (framers, fault injection, the shared connection pool),
# the backend replica sets (balancer churn, prober, ejection, dynamic
# membership), the discovery subsystem (sources, reconcilers and their
# goroutine-leak tests), the observability subsystem (lock-free rings,
# tracer, admin) and the mediation gateway (sniffing, admission, hot
# swap).
race:
	$(GO) test -race ./internal/engine/... ./internal/network/... ./internal/backend/... ./internal/discovery/... ./internal/harness/... ./internal/observe/... ./internal/gateway/... ./internal/rcache/...

# The allocation-budget tests under the race detector: AllocsPerRun is
# meaningless with -race instrumentation, so the numeric budgets skip
# themselves (internal/testutil.RaceEnabled), but the pooled buffers,
# recycled environments and in-place path walks they drive still run
# with full race checking — that is the point of this pass.
race-alloc:
	$(GO) test -race -run 'AllocBudget' ./internal/message ./internal/mtl ./internal/protocol/... ./internal/rcache

# The full gate: vet, tier-1, and the race passes.
check: test
	$(GO) vet ./...
	$(MAKE) race
	$(MAKE) race-alloc

# Full benchmark suite with allocation stats; the raw tool output is
# kept in BENCH_pool.json for comparison across changes, and the
# tracer-overhead sweep in BENCH_observe.json.
bench:
	$(GO) test -bench . -benchmem -benchtime 50x -run '^$$' -json . > BENCH_pool.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_pool.json | cut -c11- | sed 's/\\t/\t/g; s/\\n//' || true
	$(GO) run ./cmd/benchharness -observe BENCH_observe.json

# γ-translation microbenchmark: interpreted tree-walk vs compiled fast
# path for the flickr and shopping case-study programs at 1/8/64
# sessions -> BENCH_translate.json (committed baseline; the compiled
# path must show >=30% fewer allocs/op, see EXPERIMENTS.md E15).
bench-translate:
	$(GO) run ./cmd/benchharness -translate BENCH_translate.json

# Cross-flow response cache end to end: both case-study search
# mediators deployed through starlink.Deploy, cache off vs on, repeated
# and unique workloads at 1/8/64 sessions -> BENCH_cache.json
# (committed baseline; see EXPERIMENTS.md E16 for acceptance bars).
bench-cache:
	$(GO) run ./cmd/benchharness -cache BENCH_cache.json

# Backend replica-set balancing machinery: fixed-target mediator vs one
# routing every checkout through a single-replica p2c set with active
# probing, at 1/8/64 sessions -> BENCH_balance.json (committed baseline;
# the per-flow overhead bar is <2%, see EXPERIMENTS.md E17).
bench-balance:
	$(GO) run ./cmd/benchharness -balance BENCH_balance.json

# Dynamic service discovery steady state: a static backend set vs the
# same set driven by a file discovery source polling every 25ms, at
# 1/8/64 sessions -> BENCH_discover.json (committed baseline; the
# steady-state per-flow overhead bar is <2%, see EXPERIMENTS.md E18).
bench-discover:
	$(GO) run ./cmd/benchharness -discover BENCH_discover.json

# Flow-deadline budgets on the healthy path: budgets disabled vs a
# generous budget armed (every SetDeadline clamp and remaining-budget
# check runs, nothing trips), at 1/8/64 sessions -> BENCH_deadline.json
# (committed baseline; the per-flow overhead bar is <2%, see
# EXPERIMENTS.md E19).
bench-deadline:
	$(GO) run ./cmd/benchharness -deadline BENCH_deadline.json

# The fault-path soak on its own: mediated flows while the service is
# periodically killed and restarted (see BenchmarkE11FaultRecoverySoak).
fault-soak:
	$(GO) test -bench BenchmarkE11FaultRecoverySoak -benchtime 200x -run '^$$' .

experiments:
	$(GO) run ./cmd/benchharness

# Short coverage-guided fuzz passes over everything that parses
# untrusted bytes: the MTL language parser, the differential compile
# fuzzer (compiled MTL fast path vs the tree-walking interpreter must
# produce identical message trees, cache state and errors), the
# gateway's wire sniffer, and the binary-MDL codecs — GIOP packet
# parsing, repeated-group SLP replies, and the MDL document grammar
# itself. FUZZTIME can be raised for a longer local soak.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/mtl -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mtl -run '^$$' -fuzz '^FuzzCompile$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/gateway -run '^$$' -fuzz '^FuzzSniff$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mdl/binenc -run '^$$' -fuzz '^FuzzGIOPParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mdl/binenc -run '^$$' -fuzz '^FuzzSLPRepeatParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mdl/binenc -run '^$$' -fuzz '^FuzzMDLDocument$$' -fuzztime $(FUZZTIME)

fmt:
	gofmt -l -w .
