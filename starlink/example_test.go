package starlink_test

import (
	"fmt"

	"starlink/internal/casestudy"
	"starlink/starlink"
)

// ExampleMerge shows the paper's Fig. 7/8 merge: two API usage automata
// whose only alignment input is one field equivalence.
func ExampleMerge() {
	merged, err := starlink.Merge(
		casestudy.AddUsage(),  // IIOP client: Add(x, y) -> z
		casestudy.PlusUsage(), // SOAP service: Plus(x, y) -> result
		starlink.MergeOptions{
			Name:  "Add+Plus",
			Equiv: starlink.NewEquivalence([2]string{"z", "result"}),
		},
	)
	if err != nil {
		fmt.Println("merge failed:", err)
		return
	}
	fmt.Println(merged.Name, "is", merged.Strength)
	fmt.Println("bicolored states:", len(merged.BicoloredStates()))
	fmt.Println("Add resolved:", merged.Pairings[0].Kind)
	// Output:
	// Add+Plus is strongly merged
	// bicolored states: 2
	// Add resolved: intertwined
}

// ExampleParseMTL compiles a Fig. 9-style translation program.
func ExampleParseMTL() {
	prog, err := starlink.ParseMTL(`
sethost("https://picasaweb.google.com")
out.Msg.q = in.Msg.text
try out.Msg.max-results = in.Msg.per_page
`)
	if err != nil {
		fmt.Println("parse failed:", err)
		return
	}
	fmt.Println("statements:", prog.Len())
	// Output:
	// statements: 3
}
