// Package starlink is the public API of the Starlink interoperability
// framework — a Go reproduction of "Bridging the Interoperability Gap:
// Overcoming Combined Application and Middleware Heterogeneity"
// (Bromberg, Grace, Réveillère, Blair — MIDDLEWARE 2011).
//
// Starlink connects applications that differ at BOTH the application
// level (operation names, parameters, behaviour sequences) and the
// middleware level (XML-RPC vs SOAP vs REST vs IIOP). Developers model
// each side's API usage protocol as a colored automaton, state which
// fields are semantically equivalent, and either merge the automata
// automatically or author the merged k-colored automaton by hand; the
// runtime interprets the result as a network mediator.
//
// A minimal end-to-end use:
//
//	models, err := starlink.LoadModels("models")
//	if err != nil { ... }
//	merged, err := models.Merge("AAdd", "APlus", "add-plus", "Add+Plus")
//	if err != nil { ... }
//	med, err := models.BuildMediator(&starlink.MediatorSpec{
//		MergedName: "Add+Plus",
//		Sides: []starlink.SideSpec{
//			{Color: 1, Protocol: "giop", Defs: "AAdd", Server: true},
//			{Color: 2, Protocol: "soap", Path: "/soap", Target: serviceAddr},
//		},
//	})
//	if err != nil { ... }
//	med.Start("127.0.0.1:9001")
//	defer med.Close() // or med.Shutdown(ctx) for a graceful drain
//
// See the examples directory for complete programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the paper-vs-measured record.
package starlink

import (
	"strings"

	"starlink/internal/automata"
	"starlink/internal/backend"
	"starlink/internal/bind"
	"starlink/internal/core"
	"starlink/internal/discovery"
	"starlink/internal/engine"
	"starlink/internal/gateway"
	"starlink/internal/mdl"
	"starlink/internal/message"
	"starlink/internal/mtl"
	"starlink/internal/observe"
)

// Model and runtime types. These are aliases so the whole framework
// shares one set of definitions; methods documented on the aliased types
// apply unchanged.
type (
	// Automaton is a colored API usage (or protocol) automaton.
	Automaton = automata.Automaton
	// Transition is one edge of an Automaton.
	Transition = automata.Transition
	// MsgDef is the abstract-message template carried by transitions.
	MsgDef = automata.MsgDef
	// Equivalence is the semantic-equivalence relation over field labels.
	Equivalence = automata.Equivalence
	// MergeOptions configure automatic merging.
	MergeOptions = automata.MergeOptions
	// Merged is a k-colored merged automaton.
	Merged = automata.Merged
	// Message is an abstract message.
	Message = message.Message
	// Field is one labelled node of an abstract message.
	Field = message.Field
	// MDLSpec is a parsed Message Description Language document.
	MDLSpec = mdl.Spec
	// MTLProgram is a parsed Message Translation Logic program.
	MTLProgram = mtl.Program
	// MTLCompiledProgram is an MTL program lowered to the compiled fast
	// path: handles and variables interned to slots, paths pre-split,
	// builtins bound, constants folded. Produced by CompileMTL.
	MTLCompiledProgram = mtl.CompiledProgram
	// MTLCompileOptions parameterise CompileMTL (the handle universe and
	// the custom-function table the program will run against).
	MTLCompileOptions = mtl.CompileOptions
	// Binder maps between concrete packets and abstract actions.
	Binder = bind.Binder
	// Route is one REST binding rule.
	Route = bind.Route
	// Models is a loaded model set.
	Models = core.Models
	// MediatorSpec is a mediator deployment description.
	MediatorSpec = core.MediatorSpec
	// SideSpec configures one color of a deployment.
	SideSpec = core.SideSpec
	// BackendSpec is one named replica-set declaration of a MediatorSpec
	// (the backend/balance/probe/eject directives).
	BackendSpec = core.BackendSpec
	// BackendSet is a named, health-checked, load-balanced replica set a
	// side's Target may name instead of a concrete address; see
	// EngineConfig.Backends.
	BackendSet = backend.Set
	// BackendOptions configure a BackendSet: balancing policy, active
	// probing cadence and the passive-ejection thresholds.
	BackendOptions = backend.Options
	// BackendSetSnapshot is one replica set's point-in-time health and
	// traffic view, as served by the admin /backends route.
	BackendSetSnapshot = backend.SetSnapshot
	// BackendReplicaSnapshot is one replica's slice of a
	// BackendSetSnapshot.
	BackendReplicaSnapshot = backend.ReplicaSnapshot
	// DiscoverSpec is one `discover` directive of a MediatorSpec: a
	// discovery source (SLP/SSDP/DNS/file) driving a backend set's
	// membership at runtime.
	DiscoverSpec = core.DiscoverSpec
	// DiscoverySource resolves a logical service to its current
	// endpoints; see NewSLPSource, NewSSDPSource, NewDNSSource and
	// NewFileSource.
	DiscoverySource = discovery.Source
	// DiscoveryEndpoint is one discovered service endpoint (dialable
	// address plus advertised lifetime).
	DiscoveryEndpoint = discovery.Endpoint
	// DiscoveryReconciler diffs a source's endpoint snapshots against a
	// BackendSet's membership and applies adds/removes with hysteresis;
	// see EngineConfig.Discovery.
	DiscoveryReconciler = discovery.Reconciler
	// DiscoveryOptions tune a DiscoveryReconciler: refresh cadence,
	// debounce window, min-TTL and churn caps.
	DiscoveryOptions = discovery.Options
	// DiscoverySnapshot is one reconciler's point-in-time view, as
	// served by the admin /discovery route.
	DiscoverySnapshot = discovery.Snapshot
	// SSDPSourceOptions tune an SSDP discovery source (M-SEARCH window,
	// NOTIFY listen address).
	SSDPSourceOptions = discovery.SSDPOptions
	// Mediator is a running (or startable) mediator.
	Mediator = engine.Mediator
	// EngineConfig assembles a mediator programmatically.
	EngineConfig = engine.Config
	// EngineSide configures one color programmatically.
	EngineSide = engine.Side
	// Stats are a mediator's lifetime counters, including the
	// fault-recovery counters (Redials, RetriesExhausted, per-side
	// failures) and the service-pool counters (PoolHits, PoolDials,
	// PoolEvictions).
	Stats = engine.Stats
	// RetryPolicy is the explicit, sentinel-free fault-recovery policy
	// for EngineConfig.Retry.
	RetryPolicy = engine.RetryPolicy
	// Snapshot bundles Stats with the mediator's latency histograms
	// (per-transition and per-service-exchange); see Mediator.Snapshot.
	Snapshot = engine.Snapshot
	// LatencyHistogram is a point-in-time latency distribution with Mean
	// and Quantile estimators.
	LatencyHistogram = engine.LatencyHistogram
	// LatencyBucket is one bin of a LatencyHistogram.
	LatencyBucket = engine.LatencyBucket
	// TraceEvent is one observable mediation step, delivered to the
	// EngineConfig.Trace hook.
	TraceEvent = engine.TraceEvent
	// TraceKind classifies TraceEvents.
	TraceKind = engine.TraceKind
	// TraceSink is the structured observer interface for
	// EngineConfig.Observer; the observe subsystem implements it.
	TraceSink = engine.Observer
	// Observer is the flow tracer: it assembles TraceEvents into span
	// trees, counts per-transition hits and feeds the flight recorder.
	Observer = observe.Observer
	// ObserveOptions configure an Observer (ring bounds, sampling, slow
	// threshold).
	ObserveOptions = observe.Options
	// FlowTrace is one assembled flow: header, span tree, and for failed
	// flows a truncated wire-level hexdump.
	FlowTrace = observe.FlowTrace
	// Span is one node of a FlowTrace's span tree.
	Span = observe.Span
	// Recorder is the flight recorder of the last N failed/slow flows.
	Recorder = observe.Recorder
	// Registry is a pull-model metrics registry rendered in Prometheus
	// text exposition format.
	Registry = observe.Registry
	// Admin is a running admin endpoint serving /metrics, /healthz,
	// /flows and /automaton.dot.
	Admin = observe.Admin
	// AdminConfig wires an Admin endpoint to its data sources.
	AdminConfig = observe.AdminConfig
	// Deployment is a running declarative deployment — mediator or
	// gateway — behind one lifecycle interface (Addr, Snapshot,
	// Shutdown, Close); see Deploy. Concrete types remain reachable by
	// type assertion to *MediatorDeployment / *GatewayDeployment.
	Deployment = core.Deployed
	// MediatorDeployment is a running single mediator with its optional
	// observability attachments; see Models.Deploy.
	MediatorDeployment = core.Deployment
	// DeployOptions carry the listener and admin addresses for Deploy.
	DeployOptions = core.DeployOptions
	// DeploySnapshot is the uniform stats snapshot every Deployment
	// serves.
	DeploySnapshot = core.DeploySnapshot
	// SpecError is the typed error every spec parser (ParseMediatorSpec,
	// ParseGatewaySpec) returns: Line, Directive and Msg are inspectable
	// via errors.As instead of string matching.
	SpecError = core.SpecError
	// CachePolicy configures the cross-flow response cache for
	// EngineConfig.Cache.
	CachePolicy = engine.CachePolicy
	// CacheRule is one cacheable operation's TTL and vary set.
	CacheRule = engine.CacheRule
	// Gateway is the mediation front door: one listener that sniffs,
	// routes, admission-controls and hot-reloads many mediators.
	Gateway = gateway.Gateway
	// GatewayConfig assembles a Gateway programmatically.
	GatewayConfig = gateway.Config
	// GatewayRoute declares one hosted mediator behind the front door.
	GatewayRoute = gateway.RouteConfig
	// GatewayMatcher is a route's sniff-based claim on connections.
	GatewayMatcher = gateway.Matcher
	// AdmissionPolicy is a route's rate-limit / flow-cap configuration.
	AdmissionPolicy = gateway.AdmissionPolicy
	// WireClass is the protocol family a sniffed connection presents.
	WireClass = gateway.WireClass
	// SniffResult is the wire sniffer's classification of first bytes.
	SniffResult = gateway.Sniff
	// GatewayStats is a gateway's counter snapshot.
	GatewayStats = gateway.Stats
	// GatewayRouteStats is one route's counter snapshot.
	GatewayRouteStats = gateway.RouteStats
	// GatewaySpec is a *.gateway deployment description.
	GatewaySpec = core.GatewaySpec
	// GatewayRouteSpec is one route line of a GatewaySpec.
	GatewayRouteSpec = core.GatewayRouteSpec
	// GatewayDeployment is a running gateway with its hosted mediators
	// and optional metrics endpoint; see Models.DeployGateway.
	GatewayDeployment = core.GatewayDeployment
)

// Spec-parser error classification sentinels. Every parse failure is a
// *SpecError wrapping one (or both) of these, so errors.Is classifies
// and errors.As inspects.
var (
	// ErrSpec is wrapped by every mediator- and gateway-spec failure.
	ErrSpec = core.ErrSpec
	// ErrGateway is additionally wrapped by gateway-spec failures.
	ErrGateway = core.ErrGateway
	// ErrDeadline is wrapped by flows that failed fast because their
	// per-flow deadline budget (Config.FlowDeadline / the
	// flow_deadline directive / a gateway route's deadline= option)
	// ran out mid-mediation.
	ErrDeadline = engine.ErrDeadline
)

// Wire classes the gateway sniffer distinguishes.
const (
	// ClassUnknown: unrecognised or absent first bytes.
	ClassUnknown = gateway.ClassUnknown
	// ClassGIOP: the IIOP "GIOP" magic.
	ClassGIOP = gateway.ClassGIOP
	// ClassHTTP: an HTTP/1.x request line.
	ClassHTTP = gateway.ClassHTTP
	// ClassXML: a bare XML payload with no HTTP envelope.
	ClassXML = gateway.ClassXML
	// ClassJSON: a bare JSON payload with no HTTP envelope.
	ClassJSON = gateway.ClassJSON
)

// Trace event kinds (see engine.TraceKind).
const (
	// TraceState fires when a session's automaton enters a state.
	TraceState = engine.TraceState
	// TraceTransition fires after a transition executes.
	TraceTransition = engine.TraceTransition
	// TraceRedial fires when a service connection is replaced.
	TraceRedial = engine.TraceRedial
	// TraceError fires when a session ends with an error.
	TraceError = engine.TraceError
	// TraceFlowStart fires when a flow's first client request arrives.
	TraceFlowStart = engine.TraceFlowStart
	// TraceFlowEnd fires when a flow completes its automaton traversal.
	TraceFlowEnd = engine.TraceFlowEnd
	// TraceSessionEnd fires when a client session tears down.
	TraceSessionEnd = engine.TraceSessionEnd
	// TraceCacheHit fires when a service exchange is served from the
	// cross-flow response cache (Attempt 0) or by joining an in-flight
	// leader's exchange (Attempt 1).
	TraceCacheHit = engine.TraceCacheHit
)

// Fault-recovery and pooling defaults applied when EngineConfig leaves
// the knobs zero (or Retry nil).
const (
	// DefaultRetryAttempts is the default service-retry count applied
	// when EngineConfig.Retry is nil.
	DefaultRetryAttempts = engine.DefaultRetryAttempts
	// DefaultMaxBackoff caps the exponential backoff growth whenever
	// RetryPolicy.MaxBackoff is left zero.
	DefaultMaxBackoff = engine.DefaultMaxBackoff
	// DefaultBackoff is the default base backoff between retries applied
	// when EngineConfig.Retry is nil.
	DefaultBackoff = engine.DefaultBackoff
	// DefaultPoolSize is the default per-(color, address) bound on
	// pooled service connections.
	DefaultPoolSize = engine.DefaultPoolSize
	// DefaultPoolIdle is the default idle keep-alive for pooled service
	// connections.
	DefaultPoolIdle = engine.DefaultPoolIdle
)

// Action constants for automaton transitions.
const (
	// Send is the "!" action: invoke a remote operation.
	Send = automata.Send
	// Receive is the "?" action: receive an invocation's reply.
	Receive = automata.Receive
)

// Merge strengths.
const (
	// StronglyMerged: every operation is intertwined or derivable.
	StronglyMerged = automata.StronglyMerged
	// WeaklyMerged: some replies cannot be derived.
	WeaklyMerged = automata.WeaklyMerged
)

// LoadModels reads every model artifact (automata, merged automata, MDL,
// routes, equivalences, mediator specs) under dir.
func LoadModels(dir string) (*Models, error) { return core.LoadModels(dir) }

// NewModels returns an empty model set with all built-in MDL engines.
func NewModels() *Models { return core.NewModels() }

// Merge constructs the k-colored merged automaton of two API usage
// automata under a semantic-equivalence relation (paper Definitions 5-8).
func Merge(a1, a2 *Automaton, opts MergeOptions) (*Merged, error) {
	return automata.Merge(a1, a2, opts)
}

// NewEquivalence builds a semantic-equivalence relation from label pairs.
func NewEquivalence(pairs ...[2]string) *Equivalence {
	return automata.NewEquivalence(pairs...)
}

// Parse helpers
//
// Every model artifact has an in-memory parser, one per DSL, so programs
// can author models as string literals instead of files. They mirror the
// file extensions LoadModels dispatches on:
//
//	ParseAutomaton     *.automaton.xml   colored API usage automata
//	ParseMerged        *.merged.xml      k-colored merged automata
//	ParseMDL           *.mdl             message description documents
//	ParseMTL           (γ transitions)   message translation programs
//	ParseRoutes        *.routes          REST binding route tables
//	ParseEquivalence   *.equiv           semantic-equivalence tables
//	ParseTypeMap       *.typemap         vocabulary maps for maptype()
//	ParseMediatorSpec  *.mediator        mediator deployment specs
//
// All of them report errors with line context; ParseMediatorSpec errors
// additionally name the offending directive.

// ParseAutomaton reads an automaton from its XML form.
func ParseAutomaton(doc string) (*Automaton, error) {
	return automata.ParseAutomaton(doc)
}

// ParseMerged reads a merged automaton from its XML form.
func ParseMerged(doc string) (*Merged, error) {
	return automata.UnmarshalMerged(strings.NewReader(doc))
}

// ParseMDL reads a Message Description Language document.
func ParseMDL(doc string) (*MDLSpec, error) { return mdl.ParseString(doc) }

// ParseMTL parses a Message Translation Logic program.
func ParseMTL(src string) (*MTLProgram, error) { return mtl.Parse(src) }

// CompileMTL lowers a parsed MTL program for the compiled fast path.
// Mediators built by NewMediator do this automatically for every γ
// program at deploy time; the explicit call exists for tooling and for
// executing translation programs outside an engine. Execution semantics
// are identical to MTLProgram.Exec — the fuzz corpus asserts it.
func CompileMTL(p *MTLProgram, opts MTLCompileOptions) (*MTLCompiledProgram, error) {
	return mtl.Compile(p, opts)
}

// ParseRoutes reads a REST binding route table.
func ParseRoutes(doc string) ([]Route, error) { return bind.ParseRoutes(doc) }

// ParseEquivalence reads a semantic-equivalence table: one
// "label = label" pair per line, # comments allowed.
func ParseEquivalence(doc string) (*Equivalence, error) {
	return core.ParseEquivalence(doc)
}

// ParseTypeMap reads a vocabulary map ("from = to" per line), exposed to
// MTL programs as the maptype() function.
func ParseTypeMap(doc string) (map[string]string, error) {
	return core.ParseTypeMap(doc)
}

// ParseMediatorSpec reads a mediator deployment spec document (see
// MediatorSpec for the directive grammar).
func ParseMediatorSpec(doc string) (*MediatorSpec, error) {
	return core.ParseMediatorSpec(doc)
}

// ParseGatewaySpec reads a gateway deployment spec document (see
// GatewaySpec for the directive grammar; on disk: *.gateway).
func ParseGatewaySpec(doc string) (*GatewaySpec, error) {
	return core.ParseGatewaySpec(doc)
}

// Deploy is the single declarative deployment entrypoint: it starts
// the mediator or gateway spec named spec from models and returns it
// behind the common Deployment interface. Whether the name resolves to
// a *.mediator or a *.gateway document is discovered from the model
// set; a name present as both is rejected as ambiguous. opts.Listen
// overrides the spec's listen directive, opts.Admin its admin
// directive.
//
// Deploy subsumes the former Models.Deploy / Models.DeployGateway /
// StartMediator triple for callers that only need the common
// lifecycle; the concrete deployments stay available by type
// assertion.
func Deploy(spec string, models *Models, opts DeployOptions) (Deployment, error) {
	return models.DeployAny(spec, opts)
}

// NewGateway assembles a mediation gateway programmatically; see
// Models.DeployGateway for the declarative path.
func NewGateway(cfg GatewayConfig) (*Gateway, error) { return gateway.New(cfg) }

// SniffWire classifies a wire prefix the way the gateway's sniffer
// does — exported for tests and tooling.
func SniffWire(b []byte) SniffResult { return gateway.SniffBytes(b) }

// GatewayRegistry builds a metrics Registry pre-wired with a gateway's
// per-route counters.
func GatewayRegistry(gw *Gateway) *Registry { return observe.GatewayRegistry(gw) }

// NewMediator assembles a mediator from a programmatic configuration.
//
// The returned Mediator's lifecycle is New → Start → (Shutdown | Close):
// Shutdown(ctx) stops accepting, drains in-flight sessions until ctx
// expires, and closes the shared service pool; Close is the abrupt path.
func NewMediator(cfg EngineConfig) (*Mediator, error) { return engine.New(cfg) }

// NewBackendSet builds a named, health-checked, load-balanced replica
// set for EngineConfig.Backends.
func NewBackendSet(name string, addrs []string, opts BackendOptions) (*BackendSet, error) {
	return backend.New(name, addrs, opts)
}

// Service discovery
//
// The discovery subsystem keeps BackendSet membership synchronized
// with the world: a Source (SLP Directory Agent, SSDP search + NOTIFY,
// DNS A/SRV, or a watched hosts file) resolves the service's current
// endpoints, and a DiscoveryReconciler applies the diff with
// hysteresis. Spec-file deployments use `discover` directives;
// programmatic ones build a source, wrap it in NewDiscoveryReconciler
// and hand it to EngineConfig.Discovery.

// NewDiscoveryReconciler binds a discovery source to a backend set for
// EngineConfig.Discovery.
func NewDiscoveryReconciler(set *BackendSet, opts DiscoveryOptions) (*DiscoveryReconciler, error) {
	return discovery.New(set, opts)
}

// NewSLPSource polls an SLP Directory Agent for a service type.
func NewSLPSource(agent, serviceType, scope string) (DiscoverySource, error) {
	return discovery.NewSLPSource(agent, serviceType, scope)
}

// NewSSDPSource discovers endpoints by SSDP M-SEARCH, optionally also
// listening for NOTIFY alive/byebye announcements.
func NewSSDPSource(addr, st string, opts SSDPSourceOptions) (DiscoverySource, error) {
	return discovery.NewSSDPSource(addr, st, opts)
}

// NewDNSSource re-resolves "host:port" A/AAAA records or a full
// "_svc._proto.domain" SRV name on every poll.
func NewDNSSource(name string) (DiscoverySource, error) {
	return discovery.NewDNSSource(name)
}

// NewFileSource watches a static hosts file (one host:port per line).
func NewFileSource(path string) (DiscoverySource, error) {
	return discovery.NewFileSource(path)
}

// Observability
//
// The observe subsystem makes a running mediator inspectable: a flow
// tracer assembling TraceEvents into span trees, a Prometheus-text
// metrics registry, a flight recorder of failed/slow flows, and an
// admin HTTP endpoint. Typical programmatic wiring:
//
//	cfg := starlink.EngineConfig{ ... }
//	obs := starlink.Instrument(&cfg, starlink.ObserveOptions{})
//	med, err := starlink.NewMediator(cfg)
//	...
//	admin, err := starlink.ServeAdmin("127.0.0.1:9090", starlink.AdminConfig{
//		Registry: starlink.MediatorRegistry(med, obs),
//		Observer: obs,
//		Mediator: med,
//	})
//
// Declaratively, the same comes from a mediator spec's "admin <addr>"
// directive via Models.Deploy (or `starlink run -admin addr`).

// NewObserver builds a flow tracer with the given options.
func NewObserver(opts ObserveOptions) *Observer { return observe.New(opts) }

// Instrument attaches a new Observer to an engine configuration; call
// before NewMediator.
func Instrument(cfg *EngineConfig, opts ObserveOptions) *Observer {
	return observe.Instrument(cfg, opts)
}

// MediatorRegistry builds a metrics Registry pre-wired with a
// mediator's counters and histograms, plus the observer's when non-nil.
func MediatorRegistry(med *Mediator, obs *Observer) *Registry {
	return observe.MediatorRegistry(med, obs)
}

// ServeAdmin binds addr and serves the admin routes in the background.
func ServeAdmin(addr string, cfg AdminConfig) (*Admin, error) {
	return observe.ServeAdmin(addr, cfg)
}
