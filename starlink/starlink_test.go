package starlink_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/starlink"
)

func TestPublicMergeAndTypes(t *testing.T) {
	merged, err := starlink.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), starlink.MergeOptions{
		Name:  "Add+Plus",
		Equiv: starlink.NewEquivalence([2]string{"z", "result"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Strength != starlink.StronglyMerged {
		t.Errorf("strength = %v", merged.Strength)
	}
	data, err := merged.EncodeXML()
	if err != nil {
		t.Fatal(err)
	}
	back, err := starlink.ParseMerged(string(data))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "Add+Plus" {
		t.Errorf("name = %q", back.Name)
	}
}

func TestPublicParsers(t *testing.T) {
	if _, err := starlink.ParseMDL(casestudy.GIOPMDLDoc); err != nil {
		t.Errorf("ParseMDL: %v", err)
	}
	if _, err := starlink.ParseMTL(`a.Msg.x = 1`); err != nil {
		t.Errorf("ParseMTL: %v", err)
	}
	routes, err := starlink.ParseRoutes(casestudy.PicasaRoutesDoc)
	if err != nil || len(routes) != 3 {
		t.Errorf("ParseRoutes: %v, %d", err, len(routes))
	}
	doc, err := casestudy.FlickrUsage().EncodeXML()
	if err != nil {
		t.Fatal(err)
	}
	a, err := starlink.ParseAutomaton(string(doc))
	if err != nil || a.Name != "AFlickr" {
		t.Errorf("ParseAutomaton: %v, %v", err, a)
	}
}

func TestPublicLoadModels(t *testing.T) {
	dir := t.TempDir()
	data, err := casestudy.PicasaUsage().EncodeXML()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "picasa.automaton.xml"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "picasa.routes"), []byte(casestudy.PicasaRoutesDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	models, err := starlink.LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	if models.Automata["APicasa"] == nil || len(models.Routes["picasa"]) != 3 {
		t.Error("models not loaded")
	}
	empty := starlink.NewModels()
	if len(empty.Registry.Encodings()) != 3 {
		t.Errorf("encodings = %v", empty.Registry.Encodings())
	}
}

func TestPublicActionsRender(t *testing.T) {
	if starlink.Send.String() != "!" || starlink.Receive.String() != "?" {
		t.Error("action notation")
	}
	m, err := starlink.Merge(casestudy.FlickrUsage(), casestudy.PicasaUsage(), starlink.MergeOptions{
		Equiv: casestudy.Equivalence(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.DOT(), "digraph") {
		t.Error("DOT export broken through the public surface")
	}
}

func TestPublicModelParsers(t *testing.T) {
	eq, err := starlink.ParseEquivalence("a = b\n")
	if err != nil || !eq.Equivalent("a", "b") {
		t.Errorf("ParseEquivalence: %v", err)
	}
	tm, err := starlink.ParseTypeMap("jpeg = image/jpeg\n")
	if err != nil || tm["jpeg"] != "image/jpeg" {
		t.Errorf("ParseTypeMap: %v, %v", err, tm)
	}
	spec, err := starlink.ParseMediatorSpec(
		"merged x\nside 1 xmlrpc path=/x server\npool_size 4\npool_idle off\n")
	if err != nil || spec.PoolSize != 4 || spec.PoolIdle >= 0 {
		t.Errorf("ParseMediatorSpec: %v, %+v", err, spec)
	}
	if _, err := starlink.ParseMediatorSpec("merged x\nside 1 xmlrpc\npool_size nope"); err == nil ||
		!strings.Contains(err.Error(), `directive "pool_size"`) {
		t.Errorf("spec error does not name the directive: %v", err)
	}
}

// TestPublicLifecycleAndMetrics exercises the redesigned lifecycle API
// through the facade: sentinel-free retry policy, pool knobs, graceful
// Shutdown, and the Snapshot metrics view.
func TestPublicLifecycleAndMetrics(t *testing.T) {
	models := starlink.NewModels()
	models.Automata["AAdd"] = casestudy.AddUsage()
	models.Automata["APlus"] = casestudy.PlusUsage()
	models.Equivalences["add-plus"] = casestudy.AddPlusEquivalence()
	merged := models.MustMerge("AAdd", "APlus", "add-plus", "Add+Plus")

	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		t.Fatal(err)
	}
	med, err := starlink.NewMediator(starlink.EngineConfig{
		Merged: merged,
		Sides: map[int]*starlink.EngineSide{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: "127.0.0.1:1"},
		},
		Retry:    &starlink.RetryPolicy{Attempts: 1, Backoff: time.Millisecond},
		PoolSize: 2,
		PoolIdle: starlink.DefaultPoolIdle,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	var snap starlink.Snapshot = med.Snapshot()
	if snap.Stats.Sessions != 0 || snap.Transitions.Count != 0 {
		t.Errorf("fresh snapshot not empty: %+v", snap.Stats)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := med.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown = %v", err)
	}
}

// TestPublicObservability smoke-tests the observability surface through
// the facade: Instrument, metrics registry, flight recorder and admin
// endpoint, with the declarative "admin" directive alongside.
func TestPublicObservability(t *testing.T) {
	merged, err := starlink.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), starlink.MergeOptions{
		Name:  "Add+Plus",
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		t.Fatal(err)
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		t.Fatal(err)
	}
	cfg := starlink.EngineConfig{
		Merged: merged,
		Sides: map[int]*starlink.EngineSide{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: "127.0.0.1:1"},
		},
	}
	var obs *starlink.Observer = starlink.Instrument(&cfg, starlink.ObserveOptions{})
	var sink starlink.TraceSink = obs // Observer satisfies the engine sink
	sink.ObserveTrace(starlink.TraceEvent{Session: 1, Kind: starlink.TraceFlowStart, Time: time.Now()})
	sink.ObserveTrace(starlink.TraceEvent{Session: 1, Kind: starlink.TraceFlowEnd, Time: time.Now()})
	var flows []*starlink.FlowTrace = obs.Flows()
	if len(flows) != 1 {
		t.Fatalf("flows = %d", len(flows))
	}
	var root *starlink.Span = flows[0].Root
	if root == nil || root.Kind != "flow" {
		t.Errorf("root span = %+v", root)
	}
	var rec *starlink.Recorder = obs.Recorder()
	if rec.Len() != 0 {
		t.Errorf("recorder len = %d", rec.Len())
	}

	med, err := starlink.NewMediator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer med.Close()
	var reg *starlink.Registry = starlink.MediatorRegistry(med, obs)
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "starlink_sessions_total 0") {
		t.Errorf("registry output:\n%s", b.String())
	}
	admin, err := starlink.ServeAdmin("127.0.0.1:0", starlink.AdminConfig{
		Registry: reg, Observer: obs, Mediator: med,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if admin.Addr() == "" {
		t.Error("admin has no address")
	}

	spec, err := starlink.ParseMediatorSpec(
		"merged x\nside 1 xmlrpc path=/x server\nadmin 127.0.0.1:9090\n")
	if err != nil || spec.Admin != "127.0.0.1:9090" {
		t.Errorf("admin directive: %v, %+v", err, spec)
	}
}
