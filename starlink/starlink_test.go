package starlink_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/protocol/giop"
	"starlink/internal/protocol/soap"
	"starlink/starlink"
)

func TestPublicMergeAndTypes(t *testing.T) {
	merged, err := starlink.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), starlink.MergeOptions{
		Name:  "Add+Plus",
		Equiv: starlink.NewEquivalence([2]string{"z", "result"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Strength != starlink.StronglyMerged {
		t.Errorf("strength = %v", merged.Strength)
	}
	data, err := merged.EncodeXML()
	if err != nil {
		t.Fatal(err)
	}
	back, err := starlink.ParseMerged(string(data))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "Add+Plus" {
		t.Errorf("name = %q", back.Name)
	}
}

func TestPublicParsers(t *testing.T) {
	if _, err := starlink.ParseMDL(casestudy.GIOPMDLDoc); err != nil {
		t.Errorf("ParseMDL: %v", err)
	}
	if _, err := starlink.ParseMTL(`a.Msg.x = 1`); err != nil {
		t.Errorf("ParseMTL: %v", err)
	}
	routes, err := starlink.ParseRoutes(casestudy.PicasaRoutesDoc)
	if err != nil || len(routes) != 3 {
		t.Errorf("ParseRoutes: %v, %d", err, len(routes))
	}
	doc, err := casestudy.FlickrUsage().EncodeXML()
	if err != nil {
		t.Fatal(err)
	}
	a, err := starlink.ParseAutomaton(string(doc))
	if err != nil || a.Name != "AFlickr" {
		t.Errorf("ParseAutomaton: %v, %v", err, a)
	}
}

func TestPublicLoadModels(t *testing.T) {
	dir := t.TempDir()
	data, err := casestudy.PicasaUsage().EncodeXML()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "picasa.automaton.xml"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "picasa.routes"), []byte(casestudy.PicasaRoutesDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	models, err := starlink.LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	if models.Automata["APicasa"] == nil || len(models.Routes["picasa"]) != 3 {
		t.Error("models not loaded")
	}
	empty := starlink.NewModels()
	if len(empty.Registry.Encodings()) != 3 {
		t.Errorf("encodings = %v", empty.Registry.Encodings())
	}
}

func TestPublicActionsRender(t *testing.T) {
	if starlink.Send.String() != "!" || starlink.Receive.String() != "?" {
		t.Error("action notation")
	}
	m, err := starlink.Merge(casestudy.FlickrUsage(), casestudy.PicasaUsage(), starlink.MergeOptions{
		Equiv: casestudy.Equivalence(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.DOT(), "digraph") {
		t.Error("DOT export broken through the public surface")
	}
}

func TestPublicModelParsers(t *testing.T) {
	eq, err := starlink.ParseEquivalence("a = b\n")
	if err != nil || !eq.Equivalent("a", "b") {
		t.Errorf("ParseEquivalence: %v", err)
	}
	tm, err := starlink.ParseTypeMap("jpeg = image/jpeg\n")
	if err != nil || tm["jpeg"] != "image/jpeg" {
		t.Errorf("ParseTypeMap: %v, %v", err, tm)
	}
	spec, err := starlink.ParseMediatorSpec(
		"merged x\nside 1 xmlrpc path=/x server\npool_size 4\npool_idle off\n")
	if err != nil || spec.PoolSize != 4 || spec.PoolIdle >= 0 {
		t.Errorf("ParseMediatorSpec: %v, %+v", err, spec)
	}
	if _, err := starlink.ParseMediatorSpec("merged x\nside 1 xmlrpc\npool_size nope"); err == nil ||
		!strings.Contains(err.Error(), `directive "pool_size"`) {
		t.Errorf("spec error does not name the directive: %v", err)
	}
}

// TestPublicLifecycleAndMetrics exercises the redesigned lifecycle API
// through the facade: sentinel-free retry policy, pool knobs, graceful
// Shutdown, and the Snapshot metrics view.
func TestPublicLifecycleAndMetrics(t *testing.T) {
	models := starlink.NewModels()
	models.Automata["AAdd"] = casestudy.AddUsage()
	models.Automata["APlus"] = casestudy.PlusUsage()
	models.Equivalences["add-plus"] = casestudy.AddPlusEquivalence()
	merged := models.MustMerge("AAdd", "APlus", "add-plus", "Add+Plus")

	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		t.Fatal(err)
	}
	med, err := starlink.NewMediator(starlink.EngineConfig{
		Merged: merged,
		Sides: map[int]*starlink.EngineSide{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: "127.0.0.1:1"},
		},
		Retry:    &starlink.RetryPolicy{Attempts: 1, Backoff: time.Millisecond},
		PoolSize: 2,
		PoolIdle: starlink.DefaultPoolIdle,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	var snap starlink.Snapshot = med.Snapshot()
	if snap.Stats.Sessions != 0 || snap.Transitions.Count != 0 {
		t.Errorf("fresh snapshot not empty: %+v", snap.Stats)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := med.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown = %v", err)
	}
}

// TestPublicObservability smoke-tests the observability surface through
// the facade: Instrument, metrics registry, flight recorder and admin
// endpoint, with the declarative "admin" directive alongside.
func TestPublicObservability(t *testing.T) {
	merged, err := starlink.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), starlink.MergeOptions{
		Name:  "Add+Plus",
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		t.Fatal(err)
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		t.Fatal(err)
	}
	cfg := starlink.EngineConfig{
		Merged: merged,
		Sides: map[int]*starlink.EngineSide{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: "127.0.0.1:1"},
		},
	}
	var obs *starlink.Observer = starlink.Instrument(&cfg, starlink.ObserveOptions{})
	var sink starlink.TraceSink = obs // Observer satisfies the engine sink
	sink.ObserveTrace(starlink.TraceEvent{Session: 1, Kind: starlink.TraceFlowStart, Time: time.Now()})
	sink.ObserveTrace(starlink.TraceEvent{Session: 1, Kind: starlink.TraceFlowEnd, Time: time.Now()})
	var flows []*starlink.FlowTrace = obs.Flows()
	if len(flows) != 1 {
		t.Fatalf("flows = %d", len(flows))
	}
	var root *starlink.Span = flows[0].Root
	if root == nil || root.Kind != "flow" {
		t.Errorf("root span = %+v", root)
	}
	var rec *starlink.Recorder = obs.Recorder()
	if rec.Len() != 0 {
		t.Errorf("recorder len = %d", rec.Len())
	}

	med, err := starlink.NewMediator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer med.Close()
	var reg *starlink.Registry = starlink.MediatorRegistry(med, obs)
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "starlink_sessions_total 0") {
		t.Errorf("registry output:\n%s", b.String())
	}
	admin, err := starlink.ServeAdmin("127.0.0.1:0", starlink.AdminConfig{
		Registry: reg, Observer: obs, Mediator: med,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if admin.Addr() == "" {
		t.Error("admin has no address")
	}

	spec, err := starlink.ParseMediatorSpec(
		"merged x\nside 1 xmlrpc path=/x server\nadmin 127.0.0.1:9090\n")
	if err != nil || spec.Admin != "127.0.0.1:9090" {
		t.Errorf("admin directive: %v, %+v", err, spec)
	}
}

// TestPublicCacheDirectives pins the *.mediator caching grammar through
// the facade: cacheable (with ttl and vary), invalidates, cache_size
// and cache_shards.
func TestPublicCacheDirectives(t *testing.T) {
	spec, err := starlink.ParseMediatorSpec(`
merged x
side 1 xmlrpc path=/x server
cacheable catalog.search ttl=30s vary=query,limit
cacheable catalog.get ttl=1m
invalidates orders.create catalog.search,catalog.get
cache_size 4096
cache_shards 16
`)
	if err != nil {
		t.Fatal(err)
	}
	rule := spec.Cacheable["catalog.search"]
	if rule.TTL != 30*time.Second || len(rule.Vary) != 2 || rule.Vary[0] != "query" {
		t.Errorf("catalog.search rule = %+v", rule)
	}
	if spec.Cacheable["catalog.get"].TTL != time.Minute {
		t.Errorf("catalog.get rule = %+v", spec.Cacheable["catalog.get"])
	}
	if got := spec.Invalidates["orders.create"]; len(got) != 2 || got[1] != "catalog.get" {
		t.Errorf("invalidates = %v", got)
	}
	if spec.CacheSize != 4096 || spec.CacheShards != 16 {
		t.Errorf("cache_size/cache_shards = %d/%d", spec.CacheSize, spec.CacheShards)
	}

	for name, doc := range map[string]string{
		"missing ttl":       "merged x\nside 1 xmlrpc server\ncacheable op vary=a",
		"bad ttl":           "merged x\nside 1 xmlrpc server\ncacheable op ttl=soon",
		"zero ttl":          "merged x\nside 1 xmlrpc server\ncacheable op ttl=0s",
		"undeclared target": "merged x\nside 1 xmlrpc server\ninvalidates w missing.op",
		"bad size":          "merged x\nside 1 xmlrpc server\ncache_size -3",
	} {
		if _, err := starlink.ParseMediatorSpec(doc); !errors.Is(err, starlink.ErrSpec) {
			t.Errorf("%s: err = %v, want ErrSpec", name, err)
		}
	}
}

// TestPublicSpecError pins the typed spec error: errors.As exposes
// line, directive and message for both parsers, and the sentinels stay
// matchable through the wrapper.
func TestPublicSpecError(t *testing.T) {
	_, err := starlink.ParseMediatorSpec("merged x\nside 1 xmlrpc server\nbogus y\n")
	var se *starlink.SpecError
	if !errors.As(err, &se) {
		t.Fatalf("not a SpecError: %v", err)
	}
	if se.Line != 3 || se.Directive != "bogus" || se.Msg != "unknown directive" {
		t.Errorf("SpecError = %+v", se)
	}
	if !errors.Is(err, starlink.ErrSpec) {
		t.Errorf("mediator spec error does not match ErrSpec: %v", err)
	}

	_, err = starlink.ParseGatewaySpec("listen :0\nroute x path=/x\ndefault y\n")
	se = nil
	if !errors.As(err, &se) {
		t.Fatalf("gateway error not a SpecError: %v", err)
	}
	if se.Directive != "default" {
		t.Errorf("gateway SpecError = %+v", se)
	}
	if !errors.Is(err, starlink.ErrGateway) || !errors.Is(err, starlink.ErrSpec) {
		t.Errorf("gateway spec error sentinels: %v", err)
	}

	// A whole-document problem carries no line or directive.
	_, err = starlink.ParseMediatorSpec("side 1 xmlrpc server\n")
	se = nil
	if !errors.As(err, &se) || se.Line != 0 || se.Directive != "" {
		t.Errorf("whole-document SpecError = %+v (%v)", se, err)
	}
}

// TestPublicDeployFacade drives starlink.Deploy end to end: an
// in-memory model set with a spec-declared cacheable operation is
// deployed behind the unified Deployment interface, served through,
// snapshotted and gracefully shut down.
func TestPublicDeployFacade(t *testing.T) {
	var ops int
	srv, err := soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
		"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			ops++
			x, _ := strconv.Atoi(params[0].Value)
			y, _ := strconv.Atoi(params[1].Value)
			return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	models := starlink.NewModels()
	models.Automata["AAdd"] = casestudy.AddUsage()
	models.Automata["APlus"] = casestudy.PlusUsage()
	models.Equivalences["add-plus"] = casestudy.AddPlusEquivalence()
	models.MustMerge("AAdd", "APlus", "add-plus", "Add+Plus")
	spec, err := starlink.ParseMediatorSpec(`
merged Add+Plus
side 1 giop objectkey=calc defs=AAdd server
side 2 soap path=/soap target=` + srv.Addr() + `
cacheable Plus ttl=1m
`)
	if err != nil {
		t.Fatal(err)
	}
	models.Mediators["addplus"] = spec

	var dep starlink.Deployment
	dep, err = starlink.Deploy("addplus", models, starlink.DeployOptions{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	client, err := giop.Dial(dep.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 3; i++ {
		results, err := client.Invoke("Add", giop.IntParam(20), giop.IntParam(22))
		if err != nil {
			t.Fatal(err)
		}
		if results[0].ValueString() != "42" {
			t.Errorf("Add = %s", results[0].ValueString())
		}
	}
	if ops != 1 {
		t.Errorf("service exchanges = %d, want 1 (spec-declared cacheable)", ops)
	}
	snap := dep.Snapshot()
	if snap.Kind != "mediator" {
		t.Errorf("snapshot kind = %q", snap.Kind)
	}
	ms, ok := snap.Mediators["addplus"]
	if !ok || ms.Stats.CacheHits != 2 || ms.Stats.CacheMisses != 1 {
		t.Errorf("snapshot stats = %+v", ms.Stats)
	}

	// The concrete deployment stays reachable for callers that need the
	// mediator-specific surface.
	if md, ok := dep.(*starlink.MediatorDeployment); !ok || md.Mediator == nil {
		t.Errorf("deployment does not assert to *MediatorDeployment: %T", dep)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := dep.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown = %v", err)
	}

	if _, err := starlink.Deploy("nope", models, starlink.DeployOptions{}); !errors.Is(err, starlink.ErrSpec) {
		t.Errorf("unknown spec err = %v, want ErrSpec", err)
	}
}

// TestPublicBackendDirectives drives the *.mediator backend grammar
// through the facade end to end: a two-replica set declared in the
// spec is deployed with starlink.Deploy, churning sessions spread
// across both replicas, and the health view is reachable through the
// re-exported snapshot types.
func TestPublicBackendDirectives(t *testing.T) {
	newPlus := func() (*soap.Server, error) {
		return soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
			"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
				x, _ := strconv.Atoi(params[0].Value)
				y, _ := strconv.Atoi(params[1].Value)
				return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
			},
		})
	}
	a, err := newPlus()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := newPlus()
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	models := starlink.NewModels()
	models.Automata["AAdd"] = casestudy.AddUsage()
	models.Automata["APlus"] = casestudy.PlusUsage()
	models.Equivalences["add-plus"] = casestudy.AddPlusEquivalence()
	models.MustMerge("AAdd", "APlus", "add-plus", "Add+Plus")
	spec, err := starlink.ParseMediatorSpec(`
merged Add+Plus
side 1 giop objectkey=calc defs=AAdd server
side 2 soap path=/soap target=plus
backend plus ` + a.Addr() + ` ` + b.Addr() + `
balance plus roundrobin
eject plus fails=2 cooloff=500ms min_live=1
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Backends) != 1 || spec.Backends[0].Name != "plus" || spec.Backends[0].FailThreshold != 2 {
		t.Fatalf("parsed backends = %+v", spec.Backends)
	}
	models.Mediators["addplus"] = spec

	dep, err := starlink.Deploy("addplus", models, starlink.DeployOptions{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	// Sessions are the balancing granularity: round-robin lands the two
	// sessions on the two replicas.
	for i := 0; i < 2; i++ {
		client, err := giop.Dial(dep.Addr(), "calc")
		if err != nil {
			t.Fatal(err)
		}
		results, err := client.Invoke("Add", giop.IntParam(20), giop.IntParam(22))
		client.Close()
		if err != nil {
			t.Fatal(err)
		}
		if results[0].ValueString() != "42" {
			t.Errorf("session %d: Add = %s", i+1, results[0].ValueString())
		}
	}

	md, ok := dep.(*starlink.MediatorDeployment)
	if !ok {
		t.Fatalf("deployment type = %T", dep)
	}
	var snaps []starlink.BackendSetSnapshot = md.Mediator.Backends()
	if len(snaps) != 1 || snaps[0].Name != "plus" || len(snaps[0].Replicas) != 2 {
		t.Fatalf("Backends() = %+v", snaps)
	}
	for _, rs := range snaps[0].Replicas {
		var _ starlink.BackendReplicaSnapshot = rs
		if !rs.Live || rs.Picks != 1 {
			t.Errorf("replica %s: live=%v picks=%d, want one session each", rs.Addr, rs.Live, rs.Picks)
		}
	}

	// Backend validation failures surface as deploy-time spec errors.
	bad, err := starlink.ParseMediatorSpec(`
merged Add+Plus
side 1 giop objectkey=calc defs=AAdd server
side 2 soap path=/soap target=plus
backend plus ` + a.Addr() + ` ` + a.Addr() + `
`)
	if err == nil || !errors.Is(err, starlink.ErrSpec) {
		t.Errorf("duplicate replica parse err = %v (%+v), want ErrSpec", err, bad)
	}
}
