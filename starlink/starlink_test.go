package starlink_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"starlink/internal/casestudy"
	"starlink/starlink"
)

func TestPublicMergeAndTypes(t *testing.T) {
	merged, err := starlink.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), starlink.MergeOptions{
		Name:  "Add+Plus",
		Equiv: starlink.NewEquivalence([2]string{"z", "result"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Strength != starlink.StronglyMerged {
		t.Errorf("strength = %v", merged.Strength)
	}
	data, err := merged.EncodeXML()
	if err != nil {
		t.Fatal(err)
	}
	back, err := starlink.ParseMerged(string(data))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "Add+Plus" {
		t.Errorf("name = %q", back.Name)
	}
}

func TestPublicParsers(t *testing.T) {
	if _, err := starlink.ParseMDL(casestudy.GIOPMDLDoc); err != nil {
		t.Errorf("ParseMDL: %v", err)
	}
	if _, err := starlink.ParseMTL(`a.Msg.x = 1`); err != nil {
		t.Errorf("ParseMTL: %v", err)
	}
	routes, err := starlink.ParseRoutes(casestudy.PicasaRoutesDoc)
	if err != nil || len(routes) != 3 {
		t.Errorf("ParseRoutes: %v, %d", err, len(routes))
	}
	doc, err := casestudy.FlickrUsage().EncodeXML()
	if err != nil {
		t.Fatal(err)
	}
	a, err := starlink.ParseAutomaton(string(doc))
	if err != nil || a.Name != "AFlickr" {
		t.Errorf("ParseAutomaton: %v, %v", err, a)
	}
}

func TestPublicLoadModels(t *testing.T) {
	dir := t.TempDir()
	data, err := casestudy.PicasaUsage().EncodeXML()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "picasa.automaton.xml"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "picasa.routes"), []byte(casestudy.PicasaRoutesDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	models, err := starlink.LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	if models.Automata["APicasa"] == nil || len(models.Routes["picasa"]) != 3 {
		t.Error("models not loaded")
	}
	empty := starlink.NewModels()
	if len(empty.Registry.Encodings()) != 3 {
		t.Errorf("encodings = %v", empty.Registry.Encodings())
	}
}

func TestPublicActionsRender(t *testing.T) {
	if starlink.Send.String() != "!" || starlink.Receive.String() != "?" {
		t.Error("action notation")
	}
	m, err := starlink.Merge(casestudy.FlickrUsage(), casestudy.PicasaUsage(), starlink.MergeOptions{
		Equiv: casestudy.Equivalence(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.DOT(), "digraph") {
		t.Error("DOT export broken through the public surface")
	}
}
