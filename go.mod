module starlink

go 1.22
