// Repository-level benchmarks: one benchmark (or pair) per experiment in
// DESIGN.md §4, regenerating the performance rows recorded in
// EXPERIMENTS.md. The "Mediated vs Direct/Native" pairs measure the cost
// of Starlink interposition; the Ablation benchmarks quantify the design
// choices DESIGN.md §5 calls out (DSL-interpreted parsing vs hand-coded,
// MTL interpretation cost).
package starlink_test

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"starlink/internal/automata"
	"starlink/internal/bind"
	"starlink/internal/bridge"
	"starlink/internal/casestudy"
	"starlink/internal/engine"
	"starlink/internal/mdl"
	"starlink/internal/mdl/textenc"
	"starlink/internal/message"
	"starlink/internal/mtl"
	"starlink/internal/network"
	"starlink/internal/observe"
	"starlink/internal/protocol/giop"
	"starlink/internal/protocol/httpwire"
	"starlink/internal/protocol/rest"
	"starlink/internal/protocol/slp"
	"starlink/internal/protocol/soap"
	"starlink/internal/protocol/ssdp"
	"starlink/internal/protocol/xmlrpc"
	"starlink/internal/services/photostore"
	"starlink/internal/services/picasa"
)

// ---- E2 (Fig. 3): merged-automaton construction ----

func BenchmarkE2MergeFlickrPicasa(b *testing.B) {
	a1, a2 := casestudy.FlickrUsage(), casestudy.PicasaUsage()
	eq := casestudy.Equivalence()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := automata.Merge(a1, a2, automata.MergeOptions{Equiv: eq}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E3 (Figs. 4-5): GIOP MDL parse/compose ----

func giopWire(b *testing.B) (mdl.Codec, []byte) {
	b.Helper()
	codec, err := giop.NewCodec()
	if err != nil {
		b.Fatal(err)
	}
	wire, err := codec.Compose(giop.NewRequest(7, "calc", "Add",
		[]*message.Field{giop.IntParam(20), giop.IntParam(22)}))
	if err != nil {
		b.Fatal(err)
	}
	return codec, wire
}

func BenchmarkE3GIOPMDLParse(b *testing.B) {
	codec, wire := giopWire(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Parse(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3GIOPMDLCompose(b *testing.B) {
	codec, _ := giopWire(b)
	req := giop.NewRequest(7, "calc", "Add",
		[]*message.Field{giop.IntParam(20), giop.IntParam(22)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Compose(req); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E4 (Figs. 7-8): Add/Plus mediation latency vs direct SOAP ----

func startPlus(b *testing.B) *soap.Server {
	b.Helper()
	srv, err := soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
		"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			x, _ := strconv.Atoi(params[0].Value)
			y, _ := strconv.Atoi(params[1].Value)
			return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv
}

func BenchmarkE4AddMediated(b *testing.B) {
	srv := startPlus(b)
	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		b.Fatal(err)
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		b.Fatal(err)
	}
	med, err := engine.New(engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: srv.Addr()},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { med.Close() })
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { client.Close() })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Invoke("Add", giop.IntParam(20), giop.IntParam(22)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4AddDirectSOAP(b *testing.B) {
	srv := startPlus(b)
	c := soap.NewClient(srv.Addr(), "/soap")
	b.Cleanup(func() { c.Close() })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call("Plus", soap.Param{Name: "x", Value: "20"}, soap.Param{Name: "y", Value: "22"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4AddViaProtocolBridge(b *testing.B) {
	// The protocol-only baseline on the workload it CAN handle (identical
	// operation names): an XML-RPC client against a SOAP "Add" service.
	srv, err := soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
		"Add": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			x, _ := strconv.Atoi(params[0].Value)
			y, _ := strconv.Atoi(params[1].Value)
			return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	br := bridge.New(&bind.XMLRPCBinder{Path: "/x"}, &bind.SOAPBinder{Path: "/soap"}, srv.Addr())
	if err := br.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { br.Close() })
	c := xmlrpc.NewClient(br.Addr(), "/x")
	b.Cleanup(func() { c.Close() })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call("Add", map[string]xmlrpc.Value{"x": int64(20), "y": int64(22)}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E11: fault-recovery soak ----

// BenchmarkE11FaultRecoverySoak measures the mediated Add/Plus exchange
// while the SOAP service is periodically killed and restarted on the
// same address. Every iteration must still succeed: the figure reported
// is the mediation latency including amortised evict/redial/replay
// recovery.
func BenchmarkE11FaultRecoverySoak(b *testing.B) {
	plusOps := map[string]soap.Operation{
		"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			x, _ := strconv.Atoi(params[0].Value)
			y, _ := strconv.Atoi(params[1].Value)
			return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	}
	srv, err := soap.NewServer("127.0.0.1:0", "/soap", plusOps)
	if err != nil {
		b.Fatal(err)
	}
	addr := srv.Addr()
	b.Cleanup(func() { srv.Close() })
	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		b.Fatal(err)
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		b.Fatal(err)
	}
	med, err := engine.New(engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: addr},
		},
		Retry: &engine.RetryPolicy{Attempts: engine.DefaultRetryAttempts, Backoff: time.Millisecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { med.Close() })
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { client.Close() })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%50 == 0 {
			// Kill the service mid-session and bring it back on the same
			// address; the next exchange hits the dead cached connection.
			srv.Close()
			srv, err = soap.NewServer(addr, "/soap", plusOps)
			if err != nil {
				b.Fatalf("rebind %s: %v", addr, err)
			}
		}
		results, err := client.Invoke("Add", giop.IntParam(20), giop.IntParam(22))
		if err != nil {
			b.Fatalf("iteration %d: %v", i, err)
		}
		if results[0].ValueString() != "42" {
			b.Fatalf("iteration %d: got %s", i, results[0].ValueString())
		}
	}
	b.StopTimer()
	st := med.Stats()
	if b.N > 50 && st.Redials == 0 {
		b.Error("soak never exercised recovery")
	}
	if st.Failures != 0 {
		b.Errorf("failures = %d, want 0", st.Failures)
	}
	b.ReportMetric(float64(st.Redials), "redials")
}

// ---- E5/E7 (Fig. 9, §5.1): case-study flows, mediated vs native ----

type caseStudyBench struct {
	store *photostore.Store
	pic   *picasa.Service
	med   *engine.Mediator
}

func startCaseStudyBench(b *testing.B) *caseStudyBench {
	b.Helper()
	env := &caseStudyBench{store: photostore.New()}
	pic, err := picasa.New(env.store)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { pic.Close() })
	env.pic = pic
	routes, err := bind.ParseRoutes(casestudy.PicasaRoutesDoc)
	if err != nil {
		b.Fatal(err)
	}
	restBinder, err := bind.NewRESTBinder(routes)
	if err != nil {
		b.Fatal(err)
	}
	med, err := engine.New(engine.Config{
		Merged: casestudy.XMLRPCMediator(),
		Sides: map[int]*engine.Side{
			1: {Binder: &bind.XMLRPCBinder{Path: "/services/xmlrpc", Defs: casestudy.FlickrUsage().Messages}},
			2: {Binder: restBinder, Target: pic.Addr()},
		},
		HostMap: map[string]string{casestudy.PicasaHost: pic.Addr()},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { med.Close() })
	env.med = med
	return env
}

// mediatedReadFlow runs the full four-operation case-study flow, but
// directs the addComment write at a photo the read path never queries:
// otherwise every iteration would grow the comment list the next
// iteration's getComments has to serialize, and ns/op would scale with
// b.N instead of measuring the flow.
func mediatedReadFlow(b *testing.B, c *xmlrpc.Client) {
	b.Helper()
	v, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{"text": "tree", "per_page": int64(3)})
	if err != nil {
		b.Fatal(err)
	}
	photos := v.(map[string]xmlrpc.Value)["photos"].([]xmlrpc.Value)
	id := photos[0].(map[string]xmlrpc.Value)["id"].(string)
	if _, err := c.Call(casestudy.FlickrGetInfo, map[string]xmlrpc.Value{"photo_id": id}); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Call(casestudy.FlickrGetComments, map[string]xmlrpc.Value{"photo_id": id}); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Call(casestudy.FlickrAddComment, map[string]xmlrpc.Value{
		"photo_id": "photo-0008", "comment_text": "bench",
	}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkE7CaseStudyMediatedFlow(b *testing.B) {
	env := startCaseStudyBench(b)
	c := xmlrpc.NewClient(env.med.Addr(), "/services/xmlrpc")
	b.Cleanup(func() { c.Close() })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mediatedReadFlow(b, c)
	}
}

func BenchmarkE7CaseStudyNativeFlow(b *testing.B) {
	env := startCaseStudyBench(b)
	c := rest.NewClient(env.pic.Addr())
	b.Cleanup(func() { c.Close() })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feed, err := c.Search("tree", 3)
		if err != nil {
			b.Fatal(err)
		}
		id := feed.Entries[0].ID
		if _, err := c.Comments(id); err != nil {
			b.Fatal(err)
		}
		// Write to a photo the read path never touches (see
		// mediatedReadFlow) so iterations stay independent.
		if _, err := c.AddComment("photo-0008", "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E6 (Fig. 10): getInfo answered from the mediator cache ----

func BenchmarkE6GetInfoFromCache(b *testing.B) {
	env := startCaseStudyBench(b)
	c := xmlrpc.NewClient(env.med.Addr(), "/services/xmlrpc")
	b.Cleanup(func() { c.Close() })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The automaton is linear, so each iteration runs a full flow; the
		// getInfo leg inside it is the cache-resolved exchange.
		mediatedReadFlow(b, c)
	}
}

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkAblationHTTPParseMDL vs ...HandCoded: the cost of interpreting
// the text-MDL spec instead of the hand-written HTTP parser.
func BenchmarkAblationHTTPParseMDL(b *testing.B) {
	spec, err := mdl.ParseString(bind.HTTPMDL)
	if err != nil {
		b.Fatal(err)
	}
	codec, err := textenc.New(spec)
	if err != nil {
		b.Fatal(err)
	}
	raw := []byte("GET /data/feed/api/all?q=tree&max-results=3 HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Parse(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHTTPParseHandCoded(b *testing.B) {
	raw := []byte("GET /data/feed/api/all?q=tree&max-results=3 HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := httpwire.ParseRequest(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMTLTranslation: the interpretation cost of the Fig. 9
// search-reply translation, isolated from the network.
func BenchmarkAblationMTLTranslation(b *testing.B) {
	prog := mtl.MustParse(`
reply.Msg.photos = newarray("photos")
foreach e in feed.Msg.entry {
  cache(e.id, e)
  p = newstruct("item")
  p.id = e.id
  p.title = e.title
  reply.Msg.photos.item[] = p
}
reply.Msg.total = count(feed.Msg)
`)
	feed := message.New("picasa.photos.search.reply",
		message.NewStruct("entry",
			message.NewPrimitive("id", message.TypeString, "p1"),
			message.NewPrimitive("title", message.TypeString, "tree"),
		),
		message.NewStruct("entry",
			message.NewPrimitive("id", message.TypeString, "p2"),
			message.NewPrimitive("title", message.TypeString, "oak"),
		),
		message.NewStruct("entry",
			message.NewPrimitive("id", message.TypeString, "p3"),
			message.NewPrimitive("title", message.TypeString, "pine"),
		),
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := mtl.NewEnv(&mtl.Cache{})
		env.Bind("feed", feed)
		env.Bind("reply", message.New(""))
		if err := prog.Exec(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBinderXMLRPC: abstract<->concrete binding cost for one
// request, isolated from the network.
func BenchmarkAblationBinderXMLRPC(b *testing.B) {
	binder := &bind.XMLRPCBinder{Path: "/x", Defs: casestudy.FlickrUsage().Messages}
	abs := message.New(casestudy.FlickrSearch,
		message.NewPrimitive("text", message.TypeString, "tree"),
		message.NewPrimitive("per_page", message.TypeInt64, 3),
	)
	packet, err := binder.BuildRequest(casestudy.FlickrSearch, abs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := binder.ParseRequest(packet); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E10: discovery mediation latency ----

func BenchmarkE10DiscoveryMediated(b *testing.B) {
	da, err := slp.NewDirectoryAgent("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { da.Close() })
	da.Register("service:printer:lpr", slp.URLEntry{URL: "service:printer:lpr://p", Lifetime: 60})
	slpBinder, err := bind.NewSLPBinder()
	if err != nil {
		b.Fatal(err)
	}
	med, err := engine.New(engine.Config{
		Merged: casestudy.DiscoveryMediator(),
		Sides: map[int]*engine.Side{
			1: {Binder: &bind.SSDPBinder{}, Net: network.Semantics{Transport: "udp"}},
			2: {Binder: slpBinder, Net: network.Semantics{Transport: "udp"}, Target: da.Addr()},
		},
		Funcs: casestudy.DiscoveryFuncs(),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { med.Close() })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ssdp.Search(med.Addr(), "urn:schemas-upnp-org:service:Printer:1", 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10DiscoveryDirectSLP(b *testing.B) {
	da, err := slp.NewDirectoryAgent("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { da.Close() })
	da.Register("service:printer:lpr", slp.URLEntry{URL: "service:printer:lpr://p", Lifetime: 60})
	c, err := slp.Dial(da.Addr())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Find("service:printer:lpr", "DEFAULT"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E8 sweep: mediated search latency vs corpus and result-set size ----

func benchSweepEnv(b *testing.B, corpus int) (*engine.Mediator, *picasa.Service) {
	b.Helper()
	store := photostore.Generate(corpus)
	pic, err := picasa.New(store)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { pic.Close() })
	routes, err := bind.ParseRoutes(casestudy.PicasaRoutesDoc)
	if err != nil {
		b.Fatal(err)
	}
	restBinder, err := bind.NewRESTBinder(routes)
	if err != nil {
		b.Fatal(err)
	}
	med, err := engine.New(engine.Config{
		Merged: casestudy.XMLRPCMediator(),
		Sides: map[int]*engine.Side{
			1: {Binder: &bind.XMLRPCBinder{Path: "/x", Defs: casestudy.FlickrUsage().Messages}},
			2: {Binder: restBinder, Target: pic.Addr()},
		},
		HostMap: map[string]string{casestudy.PicasaHost: pic.Addr()},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { med.Close() })
	return med, pic
}

// BenchmarkE8SearchSweep measures one mediated search+getInfo pair while
// sweeping the result-set size (the per_page parameter) over a 500-photo
// corpus: the translation cost scales with the entries the γ foreach
// walks.
func BenchmarkE8SearchSweep(b *testing.B) {
	for _, results := range []int{1, 5, 20, 50} {
		b.Run(fmt.Sprintf("results=%d", results), func(b *testing.B) {
			med, _ := benchSweepEnv(b, 500)
			c := xmlrpc.NewClient(med.Addr(), "/x")
			b.Cleanup(func() { c.Close() })
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
					"text": "tree", "per_page": int64(results),
				})
				if err != nil {
					b.Fatal(err)
				}
				photos := v.(map[string]xmlrpc.Value)["photos"].([]xmlrpc.Value)
				if len(photos) != results {
					b.Fatalf("photos = %d", len(photos))
				}
				id := photos[0].(map[string]xmlrpc.Value)["id"].(string)
				if _, err := c.Call(casestudy.FlickrGetInfo, map[string]xmlrpc.Value{"photo_id": id}); err != nil {
					b.Fatal(err)
				}
				if _, err := c.Call(casestudy.FlickrGetComments, map[string]xmlrpc.Value{"photo_id": id}); err != nil {
					b.Fatal(err)
				}
				// Write to a photo outside the "tree" result set so the
				// measured read path stays stable across iterations.
				if _, err := c.Call(casestudy.FlickrAddComment, map[string]xmlrpc.Value{
					"photo_id": "photo-000002", "comment_text": "s",
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Concurrent sessions: shared service pool under parallel load ----

// benchConcurrentSessions runs b.N waves of `sessions` parallel clients,
// each a complete session (dial, one mediated Add, close), through a
// single mediator. The service-side connections come from the shared
// pool, so total pool dials stay near the per-wave concurrency instead
// of growing with the total session count. With observed set, the full
// flow tracer is attached and enabled — the pair of benchmarks bounds
// the observability tax (EXPERIMENTS.md E13).
func benchConcurrentSessions(b *testing.B, sessions int, observed bool) {
	srv := startPlus(b)
	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		b.Fatal(err)
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		b.Fatal(err)
	}
	cfg := engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: srv.Addr()},
		},
	}
	var obs *observe.Observer
	if observed {
		obs = observe.Instrument(&cfg, observe.Options{})
	}
	med, err := engine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { med.Close() })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make(chan error, sessions)
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				client, err := giop.Dial(med.Addr(), "calc")
				if err != nil {
					errs <- err
					return
				}
				defer client.Close()
				if _, err := client.Invoke("Add", giop.IntParam(20), giop.IntParam(22)); err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := med.Stats()
	b.ReportMetric(float64(st.Sessions), "sessions")
	b.ReportMetric(float64(st.PoolDials), "pool-dials")
	b.ReportMetric(float64(st.PoolHits), "pool-hits")
	if b.N > 1 && st.PoolDials >= st.Sessions {
		b.Errorf("pool dials %d >= sessions %d: no cross-session reuse", st.PoolDials, st.Sessions)
	}
	if observed {
		ost := obs.Stats()
		b.ReportMetric(float64(ost.FlowsAssembled), "flows-traced")
		if b.N > 1 && ost.FlowsAssembled == 0 {
			b.Error("observed run assembled no flow traces")
		}
	}
}

// BenchmarkConcurrentSessions is the concurrent-session soak: the same
// mediated Add flow at 1, 8 and 64 parallel sessions per wave.
func BenchmarkConcurrentSessions(b *testing.B) {
	for _, n := range []int{1, 8, 64} {
		b.Run(strconv.Itoa(n), func(b *testing.B) { benchConcurrentSessions(b, n, false) })
	}
}

// BenchmarkConcurrentSessionsObserved is the same soak with the flow
// tracer enabled; compare against BenchmarkConcurrentSessions for the
// observability overhead (target <5%, EXPERIMENTS.md E13).
func BenchmarkConcurrentSessionsObserved(b *testing.B) {
	for _, n := range []int{1, 8, 64} {
		b.Run(strconv.Itoa(n), func(b *testing.B) { benchConcurrentSessions(b, n, true) })
	}
}
