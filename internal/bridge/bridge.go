// Package bridge implements the baseline Section 1 argues against: a
// direct protocol-level bridge that translates middleware messages
// mechanically while assuming the applications already agree on
// operations and data ("in a protocol bridge even a simple difference in
// the operation name breaks the solution"). It exists so the evaluation
// can demonstrate exactly where protocol-only interoperability stops and
// application-middleware mediation becomes necessary.
//
// The bridge maps any incoming RPC-style call one-to-one onto the target
// protocol: the operation name is preserved verbatim, parameters are
// carried across positionally, and the reply is translated back. No
// renaming, no reordering, no data translation — the paper's protocol
// bridge behaviour.
package bridge

import (
	"fmt"
	"sync"

	"starlink/internal/bind"
	"starlink/internal/network"
)

// Bridge forwards requests between two protocol binders with identity
// application mapping.
type Bridge struct {
	from   bind.Binder
	to     bind.Binder
	target string

	listener network.Listener
	mu       sync.Mutex
	closed   bool
	conns    map[network.Conn]struct{}
	wg       sync.WaitGroup
}

// New builds a bridge that accepts `from`-protocol clients and forwards
// to a `to`-protocol service at target.
func New(from, to bind.Binder, target string) *Bridge {
	return &Bridge{from: from, to: to, target: target, conns: make(map[network.Conn]struct{})}
}

// Start listens for client connections.
func (b *Bridge) Start(listenAddr string) error {
	var eng network.Engine
	l, err := eng.Listen(network.Semantics{Transport: "tcp"}, listenAddr, b.from.Framer())
	if err != nil {
		return err
	}
	b.listener = l
	b.wg.Add(1)
	go b.acceptLoop()
	return nil
}

// Addr returns the client-facing address.
func (b *Bridge) Addr() string { return b.listener.Addr().String() }

func (b *Bridge) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.listener.Accept()
		if err != nil {
			return
		}
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			conn.Close()
			return
		}
		b.conns[conn] = struct{}{}
		b.mu.Unlock()
		b.wg.Add(1)
		go b.serve(conn)
	}
}

func (b *Bridge) serve(client network.Conn) {
	defer b.wg.Done()
	defer func() {
		client.Close()
		b.mu.Lock()
		delete(b.conns, client)
		b.mu.Unlock()
	}()
	var service network.Conn
	defer func() {
		if service != nil {
			service.Close()
		}
	}()
	for {
		data, err := client.Recv()
		if err != nil {
			return
		}
		reply, err := b.forward(&service, data)
		if err != nil {
			return // a protocol bridge has no recovery story
		}
		if err := client.Send(reply); err != nil {
			return
		}
	}
}

func (b *Bridge) forward(service *network.Conn, data []byte) ([]byte, error) {
	// Identity mapping: same action, same parameters.
	action, abs, err := b.from.ParseRequest(data)
	if err != nil {
		return nil, fmt.Errorf("bridge: parse client request: %w", err)
	}
	out, err := b.to.BuildRequest(action, abs)
	if err != nil {
		return nil, fmt.Errorf("bridge: build target request: %w", err)
	}
	if *service == nil {
		var eng network.Engine
		conn, err := eng.Dial(network.Semantics{Transport: "tcp"}, b.target, b.to.Framer())
		if err != nil {
			return nil, fmt.Errorf("bridge: dial target: %w", err)
		}
		*service = conn
	}
	if err := (*service).Send(out); err != nil {
		return nil, fmt.Errorf("bridge: send: %w", err)
	}
	replyData, err := (*service).Recv()
	if err != nil {
		return nil, fmt.Errorf("bridge: recv: %w", err)
	}
	replyAbs, err := b.to.ParseReply(action, replyData)
	if err != nil {
		return nil, fmt.Errorf("bridge: parse target reply: %w", err)
	}
	return b.from.BuildReply(action, replyAbs)
}

// Close stops the bridge and waits for in-flight connections.
func (b *Bridge) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	var err error
	if b.listener != nil {
		err = b.listener.Close()
	}
	for c := range b.conns {
		c.Close()
	}
	b.mu.Unlock()
	b.wg.Wait()
	return err
}
