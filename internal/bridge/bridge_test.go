package bridge_test

import (
	"strconv"
	"testing"

	"starlink/internal/bind"
	"starlink/internal/bridge"
	"starlink/internal/casestudy"
	"starlink/internal/protocol/soap"
	"starlink/internal/protocol/xmlrpc"
	"starlink/internal/services/photostore"
	"starlink/internal/services/picasa"
)

// TestBridgeWorksWhenApplicationsAgree shows the baseline's happy path:
// when both sides implement the SAME operation names and parameters, a
// protocol-only bridge connects an XML-RPC client to a SOAP service.
func TestBridgeWorksWhenApplicationsAgree(t *testing.T) {
	srv, err := soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
		"Add": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			x, _ := strconv.Atoi(params[0].Value)
			y, _ := strconv.Atoi(params[1].Value)
			return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	br := bridge.New(
		&bind.XMLRPCBinder{Path: "/xml-rpc"},
		&bind.SOAPBinder{Path: "/soap"},
		srv.Addr(),
	)
	if err := br.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer br.Close()

	c := xmlrpc.NewClient(br.Addr(), "/xml-rpc")
	defer c.Close()
	// The XML-RPC client's struct param flattens to named SOAP elements.
	v, err := c.Call("Add", map[string]xmlrpc.Value{"x": int64(20), "y": int64(22)})
	if err != nil {
		t.Fatal(err)
	}
	// A single "result" parameter crosses the bridge as a scalar result.
	if v != "42" {
		t.Errorf("bridged Add = %#v", v)
	}
}

// TestBridgeBreaksOnApplicationHeterogeneity is the paper's Section 1
// claim made executable: the same direct bridge, pointed at the Picasa
// service, cannot serve a Flickr client — the operation names and
// resource model differ, and the protocol-level identity mapping has no
// way to reconcile them. (The Starlink mediator handles this exact
// workload in the engine tests.)
func TestBridgeBreaksOnApplicationHeterogeneity(t *testing.T) {
	store := photostore.New()
	pic, err := picasa.New(store)
	if err != nil {
		t.Fatal(err)
	}
	defer pic.Close()

	routes, err := bind.ParseRoutes(casestudy.PicasaRoutesDoc)
	if err != nil {
		t.Fatal(err)
	}
	restBinder, err := bind.NewRESTBinder(routes)
	if err != nil {
		t.Fatal(err)
	}
	br := bridge.New(
		&bind.XMLRPCBinder{Path: "/services/xmlrpc", Defs: casestudy.FlickrUsage().Messages},
		restBinder,
		pic.Addr(),
	)
	if err := br.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer br.Close()

	c := xmlrpc.NewClient(br.Addr(), "/services/xmlrpc")
	defer c.Close()
	// flickr.photos.search does not exist in the Picasa API: the identity
	// mapping finds no route and the call fails.
	if _, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
		"api_key": "k", "text": "tree",
	}); err == nil {
		t.Fatal("protocol-only bridge served a heterogeneous application: should be impossible")
	}
}

func TestBridgeCloseIdempotent(t *testing.T) {
	br := bridge.New(&bind.SOAPBinder{Path: "/a"}, &bind.SOAPBinder{Path: "/b"}, "127.0.0.1:1")
	if err := br.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := br.Close(); err != nil {
		t.Fatal(err)
	}
	if err := br.Close(); err != nil {
		t.Fatal(err)
	}
}
