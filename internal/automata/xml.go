package automata

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// The XML vocabulary below is the "XML-based Starlink language for
// k-colored automata" of Section 5.1: the on-disk form of both API usage
// automata and merged automata under models/.

type xmlAutomaton struct {
	XMLName     xml.Name        `xml:"automaton"`
	Name        string          `xml:"name,attr"`
	Color       int             `xml:"color,attr"`
	Start       string          `xml:"start,attr"`
	Network     *xmlNetwork     `xml:"network"`
	Messages    []xmlMessage    `xml:"message"`
	States      []xmlState      `xml:"state"`
	Transitions []xmlTransition `xml:"transition"`
}

type xmlNetwork struct {
	Transport string `xml:"transport,attr"`
	Mode      string `xml:"mode,attr"`
	Multicast bool   `xml:"multicast,attr,omitempty"`
	MDL       string `xml:"mdl,attr"`
}

type xmlMessage struct {
	Name   string     `xml:"name,attr"`
	Fields []xmlField `xml:"field"`
}

type xmlField struct {
	Name     string `xml:"name,attr"`
	Optional bool   `xml:"optional,attr,omitempty"`
}

type xmlState struct {
	Name  string `xml:"name,attr"`
	Final bool   `xml:"final,attr,omitempty"`
}

type xmlTransition struct {
	From    string `xml:"from,attr"`
	To      string `xml:"to,attr"`
	Action  string `xml:"action,attr"`
	Message string `xml:"message,attr"`
}

// EncodeXML renders the automaton in the Starlink XML vocabulary.
func (a *Automaton) EncodeXML() ([]byte, error) {
	xa := xmlAutomaton{Name: a.Name, Color: a.Color, Start: a.Start}
	if a.Net != (NetworkSemantics{}) {
		xa.Network = &xmlNetwork{
			Transport: a.Net.Transport, Mode: a.Net.Mode,
			Multicast: a.Net.Multicast, MDL: a.Net.MDL,
		}
	}
	for _, name := range sortedMsgNames(a.Messages) {
		d := a.Messages[name]
		xm := xmlMessage{Name: d.Name}
		opt := make(map[string]bool, len(d.Optional))
		for _, o := range d.Optional {
			opt[o] = true
		}
		for _, f := range d.Fields {
			xm.Fields = append(xm.Fields, xmlField{Name: f, Optional: opt[f]})
		}
		xa.Messages = append(xa.Messages, xm)
	}
	for _, s := range a.States {
		xa.States = append(xa.States, xmlState{Name: s, Final: a.IsFinal(s)})
	}
	for _, t := range a.Transitions {
		action := "send"
		if t.Action == Receive {
			action = "receive"
		}
		xa.Transitions = append(xa.Transitions, xmlTransition{
			From: t.From, To: t.To, Action: action, Message: t.Message,
		})
	}
	out, err := xml.MarshalIndent(xa, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("automata: marshal %s: %w", a.Name, err)
	}
	return append([]byte(xml.Header), append(out, '\n')...), nil
}

func sortedMsgNames(m map[string]MsgDef) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	// insertion sort keeps this dependency-free and deterministic
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// UnmarshalAutomaton parses the Starlink XML vocabulary.
func UnmarshalAutomaton(r io.Reader) (*Automaton, error) {
	var xa xmlAutomaton
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&xa); err != nil {
		return nil, fmt.Errorf("automata: decode: %w", err)
	}
	a := &Automaton{
		Name:     xa.Name,
		Color:    xa.Color,
		Start:    xa.Start,
		Messages: make(map[string]MsgDef, len(xa.Messages)),
	}
	if xa.Network != nil {
		a.Net = NetworkSemantics{
			Transport: xa.Network.Transport, Mode: xa.Network.Mode,
			Multicast: xa.Network.Multicast, MDL: xa.Network.MDL,
		}
	}
	for _, xm := range xa.Messages {
		d := MsgDef{Name: xm.Name}
		for _, f := range xm.Fields {
			d.Fields = append(d.Fields, f.Name)
			if f.Optional {
				d.Optional = append(d.Optional, f.Name)
			}
		}
		a.Messages[d.Name] = d
	}
	for _, xs := range xa.States {
		a.States = append(a.States, xs.Name)
		if xs.Final {
			a.Final = append(a.Final, xs.Name)
		}
	}
	for _, xt := range xa.Transitions {
		act, err := ParseAction(xt.Action)
		if err != nil {
			return nil, fmt.Errorf("automata: %s: transition %s->%s: %w", xa.Name, xt.From, xt.To, err)
		}
		a.Transitions = append(a.Transitions, Transition{
			From: xt.From, To: xt.To, Action: act, Message: xt.Message,
		})
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// ParseAutomaton parses an automaton from a string.
func ParseAutomaton(s string) (*Automaton, error) {
	return UnmarshalAutomaton(strings.NewReader(s))
}

type xmlMerged struct {
	XMLName     xml.Name             `xml:"merged"`
	Name        string               `xml:"name,attr"`
	Color1      int                  `xml:"color1,attr"`
	Color2      int                  `xml:"color2,attr"`
	Start       string               `xml:"start,attr"`
	Strength    string               `xml:"strength,attr"`
	States      []xmlMergedState     `xml:"state"`
	Transitions []xmlMergedTransient `xml:"transition"`
	Finals      []xmlState           `xml:"final"`
}

type xmlMergedState struct {
	Name   string `xml:"name,attr"`
	Colors string `xml:"colors,attr"`
}

type xmlMergedTransient struct {
	Kind    string `xml:"kind,attr"`
	From    string `xml:"from,attr"`
	To      string `xml:"to,attr"`
	Color   int    `xml:"color,attr,omitempty"`
	Action  string `xml:"action,attr,omitempty"`
	Message string `xml:"message,attr,omitempty"`
	MTL     string `xml:"mtl,omitempty"`
}

// EncodeXML renders the merged automaton.
func (m *Merged) EncodeXML() ([]byte, error) {
	strength := "strong"
	if m.Strength == WeaklyMerged {
		strength = "weak"
	}
	xm := xmlMerged{
		Name: m.Name, Color1: m.Color1, Color2: m.Color2,
		Start: m.Start, Strength: strength,
	}
	for _, s := range m.States {
		parts := make([]string, len(s.Colors))
		for i, c := range s.Colors {
			parts[i] = fmt.Sprint(c)
		}
		xm.States = append(xm.States, xmlMergedState{Name: s.Name, Colors: strings.Join(parts, ",")})
	}
	for _, t := range m.Transitions {
		xt := xmlMergedTransient{From: t.From, To: t.To}
		if t.Kind == KindGamma {
			xt.Kind = "gamma"
			xt.MTL = t.MTL
		} else {
			xt.Kind = "message"
			xt.Color = t.Color
			xt.Action = "send"
			if t.Action == Receive {
				xt.Action = "receive"
			}
			xt.Message = t.Message
		}
		xm.Transitions = append(xm.Transitions, xt)
	}
	for _, f := range m.Final {
		xm.Finals = append(xm.Finals, xmlState{Name: f})
	}
	out, err := xml.MarshalIndent(xm, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("automata: marshal merged %s: %w", m.Name, err)
	}
	return append([]byte(xml.Header), append(out, '\n')...), nil
}

// UnmarshalMerged parses a merged automaton from its XML form.
func UnmarshalMerged(r io.Reader) (*Merged, error) {
	var xm xmlMerged
	if err := xml.NewDecoder(r).Decode(&xm); err != nil {
		return nil, fmt.Errorf("automata: decode merged: %w", err)
	}
	m := &Merged{
		Name: xm.Name, Color1: xm.Color1, Color2: xm.Color2, Start: xm.Start,
		Strength: StronglyMerged,
	}
	if xm.Strength == "weak" {
		m.Strength = WeaklyMerged
	}
	for _, xs := range xm.States {
		st := MergedState{Name: xs.Name}
		for _, c := range strings.Split(xs.Colors, ",") {
			c = strings.TrimSpace(c)
			if c == "" {
				continue
			}
			var n int
			if _, err := fmt.Sscanf(c, "%d", &n); err != nil {
				return nil, fmt.Errorf("automata: merged state %q: bad color %q", xs.Name, c)
			}
			st.Colors = append(st.Colors, n)
		}
		m.States = append(m.States, st)
	}
	for _, xt := range xm.Transitions {
		t := MergedTransition{From: xt.From, To: xt.To}
		switch xt.Kind {
		case "gamma":
			t.Kind = KindGamma
			t.MTL = xt.MTL
		case "message":
			t.Kind = KindMessage
			t.Color = xt.Color
			act, err := ParseAction(xt.Action)
			if err != nil {
				return nil, fmt.Errorf("automata: merged transition %s->%s: %w", xt.From, xt.To, err)
			}
			t.Action = act
			t.Message = xt.Message
		default:
			return nil, fmt.Errorf("automata: merged transition %s->%s: unknown kind %q", xt.From, xt.To, xt.Kind)
		}
		m.Transitions = append(m.Transitions, t)
	}
	for _, f := range xm.Finals {
		m.Final = append(m.Final, f.Name)
	}
	return m, nil
}
