package automata_test

import (
	"errors"
	"strings"
	"testing"

	"starlink/internal/automata"
	"starlink/internal/casestudy"
)

func validFlickr(t *testing.T) *automata.Automaton {
	t.Helper()
	a := casestudy.FlickrUsage()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestActionParseAndString(t *testing.T) {
	tests := []struct {
		in   string
		want automata.Action
	}{
		{"send", automata.Send}, {"!", automata.Send},
		{"receive", automata.Receive}, {"recv", automata.Receive}, {"?", automata.Receive},
	}
	for _, tt := range tests {
		got, err := automata.ParseAction(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("ParseAction(%q) = %v, %v", tt.in, got, err)
		}
	}
	if _, err := automata.ParseAction("zap"); err == nil {
		t.Error("bad action accepted")
	}
	if automata.Send.String() != "!" || automata.Receive.String() != "?" {
		t.Error("action notation wrong")
	}
}

// TestE1FlickrPicasaAutomataValid is experiment E1: the Fig. 2 API usage
// automata are structurally valid models.
func TestE1FlickrPicasaAutomataValid(t *testing.T) {
	for _, a := range []*automata.Automaton{casestudy.FlickrUsage(), casestudy.PicasaUsage()} {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
	fl := casestudy.FlickrUsage()
	ops := fl.Operations()
	if len(ops) != 4 {
		t.Fatalf("Flickr operations = %d, want 4", len(ops))
	}
	if ops[0].Request != casestudy.FlickrSearch || ops[0].Reply != casestudy.FlickrSearchReply {
		t.Errorf("op0 = %+v", ops[0])
	}
	if ops[3].Request != casestudy.FlickrAddComment {
		t.Errorf("op3 = %+v", ops[3])
	}
	pi := casestudy.PicasaUsage()
	if got := len(pi.Operations()); got != 3 {
		t.Errorf("Picasa operations = %d, want 3", got)
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() *automata.Automaton { return casestudy.FlickrUsage() }
	tests := []struct {
		name   string
		mutate func(*automata.Automaton)
	}{
		{"no name", func(a *automata.Automaton) { a.Name = "" }},
		{"no start", func(a *automata.Automaton) { a.Start = "" }},
		{"undeclared start", func(a *automata.Automaton) { a.Start = "zz" }},
		{"no finals", func(a *automata.Automaton) { a.Final = nil }},
		{"undeclared final", func(a *automata.Automaton) { a.Final = []string{"zz"} }},
		{"empty state name", func(a *automata.Automaton) { a.States = append(a.States, "") }},
		{"duplicate state", func(a *automata.Automaton) { a.States = append(a.States, "s0") }},
		{"dangling transition", func(a *automata.Automaton) {
			a.Transitions = append(a.Transitions, automata.Transition{From: "s0", To: "zz", Action: automata.Send, Message: "m"})
		}},
		{"no action", func(a *automata.Automaton) {
			a.Transitions = append(a.Transitions, automata.Transition{From: "s0", To: "s1", Message: "m"})
		}},
		{"no message", func(a *automata.Automaton) {
			a.Transitions = append(a.Transitions, automata.Transition{From: "s0", To: "s1", Action: automata.Send})
		}},
		{"unreachable state", func(a *automata.Automaton) { a.States = append(a.States, "island") }},
		{"final unreachable", func(a *automata.Automaton) {
			a.Transitions = a.Transitions[:4]
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := base()
			tt.mutate(a)
			if err := a.Validate(); !errors.Is(err, automata.ErrInvalid) {
				t.Errorf("err = %v, want ErrInvalid", err)
			}
		})
	}
}

func TestMsgDefMandatory(t *testing.T) {
	d := automata.MsgDef{
		Name:     "m",
		Fields:   []string{"b", "a", "c"},
		Optional: []string{"c"},
	}
	got := d.MandatoryFields()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("mandatory = %v", got)
	}
}

func TestEquivalence(t *testing.T) {
	e := casestudy.Equivalence()
	if !e.Equivalent("text", "q") || !e.Equivalent("q", "text") {
		t.Error("equivalence not symmetric")
	}
	if !e.Equivalent("x", "x") {
		t.Error("equivalence not reflexive")
	}
	if e.Equivalent("text", "id") {
		t.Error("spurious equivalence")
	}
	var nilEq *automata.Equivalence
	if !nilEq.Equivalent("a", "a") || nilEq.Equivalent("a", "b") {
		t.Error("nil equivalence misbehaves")
	}
	src, ok := e.FindSource("q", []string{"api_key", "text"})
	if !ok || src != "text" {
		t.Errorf("FindSource = %q, %v", src, ok)
	}
	if _, ok := e.FindSource("q", []string{"api_key"}); ok {
		t.Error("FindSource found phantom source")
	}
}

func TestMessageEquivalentDefinition2(t *testing.T) {
	e := casestudy.Equivalence()
	picasaSearch := casestudy.PicasaUsage().MsgDefOf(casestudy.PicasaSearch)
	// q is derivable from the Flickr search's text field.
	if !e.MessageEquivalent(picasaSearch, []string{"api_key", "text", "per_page"}) {
		t.Error("picasa.search should be ≅ the Flickr search fields")
	}
	if e.MessageEquivalent(picasaSearch, []string{"api_key"}) {
		t.Error("picasa.search ≅ {api_key} should fail")
	}
}

// TestE2AutoMerge is experiment E2: the automatic merge of the Fig. 2
// automata reproduces the structure of Fig. 3 — strongly merged, six
// bicolored states, getInfo resolved from history (the Fig. 10 mismatch).
func TestE2AutoMerge(t *testing.T) {
	m, err := automata.Merge(casestudy.FlickrUsage(), casestudy.PicasaUsage(), automata.MergeOptions{
		Name:  "AFlickr+APicasa",
		Equiv: casestudy.Equivalence(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Strength != automata.StronglyMerged {
		t.Errorf("strength = %v, want strongly merged", m.Strength)
	}
	if got := len(m.BicoloredStates()); got != 6 {
		t.Errorf("bicolored states = %d, want 6 (Fig. 3)", got)
	}
	if len(m.Pairings) != 4 {
		t.Fatalf("pairings = %d", len(m.Pairings))
	}
	wantKinds := []automata.PairKind{
		automata.Intertwined, // search
		automata.FromHistory, // getInfo (Fig. 10)
		automata.Intertwined, // getComments
		automata.Intertwined, // addComment
	}
	for i, p := range m.Pairings {
		if p.Kind != wantKinds[i] {
			t.Errorf("pairing %d (%s) = %v, want %v", i, p.A1Request, p.Kind, wantKinds[i])
		}
	}
	if m.Pairings[0].A2Ops[0].Request != casestudy.PicasaSearch {
		t.Errorf("search intertwined with %q", m.Pairings[0].A2Ops[0].Request)
	}
	// The generated γ MTL for the Picasa search must map text -> q.
	var found bool
	for _, tr := range m.Transitions {
		if tr.Kind == automata.KindGamma && strings.Contains(tr.MTL, ".q = ") && strings.Contains(tr.MTL, ".text") {
			found = true
		}
	}
	if !found {
		t.Error("no γ transition translates text -> q")
	}
	if len(m.Final) != 1 {
		t.Errorf("finals = %v", m.Final)
	}
	// Every state reachable, every transition endpoint known.
	for _, tr := range m.Transitions {
		if _, ok := m.State(tr.From); !ok {
			t.Errorf("transition %s: unknown from", tr)
		}
		if _, ok := m.State(tr.To); !ok {
			t.Errorf("transition %s: unknown to", tr)
		}
	}
}

func TestMergeOrderingMismatch(t *testing.T) {
	// A2 exposes the same two operations in the opposite order; the merge
	// must still intertwine both (the ordering mismatch of Section 3.2).
	mk := func(name string, ops [][3]string, color int) *automata.Automaton {
		a := &automata.Automaton{Name: name, Color: color, Start: "s0", Messages: map[string]automata.MsgDef{}}
		state := "s0"
		a.States = []string{state}
		for i, op := range ops {
			mid := state + "x"
			next := "s" + string(rune('1'+i))
			a.States = append(a.States, mid, next)
			a.Transitions = append(a.Transitions,
				automata.Transition{From: state, To: mid, Action: automata.Send, Message: op[0]},
				automata.Transition{From: mid, To: next, Action: automata.Receive, Message: op[0] + ".reply"},
			)
			a.Messages[op[0]] = automata.MsgDef{Name: op[0], Fields: strings.Split(op[1], ",")}
			a.Messages[op[0]+".reply"] = automata.MsgDef{Name: op[0] + ".reply", Fields: strings.Split(op[2], ",")}
			state = next
		}
		a.Final = []string{state}
		return a
	}
	a1 := mk("A1", [][3]string{
		{"one.a", "k1", "r1"},
		{"one.b", "k2", "r2"},
	}, 1)
	a2 := mk("A2", [][3]string{
		{"two.b", "k2", "r2"},
		{"two.a", "k1", "r1"},
	}, 2)
	m, err := automata.Merge(a1, a2, automata.MergeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Strength != automata.StronglyMerged {
		t.Errorf("strength = %v", m.Strength)
	}
	if m.Pairings[0].A2Ops[0].Request != "two.a" || m.Pairings[1].A2Ops[0].Request != "two.b" {
		t.Errorf("ordering mismatch not resolved: %+v", m.Pairings)
	}
}

func TestMergeOneToMany(t *testing.T) {
	// One A1 operation requires two A2 operations (the one-to-many
	// mismatch): search+getInfo vs Picasa-style split.
	a1 := &automata.Automaton{
		Name: "A1", Color: 1, Start: "s0", Final: []string{"s2"},
		States: []string{"s0", "s1", "s2"},
		Transitions: []automata.Transition{
			{From: "s0", To: "s1", Action: automata.Send, Message: "combined"},
			{From: "s1", To: "s2", Action: automata.Receive, Message: "combined.reply"},
		},
		Messages: map[string]automata.MsgDef{
			"combined":       {Name: "combined", Fields: []string{"key"}},
			"combined.reply": {Name: "combined.reply", Fields: []string{"partA", "partB"}},
		},
	}
	a2 := &automata.Automaton{
		Name: "A2", Color: 2, Start: "s0", Final: []string{"s4"},
		States: []string{"s0", "s1", "s2", "s3", "s4"},
		Transitions: []automata.Transition{
			{From: "s0", To: "s1", Action: automata.Send, Message: "first"},
			{From: "s1", To: "s2", Action: automata.Receive, Message: "first.reply"},
			{From: "s2", To: "s3", Action: automata.Send, Message: "second"},
			{From: "s3", To: "s4", Action: automata.Receive, Message: "second.reply"},
		},
		Messages: map[string]automata.MsgDef{
			"first":        {Name: "first", Fields: []string{"key"}},
			"first.reply":  {Name: "first.reply", Fields: []string{"partA"}},
			"second":       {Name: "second", Fields: []string{"key"}},
			"second.reply": {Name: "second.reply", Fields: []string{"partB"}},
		},
	}
	m, err := automata.Merge(a1, a2, automata.MergeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Pairings) != 1 || m.Pairings[0].Kind != automata.Intertwined {
		t.Fatalf("pairings = %+v", m.Pairings)
	}
	if got := len(m.Pairings[0].A2Ops); got != 2 {
		t.Errorf("chain length = %d, want 2 (one-to-many)", got)
	}
}

func TestMergeWeakAndNotMergeable(t *testing.T) {
	a1 := casestudy.FlickrUsage()
	a2 := casestudy.PicasaUsage()
	// Without the equivalence table nothing lines up.
	if _, err := automata.Merge(a1, a2, automata.MergeOptions{}); !errors.Is(err, automata.ErrNotMergeable) {
		t.Errorf("merge without ≅ err = %v, want ErrNotMergeable", err)
	}
	// A partial table: search works, addComment's entry mapping missing ->
	// weakly merged.
	partial := automata.NewEquivalence(
		[2]string{"text", "q"},
		[2]string{"photo_id", "id"},
		[2]string{"url", "src"},
	)
	m, err := automata.Merge(a1, a2, automata.MergeOptions{Equiv: partial})
	if err != nil {
		t.Fatal(err)
	}
	if m.Strength != automata.WeaklyMerged {
		t.Errorf("strength = %v, want weakly merged", m.Strength)
	}
	var unmatched int
	for _, p := range m.Pairings {
		if p.Kind == automata.Unmatched {
			unmatched++
		}
	}
	if unmatched == 0 {
		t.Error("no unmatched pairing recorded")
	}
}

func TestMergeValidatesInputs(t *testing.T) {
	bad := casestudy.FlickrUsage()
	bad.Start = "zz"
	if _, err := automata.Merge(bad, casestudy.PicasaUsage(), automata.MergeOptions{}); !errors.Is(err, automata.ErrInvalid) {
		t.Errorf("err = %v", err)
	}
	if _, err := automata.Merge(casestudy.FlickrUsage(), bad, automata.MergeOptions{}); !errors.Is(err, automata.ErrInvalid) {
		t.Errorf("err = %v", err)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	a := validFlickr(t)
	a.Net = automata.NetworkSemantics{Transport: "tcp", Mode: "sync", MDL: "xmlrpc.mdl"}
	data, err := a.EncodeXML()
	if err != nil {
		t.Fatal(err)
	}
	back, err := automata.UnmarshalAutomaton(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != a.Name || back.Start != a.Start || back.Color != a.Color {
		t.Errorf("header mismatch: %+v", back)
	}
	if len(back.Transitions) != len(a.Transitions) {
		t.Errorf("transitions = %d, want %d", len(back.Transitions), len(a.Transitions))
	}
	if back.Net != a.Net {
		t.Errorf("net = %+v", back.Net)
	}
	d := back.MsgDefOf(casestudy.FlickrSearch)
	if len(d.Fields) != 4 || len(d.Optional) != 3 {
		t.Errorf("search def = %+v", d)
	}
	if !back.IsFinal("s8") {
		t.Error("final state lost")
	}
}

func TestMergedXMLRoundTrip(t *testing.T) {
	m, err := automata.Merge(casestudy.FlickrUsage(), casestudy.PicasaUsage(), automata.MergeOptions{
		Equiv: casestudy.Equivalence(),
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.EncodeXML()
	if err != nil {
		t.Fatal(err)
	}
	back, err := automata.UnmarshalMerged(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != m.Name || back.Start != m.Start || back.Strength != m.Strength {
		t.Errorf("header mismatch")
	}
	if len(back.States) != len(m.States) || len(back.Transitions) != len(m.Transitions) {
		t.Errorf("size mismatch: %d/%d states, %d/%d transitions",
			len(back.States), len(m.States), len(back.Transitions), len(m.Transitions))
	}
	if len(back.BicoloredStates()) != len(m.BicoloredStates()) {
		t.Error("bicolored states lost")
	}
	var gammaMTL int
	for _, tr := range back.Transitions {
		if tr.Kind == automata.KindGamma && strings.TrimSpace(tr.MTL) != "" {
			gammaMTL++
		}
	}
	if gammaMTL == 0 {
		t.Error("γ MTL lost in round trip")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []string{
		"not xml",
		`<automaton name="A" start="s0"><state name="s0" final="true"/><transition from="s0" to="s0" action="zap" message="m"/></automaton>`,
		`<automaton name="A" start="zz"><state name="s0" final="true"/></automaton>`,
	}
	for _, c := range cases {
		if _, err := automata.ParseAutomaton(c); err == nil {
			t.Errorf("ParseAutomaton(%q) accepted", c)
		}
	}
	for _, c := range []string{
		"nope",
		`<merged name="m" start="m0"><state name="m0" colors="x"/></merged>`,
		`<merged name="m" start="m0"><transition kind="zap" from="a" to="b"/></merged>`,
		`<merged name="m" start="m0"><transition kind="message" from="a" to="b" action="zap"/></merged>`,
	} {
		if _, err := automata.UnmarshalMerged(strings.NewReader(c)); err == nil {
			t.Errorf("UnmarshalMerged(%q) accepted", c)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	a := validFlickr(t)
	dot := a.DOT()
	for _, want := range []string{"digraph", "doublecircle", "!flickr.photos.search", "rankdir=LR"} {
		if !strings.Contains(dot, want) {
			t.Errorf("automaton DOT missing %q", want)
		}
	}
	m, err := automata.Merge(casestudy.FlickrUsage(), casestudy.PicasaUsage(), automata.MergeOptions{
		Equiv: casestudy.Equivalence(),
	})
	if err != nil {
		t.Fatal(err)
	}
	mdot := m.DOT()
	for _, want := range []string{"γ", "lightblue;0.5:lightsalmon", "style=dashed"} {
		if !strings.Contains(mdot, want) {
			t.Errorf("merged DOT missing %q", want)
		}
	}
}

func TestMergedAccessors(t *testing.T) {
	m, err := automata.Merge(casestudy.FlickrUsage(), casestudy.PicasaUsage(), automata.MergeOptions{
		Equiv: casestudy.Equivalence(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.State("definitely-not"); ok {
		t.Error("phantom state")
	}
	if outs := m.Out(m.Start); len(outs) != 1 {
		t.Errorf("start out-degree = %d", len(outs))
	}
	if !m.IsFinal(m.Final[0]) || m.IsFinal(m.Start) {
		t.Error("IsFinal misbehaves")
	}
	if s := m.Transitions[0].String(); !strings.Contains(s, "-->") {
		t.Errorf("transition string = %q", s)
	}
	for _, tr := range m.Transitions {
		if tr.Kind == automata.KindGamma {
			if s := tr.String(); !strings.Contains(s, "γ") {
				t.Errorf("gamma string = %q", s)
			}
			break
		}
	}
	if automata.StronglyMerged.String() == "" || automata.WeaklyMerged.String() == "" ||
		automata.Intertwined.String() == "" || automata.FromHistory.String() == "" ||
		automata.Unmatched.String() == "" {
		t.Error("stringers empty")
	}
}

func BenchmarkMerge(b *testing.B) {
	a1 := casestudy.FlickrUsage()
	a2 := casestudy.PicasaUsage()
	eq := casestudy.Equivalence()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := automata.Merge(a1, a2, automata.MergeOptions{Equiv: eq}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidate(b *testing.B) {
	a := casestudy.FlickrUsage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := a.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMergeablePredicate(t *testing.T) {
	if !automata.Mergeable(casestudy.FlickrUsage(), casestudy.PicasaUsage(), casestudy.Equivalence()) {
		t.Error("case-study automata should be mergeable")
	}
	if automata.Mergeable(casestudy.FlickrUsage(), casestudy.PicasaUsage(), nil) {
		t.Error("mergeable without an equivalence relation")
	}
}
