package automata

import (
	"fmt"
	"strings"
)

// Strength classifies a merged automaton per Section 3.3: strongly merged
// when every non-intertwined invocation's reply is semantically derivable
// from replies already received; weakly merged otherwise.
type Strength int

const (
	// StronglyMerged: full interoperation is preserved.
	StronglyMerged Strength = iota + 1
	// WeaklyMerged: some replies cannot be derived and will be defaulted.
	WeaklyMerged
)

// String renders the strength.
func (s Strength) String() string {
	switch s {
	case StronglyMerged:
		return "strongly merged"
	case WeaklyMerged:
		return "weakly merged"
	default:
		return "strength(" + fmt.Sprint(int(s)) + ")"
	}
}

// PairKind says how one A1 operation was resolved during the merge.
type PairKind int

const (
	// Intertwined: mapped to one or more A2 operations (Definition 5).
	Intertwined PairKind = iota + 1
	// FromHistory: answered purely from previously exchanged data — the
	// extra/missing-message mismatch (Fig. 10).
	FromHistory
	// Unmatched: no mapping found; the reply will be defaulted (weak).
	Unmatched
)

// String renders the pairing kind.
func (k PairKind) String() string {
	switch k {
	case Intertwined:
		return "intertwined"
	case FromHistory:
		return "from-history"
	case Unmatched:
		return "unmatched"
	default:
		return "pairkind(" + fmt.Sprint(int(k)) + ")"
	}
}

// Pairing records how one A1 operation was merged.
type Pairing struct {
	// A1Request and A1Reply are the client-side operation's messages.
	A1Request, A1Reply string
	// Kind is the resolution.
	Kind PairKind
	// A2Ops are the service-side operations invoked, in order.
	A2Ops []Operation
}

// MergedKind distinguishes message transitions from γ-transitions.
type MergedKind int

const (
	// KindMessage is an ordinary colored send/receive edge.
	KindMessage MergedKind = iota + 1
	// KindGamma is a translation edge carrying MTL (Definition 8's P set).
	KindGamma
)

// MergedTransition is one edge of a merged k-colored automaton.
type MergedTransition struct {
	// From and To are merged state names.
	From, To string
	// Kind is message or gamma.
	Kind MergedKind
	// Color is the side a message edge belongs to (1 or 2).
	Color int
	// Action and Message describe a message edge (application
	// perspective: ! is the application invoking, ? its reply).
	Action  Action
	Message string
	// MTL is the translation program of a gamma edge.
	MTL string
}

// String renders the transition.
func (t MergedTransition) String() string {
	if t.Kind == KindGamma {
		return fmt.Sprintf("%s --γ--> %s", t.From, t.To)
	}
	return fmt.Sprintf("%s --[c%d]%s%s--> %s", t.From, t.Color, t.Action, t.Message, t.To)
}

// MergedState is a state of the merged automaton with its color set;
// bicolored states are the γ boundaries of Fig. 3.
type MergedState struct {
	// Name is the state name ("m0", "m1", ...).
	Name string
	// Colors lists the colors the state belongs to.
	Colors []int
}

// Bicolored reports whether the state carries both colors.
func (s MergedState) Bicolored() bool { return len(s.Colors) > 1 }

// Merged is a k-colored merged automaton A¹S1 ⊕ A²S2 (Definition 8).
type Merged struct {
	// Name identifies the merged automaton.
	Name string
	// Color1 and Color2 are the two colors (normally 1 and 2).
	Color1, Color2 int
	// Start is the initial state.
	Start string
	// Final are the accepting states.
	Final []string
	// States in creation order.
	States []MergedState
	// Transitions in creation order.
	Transitions []MergedTransition
	// Strength is the Section 3.3 classification.
	Strength Strength
	// Pairings records how each A1 operation was resolved.
	Pairings []Pairing
}

// State returns the named state and whether it exists.
func (m *Merged) State(name string) (MergedState, bool) {
	for _, s := range m.States {
		if s.Name == name {
			return s, true
		}
	}
	return MergedState{}, false
}

// Out returns transitions leaving a state.
func (m *Merged) Out(state string) []MergedTransition {
	var out []MergedTransition
	for _, t := range m.Transitions {
		if t.From == state {
			out = append(out, t)
		}
	}
	return out
}

// BicoloredStates lists the γ-boundary states.
func (m *Merged) BicoloredStates() []string {
	var out []string
	for _, s := range m.States {
		if s.Bicolored() {
			out = append(out, s.Name)
		}
	}
	return out
}

// IsFinal reports whether state is accepting.
func (m *Merged) IsFinal(state string) bool {
	for _, f := range m.Final {
		if f == state {
			return true
		}
	}
	return false
}

// MergeOptions configure the automatic merge.
type MergeOptions struct {
	// Name of the resulting automaton; defaults to "A1+A2".
	Name string
	// Equiv is the semantic-equivalence relation over field labels.
	Equiv *Equivalence
	// MaxChain caps the number of A2 operations one A1 operation may
	// trigger (the one-to-many mismatch); default 3.
	MaxChain int
}

// fieldSource remembers where a semantic value was last seen: the state
// handle its message is bound to and the field label inside that message.
type fieldSource struct {
	handle string
	label  string
}

// mergeBuilder accumulates the merged automaton.
type mergeBuilder struct {
	m       *Merged
	equiv   *Equivalence
	history []fieldSource
	counter int
}

func (b *mergeBuilder) newState(colors ...int) string {
	name := fmt.Sprintf("m%d", b.counter)
	b.counter++
	b.m.States = append(b.m.States, MergedState{Name: name, Colors: colors})
	return name
}

func (b *mergeBuilder) colorState(name string, color int) {
	for i := range b.m.States {
		if b.m.States[i].Name != name {
			continue
		}
		for _, c := range b.m.States[i].Colors {
			if c == color {
				return
			}
		}
		b.m.States[i].Colors = append(b.m.States[i].Colors, color)
		return
	}
}

func (b *mergeBuilder) addMsg(from, to string, color int, action Action, msg string) {
	b.m.Transitions = append(b.m.Transitions, MergedTransition{
		From: from, To: to, Kind: KindMessage, Color: color, Action: action, Message: msg,
	})
}

func (b *mergeBuilder) addGamma(from, to, mtl string) {
	b.m.Transitions = append(b.m.Transitions, MergedTransition{
		From: from, To: to, Kind: KindGamma, MTL: mtl,
	})
}

// remember records all fields of a message bound at handle.
func (b *mergeBuilder) remember(handle string, def MsgDef) {
	for _, f := range def.Fields {
		b.history = append(b.history, fieldSource{handle: handle, label: f})
	}
}

func (b *mergeBuilder) historyLabels() []string {
	out := make([]string, len(b.history))
	for i, h := range b.history {
		out[i] = h.label
	}
	return out
}

// findSource locates the most recent history entry equivalent to label.
func (b *mergeBuilder) findSource(label string) (fieldSource, bool) {
	for i := len(b.history) - 1; i >= 0; i-- {
		if b.equiv.Equivalent(label, b.history[i].label) {
			return b.history[i], true
		}
	}
	return fieldSource{}, false
}

// genTranslation emits MTL assigning every field of target (bound at
// dstHandle) from the current history. Missing optional fields are
// skipped; missing mandatory fields yield a comment so the gap is visible
// in the generated model.
func (b *mergeBuilder) genTranslation(dstHandle string, target MsgDef) string {
	var sb strings.Builder
	mandatory := map[string]bool{}
	for _, f := range target.MandatoryFields() {
		mandatory[f] = true
	}
	for _, f := range target.Fields {
		src, ok := b.findSource(f)
		if !ok {
			if mandatory[f] {
				fmt.Fprintf(&sb, "# unresolved mandatory field %q\n", f)
			}
			continue
		}
		fmt.Fprintf(&sb, "%s.Msg.%s = %s.Msg.%s\n", dstHandle, f, src.handle, src.label)
	}
	return sb.String()
}

// Merge constructs the k-colored merged automaton of a1 (color 1, the
// application whose requests arrive) and a2 (color 2, the application
// being invoked), following Definitions 5-8. Both automata are read as
// call graphs (Operations); each a1 operation is resolved by intertwining,
// by derivation from history, or — weakly — left unmatched.
func Merge(a1, a2 *Automaton, opts MergeOptions) (*Merged, error) {
	if err := a1.Validate(); err != nil {
		return nil, err
	}
	if err := a2.Validate(); err != nil {
		return nil, err
	}
	equiv := opts.Equiv
	if equiv == nil {
		equiv = NewEquivalence()
	}
	maxChain := opts.MaxChain
	if maxChain <= 0 {
		maxChain = 3
	}
	name := opts.Name
	if name == "" {
		name = a1.Name + "+" + a2.Name
	}
	c1, c2 := a1.Color, a2.Color
	if c1 == 0 {
		c1 = 1
	}
	if c2 == 0 || c2 == c1 {
		c2 = c1 + 1
	}

	b := &mergeBuilder{
		m:     &Merged{Name: name, Color1: c1, Color2: c2},
		equiv: equiv,
	}
	ops1 := a1.Operations()
	ops2 := a2.Operations()
	consumed := make([]bool, len(ops2))

	cur := b.newState(c1)
	b.m.Start = cur
	intertwinedCount := 0

	for _, op1 := range ops1 {
		reqDef1 := a1.MsgDefOf(op1.Request)
		var replyDef1 MsgDef
		if op1.Reply != "" {
			replyDef1 = a1.MsgDefOf(op1.Reply)
		}

		// The client's request arrives (color 1, ! from the application's
		// perspective) and is bound at afterReq.
		afterReq := b.newState(c1)
		b.addMsg(cur, afterReq, c1, Send, op1.Request)
		b.remember(afterReq, reqDef1)

		// Resolution order: (1) if the client's reply is already fully
		// derivable from the exchange history, no remote call is needed —
		// the extra/missing-message mismatch of Fig. 10; (2) otherwise
		// intertwine with a chain of unconsumed A2 operations whose
		// requests are derivable and which, together, make the A1 reply
		// derivable (Definition 5, extended to one-to-many); (3) otherwise
		// the operation is unmatched and the merge is weak.
		fromHistory := op1.Reply != "" && equiv.MessageEquivalent(replyDef1, b.historyLabels())
		var chain []int
		if !fromHistory {
			chain = findChain(b, a2, ops2, consumed, replyDef1, maxChain)
		}

		pairing := Pairing{A1Request: op1.Request, A1Reply: op1.Reply}
		switch {
		case fromHistory:
			pairing.Kind = FromHistory
			cur = b.answerClient(afterReq, op1, replyDef1, c1)
		case len(chain) > 0:
			pairing.Kind = Intertwined
			intertwinedCount++
			prev := afterReq
			for _, k := range chain {
				consumed[k] = true
				op2 := ops2[k]
				pairing.A2Ops = append(pairing.A2Ops, op2)
				reqDef2 := a2.MsgDefOf(op2.Request)
				// γ into color-2 territory: prev becomes bicolored.
				b.colorState(prev, c2)
				afterReq2 := b.newState(c2)
				b.addGamma(prev, afterReq2, b.genTranslation(afterReq2, reqDef2))
				// Sent messages are composed by the γ translation at the
				// send transition's From state, so history references that
				// handle (received messages bind at the To state).
				sent2 := b.newState(c2)
				b.addMsg(afterReq2, sent2, c2, Send, op2.Request)
				b.remember(afterReq2, reqDef2)
				prev = sent2
				if op2.Reply != "" {
					replyDef2 := a2.MsgDefOf(op2.Reply)
					got2 := b.newState(c2)
					b.addMsg(prev, got2, c2, Receive, op2.Reply)
					b.remember(got2, replyDef2)
					prev = got2
				}
			}
			// γ back to color 1 and answer the client.
			b.colorState(prev, c1)
			cur = b.answerClient(prev, op1, replyDef1, c1)
		default:
			pairing.Kind = Unmatched
			if op1.Reply != "" {
				cur = b.answerClient(afterReq, op1, replyDef1, c1)
			} else {
				cur = afterReq
			}
		}
		b.m.Pairings = append(b.m.Pairings, pairing)
	}

	if intertwinedCount == 0 {
		return nil, fmt.Errorf("%w: no operation of %s could be intertwined with %s",
			ErrNotMergeable, a1.Name, a2.Name)
	}
	b.m.Final = []string{cur}
	b.m.Strength = StronglyMerged
	for _, p := range b.m.Pairings {
		if p.Kind == Unmatched {
			b.m.Strength = WeaklyMerged
			break
		}
	}
	return b.m, nil
}

// Mergeable implements the Definition 7 predicate: A1 may interact with
// A2 under the given equivalence iff their colored API usage protocols
// are mergeable, i.e. at least one operation can be intertwined so that a
// final state of the product is reachable.
func Mergeable(a1, a2 *Automaton, eq *Equivalence) bool {
	_, err := Merge(a1, a2, MergeOptions{Equiv: eq})
	return err == nil
}

// answerClient emits the γ translation composing the client reply and the
// color-1 receive edge, returning the new current state.
func (b *mergeBuilder) answerClient(from string, op1 Operation, replyDef1 MsgDef, c1 int) string {
	if op1.Reply == "" {
		return from
	}
	beforeReply := b.newState(c1)
	b.addGamma(from, beforeReply, b.genTranslation(beforeReply, replyDef1))
	done := b.newState(c1)
	b.addMsg(beforeReply, done, c1, Receive, op1.Reply)
	b.remember(beforeReply, replyDef1)
	return done
}

// findChain searches the unconsumed A2 operations for a chain satisfying
// the intertwining conditions. It returns the indices of the chain (empty
// when none exists). The first element may be any unconsumed operation
// (ordering mismatch); extensions are taken in order (one-to-many).
func findChain(b *mergeBuilder, a2 *Automaton, ops2 []Operation, consumed []bool, replyDef1 MsgDef, maxChain int) []int {
	avail := b.historyLabels()
	for k := range ops2 {
		if consumed[k] {
			continue
		}
		reqDef2 := a2.MsgDefOf(ops2[k].Request)
		if !b.equiv.MessageEquivalent(reqDef2, avail) {
			continue
		}
		// Tentatively build the chain.
		chain := []int{k}
		gained := append([]string{}, avail...)
		gained = append(gained, reqDef2.Fields...)
		if ops2[k].Reply != "" {
			gained = append(gained, a2.MsgDefOf(ops2[k].Reply).Fields...)
		}
		next := k + 1
		for len(chain) < maxChain && replyDef1.Name != "" && !b.equiv.MessageEquivalent(replyDef1, gained) {
			// Extend with the next unconsumed op whose request is derivable.
			for next < len(ops2) && consumed[next] {
				next++
			}
			if next >= len(ops2) {
				break
			}
			nd := a2.MsgDefOf(ops2[next].Request)
			if !b.equiv.MessageEquivalent(nd, gained) {
				break
			}
			chain = append(chain, next)
			gained = append(gained, nd.Fields...)
			if ops2[next].Reply != "" {
				gained = append(gained, a2.MsgDefOf(ops2[next].Reply).Fields...)
			}
			next++
		}
		if replyDef1.Name == "" || b.equiv.MessageEquivalent(replyDef1, gained) {
			return chain
		}
	}
	return nil
}
