package automata

import (
	"fmt"
	"strings"
)

// DOT renders the automaton in Graphviz format, mirroring the visual
// notation of Fig. 2 (double circles for accepting states, !/? edge
// labels).
func (a *Automaton) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=circle];\n", a.Name)
	for _, s := range a.States {
		shape := "circle"
		if a.IsFinal(s) {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  %q [shape=%s];\n", s, shape)
	}
	fmt.Fprintf(&b, "  _start [shape=point];\n  _start -> %q;\n", a.Start)
	for _, t := range a.Transitions {
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", t.From, t.To, t.Action.String()+t.Message)
	}
	b.WriteString("}\n")
	return b.String()
}

// DOT renders the merged automaton, coloring states per side and drawing
// bicolored states as the two-tone γ boundaries of Fig. 3.
func (m *Merged) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=circle, style=filled];\n", m.Name)
	palette := map[int]string{m.Color1: "lightblue", m.Color2: "lightsalmon"}
	for _, s := range m.States {
		fill := "white"
		switch {
		case s.Bicolored():
			fill = "lightblue;0.5:lightsalmon"
		case len(s.Colors) == 1:
			fill = palette[s.Colors[0]]
		}
		shape := "circle"
		if m.IsFinal(s.Name) {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  %q [shape=%s, fillcolor=%q];\n", s.Name, shape, fill)
	}
	fmt.Fprintf(&b, "  _start [shape=point];\n  _start -> %q;\n", m.Start)
	for _, t := range m.Transitions {
		if t.Kind == KindGamma {
			fmt.Fprintf(&b, "  %q -> %q [label=\"γ\", style=dashed];\n", t.From, t.To)
			continue
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", t.From, t.To,
			fmt.Sprintf("%s%s", t.Action, t.Message))
	}
	b.WriteString("}\n")
	return b.String()
}
