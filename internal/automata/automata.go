// Package automata implements Starlink's colored automata: the models of
// API usage protocols and middleware protocols (paper Section 3), the
// semantic-equivalence and intertwining operators over them, and the
// automatic construction of merged k-colored automata with γ-transitions
// (Definitions 1-8, Figs. 2-3).
package automata

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Action is the kind of a message transition: the paper's Act = {!, ?}.
type Action int

const (
	// Send is "!": invoke a remote operation / emit a message.
	Send Action = iota + 1
	// Receive is "?": receive the reply of a previous invocation.
	Receive
)

// String renders the action with the paper's notation.
func (a Action) String() string {
	switch a {
	case Send:
		return "!"
	case Receive:
		return "?"
	default:
		return "action(" + fmt.Sprint(int(a)) + ")"
	}
}

// ParseAction resolves "send"/"!"/"receive"/"?" to an Action.
func ParseAction(s string) (Action, error) {
	switch strings.ToLower(s) {
	case "send", "!":
		return Send, nil
	case "receive", "recv", "?":
		return Receive, nil
	default:
		return 0, fmt.Errorf("unknown action %q", s)
	}
}

// Errors reported by the automata layer.
var (
	// ErrInvalid is wrapped by all validation errors.
	ErrInvalid = errors.New("automata: invalid automaton")
	// ErrNotMergeable is returned when two automata cannot be merged
	// (Definition 7 fails: no final state of the product is reachable).
	ErrNotMergeable = errors.New("automata: automata are not mergeable")
)

// MsgDef is the abstract-message template attached to transitions: the
// message name and its field labels. Mandatory fields participate in
// Definition 2's Mfields set; when none is marked, all fields are
// mandatory.
type MsgDef struct {
	// Name identifies the abstract message / action label.
	Name string
	// Fields are the field labels, in declaration order.
	Fields []string
	// Optional marks the subset of Fields that are NOT mandatory.
	Optional []string
}

// MandatoryFields returns the message's mandatory field labels, sorted.
func (m MsgDef) MandatoryFields() []string {
	opt := make(map[string]bool, len(m.Optional))
	for _, f := range m.Optional {
		opt[f] = true
	}
	out := make([]string, 0, len(m.Fields))
	for _, f := range m.Fields {
		if !opt[f] {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// NetworkSemantics are the color-k attributes attached to a concrete
// protocol automaton (Fig. 4): how its messages travel.
type NetworkSemantics struct {
	// Transport is "tcp" or "udp".
	Transport string
	// Mode is "sync" (reply on the same exchange) or "async".
	Mode string
	// Multicast marks UDP multicast request semantics.
	Multicast bool
	// MDL names the message-description spec for this protocol's packets.
	MDL string
}

// Transition is one labelled edge: s1 --(action message)--> s2.
type Transition struct {
	// From and To are state names.
	From, To string
	// Action is Send or Receive.
	Action Action
	// Message names the MsgDef carried by the edge.
	Message string
}

// String renders "s0 --!m--> s1".
func (t Transition) String() string {
	return fmt.Sprintf("%s --%s%s--> %s", t.From, t.Action, t.Message, t.To)
}

// Automaton is a colored API usage (or protocol) automaton: the 6-tuple
// (Q, M, q0, F, Act, →) of Section 3.1 plus the color and network
// semantics of Section 3.3.
type Automaton struct {
	// Name identifies the automaton ("AFlickr").
	Name string
	// Color is the k in k-colored (1 or 2 in a pairwise merge).
	Color int
	// Start is q0.
	Start string
	// Final is F.
	Final []string
	// States is Q, in declaration order.
	States []string
	// Transitions is →.
	Transitions []Transition
	// Messages is M, keyed by name.
	Messages map[string]MsgDef
	// Net carries the concrete network semantics (empty for pure
	// application-level API usage automata).
	Net NetworkSemantics
}

// IsFinal reports whether state is in F.
func (a *Automaton) IsFinal(state string) bool {
	for _, f := range a.Final {
		if f == state {
			return true
		}
	}
	return false
}

// HasState reports whether state is in Q.
func (a *Automaton) HasState(state string) bool {
	for _, s := range a.States {
		if s == state {
			return true
		}
	}
	return false
}

// Out returns the transitions leaving state.
func (a *Automaton) Out(state string) []Transition {
	var out []Transition
	for _, t := range a.Transitions {
		if t.From == state {
			out = append(out, t)
		}
	}
	return out
}

// MsgDefOf returns the message template for name; if the automaton has no
// explicit definition, an empty template with that name is returned.
func (a *Automaton) MsgDefOf(name string) MsgDef {
	if d, ok := a.Messages[name]; ok {
		return d
	}
	return MsgDef{Name: name}
}

// Validate checks structural well-formedness: a start state, all
// transition endpoints declared, final states declared, every transition
// message resolvable, and every state reachable from the start.
func (a *Automaton) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("%w: missing name", ErrInvalid)
	}
	if a.Start == "" {
		return fmt.Errorf("%w: %s: missing start state", ErrInvalid, a.Name)
	}
	if !a.HasState(a.Start) {
		return fmt.Errorf("%w: %s: start state %q not declared", ErrInvalid, a.Name, a.Start)
	}
	if len(a.Final) == 0 {
		return fmt.Errorf("%w: %s: no final states", ErrInvalid, a.Name)
	}
	for _, f := range a.Final {
		if !a.HasState(f) {
			return fmt.Errorf("%w: %s: final state %q not declared", ErrInvalid, a.Name, f)
		}
	}
	seen := make(map[string]bool, len(a.States))
	for _, s := range a.States {
		if s == "" {
			return fmt.Errorf("%w: %s: empty state name", ErrInvalid, a.Name)
		}
		if seen[s] {
			return fmt.Errorf("%w: %s: duplicate state %q", ErrInvalid, a.Name, s)
		}
		seen[s] = true
	}
	for _, t := range a.Transitions {
		if !seen[t.From] || !seen[t.To] {
			return fmt.Errorf("%w: %s: transition %s references undeclared state", ErrInvalid, a.Name, t)
		}
		if t.Action != Send && t.Action != Receive {
			return fmt.Errorf("%w: %s: transition %s has no action", ErrInvalid, a.Name, t)
		}
		if t.Message == "" {
			return fmt.Errorf("%w: %s: transition %s has no message", ErrInvalid, a.Name, t)
		}
	}
	// Reachability.
	reach := map[string]bool{a.Start: true}
	queue := []string{a.Start}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, t := range a.Out(s) {
			if !reach[t.To] {
				reach[t.To] = true
				queue = append(queue, t.To)
			}
		}
	}
	for _, s := range a.States {
		if !reach[s] {
			return fmt.Errorf("%w: %s: state %q unreachable from start", ErrInvalid, a.Name, s)
		}
	}
	finalReachable := false
	for _, f := range a.Final {
		if reach[f] {
			finalReachable = true
			break
		}
	}
	if !finalReachable {
		return fmt.Errorf("%w: %s: no final state reachable", ErrInvalid, a.Name)
	}
	return nil
}

// Operations returns the automaton's invocation sequence along the unique
// path of Send transitions from the start (each invocation being a !m
// optionally followed by ?reply) — the "call graph" reading of Section
// 3.1. Branching automata return the operations in BFS order.
type Operation struct {
	// Request is the sent message.
	Request string
	// Reply is the received reply message ("" if none).
	Reply string
	// FromState is the state before the send.
	FromState string
}

// Operations lists the invoke/reply pairs of the automaton in traversal
// order.
func (a *Automaton) Operations() []Operation {
	var ops []Operation
	visited := map[string]bool{}
	state := a.Start
	for !visited[state] {
		visited[state] = true
		outs := a.Out(state)
		if len(outs) == 0 {
			break
		}
		t := outs[0]
		if t.Action != Send {
			state = t.To
			continue
		}
		op := Operation{Request: t.Message, FromState: state}
		// A following Receive on the next state is the reply.
		for _, rt := range a.Out(t.To) {
			if rt.Action == Receive {
				op.Reply = rt.Message
				t = rt
				break
			}
		}
		ops = append(ops, op)
		state = t.To
	}
	return ops
}

// Equivalence is the semantic-equivalence relation ≅ over field labels of
// the two automata being merged (Definition 2). It substitutes for the
// ontology/semantic model the paper leaves to future work: the developer
// (or a generator) states which field labels denote the same concept.
// The relation is symmetric and reflexive by construction.
type Equivalence struct {
	pairs map[[2]string]bool
}

// NewEquivalence builds the relation from alias pairs.
func NewEquivalence(pairs ...[2]string) *Equivalence {
	e := &Equivalence{pairs: make(map[[2]string]bool, len(pairs)*2)}
	for _, p := range pairs {
		e.Add(p[0], p[1])
	}
	return e
}

// Add declares two field labels semantically equivalent.
func (e *Equivalence) Add(a, b string) {
	if e.pairs == nil {
		e.pairs = make(map[[2]string]bool)
	}
	e.pairs[[2]string{a, b}] = true
	e.pairs[[2]string{b, a}] = true
}

// Equivalent reports whether two labels denote the same concept.
func (e *Equivalence) Equivalent(a, b string) bool {
	if a == b {
		return true
	}
	if e == nil || e.pairs == nil {
		return false
	}
	return e.pairs[[2]string{a, b}]
}

// FindSource returns the first label of candidates equivalent to want, and
// whether one exists.
func (e *Equivalence) FindSource(want string, candidates []string) (string, bool) {
	for _, c := range candidates {
		if e.Equivalent(want, c) {
			return c, true
		}
	}
	return "", false
}

// MessageEquivalent implements Definition 2: n ≅ m⃗ holds iff every
// mandatory field of n has a semantically equivalent field in some message
// of the sequence m⃗ (given here as the union of their field labels).
func (e *Equivalence) MessageEquivalent(n MsgDef, history []string) bool {
	for _, f := range n.MandatoryFields() {
		if _, ok := e.FindSource(f, history); !ok {
			return false
		}
	}
	return true
}
