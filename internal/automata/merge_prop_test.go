package automata_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"starlink/internal/automata"
	"starlink/internal/mtl"
)

// randomLinearUsage builds a random linear API usage automaton with n
// operations; field labels are drawn from the given vocabulary with the
// given prefix so two automata can be made semantically alignable.
func randomLinearUsage(_ *rand.Rand, name, prefix string, n int, color int) *automata.Automaton {
	a := &automata.Automaton{
		Name: name, Color: color, Start: "s0",
		Messages: map[string]automata.MsgDef{},
	}
	a.States = []string{"s0"}
	cur := "s0"
	for i := 0; i < n; i++ {
		op := fmt.Sprintf("%s.op%d", prefix, i)
		mid := fmt.Sprintf("s%dm", i)
		next := fmt.Sprintf("s%d", i+1)
		a.States = append(a.States, mid, next)
		a.Transitions = append(a.Transitions,
			automata.Transition{From: cur, To: mid, Action: automata.Send, Message: op},
			automata.Transition{From: mid, To: next, Action: automata.Receive, Message: op + ".reply"},
		)
		// Arity depends only on the operation index so two automata built
		// with the same n have alignable signatures.
		nf := 1 + i%3
		var req, rep []string
		for f := 0; f < nf; f++ {
			req = append(req, fmt.Sprintf("%s_f%d_%d", prefix, i, f))
		}
		rep = append(rep, fmt.Sprintf("%s_r%d", prefix, i))
		a.Messages[op] = automata.MsgDef{Name: op, Fields: req}
		a.Messages[op+".reply"] = automata.MsgDef{Name: op + ".reply", Fields: rep}
		cur = next
	}
	a.Final = []string{cur}
	return a
}

// alignedPair returns two random automata with the same operation count
// plus the equivalence table that aligns them field-by-field.
func alignedPair(r *rand.Rand, n int) (*automata.Automaton, *automata.Automaton, *automata.Equivalence) {
	a1 := randomLinearUsage(r, "A1", "a", n, 1)
	a2 := randomLinearUsage(r, "A2", "b", n, 2)
	eq := automata.NewEquivalence()
	for i := 0; i < n; i++ {
		for f := 0; f < 3; f++ {
			eq.Add(fmt.Sprintf("a_f%d_%d", i, f), fmt.Sprintf("b_f%d_%d", i, f))
		}
		eq.Add(fmt.Sprintf("a_r%d", i), fmt.Sprintf("b_r%d", i))
	}
	return a1, a2, eq
}

// TestQuickAlignedMergeIsStrong: automata with field-aligned operations
// always merge strongly, with every operation resolved.
func TestQuickAlignedMergeIsStrong(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		a1, a2, eq := alignedPair(r, n)
		m, err := automata.Merge(a1, a2, automata.MergeOptions{Equiv: eq})
		if err != nil {
			return false
		}
		if m.Strength != automata.StronglyMerged {
			return false
		}
		if len(m.Pairings) != n {
			return false
		}
		for _, p := range m.Pairings {
			if p.Kind == automata.Unmatched {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickMergedStructureInvariants: every merge satisfies the
// structural invariants the engine relies on — a start state, exactly one
// final state, all transition endpoints declared, every γ program
// syntactically valid MTL, and colors confined to {Color1, Color2}.
func TestQuickMergedStructureInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		a1, a2, eq := alignedPair(r, n)
		// Shuffle a2's reply fields into a2's requests occasionally to get
		// from-history and unmatched variety.
		if r.Intn(2) == 0 {
			a2 = randomLinearUsage(r, "A2", "b", 1+r.Intn(n), 2)
		}
		m, err := automata.Merge(a1, a2, automata.MergeOptions{Equiv: eq})
		if err != nil {
			return true // not mergeable is a legal outcome
		}
		if _, ok := m.State(m.Start); !ok {
			return false
		}
		if len(m.Final) != 1 {
			return false
		}
		for _, tr := range m.Transitions {
			if _, ok := m.State(tr.From); !ok {
				return false
			}
			if _, ok := m.State(tr.To); !ok {
				return false
			}
			switch tr.Kind {
			case automata.KindGamma:
				src := stripComments(tr.MTL)
				if _, err := mtl.Parse(src); err != nil {
					return false
				}
			case automata.KindMessage:
				if tr.Color != m.Color1 && tr.Color != m.Color2 {
					return false
				}
			default:
				return false
			}
		}
		// Every non-final state has exactly one outgoing transition
		// (linear merges), and the final state none.
		for _, s := range m.States {
			outs := len(m.Out(s.Name))
			if m.IsFinal(s.Name) {
				if outs != 0 {
					return false
				}
			} else if outs != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func stripComments(src string) string {
	var out []string
	for _, l := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(l), "#") {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// TestQuickMergeXMLRoundTrip: merged automata survive XML serialization.
func TestQuickMergeXMLRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a1, a2, eq := alignedPair(r, 1+r.Intn(4))
		m, err := automata.Merge(a1, a2, automata.MergeOptions{Equiv: eq})
		if err != nil {
			return true
		}
		data, err := m.EncodeXML()
		if err != nil {
			return false
		}
		back, err := automata.UnmarshalMerged(strings.NewReader(string(data)))
		if err != nil {
			return false
		}
		if len(back.States) != len(m.States) || len(back.Transitions) != len(m.Transitions) {
			return false
		}
		for i := range m.Transitions {
			a, b := m.Transitions[i], back.Transitions[i]
			if a.Kind != b.Kind || a.From != b.From || a.To != b.To || a.Message != b.Message {
				return false
			}
			if a.Kind == automata.KindGamma && strings.TrimSpace(a.MTL) != strings.TrimSpace(b.MTL) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
