package backend_test

import (
	"sort"
	"sync"
	"testing"
	"time"

	"starlink/internal/backend"
	"starlink/internal/testutil"
)

// okProbe admits any replica instantly, keeping membership tests
// deterministic.
func okProbe(string) error { return nil }

func TestAddrsAndSnapshotDeterministicOrder(t *testing.T) {
	// Declared shuffled; every view must come back sorted, every time —
	// /backends and /discovery JSON must be stable across calls.
	s := newSet(t, []string{"c", "a", "b"}, backend.Options{})
	want := []string{"a", "b", "c"}
	for i := 0; i < 5; i++ {
		got := s.Addrs()
		if !sort.StringsAreSorted(got) || len(got) != 3 {
			t.Fatalf("Addrs() = %v, want %v", got, want)
		}
		snap := s.Snapshot()
		for j, rs := range snap.Replicas {
			if rs.Addr != want[j] {
				t.Fatalf("Snapshot replicas = %+v, want order %v", snap.Replicas, want)
			}
		}
	}
	// Order survives membership churn: an added replica slots into
	// sorted position, not at the end.
	s2 := newSet(t, []string{"a", "c"}, backend.Options{Probe: okProbe})
	if err := s2.AddReplica("b"); err != nil {
		t.Fatal(err)
	}
	if got := s2.Addrs(); got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("Addrs() after AddReplica = %v", got)
	}
	s2.Close()
}

func TestAddReplicaAdmitsAfterProbe(t *testing.T) {
	probed := make(chan string, 1)
	s := newSet(t, []string{"a"}, backend.Options{
		Probe: func(addr string) error { probed <- addr; return nil },
	})
	defer s.Close()
	if err := s.AddReplica("b"); err != nil {
		t.Fatal(err)
	}
	select {
	case addr := <-probed:
		if addr != "b" {
			t.Fatalf("probed %q, want b", addr)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no admission probe fired")
	}
	if err := waitUntil(func() bool { return replicaSnap(t, s, "b").Live }); err != nil {
		t.Fatalf("b never admitted: %+v", s.Snapshot())
	}
	snap := s.Snapshot()
	if snap.MembershipAdds != 1 {
		t.Fatalf("membership adds = %d, want 1", snap.MembershipAdds)
	}
}

func TestAddReplicaFailedProbeStaysOut(t *testing.T) {
	s := newSet(t, []string{"a"}, backend.Options{
		Probe:   func(string) error { return errDown },
		Cooloff: time.Hour,
	})
	defer s.Close()
	if err := s.AddReplica("b"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if rs := replicaSnap(t, s, "b"); rs.Live {
		t.Fatal("replica admitted despite failing its admission probe")
	}
	// Traffic keeps flowing to the established replica only.
	for i := 0; i < 10; i++ {
		if addr := s.Pick(""); addr != "a" {
			t.Fatalf("picked unadmitted replica %q", addr)
		}
		s.Release("a")
	}
}

func TestAddReplicaRejectsDuplicatesAndEmpty(t *testing.T) {
	s := newSet(t, []string{"a"}, backend.Options{Probe: okProbe})
	defer s.Close()
	if err := s.AddReplica("a"); err == nil {
		t.Error("duplicate address accepted")
	}
	if err := s.AddReplica(""); err == nil {
		t.Error("empty address accepted")
	}
}

func TestRemoveReplicaDrainsInFlight(t *testing.T) {
	s := newSet(t, []string{"a", "b"}, backend.Options{
		Probe:        okProbe,
		DrainTimeout: 2 * time.Second,
	})
	defer s.Close()
	// Hold an in-flight pick on b, then remove it concurrently.
	if got := s.Pick("a"); got != "b" {
		t.Fatalf("picked %q, want b", got)
	}
	done := make(chan error, 1)
	go func() { done <- s.RemoveReplica("b") }()
	select {
	case <-done:
		t.Fatal("RemoveReplica returned while a pick was in flight")
	case <-time.After(30 * time.Millisecond):
	}
	s.Release("b") // flow finishes; drain should complete promptly
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("drain never completed after Release")
	}
	if got := s.Addrs(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Addrs() after removal = %v", got)
	}
	if snap := s.Snapshot(); snap.MembershipRemoves != 1 {
		t.Fatalf("membership removes = %d, want 1", snap.MembershipRemoves)
	}
}

func TestRemoveReplicaRefusesLast(t *testing.T) {
	s := newSet(t, []string{"a"}, backend.Options{Probe: okProbe})
	defer s.Close()
	if err := s.RemoveReplica("a"); err == nil {
		t.Fatal("removed the last replica")
	}
	if err := s.RemoveReplica("ghost"); err == nil {
		t.Fatal("removed an unknown replica")
	}
}

func TestRemoveReplicaFiresOnRemove(t *testing.T) {
	s := newSet(t, []string{"a", "b"}, backend.Options{Probe: okProbe})
	defer s.Close()
	var mu sync.Mutex
	var fired []string
	s.OnRemove(func(addr string) {
		mu.Lock()
		fired = append(fired, addr)
		mu.Unlock()
	})
	if err := s.RemoveReplica("b"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 1 || fired[0] != "b" {
		t.Fatalf("OnRemove fired with %v, want [b]", fired)
	}
}

func TestFlapBackKeepsHealthHistory(t *testing.T) {
	s := newSet(t, []string{"a", "b"}, backend.Options{
		Probe:         okProbe,
		FailThreshold: 1,
		Cooloff:       time.Hour, // ejected stays ejected for the test
	})
	defer s.Close()
	// b fails traffic and gets ejected, then discovery withdraws it.
	s.Report("b", time.Millisecond, errDown)
	if rs := replicaSnap(t, s, "b"); rs.Live {
		t.Fatal("b not ejected after hitting the fail threshold")
	}
	if err := s.RemoveReplica("b"); err != nil {
		t.Fatal(err)
	}
	// It flaps back in: the ejection (and its cooloff clock) must
	// survive the round trip — a sick endpoint does not launder its
	// reputation by bouncing through discovery.
	if err := s.AddReplica("b"); err != nil {
		t.Fatal(err)
	}
	rs := replicaSnap(t, s, "b")
	if rs.Live {
		t.Fatal("flapped-back replica came back live mid-cooloff")
	}
	if rs.Ejections != 1 {
		t.Fatalf("ejections = %d, want 1 (history lost)", rs.Ejections)
	}
}

func TestAdoptCarriesRetiredHistory(t *testing.T) {
	old := newSet(t, []string{"a", "b"}, backend.Options{
		Probe:         okProbe,
		FailThreshold: 1,
		Cooloff:       time.Hour,
	})
	defer old.Close()
	old.Report("b", time.Millisecond, errDown)
	if err := old.RemoveReplica("b"); err != nil {
		t.Fatal(err)
	}
	// Hot reload: the fresh set has only a, then discovery re-adds b.
	fresh := newSet(t, []string{"a"}, backend.Options{
		Probe:         okProbe,
		FailThreshold: 1,
		Cooloff:       time.Hour,
	})
	defer fresh.Close()
	fresh.Adopt(old)
	if err := fresh.AddReplica("b"); err != nil {
		t.Fatal(err)
	}
	if rs := replicaSnap(t, fresh, "b"); rs.Live || rs.Ejections != 1 {
		t.Fatalf("retired history not adopted: %+v", rs)
	}
}

func TestConcurrentChurnUnderTraffic(t *testing.T) {
	s := newSet(t, []string{"a", "b", "c"}, backend.Options{
		Probe:        okProbe,
		DrainTimeout: 100 * time.Millisecond,
	})
	defer s.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				addr := s.Pick("")
				if addr == "" {
					t.Error("Pick returned empty with live replicas present")
					return
				}
				s.Report(addr, time.Millisecond, nil)
				s.Release(addr)
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if err := s.AddReplica("d"); err != nil {
			t.Fatal(err)
		}
		if err := s.RemoveReplica("d"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestNoLeaksSetLifecycle(t *testing.T) {
	testutil.NoLeaks(t, func() {
		s := newSet(t, []string{"a", "b"}, backend.Options{
			Probe:         okProbe,
			ProbeInterval: time.Millisecond, // active prober running
		})
		s.Start()
		if err := s.AddReplica("c"); err != nil { // admission probe goroutine
			t.Fatal(err)
		}
		if err := s.RemoveReplica("a"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
		s.Close()
		s.Close() // idempotent
	})
}
