package backend_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starlink/internal/backend"
)

var errDown = errors.New("replica down")

func newSet(t *testing.T, addrs []string, opts backend.Options) *backend.Set {
	t.Helper()
	s, err := backend.New("svc", addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidates(t *testing.T) {
	if _, err := backend.New("", []string{"a"}, backend.Options{}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := backend.New("svc", nil, backend.Options{}); err == nil {
		t.Error("zero addresses accepted")
	}
	if _, err := backend.New("svc", []string{"a", "a"}, backend.Options{}); err == nil {
		t.Error("duplicate address accepted")
	}
	if _, err := backend.New("svc", []string{"a"}, backend.Options{Policy: "bogus"}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	s := newSet(t, []string{"a", "b"}, backend.Options{})
	got := map[string]int{}
	for i := 0; i < 10; i++ {
		addr := s.Pick("")
		got[addr]++
		s.Release(addr)
	}
	if got["a"] != 5 || got["b"] != 5 {
		t.Errorf("round-robin picks = %v, want 5/5", got)
	}
}

func TestPickAvoidsFailedReplica(t *testing.T) {
	s := newSet(t, []string{"a", "b", "c"}, backend.Options{Policy: backend.PowerOfTwo})
	for i := 0; i < 50; i++ {
		addr := s.Pick("b")
		if addr == "b" {
			t.Fatal("picked the avoided replica with two healthy alternatives")
		}
		s.Release(addr)
	}
	// With a single replica the avoid hint must lose: a guaranteed-wrong
	// pick beats no pick.
	one := newSet(t, []string{"only"}, backend.Options{})
	if addr := one.Pick("only"); addr != "only" {
		t.Errorf("single-replica avoid pick = %q", addr)
	}
}

func TestPowerOfTwoPrefersIdle(t *testing.T) {
	s := newSet(t, []string{"a", "b"}, backend.Options{Policy: backend.PowerOfTwo})
	first := s.Pick("") // in-flight 1 on one replica
	second := s.Pick("")
	if second == first {
		t.Fatalf("p2c picked the loaded replica %q twice", first)
	}
	s.Release(first)
	// first is now idle while second still has an exchange in flight.
	if third := s.Pick(""); third != first {
		t.Errorf("p2c pick = %q, want the idle %q", third, first)
	}
}

func TestEjectionThresholdAndFloor(t *testing.T) {
	s := newSet(t, []string{"a", "b"}, backend.Options{FailThreshold: 2, Cooloff: time.Minute})
	var ejected []string
	s.OnEject(func(addr string) { ejected = append(ejected, addr) })

	s.Report("a", 0, errDown)
	if snap := replicaSnap(t, s, "a"); !snap.Live {
		t.Fatal("one failure below the threshold ejected")
	}
	s.Report("a", 0, errDown)
	if snap := replicaSnap(t, s, "a"); snap.Live {
		t.Fatal("threshold failures did not eject")
	}
	if len(ejected) != 1 || ejected[0] != "a" {
		t.Errorf("eject hook fired %v, want [a]", ejected)
	}
	// b is the last live replica: the MinLive floor must refuse to eject
	// it no matter how hard it fails.
	for i := 0; i < 10; i++ {
		s.Report("b", 0, errDown)
	}
	if snap := replicaSnap(t, s, "b"); !snap.Live {
		t.Error("floor replica was ejected to zero live")
	}
	// Picks now have exactly one candidate.
	for i := 0; i < 5; i++ {
		if addr := s.Pick(""); addr != "b" {
			t.Fatalf("pick = %q with a ejected", addr)
		}
		s.Release("b")
	}
}

func TestProbationReadmitAndReeject(t *testing.T) {
	s := newSet(t, []string{"a", "b"}, backend.Options{
		FailThreshold: 1, Cooloff: 20 * time.Millisecond, MaxCooloff: time.Minute,
	})
	var readmitted []string
	s.OnReadmit(func(addr string) { readmitted = append(readmitted, addr) })

	s.Report("a", 0, errDown)
	for i := 0; i < 10; i++ {
		if addr := s.Pick(""); addr == "a" {
			t.Fatal("picked a cooling replica")
		} else {
			s.Release(addr)
		}
	}
	time.Sleep(30 * time.Millisecond)
	if snap := replicaSnap(t, s, "a"); !snap.Probation {
		t.Fatal("cooloff expiry did not move the replica to probation")
	}
	picked := false
	for i := 0; i < 20 && !picked; i++ {
		addr := s.Pick("")
		picked = addr == "a"
		s.Release(addr)
	}
	if !picked {
		t.Fatal("probation replica never picked")
	}
	// A probation failure re-ejects with a doubled cooloff.
	s.Report("a", 0, errDown)
	snap := replicaSnap(t, s, "a")
	if snap.Live || snap.Ejections != 2 {
		t.Fatalf("probation failure: live=%v ejections=%d, want re-ejected with 2", snap.Live, snap.Ejections)
	}
	if until := time.Until(snap.CooloffUntil); until < 30*time.Millisecond {
		t.Errorf("re-ejection cooloff %v, want ~2x the 20ms base", until)
	}
	// And a probation success re-admits fully.
	time.Sleep(50 * time.Millisecond)
	s.Report("a", time.Millisecond, nil)
	if snap := replicaSnap(t, s, "a"); !snap.Live {
		t.Error("probation success did not re-admit")
	}
	if len(readmitted) != 1 || readmitted[0] != "a" {
		t.Errorf("readmit hook fired %v, want [a]", readmitted)
	}
}

func TestProberEjectsAndReadmits(t *testing.T) {
	var bDown atomic.Bool
	s := newSet(t, []string{"a", "b"}, backend.Options{
		FailThreshold: 2,
		Cooloff:       5 * time.Millisecond,
		ProbeInterval: 2 * time.Millisecond,
		Probe: func(addr string) error {
			if addr == "b" && bDown.Load() {
				return errDown
			}
			return nil
		},
	})
	s.Start()
	defer s.Close()

	bDown.Store(true)
	if err := waitUntil(func() bool { return !replicaSnap(t, s, "b").Live }); err != nil {
		t.Fatal("prober never ejected the failing replica:", err)
	}
	bDown.Store(false)
	if err := waitUntil(func() bool { return replicaSnap(t, s, "b").Live }); err != nil {
		t.Fatal("prober never re-admitted the recovered replica:", err)
	}
	snap := replicaSnap(t, s, "b")
	if snap.Probes == 0 || snap.ProbeFailures == 0 {
		t.Errorf("probe counters = %d/%d, want both non-zero", snap.Probes, snap.ProbeFailures)
	}
}

func TestAdoptCarriesHealth(t *testing.T) {
	old := newSet(t, []string{"a", "b"}, backend.Options{FailThreshold: 1, Cooloff: time.Minute})
	old.Report("a", 5*time.Millisecond, nil)
	old.Report("b", 0, errDown)

	fresh := newSet(t, []string{"a", "b", "c"}, backend.Options{FailThreshold: 1, Cooloff: time.Minute})
	fresh.Adopt(old)
	if snap := replicaSnap(t, fresh, "b"); snap.Live || snap.Ejections != 1 {
		t.Errorf("adopted b: live=%v ejections=%d, want ejected once", snap.Live, snap.Ejections)
	}
	if snap := replicaSnap(t, fresh, "a"); snap.EWMANs == 0 {
		t.Error("adopted a lost its latency EWMA")
	}
	if snap := replicaSnap(t, fresh, "c"); !snap.Live {
		t.Error("replica unknown to the old set did not stay live")
	}
}

// TestBalancerChurnRace hammers one set from 64 goroutines doing the
// full pick/report/eject/re-admit cycle concurrently with an active
// prober, a snapshotting observer and an adopting shadow set; run under
// -race (make race) it is the balancer's memory-model gate. The final
// invariant: every in-flight slot taken was released.
func TestBalancerChurnRace(t *testing.T) {
	var flaky atomic.Bool
	s := newSet(t, []string{"a", "b", "c", "d"}, backend.Options{
		Policy:        backend.PowerOfTwo,
		FailThreshold: 2,
		Cooloff:       time.Millisecond,
		MaxCooloff:    4 * time.Millisecond,
		ProbeInterval: time.Millisecond,
		Probe: func(addr string) error {
			if addr == "d" && flaky.Load() {
				return errDown
			}
			return nil
		},
	})
	s.OnEject(func(string) {})
	s.OnReadmit(func(string) {})
	s.Start()
	defer s.Close()

	const goroutines, iters = 64, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			shadow, err := backend.New("shadow", []string{"a", "b", "c", "d"}, backend.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			avoid := ""
			for i := 0; i < iters; i++ {
				addr := s.Pick(avoid)
				if addr == "" {
					t.Error("Pick returned an empty address")
					return
				}
				switch {
				case (g+i)%13 == 0:
					s.Report(addr, 0, errDown)
					avoid = addr
				default:
					s.Report(addr, time.Duration(i%50)*time.Microsecond, nil)
					avoid = ""
				}
				s.Release(addr)
				switch i % 40 {
				case 10:
					flaky.Store(g%2 == 0)
				case 20:
					_ = s.Snapshot()
				case 30:
					shadow.Adopt(s)
				}
			}
		}(g)
	}
	wg.Wait()
	for _, rs := range s.Snapshot().Replicas {
		if rs.InFlight != 0 {
			t.Errorf("replica %s leaked %d in-flight slots", rs.Addr, rs.InFlight)
		}
	}
}

func replicaSnap(t *testing.T, s *backend.Set, addr string) backend.ReplicaSnapshot {
	t.Helper()
	for _, rs := range s.Snapshot().Replicas {
		if rs.Addr == addr {
			return rs
		}
	}
	t.Fatalf("replica %q not in snapshot", addr)
	return backend.ReplicaSnapshot{}
}

func waitUntil(cond func() bool) error {
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			return errors.New("timeout")
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}
