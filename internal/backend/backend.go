// Package backend manages named service replica sets for the mediation
// engine. The paper deploys a mediator "in the network" between every
// client of one application and the service of the other (Fig. 6); at
// production scale that service is N replicas, not one address, and the
// mediator itself is the natural place to decide where each flow lands
// and to react when a replica turns sick (adaptive-middleware work makes
// the same argument for policy living in the runtime).
//
// A Set is a logical service name bound to N replica addresses with
// three cooperating mechanisms:
//
//   - Balancing: every Pick resolves the logical name to one replica,
//     round-robin or power-of-two-choices over the live in-flight counts
//     (latency EWMA breaking ties), skipping ejected replicas.
//   - Passive outlier ejection: callers Report the outcome of each
//     exchange; FailThreshold consecutive failures eject the replica for
//     a cooloff window that doubles with each repeat ejection (capped by
//     MaxCooloff), and a MinLive floor guarantees the set never ejects
//     itself to zero.
//   - Active probing: Start runs a prober that dials (or custom-probes)
//     every replica each ProbeInterval, deadline-bounded, feeding the
//     same ejection state machine — so a dead replica is caught between
//     flows and a restarted one is re-admitted without waiting for
//     client traffic to gamble on it.
//
// A replica past its cooloff is in probation: it becomes pickable and
// probeable again, one success re-admits it fully, and one failure
// re-ejects it with a doubled cooloff.
//
// Membership is dynamic: AddReplica admits a new address (probed before
// it takes traffic) and RemoveReplica retires one (draining its
// in-flight exchanges first), so a discovery reconciler
// (internal/discovery) can track live service membership at runtime.
// Replicas are kept sorted by address, making Addrs and Snapshot
// deterministic across calls regardless of announcement order.
package backend

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Policy selects how Pick balances across live replicas.
type Policy string

// Balancing policies.
const (
	// RoundRobin rotates picks across the live replicas.
	RoundRobin Policy = "roundrobin"
	// PowerOfTwo samples two random live replicas and picks the one with
	// fewer in-flight exchanges, breaking ties by latency EWMA. This is
	// the classic "power of two choices" policy: nearly the balance
	// quality of least-loaded at the cost of two probes per pick.
	PowerOfTwo Policy = "p2c"
)

// Defaults applied when Options leave the knobs zero.
const (
	// DefaultFailThreshold is how many consecutive failures eject.
	DefaultFailThreshold = 3
	// DefaultCooloff is the first ejection's cooloff window.
	DefaultCooloff = 1 * time.Second
	// DefaultMaxCooloff caps the exponential cooloff growth.
	DefaultMaxCooloff = 30 * time.Second
	// DefaultProbeTimeout bounds each active health probe.
	DefaultProbeTimeout = 1 * time.Second
	// DefaultDrainTimeout bounds RemoveReplica's in-flight drain.
	DefaultDrainTimeout = 3 * time.Second
	// retiredCap bounds the carried health history of removed replicas:
	// past it the entry longest-removed is dropped. Flap-backs are
	// near-term by nature, so a small window is enough.
	retiredCap = 128
)

// Options tune a replica set.
type Options struct {
	// Policy is the balancing policy (default RoundRobin).
	Policy Policy
	// ProbeInterval is how often the prober checks every replica once
	// Start is called; 0 disables active probing (passive ejection and
	// probation picks still work).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe (default DefaultProbeTimeout).
	ProbeTimeout time.Duration
	// Probe checks one replica; nil means a deadline-bounded TCP dial
	// (DialProbe). Tests inject fakes here.
	Probe func(addr string) error
	// FailThreshold is how many consecutive reported failures eject a
	// live replica (default DefaultFailThreshold).
	FailThreshold int
	// Cooloff is the first ejection's window; each repeat ejection
	// doubles it up to MaxCooloff (defaults DefaultCooloff,
	// DefaultMaxCooloff).
	Cooloff    time.Duration
	MaxCooloff time.Duration
	// MinLive is the floor of live replicas the set refuses to eject
	// below (default 1, clamped to the initial set size).
	MinLive int
	// DrainTimeout bounds how long RemoveReplica waits for the retiring
	// replica's in-flight exchanges to finish before letting go of it
	// (default DefaultDrainTimeout).
	DrainTimeout time.Duration
}

// replica is one address's balancing and health state. The atomics are
// touched on every pick/report; the plain fields are guarded by Set.mu.
type replica struct {
	addr string

	inFlight atomic.Int64
	ewmaNs   atomic.Int64 // exchange latency EWMA, nanoseconds
	picks    atomic.Uint64
	oks      atomic.Uint64
	fails    atomic.Uint64
	probes   atomic.Uint64
	probeNGs atomic.Uint64

	// Guarded by Set.mu.
	ejected     bool
	until       time.Time // cooloff end; past it the replica is in probation
	consecFails int
	ejections   int
}

// members is one immutable membership generation: the replica slice is
// sorted by address and the map indexes it. Pick/Release/Report load it
// lock-free through Set.mem; AddReplica and RemoveReplica install a
// fresh generation under Set.mu (copy-on-write), so the hot paths never
// observe a half-mutated collection.
type members struct {
	replicas []*replica
	byAddr   map[string]*replica
}

// withReplica returns a new generation with r inserted in sorted
// position.
func (m *members) withReplica(r *replica) *members {
	next := &members{
		replicas: make([]*replica, 0, len(m.replicas)+1),
		byAddr:   make(map[string]*replica, len(m.replicas)+1),
	}
	next.replicas = append(next.replicas, m.replicas...)
	i := sort.Search(len(next.replicas), func(i int) bool { return next.replicas[i].addr >= r.addr })
	next.replicas = append(next.replicas, nil)
	copy(next.replicas[i+1:], next.replicas[i:])
	next.replicas[i] = r
	for _, rr := range next.replicas {
		next.byAddr[rr.addr] = rr
	}
	return next
}

// withoutAddr returns a new generation with addr removed.
func (m *members) withoutAddr(addr string) *members {
	next := &members{
		replicas: make([]*replica, 0, len(m.replicas)-1),
		byAddr:   make(map[string]*replica, len(m.replicas)-1),
	}
	for _, r := range m.replicas {
		if r.addr == addr {
			continue
		}
		next.replicas = append(next.replicas, r)
		next.byAddr[r.addr] = r
	}
	return next
}

// retiredHealth is the health history RemoveReplica keeps for an
// address, restored by a flap-back AddReplica so a sick endpoint that
// bounces out of and back into discovery does not reset to trusted.
type retiredHealth struct {
	ejected     bool
	until       time.Time
	consecFails int
	ejections   int
	ewmaNs      int64
	retiredAt   time.Time
}

// Set is a named replica set. All methods are safe for concurrent use.
type Set struct {
	name     string
	opts     Options
	mem      atomic.Pointer[members]
	rr       atomic.Uint64
	ejects   atomic.Uint64
	readmits atomic.Uint64
	adds     atomic.Uint64
	removes  atomic.Uint64

	mu        sync.Mutex
	onEject   []func(addr string)
	onReadmit []func(addr string)
	onRemove  []func(addr string)
	retired   map[string]retiredHealth
	draining  map[string]*replica
	started   bool
	closed    bool

	// aux tracks the side goroutines membership changes spawn (admission
	// probes); Close waits for them like it waits for the prober.
	aux  sync.WaitGroup
	stop chan struct{}
	done chan struct{}
}

// New validates the addresses and options and builds a set. Every
// replica starts live.
func New(name string, addrs []string, opts Options) (*Set, error) {
	if name == "" {
		return nil, errors.New("backend: set needs a name")
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("backend: set %q declares no replica addresses", name)
	}
	switch opts.Policy {
	case "":
		opts.Policy = RoundRobin
	case RoundRobin, PowerOfTwo:
	default:
		return nil, fmt.Errorf("backend: set %q: unknown balancing policy %q", name, opts.Policy)
	}
	if opts.FailThreshold <= 0 {
		opts.FailThreshold = DefaultFailThreshold
	}
	if opts.Cooloff <= 0 {
		opts.Cooloff = DefaultCooloff
	}
	if opts.MaxCooloff <= 0 {
		opts.MaxCooloff = DefaultMaxCooloff
	}
	if opts.MaxCooloff < opts.Cooloff {
		opts.MaxCooloff = opts.Cooloff
	}
	if opts.MinLive <= 0 {
		opts.MinLive = 1
	}
	if opts.MinLive > len(addrs) {
		opts.MinLive = len(addrs)
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = DefaultProbeTimeout
	}
	if opts.Probe == nil {
		opts.Probe = DialProbe(opts.ProbeTimeout)
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = DefaultDrainTimeout
	}
	s := &Set{
		name:     name,
		opts:     opts,
		retired:  make(map[string]retiredHealth),
		draining: make(map[string]*replica),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	m := &members{byAddr: make(map[string]*replica, len(addrs))}
	for _, addr := range addrs {
		if addr == "" {
			return nil, fmt.Errorf("backend: set %q has an empty replica address", name)
		}
		if _, dup := m.byAddr[addr]; dup {
			return nil, fmt.Errorf("backend: set %q declares replica %q twice", name, addr)
		}
		r := &replica{addr: addr}
		m.replicas = append(m.replicas, r)
		m.byAddr[addr] = r
	}
	sort.Slice(m.replicas, func(i, j int) bool { return m.replicas[i].addr < m.replicas[j].addr })
	s.mem.Store(m)
	return s, nil
}

// DialProbe returns the default active health probe: a deadline-bounded
// TCP dial that succeeds if the replica accepts the connection.
func DialProbe(timeout time.Duration) func(addr string) error {
	return func(addr string) error {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return err
		}
		return c.Close()
	}
}

// Name is the set's logical service name.
func (s *Set) Name() string { return s.name }

// Policy is the set's balancing policy.
func (s *Set) Policy() Policy { return s.opts.Policy }

// Addrs lists the current replica addresses, sorted — the order is
// deterministic across calls, so views built on it (the admin
// /backends and /discovery JSON) are stable.
func (s *Set) Addrs() []string {
	m := s.mem.Load()
	out := make([]string, len(m.replicas))
	for i, r := range m.replicas {
		out[i] = r.addr
	}
	return out
}

// OnEject registers a hook fired (outside the set lock) each time a
// replica is ejected; the engine uses it to flush the replica's idle
// pooled connections.
func (s *Set) OnEject(fn func(addr string)) {
	s.mu.Lock()
	s.onEject = append(s.onEject, fn)
	s.mu.Unlock()
}

// OnReadmit registers a hook fired (outside the set lock) each time an
// ejected replica is re-admitted.
func (s *Set) OnReadmit(fn func(addr string)) {
	s.mu.Lock()
	s.onReadmit = append(s.onReadmit, fn)
	s.mu.Unlock()
}

// OnRemove registers a hook fired (outside the set lock) after
// RemoveReplica has drained a replica; the engine uses it to flush the
// retired address's pooled connections for every client color.
func (s *Set) OnRemove(fn func(addr string)) {
	s.mu.Lock()
	s.onRemove = append(s.onRemove, fn)
	s.mu.Unlock()
}

// AddReplica admits a new address into the set. The replica does not
// take traffic immediately: it enters the set pending, an immediate
// asynchronous health probe is launched, and the first probe (or
// probation) success makes it pickable — so a freshly announced
// endpoint is verified before the balancer gambles a flow on it. If the
// address was removed earlier, its retired health history (ejection
// count, cooloff progress, latency EWMA) is restored first: a flapping
// endpoint re-announced by discovery keeps its doubled cooloffs instead
// of resetting to trusted. Adding an address already in the set is an
// error.
func (s *Set) AddReplica(addr string) error {
	if addr == "" {
		return fmt.Errorf("backend: set %q: empty replica address", s.name)
	}
	r := &replica{addr: addr}
	now := time.Now()
	s.mu.Lock()
	m := s.mem.Load()
	if _, dup := m.byAddr[addr]; dup {
		s.mu.Unlock()
		return fmt.Errorf("backend: set %q already has replica %q", s.name, addr)
	}
	cooling := false
	if h, ok := s.retired[addr]; ok {
		r.consecFails = h.consecFails
		r.ejections = h.ejections
		r.ewmaNs.Store(h.ewmaNs)
		if h.ejected && now.Before(h.until) {
			r.until = h.until
			cooling = true
		}
		delete(s.retired, addr)
	}
	// Pending admission rides the ejection machinery: the replica starts
	// ejected, so picks skip it, and the admission probe's success (or
	// any later probe/probation success) re-admits it. A replica restored
	// mid-cooloff keeps its original deadline instead.
	r.ejected = true
	if !cooling {
		r.until = now.Add(s.opts.Cooloff)
	}
	s.mem.Store(m.withReplica(r))
	s.adds.Add(1)
	closed := s.closed
	s.mu.Unlock()
	if !cooling && !closed {
		s.aux.Add(1)
		go func() {
			defer s.aux.Done()
			r.probes.Add(1)
			err := s.opts.Probe(addr)
			if err != nil {
				r.probeNGs.Add(1)
			}
			// Only apply if the replica is still the member for this addr:
			// a remove/re-add racing the probe must not have a stale probe
			// outcome resurrect or condemn the new incarnation.
			if s.mem.Load().byAddr[addr] == r {
				s.applyOutcome(r, err == nil)
			}
		}()
	}
	return nil
}

// RemoveReplica retires an address from the set: it leaves the
// balancing rotation immediately (no new picks), its in-flight
// exchanges are drained (bounded by DrainTimeout), its health history
// is kept for a flap-back AddReplica, and the OnRemove hooks fire so
// the engine can flush the address's pooled connections. Removing the
// last replica is refused — a set always resolves to something.
func (s *Set) RemoveReplica(addr string) error {
	s.mu.Lock()
	m := s.mem.Load()
	r := m.byAddr[addr]
	if r == nil {
		s.mu.Unlock()
		return fmt.Errorf("backend: set %q has no replica %q", s.name, addr)
	}
	if len(m.replicas) == 1 {
		s.mu.Unlock()
		return fmt.Errorf("backend: set %q: refusing to remove last replica %q", s.name, addr)
	}
	s.mem.Store(m.withoutAddr(addr))
	if len(s.retired) >= retiredCap {
		oldest, at := "", time.Time{}
		for a, h := range s.retired {
			if oldest == "" || h.retiredAt.Before(at) {
				oldest, at = a, h.retiredAt
			}
		}
		delete(s.retired, oldest)
	}
	s.retired[addr] = retiredHealth{
		ejected:     r.ejected,
		until:       r.until,
		consecFails: r.consecFails,
		ejections:   r.ejections,
		ewmaNs:      r.ewmaNs.Load(),
		retiredAt:   time.Now(),
	}
	s.removes.Add(1)
	s.draining[addr] = r
	fire := append([]func(string){}, s.onRemove...)
	s.mu.Unlock()
	s.drain(r)
	s.mu.Lock()
	if s.draining[addr] == r {
		delete(s.draining, addr)
	}
	s.mu.Unlock()
	for _, fn := range fire {
		fn(addr)
	}
	return nil
}

// drain waits (bounded by DrainTimeout, cut short by Close) for a
// retired replica's in-flight exchanges to finish; the draining map
// keeps Release resolving the address meanwhile, so the slot count can
// still fall to zero through the exchanges that hold slots.
func (s *Set) drain(r *replica) {
	deadline := time.Now().Add(s.opts.DrainTimeout)
	for r.inFlight.Load() > 0 && time.Now().Before(deadline) {
		select {
		case <-s.stop:
			return
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Pick resolves the set to one replica address and accounts one
// in-flight exchange against it; the caller must pair it with Release.
// Candidates are the live replicas plus any whose cooloff has expired
// (probation); avoid, when it names a replica, is skipped as long as
// another candidate remains — the fault-recovery redial path passes the
// replica that just failed so the retry lands somewhere else. When
// every replica is cooling (only reachable through adopted state), the
// one closest to probation is returned rather than failing the flow.
func (s *Set) Pick(avoid string) string {
	m := s.mem.Load()
	var r *replica
	if len(m.replicas) == 1 {
		r = m.replicas[0]
	} else {
		r = s.pickMulti(m, avoid)
	}
	r.picks.Add(1)
	r.inFlight.Add(1)
	return r.addr
}

func (s *Set) pickMulti(m *members, avoid string) *replica {
	now := time.Now()
	cands := make([]*replica, 0, len(m.replicas))
	var soonest *replica
	s.mu.Lock()
	for _, r := range m.replicas {
		if r.ejected && now.Before(r.until) {
			if soonest == nil || r.until.Before(soonest.until) {
				soonest = r
			}
			continue
		}
		cands = append(cands, r)
	}
	s.mu.Unlock()
	if len(cands) == 0 {
		return soonest
	}
	if avoid != "" && len(cands) > 1 {
		kept := cands[:0]
		for _, r := range cands {
			if r.addr != avoid {
				kept = append(kept, r)
			}
		}
		if len(kept) > 0 {
			cands = kept
		}
	}
	if len(cands) == 1 {
		return cands[0]
	}
	if s.opts.Policy == PowerOfTwo {
		i := rand.Intn(len(cands))
		j := rand.Intn(len(cands) - 1)
		if j >= i {
			j++
		}
		return better(cands[i], cands[j])
	}
	return cands[int((s.rr.Add(1)-1)%uint64(len(cands)))]
}

// better is the power-of-two comparison: fewer in-flight exchanges
// wins, latency EWMA breaks the tie.
func better(a, b *replica) *replica {
	la, lb := a.inFlight.Load(), b.inFlight.Load()
	if la != lb {
		if la < lb {
			return a
		}
		return b
	}
	if b.ewmaNs.Load() < a.ewmaNs.Load() {
		return b
	}
	return a
}

// Release returns a Pick's in-flight slot. A replica mid-removal still
// resolves (so its drain can complete); genuinely unknown addresses are
// ignored so callers can release unconditionally.
func (s *Set) Release(addr string) {
	if r := s.mem.Load().byAddr[addr]; r != nil {
		r.inFlight.Add(-1)
		return
	}
	s.mu.Lock()
	r := s.draining[addr]
	s.mu.Unlock()
	if r != nil {
		r.inFlight.Add(-1)
	}
}

// Report feeds one exchange outcome into the ejection state machine. A
// success resets the consecutive-failure count, folds latency (when
// positive) into the replica's EWMA, and re-admits a probation replica;
// a failure increments the count and ejects the replica once it reaches
// FailThreshold — unless that would drop the live count to MinLive — or
// re-ejects a probation replica immediately with a doubled cooloff.
func (s *Set) Report(addr string, latency time.Duration, err error) {
	r := s.mem.Load().byAddr[addr]
	if r == nil {
		// A replica mid-removal takes no further health transitions: its
		// history was captured at removal time.
		return
	}
	if err == nil {
		r.oks.Add(1)
		if latency > 0 {
			updateEWMA(&r.ewmaNs, latency)
		}
	} else {
		r.fails.Add(1)
	}
	s.applyOutcome(r, err == nil)
}

// applyOutcome runs the mu-guarded health transition shared by Report
// and the prober, firing the eject/readmit hooks outside the lock.
func (s *Set) applyOutcome(r *replica, ok bool) {
	var fire []func(string)
	s.mu.Lock()
	switch {
	case ok:
		r.consecFails = 0
		if r.ejected {
			r.ejected = false
			r.until = time.Time{}
			s.readmits.Add(1)
			fire = append(fire, s.onReadmit...)
		}
	case r.ejected:
		// A failure while cooling (an exchange that was already in
		// flight) changes nothing; a probation failure re-ejects with a
		// doubled window.
		r.consecFails++
		if !time.Now().Before(r.until) {
			s.ejectLocked(r)
			fire = append(fire, s.onEject...)
		}
	default:
		r.consecFails++
		if r.consecFails >= s.opts.FailThreshold && s.liveCountLocked() > s.opts.MinLive {
			s.ejectLocked(r)
			fire = append(fire, s.onEject...)
		}
	}
	s.mu.Unlock()
	for _, fn := range fire {
		fn(r.addr)
	}
}

// ejectLocked marks r ejected for an exponentially growing cooloff.
// Caller holds s.mu.
func (s *Set) ejectLocked(r *replica) {
	shift := r.ejections
	if shift > 6 {
		shift = 6 // 64x the base is past any sane MaxCooloff already
	}
	d := s.opts.Cooloff << uint(shift)
	if d > s.opts.MaxCooloff || d <= 0 {
		d = s.opts.MaxCooloff
	}
	r.ejected = true
	r.until = time.Now().Add(d)
	r.ejections++
	s.ejects.Add(1)
}

// liveCountLocked counts replicas not currently ejected. Caller holds
// s.mu.
func (s *Set) liveCountLocked() int {
	n := 0
	for _, r := range s.mem.Load().replicas {
		if !r.ejected {
			n++
		}
	}
	return n
}

// updateEWMA folds one latency sample into the running average with a
// 1/8 gain, lock-free.
func updateEWMA(e *atomic.Int64, sample time.Duration) {
	for {
		old := e.Load()
		next := int64(sample)
		if old != 0 {
			next = old + (int64(sample)-old)/8
		}
		if e.CompareAndSwap(old, next) {
			return
		}
	}
}

// Start launches the active prober (a no-op when ProbeInterval is zero
// or the set is closed). Idempotent.
func (s *Set) Start() {
	s.mu.Lock()
	if s.started || s.closed || s.opts.ProbeInterval <= 0 {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go s.probeLoop()
}

// Close stops the prober, cuts short any in-progress removal drains and
// waits for outstanding admission probes. Idempotent; the set's picking
// and reporting surfaces keep working (a closed set is merely
// unprobed).
func (s *Set) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	started := s.started
	s.mu.Unlock()
	close(s.stop)
	if started {
		<-s.done
	}
	s.aux.Wait()
}

func (s *Set) probeLoop() {
	defer close(s.done)
	t := time.NewTicker(s.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.probeAll()
		}
	}
}

// probeAll checks every replica concurrently so one hung probe cannot
// starve the others; each probe is deadline-bounded by the Probe
// function itself (DialProbe honours ProbeTimeout).
func (s *Set) probeAll() {
	var wg sync.WaitGroup
	for _, r := range s.mem.Load().replicas {
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			r.probes.Add(1)
			err := s.opts.Probe(r.addr)
			if err != nil {
				r.probeNGs.Add(1)
			}
			s.applyOutcome(r, err == nil)
		}(r)
	}
	wg.Wait()
}

// Adopt carries replica health from an equivalent previous set —
// typically the one a gateway reload is replacing — into this one:
// ejection state, cooloff progress, consecutive-failure counts and
// latency EWMAs are copied for every address both sets share, so a hot
// swap does not reset a sick replica to live and re-learn its sickness
// on client traffic. Counters and in-flight accounting stay fresh.
func (s *Set) Adopt(old *Set) {
	if old == nil || old == s {
		return
	}
	type health struct {
		ejected     bool
		until       time.Time
		consecFails int
		ejections   int
		ewmaNs      int64
	}
	oldMem := old.mem.Load()
	carried := make(map[string]health, len(oldMem.replicas))
	old.mu.Lock()
	for _, r := range oldMem.replicas {
		carried[r.addr] = health{r.ejected, r.until, r.consecFails, r.ejections, r.ewmaNs.Load()}
	}
	retired := make(map[string]retiredHealth, len(old.retired))
	for addr, h := range old.retired {
		retired[addr] = h
	}
	old.mu.Unlock()
	s.mu.Lock()
	for _, r := range s.mem.Load().replicas {
		h, ok := carried[r.addr]
		if !ok {
			continue
		}
		r.ejected = h.ejected
		r.until = h.until
		r.consecFails = h.consecFails
		r.ejections = h.ejections
		r.ewmaNs.Store(h.ewmaNs)
	}
	// The removed-replica history crosses the swap too, so a flap-back
	// re-add shortly after a hot reload still sees its record.
	for addr, h := range retired {
		if _, member := s.mem.Load().byAddr[addr]; member {
			continue
		}
		if _, have := s.retired[addr]; !have {
			s.retired[addr] = h
		}
	}
	s.mu.Unlock()
}

// ReplicaSnapshot is one replica's point-in-time state.
type ReplicaSnapshot struct {
	// Addr is the replica address.
	Addr string `json:"addr"`
	// Live is true when the replica is not ejected; Probation marks an
	// ejected replica whose cooloff has expired (pickable again).
	Live      bool `json:"live"`
	Probation bool `json:"probation,omitempty"`
	// CooloffUntil is when an ejected replica becomes probeable again.
	CooloffUntil time.Time `json:"cooloff_until"`
	// InFlight is the current number of exchanges charged to the replica.
	InFlight int64 `json:"in_flight"`
	// EWMANs is the exchange-latency running average in nanoseconds.
	EWMANs int64 `json:"ewma_ns"`
	// Picks/Successes/Failures count balancing picks and reported
	// exchange outcomes; ConsecFails is the current failure streak.
	Picks       uint64 `json:"picks"`
	Successes   uint64 `json:"successes"`
	Failures    uint64 `json:"failures"`
	ConsecFails int    `json:"consec_fails"`
	// Ejections counts how many times this replica has been ejected.
	Ejections int `json:"ejections"`
	// Probes/ProbeFailures count active health probes.
	Probes        uint64 `json:"probes"`
	ProbeFailures uint64 `json:"probe_failures"`
}

// SetSnapshot is a set's point-in-time state, JSON-shaped for the
// admin endpoint's /backends view.
type SetSnapshot struct {
	Name   string `json:"name"`
	Policy Policy `json:"policy"`
	// ProbeInterval/ProbeTimeout are nanoseconds (0 = passive only).
	ProbeInterval time.Duration `json:"probe_interval_ns"`
	ProbeTimeout  time.Duration `json:"probe_timeout_ns"`
	FailThreshold int           `json:"fail_threshold"`
	Cooloff       time.Duration `json:"cooloff_ns"`
	MaxCooloff    time.Duration `json:"max_cooloff_ns"`
	MinLive       int           `json:"min_live"`
	// Ejections/Readmissions are set-lifetime totals;
	// MembershipAdds/MembershipRemoves count dynamic AddReplica and
	// RemoveReplica applications.
	Ejections         uint64            `json:"ejections_total"`
	Readmissions      uint64            `json:"readmissions_total"`
	MembershipAdds    uint64            `json:"membership_adds_total"`
	MembershipRemoves uint64            `json:"membership_removes_total"`
	Replicas          []ReplicaSnapshot `json:"replicas"`
}

// Snapshot captures the set's configuration, totals and every
// replica's state, replicas sorted by address.
func (s *Set) Snapshot() SetSnapshot {
	m := s.mem.Load()
	snap := SetSnapshot{
		Name:              s.name,
		Policy:            s.opts.Policy,
		ProbeInterval:     s.opts.ProbeInterval,
		ProbeTimeout:      s.opts.ProbeTimeout,
		FailThreshold:     s.opts.FailThreshold,
		Cooloff:           s.opts.Cooloff,
		MaxCooloff:        s.opts.MaxCooloff,
		MinLive:           s.opts.MinLive,
		Ejections:         s.ejects.Load(),
		Readmissions:      s.readmits.Load(),
		MembershipAdds:    s.adds.Load(),
		MembershipRemoves: s.removes.Load(),
		Replicas:          make([]ReplicaSnapshot, 0, len(m.replicas)),
	}
	now := time.Now()
	s.mu.Lock()
	for _, r := range m.replicas {
		snap.Replicas = append(snap.Replicas, ReplicaSnapshot{
			Addr:          r.addr,
			Live:          !r.ejected,
			Probation:     r.ejected && !now.Before(r.until),
			CooloffUntil:  r.until,
			InFlight:      r.inFlight.Load(),
			EWMANs:        r.ewmaNs.Load(),
			Picks:         r.picks.Load(),
			Successes:     r.oks.Load(),
			Failures:      r.fails.Load(),
			ConsecFails:   r.consecFails,
			Ejections:     r.ejections,
			Probes:        r.probes.Load(),
			ProbeFailures: r.probeNGs.Load(),
		})
	}
	s.mu.Unlock()
	return snap
}
