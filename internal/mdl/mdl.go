// Package mdl implements Starlink's Message Description Language.
//
// An MDL document describes the wire format of a protocol's messages so
// that message parsers (wire bytes -> abstract message) and composers
// (abstract message -> wire bytes) can be generated automatically at
// runtime (paper Section 4.1, Fig. 5). The framework is deliberately
// flexible about the concrete language: specialised engines exist for
// binary messages (package binenc), text messages (package textenc) and
// XML messages (package xmlenc), all sharing the document syntax parsed
// here.
//
// The concrete syntax follows the paper:
//
//	# GIOP message formats
//	<MDL:GIOP:binary>
//	<Message:GIOPRequest>
//	<Rule:MessageType=0>
//	<RequestID:32>
//	<ObjectKeyLength:32>
//	<ObjectKey:ObjectKeyLength:bytes>
//	<align:64>
//	<ParameterArray:cdrseq>
//	<End:Message>
//
// Each directive is an angle-bracketed, colon-separated tuple. The header
// directive <MDL:name:encoding> names the spec and selects an engine.
// <Message:...> opens a message layout, <End:Message> closes it, and
// <Rule:Field=Value> adds a discriminator: when a packet is parsed against
// a multi-message spec, the message whose rules all hold is selected, and
// when composing, rule fields are filled in automatically. All other
// directives are layout items whose meaning is engine-specific.
package mdl

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"

	"starlink/internal/message"
)

// Encoding names for the built-in engines.
const (
	EncodingBinary = "binary"
	EncodingText   = "text"
	EncodingXML    = "xml"
)

// Errors reported by the MDL layer.
var (
	// ErrNoMessageMatch is returned by Parse when no message layout in the
	// spec matches the packet.
	ErrNoMessageMatch = errors.New("mdl: no message layout matches packet")
	// ErrUnknownMessage is returned by Compose when the abstract message
	// names a layout absent from the spec.
	ErrUnknownMessage = errors.New("mdl: unknown message layout")
	// ErrSyntax is wrapped by all document syntax errors.
	ErrSyntax = errors.New("mdl: syntax error")
)

// Rule is a discriminator constraint <Rule:Field=Value>.
type Rule struct {
	// Field is the label of the constrained field.
	Field string
	// Value is the required value, compared textually.
	Value string
}

// Item is one engine-specific layout directive: the colon-separated parts
// inside the angle brackets, plus the source line for diagnostics.
type Item struct {
	// Parts holds the colon-separated components, e.g. ["RequestID", "32"].
	Parts []string
	// Line is the 1-based source line of the directive.
	Line int
}

// Label returns the first part — by convention the field label.
func (it Item) Label() string {
	if len(it.Parts) == 0 {
		return ""
	}
	return it.Parts[0]
}

// Arg returns part i, or "" when absent.
func (it Item) Arg(i int) string {
	if i >= len(it.Parts) {
		return ""
	}
	return it.Parts[i]
}

// MessageSpec is the layout of one message kind.
type MessageSpec struct {
	// Name identifies the layout ("GIOPRequest").
	Name string
	// Rules are the discriminators that select and pre-fill the layout.
	Rules []Rule
	// Items are the ordered layout directives.
	Items []Item
}

// Rule returns the rule for a field label, if any.
func (ms *MessageSpec) Rule(field string) (Rule, bool) {
	for _, r := range ms.Rules {
		if r.Field == field {
			return r, true
		}
	}
	return Rule{}, false
}

// Spec is a parsed MDL document.
type Spec struct {
	// Name is the spec name from the <MDL:name:encoding> header.
	Name string
	// Encoding selects the engine: "binary", "text" or "xml".
	Encoding string
	// Messages are the layouts, in document order.
	Messages []*MessageSpec
}

// Message returns the layout with the given name, or nil.
func (s *Spec) Message(name string) *MessageSpec {
	for _, m := range s.Messages {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Parse reads an MDL document.
func Parse(r io.Reader) (*Spec, error) {
	spec := &Spec{}
	var cur *MessageSpec
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		// A line may carry several <...> directives (as in Fig. 5).
		for text != "" {
			open := strings.IndexByte(text, '<')
			if open < 0 {
				break
			}
			closeIdx := strings.IndexByte(text, '>')
			if closeIdx < open {
				return nil, fmt.Errorf("%w: line %d: unterminated directive", ErrSyntax, line)
			}
			body := text[open+1 : closeIdx]
			text = text[closeIdx+1:]
			if err := spec.apply(body, line, &cur); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mdl: read: %w", err)
	}
	if cur != nil {
		return nil, fmt.Errorf("%w: message %q not closed with <End:Message>", ErrSyntax, cur.Name)
	}
	if len(spec.Messages) == 0 {
		return nil, fmt.Errorf("%w: document defines no messages", ErrSyntax)
	}
	return spec, nil
}

// ParseString parses an MDL document held in a string.
func ParseString(s string) (*Spec, error) { return Parse(strings.NewReader(s)) }

func (s *Spec) apply(body string, line int, cur **MessageSpec) error {
	parts := strings.Split(body, ":")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	switch parts[0] {
	case "MDL":
		if len(parts) < 3 {
			return fmt.Errorf("%w: line %d: header needs <MDL:name:encoding>", ErrSyntax, line)
		}
		s.Name, s.Encoding = parts[1], parts[2]
		return nil
	case "Message":
		if *cur != nil {
			return fmt.Errorf("%w: line %d: nested <Message> inside %q", ErrSyntax, line, (*cur).Name)
		}
		if len(parts) < 2 || parts[1] == "" {
			return fmt.Errorf("%w: line %d: <Message> needs a name", ErrSyntax, line)
		}
		*cur = &MessageSpec{Name: parts[1]}
		return nil
	case "End":
		// Only <End:Message> closes the layout; other <End:...> directives
		// (e.g. <End:Repeat>) are engine items.
		if len(parts) >= 2 && parts[1] != "Message" {
			if *cur == nil {
				return fmt.Errorf("%w: line %d: directive <%s> outside a message", ErrSyntax, line, body)
			}
			(*cur).Items = append((*cur).Items, Item{Parts: parts, Line: line})
			return nil
		}
		if *cur == nil {
			return fmt.Errorf("%w: line %d: <End:Message> outside a message", ErrSyntax, line)
		}
		s.Messages = append(s.Messages, *cur)
		*cur = nil
		return nil
	case "Rule":
		if *cur == nil {
			return fmt.Errorf("%w: line %d: <Rule> outside a message", ErrSyntax, line)
		}
		if len(parts) < 2 {
			return fmt.Errorf("%w: line %d: <Rule:Field=Value>", ErrSyntax, line)
		}
		eq := strings.SplitN(strings.Join(parts[1:], ":"), "=", 2)
		if len(eq) != 2 {
			return fmt.Errorf("%w: line %d: <Rule:Field=Value>", ErrSyntax, line)
		}
		(*cur).Rules = append((*cur).Rules, Rule{Field: strings.TrimSpace(eq[0]), Value: strings.TrimSpace(eq[1])})
		return nil
	default:
		if *cur == nil {
			return fmt.Errorf("%w: line %d: directive <%s> outside a message", ErrSyntax, line, body)
		}
		(*cur).Items = append((*cur).Items, Item{Parts: parts, Line: line})
		return nil
	}
}

// Codec is a generated parser/composer pair specialised from an MDL spec.
// Parse transforms one network message into its abstract representation;
// Compose performs the reverse. Implementations are stateless and safe for
// concurrent use.
type Codec interface {
	// Parse decodes the wire bytes of one message.
	Parse(data []byte) (*message.Message, error)
	// Compose encodes an abstract message to wire bytes.
	Compose(msg *message.Message) ([]byte, error)
}

// EngineFactory builds a codec for a spec; engines register themselves with
// the default registry so that NewCodec can dispatch on Spec.Encoding.
type EngineFactory func(*Spec) (Codec, error)

// Registry maps encoding names to engine factories. The zero value is
// ready to use.
type Registry struct {
	factories map[string]EngineFactory
}

// Register adds (or replaces) the factory for an encoding.
func (r *Registry) Register(encoding string, f EngineFactory) {
	if r.factories == nil {
		r.factories = make(map[string]EngineFactory)
	}
	r.factories[encoding] = f
}

// NewCodec builds a codec for the spec using the registered engine.
func (r *Registry) NewCodec(spec *Spec) (Codec, error) {
	f, ok := r.factories[spec.Encoding]
	if !ok {
		return nil, fmt.Errorf("mdl: no engine registered for encoding %q", spec.Encoding)
	}
	return f(spec)
}

// Encodings lists registered encodings (unordered).
func (r *Registry) Encodings() []string {
	out := make([]string, 0, len(r.factories))
	for k := range r.factories {
		out = append(out, k)
	}
	return out
}
