package textenc

// HTTPMDL is the canonical text-MDL description of HTTP/1.1 requests
// and responses, used by the REST binder and the case-study models.
const HTTPMDL = `
# HTTP/1.1 message formats
<MDL:HTTP:text>
<Message:HTTPRequest>
<Rule:Version=HTTP/*>
<Method:tok:sp>
<Target:tok:sp>
<Version:tok:crlf>
<Headers:headers>
<Body:body>
<Path:path:Target>
<Query:query:Target>
<End:Message>

<Message:HTTPResponse>
<Rule:Version=HTTP/*>
<Version:tok:sp>
<Status:tok:sp>
<Reason:tok:crlf>
<Headers:headers>
<Body:body>
<End:Message>
`
