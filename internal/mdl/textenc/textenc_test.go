package textenc

import (
	"errors"
	"strings"
	"testing"

	"starlink/internal/mdl"
	"starlink/internal/message"
)

// httpDoc is the HTTP.mdl used throughout the case study.
const httpDoc = `
<MDL:HTTP:text>
<Message:HTTPRequest>
<Rule:Version=HTTP/*>
<Method:tok:sp>
<Target:tok:sp>
<Version:tok:crlf>
<Headers:headers>
<Body:body>
<Path:path:Target>
<Query:query:Target>
<End:Message>

<Message:HTTPResponse>
<Rule:Version=HTTP/*>
<Version:tok:sp>
<Status:tok:sp>
<Reason:tok:crlf>
<Headers:headers>
<Body:body>
<End:Message>
`

func mustCodec(t *testing.T, doc string) mdl.Codec {
	t.Helper()
	spec, err := mdl.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParseRequestWithQuery(t *testing.T) {
	c := mustCodec(t, httpDoc)
	raw := "GET /data/feed/api/all?q=tree&max-results=3 HTTP/1.1\r\n" +
		"Host: picasaweb.google.com\r\nAccept: */*\r\n\r\n"
	msg, err := c.Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Name != "HTTPRequest" {
		t.Fatalf("parsed as %q", msg.Name)
	}
	checks := map[string]string{
		"Method":            "GET",
		"Target":            "/data/feed/api/all?q=tree&max-results=3",
		"Version":           "HTTP/1.1",
		"Path":              "/data/feed/api/all",
		"Query.q":           "tree",
		"Query.max-results": "3",
		"Headers.Host":      "picasaweb.google.com",
		"Body":              "",
	}
	for path, want := range checks {
		got, err := msg.GetString(path)
		if err != nil {
			t.Errorf("GetString(%q): %v", path, err)
			continue
		}
		if got != want {
			t.Errorf("%s = %q, want %q", path, got, want)
		}
	}
}

func TestParseResponse(t *testing.T) {
	c := mustCodec(t, httpDoc)
	raw := "HTTP/1.1 200 OK\r\nContent-Type: application/atom+xml\r\nContent-Length: 5\r\n\r\nhello"
	msg, err := c.Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Name != "HTTPResponse" {
		t.Fatalf("parsed as %q", msg.Name)
	}
	if s, _ := msg.GetString("Status"); s != "200" {
		t.Errorf("Status = %q", s)
	}
	if b, _ := msg.GetString("Body"); b != "hello" {
		t.Errorf("Body = %q", b)
	}
}

func TestComposeRequestRoundTrip(t *testing.T) {
	c := mustCodec(t, httpDoc)
	in := message.New("HTTPRequest",
		message.NewPrimitive("Method", message.TypeString, "POST"),
		message.NewPrimitive("Target", message.TypeString, "/xml-rpc"),
		message.NewPrimitive("Version", message.TypeString, "HTTP/1.1"),
		message.NewStruct("Headers",
			message.NewPrimitive("Host", message.TypeString, "flickr.example"),
			message.NewPrimitive("Content-Type", message.TypeString, "text/xml"),
		),
		message.NewPrimitive("Body", message.TypeString, "<methodCall/>"),
	)
	wire, err := c.Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	s := string(wire)
	if !strings.HasPrefix(s, "POST /xml-rpc HTTP/1.1\r\n") {
		t.Errorf("request line wrong: %q", s)
	}
	if !strings.Contains(s, "Content-Length: 13\r\n") {
		t.Errorf("Content-Length not derived: %q", s)
	}
	back, err := c.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := back.GetString("Body"); b != "<methodCall/>" {
		t.Errorf("Body = %q", b)
	}
	if ct, _ := back.GetString("Headers.Content-Type"); ct != "text/xml" {
		t.Errorf("Content-Type = %q", ct)
	}
}

func TestComposeTargetFromDerivedQuery(t *testing.T) {
	// The Fig. 9 translation sets Path and Query, not Target; the composer
	// must rebuild the request target.
	c := mustCodec(t, httpDoc)
	in := message.New("HTTPRequest",
		message.NewPrimitive("Method", message.TypeString, "GET"),
		message.NewPrimitive("Version", message.TypeString, "HTTP/1.1"),
		message.NewPrimitive("Path", message.TypeString, "/data/feed/api/all"),
		message.NewStruct("Query",
			message.NewPrimitive("q", message.TypeString, "tall tree"),
			message.NewPrimitive("max-results", message.TypeString, "3"),
		),
		message.NewStruct("Headers",
			message.NewPrimitive("Host", message.TypeString, "picasaweb.google.com"),
		),
		message.NewPrimitive("Body", message.TypeString, ""),
	)
	wire, err := c.Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	line, _, _ := strings.Cut(string(wire), "\r\n")
	if line != "GET /data/feed/api/all?max-results=3&q=tall+tree HTTP/1.1" {
		t.Errorf("request line = %q", line)
	}
	back, err := c.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if q, _ := back.GetString("Query.q"); q != "tall tree" {
		t.Errorf("round-trip query q = %q", q)
	}
}

func TestComposeMissingTokenError(t *testing.T) {
	c := mustCodec(t, httpDoc)
	in := message.New("HTTPRequest",
		message.NewPrimitive("Method", message.TypeString, "GET"),
	)
	if _, err := c.Compose(in); err == nil {
		t.Error("compose with missing Target accepted")
	}
}

func TestComposeUnknownMessage(t *testing.T) {
	c := mustCodec(t, httpDoc)
	if _, err := c.Compose(message.New("Nope")); !errors.Is(err, mdl.ErrUnknownMessage) {
		t.Errorf("err = %v", err)
	}
}

func TestParseTruncated(t *testing.T) {
	c := mustCodec(t, httpDoc)
	for _, raw := range []string{"", "GET", "GET /x", "GET /x HTTP/1.1", "GET /x HTTP/1.1\r\nHost: a"} {
		if _, err := c.Parse([]byte(raw)); !errors.Is(err, mdl.ErrNoMessageMatch) {
			t.Errorf("Parse(%q) err = %v, want ErrNoMessageMatch", raw, err)
		}
	}
}

func TestParseMalformedHeader(t *testing.T) {
	c := mustCodec(t, httpDoc)
	raw := "GET /x HTTP/1.1\r\nbadheader\r\n\r\n"
	if _, err := c.Parse([]byte(raw)); err == nil {
		t.Error("malformed header accepted")
	}
}

func TestRuleRejectsNonHTTP(t *testing.T) {
	c := mustCodec(t, httpDoc)
	raw := "HELLO WORLD FOO/9\r\nA: b\r\n\r\n"
	if _, err := c.Parse([]byte(raw)); !errors.Is(err, mdl.ErrNoMessageMatch) {
		t.Errorf("non-HTTP accepted: %v", err)
	}
}

func TestBadSpecs(t *testing.T) {
	tests := []struct {
		name string
		doc  string
	}{
		{"bad delim", "<MDL:T:text>\n<Message:M><A:tok:pipe><End:Message>"},
		{"unknown kind", "<MDL:T:text>\n<Message:M><A:wat><End:Message>"},
		{"derived missing source", "<MDL:T:text>\n<Message:M><P:path:T><End:Message>"},
		{"derived forward source", "<MDL:T:text>\n<Message:M><P:query:T><T:tok:sp><End:Message>"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec, err := mdl.ParseString(tt.doc)
			if err != nil {
				t.Fatalf("doc did not parse: %v", err)
			}
			if _, err := New(spec); !errors.Is(err, ErrBadSpec) {
				t.Errorf("New err = %v, want ErrBadSpec", err)
			}
		})
	}
}

func TestRepeatedQueryParams(t *testing.T) {
	c := mustCodec(t, httpDoc)
	raw := "GET /p?tag=a&tag=b HTTP/1.1\r\n\r\n"
	msg, err := c.Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	q, err := msg.Lookup("Query")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Children) != 2 {
		t.Fatalf("query children = %d", len(q.Children))
	}
	v0, _ := msg.GetString("Query.tag[0]")
	v1, _ := msg.GetString("Query.tag[1]")
	if v0 != "a" || v1 != "b" {
		t.Errorf("tags = %q, %q", v0, v1)
	}
}

func TestExplicitContentLengthPreservedWithoutBody(t *testing.T) {
	doc := "<MDL:T:text>\n<Message:M><A:tok:crlf><H:headers><End:Message>"
	c := mustCodec(t, doc)
	in := message.New("M",
		message.NewPrimitive("A", message.TypeString, "line"),
		message.NewStruct("H", message.NewPrimitive("Content-Length", message.TypeString, "99")),
	)
	wire, err := c.Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(wire), "Content-Length: 99") {
		t.Errorf("explicit Content-Length lost: %q", wire)
	}
}

func BenchmarkHTTPParse(b *testing.B) {
	spec, _ := mdl.ParseString(httpDoc)
	c, _ := New(spec)
	raw := []byte("GET /data/feed/api/all?q=tree&max-results=3 HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Parse(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHTTPCompose(b *testing.B) {
	spec, _ := mdl.ParseString(httpDoc)
	c, _ := New(spec)
	msg := message.New("HTTPRequest",
		message.NewPrimitive("Method", message.TypeString, "GET"),
		message.NewPrimitive("Target", message.TypeString, "/data/feed/api/all?q=tree"),
		message.NewPrimitive("Version", message.TypeString, "HTTP/1.1"),
		message.NewStruct("Headers", message.NewPrimitive("Host", message.TypeString, "x")),
		message.NewPrimitive("Body", message.TypeString, ""),
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compose(msg); err != nil {
			b.Fatal(err)
		}
	}
}
