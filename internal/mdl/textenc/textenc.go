// Package textenc is the MDL engine for line-structured text protocols
// such as HTTP.
//
// Layout items:
//
//	<Name:tok:sp>        token up to (and consuming) a space
//	<Name:tok:crlf>      token up to (and consuming) CR-LF
//	<Name:tok:eof>       token to the end of the packet
//	<Name:headers>       RFC-822 header block up to the blank line; parsed
//	                     into a structured field with one child per header
//	<Name:body>          the remainder of the packet (message framing, e.g.
//	                     Content-Length, is the transport codec's concern)
//	<Name:path:From>     derived view: the path part of earlier token From
//	<Name:query:From>    derived view: the query parameters of earlier token
//	                     From, one child per parameter
//
// Derived items consume no input. When composing, a missing source token
// (e.g. an HTTP Target) is reconstructed from its derived path and query
// fields, so translation logic can manipulate the query parameters
// directly — exactly what the Fig. 9 Picasa binding needs. When a headers
// item and a body item are both present, Content-Length is set from the
// body automatically.
package textenc

import (
	"errors"
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"starlink/internal/mdl"
	"starlink/internal/message"
)

// Errors reported by the text engine.
var (
	// ErrBadSpec is wrapped by all layout validation errors.
	ErrBadSpec = errors.New("textenc: invalid layout")
	// ErrTruncated is returned when a packet ends inside a token.
	ErrTruncated = errors.New("textenc: truncated message")
)

type itemKind int

const (
	kindTok itemKind = iota + 1
	kindHeaders
	kindBody
	kindPath
	kindQuery
)

type delim int

const (
	delimSP delim = iota + 1
	delimCRLF
	delimEOF
)

type compiledItem struct {
	kind  itemKind
	label string
	delim delim
	from  string
}

type compiledMessage struct {
	spec  *mdl.MessageSpec
	items []compiledItem
	// derived maps a source token label to its derived path/query items.
	derived map[string][]compiledItem
	hasBody bool
	hasHdrs bool
}

// Codec interprets a text MDL spec.
type Codec struct {
	spec     *mdl.Spec
	messages []*compiledMessage
	byName   map[string]*compiledMessage
}

var _ mdl.Codec = (*Codec)(nil)

// New compiles a text MDL spec into a codec.
func New(spec *mdl.Spec) (mdl.Codec, error) {
	c := &Codec{spec: spec, byName: make(map[string]*compiledMessage, len(spec.Messages))}
	for _, ms := range spec.Messages {
		cm, err := compileMessage(ms)
		if err != nil {
			return nil, err
		}
		c.messages = append(c.messages, cm)
		c.byName[ms.Name] = cm
	}
	return c, nil
}

// Register installs the engine in a registry under mdl.EncodingText.
func Register(r *mdl.Registry) { r.Register(mdl.EncodingText, New) }

func compileMessage(ms *mdl.MessageSpec) (*compiledMessage, error) {
	cm := &compiledMessage{spec: ms, derived: make(map[string][]compiledItem)}
	seen := map[string]bool{}
	for _, it := range ms.Items {
		label := it.Label()
		switch it.Arg(1) {
		case "tok":
			var d delim
			switch it.Arg(2) {
			case "sp":
				d = delimSP
			case "crlf":
				d = delimCRLF
			case "eof":
				d = delimEOF
			default:
				return nil, fmt.Errorf("%w: line %d: token %q delimiter %q", ErrBadSpec, it.Line, label, it.Arg(2))
			}
			cm.items = append(cm.items, compiledItem{kind: kindTok, label: label, delim: d})
		case "headers":
			cm.items = append(cm.items, compiledItem{kind: kindHeaders, label: label})
			cm.hasHdrs = true
		case "body":
			cm.items = append(cm.items, compiledItem{kind: kindBody, label: label})
			cm.hasBody = true
		case "path", "query":
			from := it.Arg(2)
			if from == "" || !seen[from] {
				return nil, fmt.Errorf("%w: line %d: derived field %q needs an earlier source token", ErrBadSpec, it.Line, label)
			}
			kind := kindPath
			if it.Arg(1) == "query" {
				kind = kindQuery
			}
			ci := compiledItem{kind: kind, label: label, from: from}
			cm.items = append(cm.items, ci)
			cm.derived[from] = append(cm.derived[from], ci)
		default:
			return nil, fmt.Errorf("%w: line %d: unknown text item kind %q for %q", ErrBadSpec, it.Line, it.Arg(1), label)
		}
		seen[label] = true
	}
	return cm, nil
}

// Parse decodes a packet by trying each layout in order.
func (c *Codec) Parse(data []byte) (*message.Message, error) {
	var firstErr error
	for _, cm := range c.messages {
		msg, err := parseAs(cm, string(data))
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", cm.spec.Name, err)
			}
			continue
		}
		if rulesHold(cm.spec, msg) {
			return msg, nil
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("%w (%v)", mdl.ErrNoMessageMatch, firstErr)
	}
	return nil, mdl.ErrNoMessageMatch
}

func rulesHold(ms *mdl.MessageSpec, msg *message.Message) bool {
	for _, r := range ms.Rules {
		f := msg.Field(r.Field)
		if f == nil || !ruleMatch(f.ValueString(), r.Value) {
			return false
		}
	}
	return true
}

// ruleMatch supports a trailing * wildcard so a rule can pin a prefix,
// e.g. <Rule:Version=HTTP/*>.
func ruleMatch(got, want string) bool {
	if strings.HasSuffix(want, "*") {
		return strings.HasPrefix(got, strings.TrimSuffix(want, "*"))
	}
	return got == want
}

func parseAs(cm *compiledMessage, s string) (*message.Message, error) {
	msg := message.New(cm.spec.Name)
	rest := s
	for _, it := range cm.items {
		switch it.kind {
		case kindTok:
			var tok string
			var err error
			tok, rest, err = cutToken(rest, it.delim)
			if err != nil {
				return nil, fmt.Errorf("%w: token %q", err, it.label)
			}
			msg.Add(message.NewPrimitive(it.label, message.TypeString, tok))
		case kindHeaders:
			hdrs, remain, err := parseHeaders(rest)
			if err != nil {
				return nil, err
			}
			rest = remain
			h := message.NewStruct(it.label, hdrs...)
			msg.Add(h)
		case kindBody:
			msg.Add(message.NewPrimitive(it.label, message.TypeString, rest))
			rest = ""
		case kindPath:
			src := msg.Field(it.from)
			if src == nil {
				return nil, fmt.Errorf("textenc: derived %q: source %q missing", it.label, it.from)
			}
			path := src.ValueString()
			if i := strings.IndexByte(path, '?'); i >= 0 {
				path = path[:i]
			}
			msg.Add(message.NewPrimitive(it.label, message.TypeString, path))
		case kindQuery:
			src := msg.Field(it.from)
			if src == nil {
				return nil, fmt.Errorf("textenc: derived %q: source %q missing", it.label, it.from)
			}
			q := message.NewStruct(it.label)
			target := src.ValueString()
			if i := strings.IndexByte(target, '?'); i >= 0 {
				vals, err := url.ParseQuery(target[i+1:])
				if err != nil {
					return nil, fmt.Errorf("textenc: derived %q: %v", it.label, err)
				}
				keys := make([]string, 0, len(vals))
				for k := range vals {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					for _, v := range vals[k] {
						q.Add(message.NewPrimitive(k, message.TypeString, v))
					}
				}
			}
			msg.Add(q)
		}
	}
	return msg, nil
}

func cutToken(s string, d delim) (tok, rest string, err error) {
	switch d {
	case delimSP:
		i := strings.IndexByte(s, ' ')
		if i < 0 {
			return "", s, ErrTruncated
		}
		return s[:i], s[i+1:], nil
	case delimCRLF:
		i := strings.Index(s, "\r\n")
		if i < 0 {
			return "", s, ErrTruncated
		}
		return s[:i], s[i+2:], nil
	default:
		return s, "", nil
	}
}

func parseHeaders(s string) ([]*message.Field, string, error) {
	var out []*message.Field
	for {
		line, rest, found := strings.Cut(s, "\r\n")
		if !found {
			return nil, s, fmt.Errorf("%w: header block missing blank line", ErrTruncated)
		}
		s = rest
		if line == "" {
			return out, s, nil
		}
		k, v, found := strings.Cut(line, ":")
		if !found {
			return nil, s, fmt.Errorf("textenc: malformed header line %q", line)
		}
		out = append(out, message.NewPrimitive(strings.TrimSpace(k), message.TypeString, strings.TrimSpace(v)))
	}
}

// Compose encodes the abstract message using its named layout.
func (c *Codec) Compose(msg *message.Message) ([]byte, error) {
	cm, ok := c.byName[msg.Name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", mdl.ErrUnknownMessage, msg.Name)
	}
	var body string
	if cm.hasBody {
		for _, it := range cm.items {
			if it.kind == kindBody {
				if f := msg.Field(it.label); f != nil {
					body = f.ValueString()
				}
			}
		}
	}
	var b strings.Builder
	for _, it := range cm.items {
		switch it.kind {
		case kindTok:
			val, err := tokenValue(cm, msg, it)
			if err != nil {
				return nil, err
			}
			b.WriteString(val)
			switch it.delim {
			case delimSP:
				b.WriteByte(' ')
			case delimCRLF:
				b.WriteString("\r\n")
			}
		case kindHeaders:
			writeHeaders(&b, msg.Field(it.label), cm.hasBody, len(body))
		case kindBody:
			b.WriteString(body)
		case kindPath, kindQuery:
			// Derived views are not written.
		}
	}
	return []byte(b.String()), nil
}

func tokenValue(cm *compiledMessage, msg *message.Message, it compiledItem) (string, error) {
	if f := msg.Field(it.label); f != nil {
		return f.ValueString(), nil
	}
	// Reconstruct from derived path/query fields if present.
	if dvs := cm.derived[it.label]; len(dvs) > 0 {
		var path string
		var query url.Values
		for _, dv := range dvs {
			f := msg.Field(dv.label)
			if f == nil {
				continue
			}
			switch dv.kind {
			case kindPath:
				path = f.ValueString()
			case kindQuery:
				query = url.Values{}
				for _, p := range f.Children {
					query.Add(p.Label, p.ValueString())
				}
			}
		}
		if path != "" || len(query) > 0 {
			if len(query) > 0 {
				return path + "?" + query.Encode(), nil
			}
			return path, nil
		}
	}
	if r, ok := cm.spec.Rule(it.label); ok && !strings.HasSuffix(r.Value, "*") {
		return r.Value, nil
	}
	return "", fmt.Errorf("textenc: compose %s: token %q has no value", cm.spec.Name, it.label)
}

func writeHeaders(b *strings.Builder, hdrs *message.Field, hasBody bool, bodyLen int) {
	wroteCL := false
	if hdrs != nil {
		for _, h := range hdrs.Children {
			if strings.EqualFold(h.Label, "Content-Length") {
				if !hasBody {
					b.WriteString(h.Label + ": " + h.ValueString() + "\r\n")
				}
				wroteCL = true
				if hasBody {
					b.WriteString("Content-Length: " + strconv.Itoa(bodyLen) + "\r\n")
				}
				continue
			}
			b.WriteString(h.Label + ": " + h.ValueString() + "\r\n")
		}
	}
	if hasBody && !wroteCL {
		b.WriteString("Content-Length: " + strconv.Itoa(bodyLen) + "\r\n")
	}
	b.WriteString("\r\n")
}
