package binenc

import (
	"testing"

	"starlink/internal/mdl"
)

func FuzzGIOPParse(f *testing.F) {
	spec, err := mdl.ParseString(giopDoc)
	if err != nil {
		f.Fatal(err)
	}
	codec, err := New(spec)
	if err != nil {
		f.Fatal(err)
	}
	good, err := codec.Compose(giopRequest())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte("GIOP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := codec.Parse(data)
		if err != nil {
			return
		}
		// Whatever parsed must compose again without panicking.
		if _, err := codec.Compose(msg); err != nil {
			t.Logf("compose of parsed message failed: %v", err)
		}
	})
}

func FuzzSLPRepeatParse(f *testing.F) {
	spec, err := mdl.ParseString(slpReplyDoc)
	if err != nil {
		f.Fatal(err)
	}
	codec, err := New(spec)
	if err != nil {
		f.Fatal(err)
	}
	good, err := codec.Compose(slpReply())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := codec.Parse(data)
		if err != nil {
			return
		}
		if _, err := codec.Compose(msg); err != nil {
			t.Logf("compose failed: %v", err)
		}
	})
}

func FuzzMDLDocument(f *testing.F) {
	f.Add(giopDoc)
	f.Add(slpReplyDoc)
	f.Add("<MDL:X:binary>\n<Message:M><A:8><End:Message>")
	f.Fuzz(func(t *testing.T, doc string) {
		spec, err := mdl.ParseString(doc)
		if err != nil {
			return
		}
		_, _ = New(spec) // must not panic
	})
}
