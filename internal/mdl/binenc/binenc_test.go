package binenc

import (
	"errors"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"starlink/internal/mdl"
	"starlink/internal/message"
)

// giopDoc mirrors the paper's Fig. 5 GIOP layout (with the cdrseq
// substitution for parameter bodies documented in the package comment).
const giopDoc = `
<MDL:GIOP:binary>
<Message:GIOPRequest>
<Rule:Magic=GIOP>
<Rule:MessageType=0>
<Magic:32:string>
<VersionMajor:8><VersionMinor:8><Flags:8><MessageType:8>
<MessageSize:32>
<RequestID:32><Response:8>
<align:32>
<ObjectKeyLength:32><ObjectKey:ObjectKeyLength>
<OperationLength:32><Operation:OperationLength:string>
<align:64>
<ParameterArray:cdrseq>
<End:Message>

<Message:GIOPReply>
<Rule:Magic=GIOP>
<Rule:MessageType=1>
<Magic:32:string>
<VersionMajor:8><VersionMinor:8><Flags:8><MessageType:8>
<MessageSize:32>
<RequestID:32><ReplyStatus:32>
<align:64>
<ParameterArray:cdrseq>
<End:Message>
`

func mustCodec(t *testing.T, doc string) mdl.Codec {
	t.Helper()
	spec, err := mdl.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func giopRequest() *message.Message {
	return message.New("GIOPRequest",
		message.NewPrimitive("Magic", message.TypeString, "GIOP"),
		message.NewPrimitive("VersionMajor", message.TypeUint64, 1),
		message.NewPrimitive("VersionMinor", message.TypeUint64, 0),
		message.NewPrimitive("Flags", message.TypeUint64, 0),
		message.NewPrimitive("MessageType", message.TypeUint64, 0),
		message.NewPrimitive("MessageSize", message.TypeUint64, 0),
		message.NewPrimitive("RequestID", message.TypeUint64, 7),
		message.NewPrimitive("Response", message.TypeUint64, 1),
		message.NewPrimitive("ObjectKey", message.TypeBytes, []byte("calc-service")),
		message.NewPrimitive("Operation", message.TypeString, "Add"),
		message.NewArray("ParameterArray",
			message.NewPrimitive("Parameter", message.TypeInt64, 20),
			message.NewPrimitive("Parameter", message.TypeInt64, 22),
		),
	)
}

func TestGIOPRequestRoundTrip(t *testing.T) {
	c := mustCodec(t, giopDoc)
	wire, err := c.Compose(giopRequest())
	if err != nil {
		t.Fatal(err)
	}
	if string(wire[:4]) != "GIOP" {
		t.Errorf("magic = %q", wire[:4])
	}
	got, err := c.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "GIOPRequest" {
		t.Fatalf("parsed as %q", got.Name)
	}
	if op, _ := got.GetString("Operation"); op != "Add" {
		t.Errorf("Operation = %q", op)
	}
	if id, _ := got.GetInt("RequestID"); id != 7 {
		t.Errorf("RequestID = %d", id)
	}
	if key, _ := got.Get("ObjectKey"); string(key.([]byte)) != "calc-service" {
		t.Errorf("ObjectKey = %q", key)
	}
	p0, err := got.GetInt("ParameterArray.Parameter[0]")
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := got.GetInt("ParameterArray.Parameter[1]")
	if p0 != 20 || p1 != 22 {
		t.Errorf("params = %d, %d", p0, p1)
	}
}

func TestGIOPDispatchOnMessageType(t *testing.T) {
	c := mustCodec(t, giopDoc)
	reply := message.New("GIOPReply",
		message.NewPrimitive("RequestID", message.TypeUint64, 9),
		message.NewPrimitive("ReplyStatus", message.TypeUint64, 0),
		message.NewArray("ParameterArray",
			message.NewPrimitive("Parameter", message.TypeInt64, 42),
		),
	)
	wire, err := c.Compose(reply)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "GIOPReply" {
		t.Fatalf("dispatched to %q, want GIOPReply", got.Name)
	}
	// Rule fields were auto-filled on compose.
	if mt, _ := got.GetInt("MessageType"); mt != 1 {
		t.Errorf("MessageType = %d", mt)
	}
	if magic, _ := got.GetString("Magic"); magic != "GIOP" {
		t.Errorf("Magic = %q", magic)
	}
	if v, _ := got.GetInt("ParameterArray.Parameter[0]"); v != 42 {
		t.Errorf("result param = %d", v)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	c := mustCodec(t, giopDoc)
	if _, err := c.Parse([]byte("NOTGIOPxxxxxxxxxxxxxxxxxxxxxxxxxxxx")); !errors.Is(err, mdl.ErrNoMessageMatch) {
		t.Errorf("err = %v, want ErrNoMessageMatch", err)
	}
	if _, err := c.Parse([]byte{1, 2}); !errors.Is(err, mdl.ErrNoMessageMatch) {
		t.Errorf("short packet err = %v", err)
	}
}

func TestComposeUnknownMessage(t *testing.T) {
	c := mustCodec(t, giopDoc)
	if _, err := c.Compose(message.New("Bogus")); !errors.Is(err, mdl.ErrUnknownMessage) {
		t.Errorf("err = %v, want ErrUnknownMessage", err)
	}
}

func TestAllParameterTypesRoundTrip(t *testing.T) {
	c := mustCodec(t, giopDoc)
	in := giopRequest()
	in.SetField(message.NewArray("ParameterArray",
		message.NewPrimitive("Parameter", message.TypeString, "hello world"),
		message.NewPrimitive("Parameter", message.TypeInt64, -5),
		message.NewPrimitive("Parameter", message.TypeBool, true),
		message.NewPrimitive("Parameter", message.TypeFloat64, 2.718281828),
		message.NewPrimitive("Parameter", message.TypeBytes, []byte{0, 1, 2, 255}),
		message.NewPrimitive("Parameter", message.TypeInt32, -7),
		message.NewPrimitive("Parameter", message.TypeString, ""),
	))
	wire, err := c.Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := got.Lookup("ParameterArray")
	if err != nil {
		t.Fatal(err)
	}
	if len(arr.Children) != 7 {
		t.Fatalf("param count = %d", len(arr.Children))
	}
	checks := []struct {
		idx  int
		want any
	}{
		{0, "hello world"},
		{1, int64(-5)},
		{2, true},
		{3, 2.718281828},
		{5, int64(-7)},
		{6, ""},
	}
	for _, ck := range checks {
		got := arr.Children[ck.idx].Value
		if got != ck.want {
			t.Errorf("param[%d] = %#v, want %#v", ck.idx, got, ck.want)
		}
	}
	if b := arr.Children[4].Value.([]byte); string(b) != string([]byte{0, 1, 2, 255}) {
		t.Errorf("bytes param = %v", b)
	}
}

func TestSignedAndSubByteFields(t *testing.T) {
	doc := `
<MDL:T:binary>
<Message:M>
<Sign:4><Small:4:int>
<Big:16:int>
<Flag:1:bool><Pad:7>
<F:64:float>
<End:Message>
`
	c := mustCodec(t, doc)
	in := message.New("M",
		message.NewPrimitive("Sign", message.TypeUint64, 5),
		message.NewPrimitive("Small", message.TypeInt64, -3),
		message.NewPrimitive("Big", message.TypeInt64, -1000),
		message.NewPrimitive("Flag", message.TypeBool, true),
		message.NewPrimitive("Pad", message.TypeUint64, 0),
		message.NewPrimitive("F", message.TypeFloat64, -0.5),
	)
	wire, err := c.Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.GetInt("Small"); v != -3 {
		t.Errorf("Small = %d", v)
	}
	if v, _ := got.GetInt("Big"); v != -1000 {
		t.Errorf("Big = %d", v)
	}
	if v, _ := got.Get("Flag"); v != true {
		t.Errorf("Flag = %v", v)
	}
	if v, _ := got.Get("F"); v != -0.5 {
		t.Errorf("F = %v", v)
	}
}

func TestFloat32Field(t *testing.T) {
	c := mustCodec(t, "<MDL:T:binary>\n<Message:M><F:32:float><End:Message>")
	in := message.New("M", message.NewPrimitive("F", message.TypeFloat64, 1.5))
	wire, err := c.Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Get("F"); v != 1.5 {
		t.Errorf("F = %v", v)
	}
}

func TestEOFField(t *testing.T) {
	c := mustCodec(t, "<MDL:T:binary>\n<Message:M><Len:8><Body:eof:string><End:Message>")
	in := message.New("M",
		message.NewPrimitive("Len", message.TypeUint64, 0),
		message.NewPrimitive("Body", message.TypeString, "trailing text"),
	)
	wire, err := c.Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := got.GetString("Body"); s != "trailing text" {
		t.Errorf("Body = %q", s)
	}
}

func TestBadSpecs(t *testing.T) {
	tests := []struct {
		name string
		doc  string
	}{
		{"zero width", "<MDL:T:binary>\n<Message:M><A:0><End:Message>"},
		{"bad align", "<MDL:T:binary>\n<Message:M><align:x><End:Message>"},
		{"missing length", "<MDL:T:binary>\n<Message:M><A><End:Message>"},
		{"forward length ref", "<MDL:T:binary>\n<Message:M><A:B><B:32><End:Message>"},
		{"bad fixed type", "<MDL:T:binary>\n<Message:M><A:8:banana><End:Message>"},
		{"bad var type", "<MDL:T:binary>\n<Message:M><L:32><A:L:banana><End:Message>"},
		{"float width", "<MDL:T:binary>\n<Message:M><A:16:float><End:Message>"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec, err := mdl.ParseString(tt.doc)
			if err != nil {
				t.Fatalf("doc did not parse: %v", err)
			}
			if _, err := New(spec); !errors.Is(err, ErrBadSpec) {
				t.Errorf("New err = %v, want ErrBadSpec", err)
			}
		})
	}
}

func TestUintOverflowRejected(t *testing.T) {
	c := mustCodec(t, "<MDL:T:binary>\n<Message:M><A:4><End:Message>")
	in := message.New("M", message.NewPrimitive("A", message.TypeUint64, 16))
	if _, err := c.Compose(in); err == nil {
		t.Error("overflowing value accepted")
	}
}

func TestQuickRequestRoundTrip(t *testing.T) {
	spec, err := mdl.ParseString(giopDoc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := giopRequest()
		in.SetField(message.NewPrimitive("RequestID", message.TypeUint64, r.Uint64()>>32))
		in.SetField(message.NewPrimitive("Operation", message.TypeString, randOp(r)))
		params := message.NewArray("ParameterArray")
		for i := 0; i < r.Intn(5); i++ {
			switch r.Intn(4) {
			case 0:
				params.Add(message.NewPrimitive("Parameter", message.TypeString, randOp(r)))
			case 1:
				params.Add(message.NewPrimitive("Parameter", message.TypeInt64, r.Int63()-r.Int63()))
			case 2:
				params.Add(message.NewPrimitive("Parameter", message.TypeBool, r.Intn(2) == 0))
			case 3:
				params.Add(message.NewPrimitive("Parameter", message.TypeFloat64, r.NormFloat64()))
			}
		}
		in.SetField(params)
		wire, err := c.Compose(in)
		if err != nil {
			return false
		}
		out, err := c.Parse(wire)
		if err != nil || out.Name != "GIOPRequest" {
			return false
		}
		inArr, _ := in.Lookup("ParameterArray")
		outArr, _ := out.Lookup("ParameterArray")
		if len(inArr.Children) != len(outArr.Children) {
			return false
		}
		for i := range inArr.Children {
			if inArr.Children[i].ValueString() != outArr.Children[i].ValueString() {
				return false
			}
		}
		op1, _ := in.GetString("Operation")
		op2, _ := out.GetString("Operation")
		return op1 == op2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func randOp(r *rand.Rand) string {
	const letters = "abcdefghijklmnop.XYZ0123456789"
	n := r.Intn(20)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

func BenchmarkGIOPParse(b *testing.B) {
	spec, _ := mdl.ParseString(giopDoc)
	c, _ := New(spec)
	wire, err := c.Compose(giopRequest())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Parse(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGIOPCompose(b *testing.B) {
	spec, _ := mdl.ParseString(giopDoc)
	c, _ := New(spec)
	msg := giopRequest()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compose(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// slpReplyDoc exercises repeated groups: the SLP Service Reply layout
// (RFC 2608 §8.2 simplified) with N URL entries.
const slpReplyDoc = `
<MDL:SLP:binary>
<Message:ServiceReply>
<Rule:Version=2>
<Rule:FunctionID=2>
<Version:8><FunctionID:8>
<XID:16>
<ErrorCode:16>
<URLCount:16>
<Repeat:URLEntries:URLCount>
<Reserved:8><Lifetime:16>
<URLLen:16><URL:URLLen:string>
<End:Repeat>
<End:Message>
`

func slpReply() *message.Message {
	entry := func(lifetime int64, url string) *message.Field {
		return message.NewStruct("item",
			message.NewPrimitive("Reserved", message.TypeUint64, 0),
			message.NewPrimitive("Lifetime", message.TypeUint64, lifetime),
			message.NewPrimitive("URL", message.TypeString, url),
		)
	}
	return message.New("ServiceReply",
		message.NewPrimitive("XID", message.TypeUint64, 77),
		message.NewPrimitive("ErrorCode", message.TypeUint64, 0),
		message.NewArray("URLEntries",
			entry(300, "service:printer:lpr://printer1.example"),
			entry(600, "service:printer:lpr://printer2.example"),
		),
	)
}

func TestRepeatGroupRoundTrip(t *testing.T) {
	c := mustCodec(t, slpReplyDoc)
	wire, err := c.Compose(slpReply())
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "ServiceReply" {
		t.Fatalf("parsed %q", got.Name)
	}
	// Count was derived on compose.
	if n, _ := got.GetInt("URLCount"); n != 2 {
		t.Errorf("URLCount = %d", n)
	}
	if u, _ := got.GetString("URLEntries.item[0].URL"); u != "service:printer:lpr://printer1.example" {
		t.Errorf("url0 = %q", u)
	}
	if lt, _ := got.GetInt("URLEntries.item[1].Lifetime"); lt != 600 {
		t.Errorf("lifetime1 = %d", lt)
	}
}

func TestRepeatGroupEmpty(t *testing.T) {
	c := mustCodec(t, slpReplyDoc)
	in := message.New("ServiceReply",
		message.NewPrimitive("XID", message.TypeUint64, 1),
		message.NewPrimitive("ErrorCode", message.TypeUint64, 0),
		message.NewArray("URLEntries"),
	)
	wire, err := c.Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := got.Lookup("URLEntries")
	if err != nil {
		t.Fatal(err)
	}
	if len(arr.Children) != 0 {
		t.Errorf("entries = %d", len(arr.Children))
	}
	// Absent repeat field composes as count 0 too.
	in2 := message.New("ServiceReply",
		message.NewPrimitive("XID", message.TypeUint64, 1),
		message.NewPrimitive("ErrorCode", message.TypeUint64, 0),
	)
	if _, err := c.Compose(in2); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"missing count", "<MDL:T:binary>\n<Message:M><Repeat:R:><A:8><End:Repeat><End:Message>"},
		{"forward count", "<MDL:T:binary>\n<Message:M><Repeat:R:C><A:8><End:Repeat><C:16><End:Message>"},
		{"unclosed", "<MDL:T:binary>\n<Message:M><C:16><Repeat:R:C><A:8><End:Message>"},
		{"end without repeat", "<MDL:T:binary>\n<Message:M><End:Repeat><End:Message>"},
		{"nested", "<MDL:T:binary>\n<Message:M><C:16><Repeat:R:C><Repeat:S:C><A:8><End:Repeat><End:Repeat><End:Message>"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			spec, err := mdl.ParseString(tt.doc)
			if err != nil {
				t.Fatalf("doc did not parse: %v", err)
			}
			if _, err := New(spec); !errors.Is(err, ErrBadSpec) {
				t.Errorf("err = %v, want ErrBadSpec", err)
			}
		})
	}
}

func TestRepeatQuickRoundTrip(t *testing.T) {
	spec, err := mdl.ParseString(slpReplyDoc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		arr := message.NewArray("URLEntries")
		n := r.Intn(6)
		for i := 0; i < n; i++ {
			arr.Add(message.NewStruct("item",
				message.NewPrimitive("Reserved", message.TypeUint64, 0),
				message.NewPrimitive("Lifetime", message.TypeUint64, uint64(r.Intn(1<<16))),
				message.NewPrimitive("URL", message.TypeString, "service:"+randOp(r)),
			))
		}
		in := message.New("ServiceReply",
			message.NewPrimitive("XID", message.TypeUint64, uint64(r.Intn(1<<16))),
			message.NewPrimitive("ErrorCode", message.TypeUint64, 0),
			arr,
		)
		wire, err := c.Compose(in)
		if err != nil {
			return false
		}
		out, err := c.Parse(wire)
		if err != nil {
			return false
		}
		outArr, err := out.Lookup("URLEntries")
		if err != nil || len(outArr.Children) != n {
			return false
		}
		for i := 0; i < n; i++ {
			a, _ := in.GetString("URLEntries.item[" + strconv.Itoa(i) + "].URL")
			b, _ := out.GetString("URLEntries.item[" + strconv.Itoa(i) + "].URL")
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
