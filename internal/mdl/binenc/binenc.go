// Package binenc is the MDL engine for binary protocols.
//
// It interprets MDL layout items over a bit stream, supporting the
// constructs from the paper's GIOP example (Fig. 5):
//
//	<Name:N>              fixed field of N bits, unsigned integer
//	<Name:N:type>         fixed field of N bits; type = uint|int|bool|float|bytes|string
//	<Name:Ref>            variable field whose byte length is the value of the
//	                      previously parsed field Ref; type defaults to bytes
//	<Name:Ref:string>     as above, decoded as a NUL-terminated string (the
//	                      CDR string convention: the length includes the NUL)
//	<Name:eof>            raw bytes to the end of the packet
//	<Name:eof:string>     rest of packet as text
//	<Name:cdrseq>         self-describing CDR parameter sequence (see below)
//	<align:N>             skip to the next N-bit boundary (from body start)
//	<Repeat:Name:Count>   repeated group: the items up to <End:Repeat> are
//	                      parsed Count times (Count being the value of an
//	                      earlier field), yielding a structured field Name
//	                      with one "item" child per iteration; on compose,
//	                      Count is derived from the child count
//	<End:Repeat>          closes a repeated group
//
// When composing, fields that are referenced as the length of another field
// are computed automatically from the encoded size, and fields constrained
// by <Rule:Field=Value> are filled from the rule when absent from the
// abstract message.
//
// The paper's MDL leaves GIOP parameter bodies opaque (<ParameterArray:eof>)
// because interpreting them requires the IDL. This reproduction instead
// defines a self-describing CDR sequence (<Name:cdrseq>): a 4-byte count,
// then per parameter a 1-byte type tag followed by the CDR-encoded value
// with standard CDR alignment. This keeps the generic parser able to expose
// Parameter fields to the binding rules of Section 4.3 without an IDL
// compiler, while remaining valid CDR at the byte level.
package binenc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"starlink/internal/mdl"
	"starlink/internal/message"
)

// Errors reported by the binary engine.
var (
	// ErrShortPacket is returned when the packet ends inside a field.
	ErrShortPacket = errors.New("binenc: packet too short")
	// ErrBadSpec is wrapped by all layout validation errors.
	ErrBadSpec = errors.New("binenc: invalid layout")
)

// Parameter type tags for cdrseq sequences.
const (
	tagString byte = 1
	tagInt32  byte = 2
	tagInt64  byte = 3
	tagBool   byte = 4
	tagDouble byte = 5
	tagBytes  byte = 6
)

type itemKind int

const (
	kindFixed itemKind = iota + 1
	kindLenFrom
	kindEOF
	kindCDRSeq
	kindAlign
	kindRepeat
)

type compiledItem struct {
	kind      itemKind
	label     string
	bits      int
	lenFrom   string
	typ       message.Type
	rawStr    bool // string without NUL-termination semantics (eof:string)
	countFrom string
	items     []compiledItem // kindRepeat body
}

type compiledMessage struct {
	spec  *mdl.MessageSpec
	items []compiledItem
	// lenTargets maps a length field's label to the label of the field it
	// sizes, so Compose can derive it.
	lenTargets map[string]string
	// countTargets maps a count field's label to the repeated group it
	// counts, so Compose can derive it.
	countTargets map[string]string
}

// Codec interprets a binary MDL spec.
type Codec struct {
	spec     *mdl.Spec
	messages []*compiledMessage
	byName   map[string]*compiledMessage
}

var _ mdl.Codec = (*Codec)(nil)

// New compiles a binary MDL spec into a codec.
func New(spec *mdl.Spec) (mdl.Codec, error) {
	c := &Codec{spec: spec, byName: make(map[string]*compiledMessage, len(spec.Messages))}
	for _, ms := range spec.Messages {
		cm, err := compileMessage(ms)
		if err != nil {
			return nil, err
		}
		c.messages = append(c.messages, cm)
		c.byName[ms.Name] = cm
	}
	return c, nil
}

// Register installs the engine in a registry under mdl.EncodingBinary.
func Register(r *mdl.Registry) { r.Register(mdl.EncodingBinary, New) }

func compileMessage(ms *mdl.MessageSpec) (*compiledMessage, error) {
	cm := &compiledMessage{
		spec:         ms,
		lenTargets:   make(map[string]string),
		countTargets: make(map[string]string),
	}
	seen := map[string]bool{}
	// target points at the item list currently being filled; open Repeat
	// groups push a nested list.
	target := &cm.items
	var repeatStack []*compiledItem
	for _, it := range ms.Items {
		label := it.Label()
		arg := it.Arg(1)
		switch {
		case label == "Repeat":
			if arg == "" || it.Arg(2) == "" {
				return nil, fmt.Errorf("%w: line %d: <Repeat:Name:CountField>", ErrBadSpec, it.Line)
			}
			if !seen[it.Arg(2)] {
				return nil, fmt.Errorf("%w: line %d: repeat count %q not declared earlier", ErrBadSpec, it.Line, it.Arg(2))
			}
			if len(repeatStack) > 0 {
				return nil, fmt.Errorf("%w: line %d: nested <Repeat> groups are not supported", ErrBadSpec, it.Line)
			}
			*target = append(*target, compiledItem{
				kind: kindRepeat, label: arg, typ: message.TypeArray, countFrom: it.Arg(2),
			})
			rep := &(*target)[len(*target)-1]
			cm.countTargets[it.Arg(2)] = arg
			repeatStack = append(repeatStack, rep)
			target = &rep.items
			seen[arg] = true
			continue
		case label == "End" && arg == "Repeat":
			if len(repeatStack) == 0 {
				return nil, fmt.Errorf("%w: line %d: <End:Repeat> without <Repeat>", ErrBadSpec, it.Line)
			}
			repeatStack = repeatStack[:len(repeatStack)-1]
			target = &cm.items
			continue
		case label == "align":
			n, err := strconv.Atoi(arg)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("%w: line %d: <align:%s>", ErrBadSpec, it.Line, arg)
			}
			*target = append(*target, compiledItem{kind: kindAlign, bits: n})
			continue
		case arg == "":
			return nil, fmt.Errorf("%w: line %d: field %q needs a length", ErrBadSpec, it.Line, label)
		case arg == "eof":
			typ := message.TypeBytes
			if it.Arg(2) == "string" {
				typ = message.TypeString
			}
			*target = append(*target, compiledItem{kind: kindEOF, label: label, typ: typ, rawStr: true})
		case arg == "cdrseq":
			*target = append(*target, compiledItem{kind: kindCDRSeq, label: label, typ: message.TypeArray})
		default:
			if bits, err := strconv.Atoi(arg); err == nil {
				if bits <= 0 || bits > 1<<20 {
					return nil, fmt.Errorf("%w: line %d: field %q width %d bits", ErrBadSpec, it.Line, label, bits)
				}
				typ, err := fixedType(it.Arg(2), bits)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: %v", ErrBadSpec, it.Line, err)
				}
				*target = append(*target, compiledItem{kind: kindFixed, label: label, bits: bits, typ: typ})
			} else {
				// Length from a previously declared field.
				if !seen[arg] {
					return nil, fmt.Errorf("%w: line %d: field %q sized by %q which is not declared earlier",
						ErrBadSpec, it.Line, label, arg)
				}
				typ := message.TypeBytes
				switch it.Arg(2) {
				case "", "bytes":
				case "string":
					typ = message.TypeString
				default:
					return nil, fmt.Errorf("%w: line %d: variable field %q type %q", ErrBadSpec, it.Line, label, it.Arg(2))
				}
				*target = append(*target, compiledItem{kind: kindLenFrom, label: label, lenFrom: arg, typ: typ})
				cm.lenTargets[arg] = label
			}
		}
		if label != "align" {
			seen[label] = true
		}
	}
	if len(repeatStack) > 0 {
		return nil, fmt.Errorf("%w: message %q: unclosed <Repeat>", ErrBadSpec, ms.Name)
	}
	return cm, nil
}

func fixedType(name string, bits int) (message.Type, error) {
	switch name {
	case "", "uint":
		return message.TypeUint64, nil
	case "int":
		return message.TypeInt64, nil
	case "bool":
		return message.TypeBool, nil
	case "float":
		if bits != 32 && bits != 64 {
			return 0, fmt.Errorf("float fields must be 32 or 64 bits, got %d", bits)
		}
		return message.TypeFloat64, nil
	case "bytes":
		return message.TypeBytes, nil
	case "string":
		return message.TypeString, nil
	default:
		return 0, fmt.Errorf("unknown fixed field type %q", name)
	}
}

// Parse decodes a packet by trying each message layout in order and
// returning the first whose rules hold.
func (c *Codec) Parse(data []byte) (*message.Message, error) {
	var firstErr error
	for _, cm := range c.messages {
		msg, err := c.parseAs(cm, data)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", cm.spec.Name, err)
			}
			continue
		}
		if rulesHold(cm.spec, msg) {
			return msg, nil
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("%w (%v)", mdl.ErrNoMessageMatch, firstErr)
	}
	return nil, mdl.ErrNoMessageMatch
}

func rulesHold(ms *mdl.MessageSpec, msg *message.Message) bool {
	for _, r := range ms.Rules {
		f := msg.Field(r.Field)
		if f == nil || f.ValueString() != r.Value {
			return false
		}
	}
	return true
}

func (c *Codec) parseAs(cm *compiledMessage, data []byte) (*message.Message, error) {
	rd := &bitReader{data: data}
	msg := message.New(cm.spec.Name)
	if err := parseItems(rd, cm.items, &msg.Fields, msg.Fields[:0:0]); err != nil {
		return nil, err
	}
	return msg, nil
}

// findField looks a label up first in the current scope, then in the
// outer (top-level) scope — repeated-group items see their own fields
// plus the message header.
func findField(scope, outer []*message.Field, label string) *message.Field {
	for _, f := range scope {
		if f.Label == label {
			return f
		}
	}
	for _, f := range outer {
		if f.Label == label {
			return f
		}
	}
	return nil
}

// parseItems decodes a layout item list into *out; outer carries the
// enclosing scope for length/count references inside repeated groups.
func parseItems(rd *bitReader, items []compiledItem, out *[]*message.Field, outer []*message.Field) error {
	for _, it := range items {
		switch it.kind {
		case kindAlign:
			rd.align(it.bits)
		case kindFixed:
			f, err := rd.readFixed(it)
			if err != nil {
				return err
			}
			*out = append(*out, f)
		case kindLenFrom:
			lf := findField(*out, outer, it.lenFrom)
			if lf == nil {
				return fmt.Errorf("binenc: length field %q missing", it.lenFrom)
			}
			n, err := strconv.ParseUint(lf.ValueString(), 10, 32)
			if err != nil {
				return fmt.Errorf("binenc: length field %q value %q: %v", it.lenFrom, lf.ValueString(), err)
			}
			b, err := rd.readBytes(int(n))
			if err != nil {
				return err
			}
			if it.typ == message.TypeString {
				s := strings.TrimSuffix(string(b), "\x00")
				*out = append(*out, message.NewPrimitive(it.label, message.TypeString, s))
			} else {
				*out = append(*out, message.NewPrimitive(it.label, message.TypeBytes, b))
			}
		case kindEOF:
			b := rd.rest()
			if it.typ == message.TypeString {
				*out = append(*out, message.NewPrimitive(it.label, message.TypeString, string(b)))
			} else {
				*out = append(*out, message.NewPrimitive(it.label, message.TypeBytes, b))
			}
		case kindCDRSeq:
			f, err := rd.readCDRSeq(it.label)
			if err != nil {
				return err
			}
			*out = append(*out, f)
		case kindRepeat:
			cf := findField(*out, outer, it.countFrom)
			if cf == nil {
				return fmt.Errorf("binenc: repeat count field %q missing", it.countFrom)
			}
			count, err := strconv.ParseUint(cf.ValueString(), 10, 32)
			if err != nil {
				return fmt.Errorf("binenc: repeat count %q value %q: %v", it.countFrom, cf.ValueString(), err)
			}
			if count > 1<<16 {
				return fmt.Errorf("binenc: %s: implausible repeat count %d", it.label, count)
			}
			arr := message.NewArray(it.label)
			for i := uint64(0); i < count; i++ {
				item := message.NewStruct("item")
				if err := parseItems(rd, it.items, &item.Children, *out); err != nil {
					return fmt.Errorf("%s[%d]: %w", it.label, i, err)
				}
				arr.Add(item)
			}
			*out = append(*out, arr)
		}
	}
	return nil
}

// Compose encodes the abstract message using its named layout.
func (c *Codec) Compose(msg *message.Message) ([]byte, error) {
	cm, ok := c.byName[msg.Name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", mdl.ErrUnknownMessage, msg.Name)
	}
	w := writerPool.Get().(*bitWriter)
	defer writerPool.Put(w)
	w.reset()
	if err := composeItems(w, cm, cm.items, msg.Fields); err != nil {
		return nil, err
	}
	// Copy out: the caller (and the engine's fault-recovery replay)
	// retains the wire bytes, while w's scratch goes back to the pool.
	return append([]byte(nil), w.bytes()...), nil
}

// writerPool recycles bitWriter scratch buffers across Compose calls;
// reset keeps the grown capacity, so steady-state composition costs one
// right-sized copy instead of regrowing the buffer per message.
var writerPool = sync.Pool{New: func() any { return &bitWriter{} }}

// composeItems encodes an item list reading values from scope (the
// message's top-level fields, or one repeated item's children).
func composeItems(w *bitWriter, cm *compiledMessage, items []compiledItem, scope []*message.Field) error {
	// Pre-compute the encoded bytes of this scope's variable-length fields
	// so their length fields can be derived.
	varBytes := map[string][]byte{}
	for _, it := range items {
		if it.kind != kindLenFrom {
			continue
		}
		f := findField(scope, nil, it.label)
		var b []byte
		if f != nil {
			if it.typ == message.TypeString {
				b = append([]byte(f.ValueString()), 0)
			} else if raw, ok := f.Value.([]byte); ok {
				b = raw
			} else {
				b = []byte(f.ValueString())
			}
		} else if it.typ == message.TypeString {
			b = []byte{0}
		}
		varBytes[it.label] = b
	}
	for _, it := range items {
		switch it.kind {
		case kindAlign:
			w.align(it.bits)
		case kindFixed:
			if target, ok := cm.lenTargets[it.label]; ok {
				w.writeUint(uint64(len(varBytes[target])), it.bits)
				continue
			}
			if target, ok := cm.countTargets[it.label]; ok {
				n := 0
				if f := findField(scope, nil, target); f != nil {
					n = len(f.Children)
				}
				w.writeUint(uint64(n), it.bits)
				continue
			}
			val, err := fixedValue(cm.spec, scope, it)
			if err != nil {
				return err
			}
			if err := w.writeFixed(it, val); err != nil {
				return err
			}
		case kindLenFrom:
			w.writeBytes(varBytes[it.label])
		case kindEOF:
			f := findField(scope, nil, it.label)
			if f == nil {
				continue
			}
			if raw, ok := f.Value.([]byte); ok {
				w.writeBytes(raw)
			} else {
				w.writeBytes([]byte(f.ValueString()))
			}
		case kindCDRSeq:
			f := findField(scope, nil, it.label)
			if err := w.writeCDRSeq(f); err != nil {
				return err
			}
		case kindRepeat:
			f := findField(scope, nil, it.label)
			if f == nil {
				continue // count field composed as 0
			}
			for i, item := range f.Children {
				if err := composeItems(w, cm, it.items, item.Children); err != nil {
					return fmt.Errorf("%s[%d]: %w", it.label, i, err)
				}
			}
		}
	}
	return nil
}

func fixedValue(ms *mdl.MessageSpec, scope []*message.Field, it compiledItem) (any, error) {
	if f := findField(scope, nil, it.label); f != nil {
		return f.Value, nil
	}
	if r, ok := ms.Rule(it.label); ok {
		return r.Value, nil
	}
	// Zero value.
	switch it.typ {
	case message.TypeBytes, message.TypeString:
		return "", nil
	default:
		return uint64(0), nil
	}
}

// ---- bit stream primitives ----

type bitReader struct {
	data   []byte
	bitPos int
}

func (r *bitReader) remainingBits() int { return len(r.data)*8 - r.bitPos }

func (r *bitReader) align(bits int) {
	if rem := r.bitPos % bits; rem != 0 {
		r.bitPos += bits - rem
	}
}

func (r *bitReader) readBits(n int) (uint64, error) {
	if n > 64 {
		return 0, fmt.Errorf("binenc: readBits(%d) exceeds 64", n)
	}
	if r.remainingBits() < n {
		return 0, ErrShortPacket
	}
	var v uint64
	for i := 0; i < n; i++ {
		byteIdx := r.bitPos >> 3
		bitIdx := 7 - (r.bitPos & 7)
		bit := (r.data[byteIdx] >> bitIdx) & 1
		v = v<<1 | uint64(bit)
		r.bitPos++
	}
	return v, nil
}

func (r *bitReader) readBytes(n int) ([]byte, error) {
	r.align(8)
	if r.remainingBits() < n*8 {
		return nil, ErrShortPacket
	}
	start := r.bitPos >> 3
	r.bitPos += n * 8
	out := make([]byte, n)
	copy(out, r.data[start:start+n])
	return out, nil
}

func (r *bitReader) rest() []byte {
	r.align(8)
	start := r.bitPos >> 3
	r.bitPos = len(r.data) * 8
	out := make([]byte, len(r.data)-start)
	copy(out, r.data[start:])
	return out
}

func (r *bitReader) readFixed(it compiledItem) (*message.Field, error) {
	switch it.typ {
	case message.TypeBytes, message.TypeString:
		if it.bits%8 != 0 {
			return nil, fmt.Errorf("binenc: %q: byte field width %d not a multiple of 8", it.label, it.bits)
		}
		b, err := r.readBytes(it.bits / 8)
		if err != nil {
			return nil, fmt.Errorf("%w reading %q", err, it.label)
		}
		f := message.NewPrimitive(it.label, it.typ, b)
		f.LengthBits = it.bits
		return f, nil
	case message.TypeFloat64:
		v, err := r.readBits(it.bits)
		if err != nil {
			return nil, fmt.Errorf("%w reading %q", err, it.label)
		}
		var fv float64
		if it.bits == 32 {
			fv = float64(math.Float32frombits(uint32(v)))
		} else {
			fv = math.Float64frombits(v)
		}
		f := message.NewPrimitive(it.label, message.TypeFloat64, fv)
		f.LengthBits = it.bits
		return f, nil
	case message.TypeBool:
		v, err := r.readBits(it.bits)
		if err != nil {
			return nil, fmt.Errorf("%w reading %q", err, it.label)
		}
		f := message.NewPrimitive(it.label, message.TypeBool, v != 0)
		f.LengthBits = it.bits
		return f, nil
	case message.TypeInt64:
		v, err := r.readBits(it.bits)
		if err != nil {
			return nil, fmt.Errorf("%w reading %q", err, it.label)
		}
		// Sign-extend.
		sv := int64(v)
		if it.bits < 64 && v&(1<<(it.bits-1)) != 0 {
			sv = int64(v | ^uint64(0)<<it.bits)
		}
		f := message.NewPrimitive(it.label, message.TypeInt64, sv)
		f.LengthBits = it.bits
		return f, nil
	default:
		v, err := r.readBits(it.bits)
		if err != nil {
			return nil, fmt.Errorf("%w reading %q", err, it.label)
		}
		f := message.NewPrimitive(it.label, message.TypeUint64, v)
		f.LengthBits = it.bits
		return f, nil
	}
}

func (r *bitReader) readCDRSeq(label string) (*message.Field, error) {
	r.align(32)
	count, err := r.readBits(32)
	if err != nil {
		return nil, fmt.Errorf("%w reading %s count", err, label)
	}
	if count > 1<<16 {
		return nil, fmt.Errorf("binenc: %s: implausible parameter count %d", label, count)
	}
	arr := message.NewArray(label)
	for i := uint64(0); i < count; i++ {
		r.align(8)
		tag, err := r.readBits(8)
		if err != nil {
			return nil, fmt.Errorf("%w reading %s tag", err, label)
		}
		p, err := r.readCDRValue(byte(tag))
		if err != nil {
			return nil, fmt.Errorf("%s[%d]: %w", label, i, err)
		}
		arr.Add(p)
	}
	return arr, nil
}

func (r *bitReader) readCDRValue(tag byte) (*message.Field, error) {
	switch tag {
	case tagString:
		r.align(32)
		n, err := r.readBits(32)
		if err != nil {
			return nil, err
		}
		b, err := r.readBytes(int(n))
		if err != nil {
			return nil, err
		}
		s := strings.TrimSuffix(string(b), "\x00")
		return message.NewPrimitive("Parameter", message.TypeString, s), nil
	case tagInt32:
		r.align(32)
		v, err := r.readBits(32)
		if err != nil {
			return nil, err
		}
		return message.NewPrimitive("Parameter", message.TypeInt64, int64(int32(v))), nil
	case tagInt64:
		r.align(64)
		v, err := r.readBits(64)
		if err != nil {
			return nil, err
		}
		return message.NewPrimitive("Parameter", message.TypeInt64, int64(v)), nil
	case tagBool:
		v, err := r.readBits(8)
		if err != nil {
			return nil, err
		}
		return message.NewPrimitive("Parameter", message.TypeBool, v != 0), nil
	case tagDouble:
		r.align(64)
		v, err := r.readBits(64)
		if err != nil {
			return nil, err
		}
		return message.NewPrimitive("Parameter", message.TypeFloat64, math.Float64frombits(v)), nil
	case tagBytes:
		r.align(32)
		n, err := r.readBits(32)
		if err != nil {
			return nil, err
		}
		b, err := r.readBytes(int(n))
		if err != nil {
			return nil, err
		}
		return message.NewPrimitive("Parameter", message.TypeBytes, b), nil
	default:
		return nil, fmt.Errorf("binenc: unknown CDR parameter tag %d", tag)
	}
}

type bitWriter struct {
	buf    []byte
	bitPos int
}

func (w *bitWriter) bytes() []byte { return w.buf }

// reset rewinds the writer for reuse, keeping the grown capacity.
// Truncating (not zeroing) is safe because ensure appends explicit zero
// bytes before any bit is OR-ed in.
func (w *bitWriter) reset() {
	const maxRetain = 64 << 10
	if cap(w.buf) > maxRetain {
		w.buf = nil
	}
	w.buf = w.buf[:0]
	w.bitPos = 0
}

func (w *bitWriter) ensure(bits int) {
	need := (w.bitPos + bits + 7) / 8
	for len(w.buf) < need {
		w.buf = append(w.buf, 0)
	}
}

func (w *bitWriter) align(bits int) {
	if rem := w.bitPos % bits; rem != 0 {
		pad := bits - rem
		w.ensure(pad)
		w.bitPos += pad
	}
}

func (w *bitWriter) writeUint(v uint64, n int) {
	w.ensure(n)
	for i := n - 1; i >= 0; i-- {
		bit := (v >> i) & 1
		byteIdx := w.bitPos >> 3
		bitIdx := 7 - (w.bitPos & 7)
		if bit == 1 {
			w.buf[byteIdx] |= 1 << bitIdx
		}
		w.bitPos++
	}
}

func (w *bitWriter) writeBytes(b []byte) {
	w.align(8)
	w.ensure(len(b) * 8)
	copy(w.buf[w.bitPos>>3:], b)
	w.bitPos += len(b) * 8
}

func (w *bitWriter) writeFixed(it compiledItem, val any) error {
	switch it.typ {
	case message.TypeBytes, message.TypeString:
		var b []byte
		switch x := val.(type) {
		case []byte:
			b = x
		case string:
			b = []byte(x)
		default:
			b = []byte(fmt.Sprint(x))
		}
		want := it.bits / 8
		if len(b) > want {
			b = b[:want]
		}
		for len(b) < want {
			b = append(b, 0)
		}
		w.writeBytes(b)
		return nil
	case message.TypeFloat64:
		f := message.NewPrimitive("x", message.TypeFloat64, val).Value.(float64)
		if it.bits == 32 {
			w.writeUint(uint64(math.Float32bits(float32(f))), 32)
		} else {
			w.writeUint(math.Float64bits(f), 64)
		}
		return nil
	case message.TypeBool:
		b := message.NewPrimitive("x", message.TypeBool, val).Value.(bool)
		var v uint64
		if b {
			v = 1
		}
		w.writeUint(v, it.bits)
		return nil
	case message.TypeInt64:
		n := message.NewPrimitive("x", message.TypeInt64, val).Value.(int64)
		mask := ^uint64(0)
		if it.bits < 64 {
			mask = 1<<it.bits - 1
		}
		w.writeUint(uint64(n)&mask, it.bits)
		return nil
	default:
		n := message.NewPrimitive("x", message.TypeUint64, val).Value.(uint64)
		if it.bits < 64 && n >= 1<<it.bits {
			return fmt.Errorf("binenc: %q: value %d overflows %d bits", it.label, n, it.bits)
		}
		w.writeUint(n, it.bits)
		return nil
	}
}

func (w *bitWriter) writeCDRSeq(f *message.Field) error {
	w.align(32)
	if f == nil {
		w.writeUint(0, 32)
		return nil
	}
	w.writeUint(uint64(len(f.Children)), 32)
	for _, p := range f.Children {
		w.align(8)
		switch p.Type {
		case message.TypeString:
			w.writeUint(uint64(tagString), 8)
			s := p.ValueString()
			w.align(32)
			w.writeUint(uint64(len(s)+1), 32)
			w.writeBytes(append([]byte(s), 0))
		case message.TypeInt32:
			w.writeUint(uint64(tagInt32), 8)
			w.align(32)
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], uint64(p.Value.(int64)))
			w.writeBytes(buf[4:])
		case message.TypeInt64, message.TypeUint64:
			w.writeUint(uint64(tagInt64), 8)
			w.align(64)
			var n uint64
			switch v := p.Value.(type) {
			case int64:
				n = uint64(v)
			case uint64:
				n = v
			}
			w.writeUint(n, 64)
		case message.TypeBool:
			w.writeUint(uint64(tagBool), 8)
			b, _ := p.Value.(bool)
			var v uint64
			if b {
				v = 1
			}
			w.writeUint(v, 8)
		case message.TypeFloat64:
			w.writeUint(uint64(tagDouble), 8)
			w.align(64)
			fv, _ := p.Value.(float64)
			w.writeUint(math.Float64bits(fv), 64)
		case message.TypeBytes:
			w.writeUint(uint64(tagBytes), 8)
			b, _ := p.Value.([]byte)
			w.align(32)
			w.writeUint(uint64(len(b)), 32)
			w.writeBytes(b)
		default:
			return fmt.Errorf("binenc: cannot encode parameter of type %v", p.Type)
		}
	}
	return nil
}
