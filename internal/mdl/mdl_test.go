package mdl

import (
	"errors"
	"strings"
	"testing"

	"starlink/internal/message"
)

const sampleDoc = `
# GIOP message formats
<MDL:GIOP:binary>
<Message:GIOPRequest>
<Rule:MessageType=0>
<RequestID:32><Response:8>
<ObjectKeyLength:32><ObjectKey:ObjectKeyLength>
<align:64><ParameterArray:cdrseq>
<End:Message>

<Message:GIOPReply>
<Rule:MessageType=1>
<RequestID:32><ReplyStatus:32>
<End:Message>
`

func TestParseDocument(t *testing.T) {
	spec, err := ParseString(sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "GIOP" || spec.Encoding != EncodingBinary {
		t.Errorf("header = %q/%q", spec.Name, spec.Encoding)
	}
	if len(spec.Messages) != 2 {
		t.Fatalf("messages = %d, want 2", len(spec.Messages))
	}
	req := spec.Message("GIOPRequest")
	if req == nil {
		t.Fatal("GIOPRequest missing")
	}
	if len(req.Rules) != 1 || req.Rules[0] != (Rule{Field: "MessageType", Value: "0"}) {
		t.Errorf("rules = %+v", req.Rules)
	}
	if len(req.Items) != 6 {
		t.Errorf("items = %d, want 6", len(req.Items))
	}
	if r, ok := req.Rule("MessageType"); !ok || r.Value != "0" {
		t.Errorf("Rule lookup = %+v %v", r, ok)
	}
	if _, ok := req.Rule("Nope"); ok {
		t.Error("Rule lookup found nonexistent rule")
	}
	if spec.Message("Nope") != nil {
		t.Error("Message lookup found nonexistent message")
	}
}

func TestParseMultipleDirectivesPerLine(t *testing.T) {
	spec, err := ParseString("<MDL:X:binary>\n<Message:M><A:8><B:8><End:Message>")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(spec.Message("M").Items); got != 2 {
		t.Errorf("items = %d, want 2", got)
	}
}

func TestParseSyntaxErrors(t *testing.T) {
	tests := []struct {
		name string
		doc  string
	}{
		{"unterminated directive", "<MDL:X:binary>\n<Message:M\n<End:Message>"},
		{"unclosed message", "<MDL:X:binary>\n<Message:M><A:8>"},
		{"nested message", "<MDL:X:binary>\n<Message:M><Message:N>"},
		{"end outside message", "<MDL:X:binary>\n<End:Message>"},
		{"rule outside message", "<MDL:X:binary>\n<Rule:A=1>"},
		{"rule without equals", "<MDL:X:binary>\n<Message:M><Rule:A>\n<End:Message>"},
		{"item outside message", "<MDL:X:binary>\n<A:8>"},
		{"message without name", "<MDL:X:binary>\n<Message:><End:Message>"},
		{"short header", "<MDL:X>\n<Message:M><End:Message>"},
		{"no messages", "<MDL:X:binary>"},
		{"empty document", ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseString(tt.doc); !errors.Is(err, ErrSyntax) {
				t.Errorf("err = %v, want ErrSyntax", err)
			}
		})
	}
}

func TestParseIgnoresCommentsAndBlank(t *testing.T) {
	doc := "# heading\n\n<MDL:X:binary>\n  # indented comment\n<Message:M>\n<A:8>\n<End:Message>\n"
	spec, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Messages) != 1 {
		t.Fatalf("messages = %d", len(spec.Messages))
	}
}

func TestItemAccessors(t *testing.T) {
	it := Item{Parts: []string{"A", "32", "uint"}}
	if it.Label() != "A" || it.Arg(1) != "32" || it.Arg(2) != "uint" || it.Arg(9) != "" {
		t.Errorf("accessors: %q %q %q %q", it.Label(), it.Arg(1), it.Arg(2), it.Arg(9))
	}
	empty := Item{}
	if empty.Label() != "" {
		t.Error("empty item label")
	}
}

type fakeCodec struct{}

func (fakeCodec) Parse([]byte) (*message.Message, error)   { return message.New("X"), nil }
func (fakeCodec) Compose(*message.Message) ([]byte, error) { return nil, nil }

func TestRegistryDispatch(t *testing.T) {
	var r Registry
	r.Register("fake", func(*Spec) (Codec, error) { return fakeCodec{}, nil })
	spec := &Spec{Encoding: "fake", Messages: []*MessageSpec{{Name: "M"}}}
	c, err := r.NewCodec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(fakeCodec); !ok {
		t.Errorf("codec type %T", c)
	}
	if _, err := r.NewCodec(&Spec{Encoding: "missing"}); err == nil {
		t.Error("unregistered encoding accepted")
	}
	if encs := r.Encodings(); len(encs) != 1 || encs[0] != "fake" {
		t.Errorf("encodings = %v", encs)
	}
}

func TestRuleValueWithColon(t *testing.T) {
	// Rule values may contain colons (e.g. version strings).
	spec, err := ParseString("<MDL:X:text>\n<Message:M><Rule:Version=HTTP:1.1><A:8><End:Message>")
	if err != nil {
		t.Fatal(err)
	}
	r, ok := spec.Message("M").Rule("Version")
	if !ok || r.Value != "HTTP:1.1" {
		t.Errorf("rule = %+v, %v", r, ok)
	}
}

func TestParseStringTrimsWhitespaceInParts(t *testing.T) {
	spec, err := ParseString("<MDL: X : binary>\n<Message: M >< A : 8 ><End:Message>")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "X" {
		t.Errorf("name = %q", spec.Name)
	}
	m := spec.Message("M")
	if m == nil {
		t.Fatal("trimmed message name not found")
	}
	if m.Items[0].Label() != "A" || m.Items[0].Arg(1) != "8" {
		t.Errorf("item = %+v", m.Items[0])
	}
}

func TestParseReaderLongLines(t *testing.T) {
	var b strings.Builder
	b.WriteString("<MDL:X:binary>\n<Message:M>")
	for i := 0; i < 5000; i++ {
		b.WriteString("<F:8>")
	}
	b.WriteString("<End:Message>")
	spec, err := ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(spec.Message("M").Items); got != 5000 {
		t.Errorf("items = %d", got)
	}
}
