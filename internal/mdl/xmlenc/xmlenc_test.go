package xmlenc

import (
	"errors"
	"strings"
	"testing"

	"starlink/internal/mdl"
	"starlink/internal/message"
)

const xmlrpcDoc = `
<MDL:XMLRPC:xml>
<Message:MethodCall>
<Rule:root=methodCall>
<End:Message>
<Message:MethodResponse>
<Rule:root=methodResponse>
<End:Message>
`

func mustCodec(t *testing.T, doc string) mdl.Codec {
	t.Helper()
	spec, err := mdl.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const sampleCall = `<?xml version="1.0"?>
<methodCall>
  <methodName>flickr.photos.search</methodName>
  <params>
    <param><value><string>tree</string></value></param>
    <param><value><int>3</int></value></param>
  </params>
</methodCall>`

func TestParseMethodCall(t *testing.T) {
	c := mustCodec(t, xmlrpcDoc)
	msg, err := c.Parse([]byte(sampleCall))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Name != "MethodCall" {
		t.Fatalf("parsed as %q", msg.Name)
	}
	if mn, _ := msg.GetString("methodName"); mn != "flickr.photos.search" {
		t.Errorf("methodName = %q", mn)
	}
	if v, _ := msg.GetString("params.param[0].value.string"); v != "tree" {
		t.Errorf("param0 = %q", v)
	}
	if v, _ := msg.GetString("params.param[1].value.int"); v != "3" {
		t.Errorf("param1 = %q", v)
	}
}

func TestDispatchOnRoot(t *testing.T) {
	c := mustCodec(t, xmlrpcDoc)
	msg, err := c.Parse([]byte(`<methodResponse><params/></methodResponse>`))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Name != "MethodResponse" {
		t.Errorf("parsed as %q", msg.Name)
	}
	if _, err := c.Parse([]byte(`<other/>`)); !errors.Is(err, mdl.ErrNoMessageMatch) {
		t.Errorf("unknown root err = %v", err)
	}
}

func TestComposeRoundTrip(t *testing.T) {
	c := mustCodec(t, xmlrpcDoc)
	in := message.New("MethodCall",
		message.NewPrimitive("methodName", message.TypeString, "flickr.photos.getInfo"),
		message.NewStruct("params",
			message.NewStruct("param",
				message.NewStruct("value",
					message.NewPrimitive("string", message.TypeString, "id<&>1"),
				),
			),
		),
	)
	wire, err := c.Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(wire), "id&lt;&amp;&gt;1") {
		t.Errorf("escaping missing: %s", wire)
	}
	back, err := c.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := back.GetString("params.param.value.string"); v != "id<&>1" {
		t.Errorf("round-trip value = %q", v)
	}
}

func TestAttributesRoundTrip(t *testing.T) {
	doc := `
<MDL:Atom:xml>
<Message:Feed>
<Rule:root=feed>
<End:Message>
`
	c := mustCodec(t, doc)
	raw := `<feed><entry etag="W/1"><id>p1</id><content type="image/jpeg" src="http://x/1.jpg"/></entry></feed>`
	msg, err := c.Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := msg.GetString("entry.@etag"); v != "W/1" {
		t.Errorf("@etag = %q", v)
	}
	if v, _ := msg.GetString("entry.content.@src"); v != "http://x/1.jpg" {
		t.Errorf("@src = %q", v)
	}
	wire, err := c.Compose(msg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := c.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !msg.Equal(back) {
		t.Errorf("attribute round-trip mismatch:\n%s\n%s", msg, back)
	}
}

func TestMixedContent(t *testing.T) {
	c := mustCodec(t, xmlrpcDoc)
	raw := `<methodCall><methodName>m</methodName><note lang="en">hello <b>world</b></note></methodCall>`
	msg, err := c.Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := msg.GetString("note.#text"); v != "hello" {
		t.Errorf("#text = %q", v)
	}
	if v, _ := msg.GetString("note.b"); v != "world" {
		t.Errorf("b = %q", v)
	}
	if v, _ := msg.GetString("note.@lang"); v != "en" {
		t.Errorf("@lang = %q", v)
	}
}

func TestEmptyElement(t *testing.T) {
	c := mustCodec(t, xmlrpcDoc)
	msg, err := c.Parse([]byte(`<methodCall><params/></methodCall>`))
	if err != nil {
		t.Fatal(err)
	}
	f, err := msg.Lookup("params")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Type.Primitive() || f.ValueString() != "" {
		t.Errorf("empty element = %v %q", f.Type, f.ValueString())
	}
}

func TestValueRuleDispatch(t *testing.T) {
	doc := `
<MDL:SOAP:xml>
<Message:AddRequest>
<Rule:root=Envelope>
<Rule:Body.Add.op=add>
<End:Message>
<Message:SubRequest>
<Rule:root=Envelope>
<Rule:Body.Sub.op=sub>
<End:Message>
`
	c := mustCodec(t, doc)
	msg, err := c.Parse([]byte(`<Envelope><Body><Sub><op>sub</op></Sub></Body></Envelope>`))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Name != "SubRequest" {
		t.Errorf("dispatched to %q", msg.Name)
	}
}

func TestRootAttrsEmitted(t *testing.T) {
	doc := `
<MDL:SOAP:xml>
<Message:Envelope>
<Rule:root=Envelope>
<xmlns:attr:http://schemas.xmlsoap.org/soap/envelope/>
<End:Message>
`
	c := mustCodec(t, doc)
	wire, err := c.Compose(message.New("Envelope", message.NewStruct("Body")))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(wire), `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"`) {
		t.Errorf("root attr missing: %s", wire)
	}
}

func TestBadSpecs(t *testing.T) {
	noRoot := "<MDL:X:xml>\n<Message:M><End:Message>"
	spec, err := mdl.ParseString(noRoot)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(spec); !errors.Is(err, ErrBadSpec) {
		t.Errorf("missing root rule: err = %v", err)
	}
	badItem := "<MDL:X:xml>\n<Message:M><Rule:root=m><A:8><End:Message>"
	spec, err = mdl.ParseString(badItem)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(spec); !errors.Is(err, ErrBadSpec) {
		t.Errorf("bad item: err = %v", err)
	}
}

func TestMalformedDocuments(t *testing.T) {
	c := mustCodec(t, xmlrpcDoc)
	for _, raw := range []string{"", "not xml", "<methodCall>", "<a><b></a></b>"} {
		if _, err := c.Parse([]byte(raw)); err == nil {
			t.Errorf("Parse(%q) accepted", raw)
		}
	}
}

func TestComposeUnknownMessage(t *testing.T) {
	c := mustCodec(t, xmlrpcDoc)
	if _, err := c.Compose(message.New("Nope")); !errors.Is(err, mdl.ErrUnknownMessage) {
		t.Errorf("err = %v", err)
	}
}

func TestComposeTopLevelAttrBecomesRootAttr(t *testing.T) {
	c := mustCodec(t, xmlrpcDoc)
	in := message.New("MethodCall", message.NewPrimitive("@v", message.TypeString, "1"))
	wire, err := c.Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(wire), `<methodCall v="1"/>`) {
		t.Errorf("root attribute not emitted: %s", wire)
	}
}

func TestDecodeEncodeHelpers(t *testing.T) {
	f, err := DecodeTree([]byte(`<entry><id>p1</id></entry>`))
	if err != nil {
		t.Fatal(err)
	}
	if f.Label != "entry" || f.Child("id").ValueString() != "p1" {
		t.Errorf("DecodeTree = %v", f)
	}
	s, err := EncodeField(f)
	if err != nil {
		t.Fatal(err)
	}
	if s != "<entry><id>p1</id></entry>" {
		t.Errorf("EncodeField = %q", s)
	}
}

func BenchmarkXMLParse(b *testing.B) {
	spec, _ := mdl.ParseString(xmlrpcDoc)
	c, _ := New(spec)
	raw := []byte(sampleCall)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Parse(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXMLCompose(b *testing.B) {
	spec, _ := mdl.ParseString(xmlrpcDoc)
	c, _ := New(spec)
	msg, err := c.Parse([]byte(sampleCall))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compose(msg); err != nil {
			b.Fatal(err)
		}
	}
}
