// Package xmlenc is the MDL engine for XML-bodied protocols (XML-RPC,
// SOAP envelopes, Atom/GData feeds).
//
// The engine maps an XML document onto the abstract message model
// generically:
//
//   - an element becomes a structured field labelled with its local name;
//   - an attribute becomes a child primitive labelled "@name";
//   - an element containing only character data becomes a primitive string
//     field (or, when it also carries attributes, a structured field with a
//     "#text" child);
//   - inter-element whitespace is ignored.
//
// A message layout needs only a discriminator on the document's root
// element:
//
//	<MDL:XMLRPC:xml>
//	<Message:MethodCall>
//	<Rule:root=methodCall>
//	<End:Message>
//
// Parse selects the layout whose root rule matches and exposes the root's
// children as the message's top-level fields. Compose re-serialises them
// under the rule's root element. Additional <Rule:path=value> rules may
// pin field values for dispatch between layouts sharing a root (e.g. SOAP
// requests vs replies).
package xmlenc

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"

	"starlink/internal/mdl"
	"starlink/internal/message"
	"starlink/internal/protocol/bufpool"
)

// Errors reported by the XML engine.
var (
	// ErrBadSpec is wrapped by all layout validation errors.
	ErrBadSpec = errors.New("xmlenc: invalid layout")
	// ErrMalformed is wrapped when the packet is not well-formed XML.
	ErrMalformed = errors.New("xmlenc: malformed document")
)

type compiledMessage struct {
	spec *mdl.MessageSpec
	root string
	// attrs are root-element attributes to emit on compose, from layout
	// items of the form <@xmlns:ns=value> ... encoded as <Name:attr:value>.
	attrs []xml.Attr
}

// Codec interprets an XML MDL spec.
type Codec struct {
	spec     *mdl.Spec
	messages []*compiledMessage
	byName   map[string]*compiledMessage
}

var _ mdl.Codec = (*Codec)(nil)

// New compiles an XML MDL spec into a codec.
func New(spec *mdl.Spec) (mdl.Codec, error) {
	c := &Codec{spec: spec, byName: make(map[string]*compiledMessage, len(spec.Messages))}
	for _, ms := range spec.Messages {
		cm := &compiledMessage{spec: ms}
		for _, r := range ms.Rules {
			if r.Field == "root" {
				cm.root = r.Value
			}
		}
		if cm.root == "" {
			return nil, fmt.Errorf("%w: message %q needs a <Rule:root=...> discriminator", ErrBadSpec, ms.Name)
		}
		for _, it := range ms.Items {
			if it.Arg(1) != "attr" {
				return nil, fmt.Errorf("%w: message %q: unknown item %q (only <Name:attr:value> is allowed)",
					ErrBadSpec, ms.Name, it.Label())
			}
			cm.attrs = append(cm.attrs, xml.Attr{
				Name:  xml.Name{Local: it.Label()},
				Value: strings.Join(it.Parts[2:], ":"),
			})
		}
		c.messages = append(c.messages, cm)
		c.byName[ms.Name] = cm
	}
	return c, nil
}

// Register installs the engine in a registry under mdl.EncodingXML.
func Register(r *mdl.Registry) { r.Register(mdl.EncodingXML, New) }

// Parse decodes an XML document, dispatching on the root element and any
// additional value rules.
func (c *Codec) Parse(data []byte) (*message.Message, error) {
	root, err := decodeTree(data)
	if err != nil {
		return nil, err
	}
	for _, cm := range c.messages {
		if cm.root != root.Label {
			continue
		}
		msg := message.New(cm.spec.Name, root.Children...)
		if valueRulesHold(cm, msg) {
			return msg, nil
		}
	}
	return nil, fmt.Errorf("%w: root element %q", mdl.ErrNoMessageMatch, root.Label)
}

func valueRulesHold(cm *compiledMessage, msg *message.Message) bool {
	for _, r := range cm.spec.Rules {
		if r.Field == "root" {
			continue
		}
		got, err := msg.GetString(r.Field)
		if err != nil || got != r.Value {
			return false
		}
	}
	return true
}

// decodeTree parses an XML document into one field per root element.
func decodeTree(data []byte) (*message.Field, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("%w: no root element", ErrMalformed)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			f, err := decodeElement(dec, se)
			if err != nil {
				return nil, err
			}
			return f, nil
		}
	}
}

func decodeElement(dec *xml.Decoder, se xml.StartElement) (*message.Field, error) {
	f := message.NewStruct(se.Name.Local)
	for _, a := range se.Attr {
		name := a.Name.Local
		if a.Name.Space != "" && a.Name.Space != "xmlns" {
			name = a.Name.Space + ":" + name
		}
		f.Add(message.NewPrimitive("@"+name, message.TypeString, a.Value))
	}
	var text strings.Builder
	hasChildren := len(f.Children) > 0
	hasElems := false
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			child, err := decodeElement(dec, t)
			if err != nil {
				return nil, err
			}
			f.Add(child)
			hasChildren, hasElems = true, true
		case xml.CharData:
			text.Write(t)
		case xml.EndElement:
			content := text.String()
			if hasElems {
				content = strings.TrimSpace(content)
			}
			switch {
			case !hasChildren:
				// Pure text (or empty) element -> primitive.
				return message.NewPrimitive(f.Label, message.TypeString, content), nil
			case strings.TrimSpace(content) != "":
				f.Add(message.NewPrimitive("#text", message.TypeString, strings.TrimSpace(content)))
			}
			return f, nil
		}
	}
}

// Compose serialises the abstract message under its layout's root element.
func (c *Codec) Compose(msg *message.Message) ([]byte, error) {
	cm, ok := c.byName[msg.Name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", mdl.ErrUnknownMessage, msg.Name)
	}
	b := bufpool.Get()
	defer bufpool.Put(b)
	b.WriteString(xml.Header)
	root := message.NewStruct(cm.root, msg.Fields...)
	if err := encodeField(b, root, cm.attrs); err != nil {
		return nil, err
	}
	return bufpool.Bytes(b), nil
}

func encodeField(b *bytes.Buffer, f *message.Field, extraAttrs []xml.Attr) error {
	if strings.HasPrefix(f.Label, "@") || f.Label == "#text" {
		return fmt.Errorf("xmlenc: %q cannot be a top-level element", f.Label)
	}
	b.WriteByte('<')
	b.WriteString(f.Label)
	for _, a := range extraAttrs {
		b.WriteString(" " + a.Name.Local + `="`)
		if err := xml.EscapeText(b, []byte(a.Value)); err != nil {
			return err
		}
		b.WriteString(`"`)
	}
	if f.Type.Primitive() {
		b.WriteByte('>')
		if err := xml.EscapeText(b, []byte(f.ValueString())); err != nil {
			return err
		}
		b.WriteString("</" + f.Label + ">")
		return nil
	}
	var elems []*message.Field
	var text string
	for _, c := range f.Children {
		switch {
		case strings.HasPrefix(c.Label, "@"):
			b.WriteString(" " + c.Label[1:] + `="`)
			if err := xml.EscapeText(b, []byte(c.ValueString())); err != nil {
				return err
			}
			b.WriteString(`"`)
		case c.Label == "#text":
			text = c.ValueString()
		default:
			elems = append(elems, c)
		}
	}
	if len(elems) == 0 && text == "" {
		b.WriteString("/>")
		return nil
	}
	b.WriteByte('>')
	if text != "" {
		if err := xml.EscapeText(b, []byte(text)); err != nil {
			return err
		}
	}
	for _, c := range elems {
		if err := encodeField(b, c, nil); err != nil {
			return err
		}
	}
	b.WriteString("</" + f.Label + ">")
	return nil
}

// DecodeTree exposes the generic XML -> field mapping for protocol codecs
// that need to inspect fragments (e.g. Atom entries embedded in strings).
func DecodeTree(data []byte) (*message.Field, error) { return decodeTree(data) }

// EncodeField exposes the generic field -> XML mapping for protocol codecs.
func EncodeField(f *message.Field) (string, error) {
	b := bufpool.Get()
	defer bufpool.Put(b)
	if err := encodeField(b, f, nil); err != nil {
		return "", err
	}
	return b.String(), nil
}

// EncodeInto renders f into b with the same mapping as EncodeField,
// letting callers that assemble larger documents reuse one buffer.
func EncodeInto(b *bytes.Buffer, f *message.Field) error {
	return encodeField(b, f, nil)
}

// docHeader is the XML declaration the RPC protocol layers emit (they
// predate encoding declarations; xml.Header is the MDL codec's form).
const docHeader = `<?xml version="1.0"?>` + "\n"

// EncodeDoc renders f as a standalone document — XML declaration plus
// the encoded element — through the shared encode-buffer pool, returning
// a right-sized copy. It is the one-call replacement for the
// EncodeField-then-concatenate pattern in the XML protocol layers
// (XML-RPC, SOAP, Atom), which allocated the string, the concatenation
// and the []byte conversion separately.
func EncodeDoc(f *message.Field) ([]byte, error) {
	b := bufpool.Get()
	defer bufpool.Put(b)
	b.WriteString(docHeader)
	if err := encodeField(b, f, nil); err != nil {
		return nil, err
	}
	return bufpool.Bytes(b), nil
}
