// Fault injection and failure classification. FaultConn is the test
// transport the engine's failure suites script against; IsTransportError
// is how the automata engine decides whether a failed service exchange
// is worth retrying on a fresh connection.
package network

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// ErrInjected is the default error returned by scripted FaultConn faults.
var ErrInjected = errors.New("network: injected fault")

// IsTransportError reports whether err looks like a transport-level
// failure (peer gone, connection reset, timeout, dial refused) rather
// than a protocol-level one (malformed frame, oversized message). Only
// transport errors are worth retrying on a fresh connection: a protocol
// error would just reproduce.
func IsTransportError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrMessageTooLarge) {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, ErrClosed) || errors.Is(err, ErrInjected) {
		return true
	}
	var netErr net.Error
	if errors.As(err, &netErr) {
		return true
	}
	var opErr *net.OpError
	return errors.As(err, &opErr)
}

// Fault is one scripted fault point of a FaultConn. Faults of a
// direction are consumed in order; each Send/Recv call consumes at most
// the next fault whose After count has been reached.
type Fault struct {
	// After is the number of successful operations in this direction
	// before the fault fires: 0 fires on the very next call.
	After int
	// Delay is slept before the fault acts (simulates a slow peer).
	Delay time.Duration
	// Err is returned by the faulted call; nil defaults to ErrInjected
	// unless Drop is set.
	Err error
	// Drop makes Send discard the message while reporting success, and
	// Recv skip one inbound message and deliver the following one.
	Drop bool
}

// FaultConn wraps any Conn with scripted error, delay and drop points so
// tests can reproduce mid-exchange transport failures deterministically.
// It is safe for the one-sender/one-receiver use the engine makes of a
// Conn.
type FaultConn struct {
	// Inner is the wrapped transport.
	Inner Conn

	mu           sync.Mutex
	sendScript   []Fault
	recvScript   []Fault
	sends, recvs int
}

var _ Conn = (*FaultConn)(nil)

// NewFaultConn wraps inner with an empty fault script.
func NewFaultConn(inner Conn) *FaultConn { return &FaultConn{Inner: inner} }

// ScriptSend appends faults to the send script.
func (f *FaultConn) ScriptSend(faults ...Fault) {
	f.mu.Lock()
	f.sendScript = append(f.sendScript, faults...)
	f.mu.Unlock()
}

// ScriptRecv appends faults to the receive script.
func (f *FaultConn) ScriptRecv(faults ...Fault) {
	f.mu.Lock()
	f.recvScript = append(f.recvScript, faults...)
	f.mu.Unlock()
}

// next pops the head fault when its After count has been reached.
func next(script *[]Fault, done int) (Fault, bool) {
	if len(*script) == 0 || (*script)[0].After > done {
		return Fault{}, false
	}
	fault := (*script)[0]
	*script = (*script)[1:]
	return fault, true
}

// Send implements Conn, consulting the send script first.
func (f *FaultConn) Send(data []byte) error {
	f.mu.Lock()
	fault, fired := next(&f.sendScript, f.sends)
	if !fired {
		f.sends++
	}
	f.mu.Unlock()
	if fired {
		if fault.Delay > 0 {
			time.Sleep(fault.Delay)
		}
		if fault.Drop {
			return nil
		}
		if fault.Err != nil {
			return fault.Err
		}
		return ErrInjected
	}
	return f.Inner.Send(data)
}

// Recv implements Conn, consulting the receive script first.
func (f *FaultConn) Recv() ([]byte, error) {
	f.mu.Lock()
	fault, fired := next(&f.recvScript, f.recvs)
	if !fired {
		f.recvs++
	}
	f.mu.Unlock()
	if fired {
		if fault.Delay > 0 {
			time.Sleep(fault.Delay)
		}
		if fault.Drop {
			// Swallow one inbound message, deliver the next.
			if _, err := f.Inner.Recv(); err != nil {
				return nil, err
			}
			return f.Inner.Recv()
		}
		if fault.Err != nil {
			return nil, fault.Err
		}
		return nil, ErrInjected
	}
	return f.Inner.Recv()
}

// SetDeadline implements Conn.
func (f *FaultConn) SetDeadline(t time.Time) error { return f.Inner.SetDeadline(t) }

// RemoteAddr implements Conn.
func (f *FaultConn) RemoteAddr() net.Addr { return f.Inner.RemoteAddr() }

// Close implements Conn.
func (f *FaultConn) Close() error { return f.Inner.Close() }
