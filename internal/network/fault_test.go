package network

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pipePair returns two connected FaultConn-wrappable endpoints.
func pipePair() (Conn, Conn) {
	return Pipe(LengthPrefixFramer{})
}

func TestFaultConnPassthrough(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	fa := NewFaultConn(a)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := fa.Send([]byte("hello")); err != nil {
			t.Error(err)
		}
	}()
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("got %q", got)
	}
	wg.Wait()
}

func TestFaultConnScriptedSendError(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	fa := NewFaultConn(a)
	boom := errors.New("boom")
	// Fail the second send only.
	fa.ScriptSend(Fault{After: 1, Err: boom})

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := b.Recv(); err != nil {
			t.Error(err)
		}
		if _, err := b.Recv(); err != nil {
			t.Error(err)
		}
	}()
	if err := fa.Send([]byte("one")); err != nil {
		t.Fatalf("first send: %v", err)
	}
	if err := fa.Send([]byte("two")); !errors.Is(err, boom) {
		t.Fatalf("second send err = %v, want boom", err)
	}
	// The script is consumed: the next send goes through.
	if err := fa.Send([]byte("three")); err != nil {
		t.Fatalf("third send: %v", err)
	}
	<-done
}

func TestFaultConnScriptedRecvDefaultsToErrInjected(t *testing.T) {
	a, _ := pipePair()
	defer a.Close()
	fa := NewFaultConn(a)
	fa.ScriptRecv(Fault{})
	if _, err := fa.Recv(); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestFaultConnDropSend(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	fa := NewFaultConn(a)
	fa.ScriptSend(Fault{Drop: true})

	// The dropped message reports success but never arrives.
	if err := fa.Send([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	go fa.Send([]byte("kept"))
	b.SetDeadline(time.Now().Add(2 * time.Second))
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "kept" {
		t.Errorf("got %q, want the message after the dropped one", got)
	}
}

func TestFaultConnDelay(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	fa := NewFaultConn(a)
	fa.ScriptSend(Fault{Delay: 30 * time.Millisecond, Err: ErrInjected})
	start := time.Now()
	if err := fa.Send([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("fault fired after %v, want >= 30ms", elapsed)
	}
}

func TestIsTransportError(t *testing.T) {
	transport := []error{
		io.EOF,
		io.ErrUnexpectedEOF,
		io.ErrClosedPipe,
		net.ErrClosed,
		ErrClosed,
		ErrInjected,
		&net.OpError{Op: "read", Err: errors.New("connection reset by peer")},
	}
	for _, err := range transport {
		if !IsTransportError(err) {
			t.Errorf("IsTransportError(%v) = false, want true", err)
		}
	}
	protocol := []error{
		nil,
		ErrMessageTooLarge,
		errors.New("network: bad Content-Length \"x\""),
		errors.New("parse error"),
	}
	for _, err := range protocol {
		if IsTransportError(err) {
			t.Errorf("IsTransportError(%v) = true, want false", err)
		}
	}
	// A real dead-socket error from the stack classifies as transport.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	var eng Engine
	if _, err := eng.Dial(Semantics{Transport: "tcp"}, addr, LengthPrefixFramer{}); !IsTransportError(err) {
		t.Errorf("refused dial classified as non-transport: %v", err)
	}
}

func TestEngineDialTimeoutConfigurable(t *testing.T) {
	// A live listener accepts regardless of the timeout setting.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	eng := Engine{DialTimeout: 500 * time.Millisecond}
	conn, err := eng.Dial(Semantics{Transport: "tcp"}, l.Addr().String(), LengthPrefixFramer{})
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// Zero falls back to the default rather than an instant timeout.
	if DefaultDialTimeout != 10*time.Second {
		t.Errorf("DefaultDialTimeout = %v", DefaultDialTimeout)
	}
}
