// Package network is Starlink's network engine (paper Section 4.2): it
// moves whole protocol messages to and from the wire so the rest of the
// framework can stay at the abstract-message level. A transition in a
// k-colored automaton attaches network semantics — transport (tcp/udp),
// interaction mode (sync/async), multicast — and this engine provides the
// matching services.
//
// Because protocols frame their messages differently (HTTP by headers and
// Content-Length, GIOP by a fixed 12-byte header carrying the body size,
// discovery protocols by datagram boundaries), message extraction is
// delegated to a Framer chosen per protocol model.
package network

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Errors reported by the network engine.
var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("network: connection closed")
	// ErrMessageTooLarge guards against absurd frame sizes.
	ErrMessageTooLarge = errors.New("network: message exceeds size limit")
)

// MaxMessageSize bounds a single framed message (16 MiB).
const MaxMessageSize = 16 << 20

// DefaultDialTimeout bounds Dial when Engine.DialTimeout is unset.
const DefaultDialTimeout = 10 * time.Second

// Framer extracts one protocol message from a stream and writes one back.
// Implementations must be safe for concurrent use by different
// connections.
type Framer interface {
	// ReadMessage reads exactly one message's bytes.
	ReadMessage(r *bufio.Reader) ([]byte, error)
	// WriteMessage writes one message's bytes.
	WriteMessage(w io.Writer, data []byte) error
}

// Conn is a framed, bidirectional message channel.
type Conn interface {
	// Send writes one message.
	Send(data []byte) error
	// Recv reads one message.
	Recv() ([]byte, error)
	// SetDeadline bounds both directions.
	SetDeadline(t time.Time) error
	// RemoteAddr identifies the peer.
	RemoteAddr() net.Addr
	// Close releases the channel.
	Close() error
}

// Listener accepts framed connections.
type Listener interface {
	// Accept waits for the next connection.
	Accept() (Conn, error)
	// Addr is the bound address.
	Addr() net.Addr
	// Close stops accepting.
	Close() error
}

// ---- framers ----

// LengthPrefixFramer frames messages with a 4-byte big-endian length.
type LengthPrefixFramer struct{}

var _ Framer = LengthPrefixFramer{}

// ReadMessage implements Framer.
func (LengthPrefixFramer) ReadMessage(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return nil, ErrMessageTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("network: short frame: %w", err)
	}
	return buf, nil
}

// WriteMessage implements Framer.
func (LengthPrefixFramer) WriteMessage(w io.Writer, data []byte) error {
	if len(data) > MaxMessageSize {
		return ErrMessageTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// HTTPFramer frames HTTP/1.x requests and responses: start line, header
// block, then a body of Content-Length bytes (0 when absent). Messages
// carrying conflicting Content-Length headers are rejected — accepting
// the last value would desynchronise the stream for the rest of the
// connection; identical repeats are tolerated per RFC 7230 §3.3.2.
type HTTPFramer struct{}

var _ Framer = HTTPFramer{}

// ReadMessage implements Framer.
func (HTTPFramer) ReadMessage(r *bufio.Reader) ([]byte, error) {
	var buf bytes.Buffer
	contentLength := 0
	seenLength := false
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			if err == io.EOF && buf.Len() == 0 {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("network: http header: %w", err)
		}
		buf.WriteString(line)
		if buf.Len() > MaxMessageSize {
			return nil, ErrMessageTooLarge
		}
		trimmed := strings.TrimRight(line, "\r\n")
		if trimmed == "" {
			break
		}
		if k, v, ok := strings.Cut(trimmed, ":"); ok && strings.EqualFold(strings.TrimSpace(k), "Content-Length") {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("network: bad Content-Length %q", v)
			}
			if seenLength && n != contentLength {
				return nil, fmt.Errorf("network: conflicting Content-Length headers (%d vs %d)", contentLength, n)
			}
			contentLength = n
			seenLength = true
		}
	}
	if contentLength > MaxMessageSize {
		return nil, ErrMessageTooLarge
	}
	if contentLength > 0 {
		body := make([]byte, contentLength)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil, fmt.Errorf("network: http body: %w", err)
		}
		buf.Write(body)
	}
	return buf.Bytes(), nil
}

// WriteMessage implements Framer.
func (HTTPFramer) WriteMessage(w io.Writer, data []byte) error {
	_, err := w.Write(data)
	return err
}

// GIOPFramer frames GIOP messages: a 12-byte header whose last 4 bytes are
// the big-endian body size.
type GIOPFramer struct{}

var _ Framer = GIOPFramer{}

// ReadMessage implements Framer.
func (GIOPFramer) ReadMessage(r *bufio.Reader) ([]byte, error) {
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if string(hdr[:4]) != "GIOP" {
		return nil, fmt.Errorf("network: bad GIOP magic %q", hdr[:4])
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	if n > MaxMessageSize {
		return nil, ErrMessageTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("network: short GIOP body: %w", err)
	}
	return append(hdr, body...), nil
}

// WriteMessage implements Framer. The MessageSize header field is patched
// to the actual body length so composers need not precompute it.
func (GIOPFramer) WriteMessage(w io.Writer, data []byte) error {
	if len(data) < 12 {
		return fmt.Errorf("network: GIOP message shorter than header (%d bytes)", len(data))
	}
	out := make([]byte, len(data))
	copy(out, data)
	binary.BigEndian.PutUint32(out[8:12], uint32(len(data)-12))
	_, err := w.Write(out)
	return err
}

// ---- stream connections ----

type streamConn struct {
	c      net.Conn
	r      *bufio.Reader
	framer Framer
}

var _ Conn = (*streamConn)(nil)

// NewStreamConn wraps a net.Conn with a framer.
func NewStreamConn(c net.Conn, framer Framer) Conn {
	return &streamConn{c: c, r: bufio.NewReader(c), framer: framer}
}

func (s *streamConn) Send(data []byte) error {
	return s.framer.WriteMessage(s.c, data)
}

func (s *streamConn) Recv() ([]byte, error) {
	return s.framer.ReadMessage(s.r)
}

func (s *streamConn) SetDeadline(t time.Time) error { return s.c.SetDeadline(t) }
func (s *streamConn) RemoteAddr() net.Addr          { return s.c.RemoteAddr() }
func (s *streamConn) Close() error                  { return s.c.Close() }

type streamListener struct {
	l      net.Listener
	framer Framer
}

var _ Listener = (*streamListener)(nil)

func (sl *streamListener) Accept() (Conn, error) {
	c, err := sl.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewStreamConn(c, sl.framer), nil
}

func (sl *streamListener) Addr() net.Addr { return sl.l.Addr() }
func (sl *streamListener) Close() error   { return sl.l.Close() }

// ---- datagram connections ----

// datagramConn adapts a UDP socket to the Conn interface: one datagram is
// one message. On the listening side, replies go to the most recent
// sender, so a request/response server conn serves sequential peers; on
// the dialling side the peer is fixed. Close may be called from another
// goroutine (the mediator shutting a session down); Send/Recv are for one
// goroutine at a time.
type datagramConn struct {
	pc        net.PacketConn
	fixedPeer bool
	buf       []byte
	closed    atomic.Bool

	mu   sync.Mutex
	peer net.Addr
}

var _ Conn = (*datagramConn)(nil)

func (d *datagramConn) currentPeer() net.Addr {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peer
}

func (d *datagramConn) Send(data []byte) error {
	if d.closed.Load() {
		return ErrClosed
	}
	peer := d.currentPeer()
	if peer == nil {
		return errors.New("network: datagram peer unknown")
	}
	_, err := d.pc.WriteTo(data, peer)
	return err
}

func (d *datagramConn) Recv() ([]byte, error) {
	if d.closed.Load() {
		return nil, ErrClosed
	}
	n, addr, err := d.pc.ReadFrom(d.buf)
	if err != nil {
		return nil, err
	}
	if !d.fixedPeer {
		d.mu.Lock()
		d.peer = addr
		d.mu.Unlock()
	}
	out := make([]byte, n)
	copy(out, d.buf[:n])
	return out, nil
}

func (d *datagramConn) SetDeadline(t time.Time) error { return d.pc.SetDeadline(t) }

func (d *datagramConn) RemoteAddr() net.Addr {
	if peer := d.currentPeer(); peer != nil {
		return peer
	}
	return d.pc.LocalAddr()
}

func (d *datagramConn) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	return d.pc.Close()
}

// ---- engine ----

// Semantics describe how a protocol's messages travel; they mirror the
// attributes attached to k-colored transitions (Fig. 4).
type Semantics struct {
	// Transport is "tcp" or "udp".
	Transport string
	// Mode is "sync" or "async" (currently informational: the automata
	// engine decides when to wait for replies).
	Mode string
	// Multicast requests a multicast-capable UDP socket.
	Multicast bool
}

// Engine opens listeners and client connections with the right transport
// and framing. The zero value is ready to use.
type Engine struct {
	// DialTimeout bounds connection establishment in Dial (default
	// DefaultDialTimeout).
	DialTimeout time.Duration
}

// Listen binds a server endpoint.
func (Engine) Listen(sem Semantics, addr string, framer Framer) (Listener, error) {
	switch sem.Transport {
	case "", "tcp":
		l, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("network: listen tcp %s: %w", addr, err)
		}
		return &streamListener{l: l, framer: framer}, nil
	case "udp":
		if sem.Multicast {
			udpAddr, err := net.ResolveUDPAddr("udp", addr)
			if err != nil {
				return nil, fmt.Errorf("network: resolve %s: %w", addr, err)
			}
			pc, err := net.ListenMulticastUDP("udp", nil, udpAddr)
			if err != nil {
				return nil, fmt.Errorf("network: multicast listen %s: %w", addr, err)
			}
			return &datagramListener{pc: pc}, nil
		}
		pc, err := net.ListenPacket("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("network: listen udp %s: %w", addr, err)
		}
		return &datagramListener{pc: pc}, nil
	default:
		return nil, fmt.Errorf("network: unknown transport %q", sem.Transport)
	}
}

// Dial opens a client endpoint.
func (e Engine) Dial(sem Semantics, addr string, framer Framer) (Conn, error) {
	timeout := e.DialTimeout
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	switch sem.Transport {
	case "", "tcp":
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, fmt.Errorf("network: dial tcp %s: %w", addr, err)
		}
		return NewStreamConn(c, framer), nil
	case "udp":
		raddr, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("network: resolve %s: %w", addr, err)
		}
		pc, err := net.ListenPacket("udp", ":0")
		if err != nil {
			return nil, fmt.Errorf("network: udp socket: %w", err)
		}
		return &datagramConn{pc: pc, peer: raddr, fixedPeer: true, buf: make([]byte, 64*1024)}, nil
	default:
		return nil, fmt.Errorf("network: unknown transport %q", sem.Transport)
	}
}

// datagramListener hands out one pseudo-connection per listener; UDP has
// no accept semantics, so Accept returns a Conn bound to the socket that
// locks onto the first peer.
type datagramListener struct {
	pc   net.PacketConn
	used bool
}

var _ Listener = (*datagramListener)(nil)

func (dl *datagramListener) Accept() (Conn, error) {
	if dl.used {
		return nil, ErrClosed
	}
	dl.used = true
	return &datagramConn{pc: dl.pc, buf: make([]byte, 64*1024)}, nil
}

func (dl *datagramListener) Addr() net.Addr { return dl.pc.LocalAddr() }
func (dl *datagramListener) Close() error   { return dl.pc.Close() }

// PacketEndpoint is a UDP socket with per-packet peer addressing, for
// servers that answer many clients on one socket (discovery agents).
type PacketEndpoint interface {
	// RecvFrom reads one datagram and its source.
	RecvFrom() ([]byte, net.Addr, error)
	// SendTo writes one datagram to a peer.
	SendTo(data []byte, peer net.Addr) error
	// SetDeadline bounds both directions.
	SetDeadline(t time.Time) error
	// LocalAddr is the bound address.
	LocalAddr() net.Addr
	// Close releases the socket.
	Close() error
}

type packetEndpoint struct {
	pc  net.PacketConn
	buf []byte
}

var _ PacketEndpoint = (*packetEndpoint)(nil)

func (p *packetEndpoint) RecvFrom() ([]byte, net.Addr, error) {
	n, addr, err := p.pc.ReadFrom(p.buf)
	if err != nil {
		return nil, nil, err
	}
	out := make([]byte, n)
	copy(out, p.buf[:n])
	return out, addr, nil
}

func (p *packetEndpoint) SendTo(data []byte, peer net.Addr) error {
	_, err := p.pc.WriteTo(data, peer)
	return err
}

func (p *packetEndpoint) SetDeadline(t time.Time) error { return p.pc.SetDeadline(t) }
func (p *packetEndpoint) LocalAddr() net.Addr           { return p.pc.LocalAddr() }
func (p *packetEndpoint) Close() error                  { return p.pc.Close() }

// ListenPacket binds a UDP socket with per-packet addressing; sem may
// request multicast membership.
func (Engine) ListenPacket(sem Semantics, addr string) (PacketEndpoint, error) {
	if sem.Multicast {
		udpAddr, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("network: resolve %s: %w", addr, err)
		}
		pc, err := net.ListenMulticastUDP("udp", nil, udpAddr)
		if err != nil {
			return nil, fmt.Errorf("network: multicast listen %s: %w", addr, err)
		}
		return &packetEndpoint{pc: pc, buf: make([]byte, 64*1024)}, nil
	}
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: listen packet %s: %w", addr, err)
	}
	return &packetEndpoint{pc: pc, buf: make([]byte, 64*1024)}, nil
}

// Pipe returns two in-memory connected endpoints sharing a framer — the
// test transport.
func Pipe(framer Framer) (Conn, Conn) {
	a, b := net.Pipe()
	return NewStreamConn(a, framer), NewStreamConn(b, framer)
}
