package network

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLengthPrefixRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	f := LengthPrefixFramer{}
	msgs := [][]byte{[]byte("hello"), {}, []byte("second message")}
	for _, m := range msgs {
		if err := f.WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for _, want := range msgs {
		got, err := f.ReadMessage(r)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("got %q, want %q", got, want)
		}
	}
	if _, err := f.ReadMessage(r); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestLengthPrefixLimits(t *testing.T) {
	f := LengthPrefixFramer{}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxMessageSize+1)
	if _, err := f.ReadMessage(bufio.NewReader(bytes.NewReader(hdr[:]))); !errors.Is(err, ErrMessageTooLarge) {
		t.Errorf("oversize read err = %v", err)
	}
	if err := f.WriteMessage(io.Discard, make([]byte, MaxMessageSize+1)); !errors.Is(err, ErrMessageTooLarge) {
		t.Errorf("oversize write err = %v", err)
	}
	// Truncated body.
	var buf bytes.Buffer
	binary.BigEndian.PutUint32(hdr[:], 10)
	buf.Write(hdr[:])
	buf.WriteString("abc")
	if _, err := f.ReadMessage(bufio.NewReader(&buf)); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestHTTPFramer(t *testing.T) {
	f := HTTPFramer{}
	raw := "POST /x HTTP/1.1\r\nHost: a\r\nContent-Length: 5\r\n\r\nhello"
	extra := "GET /y HTTP/1.1\r\n\r\n"
	r := bufio.NewReader(strings.NewReader(raw + extra))
	got, err := f.ReadMessage(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != raw {
		t.Errorf("first message = %q", got)
	}
	got2, err := f.ReadMessage(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != extra {
		t.Errorf("second message = %q", got2)
	}
	if _, err := f.ReadMessage(r); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestHTTPFramerErrors(t *testing.T) {
	f := HTTPFramer{}
	cases := []string{
		"GET /x HTTP/1.1\r\nContent-Length: nan\r\n\r\n",
		"GET /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
		"GET /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",
		"GET /x HTTP/1.1\r\nHost: a",
	}
	for _, c := range cases {
		if _, err := f.ReadMessage(bufio.NewReader(strings.NewReader(c))); err == nil {
			t.Errorf("ReadMessage(%q) accepted", c)
		}
	}
}

// TestHTTPFramerConflictingContentLength: a message smuggling two
// different Content-Length values must be rejected outright — honouring
// either value desynchronises the framing for the rest of the stream.
func TestHTTPFramerConflictingContentLength(t *testing.T) {
	f := HTTPFramer{}
	conflicting := "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 2\r\n\r\nhello"
	if _, err := f.ReadMessage(bufio.NewReader(strings.NewReader(conflicting))); err == nil {
		t.Error("conflicting Content-Length headers accepted")
	}
	// Identical repeats are tolerated (RFC 7230 §3.3.2) and frame once.
	duplicate := "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello"
	got, err := f.ReadMessage(bufio.NewReader(strings.NewReader(duplicate)))
	if err != nil {
		t.Fatalf("identical duplicate rejected: %v", err)
	}
	if string(got) != duplicate {
		t.Errorf("message = %q", got)
	}
}

func TestGIOPFramer(t *testing.T) {
	f := GIOPFramer{}
	msg := append([]byte("GIOP\x01\x00\x00\x00"), 0, 0, 0, 0)
	body := []byte("payload")
	msg = append(msg, body...)
	var buf bytes.Buffer
	if err := f.WriteMessage(&buf, msg); err != nil {
		t.Fatal(err)
	}
	// Size must have been patched.
	if got := binary.BigEndian.Uint32(buf.Bytes()[8:12]); got != uint32(len(body)) {
		t.Errorf("patched size = %d, want %d", got, len(body))
	}
	got, err := f.ReadMessage(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if string(got[12:]) != "payload" {
		t.Errorf("body = %q", got[12:])
	}
	if err := f.WriteMessage(io.Discard, []byte("tiny")); err == nil {
		t.Error("short GIOP message accepted")
	}
	if _, err := f.ReadMessage(bufio.NewReader(strings.NewReader("NOTG\x00\x00\x00\x00\x00\x00\x00\x00"))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestPipeExchange(t *testing.T) {
	a, b := Pipe(LengthPrefixFramer{})
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() {
		msg, err := b.Recv()
		if err != nil {
			done <- err
			return
		}
		done <- b.Send(append([]byte("echo:"), msg...))
	}()
	if err := a.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	reply, err := a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "echo:ping" {
		t.Errorf("reply = %q", reply)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestTCPListenDial(t *testing.T) {
	var eng Engine
	l, err := eng.Listen(Semantics{Transport: "tcp"}, "127.0.0.1:0", LengthPrefixFramer{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer c.Close()
		msg, err := c.Recv()
		if err != nil {
			t.Errorf("server recv: %v", err)
			return
		}
		if err := c.Send(msg); err != nil {
			t.Errorf("server send: %v", err)
		}
	}()
	c, err := eng.Dial(Semantics{Transport: "tcp"}, l.Addr().String(), LengthPrefixFramer{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("round")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "round" {
		t.Errorf("echo = %q", got)
	}
	if c.RemoteAddr() == nil {
		t.Error("no remote addr")
	}
	wg.Wait()
}

func TestUDPExchange(t *testing.T) {
	var eng Engine
	l, err := eng.Listen(Semantics{Transport: "udp"}, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		msg, err := srv.Recv()
		if err != nil {
			t.Errorf("server recv: %v", err)
			return
		}
		if err := srv.Send(append([]byte("ack:"), msg...)); err != nil {
			t.Errorf("server send: %v", err)
		}
	}()
	c, err := eng.Dial(Semantics{Transport: "udp"}, l.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("dgram")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ack:dgram" {
		t.Errorf("reply = %q", got)
	}
	wg.Wait()
	// Second Accept on a datagram listener is refused.
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Errorf("second accept err = %v", err)
	}
}

func TestDatagramConnStates(t *testing.T) {
	var eng Engine
	l, err := eng.Listen(Semantics{Transport: "udp"}, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := l.Accept()
	// Server cannot send before a peer is known.
	if err := srv.Send([]byte("x")); err == nil {
		t.Error("send without peer accepted")
	}
	if srv.RemoteAddr() == nil {
		t.Error("fallback addr missing")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close err = %v", err)
	}
	if _, err := srv.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("recv after close err = %v", err)
	}
}

func TestUnknownTransport(t *testing.T) {
	var eng Engine
	if _, err := eng.Listen(Semantics{Transport: "carrier-pigeon"}, ":0", nil); err == nil {
		t.Error("unknown transport accepted for listen")
	}
	if _, err := eng.Dial(Semantics{Transport: "carrier-pigeon"}, "localhost:1", nil); err == nil {
		t.Error("unknown transport accepted for dial")
	}
}

func TestDialErrors(t *testing.T) {
	var eng Engine
	if _, err := eng.Dial(Semantics{Transport: "udp"}, "bad::addr::", nil); err == nil {
		t.Error("bad udp addr accepted")
	}
	if _, err := eng.Listen(Semantics{Transport: "tcp"}, "256.256.256.256:0", nil); err == nil {
		t.Error("bad tcp listen addr accepted")
	}
}

func BenchmarkPipeRoundTrip(b *testing.B) {
	a, c := Pipe(LengthPrefixFramer{})
	defer a.Close()
	defer c.Close()
	go func() {
		for {
			msg, err := c.Recv()
			if err != nil {
				return
			}
			if err := c.Send(msg); err != nil {
				return
			}
		}
	}()
	payload := bytes.Repeat([]byte("x"), 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(payload); err != nil {
			b.Fatal(err)
		}
		if _, err := a.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPacketEndpoint(t *testing.T) {
	var eng Engine
	srv, err := eng.ListenPacket(Semantics{Transport: "udp"}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.LocalAddr() == nil {
		t.Fatal("no local addr")
	}
	// Two independent clients get their replies at their own sockets.
	for i := 0; i < 2; i++ {
		c, err := eng.Dial(Semantics{Transport: "udp"}, srv.LocalAddr().String(), nil)
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte{byte('a' + i)}
		if err := c.Send(msg); err != nil {
			t.Fatal(err)
		}
		if err := srv.SetDeadline(time.Now().Add(2 * time.Second)); err != nil {
			t.Fatal(err)
		}
		data, peer, err := srv.RecvFrom()
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(msg) {
			t.Errorf("data = %q", data)
		}
		if err := srv.SendTo(append([]byte("ack"), data...), peer); err != nil {
			t.Fatal(err)
		}
		c.SetDeadline(time.Now().Add(2 * time.Second))
		reply, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if string(reply) != "ack"+string(msg) {
			t.Errorf("reply = %q", reply)
		}
		c.Close()
	}
}

func TestListenPacketMulticast(t *testing.T) {
	var eng Engine
	ep, err := eng.ListenPacket(Semantics{Transport: "udp", Multicast: true}, "239.255.250.250:0")
	if err != nil {
		t.Skipf("multicast unavailable in this environment: %v", err)
	}
	ep.Close()
}

func TestListenMulticastListener(t *testing.T) {
	var eng Engine
	l, err := eng.Listen(Semantics{Transport: "udp", Multicast: true}, "239.255.250.251:0", nil)
	if err != nil {
		t.Skipf("multicast unavailable: %v", err)
	}
	l.Close()
}

func TestListenPacketErrors(t *testing.T) {
	var eng Engine
	if _, err := eng.ListenPacket(Semantics{Transport: "udp"}, "bad::addr::"); err == nil {
		t.Error("bad addr accepted")
	}
	if _, err := eng.ListenPacket(Semantics{Transport: "udp", Multicast: true}, "bad::addr::"); err == nil {
		t.Error("bad multicast addr accepted")
	}
}

func TestDatagramServerRepliesToLatestPeer(t *testing.T) {
	var eng Engine
	l, err := eng.Listen(Semantics{Transport: "udp"}, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	serve := func() {
		msg, err := srv.Recv()
		if err != nil {
			return
		}
		srv.Send(append([]byte("re:"), msg...))
	}
	for i := 0; i < 2; i++ {
		c, err := eng.Dial(Semantics{Transport: "udp"}, l.Addr().String(), nil)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() { serve(); close(done) }()
		if err := c.Send([]byte{byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
		c.SetDeadline(time.Now().Add(2 * time.Second))
		reply, err := c.Recv()
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if string(reply) != "re:"+string(byte('0'+i)) {
			t.Errorf("client %d reply = %q", i, reply)
		}
		<-done
		c.Close()
	}
}
