package network

import (
	"bufio"
	"net"
	"time"
)

// PeekConn wraps a just-accepted stream connection so its first bytes
// can be examined before a framer is chosen — the substrate of the
// gateway's wire sniffer. The peeked bytes are not consumed: once a
// protocol has been identified, Framed turns the same stream (buffered
// prefix included) into an ordinary framed Conn, so the hosted
// mediator's framer replays them as if it had accepted the connection
// itself.
type PeekConn struct {
	c net.Conn
	r *bufio.Reader
}

// NewPeekConn wraps c for sniffing.
func NewPeekConn(c net.Conn) *PeekConn {
	return &PeekConn{c: c, r: bufio.NewReader(c)}
}

// Peek returns up to n of the connection's next bytes without consuming
// them, waiting at most until deadline for the first byte to arrive. It
// returns short (possibly empty) results instead of blocking: a client
// that trickles, stalls or disconnects yields whatever prefix arrived
// by the deadline, alongside the error that stopped the read. It never
// blocks past deadline.
func (p *PeekConn) Peek(n int, deadline time.Time) ([]byte, error) {
	if err := p.c.SetReadDeadline(deadline); err != nil {
		return nil, err
	}
	// bufio's Peek blocks until n bytes are buffered or the read errors;
	// with the deadline set, a stalled client surfaces as a timeout and
	// the bytes that did arrive stay available in the buffer.
	buf, err := p.r.Peek(n)
	if len(buf) == 0 && p.r.Buffered() > 0 {
		buf, _ = p.r.Peek(p.r.Buffered())
	}
	if resetErr := p.c.SetReadDeadline(time.Time{}); resetErr != nil && err == nil {
		err = resetErr
	}
	return buf, err
}

// Buffered reports how many sniffed bytes are waiting to be replayed.
func (p *PeekConn) Buffered() int { return p.r.Buffered() }

// RemoteAddr identifies the peer.
func (p *PeekConn) RemoteAddr() net.Addr { return p.c.RemoteAddr() }

// Framed converts the sniffed stream into a framed Conn. The buffered
// prefix read during sniffing is consumed first, so no bytes are lost.
// The PeekConn must not be used afterwards.
func (p *PeekConn) Framed(framer Framer) Conn {
	return &streamConn{c: p.c, r: p.r, framer: framer}
}

// Close releases the underlying connection without framing it (a
// sniff miss or a shed connection).
func (p *PeekConn) Close() error { return p.c.Close() }
