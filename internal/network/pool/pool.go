// Package pool is the mediator's shared service-side connection pool.
// The paper deploys mediators as long-lived network components (Fig. 6)
// that stand between every client of one application and the service of
// the other; related work on mediating connectors treats the connector
// as shared infrastructure whose resource management is decoupled from
// any single interaction. This pool is that decoupling: sessions check
// service connections out for the duration of a flow sequence and check
// them back in when they finish, so N concurrent client sessions no
// longer cost N dials per service.
//
// Connections are pooled per Key — a (color, resolved address) pair — so
// an MTL sethost retarget is just a change of key: the old connection
// returns to the pool for whichever session next talks to the old
// address, instead of being torn down.
//
// The pool is bounded (MaxActive per key), keeps idle connections warm
// up to MaxIdle, reaps them after IdleTimeout, and vets each checkout
// against the idle deadline and an optional Health probe. Callers that
// observe a transport fault return the connection with Discard (and may
// Flush the key's remaining idle connections, which were dialled to the
// same dead endpoint).
package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"starlink/internal/network"
)

// ErrClosed is returned by Get after Close.
var ErrClosed = errors.New("pool: closed")

// ErrWaitTimeout is wrapped by Get's error when a checkout blocked on
// the MaxActive bound was abandoned because its context expired (the
// caller's dial timeout or flow deadline budget ran out) before any
// connection was checked back in. errors.Is(err, ErrWaitTimeout)
// detects it; Stats.WaitTimeouts counts it.
var ErrWaitTimeout = errors.New("pool: checkout wait timed out")

// Defaults applied when Options leave the knobs zero.
const (
	// DefaultMaxActive caps connections per key (checked out + idle).
	DefaultMaxActive = 128
	// DefaultIdleTimeout is how long an idle connection stays warm.
	DefaultIdleTimeout = 90 * time.Second
)

// Key identifies one pooled destination: an automaton color and the
// resolved service address it currently maps to.
type Key struct {
	// Color is the client-role color the connection serves.
	Color int
	// Addr is the resolved service address (after hostmap/sethost).
	Addr string
}

// String renders the key for error messages.
func (k Key) String() string { return fmt.Sprintf("color %d @ %s", k.Color, k.Addr) }

// Options configure a Pool.
type Options struct {
	// Dial opens a new connection for a key. Required. The context is
	// the checkout's — it carries the caller's deadline (dial timeout
	// clipped to the flow budget), so implementations should bound the
	// dial by it rather than by an independent timeout.
	Dial func(ctx context.Context, key Key) (network.Conn, error)
	// MaxActive caps the connections alive per key, checked out plus
	// idle; a checkout beyond the cap blocks until a connection is
	// checked in or the Get context expires. 0 means DefaultMaxActive.
	MaxActive int
	// MaxIdle caps the idle connections kept per key: overflow checkins
	// are closed. 0 adopts MaxActive (keep everything the cap allows);
	// a negative value keeps none, disabling reuse.
	MaxIdle int
	// IdleTimeout bounds how long an idle connection may wait for reuse
	// before the reaper (or a checkout vet) closes it. 0 means
	// DefaultIdleTimeout.
	IdleTimeout time.Duration
	// Health, when non-nil, vets an idle connection at checkout; an
	// error closes it and the checkout falls through to the next idle
	// connection or a fresh dial.
	Health func(network.Conn) error
}

// Stats are a pool's lifetime counters plus its current occupancy.
type Stats struct {
	// Hits counts checkouts served by an idle connection.
	Hits uint64
	// Dials counts checkouts that opened a fresh connection.
	Dials uint64
	// Expired counts idle connections closed by IdleTimeout.
	Expired uint64
	// Unhealthy counts idle connections rejected by the Health probe.
	Unhealthy uint64
	// Overflow counts checkins closed because MaxIdle was reached.
	Overflow uint64
	// Discarded counts connections reported broken via Discard/Flush.
	Discarded uint64
	// WaitTimeouts counts checkouts abandoned while blocked on the
	// MaxActive bound (context expired before a checkin woke them).
	WaitTimeouts uint64
	// Active is the current number of live connections (all keys).
	Active int
	// Idle is the current number of idle connections (all keys).
	Idle int
	// Waiters is the current number of checkouts blocked on the
	// MaxActive bound (all keys).
	Waiters int
	// PerKey is the current occupancy of every key the pool has seen.
	PerKey map[Key]KeyStats
}

// KeyStats is one key's point-in-time occupancy.
type KeyStats struct {
	// Idle is the number of connections parked for reuse.
	Idle int
	// InFlight is the number of connections checked out to sessions
	// (the key's live total minus its idle count).
	InFlight int
	// Waiters is the number of checkouts blocked on the MaxActive bound.
	Waiters int
}

// Evictions sums every way a pooled connection was closed early.
func (s Stats) Evictions() uint64 { return s.Expired + s.Unhealthy + s.Overflow + s.Discarded }

// idleConn is one parked connection with its checkin time.
type idleConn struct {
	conn  network.Conn
	since time.Time
}

// bucket is the per-key state: parked connections (LIFO, so the most
// recently used — least likely to be stale — is reused first), the live
// count the MaxActive bound applies to, and the checkouts blocked on it.
type bucket struct {
	idle    []idleConn
	total   int
	waiters []chan struct{}
}

// Pool is a bounded, keyed connection pool. All methods are safe for
// concurrent use.
type Pool struct {
	opts Options

	hits, dials         atomic.Uint64
	expired, unhealthy  atomic.Uint64
	overflow, discarded atomic.Uint64
	waitTimeouts        atomic.Uint64

	mu     sync.Mutex
	keys   map[Key]*bucket
	closed bool

	stop chan struct{}
	done chan struct{}
}

// New validates the options, fills in defaults, and starts the idle
// reaper. The caller must Close the pool to stop the reaper.
func New(opts Options) (*Pool, error) {
	if opts.Dial == nil {
		return nil, errors.New("pool: Options.Dial is required")
	}
	if opts.MaxActive < 0 {
		return nil, fmt.Errorf("pool: negative MaxActive %d", opts.MaxActive)
	}
	if opts.MaxActive == 0 {
		opts.MaxActive = DefaultMaxActive
	}
	switch {
	case opts.MaxIdle == 0:
		opts.MaxIdle = opts.MaxActive
	case opts.MaxIdle < 0:
		opts.MaxIdle = 0
	case opts.MaxIdle > opts.MaxActive:
		opts.MaxIdle = opts.MaxActive
	}
	if opts.IdleTimeout < 0 {
		return nil, fmt.Errorf("pool: negative IdleTimeout %v", opts.IdleTimeout)
	}
	if opts.IdleTimeout == 0 {
		opts.IdleTimeout = DefaultIdleTimeout
	}
	p := &Pool{
		opts: opts,
		keys: make(map[Key]*bucket),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go p.reap()
	return p, nil
}

// bucketLocked returns (creating lazily) the bucket of a key. Caller
// holds p.mu.
func (p *Pool) bucketLocked(key Key) *bucket {
	b := p.keys[key]
	if b == nil {
		b = &bucket{}
		p.keys[key] = b
	}
	return b
}

// Get checks a connection out for key: the freshest healthy idle
// connection when one is parked, a new dial while the key is under its
// MaxActive bound, and otherwise it blocks until a connection is checked
// in or ctx expires. The caller owns the connection until it calls Put
// (still usable) or Discard (broken).
func (p *Pool) Get(ctx context.Context, key Key) (network.Conn, error) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, ErrClosed
		}
		b := p.bucketLocked(key)
		if n := len(b.idle); n > 0 {
			ic := b.idle[n-1]
			b.idle = b.idle[:n-1]
			p.mu.Unlock()
			if !p.vet(ic) {
				p.release(key)
				continue
			}
			p.hits.Add(1)
			return ic.conn, nil
		}
		if b.total < p.opts.MaxActive {
			b.total++
			p.mu.Unlock()
			conn, err := p.opts.Dial(ctx, key)
			if err != nil {
				p.release(key)
				return nil, err
			}
			p.dials.Add(1)
			return conn, nil
		}
		w := make(chan struct{}, 1)
		b.waiters = append(b.waiters, w)
		p.mu.Unlock()
		select {
		case <-w:
			// A slot or an idle connection freed up; contend for it.
		case <-ctx.Done():
			p.abandon(key, w)
			p.waitTimeouts.Add(1)
			return nil, fmt.Errorf("%w (%v): %w", ErrWaitTimeout, key, ctx.Err())
		}
	}
}

// vet decides whether a just-unparked idle connection is still worth
// handing out, closing it when not. Runs outside the pool lock so a slow
// Health probe cannot stall other checkouts.
func (p *Pool) vet(ic idleConn) bool {
	if time.Since(ic.since) > p.opts.IdleTimeout {
		p.expired.Add(1)
		ic.conn.Close()
		return false
	}
	if p.opts.Health != nil {
		if err := p.opts.Health(ic.conn); err != nil {
			p.unhealthy.Add(1)
			ic.conn.Close()
			return false
		}
	}
	return true
}

// release returns a key's capacity slot after its connection died (a
// failed dial, a vetted-out idle connection, a Discard) and wakes one
// blocked checkout.
func (p *Pool) release(key Key) {
	p.mu.Lock()
	if b, ok := p.keys[key]; ok && !p.closed {
		b.total--
		p.wakeLocked(b)
	}
	p.mu.Unlock()
}

// wakeLocked hands a freed slot/connection to the oldest live waiter.
// Caller holds p.mu.
func (p *Pool) wakeLocked(b *bucket) {
	for len(b.waiters) > 0 {
		w := b.waiters[0]
		b.waiters = b.waiters[1:]
		select {
		case w <- struct{}{}:
			return
		default:
			// Abandoned waiter that already consumed a wakeup; skip it.
		}
	}
}

// abandon withdraws a waiter whose context expired. If the waiter was
// already signalled, the wakeup is passed on so it is not lost.
func (p *Pool) abandon(key Key, w chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.keys[key]
	if !ok {
		return
	}
	for i, o := range b.waiters {
		if o == w {
			b.waiters = append(b.waiters[:i], b.waiters[i+1:]...)
			return
		}
	}
	select {
	case <-w:
		p.wakeLocked(b)
	default:
	}
}

// Put checks a healthy connection back in. Beyond MaxIdle (with no
// checkout waiting for it) the connection is closed instead of parked.
func (p *Pool) Put(key Key, conn network.Conn) {
	if conn == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return
	}
	b := p.bucketLocked(key)
	if len(b.idle) >= p.opts.MaxIdle && len(b.waiters) == 0 {
		b.total--
		p.overflow.Add(1)
		p.mu.Unlock()
		conn.Close()
		return
	}
	b.idle = append(b.idle, idleConn{conn: conn, since: time.Now()})
	p.wakeLocked(b)
	p.mu.Unlock()
}

// Discard reports a checked-out connection broken: it is closed and its
// capacity slot freed for a fresh dial.
func (p *Pool) Discard(key Key, conn network.Conn) {
	if conn != nil {
		conn.Close()
	}
	p.discarded.Add(1)
	p.release(key)
}

// Flush closes every idle connection parked under key. Callers use it
// after a transport fault: the key's idle siblings were dialled to the
// same endpoint and are presumed just as dead, so draining them up front
// spends retry budget on fresh dials instead of stale sockets.
func (p *Pool) Flush(key Key) {
	p.mu.Lock()
	b, ok := p.keys[key]
	if !ok || p.closed {
		p.mu.Unlock()
		return
	}
	victims := b.idle
	b.idle = nil
	b.total -= len(victims)
	p.discarded.Add(uint64(len(victims)))
	for range victims {
		p.wakeLocked(b)
	}
	p.mu.Unlock()
	for _, ic := range victims {
		ic.conn.Close()
	}
}

// reap periodically closes idle connections that outlived IdleTimeout.
func (p *Pool) reap() {
	defer close(p.done)
	interval := p.opts.IdleTimeout / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case now := <-t.C:
			p.reapOnce(now)
		}
	}
}

// reapOnce sweeps every bucket once, closing expired idle connections
// outside the lock.
func (p *Pool) reapOnce(now time.Time) {
	var victims []network.Conn
	p.mu.Lock()
	for _, b := range p.keys {
		keep := b.idle[:0]
		for _, ic := range b.idle {
			if now.Sub(ic.since) > p.opts.IdleTimeout {
				victims = append(victims, ic.conn)
				b.total--
				p.wakeLocked(b)
			} else {
				keep = append(keep, ic)
			}
		}
		b.idle = keep
	}
	p.expired.Add(uint64(len(victims)))
	p.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
}

// Close stops the reaper, closes all idle connections, and fails blocked
// and future checkouts with ErrClosed. Connections currently checked out
// are unaffected; a later Put/Discard of one just closes it.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	var victims []network.Conn
	for _, b := range p.keys {
		for _, ic := range b.idle {
			victims = append(victims, ic.conn)
		}
		b.idle = nil
		for _, w := range b.waiters {
			select {
			case w <- struct{}{}:
			default:
			}
		}
		b.waiters = nil
	}
	p.mu.Unlock()
	close(p.stop)
	<-p.done
	for _, c := range victims {
		c.Close()
	}
	return nil
}

// Stats snapshots the pool's counters and occupancy.
func (p *Pool) Stats() Stats {
	s := Stats{
		Hits:         p.hits.Load(),
		Dials:        p.dials.Load(),
		Expired:      p.expired.Load(),
		Unhealthy:    p.unhealthy.Load(),
		Overflow:     p.overflow.Load(),
		Discarded:    p.discarded.Load(),
		WaitTimeouts: p.waitTimeouts.Load(),
	}
	p.mu.Lock()
	s.PerKey = make(map[Key]KeyStats, len(p.keys))
	for k, b := range p.keys {
		s.Active += b.total
		s.Idle += len(b.idle)
		s.Waiters += len(b.waiters)
		s.PerKey[k] = KeyStats{
			Idle:     len(b.idle),
			InFlight: b.total - len(b.idle),
			Waiters:  len(b.waiters),
		}
	}
	p.mu.Unlock()
	return s
}
