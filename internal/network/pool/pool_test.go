package pool

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starlink/internal/network"
)

// fakeConn is a no-op network.Conn that records whether it was closed.
type fakeConn struct {
	id     int
	closed atomic.Bool
}

var _ network.Conn = (*fakeConn)(nil)

func (f *fakeConn) Send([]byte) error           { return nil }
func (f *fakeConn) Recv() ([]byte, error)       { return nil, nil }
func (f *fakeConn) SetDeadline(time.Time) error { return nil }
func (f *fakeConn) RemoteAddr() net.Addr        { return nil }
func (f *fakeConn) Close() error                { f.closed.Store(true); return nil }

// dialer hands out fakeConns and counts dials.
type dialer struct {
	mu    sync.Mutex
	conns []*fakeConn
	err   error
}

func (d *dialer) dial(context.Context, Key) (network.Conn, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return nil, d.err
	}
	c := &fakeConn{id: len(d.conns)}
	d.conns = append(d.conns, c)
	return c, nil
}

func (d *dialer) dials() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.conns)
}

func newTestPool(t *testing.T, opts Options) (*Pool, *dialer) {
	t.Helper()
	d := &dialer{}
	if opts.Dial == nil {
		opts.Dial = d.dial
	}
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, d
}

var testKey = Key{Color: 2, Addr: "svc:1"}

func TestCheckoutReusesCheckedInConn(t *testing.T) {
	p, d := newTestPool(t, Options{})
	ctx := context.Background()
	c1, err := p.Get(ctx, testKey)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(testKey, c1)
	c2, err := p.Get(ctx, testKey)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("checkin not reused")
	}
	if d.dials() != 1 {
		t.Errorf("dials = %d, want 1", d.dials())
	}
	st := p.Stats()
	if st.Hits != 1 || st.Dials != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 dial", st)
	}
	// A different key never sees another key's connections.
	other := Key{Color: 2, Addr: "svc:2"}
	p.Put(testKey, c2)
	c3, err := p.Get(ctx, other)
	if err != nil {
		t.Fatal(err)
	}
	if c3 == c2 {
		t.Error("keys share connections")
	}
}

func TestConcurrentCheckoutCheckin(t *testing.T) {
	p, d := newTestPool(t, Options{MaxActive: 8})
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c, err := p.Get(ctx, testKey)
				if err != nil {
					errs <- err
					return
				}
				if i%7 == 0 {
					p.Discard(testKey, c)
				} else {
					p.Put(testKey, c)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Active > 8 {
		t.Errorf("active = %d, exceeds MaxActive 8", st.Active)
	}
	if d.dials() < 1 {
		t.Error("no dials recorded")
	}
	if st.Hits == 0 {
		t.Error("no reuse under contention")
	}
}

// TestExhaustionBlocksUntilCheckin: with the key at its bound, Get must
// block — and complete once another holder checks in.
func TestExhaustionBlocksUntilCheckin(t *testing.T) {
	p, _ := newTestPool(t, Options{MaxActive: 1})
	ctx := context.Background()
	held, err := p.Get(ctx, testKey)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan network.Conn, 1)
	go func() {
		c, err := p.Get(ctx, testKey)
		if err != nil {
			t.Error(err)
		}
		got <- c
	}()
	select {
	case <-got:
		t.Fatal("checkout succeeded past MaxActive")
	case <-time.After(50 * time.Millisecond):
	}
	p.Put(testKey, held)
	select {
	case c := <-got:
		if c != held {
			t.Error("waiter did not receive the checked-in conn")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke after checkin")
	}
}

// TestExhaustionContextError: a bounded wait fails with the typed
// ErrWaitTimeout — still carrying the context's error — instead of
// blocking forever, and the abandonment is counted.
func TestExhaustionContextError(t *testing.T) {
	p, _ := newTestPool(t, Options{MaxActive: 1})
	if _, err := p.Get(context.Background(), testKey); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := p.Get(ctx, testKey)
	if !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("err = %v, want ErrWaitTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded preserved", err)
	}
	if st := p.Stats(); st.WaitTimeouts != 1 {
		t.Errorf("WaitTimeouts = %d, want 1", st.WaitTimeouts)
	}
}

// TestDialSeesCheckoutContext: the checkout's context — carrying the
// caller's deadline — reaches the Dial hook, so dial time can be
// bounded by the flow budget instead of an independent clock.
func TestDialSeesCheckoutContext(t *testing.T) {
	var sawDeadline atomic.Bool
	d := &dialer{}
	opts := Options{Dial: func(ctx context.Context, key Key) (network.Conn, error) {
		if _, ok := ctx.Deadline(); ok {
			sawDeadline.Store(true)
		}
		return d.dial(ctx, key)
	}}
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := p.Get(ctx, testKey); err != nil {
		t.Fatal(err)
	}
	if !sawDeadline.Load() {
		t.Error("Dial hook never saw the checkout deadline")
	}
}

func TestIdleReaping(t *testing.T) {
	p, d := newTestPool(t, Options{IdleTimeout: 30 * time.Millisecond})
	c, err := p.Get(context.Background(), testKey)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(testKey, c)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if st := p.Stats(); st.Expired == 1 && st.Idle == 0 && st.Active == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := p.Stats(); st.Expired != 1 || st.Idle != 0 || st.Active != 0 {
		t.Fatalf("stats after reap window = %+v", st)
	}
	if !d.conns[0].closed.Load() {
		t.Error("reaped conn not closed")
	}
	// The next checkout dials fresh.
	if _, err := p.Get(context.Background(), testKey); err != nil {
		t.Fatal(err)
	}
	if d.dials() != 2 {
		t.Errorf("dials = %d, want 2", d.dials())
	}
}

// TestExpiredVettedAtCheckout: even before the reaper runs, a checkout
// never hands out a connection past its idle deadline.
func TestExpiredVettedAtCheckout(t *testing.T) {
	p, d := newTestPool(t, Options{IdleTimeout: 20 * time.Millisecond})
	c, err := p.Get(context.Background(), testKey)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(testKey, c)
	time.Sleep(30 * time.Millisecond)
	c2, err := p.Get(context.Background(), testKey)
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c && !d.conns[0].closed.Load() {
		t.Error("stale idle conn handed out")
	}
}

func TestHealthCheckEvictsAtCheckout(t *testing.T) {
	bad := errors.New("stale")
	var vetted atomic.Int64
	p, d := newTestPool(t, Options{
		Health: func(c network.Conn) error {
			if vetted.Add(1) == 1 {
				return bad
			}
			return nil
		},
	})
	ctx := context.Background()
	c, err := p.Get(ctx, testKey)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(testKey, c)
	c2, err := p.Get(ctx, testKey)
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c {
		t.Error("unhealthy conn handed out")
	}
	if !d.conns[0].closed.Load() {
		t.Error("unhealthy conn not closed")
	}
	st := p.Stats()
	if st.Unhealthy != 1 || st.Dials != 2 {
		t.Errorf("stats = %+v, want 1 unhealthy / 2 dials", st)
	}
}

func TestMaxIdleOverflowCloses(t *testing.T) {
	p, d := newTestPool(t, Options{MaxActive: 4, MaxIdle: 1})
	ctx := context.Background()
	c1, _ := p.Get(ctx, testKey)
	c2, err := p.Get(ctx, testKey)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(testKey, c1)
	p.Put(testKey, c2)
	st := p.Stats()
	if st.Idle != 1 || st.Overflow != 1 {
		t.Errorf("stats = %+v, want 1 idle / 1 overflow", st)
	}
	if !d.conns[1].closed.Load() {
		t.Error("overflow conn not closed")
	}
}

func TestFlushDrainsIdle(t *testing.T) {
	p, d := newTestPool(t, Options{})
	ctx := context.Background()
	c1, _ := p.Get(ctx, testKey)
	c2, _ := p.Get(ctx, testKey)
	p.Put(testKey, c1)
	p.Put(testKey, c2)
	p.Flush(testKey)
	st := p.Stats()
	if st.Idle != 0 || st.Active != 0 || st.Discarded != 2 {
		t.Errorf("stats after flush = %+v", st)
	}
	for i, c := range d.conns {
		if !c.closed.Load() {
			t.Errorf("conn %d not closed by flush", i)
		}
	}
}

func TestDiscardFreesSlotForWaiter(t *testing.T) {
	p, d := newTestPool(t, Options{MaxActive: 1})
	ctx := context.Background()
	held, _ := p.Get(ctx, testKey)
	got := make(chan error, 1)
	go func() {
		_, err := p.Get(ctx, testKey)
		got <- err
	}()
	time.Sleep(20 * time.Millisecond)
	p.Discard(testKey, held)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke after discard")
	}
	if d.dials() != 2 {
		t.Errorf("dials = %d, want 2 (discard forces a fresh dial)", d.dials())
	}
	if !d.conns[0].closed.Load() {
		t.Error("discarded conn not closed")
	}
}

func TestCloseFailsCheckoutsAndClosesIdle(t *testing.T) {
	d := &dialer{}
	p, err := New(Options{Dial: d.dial})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c1, _ := p.Get(ctx, testKey)
	out, _ := p.Get(ctx, testKey)
	p.Put(testKey, c1)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if !d.conns[0].closed.Load() {
		t.Error("idle conn not closed by Close")
	}
	if _, err := p.Get(ctx, testKey); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after Close = %v, want ErrClosed", err)
	}
	// A checked-out conn returned after Close is closed, not parked.
	p.Put(testKey, out)
	if !d.conns[1].closed.Load() {
		t.Error("post-Close checkin not closed")
	}
	// Close is idempotent.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseWakesBlockedCheckout(t *testing.T) {
	d := &dialer{}
	p, err := New(Options{Dial: d.dial, MaxActive: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := p.Get(ctx, testKey); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := p.Get(ctx, testKey)
		got <- err
	}()
	time.Sleep(20 * time.Millisecond)
	p.Close()
	select {
	case err := <-got:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("blocked Get after Close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked checkout never woke on Close")
	}
}

func TestDialErrorFreesSlot(t *testing.T) {
	d := &dialer{err: errors.New("refused")}
	p, err := New(Options{Dial: d.dial, MaxActive: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	ctx := context.Background()
	if _, err := p.Get(ctx, testKey); err == nil {
		t.Fatal("dial error not propagated")
	}
	// The failed dial must not leak the capacity slot.
	d.mu.Lock()
	d.err = nil
	d.mu.Unlock()
	if _, err := p.Get(ctx, testKey); err != nil {
		t.Fatalf("slot leaked by failed dial: %v", err)
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("New accepted a nil Dial")
	}
	d := &dialer{}
	if _, err := New(Options{Dial: d.dial, MaxActive: -1}); err == nil {
		t.Error("New accepted a negative MaxActive")
	}
	if _, err := New(Options{Dial: d.dial, IdleTimeout: -time.Second}); err == nil {
		t.Error("New accepted a negative IdleTimeout")
	}
	// Negative MaxIdle disables reuse entirely.
	p, err := New(Options{Dial: d.dial, MaxIdle: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	c, err := p.Get(context.Background(), testKey)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(testKey, c)
	if st := p.Stats(); st.Idle != 0 || st.Overflow != 1 {
		t.Errorf("stats = %+v, want nothing kept idle", st)
	}
}

func TestStatsPerKeyOccupancy(t *testing.T) {
	p, _ := newTestPool(t, Options{MaxActive: 1})
	ctx := context.Background()
	other := Key{Color: 3, Addr: "svc:9"}

	held, err := p.Get(ctx, testKey)
	if err != nil {
		t.Fatal(err)
	}
	idle, err := p.Get(ctx, other)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(other, idle)

	// Block a second checkout of testKey on the MaxActive=1 bound so the
	// snapshot sees a waiter.
	waiting := make(chan struct{})
	go func() {
		close(waiting)
		c, err := p.Get(ctx, testKey)
		if err == nil {
			p.Put(testKey, c)
		}
	}()
	<-waiting
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Waiters == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never showed up in Stats")
		}
		time.Sleep(time.Millisecond)
	}

	st := p.Stats()
	if got := st.PerKey[testKey]; got != (KeyStats{Idle: 0, InFlight: 1, Waiters: 1}) {
		t.Errorf("PerKey[%v] = %+v, want 1 in-flight / 1 waiter", testKey, got)
	}
	if got := st.PerKey[other]; got != (KeyStats{Idle: 1, InFlight: 0, Waiters: 0}) {
		t.Errorf("PerKey[%v] = %+v, want 1 idle", other, got)
	}
	if st.Waiters != 1 {
		t.Errorf("Waiters = %d, want 1", st.Waiters)
	}
	p.Put(testKey, held)
}
