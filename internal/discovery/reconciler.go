package discovery

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"starlink/internal/backend"
)

// Reconciler defaults.
const (
	// DefaultRefresh is the poll interval when the spec gives none.
	DefaultRefresh = 5 * time.Second
	// DefaultDebounce is how long an endpoint must be continuously
	// present before admission (and continuously absent before
	// removal) when the spec gives none.
	DefaultDebounce = 10 * time.Second
	// DefaultMinTTL is the minimum membership age before a replica may
	// be removed when the spec gives none.
	DefaultMinTTL = 30 * time.Second
)

// Options configures a Reconciler.
type Options struct {
	// Source supplies endpoint snapshots. Required. The reconciler
	// owns it: Close closes the source too.
	Source Source
	// Refresh is the poll interval (default DefaultRefresh).
	Refresh time.Duration
	// Debounce is the hysteresis window: an endpoint must be present
	// for Debounce before it is added, and absent for Debounce before
	// it is removed (default DefaultDebounce; 0 keeps the default —
	// use a tiny positive value to effectively disable it in tests).
	Debounce time.Duration
	// MinTTL is the minimum time a replica stays a member before the
	// reconciler may remove it, regardless of the source (default
	// DefaultMinTTL).
	MinTTL time.Duration
	// MaxChurn caps membership changes (adds + removes) applied per
	// reconcile round; 0 means unlimited.
	MaxChurn int
	// MinLive is the membership floor: the reconciler never shrinks
	// the set below this many replicas (default 1).
	MinLive int
}

// Reconciler drives one backend.Set's membership from one Source. Each
// round it resolves the source, diffs the desired endpoints against
// current membership, and applies adds and removes through the set's
// dynamic-membership APIs — with hysteresis, so a flapping
// advertisement never churns the balancer: endpoints must be
// continuously present for the debounce window before admission,
// continuously absent for the window (and members for at least MinTTL)
// before removal, at most MaxChurn changes land per round, and the set
// is never shrunk below MinLive.
type Reconciler struct {
	set  *backend.Set
	opts Options

	resolutions     atomic.Uint64
	resolveErrors   atomic.Uint64
	endpoints       atomic.Uint64
	adds            atomic.Uint64
	removes         atomic.Uint64
	flapsSuppressed atomic.Uint64
	lastResolution  atomic.Int64 // unix nanos; 0 = never

	mu       sync.Mutex
	members  map[string]time.Time // addr -> admitted at
	seen     map[string]*sighting // addr -> presence tracking
	started  bool
	closed   bool
	stop     chan struct{}
	done     chan struct{}
	nudge    chan struct{} // test hook: force a round, reply on roundDone
	roundOut chan struct{}
}

// sighting tracks one advertised endpoint's presence across rounds.
type sighting struct {
	firstSeen time.Time // start of the current continuous-presence run
	expires   time.Time // advertisement TTL deadline; zero = none
	present   bool      // in the latest resolution (or within TTL)
	absentAt  time.Time // start of the current absence run (members only)
}

// New binds a reconciler to set. The set's existing replicas are
// adopted as members immediately so min-TTL protects them from a
// source that disagrees with the seed.
func New(set *backend.Set, opts Options) (*Reconciler, error) {
	if set == nil {
		return nil, fmt.Errorf("%w: reconciler needs a backend set", ErrSource)
	}
	if opts.Source == nil {
		return nil, fmt.Errorf("%w: reconciler needs a source", ErrSource)
	}
	if opts.Refresh <= 0 {
		opts.Refresh = DefaultRefresh
	}
	if opts.Debounce <= 0 {
		opts.Debounce = DefaultDebounce
	}
	if opts.MinTTL <= 0 {
		opts.MinTTL = DefaultMinTTL
	}
	if opts.MinLive <= 0 {
		opts.MinLive = 1
	}
	r := &Reconciler{
		set:      set,
		opts:     opts,
		members:  make(map[string]time.Time),
		seen:     make(map[string]*sighting),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		nudge:    make(chan struct{}),
		roundOut: make(chan struct{}, 1),
	}
	now := time.Now()
	for _, addr := range set.Addrs() {
		r.members[addr] = now
	}
	return r, nil
}

// SetName names the backend set this reconciler drives.
func (r *Reconciler) SetName() string { return r.set.Name() }

// Backend returns the driven set.
func (r *Reconciler) Backend() *backend.Set { return r.set }

// Source describes the configured source.
func (r *Reconciler) Source() string { return r.opts.Source.String() }

// Start launches the reconcile loop: an immediate first round, then
// one per refresh tick, plus out-of-band rounds whenever a notifying
// source (SSDP NOTIFY) nudges. Idempotent.
func (r *Reconciler) Start() {
	r.mu.Lock()
	if r.started || r.closed {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	go r.loop()
}

func (r *Reconciler) loop() {
	defer close(r.done)
	var updates <-chan struct{}
	if n, ok := r.opts.Source.(Notifier); ok {
		updates = n.Updates()
	}
	tick := time.NewTicker(r.opts.Refresh)
	defer tick.Stop()
	r.reconcile(time.Now())
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			r.reconcile(time.Now())
		case <-updates:
			r.reconcile(time.Now())
		case <-r.nudge:
			r.reconcile(time.Now())
			select {
			case r.roundOut <- struct{}{}:
			default:
			}
		}
	}
}

// Poke forces one reconcile round out of band and waits for it to
// finish; a no-op when the loop is not running. Tests and the E18
// harness use it to step the reconciler deterministically.
func (r *Reconciler) Poke() {
	r.mu.Lock()
	running := r.started && !r.closed
	r.mu.Unlock()
	if !running {
		return
	}
	select {
	case <-r.roundOut: // drain a stale completion
	default:
	}
	select {
	case r.nudge <- struct{}{}:
	case <-r.stop:
		return
	}
	select {
	case <-r.roundOut:
	case <-r.stop:
	}
}

// reconcile runs one resolve-diff-apply round.
func (r *Reconciler) reconcile(now time.Time) {
	eps, err := r.opts.Source.Resolve()
	r.resolutions.Add(1)
	if err != nil {
		// Resolution unavailable: keep the membership we have. An
		// unreachable DA must not empty a healthy set.
		r.resolveErrors.Add(1)
		return
	}
	r.lastResolution.Store(now.UnixNano())
	r.endpoints.Add(uint64(len(eps)))

	r.mu.Lock()
	resolved := make(map[string]time.Duration, len(eps))
	for _, ep := range eps {
		if ep.Addr == "" {
			continue
		}
		if ttl, ok := resolved[ep.Addr]; !ok || ep.TTL > ttl {
			resolved[ep.Addr] = ep.TTL
		}
	}

	// Fold the resolution into the sighting table. An endpoint is
	// "present" when the latest resolution lists it or its last
	// advertisement's TTL has not run out.
	for addr, ttl := range resolved {
		sg := r.seen[addr]
		if sg == nil {
			sg = &sighting{firstSeen: now}
			r.seen[addr] = sg
		} else if !sg.present {
			sg.firstSeen = now // absence broke the run; start over
		}
		sg.present = true
		sg.absentAt = time.Time{}
		if ttl > 0 {
			sg.expires = now.Add(ttl)
		} else {
			sg.expires = time.Time{}
		}
	}
	// Members the source has never listed (the spec's seed replicas)
	// need a sighting too, or their absence could never out-wait the
	// debounce window.
	for addr := range r.members {
		if _, ok := resolved[addr]; !ok && r.seen[addr] == nil {
			r.seen[addr] = &sighting{absentAt: now}
		}
	}
	for addr, sg := range r.seen {
		if _, ok := resolved[addr]; ok {
			continue
		}
		if !sg.expires.IsZero() && now.Before(sg.expires) {
			continue // TTL still covers it
		}
		if sg.present {
			sg.present = false
			sg.absentAt = now
		}
		if _, member := r.members[addr]; !member {
			// A pending add that vanished before admission: the
			// debounce window just absorbed a flap.
			r.flapsSuppressed.Add(1)
			delete(r.seen, addr)
		}
	}

	// Diff: adds are endpoints continuously present for the debounce
	// window; removes are members continuously absent for the window
	// that have also been members for at least MinTTL.
	var adds, removes []string
	for addr, sg := range r.seen {
		if _, member := r.members[addr]; member || !sg.present {
			continue
		}
		if now.Sub(sg.firstSeen) >= r.opts.Debounce {
			adds = append(adds, addr)
		}
	}
	for addr, since := range r.members {
		sg := r.seen[addr]
		if sg == nil || sg.present {
			continue
		}
		if now.Sub(sg.absentAt) >= r.opts.Debounce && now.Sub(since) >= r.opts.MinTTL {
			removes = append(removes, addr)
		}
	}
	sort.Strings(adds)
	sort.Strings(removes)

	// Apply adds before removes so a rolling replacement never dips
	// through the floor, cap total churn, and honor MinLive.
	churn := 0
	capped := func() bool { return r.opts.MaxChurn > 0 && churn >= r.opts.MaxChurn }
	for _, addr := range adds {
		if capped() {
			break
		}
		if err := r.set.AddReplica(addr); err == nil {
			r.members[addr] = now
			r.adds.Add(1)
			churn++
		}
	}
	plan := make([]string, 0, len(removes))
	for _, addr := range removes {
		if capped() {
			break
		}
		if len(r.members)-len(plan) <= r.opts.MinLive {
			break // never shrink below the floor
		}
		plan = append(plan, addr)
		churn++
	}
	for _, addr := range plan {
		delete(r.members, addr)
		delete(r.seen, addr)
	}
	r.mu.Unlock()

	// RemoveReplica drains in-flight picks (bounded by the set's
	// DrainTimeout), so apply removals outside the reconciler lock.
	for _, addr := range plan {
		if err := r.set.RemoveReplica(addr); err != nil {
			// The set refused (e.g. last replica); restore membership.
			r.mu.Lock()
			r.members[addr] = now
			r.mu.Unlock()
			continue
		}
		r.removes.Add(1)
	}
}

// Adopt carries the cumulative counters over from the reconciler this
// one replaces on hot reload, so /metrics rates survive the swap the
// same way backend health does.
func (r *Reconciler) Adopt(old *Reconciler) {
	if old == nil || old == r {
		return
	}
	r.resolutions.Add(old.resolutions.Load())
	r.resolveErrors.Add(old.resolveErrors.Load())
	r.endpoints.Add(old.endpoints.Load())
	r.adds.Add(old.adds.Load())
	r.removes.Add(old.removes.Load())
	r.flapsSuppressed.Add(old.flapsSuppressed.Load())
	if last := old.lastResolution.Load(); last > r.lastResolution.Load() {
		r.lastResolution.Store(last)
	}
}

// Close stops the loop and closes the source. Idempotent.
func (r *Reconciler) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	started := r.started
	r.mu.Unlock()
	close(r.stop)
	if started {
		<-r.done
	}
	r.opts.Source.Close()
}

// Snapshot is a point-in-time JSON view of one reconciler, served by
// the admin /discovery route and the -discover startup dump.
type Snapshot struct {
	Set             string   `json:"set"`
	Source          string   `json:"source"`
	Refresh         string   `json:"refresh"`
	Debounce        string   `json:"debounce"`
	MinTTL          string   `json:"min_ttl"`
	MaxChurn        int      `json:"max_churn,omitempty"`
	MinLive         int      `json:"min_live"`
	Resolutions     uint64   `json:"resolutions_total"`
	ResolveErrors   uint64   `json:"resolve_errors_total"`
	Endpoints       uint64   `json:"endpoints_total"`
	Adds            uint64   `json:"adds_total"`
	Removes         uint64   `json:"removes_total"`
	FlapsSuppressed uint64   `json:"flaps_suppressed_total"`
	LastResolution  float64  `json:"last_resolution_age_seconds"` // -1 = never
	Members         []string `json:"members"`
	Pending         []string `json:"pending,omitempty"` // sighted, inside debounce
}

// Snapshot captures the reconciler's current state.
func (r *Reconciler) Snapshot() Snapshot {
	s := Snapshot{
		Set:             r.set.Name(),
		Source:          r.opts.Source.String(),
		Refresh:         r.opts.Refresh.String(),
		Debounce:        r.opts.Debounce.String(),
		MinTTL:          r.opts.MinTTL.String(),
		MaxChurn:        r.opts.MaxChurn,
		MinLive:         r.opts.MinLive,
		Resolutions:     r.resolutions.Load(),
		ResolveErrors:   r.resolveErrors.Load(),
		Endpoints:       r.endpoints.Load(),
		Adds:            r.adds.Load(),
		Removes:         r.removes.Load(),
		FlapsSuppressed: r.flapsSuppressed.Load(),
		LastResolution:  -1,
	}
	if last := r.lastResolution.Load(); last > 0 {
		s.LastResolution = max(time.Since(time.Unix(0, last)).Seconds(), 0)
	}
	r.mu.Lock()
	for addr := range r.members {
		s.Members = append(s.Members, addr)
	}
	for addr, sg := range r.seen {
		if _, member := r.members[addr]; !member && sg.present {
			s.Pending = append(s.Pending, addr)
		}
	}
	r.mu.Unlock()
	sort.Strings(s.Members)
	sort.Strings(s.Pending)
	return s
}
