package discovery

import (
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"
)

// FileSource reads a static hosts file on every poll: one "host:port"
// per line, blank lines and #-comments ignored. It is the zero-infra
// source — operators edit the file, the reconciler applies the diff —
// and the deterministic workhorse for tests and the E18 churn soak.
// A file that disappears mid-run is a resolution error (membership is
// kept), not an instruction to drop every replica.
type FileSource struct {
	path string

	mu     sync.Mutex
	closed bool
}

// NewFileSource watches path; the file must exist and parse now so
// typos fail deployment rather than first refresh.
func NewFileSource(path string) (*FileSource, error) {
	if path == "" {
		return nil, fmt.Errorf("%w: file source needs a path", ErrSource)
	}
	s := &FileSource{path: path}
	if _, err := s.Resolve(); err != nil {
		return nil, err
	}
	return s, nil
}

// Resolve re-reads the file and returns its current endpoints.
func (s *FileSource) Resolve() ([]Endpoint, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: file source closed", ErrSource)
	}
	s.mu.Unlock()

	data, err := os.ReadFile(s.path)
	if err != nil {
		return nil, fmt.Errorf("%w: read %s: %v", ErrSource, s.path, err)
	}
	var eps []Endpoint
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Optional "host:port ttl" — a per-line advertisement lifetime.
		addr, rest, _ := strings.Cut(line, " ")
		var ttl time.Duration
		if rest = strings.TrimSpace(rest); rest != "" {
			ttl, err = time.ParseDuration(rest)
			if err != nil {
				return nil, fmt.Errorf("%w: %s:%d: bad ttl %q", ErrSource, s.path, i+1, rest)
			}
		}
		host, port, err := net.SplitHostPort(addr)
		if err != nil || host == "" || port == "" {
			return nil, fmt.Errorf("%w: %s:%d: not host:port: %q", ErrSource, s.path, i+1, addr)
		}
		eps = append(eps, Endpoint{Addr: net.JoinHostPort(host, port), TTL: ttl})
	}
	return eps, nil
}

func (s *FileSource) String() string { return "file://" + s.path }

// Close marks the source unusable; there is nothing live to release.
func (s *FileSource) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
