package discovery

import (
	"context"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DNSSource re-resolves a name on every poll. Two shapes are
// supported: "host:port" resolves the host's A/AAAA records and pairs
// every address with the fixed port, while a bare name starting with
// "_" (e.g. "_plus._tcp.example.org") is treated as a full SRV name
// whose records carry their own ports. DNS gives no TTL through the
// stdlib resolver, so endpoints carry TTL 0 — presence is purely
// "still in the answer".
type DNSSource struct {
	name string
	port string // empty for SRV names
	srv  bool

	// injectable for tests; default to net.DefaultResolver.
	lookupHost func(ctx context.Context, host string) ([]string, error)
	lookupSRV  func(ctx context.Context, name string) ([]*net.SRV, error)

	mu     sync.Mutex
	closed bool
}

// DNSTimeout bounds each resolution round.
const DNSTimeout = 2 * time.Second

// NewDNSSource parses name as "host:port" or a "_service._proto.*"
// SRV name.
func NewDNSSource(name string) (*DNSSource, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: dns source needs a name", ErrSource)
	}
	s := &DNSSource{
		lookupHost: func(ctx context.Context, host string) ([]string, error) {
			return net.DefaultResolver.LookupHost(ctx, host)
		},
		lookupSRV: func(ctx context.Context, n string) ([]*net.SRV, error) {
			_, recs, err := net.DefaultResolver.LookupSRV(ctx, "", "", n)
			return recs, err
		},
	}
	if strings.HasPrefix(name, "_") {
		s.name, s.srv = name, true
		return s, nil
	}
	host, port, err := net.SplitHostPort(name)
	if err != nil || host == "" || port == "" {
		return nil, fmt.Errorf("%w: dns source needs host:port or an SRV name (_svc._tcp...), got %q", ErrSource, name)
	}
	s.name, s.port = host, port
	return s, nil
}

// Resolve runs one lookup round. Answers are sorted so equal DNS
// responses produce identical snapshots regardless of resolver
// ordering.
func (s *DNSSource) Resolve() ([]Endpoint, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: dns source closed", ErrSource)
	}
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), DNSTimeout)
	defer cancel()
	var eps []Endpoint
	if s.srv {
		recs, err := s.lookupSRV(ctx, s.name)
		if err != nil {
			return nil, fmt.Errorf("%w: SRV %s: %v", ErrSource, s.name, err)
		}
		for _, r := range recs {
			host := strings.TrimSuffix(r.Target, ".")
			if host == "" || r.Port == 0 {
				continue
			}
			eps = append(eps, Endpoint{Addr: net.JoinHostPort(host, strconv.Itoa(int(r.Port)))})
		}
	} else {
		addrs, err := s.lookupHost(ctx, s.name)
		if err != nil {
			return nil, fmt.Errorf("%w: lookup %s: %v", ErrSource, s.name, err)
		}
		for _, a := range addrs {
			eps = append(eps, Endpoint{Addr: net.JoinHostPort(a, s.port)})
		}
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i].Addr < eps[j].Addr })
	return eps, nil
}

func (s *DNSSource) String() string {
	if s.srv {
		return "dns+srv://" + s.name
	}
	return "dns://" + net.JoinHostPort(s.name, s.port)
}

// Close marks the source unusable; there is nothing live to release.
func (s *DNSSource) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
