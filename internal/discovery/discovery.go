// Package discovery tracks live service membership for the mediation
// engine's backend replica sets. The paper's mediators assume the
// service endpoint is known a priori; its discovery companion (the
// SSDP/SLP substrates under internal/protocol) treats *finding*
// services as part of the interoperability problem. This package closes
// the loop: pluggable Sources resolve a logical service to its current
// endpoints — an SLP Directory Agent, SSDP search plus NOTIFY
// listening, DNS A/SRV records, or a watched hosts file — and a
// per-set Reconciler diffs each resolution against the set's current
// membership, applying adds and removes through backend.Set's dynamic
// membership APIs with hysteresis so a flapping endpoint cannot churn
// the balancer.
package discovery

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"time"
)

// ErrSource is wrapped by source construction and resolution failures.
var ErrSource = errors.New("discovery: source error")

// Endpoint is one discovered service endpoint.
type Endpoint struct {
	// Addr is the dialable "host:port" address.
	Addr string
	// TTL is how long the advertisement claims to stay valid; while it
	// lasts, the reconciler keeps treating the endpoint as present even
	// if a poll misses it. Zero means "present only while resolved".
	TTL time.Duration
}

// Source resolves a logical service to its current endpoints. A Source
// is polled by one Reconciler on its refresh interval; each Resolve
// must return the *complete* current endpoint set (the reconciler
// diffs, it does not accumulate). Implementations must be safe for
// concurrent use with Close.
type Source interface {
	// Resolve returns the current full endpoint set. An error means
	// "resolution unavailable" — the reconciler keeps the existing
	// membership rather than treating it as an empty result.
	Resolve() ([]Endpoint, error)
	// String describes the source for snapshots and logs, e.g.
	// "slp://127.0.0.1:427/service:plus".
	String() string
	// Close releases any held resources (sockets, listeners).
	Close() error
}

// Notifier is an optional Source extension: Updates delivers a nudge
// whenever the source learns of a membership change out of band (an
// SSDP NOTIFY alive/byebye), letting the reconciler resolve ahead of
// its next refresh tick instead of waiting the interval out.
type Notifier interface {
	Updates() <-chan struct{}
}

// HostPort extracts the dialable "host:port" from a service URL as the
// discovery protocols advertise them: "service:printer:lpr://h:p"
// (SLP), "http://h:p/desc.xml" (SSDP LOCATION) or a bare "h:p". An
// entry without an explicit port is rejected — Starlink backends need
// complete dial addresses.
func HostPort(u string) (string, error) {
	s := u
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if j := strings.IndexAny(s, "/?#"); j >= 0 {
		s = s[:j]
	}
	host, port, err := net.SplitHostPort(s)
	if err != nil || host == "" || port == "" {
		return "", fmt.Errorf("%w: no host:port in %q", ErrSource, u)
	}
	return net.JoinHostPort(host, port), nil
}
