package discovery

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"starlink/internal/backend"
	"starlink/internal/network"
	"starlink/internal/protocol/slp"
	"starlink/internal/protocol/ssdp"
	"starlink/internal/testutil"
)

func TestHostPort(t *testing.T) {
	cases := []struct {
		in, want string
		bad      bool
	}{
		{in: "service:plus://10.0.0.1:9001", want: "10.0.0.1:9001"},
		{in: "http://10.0.0.1:8080/desc.xml", want: "10.0.0.1:8080"},
		{in: "http://10.0.0.1:8080/desc.xml?x=1#frag", want: "10.0.0.1:8080"},
		{in: "10.0.0.1:9001", want: "10.0.0.1:9001"},
		{in: "service:printer:lpr://host.example:515/queue", want: "host.example:515"},
		{in: "http://10.0.0.1/desc.xml", bad: true}, // no port
		{in: "justahost", bad: true},
		{in: "", bad: true},
	}
	for _, c := range cases {
		got, err := HostPort(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("HostPort(%q) = %q, want error", c.in, got)
			} else if !errors.Is(err, ErrSource) {
				t.Errorf("HostPort(%q) error %v not ErrSource", c.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("HostPort(%q): %v", c.in, err)
		} else if got != c.want {
			t.Errorf("HostPort(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// --- file source ---

func writeHosts(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "hosts")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFileSource(t *testing.T) {
	path := writeHosts(t, "# replicas\n127.0.0.1:9001\n\n127.0.0.1:9002 90s\n")
	src, err := NewFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	eps, err := src.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 2 || eps[0].Addr != "127.0.0.1:9001" || eps[1].Addr != "127.0.0.1:9002" {
		t.Fatalf("endpoints = %+v", eps)
	}
	if eps[0].TTL != 0 || eps[1].TTL != 90*time.Second {
		t.Fatalf("TTLs = %v, %v", eps[0].TTL, eps[1].TTL)
	}
	// Edits are picked up on the next poll.
	if err := os.WriteFile(path, []byte("127.0.0.1:9003\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	eps, err = src.Resolve()
	if err != nil || len(eps) != 1 || eps[0].Addr != "127.0.0.1:9003" {
		t.Fatalf("after edit: %+v, %v", eps, err)
	}
	// A vanished file is a resolution error, not an empty set.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Resolve(); !errors.Is(err, ErrSource) {
		t.Fatalf("after remove: err = %v, want ErrSource", err)
	}
}

func TestFileSourceRejectsBadContent(t *testing.T) {
	for _, content := range []string{"nonsense\n", "127.0.0.1:9001 soon\n", "127.0.0.1\n"} {
		if _, err := NewFileSource(writeHosts(t, content)); !errors.Is(err, ErrSource) {
			t.Errorf("content %q: err = %v, want ErrSource", content, err)
		}
	}
	if _, err := NewFileSource(filepath.Join(t.TempDir(), "missing")); !errors.Is(err, ErrSource) {
		t.Errorf("missing file: err = %v, want ErrSource", err)
	}
	if _, err := NewFileSource(""); !errors.Is(err, ErrSource) {
		t.Errorf("empty path: err = %v, want ErrSource", err)
	}
}

// --- dns source ---

func TestDNSSourceHostPort(t *testing.T) {
	src, err := NewDNSSource("svc.example:9001")
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	src.lookupHost = func(ctx context.Context, host string) ([]string, error) {
		if host != "svc.example" {
			t.Errorf("looked up %q", host)
		}
		return []string{"10.0.0.2", "10.0.0.1"}, nil
	}
	eps, err := src.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	// Sorted regardless of resolver ordering.
	if len(eps) != 2 || eps[0].Addr != "10.0.0.1:9001" || eps[1].Addr != "10.0.0.2:9001" {
		t.Fatalf("endpoints = %+v", eps)
	}
	src.lookupHost = func(ctx context.Context, host string) ([]string, error) {
		return nil, errors.New("SERVFAIL")
	}
	if _, err := src.Resolve(); !errors.Is(err, ErrSource) {
		t.Fatalf("lookup failure: err = %v, want ErrSource", err)
	}
}

func TestDNSSourceSRV(t *testing.T) {
	src, err := NewDNSSource("_plus._tcp.example.org")
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	src.lookupSRV = func(ctx context.Context, name string) ([]*net.SRV, error) {
		if name != "_plus._tcp.example.org" {
			t.Errorf("looked up %q", name)
		}
		return []*net.SRV{
			{Target: "b.example.org.", Port: 9002},
			{Target: "a.example.org.", Port: 9001},
			{Target: "", Port: 9009}, // skipped: no target
		}, nil
	}
	eps, err := src.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 2 || eps[0].Addr != "a.example.org:9001" || eps[1].Addr != "b.example.org:9002" {
		t.Fatalf("endpoints = %+v", eps)
	}
}

func TestDNSSourceRejectsBadNames(t *testing.T) {
	for _, name := range []string{"", "nohostport", "host:"} {
		if _, err := NewDNSSource(name); !errors.Is(err, ErrSource) {
			t.Errorf("name %q: err = %v, want ErrSource", name, err)
		}
	}
}

// --- slp source ---

func TestSLPSource(t *testing.T) {
	da, err := slp.NewDirectoryAgent("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer da.Close()
	da.Register("service:plus", slp.URLEntry{URL: "service:plus://127.0.0.1:9001", Lifetime: 60})
	da.Register("service:plus", slp.URLEntry{URL: "service:plus://127.0.0.1:9002", Lifetime: 120})

	src, err := NewSLPSource(da.Addr(), "service:plus", "")
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	eps, err := src.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 2 {
		t.Fatalf("endpoints = %+v", eps)
	}
	got := map[string]time.Duration{eps[0].Addr: eps[0].TTL, eps[1].Addr: eps[1].TTL}
	if got["127.0.0.1:9001"] != 60*time.Second || got["127.0.0.1:9002"] != 120*time.Second {
		t.Fatalf("endpoints = %v", got)
	}
}

func TestSLPSourceEmptyIsNotError(t *testing.T) {
	da, err := slp.NewDirectoryAgent("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer da.Close()
	src, err := NewSLPSource(da.Addr(), "service:nothing", "")
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	// The DA answers "no results" (ErrRemote code 1): an empty set, not
	// a resolution failure.
	eps, err := src.Resolve()
	if err != nil || len(eps) != 0 {
		t.Fatalf("Resolve = %+v, %v; want empty, nil", eps, err)
	}
}

// --- ssdp source ---

func TestSSDPSourceSearch(t *testing.T) {
	resp, err := ssdp.NewResponder("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Close()
	resp.Register(ssdp.SearchResponse{
		ST:       "urn:starlink:plus",
		USN:      "uuid:plus-1",
		Location: "http://127.0.0.1:9001/desc.xml",
	})
	src, err := NewSSDPSource(resp.Addr(), "urn:starlink:plus", SSDPOptions{MX: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	eps, err := src.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 1 || eps[0].Addr != "127.0.0.1:9001" {
		t.Fatalf("endpoints = %+v", eps)
	}
}

func sendNotify(t *testing.T, to, nts, usn, location string) {
	t.Helper()
	var eng network.Engine
	conn, err := eng.Dial(network.Semantics{Transport: "udp"}, to, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	datagram := "NOTIFY * HTTP/1.1\r\n" +
		"NT: urn:starlink:plus\r\n" +
		"NTS: " + nts + "\r\n" +
		"USN: " + usn + "\r\n"
	if location != "" {
		datagram += "LOCATION: " + location + "\r\nCACHE-CONTROL: max-age=1800\r\n"
	}
	datagram += "\r\n"
	if err := conn.Send([]byte(datagram)); err != nil {
		t.Fatal(err)
	}
}

func TestSSDPSourceNotify(t *testing.T) {
	// No responder: the search leg always comes back empty, so every
	// endpoint the source reports was learned from NOTIFY traffic.
	searchTarget := "127.0.0.1:1"
	src, err := NewSSDPSource(searchTarget, "urn:starlink:plus", SSDPOptions{MX: 1, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.ListenAddr() == "" {
		t.Fatal("no listener address")
	}
	sendNotify(t, src.ListenAddr(), "ssdp:alive", "uuid:plus-2", "http://127.0.0.1:9002/desc.xml")
	select {
	case <-src.Updates():
	case <-time.After(2 * time.Second):
		t.Fatal("no update nudge after NOTIFY alive")
	}
	eps, err := src.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 1 || eps[0].Addr != "127.0.0.1:9002" || eps[0].TTL <= 0 {
		t.Fatalf("endpoints after alive = %+v", eps)
	}
	sendNotify(t, src.ListenAddr(), "ssdp:byebye", "uuid:plus-2", "")
	select {
	case <-src.Updates():
	case <-time.After(2 * time.Second):
		t.Fatal("no update nudge after NOTIFY byebye")
	}
	eps, err = src.Resolve()
	if err != nil || len(eps) != 0 {
		t.Fatalf("endpoints after byebye = %+v, %v", eps, err)
	}
}

// --- reconciler ---

// fakeSource is a scripted source: tests set its next result and step
// the reconciler with direct reconcile calls.
type fakeSource struct {
	mu  sync.Mutex
	eps []Endpoint
	err error
}

func (f *fakeSource) set(eps []Endpoint, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.eps, f.err = eps, err
}

func (f *fakeSource) Resolve() ([]Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Endpoint(nil), f.eps...), f.err
}

func (f *fakeSource) String() string { return "fake://test" }
func (f *fakeSource) Close() error   { return nil }

// newTestSet builds a set whose probes always succeed, so admission is
// immediate and membership tests stay deterministic.
func newTestSet(t *testing.T, addrs ...string) *backend.Set {
	t.Helper()
	set, err := backend.New("checkout", addrs, backend.Options{
		Probe:        func(string) error { return nil },
		Cooloff:      10 * time.Millisecond,
		DrainTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(set.Close)
	return set
}

func waitForAddrs(t *testing.T, set *backend.Set, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(set.Addrs()) == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("set has %v, want %d replicas", set.Addrs(), want)
}

func TestReconcilerAddAfterDebounce(t *testing.T) {
	set := newTestSet(t, "127.0.0.1:9001")
	src := &fakeSource{}
	r, err := New(set, Options{Source: src, Debounce: 100 * time.Millisecond, MinTTL: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	now := time.Now()
	src.set([]Endpoint{{Addr: "127.0.0.1:9001"}, {Addr: "127.0.0.1:9002"}}, nil)
	r.reconcile(now)
	if got := set.Addrs(); len(got) != 1 {
		t.Fatalf("admitted before debounce: %v", got)
	}
	snap := r.Snapshot()
	if len(snap.Pending) != 1 || snap.Pending[0] != "127.0.0.1:9002" {
		t.Fatalf("pending = %v", snap.Pending)
	}
	// Still present a debounce later: admitted.
	r.reconcile(now.Add(150 * time.Millisecond))
	waitForAddrs(t, set, 2)
	snap = r.Snapshot()
	if snap.Adds != 1 || len(snap.Members) != 2 {
		t.Fatalf("snapshot after add = %+v", snap)
	}
}

func TestReconcilerRemoveRespectsDebounceAndMinTTL(t *testing.T) {
	set := newTestSet(t, "127.0.0.1:9001", "127.0.0.1:9002")
	src := &fakeSource{}
	r, err := New(set, Options{
		Source:   src,
		Debounce: 50 * time.Millisecond,
		MinTTL:   300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	now := time.Now()
	src.set([]Endpoint{{Addr: "127.0.0.1:9001"}}, nil) // 9002 withdrawn
	r.reconcile(now)
	r.reconcile(now.Add(100 * time.Millisecond))
	// Absence has out-debounced, but the member is younger than MinTTL.
	if got := set.Addrs(); len(got) != 2 {
		t.Fatalf("removed before MinTTL: %v", got)
	}
	r.reconcile(now.Add(400 * time.Millisecond))
	if got := set.Addrs(); len(got) != 1 || got[0] != "127.0.0.1:9001" {
		t.Fatalf("after MinTTL: %v", got)
	}
	if snap := r.Snapshot(); snap.Removes != 1 {
		t.Fatalf("removes = %d", snap.Removes)
	}
}

func TestReconcilerSuppressesFlaps(t *testing.T) {
	set := newTestSet(t, "127.0.0.1:9001")
	src := &fakeSource{}
	r, err := New(set, Options{Source: src, Debounce: time.Hour, MinTTL: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	now := time.Now()
	// 9002 flaps up then away before the debounce window elapses.
	src.set([]Endpoint{{Addr: "127.0.0.1:9001"}, {Addr: "127.0.0.1:9002"}}, nil)
	r.reconcile(now)
	src.set([]Endpoint{{Addr: "127.0.0.1:9001"}}, nil)
	r.reconcile(now.Add(10 * time.Millisecond))
	snap := r.Snapshot()
	if snap.FlapsSuppressed != 1 {
		t.Fatalf("flaps suppressed = %d, want 1", snap.FlapsSuppressed)
	}
	if got := set.Addrs(); len(got) != 1 {
		t.Fatalf("flapping endpoint admitted: %v", got)
	}
	// The run restarts from scratch when it reappears.
	src.set([]Endpoint{{Addr: "127.0.0.1:9001"}, {Addr: "127.0.0.1:9002"}}, nil)
	r.reconcile(now.Add(20 * time.Millisecond))
	if got := set.Addrs(); len(got) != 1 {
		t.Fatalf("readmitted without out-waiting debounce: %v", got)
	}
}

func TestReconcilerHonorsTTLThroughMissedPolls(t *testing.T) {
	set := newTestSet(t, "127.0.0.1:9001")
	src := &fakeSource{}
	// MinTTL is huge so the seed replica cannot be removed out from
	// under the scenario this test actually exercises.
	r, err := New(set, Options{Source: src, Debounce: 50 * time.Millisecond, MinTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	now := time.Now()
	// Advertised with a TTL that outlives the next (empty) poll: the
	// endpoint stays present and is admitted once debounce elapses.
	src.set([]Endpoint{{Addr: "127.0.0.1:9002", TTL: time.Hour}}, nil)
	r.reconcile(now)
	src.set(nil, nil)
	r.reconcile(now.Add(100 * time.Millisecond))
	waitForAddrs(t, set, 2)
}

func TestReconcilerMaxChurn(t *testing.T) {
	set := newTestSet(t, "127.0.0.1:9001")
	src := &fakeSource{}
	r, err := New(set, Options{Source: src, Debounce: time.Millisecond, MinTTL: time.Millisecond, MaxChurn: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	now := time.Now()
	src.set([]Endpoint{
		{Addr: "127.0.0.1:9001"}, {Addr: "127.0.0.1:9002"},
		{Addr: "127.0.0.1:9003"}, {Addr: "127.0.0.1:9004"},
	}, nil)
	r.reconcile(now)
	r.reconcile(now.Add(10 * time.Millisecond))
	if snap := r.Snapshot(); snap.Adds != 1 {
		t.Fatalf("adds after capped round = %d, want 1", snap.Adds)
	}
	r.reconcile(now.Add(20 * time.Millisecond))
	r.reconcile(now.Add(30 * time.Millisecond))
	if snap := r.Snapshot(); snap.Adds != 3 {
		t.Fatalf("adds after three more rounds = %d, want 3", snap.Adds)
	}
}

func TestReconcilerNeverShrinksBelowMinLive(t *testing.T) {
	set := newTestSet(t, "127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003")
	src := &fakeSource{}
	r, err := New(set, Options{Source: src, Debounce: time.Millisecond, MinTTL: time.Millisecond, MinLive: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	now := time.Now()
	src.set(nil, nil) // the source says: everything is gone
	r.reconcile(now)
	r.reconcile(now.Add(50 * time.Millisecond))
	r.reconcile(now.Add(100 * time.Millisecond))
	if got := set.Addrs(); len(got) != 2 {
		t.Fatalf("floor violated: %v", got)
	}
}

func TestReconcilerKeepsMembershipOnResolveError(t *testing.T) {
	set := newTestSet(t, "127.0.0.1:9001", "127.0.0.1:9002")
	src := &fakeSource{}
	r, err := New(set, Options{Source: src, Debounce: time.Millisecond, MinTTL: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	now := time.Now()
	src.set(nil, fmt.Errorf("%w: DA unreachable", ErrSource))
	for i := 0; i < 5; i++ {
		r.reconcile(now.Add(time.Duration(i) * 50 * time.Millisecond))
	}
	if got := set.Addrs(); len(got) != 2 {
		t.Fatalf("membership dropped on resolve errors: %v", got)
	}
	snap := r.Snapshot()
	if snap.ResolveErrors != 5 || snap.Resolutions != 5 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.LastResolution != -1 {
		t.Fatalf("last resolution age = %v, want -1 (never)", snap.LastResolution)
	}
}

func TestReconcilerAdoptCarriesCounters(t *testing.T) {
	set := newTestSet(t, "127.0.0.1:9001")
	src := &fakeSource{}
	old, err := New(set, Options{Source: src, Debounce: time.Millisecond, MinTTL: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	src.set([]Endpoint{{Addr: "127.0.0.1:9001"}, {Addr: "127.0.0.1:9002"}}, nil)
	now := time.Now()
	old.reconcile(now)
	old.reconcile(now.Add(10 * time.Millisecond))

	fresh, err := New(set, Options{Source: &fakeSource{}, Debounce: time.Millisecond, MinTTL: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	fresh.Adopt(old)
	snap := fresh.Snapshot()
	if snap.Resolutions != 2 || snap.Adds != 1 {
		t.Fatalf("adopted snapshot = %+v", snap)
	}
	if snap.LastResolution < 0 {
		t.Fatalf("adopted last resolution age = %v", snap.LastResolution)
	}
}

func TestReconcilerLoopAndPoke(t *testing.T) {
	set := newTestSet(t, "127.0.0.1:9001")
	src := &fakeSource{}
	src.set([]Endpoint{{Addr: "127.0.0.1:9001"}, {Addr: "127.0.0.1:9002"}}, nil)
	r, err := New(set, Options{
		Source:   src,
		Refresh:  5 * time.Millisecond,
		Debounce: 10 * time.Millisecond,
		MinTTL:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Close()
	waitForAddrs(t, set, 2)
	r.Poke()
	if snap := r.Snapshot(); snap.Resolutions == 0 {
		t.Fatal("no resolutions after Poke")
	}
}

func TestReconcilerSnapshotShape(t *testing.T) {
	set := newTestSet(t, "127.0.0.1:9001")
	src := &fakeSource{}
	r, err := New(set, Options{Source: src, Refresh: time.Second, Debounce: 2 * time.Second, MinTTL: 3 * time.Second, MaxChurn: 4, MinLive: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	snap := r.Snapshot()
	if snap.Set != "checkout" || snap.Source != "fake://test" {
		t.Fatalf("identity = %q / %q", snap.Set, snap.Source)
	}
	if snap.Refresh != "1s" || snap.Debounce != "2s" || snap.MinTTL != "3s" || snap.MaxChurn != 4 || snap.MinLive != 1 {
		t.Fatalf("tuning = %+v", snap)
	}
	if len(snap.Members) != 1 || snap.Members[0] != "127.0.0.1:9001" {
		t.Fatalf("members = %v", snap.Members)
	}
}

func TestReconcilerValidation(t *testing.T) {
	set := newTestSet(t, "127.0.0.1:9001")
	if _, err := New(nil, Options{Source: &fakeSource{}}); !errors.Is(err, ErrSource) {
		t.Errorf("nil set: %v", err)
	}
	if _, err := New(set, Options{}); !errors.Is(err, ErrSource) {
		t.Errorf("nil source: %v", err)
	}
}

// --- goroutine-leak coverage (satellite: testutil.NoLeaks) ---

func TestNoLeaksReconcilerLoop(t *testing.T) {
	testutil.NoLeaks(t, func() {
		set, err := backend.New("checkout", []string{"127.0.0.1:9001"}, backend.Options{
			Probe: func(string) error { return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		src := &fakeSource{}
		src.set([]Endpoint{{Addr: "127.0.0.1:9001"}, {Addr: "127.0.0.1:9002"}}, nil)
		r, err := New(set, Options{Source: src, Refresh: time.Millisecond, Debounce: time.Millisecond, MinTTL: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		time.Sleep(20 * time.Millisecond) // let a few rounds land
		r.Close()
		r.Close() // idempotent
		set.Close()
	})
}

func TestNoLeaksReconcilerNeverStarted(t *testing.T) {
	testutil.NoLeaks(t, func() {
		set := newTestSet(t, "127.0.0.1:9001")
		r, err := New(set, Options{Source: &fakeSource{}})
		if err != nil {
			t.Fatal(err)
		}
		r.Close()
	})
}

func TestNoLeaksSLPSource(t *testing.T) {
	testutil.NoLeaks(t, func() {
		da, err := slp.NewDirectoryAgent("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		src, err := NewSLPSource(da.Addr(), "service:plus", "")
		if err != nil {
			t.Fatal(err)
		}
		src.Resolve()
		src.Close()
		da.Close()
	})
}

func TestNoLeaksSSDPSource(t *testing.T) {
	testutil.NoLeaks(t, func() {
		src, err := NewSSDPSource("127.0.0.1:1", "urn:starlink:plus", SSDPOptions{Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		src.Close()
		src.Close() // idempotent
	})
}

func TestNoLeaksFileAndDNSSources(t *testing.T) {
	testutil.NoLeaks(t, func() {
		fsrc, err := NewFileSource(writeHosts(t, "127.0.0.1:9001\n"))
		if err != nil {
			t.Fatal(err)
		}
		fsrc.Close()
		dsrc, err := NewDNSSource("svc.example:9001")
		if err != nil {
			t.Fatal(err)
		}
		dsrc.Close()
	})
}
