package discovery

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"starlink/internal/protocol/slp"
)

// SLPSource polls an SLP Directory Agent for a service type, turning
// each advertised URL entry into an endpoint. The DA connection is
// dialed lazily and redialed after any transport error, so a DA that
// restarts mid-run is picked back up on the next poll.
type SLPSource struct {
	addr        string
	serviceType string
	scope       string

	mu     sync.Mutex
	client *slp.Client
	closed bool
}

// NewSLPSource resolves serviceType (scope optional, DEFAULT when
// empty) against the Directory Agent at addr.
func NewSLPSource(addr, serviceType, scope string) (*SLPSource, error) {
	if addr == "" || serviceType == "" {
		return nil, fmt.Errorf("%w: slp source needs agent address and service type", ErrSource)
	}
	if scope == "" {
		scope = "DEFAULT"
	}
	return &SLPSource{addr: addr, serviceType: serviceType, scope: scope}, nil
}

// Resolve issues one ServiceRequest to the DA. A remote "no results"
// is an empty set, not an error; transport errors drop the cached
// connection so the next poll redials.
func (s *SLPSource) Resolve() ([]Endpoint, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: slp source closed", ErrSource)
	}
	if s.client == nil {
		c, err := slp.Dial(s.addr)
		if err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: dial DA %s: %v", ErrSource, s.addr, err)
		}
		s.client = c
	}
	c := s.client
	s.mu.Unlock()

	entries, err := c.Find(s.serviceType, s.scope)
	if err != nil {
		if errors.Is(err, slp.ErrRemote) {
			return nil, nil // DA answered: nothing registered
		}
		s.mu.Lock()
		if s.client == c {
			c.Close()
			s.client = nil
		}
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: find %s: %v", ErrSource, s.serviceType, err)
	}
	eps := make([]Endpoint, 0, len(entries))
	for _, e := range entries {
		addr, err := HostPort(e.URL)
		if err != nil {
			continue // advertisement without a dialable address
		}
		eps = append(eps, Endpoint{Addr: addr, TTL: time.Duration(e.Lifetime) * time.Second})
	}
	return eps, nil
}

func (s *SLPSource) String() string {
	return fmt.Sprintf("slp://%s/%s", s.addr, s.serviceType)
}

// Close drops the DA connection; a Resolve already in flight may still
// return one final result.
func (s *SLPSource) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.client != nil {
		err := s.client.Close()
		s.client = nil
		return err
	}
	return nil
}
