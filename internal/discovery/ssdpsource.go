package discovery

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"starlink/internal/network"
	"starlink/internal/protocol/httpwire"
	"starlink/internal/protocol/ssdp"
)

// SSDPSource discovers endpoints two ways at once: each Resolve sends
// a unicast M-SEARCH for the search target and folds the answers into
// a USN table, and an optional background listener ingests NOTIFY
// announcements (ssdp:alive refreshes the table, ssdp:byebye evicts)
// so a withdrawal is seen the moment it is multicast rather than on
// the next poll. The listener nudges the reconciler through Updates.
type SSDPSource struct {
	addr string // search/responder address
	st   string // search target
	mx   int    // M-SEARCH response window, seconds

	mu      sync.Mutex
	known   map[string]ssdpEntry // USN -> entry
	closed  bool
	ep      network.PacketEndpoint
	done    chan struct{}
	updates chan struct{}
}

type ssdpEntry struct {
	addr    string
	expires time.Time // zero = no max-age advertised
}

// SSDPOptions tunes an SSDPSource beyond its address and target.
type SSDPOptions struct {
	// MX is the M-SEARCH response window in seconds (default 1).
	MX int
	// Listen, when set, binds a UDP address (a multicast group in real
	// deployments) and ingests NOTIFY alive/byebye announcements.
	Listen string
}

// NewSSDPSource searches addr for st. With opts.Listen it also starts
// the NOTIFY listener.
func NewSSDPSource(addr, st string, opts SSDPOptions) (*SSDPSource, error) {
	if addr == "" || st == "" {
		return nil, fmt.Errorf("%w: ssdp source needs search address and target", ErrSource)
	}
	if opts.MX <= 0 {
		opts.MX = 1
	}
	s := &SSDPSource{
		addr:    addr,
		st:      st,
		mx:      opts.MX,
		known:   make(map[string]ssdpEntry),
		updates: make(chan struct{}, 1),
	}
	if opts.Listen != "" {
		var eng network.Engine
		ep, err := eng.ListenPacket(network.Semantics{Transport: "udp"}, opts.Listen)
		if err != nil {
			return nil, fmt.Errorf("%w: listen %s: %v", ErrSource, opts.Listen, err)
		}
		s.ep = ep
		s.done = make(chan struct{})
		go s.listen()
	}
	return s, nil
}

// Resolve refreshes the USN table with one M-SEARCH round and returns
// every entry that has not expired. A search that times out with no
// answers is an empty result, not an error — silence is how SSDP says
// "nobody here".
func (s *SSDPSource) Resolve() ([]Endpoint, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: ssdp source closed", ErrSource)
	}
	s.mu.Unlock()

	resps, err := ssdp.Search(s.addr, s.st, s.mx, 0)
	if err != nil && err != ssdp.ErrNoResponse {
		return nil, fmt.Errorf("%w: search %s: %v", ErrSource, s.st, err)
	}

	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]bool, len(resps))
	for _, r := range resps {
		addr, err := HostPort(r.Location)
		if err != nil {
			continue
		}
		seen[r.USN] = true
		s.known[r.USN] = ssdpEntry{addr: addr}
	}
	// A searched-for USN that did not answer is gone; NOTIFY-learned
	// entries (expires set) live until their max-age runs out.
	var eps []Endpoint
	for usn, e := range s.known {
		switch {
		case seen[usn]:
		case e.expires.IsZero() || now.After(e.expires):
			delete(s.known, usn)
			continue
		}
		ttl := time.Duration(0)
		if !e.expires.IsZero() {
			ttl = e.expires.Sub(now)
		}
		eps = append(eps, Endpoint{Addr: e.addr, TTL: ttl})
	}
	return eps, nil
}

// Updates nudges the reconciler whenever a NOTIFY changes the table.
func (s *SSDPSource) Updates() <-chan struct{} { return s.updates }

// ListenAddr reports the NOTIFY listener's bound address, empty when
// no listener was configured.
func (s *SSDPSource) ListenAddr() string {
	if s.ep == nil {
		return ""
	}
	return s.ep.LocalAddr().String()
}

func (s *SSDPSource) nudge() {
	select {
	case s.updates <- struct{}{}:
	default:
	}
}

// listen ingests NOTIFY datagrams until the endpoint closes.
func (s *SSDPSource) listen() {
	defer close(s.done)
	for {
		data, _, err := s.ep.RecvFrom()
		if err != nil {
			return
		}
		req, err := httpwire.ParseRequest(data)
		if err != nil || req.Method != "NOTIFY" {
			continue
		}
		nt := req.Headers["NT"]
		usn := req.Headers["USN"]
		if usn == "" || (nt != s.st && nt != "ssdp:all") {
			continue
		}
		switch req.Headers["NTS"] {
		case "ssdp:alive":
			addr, err := HostPort(req.Headers["LOCATION"])
			if err != nil {
				continue
			}
			exp := time.Now().Add(notifyMaxAge(req.Headers["CACHE-CONTROL"]))
			s.mu.Lock()
			s.known[usn] = ssdpEntry{addr: addr, expires: exp}
			s.mu.Unlock()
			s.nudge()
		case "ssdp:byebye":
			s.mu.Lock()
			_, had := s.known[usn]
			delete(s.known, usn)
			s.mu.Unlock()
			if had {
				s.nudge()
			}
		}
	}
}

// notifyMaxAge extracts max-age from a CACHE-CONTROL header, with the
// SSDP-customary 1800s default.
func notifyMaxAge(cc string) time.Duration {
	for _, part := range strings.Split(cc, ",") {
		part = strings.TrimSpace(strings.ToLower(part))
		if v, ok := strings.CutPrefix(part, "max-age="); ok {
			if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && n > 0 {
				return time.Duration(n) * time.Second
			}
		}
	}
	return 1800 * time.Second
}

func (s *SSDPSource) String() string {
	return fmt.Sprintf("ssdp://%s/%s", s.addr, s.st)
}

// Close stops the NOTIFY listener and fails future Resolves.
func (s *SSDPSource) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ep, done := s.ep, s.done
	s.mu.Unlock()
	if ep != nil {
		err := ep.Close()
		<-done
		return err
	}
	return nil
}
