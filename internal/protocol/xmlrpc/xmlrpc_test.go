package xmlrpc

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestCallRoundTrip(t *testing.T) {
	body, err := MarshalCall("flickr.photos.search", "apikey", "tree", int64(3), true, 2.5,
		[]Value{"a", int64(1)},
		map[string]Value{"k": "v", "n": int64(7)},
	)
	if err != nil {
		t.Fatal(err)
	}
	method, params, err := ParseCall(body)
	if err != nil {
		t.Fatal(err)
	}
	if method != "flickr.photos.search" {
		t.Errorf("method = %q", method)
	}
	want := []Value{"apikey", "tree", int64(3), true, 2.5,
		[]Value{"a", int64(1)},
		map[string]Value{"k": "v", "n": int64(7)},
	}
	if !reflect.DeepEqual(params, want) {
		t.Errorf("params = %#v", params)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	body, err := MarshalResponse(map[string]Value{
		"photos": []Value{"p1", "p2"},
		"total":  int64(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := ParseResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := v.(map[string]Value)
	if !ok {
		t.Fatalf("result type %T", v)
	}
	if st["total"] != int64(2) {
		t.Errorf("total = %v", st["total"])
	}
}

func TestFaultRoundTrip(t *testing.T) {
	body, err := MarshalFault(&Fault{Code: 42, Message: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = ParseResponse(body)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v", err)
	}
	if f.Code != 42 || f.Message != "boom" {
		t.Errorf("fault = %+v", f)
	}
	if !strings.Contains(f.Error(), "42") {
		t.Errorf("fault error = %q", f.Error())
	}
}

func TestEscapingInValues(t *testing.T) {
	body, err := MarshalCall("m", `<&>"'`)
	if err != nil {
		t.Fatal(err)
	}
	_, params, err := ParseCall(body)
	if err != nil {
		t.Fatal(err)
	}
	if params[0] != `<&>"'` {
		t.Errorf("param = %q", params[0])
	}
}

func TestBareValueIsString(t *testing.T) {
	raw := `<methodCall><methodName>m</methodName><params><param><value>plain</value></param></params></methodCall>`
	_, params, err := ParseCall([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if params[0] != "plain" {
		t.Errorf("param = %#v", params[0])
	}
}

func TestI4Alias(t *testing.T) {
	raw := `<methodResponse><params><param><value><i4>12</i4></value></param></params></methodResponse>`
	v, err := ParseResponse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(12) {
		t.Errorf("i4 = %#v", v)
	}
}

func TestParseErrors(t *testing.T) {
	badCalls := []string{
		"",
		"<wrongroot/>",
		"<methodCall><params/></methodCall>",
		"<methodCall><methodName>m</methodName><params><param><value><int>x</int></value></param></params></methodCall>",
		"<methodCall><methodName>m</methodName><params><param><value><mystery>1</mystery></value></param></params></methodCall>",
		"<methodCall><methodName>m</methodName><params><param><value><array/></value></param></params></methodCall>",
	}
	for _, raw := range badCalls {
		if _, _, err := ParseCall([]byte(raw)); !errors.Is(err, ErrMalformed) {
			t.Errorf("ParseCall(%q) err = %v", raw, err)
		}
	}
	badResponses := []string{
		"<nope/>",
		"<methodResponse/>",
		"<methodResponse><params/></methodResponse>",
		"<methodResponse><params><param><value><double>z</double></value></param></params></methodResponse>",
	}
	for _, raw := range badResponses {
		if _, err := ParseResponse([]byte(raw)); !errors.Is(err, ErrMalformed) {
			t.Errorf("ParseResponse(%q) err = %v", raw, err)
		}
	}
}

func TestMarshalUnsupportedType(t *testing.T) {
	if _, err := MarshalCall("m", struct{}{}); err == nil {
		t.Error("struct{}{} accepted")
	}
	if _, err := MarshalResponse(struct{}{}); err == nil {
		t.Error("struct{}{} accepted in response")
	}
}

func TestNilAndIntValues(t *testing.T) {
	body, err := MarshalCall("m", nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, params, err := ParseCall(body)
	if err != nil {
		t.Fatal(err)
	}
	if params[0] != "" || params[1] != int64(5) {
		t.Errorf("params = %#v", params)
	}
}

func TestClientServerEndToEnd(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", "/xml-rpc", map[string]Method{
		"math.add": func(params []Value) (Value, *Fault) {
			a, aok := params[0].(int64)
			b, bok := params[1].(int64)
			if !aok || !bok {
				return nil, &Fault{Code: 400, Message: "want two ints"}
			}
			return a + b, nil
		},
		"echo.struct": func(params []Value) (Value, *Fault) {
			return params[0], nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(srv.Addr(), "/xml-rpc")
	defer c.Close()

	v, err := c.Call("math.add", int64(20), int64(22))
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(42) {
		t.Errorf("add = %v", v)
	}

	st, err := c.Call("echo.struct", map[string]Value{"a": "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, map[string]Value{"a": "b"}) {
		t.Errorf("echo = %#v", st)
	}

	// Unknown method -> fault.
	_, err = c.Call("no.such")
	var f *Fault
	if !errors.As(err, &f) || f.Code != 404 {
		t.Errorf("unknown method err = %v", err)
	}

	// Handler fault propagates.
	_, err = c.Call("math.add", "x", "y")
	if !errors.As(err, &f) || f.Code != 400 {
		t.Errorf("bad params err = %v", err)
	}
}

func TestServerRejectsWrongPathAndMethod(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", "/xml-rpc", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr(), "/other")
	defer c.Close()
	if _, err := c.Call("m"); err == nil {
		t.Error("wrong path accepted")
	}
}

func BenchmarkMarshalCall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MarshalCall("flickr.photos.search", "key", "tree", int64(3)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseCall(b *testing.B) {
	body, _ := MarshalCall("flickr.photos.search", "key", "tree", int64(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ParseCall(body); err != nil {
			b.Fatal(err)
		}
	}
}
