// Package xmlrpc implements the XML-RPC protocol over the httpwire
// substrate: encoding of methodCall/methodResponse documents, a client,
// and a dispatching server. A Flickr client in the case study speaks this
// protocol (Section 2.1).
package xmlrpc

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"starlink/internal/mdl/xmlenc"
	"starlink/internal/message"
	"starlink/internal/protocol/httpwire"
)

// Errors reported by the XML-RPC layer.
var (
	// ErrMalformed is wrapped by all decode failures.
	ErrMalformed = errors.New("xmlrpc: malformed message")
	// ErrNoSuchMethod is the fault raised for unregistered methods.
	ErrNoSuchMethod = errors.New("xmlrpc: no such method")
)

// Value is an XML-RPC value: string, int64, bool, float64, []Value
// (array) or map[string]Value (struct).
type Value any

// Fault is an XML-RPC fault response.
type Fault struct {
	// Code is the numeric fault code.
	Code int
	// Message describes the fault.
	Message string
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("xmlrpc fault %d: %s", f.Code, f.Message)
}

// MarshalCall renders a methodCall document.
func MarshalCall(method string, params ...Value) ([]byte, error) {
	root := message.NewStruct("methodCall",
		message.NewPrimitive("methodName", message.TypeString, method),
	)
	ps := message.NewStruct("params")
	for _, p := range params {
		vf, err := encodeValue(p)
		if err != nil {
			return nil, err
		}
		ps.Add(message.NewStruct("param", vf))
	}
	root.Add(ps)
	return xmlenc.EncodeDoc(root)
}

// MarshalResponse renders a methodResponse document with one result.
func MarshalResponse(result Value) ([]byte, error) {
	vf, err := encodeValue(result)
	if err != nil {
		return nil, err
	}
	root := message.NewStruct("methodResponse",
		message.NewStruct("params", message.NewStruct("param", vf)),
	)
	return xmlenc.EncodeDoc(root)
}

// MarshalFault renders a fault methodResponse.
func MarshalFault(f *Fault) ([]byte, error) {
	fv, err := encodeValue(map[string]Value{
		"faultCode":   int64(f.Code),
		"faultString": f.Message,
	})
	if err != nil {
		return nil, err
	}
	root := message.NewStruct("methodResponse", message.NewStruct("fault", fv))
	return xmlenc.EncodeDoc(root)
}

func encodeValue(v Value) (*message.Field, error) {
	val := message.NewStruct("value")
	switch x := v.(type) {
	case nil:
		val.Add(message.NewPrimitive("string", message.TypeString, ""))
	case string:
		val.Add(message.NewPrimitive("string", message.TypeString, x))
	case int:
		val.Add(message.NewPrimitive("int", message.TypeString, strconv.Itoa(x)))
	case int64:
		val.Add(message.NewPrimitive("int", message.TypeString, strconv.FormatInt(x, 10)))
	case bool:
		b := "0"
		if x {
			b = "1"
		}
		val.Add(message.NewPrimitive("boolean", message.TypeString, b))
	case float64:
		val.Add(message.NewPrimitive("double", message.TypeString, strconv.FormatFloat(x, 'g', -1, 64)))
	case []Value:
		data := message.NewStruct("data")
		for _, e := range x {
			ef, err := encodeValue(e)
			if err != nil {
				return nil, err
			}
			data.Add(ef)
		}
		val.Add(message.NewStruct("array", data))
	case map[string]Value:
		st := message.NewStruct("struct")
		for _, k := range sortedKeys(x) {
			mf, err := encodeValue(x[k])
			if err != nil {
				return nil, err
			}
			st.Add(message.NewStruct("member",
				message.NewPrimitive("name", message.TypeString, k),
				mf,
			))
		}
		val.Add(st)
	default:
		return nil, fmt.Errorf("xmlrpc: cannot encode %T", v)
	}
	return val, nil
}

func sortedKeys(m map[string]Value) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// ParseCall decodes a methodCall document.
func ParseCall(data []byte) (method string, params []Value, err error) {
	root, err := xmlenc.DecodeTree(data)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if root.Label != "methodCall" {
		return "", nil, fmt.Errorf("%w: root %q", ErrMalformed, root.Label)
	}
	mn := root.Child("methodName")
	if mn == nil {
		return "", nil, fmt.Errorf("%w: no methodName", ErrMalformed)
	}
	method = strings.TrimSpace(mn.ValueString())
	if ps := root.Child("params"); ps != nil {
		for _, p := range ps.Children {
			if p.Label != "param" {
				continue
			}
			v, err := decodeValue(p.Child("value"))
			if err != nil {
				return "", nil, err
			}
			params = append(params, v)
		}
	}
	return method, params, nil
}

// ParseResponse decodes a methodResponse document, returning the result
// or a *Fault as the error.
func ParseResponse(data []byte) (Value, error) {
	root, err := xmlenc.DecodeTree(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if root.Label != "methodResponse" {
		return nil, fmt.Errorf("%w: root %q", ErrMalformed, root.Label)
	}
	if fl := root.Child("fault"); fl != nil {
		v, err := decodeValue(fl.Child("value"))
		if err != nil {
			return nil, err
		}
		st, ok := v.(map[string]Value)
		if !ok {
			return nil, fmt.Errorf("%w: fault payload %T", ErrMalformed, v)
		}
		f := &Fault{Message: str(st["faultString"])}
		if c, ok := st["faultCode"].(int64); ok {
			f.Code = int(c)
		}
		return nil, f
	}
	ps := root.Child("params")
	if ps == nil || ps.Child("param") == nil {
		return nil, fmt.Errorf("%w: no params in response", ErrMalformed)
	}
	return decodeValue(ps.Child("param").Child("value"))
}

func str(v Value) string {
	if s, ok := v.(string); ok {
		return s
	}
	return fmt.Sprint(v)
}

func decodeValue(val *message.Field) (Value, error) {
	if val == nil {
		return nil, fmt.Errorf("%w: missing <value>", ErrMalformed)
	}
	// A bare <value>text</value> is a string.
	if val.Type.Primitive() {
		return val.ValueString(), nil
	}
	if len(val.Children) == 0 {
		return "", nil
	}
	typed := val.Children[0]
	if typed.Label == "#text" {
		return typed.ValueString(), nil
	}
	switch typed.Label {
	case "string":
		return typed.ValueString(), nil
	case "int", "i4":
		n, err := strconv.ParseInt(strings.TrimSpace(typed.ValueString()), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: int %q", ErrMalformed, typed.ValueString())
		}
		return n, nil
	case "boolean":
		return strings.TrimSpace(typed.ValueString()) == "1", nil
	case "double":
		f, err := strconv.ParseFloat(strings.TrimSpace(typed.ValueString()), 64)
		if err != nil {
			return nil, fmt.Errorf("%w: double %q", ErrMalformed, typed.ValueString())
		}
		return f, nil
	case "array":
		var out []Value
		data := typed.Child("data")
		if data == nil {
			return nil, fmt.Errorf("%w: array without data", ErrMalformed)
		}
		for _, e := range data.Children {
			if e.Label != "value" {
				continue
			}
			v, err := decodeValue(e)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case "struct":
		out := map[string]Value{}
		for _, m := range typed.Children {
			if m.Label != "member" {
				continue
			}
			name := m.Child("name")
			if name == nil {
				return nil, fmt.Errorf("%w: member without name", ErrMalformed)
			}
			v, err := decodeValue(m.Child("value"))
			if err != nil {
				return nil, err
			}
			out[name.ValueString()] = v
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown value type %q", ErrMalformed, typed.Label)
	}
}

// Client calls XML-RPC methods at a fixed HTTP endpoint.
type Client struct {
	http *httpwire.Client
	path string
}

// NewClient targets addr ("host:port") and path (e.g. "/services/xmlrpc").
func NewClient(addr, path string) *Client {
	return &Client{http: &httpwire.Client{Addr: addr}, path: path}
}

// Call invokes a method. A server fault is returned as *Fault.
func (c *Client) Call(method string, params ...Value) (Value, error) {
	body, err := MarshalCall(method, params...)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Post(c.path, "text/xml", body)
	if err != nil {
		return nil, fmt.Errorf("xmlrpc: call %s: %w", method, err)
	}
	if resp.Status != 200 {
		return nil, fmt.Errorf("xmlrpc: call %s: HTTP %d", method, resp.Status)
	}
	return ParseResponse(resp.Body)
}

// Close releases the client connection.
func (c *Client) Close() error { return c.http.Close() }

// Method handles one XML-RPC method.
type Method func(params []Value) (Value, *Fault)

// Server dispatches XML-RPC calls to registered methods.
type Server struct {
	http    *httpwire.Server
	methods map[string]Method
}

// NewServer starts an XML-RPC server at addr/path. Register methods in
// the handlers map; unknown methods yield fault 404.
func NewServer(addr, path string, handlers map[string]Method) (*Server, error) {
	s := &Server{methods: handlers}
	hs, err := httpwire.Serve(addr, func(req *httpwire.Request) *httpwire.Response {
		if req.Method != "POST" || req.Path() != path {
			return &httpwire.Response{Status: 404, Body: []byte("not an XML-RPC endpoint")}
		}
		return s.dispatch(req.Body)
	})
	if err != nil {
		return nil, err
	}
	s.http = hs
	return s, nil
}

func (s *Server) dispatch(body []byte) *httpwire.Response {
	method, params, err := ParseCall(body)
	if err != nil {
		return faultResponse(&Fault{Code: 400, Message: err.Error()})
	}
	h, ok := s.methods[method]
	if !ok {
		return faultResponse(&Fault{Code: 404, Message: ErrNoSuchMethod.Error() + ": " + method})
	}
	result, fault := h(params)
	if fault != nil {
		return faultResponse(fault)
	}
	out, err := MarshalResponse(result)
	if err != nil {
		return faultResponse(&Fault{Code: 500, Message: err.Error()})
	}
	return &httpwire.Response{
		Status:  200,
		Headers: map[string]string{"Content-Type": "text/xml"},
		Body:    out,
	}
}

func faultResponse(f *Fault) *httpwire.Response {
	out, err := MarshalFault(f)
	if err != nil {
		return &httpwire.Response{Status: 500, Body: []byte(err.Error())}
	}
	return &httpwire.Response{
		Status:  200,
		Headers: map[string]string{"Content-Type": "text/xml"},
		Body:    out,
	}
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.http.Addr() }

// Close shuts the server down.
func (s *Server) Close() error { return s.http.Close() }
