package xmlrpc

import "testing"

func FuzzParseCall(f *testing.F) {
	seed, _ := MarshalCall("flickr.photos.search", map[string]Value{"text": "tree"}, int64(3))
	f.Add(seed)
	f.Add([]byte("<methodCall><methodName>m</methodName></methodCall>"))
	f.Add([]byte("<notxml"))
	f.Fuzz(func(t *testing.T, data []byte) {
		method, params, err := ParseCall(data)
		if err != nil {
			return
		}
		// Re-marshal whatever decoded.
		if _, err := MarshalCall(method, params...); err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
	})
}

func FuzzParseResponse(f *testing.F) {
	seed, _ := MarshalResponse(map[string]Value{"photos": []Value{"a"}})
	f.Add(seed)
	fault, _ := MarshalFault(&Fault{Code: 1, Message: "x"})
	f.Add(fault)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ParseResponse(data)
	})
}
