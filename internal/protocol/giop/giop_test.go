package giop

import (
	"errors"
	"fmt"
	"testing"

	"starlink/internal/message"
)

func calcHandler(objectKey, operation string, params []*message.Field) ([]*message.Field, error) {
	if objectKey != "calc" {
		return nil, fmt.Errorf("unknown object %q", objectKey)
	}
	get := func(i int) int64 {
		v, _ := params[i].Value.(int64)
		return v
	}
	switch operation {
	case "Add":
		if len(params) != 2 {
			return nil, errors.New("Add wants 2 params")
		}
		return []*message.Field{IntParam(get(0) + get(1))}, nil
	case "Describe":
		return []*message.Field{StringParam("calculator"), BoolParam(true), DoubleParam(1.5)}, nil
	default:
		return nil, fmt.Errorf("unknown operation %q", operation)
	}
}

func startCalc(t *testing.T) *Server {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", calcHandler)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestE3InvokeAdd(t *testing.T) {
	// E3: the IIOP client behaviour of Fig. 4(a) — synchronous GIOP
	// request/reply over TCP.
	srv := startCalc(t)
	c, err := Dial(srv.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	results, err := c.Invoke("Add", IntParam(20), IntParam(22))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Value != int64(42) {
		t.Errorf("Add = %+v", results)
	}
	// Several invocations on the same connection: request ids advance.
	for i := int64(0); i < 5; i++ {
		results, err := c.Invoke("Add", IntParam(i), IntParam(i))
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Value != 2*i {
			t.Errorf("Add(%d,%d) = %v", i, i, results[0].Value)
		}
	}
}

func TestMixedResultTypes(t *testing.T) {
	srv := startCalc(t)
	c, err := Dial(srv.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	results, err := c.Invoke("Describe")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Value != "calculator" || results[1].Value != true || results[2].Value != 1.5 {
		t.Errorf("values = %v %v %v", results[0].Value, results[1].Value, results[2].Value)
	}
}

func TestRemoteException(t *testing.T) {
	srv := startCalc(t)
	c, err := Dial(srv.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Invoke("Nope"); !errors.Is(err, ErrRemote) {
		t.Errorf("unknown op err = %v", err)
	}
	if _, err := c.Invoke("Add", IntParam(1)); !errors.Is(err, ErrRemote) {
		t.Errorf("bad arity err = %v", err)
	}
	c2, err := Dial(srv.Addr(), "wrong-object")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Invoke("Add", IntParam(1), IntParam(2)); !errors.Is(err, ErrRemote) {
		t.Errorf("wrong object err = %v", err)
	}
}

func TestRequestReplyMessagesWellFormed(t *testing.T) {
	codec, err := NewCodec()
	if err != nil {
		t.Fatal(err)
	}
	req := NewRequest(9, "calc", "Add", []*message.Field{IntParam(1), IntParam(2)})
	wire, err := codec.Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	back, err := codec.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "GIOPRequest" {
		t.Errorf("parsed %q", back.Name)
	}
	if op, _ := back.GetString("Operation"); op != "Add" {
		t.Errorf("operation = %q", op)
	}
	reply := NewReply(9, StatusNoException, []*message.Field{IntParam(3)})
	wire2, err := codec.Compose(reply)
	if err != nil {
		t.Fatal(err)
	}
	back2, err := codec.Parse(wire2)
	if err != nil {
		t.Fatal(err)
	}
	if back2.Name != "GIOPReply" {
		t.Errorf("parsed %q", back2.Name)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", calcHandler)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", "calc"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func BenchmarkInvokeAdd(b *testing.B) {
	srv, err := Serve("127.0.0.1:0", calcHandler)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), "calc")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Invoke("Add", IntParam(20), IntParam(22)); err != nil {
			b.Fatal(err)
		}
	}
}
