package giop

import (
	"testing"

	"starlink/internal/message"
	"starlink/internal/testutil"
)

// TestRoundTripAllocBudget guards the pooled bitWriter: composing and
// parsing one GIOP request must stay within a fixed allocation budget.
func TestRoundTripAllocBudget(t *testing.T) {
	codec, err := NewCodec()
	if err != nil {
		t.Fatal(err)
	}
	req := NewRequest(7, "Adder", "add", []*message.Field{IntParam(2), IntParam(3)})
	allocs := testing.AllocsPerRun(200, func() {
		wire, err := codec.Compose(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := codec.Parse(wire); err != nil {
			t.Fatal(err)
		}
	})
	if testutil.RaceEnabled {
		t.Skipf("race detector enabled; measured %.1f allocs/op unasserted", allocs)
	}
	if allocs > 45 {
		t.Errorf("compose+parse round-trip allocated %.1f times per op, budget 45", allocs)
	}
}
