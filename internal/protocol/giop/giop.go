// Package giop implements the GIOP 1.0 wire protocol (the IIOP message
// layer) with CDR marshalling: the binary middleware of the paper's
// Figs. 4, 5 and 7. Message layouts are described in MDL and interpreted
// by the binary engine — the same spec the mediator loads — and a small
// client/server pair provides the CORBA-style substrate for the Add/Plus
// case study.
package giop

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"starlink/internal/mdl"
	"starlink/internal/mdl/binenc"
	"starlink/internal/message"
	"starlink/internal/network"
)

// MDLDoc is the GIOP message-description document (Fig. 5, with the
// cdrseq parameter encoding described in package binenc).
const MDLDoc = `
# GIOP 1.0 message formats
<MDL:GIOP:binary>
<Message:GIOPRequest>
<Rule:Magic=GIOP>
<Rule:MessageType=0>
<Magic:32:string>
<VersionMajor:8><VersionMinor:8><Flags:8><MessageType:8>
<MessageSize:32>
<RequestID:32><Response:8>
<align:32>
<ObjectKeyLength:32><ObjectKey:ObjectKeyLength>
<OperationLength:32><Operation:OperationLength:string>
<align:64>
<ParameterArray:cdrseq>
<End:Message>

<Message:GIOPReply>
<Rule:Magic=GIOP>
<Rule:MessageType=1>
<Magic:32:string>
<VersionMajor:8><VersionMinor:8><Flags:8><MessageType:8>
<MessageSize:32>
<RequestID:32><ReplyStatus:32>
<align:64>
<ParameterArray:cdrseq>
<End:Message>
`

// Reply status codes (subset of GIOP).
const (
	StatusNoException     = 0
	StatusUserException   = 1
	StatusSystemException = 2
)

// Errors reported by the GIOP layer.
var (
	// ErrRemote is wrapped around exceptions raised by the server.
	ErrRemote = errors.New("giop: remote exception")
	// ErrProtocol is wrapped by protocol violations.
	ErrProtocol = errors.New("giop: protocol error")
)

// NewCodec compiles the GIOP MDL document.
func NewCodec() (mdl.Codec, error) {
	spec, err := mdl.ParseString(MDLDoc)
	if err != nil {
		return nil, fmt.Errorf("giop: parse MDL: %w", err)
	}
	return binenc.New(spec)
}

// Param helpers for building CDR parameter lists.

// IntParam returns an int parameter field.
func IntParam(v int64) *message.Field {
	return message.NewPrimitive("Parameter", message.TypeInt64, v)
}

// StringParam returns a string parameter field.
func StringParam(s string) *message.Field {
	return message.NewPrimitive("Parameter", message.TypeString, s)
}

// BoolParam returns a bool parameter field.
func BoolParam(b bool) *message.Field {
	return message.NewPrimitive("Parameter", message.TypeBool, b)
}

// DoubleParam returns a double parameter field.
func DoubleParam(f float64) *message.Field {
	return message.NewPrimitive("Parameter", message.TypeFloat64, f)
}

// NewRequest builds a GIOPRequest abstract message.
func NewRequest(requestID uint64, objectKey, operation string, params []*message.Field) *message.Message {
	return message.New("GIOPRequest",
		message.NewPrimitive("Magic", message.TypeString, "GIOP"),
		message.NewPrimitive("VersionMajor", message.TypeUint64, 1),
		message.NewPrimitive("VersionMinor", message.TypeUint64, 0),
		message.NewPrimitive("Flags", message.TypeUint64, 0),
		message.NewPrimitive("MessageType", message.TypeUint64, 0),
		message.NewPrimitive("MessageSize", message.TypeUint64, 0),
		message.NewPrimitive("RequestID", message.TypeUint64, requestID),
		message.NewPrimitive("Response", message.TypeUint64, 1),
		message.NewPrimitive("ObjectKey", message.TypeBytes, []byte(objectKey)),
		message.NewPrimitive("Operation", message.TypeString, operation),
		message.NewArray("ParameterArray", params...),
	)
}

// NewReply builds a GIOPReply abstract message.
func NewReply(requestID uint64, status uint64, results []*message.Field) *message.Message {
	return message.New("GIOPReply",
		message.NewPrimitive("Magic", message.TypeString, "GIOP"),
		message.NewPrimitive("VersionMajor", message.TypeUint64, 1),
		message.NewPrimitive("VersionMinor", message.TypeUint64, 0),
		message.NewPrimitive("Flags", message.TypeUint64, 0),
		message.NewPrimitive("MessageType", message.TypeUint64, 1),
		message.NewPrimitive("MessageSize", message.TypeUint64, 0),
		message.NewPrimitive("RequestID", message.TypeUint64, requestID),
		message.NewPrimitive("ReplyStatus", message.TypeUint64, status),
		message.NewArray("ParameterArray", results...),
	)
}

// Client invokes operations on a remote GIOP object.
type Client struct {
	conn      network.Conn
	codec     mdl.Codec
	objectKey string
	nextID    uint64
	timeout   time.Duration
}

// Dial connects to a GIOP server and targets objectKey.
func Dial(addr, objectKey string) (*Client, error) {
	codec, err := NewCodec()
	if err != nil {
		return nil, err
	}
	var eng network.Engine
	conn, err := eng.Dial(network.Semantics{Transport: "tcp", Mode: "sync"}, addr, network.GIOPFramer{})
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, codec: codec, objectKey: objectKey, nextID: 1, timeout: 10 * time.Second}, nil
}

// Invoke calls operation synchronously (the IIOP client behaviour of
// Fig. 4a) and returns the reply parameters.
func (c *Client) Invoke(operation string, params ...*message.Field) ([]*message.Field, error) {
	id := c.nextID
	c.nextID++
	wire, err := c.codec.Compose(NewRequest(id, c.objectKey, operation, params))
	if err != nil {
		return nil, fmt.Errorf("giop: compose %s: %w", operation, err)
	}
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return nil, err
	}
	if err := c.conn.Send(wire); err != nil {
		return nil, fmt.Errorf("giop: send %s: %w", operation, err)
	}
	data, err := c.conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("giop: recv reply for %s: %w", operation, err)
	}
	reply, err := c.codec.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("giop: parse reply: %w", err)
	}
	if reply.Name != "GIOPReply" {
		return nil, fmt.Errorf("%w: expected GIOPReply, got %s", ErrProtocol, reply.Name)
	}
	gotID, _ := reply.GetInt("RequestID")
	if uint64(gotID) != id {
		return nil, fmt.Errorf("%w: reply id %d for request %d", ErrProtocol, gotID, id)
	}
	status, _ := reply.GetInt("ReplyStatus")
	arr, err := reply.Lookup("ParameterArray")
	if err != nil {
		return nil, fmt.Errorf("%w: reply without parameters", ErrProtocol)
	}
	if status != StatusNoException {
		msg := "unknown"
		if len(arr.Children) > 0 {
			msg = arr.Children[0].ValueString()
		}
		return nil, fmt.Errorf("%w: status %d: %s", ErrRemote, status, msg)
	}
	return arr.Children, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Handler serves one operation invocation. Returning an error raises a
// system exception carrying the error text.
type Handler func(objectKey, operation string, params []*message.Field) ([]*message.Field, error)

// Server is a GIOP server: one handler dispatched for every request.
// Close stops accepting and joins all connection goroutines.
type Server struct {
	listener network.Listener
	codec    mdl.Codec
	handler  Handler

	mu     sync.Mutex
	conns  map[network.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve binds addr and serves h in the background.
func Serve(addr string, h Handler) (*Server, error) {
	codec, err := NewCodec()
	if err != nil {
		return nil, err
	}
	var eng network.Engine
	l, err := eng.Listen(network.Semantics{Transport: "tcp", Mode: "sync"}, addr, network.GIOPFramer{})
	if err != nil {
		return nil, err
	}
	s := &Server{listener: l, codec: codec, handler: h, conns: make(map[network.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn network.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		data, err := conn.Recv()
		if err != nil {
			return
		}
		reply := s.handleRequest(data)
		wire, err := s.codec.Compose(reply)
		if err != nil {
			return
		}
		if err := conn.Send(wire); err != nil {
			return
		}
	}
}

func (s *Server) handleRequest(data []byte) *message.Message {
	req, err := s.codec.Parse(data)
	if err != nil || req.Name != "GIOPRequest" {
		return NewReply(0, StatusSystemException, []*message.Field{StringParam("malformed request")})
	}
	id, _ := req.GetInt("RequestID")
	op, _ := req.GetString("Operation")
	keyField := req.Field("ObjectKey")
	key := ""
	if keyField != nil {
		key = keyField.ValueString()
	}
	var params []*message.Field
	if arr, err := req.Lookup("ParameterArray"); err == nil {
		params = arr.Children
	}
	results, err := s.handler(key, op, params)
	if err != nil {
		return NewReply(uint64(id), StatusSystemException, []*message.Field{StringParam(err.Error())})
	}
	return NewReply(uint64(id), StatusNoException, results)
}

// Close stops the server and waits for in-flight work.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}
