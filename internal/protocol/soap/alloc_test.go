package soap

import (
	"testing"

	"starlink/internal/testutil"
)

// TestRoundTripAllocBudget guards the pooled envelope encoder: one
// request marshal+parse round-trip must stay within a fixed allocation
// budget.
func TestRoundTripAllocBudget(t *testing.T) {
	params := []Param{{Name: "a", Value: "2"}, {Name: "b", Value: "3"}}
	allocs := testing.AllocsPerRun(200, func() {
		wire, err := MarshalRequest("add", params)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := ParseRequest(wire); err != nil {
			t.Fatal(err)
		}
	})
	if testutil.RaceEnabled {
		t.Skipf("race detector enabled; measured %.1f allocs/op unasserted", allocs)
	}
	if allocs > 110 {
		t.Errorf("marshal+parse round-trip allocated %.1f times per op, budget 110", allocs)
	}
}
