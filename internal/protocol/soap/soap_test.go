package soap

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	body, err := MarshalRequest("Plus", []Param{{Name: "x", Value: "20"}, {Name: "y", Value: "22"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), EnvelopeNS) {
		t.Error("envelope namespace missing")
	}
	method, params, err := ParseRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if method != "Plus" {
		t.Errorf("method = %q", method)
	}
	if len(params) != 2 || params[0] != (Param{"x", "20"}) || params[1] != (Param{"y", "22"}) {
		t.Errorf("params = %+v", params)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	body, err := MarshalResponse("Plus", []Param{{Name: "result", Value: "42"}})
	if err != nil {
		t.Fatal(err)
	}
	method, results, err := ParseResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if method != "Plus" || results[0].Value != "42" {
		t.Errorf("response = %q %+v", method, results)
	}
}

func TestFaultRoundTrip(t *testing.T) {
	body, err := MarshalFault(&Fault{Code: "Server", Message: "kaput"})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = ParseResponse(body)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v", err)
	}
	if f.Code != "Server" || f.Message != "kaput" {
		t.Errorf("fault = %+v", f)
	}
	if !strings.Contains(f.Error(), "kaput") {
		t.Errorf("Error() = %q", f.Error())
	}
	// Faults surface on the request path too.
	if _, _, err := ParseRequest(body); !errors.As(err, &f) {
		t.Errorf("request-path fault err = %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"<notsoap/>",
		"<Envelope></Envelope>",
		"<Envelope><Body></Body></Envelope>",
	}
	for _, raw := range cases {
		if _, _, err := ParseRequest([]byte(raw)); !errors.Is(err, ErrMalformed) {
			t.Errorf("ParseRequest(%q) err = %v", raw, err)
		}
	}
}

func TestEscaping(t *testing.T) {
	body, err := MarshalRequest("Op", []Param{{Name: "text", Value: "<b>&\"</b>"}})
	if err != nil {
		t.Fatal(err)
	}
	_, params, err := ParseRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if params[0].Value != "<b>&\"</b>" {
		t.Errorf("value = %q", params[0].Value)
	}
}

func TestNamespacedEnvelopeParses(t *testing.T) {
	raw := `<?xml version="1.0"?>
<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">
  <soap:Body><Add><x>1</x><y>2</y></Add></soap:Body>
</soap:Envelope>`
	method, params, err := ParseRequest([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if method != "Add" || len(params) != 2 {
		t.Errorf("parsed %q %+v", method, params)
	}
}

func TestClientServerEndToEnd(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", "/soap", map[string]Operation{
		"Plus": func(params []Param) ([]Param, *Fault) {
			if len(params) != 2 {
				return nil, &Fault{Code: "Client", Message: "want 2 params"}
			}
			x, err1 := strconv.Atoi(params[0].Value)
			y, err2 := strconv.Atoi(params[1].Value)
			if err1 != nil || err2 != nil {
				return nil, &Fault{Code: "Client", Message: "non-integer"}
			}
			return []Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(srv.Addr(), "/soap")
	defer c.Close()

	results, err := c.Call("Plus", Param{"x", "20"}, Param{"y", "22"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Value != "42" {
		t.Errorf("results = %+v", results)
	}

	var f *Fault
	if _, err := c.Call("Nope"); !errors.As(err, &f) {
		t.Errorf("unknown op err = %v", err)
	}
	if _, err := c.Call("Plus", Param{"x", "a"}, Param{"y", "b"}); !errors.As(err, &f) || f.Code != "Client" {
		t.Errorf("bad params err = %v", err)
	}
}

func TestServerWrongEndpoint(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", "/soap", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr(), "/nope")
	defer c.Close()
	if _, err := c.Call("Anything"); err == nil {
		t.Error("wrong endpoint accepted")
	}
}

func BenchmarkMarshalRequest(b *testing.B) {
	params := []Param{{"x", "20"}, {"y", "22"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MarshalRequest("Plus", params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseRequest(b *testing.B) {
	body, _ := MarshalRequest("Plus", []Param{{"x", "20"}, {"y", "22"}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ParseRequest(body); err != nil {
			b.Fatal(err)
		}
	}
}
