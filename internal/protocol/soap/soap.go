// Package soap implements SOAP 1.1 RPC-style messaging over the httpwire
// substrate: envelope encoding, a client and a dispatching server. The
// case study's second Flickr client speaks SOAP (Section 5.1), and the
// Fig. 7/8 addition service is a SOAP service.
package soap

import (
	"errors"
	"fmt"
	"strings"

	"starlink/internal/mdl/xmlenc"
	"starlink/internal/message"
	"starlink/internal/protocol/httpwire"
)

// EnvelopeNS is the SOAP 1.1 envelope namespace.
const EnvelopeNS = "http://schemas.xmlsoap.org/soap/envelope/"

// Errors reported by the SOAP layer.
var (
	// ErrMalformed is wrapped by all decode failures.
	ErrMalformed = errors.New("soap: malformed envelope")
	// ErrNoSuchMethod is the fault for unregistered operations.
	ErrNoSuchMethod = errors.New("soap: no such method")
)

// Param is one named argument or result, in document order.
type Param struct {
	// Name is the element name.
	Name string
	// Value is the text content.
	Value string
}

// Fault is a SOAP fault.
type Fault struct {
	// Code is the faultcode ("Client", "Server", ...).
	Code string
	// Message is the faultstring.
	Message string
}

// Error implements error.
func (f *Fault) Error() string { return fmt.Sprintf("soap fault %s: %s", f.Code, f.Message) }

func envelope(bodyChild *message.Field) ([]byte, error) {
	root := message.NewStruct("Envelope",
		message.NewPrimitive("@xmlns", message.TypeString, EnvelopeNS),
		message.NewStruct("Body", bodyChild),
	)
	return xmlenc.EncodeDoc(root)
}

// MarshalRequest renders an RPC request envelope: the method element with
// one child element per parameter.
func MarshalRequest(method string, params []Param) ([]byte, error) {
	op := message.NewStruct(method)
	for _, p := range params {
		op.Add(message.NewPrimitive(p.Name, message.TypeString, p.Value))
	}
	return envelope(op)
}

// MarshalResponse renders the conventional <MethodResponse> envelope.
func MarshalResponse(method string, results []Param) ([]byte, error) {
	op := message.NewStruct(method + "Response")
	for _, p := range results {
		op.Add(message.NewPrimitive(p.Name, message.TypeString, p.Value))
	}
	return envelope(op)
}

// MarshalFault renders a fault envelope.
func MarshalFault(f *Fault) ([]byte, error) {
	return envelope(message.NewStruct("Fault",
		message.NewPrimitive("faultcode", message.TypeString, f.Code),
		message.NewPrimitive("faultstring", message.TypeString, f.Message),
	))
}

// bodyElement unwraps Envelope/Body and returns the single operation
// element.
func bodyElement(data []byte) (*message.Field, error) {
	root, err := xmlenc.DecodeTree(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if root.Label != "Envelope" {
		return nil, fmt.Errorf("%w: root %q", ErrMalformed, root.Label)
	}
	body := root.Child("Body")
	if body == nil {
		return nil, fmt.Errorf("%w: no Body", ErrMalformed)
	}
	for _, c := range body.Children {
		if !strings.HasPrefix(c.Label, "@") {
			return c, nil
		}
	}
	return nil, fmt.Errorf("%w: empty Body", ErrMalformed)
}

func fieldParams(op *message.Field) []Param {
	var out []Param
	for _, c := range op.Children {
		if strings.HasPrefix(c.Label, "@") || c.Label == "#text" {
			continue
		}
		out = append(out, Param{Name: c.Label, Value: c.ValueString()})
	}
	return out
}

// ParseRequest decodes an RPC request envelope.
func ParseRequest(data []byte) (method string, params []Param, err error) {
	op, err := bodyElement(data)
	if err != nil {
		return "", nil, err
	}
	if op.Label == "Fault" {
		return "", nil, parseFault(op)
	}
	return op.Label, fieldParams(op), nil
}

// ParseResponse decodes a response envelope, returning the result params
// or a *Fault error.
func ParseResponse(data []byte) (method string, results []Param, err error) {
	op, err := bodyElement(data)
	if err != nil {
		return "", nil, err
	}
	if op.Label == "Fault" {
		return "", nil, parseFault(op)
	}
	return strings.TrimSuffix(op.Label, "Response"), fieldParams(op), nil
}

func parseFault(op *message.Field) error {
	f := &Fault{}
	if c := op.Child("faultcode"); c != nil {
		f.Code = c.ValueString()
	}
	if c := op.Child("faultstring"); c != nil {
		f.Message = c.ValueString()
	}
	return f
}

// Client calls SOAP operations at a fixed HTTP endpoint.
type Client struct {
	http *httpwire.Client
	path string
}

// NewClient targets addr ("host:port") and path (e.g. "/soap").
func NewClient(addr, path string) *Client {
	return &Client{http: &httpwire.Client{Addr: addr}, path: path}
}

// Call invokes method with params and returns the response params.
func (c *Client) Call(method string, params ...Param) ([]Param, error) {
	body, err := MarshalRequest(method, params)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(&httpwire.Request{
		Method: "POST",
		Target: c.path,
		Headers: map[string]string{
			"Content-Type": "text/xml; charset=utf-8",
			"SOAPAction":   `"` + method + `"`,
		},
		Body: body,
	})
	if err != nil {
		return nil, fmt.Errorf("soap: call %s: %w", method, err)
	}
	if resp.Status != 200 && resp.Status != 500 {
		return nil, fmt.Errorf("soap: call %s: HTTP %d", method, resp.Status)
	}
	_, results, err := ParseResponse(resp.Body)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Close releases the client connection.
func (c *Client) Close() error { return c.http.Close() }

// Operation handles one SOAP operation.
type Operation func(params []Param) ([]Param, *Fault)

// Server dispatches SOAP requests to registered operations.
type Server struct {
	http *httpwire.Server
	ops  map[string]Operation
}

// NewServer starts a SOAP server at addr/path.
func NewServer(addr, path string, ops map[string]Operation) (*Server, error) {
	s := &Server{ops: ops}
	hs, err := httpwire.Serve(addr, func(req *httpwire.Request) *httpwire.Response {
		if req.Method != "POST" || req.Path() != path {
			return &httpwire.Response{Status: 404, Body: []byte("not a SOAP endpoint")}
		}
		return s.dispatch(req.Body)
	})
	if err != nil {
		return nil, err
	}
	s.http = hs
	return s, nil
}

func (s *Server) dispatch(body []byte) *httpwire.Response {
	method, params, err := ParseRequest(body)
	if err != nil {
		return faultResponse(&Fault{Code: "Client", Message: err.Error()})
	}
	op, ok := s.ops[method]
	if !ok {
		return faultResponse(&Fault{Code: "Client", Message: ErrNoSuchMethod.Error() + ": " + method})
	}
	results, fault := op(params)
	if fault != nil {
		return faultResponse(fault)
	}
	out, err := MarshalResponse(method, results)
	if err != nil {
		return faultResponse(&Fault{Code: "Server", Message: err.Error()})
	}
	return &httpwire.Response{
		Status:  200,
		Headers: map[string]string{"Content-Type": "text/xml; charset=utf-8"},
		Body:    out,
	}
}

func faultResponse(f *Fault) *httpwire.Response {
	out, err := MarshalFault(f)
	if err != nil {
		return &httpwire.Response{Status: 500, Body: []byte(err.Error())}
	}
	return &httpwire.Response{
		Status:  500,
		Headers: map[string]string{"Content-Type": "text/xml; charset=utf-8"},
		Body:    out,
	}
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.http.Addr() }

// Close shuts the server down.
func (s *Server) Close() error { return s.http.Close() }
