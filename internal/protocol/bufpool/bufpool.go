// Package bufpool is the shared encode-buffer pool for the wire codecs
// (httpwire, the XML and binary MDL engines, and the RPC protocol
// layers). Every Marshal/Compose on the mediation hot path runs per
// message, and the engine retains the returned wire bytes (fault
// recovery replays the last request), so codecs cannot hand out their
// scratch buffers directly. The discipline is: render into a pooled
// buffer, copy out a right-sized slice, return the buffer to the pool.
// The copy is one allocation of exactly the message size; the render
// scratch — which grows geometrically and dominated the old per-call
// cost — is amortised away.
package bufpool

import (
	"bytes"
	"sync"
)

// maxRetain bounds the capacity of buffers returned to the pool. A
// single oversized message (e.g. a photo feed) would otherwise pin its
// high-water-mark buffer forever.
const maxRetain = 64 << 10

var pool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Get returns an empty buffer. Callers must return it with Put and must
// not retain its contents past the Put — copy out with Bytes first.
func Get() *bytes.Buffer {
	return pool.Get().(*bytes.Buffer)
}

// Put resets b and returns it to the pool. Buffers that grew past
// maxRetain are dropped instead, so one huge message does not pin its
// scratch space for the life of the process.
func Put(b *bytes.Buffer) {
	if b == nil || b.Cap() > maxRetain {
		return
	}
	b.Reset()
	pool.Put(b)
}

// Bytes copies b's contents into a fresh right-sized slice, safe to
// retain after the buffer is pooled again.
func Bytes(b *bytes.Buffer) []byte {
	return append([]byte(nil), b.Bytes()...)
}
