package httpwire

import (
	"testing"

	"starlink/internal/testutil"
)

// TestRoundTripAllocBudget guards the pooled Marshal path: one
// request/response marshal+parse round-trip must stay within a fixed
// allocation budget, so buffer-pool regressions show up as test
// failures rather than throughput loss.
func TestRoundTripAllocBudget(t *testing.T) {
	req := &Request{
		Method: "POST",
		Target: "/services/rest/?method=flickr.photos.search",
		Headers: map[string]string{
			"Host":         "api.flickr.com",
			"Content-Type": "application/x-www-form-urlencoded",
		},
		Body: []byte("text=shibuya&per_page=2"),
	}
	resp := &Response{
		Status:  200,
		Headers: map[string]string{"Content-Type": "text/xml"},
		Body:    []byte(`<rsp stat="ok"></rsp>`),
	}
	allocs := testing.AllocsPerRun(200, func() {
		wreq := req.Marshal()
		if _, err := ParseRequest(wreq); err != nil {
			t.Fatal(err)
		}
		wresp := resp.Marshal()
		if _, err := ParseResponse(wresp); err != nil {
			t.Fatal(err)
		}
	})
	if testutil.RaceEnabled {
		t.Skipf("race detector enabled; measured %.1f allocs/op unasserted", allocs)
	}
	if allocs > 22 {
		t.Errorf("request+response round-trip allocated %.1f times per op, budget 22", allocs)
	}
}
