package httpwire

import "testing"

func FuzzParseRequest(f *testing.F) {
	f.Add([]byte("GET /x HTTP/1.1\r\nHost: a\r\n\r\n"))
	f.Add([]byte("POST /p?a=1 HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"))
	f.Add([]byte("M-SEARCH * HTTP/1.1\r\nST: x\r\n\r\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			return
		}
		// Successful parses must survive a marshal/parse round trip.
		back, err := ParseRequest(req.Marshal())
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if back.Method != req.Method || back.Target != req.Target {
			t.Fatalf("round trip changed request line: %q %q", back.Method, back.Target)
		}
		req.Query() // must not panic
	})
}

func FuzzParseResponse(f *testing.F) {
	f.Add([]byte("HTTP/1.1 200 OK\r\n\r\n"))
	f.Add([]byte("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := ParseResponse(data)
		if err != nil {
			return
		}
		if _, err := ParseResponse(resp.Marshal()); err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
	})
}
