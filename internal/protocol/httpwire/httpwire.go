// Package httpwire is a hand-rolled HTTP/1.1 substrate: a wire codec plus
// a small server and client built directly on the network engine, with no
// use of net/http. The simulated Flickr and Picasa services and the
// protocol stacks (XML-RPC, SOAP, REST) run on top of it.
//
// It deliberately duplicates what the text-MDL engine can parse: the
// services use this hand-coded path while the mediator uses MDL-generated
// parsers, which is exactly the boundary the paper draws — and it gives
// the ablation benchmarks a hand-coded baseline to compare the DSL
// against.
package httpwire

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"starlink/internal/network"
	"starlink/internal/protocol/bufpool"
)

// Errors reported by the HTTP substrate.
var (
	// ErrMalformed is wrapped by all parse failures.
	ErrMalformed = errors.New("httpwire: malformed message")
	// ErrServerClosed is returned by Serve after Close.
	ErrServerClosed = errors.New("httpwire: server closed")
)

// Request is a parsed HTTP request.
type Request struct {
	// Method is the verb ("GET", "POST", ...).
	Method string
	// Target is the request target, including any query string.
	Target string
	// Proto is the protocol version ("HTTP/1.1").
	Proto string
	// Headers holds the header fields (first value wins on duplicates).
	Headers map[string]string
	// Body is the message body.
	Body []byte
}

// Path returns the target without its query string.
func (r *Request) Path() string {
	if i := strings.IndexByte(r.Target, '?'); i >= 0 {
		return r.Target[:i]
	}
	return r.Target
}

// Query returns the decoded query parameters.
func (r *Request) Query() map[string][]string {
	out := map[string][]string{}
	i := strings.IndexByte(r.Target, '?')
	if i < 0 {
		return out
	}
	for _, kv := range strings.Split(r.Target[i+1:], "&") {
		if kv == "" {
			continue
		}
		k, v, _ := strings.Cut(kv, "=")
		k = unescape(k)
		out[k] = append(out[k], unescape(v))
	}
	return out
}

// QueryValue returns the first value of a query parameter.
func (r *Request) QueryValue(key string) string {
	vs := r.Query()[key]
	if len(vs) == 0 {
		return ""
	}
	return vs[0]
}

func unescape(s string) string {
	s = strings.ReplaceAll(s, "+", " ")
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '%' && i+2 < len(s) {
			if n, err := strconv.ParseUint(s[i+1:i+3], 16, 8); err == nil {
				b.WriteByte(byte(n))
				i += 2
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// Response is a parsed HTTP response.
type Response struct {
	// Proto is the protocol version.
	Proto string
	// Status is the numeric status code.
	Status int
	// Reason is the status text.
	Reason string
	// Headers holds the header fields.
	Headers map[string]string
	// Body is the message body.
	Body []byte
}

// Marshal renders the request on the wire, deriving Content-Length.
// Rendering goes through the shared encode-buffer pool; the returned
// slice is a right-sized copy the caller owns.
func (r *Request) Marshal() []byte {
	b := bufpool.Get()
	defer bufpool.Put(b)
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	b.WriteString(r.Method)
	b.WriteByte(' ')
	b.WriteString(r.Target)
	b.WriteByte(' ')
	b.WriteString(proto)
	b.WriteString("\r\n")
	writeHeaders(b, r.Headers, len(r.Body))
	b.Write(r.Body)
	return bufpool.Bytes(b)
}

// Marshal renders the response on the wire, deriving Content-Length.
// Like Request.Marshal it renders into a pooled buffer and returns a
// right-sized copy.
func (r *Response) Marshal() []byte {
	b := bufpool.Get()
	defer bufpool.Put(b)
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	reason := r.Reason
	if reason == "" {
		reason = defaultReason(r.Status)
	}
	b.WriteString(proto)
	b.WriteByte(' ')
	b.Write(strconv.AppendInt(b.AvailableBuffer(), int64(r.Status), 10))
	b.WriteByte(' ')
	b.WriteString(reason)
	b.WriteString("\r\n")
	writeHeaders(b, r.Headers, len(r.Body))
	b.Write(r.Body)
	return bufpool.Bytes(b)
}

func writeHeaders(b *bytes.Buffer, headers map[string]string, bodyLen int) {
	keys := make([]string, 0, len(headers))
	for k := range headers {
		if strings.EqualFold(k, "Content-Length") {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteString(": ")
		b.WriteString(headers[k])
		b.WriteString("\r\n")
	}
	b.WriteString("Content-Length: ")
	b.Write(strconv.AppendInt(b.AvailableBuffer(), int64(bodyLen), 10))
	b.WriteString("\r\n\r\n")
}

func defaultReason(status int) string {
	switch status {
	case 200:
		return "OK"
	case 201:
		return "Created"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	default:
		return "Status"
	}
}

// ParseRequest decodes one request message (as framed by
// network.HTTPFramer).
func ParseRequest(data []byte) (*Request, error) {
	line, rest, err := cutLine(string(data))
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformed, line)
	}
	headers, body, err := parseHeadersAndBody(rest)
	if err != nil {
		return nil, err
	}
	return &Request{
		Method: parts[0], Target: parts[1], Proto: parts[2],
		Headers: headers, Body: body,
	}, nil
}

// ParseResponse decodes one response message.
func ParseResponse(data []byte) (*Response, error) {
	line, rest, err := cutLine(string(data))
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, fmt.Errorf("%w: status line %q", ErrMalformed, line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("%w: status %q", ErrMalformed, parts[1])
	}
	reason := ""
	if len(parts) == 3 {
		reason = parts[2]
	}
	headers, body, err := parseHeadersAndBody(rest)
	if err != nil {
		return nil, err
	}
	return &Response{
		Proto: parts[0], Status: status, Reason: reason,
		Headers: headers, Body: body,
	}, nil
}

func cutLine(s string) (line, rest string, err error) {
	line, rest, found := strings.Cut(s, "\r\n")
	if !found {
		return "", "", fmt.Errorf("%w: missing CRLF", ErrMalformed)
	}
	return line, rest, nil
}

func parseHeadersAndBody(s string) (map[string]string, []byte, error) {
	headers := map[string]string{}
	for {
		line, rest, found := strings.Cut(s, "\r\n")
		if !found {
			return nil, nil, fmt.Errorf("%w: header block not terminated", ErrMalformed)
		}
		s = rest
		if line == "" {
			return headers, []byte(s), nil
		}
		k, v, found := strings.Cut(line, ":")
		if !found {
			return nil, nil, fmt.Errorf("%w: header line %q", ErrMalformed, line)
		}
		k = strings.TrimSpace(k)
		if _, dup := headers[k]; !dup {
			headers[k] = strings.TrimSpace(v)
		}
	}
}

// Handler processes one request.
type Handler func(*Request) *Response

// Server is a minimal HTTP server over the network engine. Connections
// are persistent (HTTP/1.1 keep-alive); Close stops accepting, closes
// live connections and waits for all handler goroutines to exit.
type Server struct {
	listener network.Listener
	handler  Handler

	mu     sync.Mutex
	conns  map[network.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve binds addr and starts serving h in the background.
func Serve(addr string, h Handler) (*Server, error) {
	var eng network.Engine
	l, err := eng.Listen(network.Semantics{Transport: "tcp"}, addr, network.HTTPFramer{})
	if err != nil {
		return nil, err
	}
	s := &Server{listener: l, handler: h, conns: make(map[network.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address ("host:port").
func (s *Server) Addr() string { return s.listener.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn network.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		data, err := conn.Recv()
		if err != nil {
			return
		}
		req, err := ParseRequest(data)
		var resp *Response
		if err != nil {
			resp = &Response{Status: 400, Body: []byte(err.Error())}
		} else {
			resp = s.handler(req)
			if resp == nil {
				resp = &Response{Status: 500, Body: []byte("handler returned no response")}
			}
		}
		if err := conn.Send(resp.Marshal()); err != nil {
			return
		}
	}
}

// Close stops the server and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.closed = true
	err := s.listener.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Client issues requests over a persistent connection, reconnecting on
// demand. It is safe for sequential use; guard with a mutex for
// concurrency.
type Client struct {
	// Addr is the server address ("host:port").
	Addr string
	// Timeout bounds one exchange (default 10s).
	Timeout time.Duration

	conn network.Conn
}

// Do sends the request and reads one response.
func (c *Client) Do(req *Request) (*Response, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	if req.Headers == nil {
		req.Headers = map[string]string{}
	}
	if _, ok := req.Headers["Host"]; !ok {
		req.Headers["Host"] = c.Addr
	}
	for attempt := 0; ; attempt++ {
		if c.conn == nil {
			var eng network.Engine
			conn, err := eng.Dial(network.Semantics{Transport: "tcp"}, c.Addr, network.HTTPFramer{})
			if err != nil {
				return nil, err
			}
			c.conn = conn
		}
		if err := c.conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
		if err := c.conn.Send(req.Marshal()); err != nil {
			c.resetConn()
			if attempt == 0 {
				continue // stale keep-alive connection; retry once
			}
			return nil, err
		}
		data, err := c.conn.Recv()
		if err != nil {
			c.resetConn()
			if attempt == 0 {
				continue
			}
			return nil, err
		}
		return ParseResponse(data)
	}
}

func (c *Client) resetConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Close releases the client's connection.
func (c *Client) Close() error {
	c.resetConn()
	return nil
}

// Get is a convenience GET helper.
func (c *Client) Get(target string) (*Response, error) {
	return c.Do(&Request{Method: "GET", Target: target})
}

// Post is a convenience POST helper.
func (c *Client) Post(target, contentType string, body []byte) (*Response, error) {
	return c.Do(&Request{
		Method: "POST", Target: target,
		Headers: map[string]string{"Content-Type": contentType},
		Body:    body,
	})
}
