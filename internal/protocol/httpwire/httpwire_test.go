package httpwire

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRequestMarshalParseRoundTrip(t *testing.T) {
	req := &Request{
		Method: "POST",
		Target: "/services/xmlrpc?a=1&b=two+words&c=%26",
		Headers: map[string]string{
			"Host":         "flickr.example",
			"Content-Type": "text/xml",
		},
		Body: []byte("<methodCall/>"),
	}
	back, err := ParseRequest(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Method != "POST" || back.Target != req.Target || back.Proto != "HTTP/1.1" {
		t.Errorf("request line: %+v", back)
	}
	if back.Headers["Content-Type"] != "text/xml" {
		t.Errorf("headers: %v", back.Headers)
	}
	if back.Headers["Content-Length"] != "13" {
		t.Errorf("content length: %v", back.Headers["Content-Length"])
	}
	if string(back.Body) != "<methodCall/>" {
		t.Errorf("body: %q", back.Body)
	}
	if back.Path() != "/services/xmlrpc" {
		t.Errorf("path: %q", back.Path())
	}
	q := back.Query()
	if q["a"][0] != "1" || q["b"][0] != "two words" || q["c"][0] != "&" {
		t.Errorf("query: %v", q)
	}
	if back.QueryValue("a") != "1" || back.QueryValue("zz") != "" {
		t.Error("QueryValue")
	}
}

func TestResponseMarshalParseRoundTrip(t *testing.T) {
	resp := &Response{
		Status:  200,
		Headers: map[string]string{"Content-Type": "application/atom+xml"},
		Body:    []byte("<feed/>"),
	}
	back, err := ParseResponse(resp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Status != 200 || back.Reason != "OK" {
		t.Errorf("status: %d %q", back.Status, back.Reason)
	}
	if string(back.Body) != "<feed/>" {
		t.Errorf("body: %q", back.Body)
	}
}

func TestDefaultReasons(t *testing.T) {
	for status, want := range map[int]string{
		200: "OK", 201: "Created", 400: "Bad Request",
		404: "Not Found", 500: "Internal Server Error", 599: "Status",
	} {
		r := Response{Status: status}
		if got, err := ParseResponse(r.Marshal()); err != nil || got.Reason != want {
			t.Errorf("status %d reason = %v (%v)", status, got, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	badRequests := []string{
		"",
		"GET\r\n\r\n",
		"GET /x\r\n\r\n",
		"GET /x NOTHTTP\r\n\r\n",
		"GET /x HTTP/1.1\r\nbroken\r\n\r\n",
		"GET /x HTTP/1.1\r\nHost: a",
	}
	for _, raw := range badRequests {
		if _, err := ParseRequest([]byte(raw)); !errors.Is(err, ErrMalformed) {
			t.Errorf("ParseRequest(%q) err = %v", raw, err)
		}
	}
	badResponses := []string{
		"",
		"HTTP/1.1\r\n\r\n",
		"NOTHTTP 200 OK\r\n\r\n",
		"HTTP/1.1 abc OK\r\n\r\n",
		"HTTP/1.1 200 OK\r\nbroken\r\n\r\n",
	}
	for _, raw := range badResponses {
		if _, err := ParseResponse([]byte(raw)); !errors.Is(err, ErrMalformed) {
			t.Errorf("ParseResponse(%q) err = %v", raw, err)
		}
	}
}

func TestDuplicateHeaderFirstWins(t *testing.T) {
	raw := "GET /x HTTP/1.1\r\nX-A: first\r\nX-A: second\r\n\r\n"
	req, err := ParseRequest([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if req.Headers["X-A"] != "first" {
		t.Errorf("X-A = %q", req.Headers["X-A"])
	}
}

func startEcho(t *testing.T) *Server {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", func(req *Request) *Response {
		return &Response{
			Status:  200,
			Headers: map[string]string{"X-Echo-Path": req.Path()},
			Body:    append([]byte("echo:"), req.Body...),
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestServerClientExchange(t *testing.T) {
	srv := startEcho(t)
	c := &Client{Addr: srv.Addr()}
	defer c.Close()
	resp, err := c.Post("/p", "text/plain", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "echo:hello" {
		t.Errorf("resp = %d %q", resp.Status, resp.Body)
	}
	// Keep-alive: second request on the same connection.
	resp2, err := c.Get("/q?x=1")
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Headers["X-Echo-Path"] != "/q" {
		t.Errorf("second path = %q", resp2.Headers["X-Echo-Path"])
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := startEcho(t)
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &Client{Addr: srv.Addr()}
			defer c.Close()
			for j := 0; j < 10; j++ {
				body := fmt.Sprintf("c%d-%d", i, j)
				resp, err := c.Post("/x", "text/plain", []byte(body))
				if err != nil {
					errs <- err
					return
				}
				if string(resp.Body) != "echo:"+body {
					errs <- fmt.Errorf("bad echo %q", resp.Body)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerMalformedRequestGets400(t *testing.T) {
	srv := startEcho(t)
	// Send a syntactically framed but semantically broken request.
	c := &Client{Addr: srv.Addr()}
	defer c.Close()
	// Bypass Marshal: craft a raw message with a bad request line through
	// the underlying machinery by using a Request whose method embeds the
	// whole line. Easier: open a raw exchange via a handler check.
	resp, err := c.Do(&Request{Method: "BAD LINE EXTRA", Target: "/x"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 400 {
		t.Errorf("status = %d, want 400", resp.Status)
	}
}

func TestServerNilHandlerResponse(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(*Request) *Response { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := &Client{Addr: srv.Addr()}
	defer c.Close()
	resp, err := c.Get("/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 500 {
		t.Errorf("status = %d, want 500", resp.Status)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(*Request) *Response { return &Response{Status: 200} })
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); !errors.Is(err, ErrServerClosed) {
		t.Errorf("second close err = %v", err)
	}
}

func TestClientReconnectsAfterServerRestart(t *testing.T) {
	srv := startEcho(t)
	addr := srv.Addr()
	c := &Client{Addr: addr}
	defer c.Close()
	if _, err := c.Get("/a"); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv2, err := Serve(addr, func(req *Request) *Response {
		return &Response{Status: 200, Body: []byte("v2")}
	})
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	resp, err := c.Get("/b")
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "v2" {
		t.Errorf("body = %q", resp.Body)
	}
}

func TestUnescape(t *testing.T) {
	for in, want := range map[string]string{
		"a+b":    "a b",
		"a%20b":  "a b",
		"a%2Gb":  "a%2Gb",
		"%":      "%",
		"tree":   "tree",
		"a%26b=": "a&b=",
	} {
		if got := unescape(in); got != want {
			t.Errorf("unescape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestQueryEdgeCases(t *testing.T) {
	req := &Request{Target: "/p?&a=1&&b&c=", Method: "GET"}
	q := req.Query()
	if q["a"][0] != "1" || q["b"][0] != "" || q["c"][0] != "" {
		t.Errorf("query = %v", q)
	}
	empty := &Request{Target: "/p", Method: "GET"}
	if len(empty.Query()) != 0 {
		t.Error("no-query target produced params")
	}
}

func BenchmarkHandCodedParseRequest(b *testing.B) {
	raw := (&Request{
		Method: "GET",
		Target: "/data/feed/api/all?q=tree&max-results=3",
		Headers: map[string]string{
			"Host": "x", "Accept": "*/*",
		},
	}).Marshal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRequest(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerRoundTrip(b *testing.B) {
	srv, err := Serve("127.0.0.1:0", func(req *Request) *Response {
		return &Response{Status: 200, Body: req.Body}
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c := &Client{Addr: srv.Addr()}
	defer c.Close()
	body := []byte(strings.Repeat("x", 256))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Post("/x", "text/plain", body); err != nil {
			b.Fatal(err)
		}
	}
}
