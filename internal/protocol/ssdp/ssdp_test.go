package ssdp

import (
	"errors"
	"strings"
	"testing"
)

const printerURN = "urn:schemas-upnp-org:service:Printer:1"

func startResponder(t *testing.T) *Responder {
	t.Helper()
	r, err := NewResponder("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	r.Register(SearchResponse{
		ST:       printerURN,
		USN:      "uuid:p1::" + printerURN,
		Location: "http://printer1.example/desc.xml",
	})
	r.Register(SearchResponse{
		ST:       printerURN,
		USN:      "uuid:p2::" + printerURN,
		Location: "http://printer2.example/desc.xml",
	})
	return r
}

func TestSearchRoundTrip(t *testing.T) {
	r := startResponder(t)
	responses, err := Search(r.Addr(), printerURN, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(responses) != 2 {
		t.Fatalf("responses = %+v", responses)
	}
	if responses[0].Location != "http://printer1.example/desc.xml" {
		t.Errorf("location = %q", responses[0].Location)
	}
	if responses[1].USN != "uuid:p2::"+printerURN {
		t.Errorf("usn = %q", responses[1].USN)
	}
}

func TestSearchAll(t *testing.T) {
	r := startResponder(t)
	responses, err := Search(r.Addr(), "ssdp:all", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(responses) != 2 {
		t.Errorf("ssdp:all responses = %d", len(responses))
	}
}

func TestSearchNoMatch(t *testing.T) {
	r := startResponder(t)
	if _, err := Search(r.Addr(), "urn:nothing", 1, 1); !errors.Is(err, ErrNoResponse) {
		t.Errorf("err = %v, want ErrNoResponse", err)
	}
}

func TestMessageMarshalParse(t *testing.T) {
	req := SearchRequest{ST: printerURN, MX: 2}
	wire := req.Marshal()
	s := string(wire)
	if !strings.HasPrefix(s, "M-SEARCH * HTTP/1.1\r\n") {
		t.Errorf("request line: %q", s)
	}
	if !strings.Contains(s, `MAN: "ssdp:discover"`) {
		t.Errorf("MAN header missing: %q", s)
	}
	back, err := ParseSearch(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back != req {
		t.Errorf("round trip = %+v", back)
	}

	resp := SearchResponse{ST: printerURN, USN: "uuid:x", Location: "http://x"}
	rback, err := ParseResponse(resp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if rback != resp {
		t.Errorf("response round trip = %+v", rback)
	}
}

func TestParseErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		[]byte("GET / HTTP/1.1\r\n\r\n"),
		[]byte("M-SEARCH /wrong HTTP/1.1\r\n\r\n"),
		[]byte("M-SEARCH * HTTP/1.1\r\nMX: 1\r\n\r\n"), // no ST
	}
	for _, raw := range bad {
		if _, err := ParseSearch(raw); !errors.Is(err, ErrMalformed) {
			t.Errorf("ParseSearch(%q) err = %v", raw, err)
		}
	}
	if _, err := ParseResponse([]byte("HTTP/1.1 404 Not Found\r\n\r\n")); !errors.Is(err, ErrMalformed) {
		t.Errorf("non-200 response err = %v", err)
	}
	if _, err := ParseResponse([]byte("junk")); !errors.Is(err, ErrMalformed) {
		t.Errorf("junk response err = %v", err)
	}
}

func TestResponderIgnoresGarbage(t *testing.T) {
	r := startResponder(t)
	// Garbage datagrams must not kill the responder.
	responses, err := Search(r.Addr(), printerURN, 1, 1)
	if err != nil || len(responses) != 1 {
		t.Fatalf("pre-garbage search: %v", err)
	}
	// (Search ignores anything unparsable; the responder ignores non
	// M-SEARCH datagrams by construction, verified by the next search.)
	responses, err = Search(r.Addr(), printerURN, 1, 1)
	if err != nil || len(responses) != 1 {
		t.Fatalf("post-garbage search: %v", err)
	}
}

func TestResponderCloseIdempotent(t *testing.T) {
	r, err := NewResponder("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
