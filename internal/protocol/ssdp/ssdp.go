// Package ssdp implements a UPnP Simple Service Discovery Protocol
// substrate (simplified): M-SEARCH requests and unicast 200 OK responses
// over UDP, in the HTTP-like text format. Together with the slp package
// it provides the heterogeneous discovery pair that the Starlink lineage
// (ICDCS'11) bridged; here the pair is *mediated* — the service-type
// vocabularies differ, so a protocol-level bridge alone would not do.
package ssdp

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"starlink/internal/network"
	"starlink/internal/protocol/httpwire"
)

// Errors reported by the SSDP layer.
var (
	// ErrNoResponse is returned when a search times out.
	ErrNoResponse = errors.New("ssdp: no response")
	// ErrMalformed is wrapped by message decode failures.
	ErrMalformed = errors.New("ssdp: malformed message")
)

// SearchRequest is an M-SEARCH message.
type SearchRequest struct {
	// ST is the search target (service type URN).
	ST string
	// MX is the maximum response delay in seconds.
	MX int
}

// Marshal renders the M-SEARCH datagram.
func (s SearchRequest) Marshal() []byte {
	req := &httpwire.Request{
		Method: "M-SEARCH",
		Target: "*",
		Headers: map[string]string{
			"HOST": "239.255.255.250:1900",
			"MAN":  `"ssdp:discover"`,
			"MX":   fmt.Sprint(s.MX),
			"ST":   s.ST,
		},
	}
	return req.Marshal()
}

// ParseSearch decodes an M-SEARCH datagram.
func ParseSearch(data []byte) (SearchRequest, error) {
	req, err := httpwire.ParseRequest(data)
	if err != nil {
		return SearchRequest{}, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if req.Method != "M-SEARCH" || req.Target != "*" {
		return SearchRequest{}, fmt.Errorf("%w: %s %s", ErrMalformed, req.Method, req.Target)
	}
	var s SearchRequest
	s.ST = req.Headers["ST"]
	fmt.Sscanf(req.Headers["MX"], "%d", &s.MX)
	if s.ST == "" {
		return SearchRequest{}, fmt.Errorf("%w: missing ST", ErrMalformed)
	}
	return s, nil
}

// SearchResponse is a unicast M-SEARCH answer.
type SearchResponse struct {
	// ST echoes the search target.
	ST string
	// USN is the unique service name.
	USN string
	// Location is the service's description/control URL.
	Location string
}

// Marshal renders the response datagram.
func (s SearchResponse) Marshal() []byte {
	resp := &httpwire.Response{
		Status: 200,
		Reason: "OK",
		Headers: map[string]string{
			"CACHE-CONTROL": "max-age=1800",
			"ST":            s.ST,
			"USN":           s.USN,
			"LOCATION":      s.Location,
			"EXT":           "",
		},
	}
	return resp.Marshal()
}

// ParseResponse decodes a response datagram.
func ParseResponse(data []byte) (SearchResponse, error) {
	resp, err := httpwire.ParseResponse(data)
	if err != nil {
		return SearchResponse{}, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if resp.Status != 200 {
		return SearchResponse{}, fmt.Errorf("%w: status %d", ErrMalformed, resp.Status)
	}
	return SearchResponse{
		ST:       resp.Headers["ST"],
		USN:      resp.Headers["USN"],
		Location: resp.Headers["LOCATION"],
	}, nil
}

// Responder answers M-SEARCH requests for registered services over UDP.
type Responder struct {
	ep network.PacketEndpoint

	mu       sync.Mutex
	services map[string][]SearchResponse
	closed   bool
	done     chan struct{}
}

// NewResponder binds addr (a plain UDP address; pass a multicast group
// with Semantics.Multicast in deployments) and starts answering.
func NewResponder(addr string) (*Responder, error) {
	var eng network.Engine
	ep, err := eng.ListenPacket(network.Semantics{Transport: "udp"}, addr)
	if err != nil {
		return nil, err
	}
	r := &Responder{
		ep:       ep,
		services: make(map[string][]SearchResponse),
		done:     make(chan struct{}),
	}
	go r.serve()
	return r, nil
}

// Addr returns the responder's UDP address.
func (r *Responder) Addr() string { return r.ep.LocalAddr().String() }

// Register advertises a service under its search target.
func (r *Responder) Register(resp SearchResponse) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.services[resp.ST] = append(r.services[resp.ST], resp)
}

func (r *Responder) matches(st string) []SearchResponse {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st == "ssdp:all" {
		var all []SearchResponse
		for _, rs := range r.services {
			all = append(all, rs...)
		}
		return all
	}
	return append([]SearchResponse(nil), r.services[st]...)
}

func (r *Responder) serve() {
	defer close(r.done)
	for {
		data, peer, err := r.ep.RecvFrom()
		if err != nil {
			return
		}
		search, err := ParseSearch(data)
		if err != nil {
			continue
		}
		for _, resp := range r.matches(search.ST) {
			if err := r.ep.SendTo(resp.Marshal(), peer); err != nil {
				return
			}
		}
	}
}

// Close stops the responder.
func (r *Responder) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	err := r.ep.Close()
	<-r.done
	return err
}

// Search sends one M-SEARCH to addr and collects responses until the MX
// window elapses or max responses (when max > 0) have arrived.
func Search(addr, st string, mx, max int) ([]SearchResponse, error) {
	var eng network.Engine
	conn, err := eng.Dial(network.Semantics{Transport: "udp"}, addr, nil)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.Send(SearchRequest{ST: st, MX: mx}.Marshal()); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(time.Duration(mx) * time.Second)
	var out []SearchResponse
	for {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, err
		}
		data, err := conn.Recv()
		if err != nil {
			break // window elapsed
		}
		resp, err := ParseResponse(data)
		if err != nil {
			continue
		}
		out = append(out, resp)
		if max > 0 && len(out) >= max {
			break
		}
	}
	if len(out) == 0 {
		return nil, ErrNoResponse
	}
	return out, nil
}
