package jsonrpc

import (
	"errors"
	"reflect"
	"testing"
)

func TestCallRoundTrip(t *testing.T) {
	body, err := MarshalCall(7, "calc.add", float64(20), float64(22), "note", true, nil,
		[]Value{float64(1)}, map[string]any{"k": "v"})
	if err != nil {
		t.Fatal(err)
	}
	id, method, params, err := ParseCall(body)
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 || method != "calc.add" || len(params) != 7 {
		t.Fatalf("id=%d method=%q params=%d", id, method, len(params))
	}
	if params[0] != float64(20) || params[3] != true || params[4] != nil {
		t.Errorf("params = %#v", params)
	}
	if !reflect.DeepEqual(params[6], map[string]any{"k": "v"}) {
		t.Errorf("object param = %#v", params[6])
	}
}

func TestEmptyParams(t *testing.T) {
	body, err := MarshalCall(1, "m")
	if err != nil {
		t.Fatal(err)
	}
	_, _, params, err := ParseCall(body)
	if err != nil {
		t.Fatal(err)
	}
	if params == nil || len(params) != 0 {
		t.Errorf("params = %#v", params)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	body, err := MarshalResult(9, map[string]any{"sum": float64(42)})
	if err != nil {
		t.Fatal(err)
	}
	id, result, err := ParseResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if id != 9 {
		t.Errorf("id = %d", id)
	}
	if !reflect.DeepEqual(result, map[string]any{"sum": float64(42)}) {
		t.Errorf("result = %#v", result)
	}
}

func TestErrorResponse(t *testing.T) {
	body, err := MarshalError(3, "kaput")
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = ParseResponse(body)
	var re *RemoteError
	if !errors.As(err, &re) || re.Message != "kaput" {
		t.Fatalf("err = %v", err)
	}
	if re.Error() == "" {
		t.Error("empty Error()")
	}
}

func TestParseErrors(t *testing.T) {
	if _, _, _, err := ParseCall([]byte("not json")); !errors.Is(err, ErrMalformed) {
		t.Errorf("call err = %v", err)
	}
	if _, _, _, err := ParseCall([]byte(`{"params":[]}`)); !errors.Is(err, ErrMalformed) {
		t.Errorf("missing method err = %v", err)
	}
	if _, _, err := ParseResponse([]byte("zap")); !errors.Is(err, ErrMalformed) {
		t.Errorf("response err = %v", err)
	}
}

func TestClientServerEndToEnd(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", "/jsonrpc", map[string]Method{
		"calc.add": func(params []Value) (Value, error) {
			a, aok := params[0].(float64)
			b, bok := params[1].(float64)
			if !aok || !bok {
				return nil, errors.New("want two numbers")
			}
			return a + b, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(srv.Addr(), "/jsonrpc")
	defer c.Close()
	v, err := c.Call("calc.add", float64(20), float64(22))
	if err != nil {
		t.Fatal(err)
	}
	if v != float64(42) {
		t.Errorf("add = %v", v)
	}
	var re *RemoteError
	if _, err := c.Call("calc.add", "x", "y"); !errors.As(err, &re) {
		t.Errorf("bad params err = %v", err)
	}
	if _, err := c.Call("nope"); !errors.As(err, &re) {
		t.Errorf("unknown method err = %v", err)
	}
	// IDs advance and are checked.
	if _, err := c.Call("calc.add", float64(1), float64(2)); err != nil {
		t.Fatal(err)
	}
}

func TestServerWrongEndpoint(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", "/jsonrpc", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr(), "/other")
	defer c.Close()
	if _, err := c.Call("x"); err == nil {
		t.Error("wrong endpoint accepted")
	}
}
