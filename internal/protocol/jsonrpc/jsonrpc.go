// Package jsonrpc implements JSON-RPC 1.0 over the httpwire substrate:
// the third RPC middleware family of the era (alongside XML-RPC and
// SOAP), added to exercise Starlink's claim that new protocols slot in as
// binders without touching the models. Requests are
// {"method": m, "params": [...], "id": n}; responses carry exactly one of
// "result" or "error".
package jsonrpc

import (
	"encoding/json"
	"errors"
	"fmt"

	"starlink/internal/protocol/bufpool"
	"starlink/internal/protocol/httpwire"
)

// Errors reported by the JSON-RPC layer.
var (
	// ErrMalformed is wrapped by decode failures.
	ErrMalformed = errors.New("jsonrpc: malformed message")
	// ErrNoSuchMethod is the error for unregistered methods.
	ErrNoSuchMethod = errors.New("jsonrpc: no such method")
)

// Value is any JSON value (string, float64, bool, nil, []any,
// map[string]any after encoding/json decoding).
type Value = any

// RemoteError is a JSON-RPC error object returned by a server.
type RemoteError struct {
	// Message is the error content (JSON-RPC 1.0 leaves its shape open;
	// we use a string).
	Message string
}

// Error implements error.
func (e *RemoteError) Error() string { return "jsonrpc remote error: " + e.Message }

type wireRequest struct {
	Method string  `json:"method"`
	Params []Value `json:"params"`
	ID     uint64  `json:"id"`
}

type wireResponse struct {
	Result Value   `json:"result"`
	Error  *string `json:"error"`
	ID     uint64  `json:"id"`
}

// marshalWire encodes v through the shared encode-buffer pool and
// returns a right-sized copy, dropping json.Encoder's trailing newline
// so the output matches json.Marshal byte for byte.
func marshalWire(v any) ([]byte, error) {
	b := bufpool.Get()
	defer bufpool.Put(b)
	if err := json.NewEncoder(b).Encode(v); err != nil {
		return nil, err
	}
	out := b.Bytes()
	if n := len(out); n > 0 && out[n-1] == '\n' {
		out = out[:n-1]
	}
	return append([]byte(nil), out...), nil
}

// MarshalCall renders a request body.
func MarshalCall(id uint64, method string, params ...Value) ([]byte, error) {
	if params == nil {
		params = []Value{}
	}
	return marshalWire(wireRequest{Method: method, Params: params, ID: id})
}

// ParseCall decodes a request body.
func ParseCall(data []byte) (id uint64, method string, params []Value, err error) {
	var req wireRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return 0, "", nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if req.Method == "" {
		return 0, "", nil, fmt.Errorf("%w: missing method", ErrMalformed)
	}
	return req.ID, req.Method, req.Params, nil
}

// MarshalResult renders a success response body.
func MarshalResult(id uint64, result Value) ([]byte, error) {
	return marshalWire(wireResponse{Result: result, ID: id})
}

// MarshalError renders an error response body.
func MarshalError(id uint64, msg string) ([]byte, error) {
	return marshalWire(wireResponse{Error: &msg, ID: id})
}

// ParseResponse decodes a response body, returning *RemoteError for
// error responses.
func ParseResponse(data []byte) (id uint64, result Value, err error) {
	var resp wireResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if resp.Error != nil {
		return resp.ID, nil, &RemoteError{Message: *resp.Error}
	}
	return resp.ID, resp.Result, nil
}

// Client calls JSON-RPC methods at a fixed HTTP endpoint.
type Client struct {
	http   *httpwire.Client
	path   string
	nextID uint64
}

// NewClient targets addr ("host:port") and path (e.g. "/jsonrpc").
func NewClient(addr, path string) *Client {
	return &Client{http: &httpwire.Client{Addr: addr}, path: path, nextID: 1}
}

// Call invokes a method; server errors surface as *RemoteError.
func (c *Client) Call(method string, params ...Value) (Value, error) {
	id := c.nextID
	c.nextID++
	body, err := MarshalCall(id, method, params...)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Post(c.path, "application/json", body)
	if err != nil {
		return nil, fmt.Errorf("jsonrpc: call %s: %w", method, err)
	}
	if resp.Status != 200 {
		return nil, fmt.Errorf("jsonrpc: call %s: HTTP %d", method, resp.Status)
	}
	gotID, result, err := ParseResponse(resp.Body)
	if err != nil {
		return nil, err
	}
	if gotID != id {
		return nil, fmt.Errorf("%w: response id %d for request %d", ErrMalformed, gotID, id)
	}
	return result, nil
}

// Close releases the client connection.
func (c *Client) Close() error { return c.http.Close() }

// Method handles one JSON-RPC method.
type Method func(params []Value) (Value, error)

// Server dispatches JSON-RPC calls to registered methods.
type Server struct {
	http    *httpwire.Server
	methods map[string]Method
}

// NewServer starts a JSON-RPC server at addr/path.
func NewServer(addr, path string, methods map[string]Method) (*Server, error) {
	s := &Server{methods: methods}
	hs, err := httpwire.Serve(addr, func(req *httpwire.Request) *httpwire.Response {
		if req.Method != "POST" || req.Path() != path {
			return &httpwire.Response{Status: 404, Body: []byte("not a JSON-RPC endpoint")}
		}
		return s.dispatch(req.Body)
	})
	if err != nil {
		return nil, err
	}
	s.http = hs
	return s, nil
}

func (s *Server) dispatch(body []byte) *httpwire.Response {
	id, method, params, err := ParseCall(body)
	if err != nil {
		return jsonResponse(0, "", err.Error())
	}
	h, ok := s.methods[method]
	if !ok {
		return jsonResponse(id, "", ErrNoSuchMethod.Error()+": "+method)
	}
	result, err := h(params)
	if err != nil {
		return jsonResponse(id, "", err.Error())
	}
	out, err := MarshalResult(id, result)
	if err != nil {
		return jsonResponse(id, "", err.Error())
	}
	return &httpwire.Response{
		Status:  200,
		Headers: map[string]string{"Content-Type": "application/json"},
		Body:    out,
	}
}

func jsonResponse(id uint64, _ string, errMsg string) *httpwire.Response {
	out, err := MarshalError(id, errMsg)
	if err != nil {
		return &httpwire.Response{Status: 500, Body: []byte(errMsg)}
	}
	return &httpwire.Response{
		Status:  200,
		Headers: map[string]string{"Content-Type": "application/json"},
		Body:    out,
	}
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.http.Addr() }

// Close shuts the server down.
func (s *Server) Close() error { return s.http.Close() }
