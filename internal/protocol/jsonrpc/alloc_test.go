package jsonrpc

import (
	"testing"

	"starlink/internal/testutil"
)

// TestRoundTripAllocBudget guards the pooled JSON encoder: one call
// marshal+parse round-trip must stay within a fixed allocation budget.
func TestRoundTripAllocBudget(t *testing.T) {
	allocs := testing.AllocsPerRun(200, func() {
		wire, err := MarshalCall(7, "add", 2.0, 3.0)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := ParseCall(wire); err != nil {
			t.Fatal(err)
		}
	})
	if testutil.RaceEnabled {
		t.Skipf("race detector enabled; measured %.1f allocs/op unasserted", allocs)
	}
	if allocs > 20 {
		t.Errorf("marshal+parse round-trip allocated %.1f times per op, budget 20", allocs)
	}
}
