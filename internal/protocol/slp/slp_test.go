package slp

import (
	"errors"
	"testing"
)

func startDA(t *testing.T) *DirectoryAgent {
	t.Helper()
	da, err := NewDirectoryAgent("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { da.Close() })
	da.Register("service:printer:lpr", URLEntry{URL: "service:printer:lpr://printer1.example", Lifetime: 300})
	da.Register("service:printer:lpr", URLEntry{URL: "service:printer:lpr://printer2.example", Lifetime: 600})
	da.Register("service:scanner:sane", URLEntry{URL: "service:scanner:sane://scan.example", Lifetime: 120})
	return da
}

func TestFindRegisteredServices(t *testing.T) {
	da := startDA(t)
	c, err := Dial(da.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	entries, err := c.Find("service:printer:lpr", "DEFAULT")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].URL != "service:printer:lpr://printer1.example" || entries[0].Lifetime != 300 {
		t.Errorf("entry0 = %+v", entries[0])
	}
	// Case-insensitive service type matching.
	entries, err = c.Find("SERVICE:Scanner:SANE", "DEFAULT")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("scanner entries = %+v", entries)
	}
}

func TestFindUnknownType(t *testing.T) {
	da := startDA(t)
	c, err := Dial(da.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Find("service:fax:none", "DEFAULT"); !errors.Is(err, ErrRemote) {
		t.Errorf("err = %v, want ErrRemote", err)
	}
}

func TestMultipleClients(t *testing.T) {
	da := startDA(t)
	for i := 0; i < 3; i++ {
		c, err := Dial(da.Addr())
		if err != nil {
			t.Fatal(err)
		}
		entries, err := c.Find("service:printer:lpr", "DEFAULT")
		c.Close()
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if len(entries) != 2 {
			t.Errorf("client %d entries = %d", i, len(entries))
		}
	}
}

func TestXIDIncrements(t *testing.T) {
	da := startDA(t)
	c, err := Dial(da.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Find("service:printer:lpr", "DEFAULT"); err != nil {
			t.Fatal(err)
		}
	}
	if c.nextXID != 4 {
		t.Errorf("nextXID = %d", c.nextXID)
	}
}

func TestWireMessagesRoundTrip(t *testing.T) {
	codec, err := NewCodec()
	if err != nil {
		t.Fatal(err)
	}
	req := NewRequest(9, "service:printer:lpr", "DEFAULT")
	wire, err := codec.Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	// RFC layout sanity: version 2, function 1.
	if wire[0] != 2 || wire[1] != 1 {
		t.Errorf("header = %v", wire[:2])
	}
	back, err := codec.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := back.GetString("ServiceType"); st != "service:printer:lpr" {
		t.Errorf("ServiceType = %q", st)
	}
	reply := NewReply(9, 0, []URLEntry{{URL: "service:x://a", Lifetime: 10}})
	wire2, err := codec.Compose(reply)
	if err != nil {
		t.Fatal(err)
	}
	back2, err := codec.Parse(wire2)
	if err != nil {
		t.Fatal(err)
	}
	entries := EntriesOf(back2)
	if len(entries) != 1 || entries[0].URL != "service:x://a" || entries[0].Lifetime != 10 {
		t.Errorf("entries = %+v", entries)
	}
}

func TestEntriesOfMissingArray(t *testing.T) {
	codec, err := NewCodec()
	if err != nil {
		t.Fatal(err)
	}
	req := NewRequest(1, "x", "DEFAULT")
	if got := EntriesOf(req); got != nil {
		t.Errorf("EntriesOf(request) = %+v", got)
	}
	_ = codec
}

func TestDACloseIdempotent(t *testing.T) {
	da, err := NewDirectoryAgent("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := da.Close(); err != nil {
		t.Fatal(err)
	}
	if err := da.Close(); err != nil {
		t.Fatal(err)
	}
}
