// Package slp implements a Service Location Protocol (RFC 2608,
// simplified) substrate: the binary service-discovery middleware used to
// demonstrate Starlink on the discovery domain. The ICDCS'11 companion
// paper generated direct bridges between discovery protocols; here the
// same message layouts are described in binary MDL — exercising the
// <Repeat> group construct for the URL entries of a Service Reply — and a
// small Directory Agent plus client run over UDP.
package slp

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"starlink/internal/mdl"
	"starlink/internal/mdl/binenc"
	"starlink/internal/message"
	"starlink/internal/network"
)

// MDLDoc describes the SLP v2 Service Request and Service Reply layouts.
const MDLDoc = `
# SLP v2 (RFC 2608, simplified) message formats
<MDL:SLP:binary>
<Message:ServiceRequest>
<Rule:Version=2>
<Rule:FunctionID=1>
<Version:8><FunctionID:8>
<XID:16>
<PRListLen:16><PRList:PRListLen:string>
<ServiceTypeLen:16><ServiceType:ServiceTypeLen:string>
<ScopeLen:16><Scope:ScopeLen:string>
<End:Message>

<Message:ServiceReply>
<Rule:Version=2>
<Rule:FunctionID=2>
<Version:8><FunctionID:8>
<XID:16>
<ErrorCode:16>
<URLCount:16>
<Repeat:URLEntries:URLCount>
<Reserved:8><Lifetime:16>
<URLLen:16><URL:URLLen:string>
<End:Repeat>
<End:Message>
`

// Function identifiers.
const (
	FnServiceRequest = 1
	FnServiceReply   = 2
)

// Errors reported by the SLP layer.
var (
	// ErrRemote is wrapped around non-zero reply error codes.
	ErrRemote = errors.New("slp: remote error")
	// ErrProtocol is wrapped by protocol violations.
	ErrProtocol = errors.New("slp: protocol error")
)

// NewCodec compiles the SLP MDL document.
func NewCodec() (mdl.Codec, error) {
	spec, err := mdl.ParseString(MDLDoc)
	if err != nil {
		return nil, fmt.Errorf("slp: parse MDL: %w", err)
	}
	return binenc.New(spec)
}

// URLEntry is one advertised service URL.
type URLEntry struct {
	// URL is the service URL ("service:printer:lpr://host").
	URL string
	// Lifetime is the advertisement lifetime in seconds.
	Lifetime uint16
}

// NewRequest builds a ServiceRequest abstract message.
func NewRequest(xid uint64, serviceType, scope string) *message.Message {
	return message.New("ServiceRequest",
		message.NewPrimitive("Version", message.TypeUint64, 2),
		message.NewPrimitive("FunctionID", message.TypeUint64, FnServiceRequest),
		message.NewPrimitive("XID", message.TypeUint64, xid),
		message.NewPrimitive("PRList", message.TypeString, ""),
		message.NewPrimitive("ServiceType", message.TypeString, serviceType),
		message.NewPrimitive("Scope", message.TypeString, scope),
	)
}

// NewReply builds a ServiceReply abstract message.
func NewReply(xid uint64, errorCode uint64, entries []URLEntry) *message.Message {
	arr := message.NewArray("URLEntries")
	for _, e := range entries {
		arr.Add(message.NewStruct("item",
			message.NewPrimitive("Reserved", message.TypeUint64, 0),
			message.NewPrimitive("Lifetime", message.TypeUint64, uint64(e.Lifetime)),
			message.NewPrimitive("URL", message.TypeString, e.URL),
		))
	}
	return message.New("ServiceReply",
		message.NewPrimitive("Version", message.TypeUint64, 2),
		message.NewPrimitive("FunctionID", message.TypeUint64, FnServiceReply),
		message.NewPrimitive("XID", message.TypeUint64, xid),
		message.NewPrimitive("ErrorCode", message.TypeUint64, errorCode),
		arr,
	)
}

// EntriesOf extracts the URL entries from a parsed ServiceReply.
func EntriesOf(reply *message.Message) []URLEntry {
	arr, err := reply.Lookup("URLEntries")
	if err != nil {
		return nil
	}
	out := make([]URLEntry, 0, len(arr.Children))
	for _, item := range arr.Children {
		var e URLEntry
		if f := item.Child("URL"); f != nil {
			e.URL = f.ValueString()
		}
		if f := item.Child("Lifetime"); f != nil {
			if n, ok := f.Value.(uint64); ok {
				e.Lifetime = uint16(n)
			}
		}
		out = append(out, e)
	}
	return out
}

// DirectoryAgent is a minimal SLP DA: it answers ServiceRequests from its
// registration table over UDP.
type DirectoryAgent struct {
	codec mdl.Codec
	ep    network.PacketEndpoint

	mu       sync.Mutex
	services map[string][]URLEntry
	closed   bool
	done     chan struct{}
}

// NewDirectoryAgent binds a UDP socket and starts answering requests.
func NewDirectoryAgent(addr string) (*DirectoryAgent, error) {
	codec, err := NewCodec()
	if err != nil {
		return nil, err
	}
	var eng network.Engine
	ep, err := eng.ListenPacket(network.Semantics{Transport: "udp"}, addr)
	if err != nil {
		return nil, err
	}
	da := &DirectoryAgent{
		codec:    codec,
		ep:       ep,
		services: make(map[string][]URLEntry),
		done:     make(chan struct{}),
	}
	go da.serve()
	return da, nil
}

// Addr returns the agent's UDP address.
func (da *DirectoryAgent) Addr() string { return da.ep.LocalAddr().String() }

// Register advertises a service URL under a service type.
func (da *DirectoryAgent) Register(serviceType string, entry URLEntry) {
	da.mu.Lock()
	defer da.mu.Unlock()
	da.services[canon(serviceType)] = append(da.services[canon(serviceType)], entry)
}

func canon(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

func (da *DirectoryAgent) lookup(serviceType string) []URLEntry {
	da.mu.Lock()
	defer da.mu.Unlock()
	return append([]URLEntry(nil), da.services[canon(serviceType)]...)
}

func (da *DirectoryAgent) serve() {
	defer close(da.done)
	for {
		data, peer, err := da.ep.RecvFrom()
		if err != nil {
			return
		}
		reply, ok := da.handle(data)
		if !ok {
			continue
		}
		if err := da.ep.SendTo(reply, peer); err != nil {
			return
		}
	}
}

func (da *DirectoryAgent) handle(data []byte) ([]byte, bool) {
	msg, err := da.codec.Parse(data)
	if err != nil || msg.Name != "ServiceRequest" {
		return nil, false
	}
	xid, _ := msg.GetInt("XID")
	st, _ := msg.GetString("ServiceType")
	entries := da.lookup(st)
	var code uint64
	if len(entries) == 0 {
		code = 1 // LANGUAGE_NOT_SUPPORTED stands in for "no results" here
	}
	out, err := da.codec.Compose(NewReply(uint64(xid), code, entries))
	if err != nil {
		return nil, false
	}
	return out, true
}

// Close stops the agent.
func (da *DirectoryAgent) Close() error {
	da.mu.Lock()
	if da.closed {
		da.mu.Unlock()
		return nil
	}
	da.closed = true
	da.mu.Unlock()
	err := da.ep.Close()
	<-da.done
	return err
}

// Client issues ServiceRequests to a DA.
type Client struct {
	codec   mdl.Codec
	conn    network.Conn
	nextXID uint64
	timeout time.Duration
}

// Dial connects a UDP client socket to a DA address.
func Dial(addr string) (*Client, error) {
	codec, err := NewCodec()
	if err != nil {
		return nil, err
	}
	var eng network.Engine
	conn, err := eng.Dial(network.Semantics{Transport: "udp"}, addr, nil)
	if err != nil {
		return nil, err
	}
	return &Client{codec: codec, conn: conn, nextXID: 1, timeout: 5 * time.Second}, nil
}

// Find requests the URLs registered under serviceType.
func (c *Client) Find(serviceType, scope string) ([]URLEntry, error) {
	xid := c.nextXID
	c.nextXID++
	wire, err := c.codec.Compose(NewRequest(xid, serviceType, scope))
	if err != nil {
		return nil, err
	}
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return nil, err
	}
	if err := c.conn.Send(wire); err != nil {
		return nil, err
	}
	data, err := c.conn.Recv()
	if err != nil {
		return nil, err
	}
	reply, err := c.codec.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	if reply.Name != "ServiceReply" {
		return nil, fmt.Errorf("%w: got %s", ErrProtocol, reply.Name)
	}
	if gotXID, _ := reply.GetInt("XID"); uint64(gotXID) != xid {
		return nil, fmt.Errorf("%w: XID %d for request %d", ErrProtocol, gotXID, xid)
	}
	if code, _ := reply.GetInt("ErrorCode"); code != 0 {
		return nil, fmt.Errorf("%w: code %d", ErrRemote, code)
	}
	return EntriesOf(reply), nil
}

// Close releases the client socket.
func (c *Client) Close() error { return c.conn.Close() }
