// Package rest implements the GData-style RESTful protocol the Picasa
// service exposes (Section 2.1): Atom feeds over plain HTTP, with the
// query conventions of Fig. 1 (GET BaseURL/all?q=tree&max-results=3,
// GET PhotoURL?kind=comment, POST PhotoURL with an <entry>).
package rest

import (
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"starlink/internal/mdl/xmlenc"
	"starlink/internal/message"
	"starlink/internal/protocol/httpwire"
)

// BasePath is the feed root, mirroring the Picasa base URL of Fig. 1.
const BasePath = "/data/feed/api"

// Errors reported by the REST layer.
var (
	// ErrMalformed is wrapped by all feed decode failures.
	ErrMalformed = errors.New("rest: malformed feed")
	// ErrHTTPStatus is wrapped when the service answers non-2xx.
	ErrHTTPStatus = errors.New("rest: unexpected HTTP status")
)

// Entry is one Atom/GData entry: a photo or a comment.
type Entry struct {
	// ID is the entry identifier.
	ID string
	// Title is the display title.
	Title string
	// Summary carries comment text.
	Summary string
	// Author is the author name.
	Author string
	// ContentType and ContentSrc describe the media content element.
	ContentType string
	ContentSrc  string
}

// Feed is an Atom/GData feed.
type Feed struct {
	// Title is the feed title.
	Title string
	// Entries are the feed's entries in order.
	Entries []Entry
}

// Len reports the number of entries.
func (f Feed) Len() int { return len(f.Entries) }

func entryField(e Entry) *message.Field {
	f := message.NewStruct("entry",
		message.NewPrimitive("id", message.TypeString, e.ID),
		message.NewPrimitive("title", message.TypeString, e.Title),
	)
	if e.Summary != "" {
		f.Add(message.NewPrimitive("summary", message.TypeString, e.Summary))
	}
	if e.Author != "" {
		f.Add(message.NewStruct("author",
			message.NewPrimitive("name", message.TypeString, e.Author)))
	}
	if e.ContentSrc != "" || e.ContentType != "" {
		f.Add(message.NewStruct("content",
			message.NewPrimitive("@type", message.TypeString, e.ContentType),
			message.NewPrimitive("@src", message.TypeString, e.ContentSrc),
		))
	}
	return f
}

// MarshalFeed renders an Atom feed document.
func MarshalFeed(f Feed) ([]byte, error) {
	root := message.NewStruct("feed",
		message.NewPrimitive("title", message.TypeString, f.Title),
	)
	for _, e := range f.Entries {
		root.Add(entryField(e))
	}
	return xmlenc.EncodeDoc(root)
}

// MarshalEntry renders one standalone entry document (the POST body for
// addComment).
func MarshalEntry(e Entry) ([]byte, error) {
	return xmlenc.EncodeDoc(entryField(e))
}

func entryFromField(f *message.Field) Entry {
	var e Entry
	if c := f.Child("id"); c != nil {
		e.ID = c.ValueString()
	}
	if c := f.Child("title"); c != nil {
		e.Title = c.ValueString()
	}
	if c := f.Child("summary"); c != nil {
		e.Summary = c.ValueString()
	}
	if a := f.Child("author"); a != nil {
		if n := a.Child("name"); n != nil {
			e.Author = n.ValueString()
		} else {
			e.Author = a.ValueString()
		}
	}
	if c := f.Child("content"); c != nil {
		if t := c.Child("@type"); t != nil {
			e.ContentType = t.ValueString()
		}
		if s := c.Child("@src"); s != nil {
			e.ContentSrc = s.ValueString()
		}
		if e.Summary == "" && len(c.Children) == 0 {
			e.Summary = c.ValueString()
		}
		if txt := c.Child("#text"); txt != nil && e.Summary == "" {
			e.Summary = txt.ValueString()
		}
	}
	return e
}

// ParseFeed decodes an Atom feed document.
func ParseFeed(data []byte) (Feed, error) {
	root, err := xmlenc.DecodeTree(data)
	if err != nil {
		return Feed{}, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if root.Label != "feed" {
		return Feed{}, fmt.Errorf("%w: root %q", ErrMalformed, root.Label)
	}
	var f Feed
	if t := root.Child("title"); t != nil {
		f.Title = t.ValueString()
	}
	for _, c := range root.Children {
		if c.Label == "entry" {
			f.Entries = append(f.Entries, entryFromField(c))
		}
	}
	return f, nil
}

// ParseEntry decodes a standalone entry document.
func ParseEntry(data []byte) (Entry, error) {
	root, err := xmlenc.DecodeTree(data)
	if err != nil {
		return Entry{}, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if root.Label != "entry" {
		return Entry{}, fmt.Errorf("%w: root %q", ErrMalformed, root.Label)
	}
	return entryFromField(root), nil
}

// Client is a GData client bound to one service address.
type Client struct {
	http *httpwire.Client
}

// NewClient targets addr ("host:port").
func NewClient(addr string) *Client {
	return &Client{http: &httpwire.Client{Addr: addr}}
}

// Search performs the public keyword search of Fig. 1:
// GET /data/feed/api/all?q=<q>&max-results=<n>.
func (c *Client) Search(q string, maxResults int) (Feed, error) {
	target := BasePath + "/all?q=" + url.QueryEscape(q)
	if maxResults > 0 {
		target += "&max-results=" + strconv.Itoa(maxResults)
	}
	resp, err := c.http.Get(target)
	if err != nil {
		return Feed{}, err
	}
	if resp.Status != 200 {
		return Feed{}, fmt.Errorf("%w: %d", ErrHTTPStatus, resp.Status)
	}
	return ParseFeed(resp.Body)
}

// Comments lists a photo's comments: GET PhotoURL?kind=comment.
func (c *Client) Comments(photoID string) (Feed, error) {
	resp, err := c.http.Get(BasePath + "/photoid/" + url.PathEscape(photoID) + "?kind=comment")
	if err != nil {
		return Feed{}, err
	}
	if resp.Status != 200 {
		return Feed{}, fmt.Errorf("%w: %d", ErrHTTPStatus, resp.Status)
	}
	return ParseFeed(resp.Body)
}

// AddComment posts a comment entry: POST PhotoURL with <entry>.
func (c *Client) AddComment(photoID, text string) (Entry, error) {
	body, err := MarshalEntry(Entry{Summary: text})
	if err != nil {
		return Entry{}, err
	}
	resp, err := c.http.Post(BasePath+"/photoid/"+url.PathEscape(photoID), "application/atom+xml", body)
	if err != nil {
		return Entry{}, err
	}
	if resp.Status != 200 && resp.Status != 201 {
		return Entry{}, fmt.Errorf("%w: %d", ErrHTTPStatus, resp.Status)
	}
	return ParseEntry(resp.Body)
}

// Close releases the client connection.
func (c *Client) Close() error { return c.http.Close() }

// PhotoPath returns the photo resource path for an id.
func PhotoPath(photoID string) string {
	return BasePath + "/photoid/" + url.PathEscape(photoID)
}

// ParsePhotoPath extracts the photo id from a photo resource path.
func ParsePhotoPath(path string) (string, bool) {
	rest, ok := strings.CutPrefix(path, BasePath+"/photoid/")
	if !ok || rest == "" || strings.Contains(rest, "/") {
		return "", false
	}
	id, err := url.PathUnescape(rest)
	if err != nil {
		return "", false
	}
	return id, true
}
