package rest

import "testing"

func FuzzParseFeed(f *testing.F) {
	seed, _ := MarshalFeed(Feed{Title: "t", Entries: []Entry{{ID: "1", Title: "x"}}})
	f.Add(seed)
	f.Add([]byte("<feed/>"))
	f.Fuzz(func(t *testing.T, data []byte) {
		feed, err := ParseFeed(data)
		if err != nil {
			return
		}
		if _, err := MarshalFeed(feed); err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
	})
}
