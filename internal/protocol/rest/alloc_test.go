package rest

import (
	"testing"

	"starlink/internal/testutil"
)

// TestRoundTripAllocBudget guards the pooled Atom encoder: one feed
// marshal+parse round-trip must stay within a fixed allocation budget.
func TestRoundTripAllocBudget(t *testing.T) {
	feed := Feed{
		Title: "comments",
		Entries: []Entry{
			{ID: "c1", Title: "first", Summary: "nice shot"},
			{ID: "c2", Title: "second", Summary: "great light"},
		},
	}
	allocs := testing.AllocsPerRun(200, func() {
		wire, err := MarshalFeed(feed)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseFeed(wire); err != nil {
			t.Fatal(err)
		}
	})
	if testutil.RaceEnabled {
		t.Skipf("race detector enabled; measured %.1f allocs/op unasserted", allocs)
	}
	if allocs > 200 {
		t.Errorf("marshal+parse round-trip allocated %.1f times per op, budget 200", allocs)
	}
}
