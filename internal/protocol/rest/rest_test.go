package rest

import (
	"errors"
	"strings"
	"testing"

	"starlink/internal/protocol/httpwire"
)

func sampleFeed() Feed {
	return Feed{
		Title: "Search Results",
		Entries: []Entry{
			{ID: "p1", Title: "tree", ContentType: "image/jpeg", ContentSrc: "http://x/1.jpg"},
			{ID: "p2", Title: "oak & ash", ContentType: "image/jpeg", ContentSrc: "http://x/2.jpg"},
		},
	}
}

func TestFeedRoundTrip(t *testing.T) {
	data, err := MarshalFeed(sampleFeed())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseFeed(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != "Search Results" || len(got.Entries) != 2 {
		t.Fatalf("feed = %+v", got)
	}
	if got.Entries[1].Title != "oak & ash" {
		t.Errorf("escaping broken: %q", got.Entries[1].Title)
	}
	if got.Entries[0].ContentSrc != "http://x/1.jpg" {
		t.Errorf("content src = %q", got.Entries[0].ContentSrc)
	}
}

func TestEntryRoundTrip(t *testing.T) {
	e := Entry{ID: "c1", Title: "comment", Summary: "lovely <photo>", Author: "alice"}
	data, err := MarshalEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseEntry(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Errorf("entry = %+v, want %+v", got, e)
	}
}

func TestCommentEntryWithTextContent(t *testing.T) {
	raw := `<entry><id>c9</id><title>t</title><content>inline comment</content></entry>`
	got, err := ParseEntry([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary != "inline comment" {
		t.Errorf("summary = %q", got.Summary)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseFeed([]byte("<entry/>")); !errors.Is(err, ErrMalformed) {
		t.Errorf("feed err = %v", err)
	}
	if _, err := ParseFeed([]byte("garbage")); !errors.Is(err, ErrMalformed) {
		t.Errorf("feed err = %v", err)
	}
	if _, err := ParseEntry([]byte("<feed/>")); !errors.Is(err, ErrMalformed) {
		t.Errorf("entry err = %v", err)
	}
}

func TestPhotoPathRoundTrip(t *testing.T) {
	p := PhotoPath("p 1/x")
	id, ok := ParsePhotoPath(p)
	if !ok || id != "p 1/x" {
		t.Errorf("round trip = %q, %v (path %q)", id, ok, p)
	}
	for _, bad := range []string{"/other", BasePath + "/photoid/", BasePath + "/photoid/a/b"} {
		if _, ok := ParsePhotoPath(bad); ok {
			t.Errorf("ParsePhotoPath(%q) accepted", bad)
		}
	}
}

// fakePicasa emulates enough of the Picasa routes for client tests.
func fakePicasa(t *testing.T) *httpwire.Server {
	t.Helper()
	srv, err := httpwire.Serve("127.0.0.1:0", func(req *httpwire.Request) *httpwire.Response {
		switch {
		case req.Method == "GET" && req.Path() == BasePath+"/all":
			if req.QueryValue("q") == "" {
				return &httpwire.Response{Status: 400}
			}
			body, _ := MarshalFeed(sampleFeed())
			return &httpwire.Response{Status: 200, Body: body}
		case req.Method == "GET" && strings.HasPrefix(req.Path(), BasePath+"/photoid/"):
			if req.QueryValue("kind") != "comment" {
				return &httpwire.Response{Status: 400}
			}
			body, _ := MarshalFeed(Feed{Title: "comments", Entries: []Entry{{ID: "c1", Summary: "nice"}}})
			return &httpwire.Response{Status: 200, Body: body}
		case req.Method == "POST" && strings.HasPrefix(req.Path(), BasePath+"/photoid/"):
			e, err := ParseEntry(req.Body)
			if err != nil {
				return &httpwire.Response{Status: 400}
			}
			e.ID = "c2"
			body, _ := MarshalEntry(e)
			return &httpwire.Response{Status: 201, Body: body}
		default:
			return &httpwire.Response{Status: 404}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestClientSearchCommentsAdd(t *testing.T) {
	srv := fakePicasa(t)
	c := NewClient(srv.Addr())
	defer c.Close()

	feed, err := c.Search("tree", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(feed.Entries) != 2 || feed.Entries[0].ID != "p1" {
		t.Errorf("search feed = %+v", feed)
	}

	comments, err := c.Comments("p1")
	if err != nil {
		t.Fatal(err)
	}
	if len(comments.Entries) != 1 || comments.Entries[0].Summary != "nice" {
		t.Errorf("comments = %+v", comments)
	}

	added, err := c.AddComment("p1", "great shot")
	if err != nil {
		t.Fatal(err)
	}
	if added.ID != "c2" || added.Summary != "great shot" {
		t.Errorf("added = %+v", added)
	}
}

func TestClientErrorStatus(t *testing.T) {
	srv := fakePicasa(t)
	c := NewClient(srv.Addr())
	defer c.Close()
	if _, err := c.Search("", 0); !errors.Is(err, ErrHTTPStatus) {
		t.Errorf("empty query err = %v", err)
	}
}

func BenchmarkMarshalFeed(b *testing.B) {
	f := sampleFeed()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MarshalFeed(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseFeed(b *testing.B) {
	data, _ := MarshalFeed(sampleFeed())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseFeed(data); err != nil {
			b.Fatal(err)
		}
	}
}
