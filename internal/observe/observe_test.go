package observe

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"starlink/internal/automata"
	"starlink/internal/engine"
)

// testMerged is a tiny three-edge automaton: client send, γ, service
// send — enough to exercise span-kind annotation and hit counting.
func testMerged() *automata.Merged {
	return &automata.Merged{
		Name: "T", Color1: 1, Color2: 2, Start: "m0", Final: []string{"m3"},
		States: []automata.MergedState{
			{Name: "m0", Colors: []int{1}}, {Name: "m1", Colors: []int{1, 2}},
			{Name: "m2", Colors: []int{2}}, {Name: "m3", Colors: []int{2}},
		},
		Transitions: []automata.MergedTransition{
			{From: "m0", To: "m1", Kind: automata.KindMessage, Color: 1, Action: automata.Send, Message: "req"},
			{From: "m1", To: "m2", Kind: automata.KindGamma},
			{From: "m2", To: "m3", Kind: automata.KindMessage, Color: 2, Action: automata.Send, Message: "svc"},
		},
	}
}

// feedFlow drives one synthetic flow (session/flow numbered) through
// the observer, failing it when fail is non-nil.
func feedFlow(o *Observer, session, flow uint64, fail error) {
	t0 := time.Now()
	o.ObserveTrace(engine.TraceEvent{Session: session, Flow: flow, Kind: engine.TraceFlowStart, Time: t0})
	o.ObserveTrace(engine.TraceEvent{
		Session: session, Flow: flow, Kind: engine.TraceTransition, Time: t0.Add(time.Millisecond),
		Transition: "m0->m1", State: "m1", Color: 1, Elapsed: time.Millisecond,
	})
	o.ObserveTrace(engine.TraceEvent{
		Session: session, Flow: flow, Kind: engine.TraceTransition, Time: t0.Add(2 * time.Millisecond),
		Transition: "m1->m2", State: "m2", Elapsed: 100 * time.Microsecond,
	})
	if fail != nil {
		o.ObserveTrace(engine.TraceEvent{
			Session: session, Flow: flow, Kind: engine.TraceError, Time: t0.Add(3 * time.Millisecond),
			Err: fail, Wire: []byte("GET /bogus HTTP/1.1\r\n"),
		})
		return
	}
	o.ObserveTrace(engine.TraceEvent{
		Session: session, Flow: flow, Kind: engine.TraceTransition, Time: t0.Add(3 * time.Millisecond),
		Transition: "m2->m3", State: "m3", Color: 2, Elapsed: time.Millisecond,
	})
	o.ObserveTrace(engine.TraceEvent{
		Session: session, Flow: flow, Kind: engine.TraceFlowEnd, Time: t0.Add(4 * time.Millisecond),
		Elapsed: 4 * time.Millisecond,
	})
}

func TestSpanAssembly(t *testing.T) {
	o := New(Options{Merged: testMerged()})
	feedFlow(o, 1, 1, nil)
	flows := o.Flows()
	if len(flows) != 1 {
		t.Fatalf("flows = %d, want 1", len(flows))
	}
	ft := flows[0]
	if ft.Session != 1 || ft.Flow != 1 || ft.Failed() {
		t.Errorf("flow header: %+v", ft)
	}
	if ft.Root.Kind != SpanFlow || ft.Root.Duration != 4*time.Millisecond {
		t.Errorf("root span: %+v", ft.Root)
	}
	kinds := make([]string, len(ft.Root.Children))
	for i, sp := range ft.Root.Children {
		kinds[i] = sp.Kind
	}
	if want := []string{SpanMessage, SpanGamma, SpanMessage}; fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Errorf("span kinds = %v, want %v", kinds, want)
	}
	if msg := ft.Root.Children[0].Message; msg != "req" {
		t.Errorf("first span message = %q, want req", msg)
	}
	if d := ft.Root.Children[0].Duration; d != time.Millisecond {
		t.Errorf("first span duration = %v", d)
	}
	// All three edges were hit exactly once.
	hits := o.TransitionHits()
	for _, tr := range []string{"m0->m1", "m1->m2", "m2->m3"} {
		if hits[tr] != 1 {
			t.Errorf("hits[%s] = %d, want 1", tr, hits[tr])
		}
	}
}

func TestFailedFlowReachesRecorder(t *testing.T) {
	o := New(Options{Merged: testMerged()})
	feedFlow(o, 1, 1, nil)
	feedFlow(o, 2, 1, errors.New("parse client request: boom"))
	entries := o.Recorder().Entries()
	if len(entries) != 1 {
		t.Fatalf("recorder entries = %d, want 1", len(entries))
	}
	ft := entries[0]
	if !ft.Failed() || !strings.Contains(ft.Err, "boom") {
		t.Errorf("recorded flow err = %q", ft.Err)
	}
	if !strings.Contains(ft.Wire, "GET /bogus") {
		t.Errorf("wire hexdump missing payload: %q", ft.Wire)
	}
	if len(ft.Root.Children) != 2 {
		t.Errorf("failed flow kept %d spans, want 2", len(ft.Root.Children))
	}
	st := o.Recorder().Stats()
	if st.Failed != 1 || st.Slow != 0 {
		t.Errorf("recorder stats = %+v", st)
	}
}

func TestErrorWithoutFlowStartSynthesizes(t *testing.T) {
	o := New(Options{})
	o.ObserveTrace(engine.TraceEvent{
		Session: 9, Flow: 1, Kind: engine.TraceError, Time: time.Now(),
		Err: errors.New("stuck"), Wire: []byte{0xde, 0xad},
	})
	entries := o.Recorder().Entries()
	if len(entries) != 1 || entries[0].Err != "stuck" {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].Wire == "" {
		t.Error("synthesized flow lost its wire capture")
	}
}

func TestSlowFlowReachesRecorder(t *testing.T) {
	o := New(Options{SlowThreshold: time.Millisecond})
	feedFlow(o, 1, 1, nil) // 4ms flow >= 1ms threshold
	if got := o.Recorder().Stats().Slow; got != 1 {
		t.Errorf("slow recorded = %d, want 1", got)
	}
}

func TestSampling(t *testing.T) {
	o := New(Options{SampleRate: 2})
	for i := uint64(1); i <= 4; i++ {
		feedFlow(o, i, 1, nil)
	}
	st := o.Stats()
	if st.FlowsAssembled != 4 || st.FlowsSampled != 2 || st.FlowsDropped != 2 {
		t.Errorf("stats = %+v, want 4 assembled / 2 sampled / 2 dropped", st)
	}
	if got := len(o.Flows()); got != 2 {
		t.Errorf("flow ring holds %d, want 2", got)
	}
}

func TestDisabledCostsNothing(t *testing.T) {
	o := New(Options{Disabled: true})
	feedFlow(o, 1, 1, nil)
	if st := o.Stats(); st.Events != 0 || st.FlowsAssembled != 0 {
		t.Errorf("disabled observer consumed events: %+v", st)
	}
	o.SetEnabled(true)
	feedFlow(o, 1, 2, nil)
	if st := o.Stats(); st.FlowsAssembled != 1 {
		t.Errorf("re-enabled observer missed the flow: %+v", st)
	}
}

func TestSessionEndReleasesState(t *testing.T) {
	o := New(Options{})
	o.ObserveTrace(engine.TraceEvent{Session: 5, Flow: 1, Kind: engine.TraceFlowStart, Time: time.Now()})
	o.ObserveTrace(engine.TraceEvent{Session: 5, Kind: engine.TraceSessionEnd, Time: time.Now()})
	count := 0
	o.sessions.Range(func(any, any) bool { count++; return true })
	if count != 0 {
		t.Errorf("session state leaked: %d entries", count)
	}
}

func TestDOTIncludesHitCounts(t *testing.T) {
	o := New(Options{Merged: testMerged()})
	feedFlow(o, 1, 1, nil)
	dot := o.DOT()
	for _, want := range []string{"digraph \"T\"", "!req (1)", "γ (1)", "!svc (1)"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if New(Options{}).DOT() != "" {
		t.Error("DOT without automaton should be empty")
	}
}

// TestRingConcurrency hammers the ring from parallel writers while a
// reader snapshots; run under -race this pins the lock-free claims.
func TestRingConcurrency(t *testing.T) {
	r := newRing[int](16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v := w*1000 + i
				r.add(&v)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if got := len(r.snapshot()); got > 16 {
				t.Errorf("snapshot len %d > capacity", got)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if r.total() != 4000 {
		t.Errorf("total = %d, want 4000", r.total())
	}
	if r.len() != 16 {
		t.Errorf("len = %d, want 16", r.len())
	}
}

// TestObserverConcurrentSessions drives many synthetic sessions in
// parallel — the sync.Map and counters must hold up under -race.
func TestObserverConcurrentSessions(t *testing.T) {
	o := New(Options{Merged: testMerged(), FlowRing: 32})
	var wg sync.WaitGroup
	for s := uint64(1); s <= 16; s++ {
		wg.Add(1)
		go func(s uint64) {
			defer wg.Done()
			for f := uint64(1); f <= 20; f++ {
				feedFlow(o, s, f, nil)
			}
			o.ObserveTrace(engine.TraceEvent{Session: s, Kind: engine.TraceSessionEnd, Time: time.Now()})
		}(s)
	}
	wg.Wait()
	if st := o.Stats(); st.FlowsAssembled != 16*20 {
		t.Errorf("assembled = %d, want %d", st.FlowsAssembled, 16*20)
	}
	if hits := o.TransitionHits(); hits["m0->m1"] != 16*20 {
		t.Errorf("hits = %d, want %d", hits["m0->m1"], 16*20)
	}
}
