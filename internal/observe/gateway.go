package observe

import (
	"starlink/internal/gateway"
)

// RegisterGateway wires a gateway's counter surface into the registry
// under the starlink_gateway_* namespace: listener-level totals, the
// sniffer's per-class classification counts, and the per-route
// accepted/shed/dropped/reload counters plus the live admitted-flows
// gauge. One scrape answers "who is reaching which mediator, who is
// being shed, and when did each route last reload".
func RegisterGateway(r *Registry, gw *gateway.Gateway) {
	r.Counter("starlink_gateway_conns_total", "Connections accepted by the front-door listener.",
		func() uint64 { return gw.Stats().Conns })
	r.CounterVec("starlink_gateway_sniffed_total", "class",
		"Connections classified by the wire sniffer, by protocol class.",
		func() map[string]uint64 { return gw.Stats().Sniffed })
	r.Counter("starlink_gateway_fallback_total", "Unmatched connections sent to the default route.",
		func() uint64 { return gw.Stats().Fallbacks })
	r.Counter("starlink_gateway_unrouted_total", "Unmatched connections dropped for want of a default route.",
		func() uint64 { return gw.Stats().Unrouted })
	routeVec := func(f func(gateway.RouteStats) uint64) func() map[string]uint64 {
		return func() map[string]uint64 {
			st := gw.Stats()
			out := make(map[string]uint64, len(st.Routes))
			for _, rt := range st.Routes {
				out[rt.Name] = f(rt)
			}
			return out
		}
	}
	r.CounterVec("starlink_gateway_accepted_total", "route",
		"Connections admitted and handed to the route's mediator.",
		routeVec(func(rt gateway.RouteStats) uint64 { return rt.Accepted }))
	r.CounterVec("starlink_gateway_shed_total", "route",
		"Connections refused by admission control (rate limit or flow cap).",
		routeVec(func(rt gateway.RouteStats) uint64 { return rt.Shed }))
	r.CounterVec("starlink_gateway_dropped_total", "route",
		"Admitted connections lost to a draining target mid-reload.",
		routeVec(func(rt gateway.RouteStats) uint64 { return rt.Dropped }))
	r.CounterVec("starlink_gateway_reloads_total", "route",
		"Hot reloads (target swaps) performed on the route.",
		routeVec(func(rt gateway.RouteStats) uint64 { return rt.Reloads }))
	r.GaugeVec("starlink_gateway_active_flows", "route",
		"Admitted connections currently open on the route.",
		routeVec(func(rt gateway.RouteStats) uint64 {
			if rt.ActiveFlows < 0 {
				return 0
			}
			return uint64(rt.ActiveFlows)
		}))
}

// GatewayRegistry builds a Registry pre-wired with a gateway's metrics
// — the one-call path from "I have a gateway" to "I can serve
// /metrics" — mirroring MediatorRegistry.
func GatewayRegistry(gw *gateway.Gateway) *Registry {
	r := NewRegistry()
	RegisterGateway(r, gw)
	return r
}
