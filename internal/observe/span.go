package observe

import (
	"encoding/hex"
	"time"
)

// Span kinds produced by the flow tracer.
const (
	// SpanFlow is the root span of one automaton traversal.
	SpanFlow = "flow"
	// SpanMessage is a message transition (send or receive on a color).
	SpanMessage = "message"
	// SpanGamma is a γ translation transition.
	SpanGamma = "gamma"
	// SpanRedial marks a service connection replaced mid-flow (fault
	// recovery or a sethost retarget).
	SpanRedial = "redial"
	// SpanCache marks a service exchange served by the cross-flow
	// response cache — Attempt 0 for a stored reply, 1 for a coalesced
	// join of an in-flight leader's exchange.
	SpanCache = "cache"
)

// Span is one node of a flow's span tree: the flow root, a transition
// under it, or a redial annotation under the flow. Durations come from
// the engine's own measurements; Start is back-dated from the event
// time so children nest inside their parent on a timeline.
type Span struct {
	// Kind is one of the Span* constants.
	Kind string `json:"kind"`
	// Name identifies the span: "flow", "from->to" for transitions, or
	// a redial description.
	Name string `json:"name"`
	// State is the automaton state the span ended in (transitions), or
	// the dialled address (redials).
	State string `json:"state,omitempty"`
	// Message names the abstract message of a message transition.
	Message string `json:"message,omitempty"`
	// Color is the side a message transition or redial concerns.
	Color int `json:"color,omitempty"`
	// Attempt is the retry attempt of a redial span.
	Attempt int `json:"attempt,omitempty"`
	// Start is when the span began.
	Start time.Time `json:"start"`
	// Duration is how long the span took (0 for instantaneous marks).
	Duration time.Duration `json:"duration_ns"`
	// Budget is the flow's remaining deadline budget when the span
	// closed — negative once the deadline has passed, and zero when
	// flow budgets are disabled.
	Budget time.Duration `json:"budget_ns,omitempty"`
	// Err carries a redial's cause or the flow's failure.
	Err string `json:"error,omitempty"`
	// Children are the nested spans, in execution order.
	Children []*Span `json:"children,omitempty"`
}

// FlowTrace is one assembled automaton traversal: the span tree plus
// outcome metadata. Failed or slow flows additionally land in the
// flight recorder with the offending wire message hexdumped.
type FlowTrace struct {
	// Session and Flow identify the traversal (session 1-based in accept
	// order, flow 1-based within the session).
	Session uint64 `json:"session"`
	Flow    uint64 `json:"flow"`
	// Start and End bound the flow (first client request to final reply
	// or failure).
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Err is the failure that ended the flow ("" for a clean finish).
	Err string `json:"error,omitempty"`
	// Wire is a hexdump of the last wire message received before a
	// failure — what the parse or translate fault choked on.
	Wire string `json:"wire_hexdump,omitempty"`
	// Root is the flow's span tree.
	Root *Span `json:"spans"`
}

// Duration is the flow's wall-clock time.
func (f *FlowTrace) Duration() time.Duration { return f.End.Sub(f.Start) }

// Failed reports whether the flow ended with an error.
func (f *FlowTrace) Failed() bool { return f.Err != "" }

// hexdump renders wire bytes in the canonical offset/hex/ASCII layout.
func hexdump(data []byte) string {
	if len(data) == 0 {
		return ""
	}
	return hex.Dump(data)
}
