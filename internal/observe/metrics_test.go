package observe

import (
	"strings"
	"testing"
	"time"

	"starlink/internal/engine"
)

func TestWriteTextScalarsAndVecs(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_requests_total", "Requests handled.", func() uint64 { return 42 })
	r.Gauge("t_load", "Current load.", func() float64 { return 0.5 })
	r.CounterVec("t_hits_total", "edge", "Hits per edge.", func() map[string]uint64 {
		return map[string]uint64{"b->c": 2, "a->b": 7}
	})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP t_requests_total Requests handled.",
		"# TYPE t_requests_total counter",
		"t_requests_total 42",
		"# TYPE t_load gauge",
		"t_load 0.5",
		// Vec samples sorted by label value.
		"t_hits_total{edge=\"a->b\"} 7\nt_hits_total{edge=\"b->c\"} 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := engine.LatencyHistogram{
		Count: 6,
		Sum:   3 * time.Millisecond,
		Buckets: []engine.LatencyBucket{
			{Low: 0, High: time.Millisecond, Count: 4},
			{Low: time.Millisecond, High: 2 * time.Millisecond, Count: 1},
			{Low: 2 * time.Millisecond, High: 4 * time.Millisecond, Count: 1},
		},
	}
	r.Histogram("t_latency_seconds", "Latency.", func() engine.LatencyHistogram { return h })
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE t_latency_seconds histogram",
		"t_latency_seconds_bucket{le=\"0.001\"} 4",
		"t_latency_seconds_bucket{le=\"0.002\"} 5",
		// The last bucket is always rendered as +Inf and carries the
		// cumulative total.
		"t_latency_seconds_bucket{le=\"+Inf\"} 6",
		"t_latency_seconds_sum 0.003",
		"t_latency_seconds_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "_bucket") != 3 {
		t.Errorf("want 3 bucket lines:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "", func() uint64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "", func() uint64 { return 0 })
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		42:       "42",
		0.5:      "0.5",
		0.001:    "0.001",
		0.000001: "1e-06",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRegisterObserverRendersTracerMetrics(t *testing.T) {
	o := New(Options{Merged: testMerged()})
	feedFlow(o, 1, 1, nil)
	r := NewRegistry()
	RegisterObserver(r, o)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"starlink_tracer_enabled 1",
		"starlink_tracer_flows_assembled_total 1",
		"starlink_transition_hits_total{transition=\"m0->m1\"} 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
