package observe

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"starlink/internal/engine"
	"starlink/internal/protocol/httpwire"
)

// AdminConfig wires an Admin endpoint to its data sources. Every field
// is optional; routes whose source is missing answer 404.
type AdminConfig struct {
	// Registry backs /metrics.
	Registry *Registry
	// Observer backs /flows and /automaton.dot.
	Observer *Observer
	// Mediator enriches /healthz with live session/flow counters.
	Mediator *engine.Mediator
}

// Admin is a running admin endpoint: a pure-stdlib HTTP server (built
// on internal/protocol/httpwire, no net/http) serving
//
//	GET /healthz        liveness plus headline counters (JSON)
//	GET /metrics        Prometheus text exposition
//	GET /flows[?n=K]    the flight recorder's last failed/slow flows,
//	                    span trees and wire hexdumps included (JSON)
//	GET /automaton.dot  the live merged automaton in Graphviz format
//	                    with per-transition hit counts
//	GET /backends       the mediator's replica sets: policy, probe and
//	                    ejection config, per-replica health (JSON)
//	GET /discovery      the mediator's discovery reconcilers: source,
//	                    hysteresis tuning, members and churn (JSON)
type Admin struct {
	cfg    AdminConfig
	srv    *httpwire.Server
	uptime *Uptime
}

// ServeAdmin binds addr and serves the admin routes in the background.
func ServeAdmin(addr string, cfg AdminConfig) (*Admin, error) {
	a := &Admin{cfg: cfg, uptime: NewUptime()}
	srv, err := httpwire.Serve(addr, a.handle)
	if err != nil {
		return nil, err
	}
	a.srv = srv
	return a, nil
}

// Addr returns the bound address ("host:port").
func (a *Admin) Addr() string { return a.srv.Addr() }

// Close stops the endpoint and waits for in-flight requests. It is
// idempotent: closing an already-closed endpoint is a no-op, not an
// error, so deployment teardown paths can call it unconditionally.
func (a *Admin) Close() error {
	if err := a.srv.Close(); err != nil && !errors.Is(err, httpwire.ErrServerClosed) {
		return err
	}
	return nil
}

func (a *Admin) handle(req *httpwire.Request) *httpwire.Response {
	if req.Method != "GET" {
		return &httpwire.Response{Status: 400, Body: []byte("only GET is supported\n")}
	}
	switch req.Path() {
	case "/healthz":
		return a.healthz()
	case "/metrics":
		return a.metrics()
	case "/flows":
		return a.flows(req)
	case "/automaton.dot":
		return a.automatonDOT()
	case "/backends":
		return a.backends()
	case "/discovery":
		return a.discovery()
	default:
		return &httpwire.Response{Status: 404, Body: []byte("not found\n")}
	}
}

func (a *Admin) healthz() *httpwire.Response {
	body := map[string]any{
		"status":    "ok",
		"uptime_ns": a.uptime.Elapsed().Nanoseconds(),
	}
	if med := a.cfg.Mediator; med != nil {
		st := med.Stats()
		body["sessions"] = st.Sessions
		body["flows"] = st.Flows
		body["failures"] = st.Failures
	}
	if obs := a.cfg.Observer; obs != nil {
		body["tracer_enabled"] = obs.Enabled()
		body["recorder_entries"] = obs.Recorder().Len()
	}
	return jsonResponse(body)
}

func (a *Admin) metrics() *httpwire.Response {
	if a.cfg.Registry == nil {
		return &httpwire.Response{Status: 404, Body: []byte("no metrics registry\n")}
	}
	var b strings.Builder
	if err := a.cfg.Registry.WriteText(&b); err != nil {
		return &httpwire.Response{Status: 500, Body: []byte(err.Error() + "\n")}
	}
	return &httpwire.Response{
		Status:  200,
		Headers: map[string]string{"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
		Body:    []byte(b.String()),
	}
}

func (a *Admin) flows(req *httpwire.Request) *httpwire.Response {
	if a.cfg.Observer == nil {
		return &httpwire.Response{Status: 404, Body: []byte("no observer attached\n")}
	}
	entries := a.cfg.Observer.Recorder().Entries()
	if nStr := req.QueryValue("n"); nStr != "" {
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 0 {
			return &httpwire.Response{Status: 400, Body: []byte(fmt.Sprintf("bad n %q\n", nStr))}
		}
		if n < len(entries) {
			entries = entries[len(entries)-n:]
		}
	}
	if entries == nil {
		entries = []*FlowTrace{}
	}
	return jsonResponse(entries)
}

func (a *Admin) automatonDOT() *httpwire.Response {
	if a.cfg.Observer == nil {
		return &httpwire.Response{Status: 404, Body: []byte("no observer attached\n")}
	}
	dot := a.cfg.Observer.DOT()
	if dot == "" {
		return &httpwire.Response{Status: 404, Body: []byte("observer has no merged automaton\n")}
	}
	return &httpwire.Response{
		Status:  200,
		Headers: map[string]string{"Content-Type": "text/vnd.graphviz; charset=utf-8"},
		Body:    []byte(dot),
	}
}

func (a *Admin) backends() *httpwire.Response {
	if a.cfg.Mediator == nil {
		return &httpwire.Response{Status: 404, Body: []byte("no mediator attached\n")}
	}
	snaps := a.cfg.Mediator.Backends()
	if snaps == nil {
		return &httpwire.Response{Status: 404, Body: []byte("mediator has no backend replica sets\n")}
	}
	return jsonResponse(snaps)
}

func (a *Admin) discovery() *httpwire.Response {
	if a.cfg.Mediator == nil {
		return &httpwire.Response{Status: 404, Body: []byte("no mediator attached\n")}
	}
	snaps := a.cfg.Mediator.Discovery()
	if snaps == nil {
		return &httpwire.Response{Status: 404, Body: []byte("mediator has no discovery sources\n")}
	}
	return jsonResponse(snaps)
}

func jsonResponse(v any) *httpwire.Response {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return &httpwire.Response{Status: 500, Body: []byte(err.Error() + "\n")}
	}
	return &httpwire.Response{
		Status:  200,
		Headers: map[string]string{"Content-Type": "application/json; charset=utf-8"},
		Body:    append(data, '\n'),
	}
}
