// Package observe is Starlink's runtime observability subsystem. The
// paper's mediators are long-lived components "deployed in the network"
// (§3-5); this package makes a running one inspectable without stopping
// it, in four parts:
//
//   - a flow tracer (Observer) that consumes engine TraceEvents and
//     assembles them into per-session span trees — session → flow →
//     transition spans with durations, colors, state names and
//     redial/error annotations — kept in a bounded lock-free ring;
//   - a metrics Registry fed from engine.Stats, the service-pool
//     counters and the 32-bin latency histograms, rendered in
//     Prometheus text exposition format;
//   - a flight Recorder holding the last N failed or slow flows with
//     their span trees and a truncated wire-level hexdump of the
//     offending message, for post-hoc diagnosis of parse/translate
//     faults;
//   - an Admin endpoint (pure-stdlib, built on internal/protocol/
//     httpwire, no net/http) serving /metrics, /healthz, /flows and
//     /automaton.dot.
//
// The tracer sits on the mediation hot path, so its cost profile is
// explicit: when disabled (SetEnabled(false)) every event costs exactly
// one atomic load; when enabled, a transition event costs one map read
// into a pre-built read-only table plus one atomic add, and span
// assembly appends to per-session state that only that session's
// goroutine touches.
package observe

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"starlink/internal/automata"
	"starlink/internal/engine"
)

// Defaults applied when Options fields are zero.
const (
	// DefaultFlowRing is the bound on retained completed flows.
	DefaultFlowRing = 256
	// DefaultRecorderSize is the flight recorder's bound.
	DefaultRecorderSize = 64
)

// Options configure an Observer.
type Options struct {
	// Merged, when non-nil, enables per-transition hit counters and the
	// live /automaton.dot export; transition spans are also annotated
	// with the edge's kind (message vs γ) and abstract message name.
	Merged *automata.Merged
	// FlowRing bounds the ring of retained completed flows (default
	// DefaultFlowRing).
	FlowRing int
	// RecorderSize bounds the flight recorder (default
	// DefaultRecorderSize).
	RecorderSize int
	// SampleRate keeps one in every SampleRate completed flows in the
	// flow ring (default 1 = keep every flow). Failed and slow flows
	// always reach the flight recorder regardless of sampling.
	SampleRate int
	// SlowThreshold, when positive, flight-records healthy flows at
	// least this slow. Zero records only failures.
	SlowThreshold time.Duration
	// Disabled starts the observer switched off; SetEnabled(true) turns
	// it on at runtime.
	Disabled bool
}

// transitionStat is one merged-automaton edge's identity and live hit
// counter. The table of these is built once and read-only afterwards,
// so the hot path never takes a lock.
type transitionStat struct {
	kind    automata.MergedKind
	message string
	hits    atomic.Uint64
}

// Observer is the flow tracer: it implements engine.Observer, assembles
// TraceEvents into FlowTraces and feeds the flight recorder. One
// Observer instruments one mediator.
type Observer struct {
	opts        Options
	enabled     atomic.Bool
	transitions map[string]*transitionStat

	// sessions holds the per-session assembly state; events for one
	// session arrive from that session's goroutine only, so the values
	// need no internal locking.
	sessions sync.Map // uint64 -> *sessionTrace

	flows    *ring[FlowTrace]
	recorder *Recorder

	sampleN atomic.Uint64

	events         atomic.Uint64
	flowsAssembled atomic.Uint64
	flowsSampled   atomic.Uint64
	flowsDropped   atomic.Uint64
}

// sessionTrace is one session's open flow being assembled.
type sessionTrace struct {
	cur *FlowTrace
}

// New builds an Observer.
func New(opts Options) *Observer {
	if opts.FlowRing <= 0 {
		opts.FlowRing = DefaultFlowRing
	}
	if opts.RecorderSize <= 0 {
		opts.RecorderSize = DefaultRecorderSize
	}
	if opts.SampleRate <= 0 {
		opts.SampleRate = 1
	}
	o := &Observer{
		opts:     opts,
		flows:    newRing[FlowTrace](opts.FlowRing),
		recorder: newRecorder(opts.RecorderSize, opts.SlowThreshold),
	}
	if opts.Merged != nil {
		o.transitions = make(map[string]*transitionStat, len(opts.Merged.Transitions))
		for _, t := range opts.Merged.Transitions {
			o.transitions[t.From+"->"+t.To] = &transitionStat{kind: t.Kind, message: t.Message}
		}
	}
	o.enabled.Store(!opts.Disabled)
	return o
}

// Instrument attaches a new Observer to an engine configuration,
// defaulting Options.Merged to the configuration's automaton so hit
// counts and the DOT export work out of the box. Call before
// engine.New — the engine copies its Config.
func Instrument(cfg *engine.Config, opts Options) *Observer {
	if opts.Merged == nil {
		opts.Merged = cfg.Merged
	}
	o := New(opts)
	cfg.Observer = o
	return o
}

// SetEnabled switches tracing on or off at runtime. Disabled, every
// ObserveTrace call returns after a single atomic load.
func (o *Observer) SetEnabled(on bool) { o.enabled.Store(on) }

// Enabled reports whether the tracer is currently on.
func (o *Observer) Enabled() bool { return o.enabled.Load() }

// Recorder returns the observer's flight recorder.
func (o *Observer) Recorder() *Recorder { return o.recorder }

// ObserveTrace implements engine.Observer. It must stay cheap: it runs
// synchronously inside session goroutines.
func (o *Observer) ObserveTrace(ev engine.TraceEvent) {
	if !o.enabled.Load() {
		return
	}
	o.events.Add(1)
	switch ev.Kind {
	case engine.TraceFlowStart:
		st := o.session(ev.Session)
		st.cur = &FlowTrace{
			Session: ev.Session,
			Flow:    ev.Flow,
			Start:   ev.Time,
			Root:    &Span{Kind: SpanFlow, Name: "flow", Start: ev.Time},
		}
	case engine.TraceTransition:
		if ts := o.transitions[ev.Transition]; ts != nil {
			ts.hits.Add(1)
		}
		st := o.session(ev.Session)
		if st.cur == nil {
			return
		}
		sp := &Span{
			Kind:     SpanMessage,
			Name:     ev.Transition,
			State:    ev.State,
			Color:    ev.Color,
			Start:    ev.Time.Add(-ev.Elapsed),
			Duration: ev.Elapsed,
		}
		sp.Budget = ev.Budget
		if ts := o.transitions[ev.Transition]; ts != nil {
			if ts.kind == automata.KindGamma {
				sp.Kind = SpanGamma
			}
			sp.Message = ts.message
		}
		st.cur.Root.Children = append(st.cur.Root.Children, sp)
	case engine.TraceRedial:
		st := o.session(ev.Session)
		if st.cur == nil {
			return
		}
		sp := &Span{
			Kind:    SpanRedial,
			Name:    fmt.Sprintf("redial color %d", ev.Color),
			State:   ev.State,
			Color:   ev.Color,
			Attempt: ev.Attempt,
			Start:   ev.Time,
		}
		if ev.Err != nil {
			sp.Err = ev.Err.Error()
		}
		st.cur.Root.Children = append(st.cur.Root.Children, sp)
	case engine.TraceCacheHit:
		st := o.session(ev.Session)
		if st.cur == nil {
			return
		}
		sp := &Span{
			Kind:     SpanCache,
			Name:     fmt.Sprintf("cache hit %s", ev.State),
			State:    ev.State,
			Color:    ev.Color,
			Attempt:  ev.Attempt,
			Start:    ev.Time.Add(-ev.Elapsed),
			Duration: ev.Elapsed,
		}
		st.cur.Root.Children = append(st.cur.Root.Children, sp)
	case engine.TraceFlowEnd:
		st := o.session(ev.Session)
		if st.cur == nil {
			return
		}
		st.cur.End = ev.Time
		st.cur.Root.Duration = ev.Elapsed
		st.cur.Root.Budget = ev.Budget
		o.finishFlow(st.cur)
		st.cur = nil
	case engine.TraceError:
		st := o.session(ev.Session)
		ft := st.cur
		if ft == nil {
			// The flow failed before its first request completed
			// assembly; synthesize a bare trace so the failure is still
			// visible in the recorder.
			ft = &FlowTrace{
				Session: ev.Session,
				Flow:    ev.Flow,
				Start:   ev.Time,
				Root:    &Span{Kind: SpanFlow, Name: "flow", Start: ev.Time},
			}
		}
		if ev.Err != nil {
			ft.Err = ev.Err.Error()
			ft.Root.Err = ft.Err
		}
		ft.End = ev.Time
		ft.Root.Duration = ft.End.Sub(ft.Start)
		ft.Root.Budget = ev.Budget
		ft.Wire = hexdump(ev.Wire)
		o.finishFlow(ft)
		st.cur = nil
	case engine.TraceSessionEnd:
		o.sessions.Delete(ev.Session)
	}
}

// session returns (creating on first use) a session's assembly state.
func (o *Observer) session(id uint64) *sessionTrace {
	if st, ok := o.sessions.Load(id); ok {
		return st.(*sessionTrace)
	}
	st, _ := o.sessions.LoadOrStore(id, &sessionTrace{})
	return st.(*sessionTrace)
}

// finishFlow routes a completed flow: failed/slow flows to the flight
// recorder unconditionally, and a sampled subset to the flow ring.
func (o *Observer) finishFlow(ft *FlowTrace) {
	o.flowsAssembled.Add(1)
	o.recorder.offer(ft)
	if o.opts.SampleRate > 1 && o.sampleN.Add(1)%uint64(o.opts.SampleRate) != 0 {
		o.flowsDropped.Add(1)
		return
	}
	o.flowsSampled.Add(1)
	o.flows.add(ft)
}

// Flows snapshots the sampled completed-flow ring, oldest first.
func (o *Observer) Flows() []*FlowTrace { return o.flows.snapshot() }

// TransitionHits snapshots the per-transition hit counters ("from->to"
// keyed). Nil when the observer was built without a merged automaton.
func (o *Observer) TransitionHits() map[string]uint64 {
	if o.transitions == nil {
		return nil
	}
	out := make(map[string]uint64, len(o.transitions))
	for name, ts := range o.transitions {
		out[name] = ts.hits.Load()
	}
	return out
}

// ObserverStats are the tracer's own counters.
type ObserverStats struct {
	// Events is the number of TraceEvents consumed while enabled.
	Events uint64
	// FlowsAssembled counts completed span trees (clean or failed).
	FlowsAssembled uint64
	// FlowsSampled and FlowsDropped split FlowsAssembled by the
	// sampling decision for the flow ring.
	FlowsSampled, FlowsDropped uint64
}

// Stats snapshots the tracer's counters.
func (o *Observer) Stats() ObserverStats {
	return ObserverStats{
		Events:         o.events.Load(),
		FlowsAssembled: o.flowsAssembled.Load(),
		FlowsSampled:   o.flowsSampled.Load(),
		FlowsDropped:   o.flowsDropped.Load(),
	}
}

// DOT renders the merged automaton in Graphviz format with live
// per-transition hit counts on the edge labels — the Fig. 3 diagram
// annotated with where traffic actually went. It returns "" when the
// observer has no automaton.
func (o *Observer) DOT() string {
	m := o.opts.Merged
	if m == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=circle, style=filled];\n", m.Name)
	palette := map[int]string{m.Color1: "lightblue", m.Color2: "lightsalmon"}
	for _, s := range m.States {
		fill := "white"
		switch {
		case s.Bicolored():
			fill = "lightblue;0.5:lightsalmon"
		case len(s.Colors) == 1:
			fill = palette[s.Colors[0]]
		}
		shape := "circle"
		if m.IsFinal(s.Name) {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  %q [shape=%s, fillcolor=%q];\n", s.Name, shape, fill)
	}
	fmt.Fprintf(&b, "  _start [shape=point];\n  _start -> %q;\n", m.Start)
	for _, t := range m.Transitions {
		var hits uint64
		if ts := o.transitions[t.From+"->"+t.To]; ts != nil {
			hits = ts.hits.Load()
		}
		if t.Kind == automata.KindGamma {
			fmt.Fprintf(&b, "  %q -> %q [label=\"γ (%d)\", style=dashed];\n", t.From, t.To, hits)
			continue
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", t.From, t.To,
			fmt.Sprintf("%s%s (%d)", t.Action, t.Message, hits))
	}
	b.WriteString("}\n")
	return b.String()
}
