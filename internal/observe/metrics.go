package observe

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"starlink/internal/backend"
	"starlink/internal/discovery"
	"starlink/internal/engine"
	"starlink/internal/network/pool"
)

// Registry is a pull-model metrics registry: each metric is a name,
// help text and a closure sampled at exposition time, rendered in the
// Prometheus text format (version 0.0.4). Starlink's counters already
// live as lock-free atomics inside the engine, pool and observer, so
// the registry stores no state of its own — a scrape is a walk over
// snapshot closures.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	names   map[string]bool
}

// metric is one registered family; exactly one of the sample funcs is
// set, selected by typ.
type metric struct {
	name, help, typ string
	scalar          func() float64
	labelKey        string
	vec             func() map[string]uint64
	hist            func() engine.LatencyHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.name] {
		panic(fmt.Sprintf("observe: metric %q registered twice", m.name))
	}
	r.names[m.name] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers a monotonically increasing metric.
func (r *Registry) Counter(name, help string, f func() uint64) {
	r.register(&metric{name: name, help: help, typ: "counter",
		scalar: func() float64 { return float64(f()) }})
}

// Gauge registers a point-in-time value.
func (r *Registry) Gauge(name, help string, f func() float64) {
	r.register(&metric{name: name, help: help, typ: "gauge", scalar: f})
}

// CounterVec registers a counter family keyed by one label; f returns
// the current label→value samples.
func (r *Registry) CounterVec(name, labelKey, help string, f func() map[string]uint64) {
	r.register(&metric{name: name, help: help, typ: "counter", labelKey: labelKey, vec: f})
}

// GaugeVec registers a gauge family keyed by one label; f returns the
// current label→value samples.
func (r *Registry) GaugeVec(name, labelKey, help string, f func() map[string]uint64) {
	r.register(&metric{name: name, help: help, typ: "gauge", labelKey: labelKey, vec: f})
}

// Histogram registers a latency distribution exposed with cumulative
// le buckets in seconds.
func (r *Registry) Histogram(name, help string, f func() engine.LatencyHistogram) {
	r.register(&metric{name: name, help: help, typ: "histogram", hist: f})
}

// WriteText renders every registered metric in Prometheus text
// exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()
	for _, m := range metrics {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ); err != nil {
			return err
		}
		var err error
		switch {
		case m.vec != nil:
			err = writeVec(w, m)
		case m.hist != nil:
			err = writeHistogram(w, m.name, m.hist())
		default:
			_, err = fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.scalar()))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeVec(w io.Writer, m *metric) error {
	samples := m.vec()
	keys := make([]string, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", m.name, m.labelKey, k, samples[k]); err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, h engine.LatencyHistogram) error {
	var cumulative uint64
	for i, b := range h.Buckets {
		cumulative += b.Count
		le := "+Inf"
		if i < len(h.Buckets)-1 {
			le = formatFloat(b.High.Seconds())
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cumulative); err != nil {
			return err
		}
	}
	if len(h.Buckets) == 0 {
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum.Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	return err
}

// formatFloat renders a sample value the way Prometheus expects:
// integral values without an exponent, the rest in compact form.
func formatFloat(v float64) string {
	if v == float64(uint64(v)) && v < 1e15 {
		return fmt.Sprintf("%d", uint64(v))
	}
	return fmt.Sprintf("%g", v)
}

// RegisterMediator wires a mediator's whole Snapshot surface — the
// lifetime Stats counters, the pool counters and both 32-bin latency
// histograms — into the registry under the starlink_* namespace.
func RegisterMediator(r *Registry, med *engine.Mediator) {
	stat := func(f func(engine.Stats) uint64) func() uint64 {
		return func() uint64 { return f(med.Stats()) }
	}
	r.Counter("starlink_sessions_total", "Client connections accepted.",
		stat(func(s engine.Stats) uint64 { return s.Sessions }))
	r.Counter("starlink_flows_total", "Complete automaton traversals.",
		stat(func(s engine.Stats) uint64 { return s.Flows }))
	r.Counter("starlink_translations_total", "Gamma (MTL) transitions executed.",
		stat(func(s engine.Stats) uint64 { return s.Translations }))
	r.Counter("starlink_translate_compiled_total", "Gamma transitions executed on the compiled fast path.",
		stat(func(s engine.Stats) uint64 { return s.TranslationsCompiled }))
	r.Counter("starlink_translate_interpreted_total", "Gamma transitions executed by the tree-walking interpreter.",
		stat(func(s engine.Stats) uint64 { return s.TranslationsInterpreted }))
	r.Counter("starlink_messages_in_total", "Messages received from either side.",
		stat(func(s engine.Stats) uint64 { return s.MessagesIn }))
	r.Counter("starlink_messages_out_total", "Messages sent to either side.",
		stat(func(s engine.Stats) uint64 { return s.MessagesOut }))
	r.Counter("starlink_failures_total", "Sessions that ended with an error.",
		stat(func(s engine.Stats) uint64 { return s.Failures }))
	r.Counter("starlink_redials_total", "Service connections replaced mid-session.",
		stat(func(s engine.Stats) uint64 { return s.Redials }))
	r.Counter("starlink_retries_exhausted_total", "Service exchanges that failed after every retry.",
		stat(func(s engine.Stats) uint64 { return s.RetriesExhausted }))
	r.Counter("starlink_client_failures_total", "Failed client-side exchanges.",
		stat(func(s engine.Stats) uint64 { return s.ClientFailures }))
	r.Counter("starlink_service_failures_total", "Service-side exchanges that failed for good.",
		stat(func(s engine.Stats) uint64 { return s.ServiceFailures }))
	r.Counter("starlink_pool_hits_total", "Service checkouts served by an idle pooled connection.",
		stat(func(s engine.Stats) uint64 { return s.PoolHits }))
	r.Counter("starlink_pool_dials_total", "Service checkouts that opened a fresh connection.",
		stat(func(s engine.Stats) uint64 { return s.PoolDials }))
	r.Counter("starlink_pool_evictions_total", "Pooled connections closed early.",
		stat(func(s engine.Stats) uint64 { return s.PoolEvictions }))
	r.Counter("starlink_pool_wait_timeouts_total", "Pool checkouts abandoned while waiting at the MaxActive bound.",
		stat(func(s engine.Stats) uint64 { return s.PoolWaitTimeouts }))
	r.Counter("starlink_flow_deadline_exceeded_total", "Flows failed fast because their deadline budget ran out.",
		stat(func(s engine.Stats) uint64 { return s.DeadlineExceeded }))
	r.Counter("starlink_hook_panics_total", "Panics recovered from Trace/Observer hooks.",
		stat(func(s engine.Stats) uint64 { return s.HookPanics }))
	r.Counter("starlink_cache_hits_total", "Service exchanges served from the cross-flow response cache.",
		stat(func(s engine.Stats) uint64 { return s.CacheHits }))
	r.Counter("starlink_cache_misses_total", "Cacheable exchanges that went to the service (leader elections).",
		stat(func(s engine.Stats) uint64 { return s.CacheMisses }))
	r.Counter("starlink_cache_coalesced_total", "Cacheable exchanges that joined an in-flight leader.",
		stat(func(s engine.Stats) uint64 { return s.CacheCoalesced }))
	r.Counter("starlink_cache_evictions_total", "Cached replies dropped by TTL expiry or LRU overflow.",
		stat(func(s engine.Stats) uint64 { return s.CacheEvictions }))
	r.Counter("starlink_cache_invalidations_total", "Cached replies flushed by write-operation invalidation.",
		stat(func(s engine.Stats) uint64 { return s.CacheInvalidations }))
	r.Histogram("starlink_transition_seconds", "Latency of individual automaton transitions.",
		func() engine.LatencyHistogram { return med.Snapshot().Transitions })
	r.Histogram("starlink_exchange_seconds", "Latency of service request/reply round-trips.",
		func() engine.LatencyHistogram { return med.Snapshot().Exchanges })
	r.Histogram("starlink_translate_seconds", "Latency of gamma translations alone.",
		func() engine.LatencyHistogram { return med.Snapshot().Translate })
	// Per-key pool occupancy: aggregate Hits/Dials/Evictions say nothing
	// about which (color, address) is under pressure, so idle, in-flight
	// and blocked-checkout gauges are exported per key.
	perKey := func(f func(pool.KeyStats) int) func() map[string]uint64 {
		return func() map[string]uint64 {
			per := med.PoolStats().PerKey
			out := make(map[string]uint64, len(per))
			for k, ks := range per {
				out[k.String()] = uint64(f(ks))
			}
			return out
		}
	}
	r.GaugeVec("starlink_pool_idle_conns", "key",
		"Idle pooled service connections per (color, address) key.",
		perKey(func(ks pool.KeyStats) int { return ks.Idle }))
	r.GaugeVec("starlink_pool_inflight_conns", "key",
		"Checked-out pooled service connections per (color, address) key.",
		perKey(func(ks pool.KeyStats) int { return ks.InFlight }))
	r.GaugeVec("starlink_pool_waiters", "key",
		"Checkouts blocked on the pool bound per (color, address) key.",
		perKey(func(ks pool.KeyStats) int { return ks.Waiters }))
	if med.Backends() != nil {
		registerBackends(r, med)
	}
	if med.Discovery() != nil {
		registerDiscovery(r, med)
	}
}

// registerBackends exports the mediator's replica sets: per-replica
// health/traffic series labelled "set/addr" and per-set ejection
// totals. Registered only for mediators deployed with `backend`
// directives, so plain single-address mediators keep a clean scrape.
func registerBackends(r *Registry, med *engine.Mediator) {
	perReplica := func(f func(backend.ReplicaSnapshot) uint64) func() map[string]uint64 {
		return func() map[string]uint64 {
			out := map[string]uint64{}
			for _, set := range med.Backends() {
				for _, rs := range set.Replicas {
					out[set.Name+"/"+rs.Addr] = f(rs)
				}
			}
			return out
		}
	}
	r.GaugeVec("starlink_backend_up", "replica",
		"1 when the replica is live or in probation, 0 while ejected and cooling.",
		perReplica(func(rs backend.ReplicaSnapshot) uint64 {
			if rs.Live || rs.Probation {
				return 1
			}
			return 0
		}))
	r.GaugeVec("starlink_backend_inflight", "replica",
		"Service exchanges currently charged to the replica.",
		perReplica(func(rs backend.ReplicaSnapshot) uint64 { return uint64(rs.InFlight) }))
	r.CounterVec("starlink_backend_picks_total", "replica",
		"Balancing decisions that landed on the replica.",
		perReplica(func(rs backend.ReplicaSnapshot) uint64 { return rs.Picks }))
	r.CounterVec("starlink_backend_failures_total", "replica",
		"Exchange failures reported against the replica.",
		perReplica(func(rs backend.ReplicaSnapshot) uint64 { return rs.Failures }))
	r.CounterVec("starlink_backend_probes_total", "replica",
		"Active health probes sent to the replica.",
		perReplica(func(rs backend.ReplicaSnapshot) uint64 { return rs.Probes }))
	r.CounterVec("starlink_backend_probe_failures_total", "replica",
		"Active health probes the replica failed.",
		perReplica(func(rs backend.ReplicaSnapshot) uint64 { return rs.ProbeFailures }))
	perSet := func(f func(backend.SetSnapshot) uint64) func() map[string]uint64 {
		return func() map[string]uint64 {
			out := map[string]uint64{}
			for _, set := range med.Backends() {
				out[set.Name] = f(set)
			}
			return out
		}
	}
	r.CounterVec("starlink_backend_ejections_total", "set",
		"Replicas ejected from the set (passive or probe-driven).",
		perSet(func(s backend.SetSnapshot) uint64 { return s.Ejections }))
	r.CounterVec("starlink_backend_readmissions_total", "set",
		"Ejected replicas re-admitted after a probation success.",
		perSet(func(s backend.SetSnapshot) uint64 { return s.Readmissions }))
}

// registerDiscovery exports the mediator's discovery reconcilers:
// per-set resolution/churn counters and a last-resolution-age gauge.
// Registered only for mediators deployed with `discover` directives.
func registerDiscovery(r *Registry, med *engine.Mediator) {
	perSet := func(f func(discovery.Snapshot) uint64) func() map[string]uint64 {
		return func() map[string]uint64 {
			out := map[string]uint64{}
			for _, ds := range med.Discovery() {
				out[ds.Set] = f(ds)
			}
			return out
		}
	}
	r.CounterVec("starlink_discovery_resolutions_total", "set",
		"Source resolution rounds attempted for the set (including failed ones).",
		perSet(func(ds discovery.Snapshot) uint64 { return ds.Resolutions }))
	r.CounterVec("starlink_discovery_resolve_errors_total", "set",
		"Resolution rounds that failed (membership kept as-is).",
		perSet(func(ds discovery.Snapshot) uint64 { return ds.ResolveErrors }))
	r.CounterVec("starlink_discovery_endpoints_total", "set",
		"Endpoints returned across all successful resolutions.",
		perSet(func(ds discovery.Snapshot) uint64 { return ds.Endpoints }))
	r.CounterVec("starlink_discovery_adds_total", "set",
		"Replicas admitted into the set by discovery.",
		perSet(func(ds discovery.Snapshot) uint64 { return ds.Adds }))
	r.CounterVec("starlink_discovery_removes_total", "set",
		"Replicas drained and removed from the set by discovery.",
		perSet(func(ds discovery.Snapshot) uint64 { return ds.Removes }))
	r.CounterVec("starlink_discovery_flaps_suppressed_total", "set",
		"Endpoint flaps absorbed by the debounce window before admission.",
		perSet(func(ds discovery.Snapshot) uint64 { return ds.FlapsSuppressed }))
	r.GaugeVec("starlink_discovery_last_resolution_age_seconds", "set",
		"Seconds since the set's source last resolved successfully (absent until the first success).",
		func() map[string]uint64 {
			out := map[string]uint64{}
			for _, ds := range med.Discovery() {
				if ds.LastResolution >= 0 {
					out[ds.Set] = uint64(ds.LastResolution)
				}
			}
			return out
		})
}

// RegisterObserver wires the tracer's and flight recorder's own
// counters, plus the per-transition hit counts, into the registry.
func RegisterObserver(r *Registry, o *Observer) {
	r.Gauge("starlink_tracer_enabled", "1 when the flow tracer is enabled.",
		func() float64 {
			if o.Enabled() {
				return 1
			}
			return 0
		})
	r.Counter("starlink_tracer_events_total", "TraceEvents consumed by the tracer.",
		func() uint64 { return o.Stats().Events })
	r.Counter("starlink_tracer_flows_assembled_total", "Span trees assembled from completed flows.",
		func() uint64 { return o.Stats().FlowsAssembled })
	r.Counter("starlink_tracer_flows_sampled_total", "Completed flows kept in the flow ring.",
		func() uint64 { return o.Stats().FlowsSampled })
	r.Counter("starlink_tracer_flows_dropped_total", "Completed flows sampled out of the flow ring.",
		func() uint64 { return o.Stats().FlowsDropped })
	r.Gauge("starlink_recorder_entries", "Flows currently held by the flight recorder.",
		func() float64 { return float64(o.Recorder().Len()) })
	r.Counter("starlink_recorder_failed_total", "Failed flows flight-recorded.",
		func() uint64 { return o.Recorder().Stats().Failed })
	r.Counter("starlink_recorder_slow_total", "Slow flows flight-recorded.",
		func() uint64 { return o.Recorder().Stats().Slow })
	if o.transitions != nil {
		r.CounterVec("starlink_transition_hits_total", "transition",
			"Executions per merged-automaton transition.", o.TransitionHits)
	}
}

// MediatorRegistry builds a Registry pre-wired with a mediator's
// metrics and, when obs is non-nil, the observer's. This is the
// one-call path from "I have a mediator" to "I can serve /metrics".
func MediatorRegistry(med *engine.Mediator, obs *Observer) *Registry {
	r := NewRegistry()
	RegisterMediator(r, med)
	if obs != nil {
		RegisterObserver(r, obs)
	}
	return r
}

// Uptime is a small helper metric source for /healthz-style gauges.
type Uptime struct{ t0 time.Time }

// NewUptime starts counting now.
func NewUptime() *Uptime { return &Uptime{t0: time.Now()} }

// Elapsed is the time since construction.
func (u *Uptime) Elapsed() time.Duration { return time.Since(u.t0) }
