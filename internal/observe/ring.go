package observe

import "sync/atomic"

// ring is a bounded lock-free ring buffer of pointers: writers claim a
// slot with one atomic increment and store their entry with one atomic
// pointer store, overwriting the oldest entry once the ring is full.
// Readers snapshot the slots without blocking writers; a snapshot taken
// concurrently with writes may miss an in-flight entry or include one
// slightly out of order, which is acceptable for diagnostics.
type ring[T any] struct {
	slots []atomic.Pointer[T]
	next  atomic.Uint64
}

func newRing[T any](capacity int) *ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &ring[T]{slots: make([]atomic.Pointer[T], capacity)}
}

// add stores v, evicting the oldest entry when full.
func (r *ring[T]) add(v *T) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(v)
}

// len reports how many entries the ring currently holds.
func (r *ring[T]) len() int {
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// total reports how many entries were ever added (including evicted).
func (r *ring[T]) total() uint64 { return r.next.Load() }

// snapshot returns the current entries, oldest first.
func (r *ring[T]) snapshot() []*T {
	n := r.next.Load()
	size := uint64(len(r.slots))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]*T, 0, n-start)
	for i := start; i < n; i++ {
		if v := r.slots[i%size].Load(); v != nil {
			out = append(out, v)
		}
	}
	return out
}
