package observe

import (
	"encoding/json"
	"io"
	"sync/atomic"
	"time"
)

// Recorder is the flight recorder: a fixed-size ring of the last N
// failed or slow flows, each with its span tree and the truncated
// wire-level hexdump of the offending message. It answers the
// post-mortem question "what did the last few broken mediations
// actually look like on the wire" without stopping the mediator or
// re-running with ad-hoc hooks.
type Recorder struct {
	entries *ring[FlowTrace]
	slow    time.Duration

	failed   atomic.Uint64
	slowSeen atomic.Uint64
}

func newRecorder(capacity int, slow time.Duration) *Recorder {
	return &Recorder{entries: newRing[FlowTrace](capacity), slow: slow}
}

// offer records the flow if it failed, or if it was slower than the
// configured threshold.
func (r *Recorder) offer(ft *FlowTrace) {
	switch {
	case ft.Failed():
		r.failed.Add(1)
	case r.slow > 0 && ft.Duration() >= r.slow:
		r.slowSeen.Add(1)
	default:
		return
	}
	r.entries.add(ft)
}

// Entries snapshots the recorded flows, oldest first.
func (r *Recorder) Entries() []*FlowTrace { return r.entries.snapshot() }

// Len reports how many flows are currently held.
func (r *Recorder) Len() int { return r.entries.len() }

// RecorderStats are the recorder's lifetime counters.
type RecorderStats struct {
	// Failed and Slow count flows recorded for each reason (including
	// ones since evicted by the ring bound).
	Failed, Slow uint64
}

// Stats snapshots the recorder's counters.
func (r *Recorder) Stats() RecorderStats {
	return RecorderStats{Failed: r.failed.Load(), Slow: r.slowSeen.Load()}
}

// WriteJSON renders the recorded flows as a JSON array, oldest first.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	entries := r.Entries()
	if entries == nil {
		entries = []*FlowTrace{}
	}
	return enc.Encode(entries)
}
