package observe_test

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"

	"starlink/internal/automata"
	"starlink/internal/backend"
	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/engine"
	"starlink/internal/observe"
	"starlink/internal/protocol/giop"
	"starlink/internal/protocol/httpwire"
	"starlink/internal/protocol/soap"
)

// TestAdminEndToEnd runs the Fig. 7/8 Add/Plus scenario with a fully
// instrumented mediator — observer, metrics registry and admin endpoint
// — then drives good and bad flows through it and scrapes every admin
// route over the wire.
func TestAdminEndToEnd(t *testing.T) {
	plusSrv, err := soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
		"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			sum := 0
			for _, p := range params {
				n, _ := strconv.Atoi(p.Value)
				sum += n
			}
			return []soap.Param{{Name: "result", Value: strconv.Itoa(sum)}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer plusSrv.Close()

	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Name:  "Add+Plus",
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		t.Fatal(err)
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: plusSrv.Addr()},
		},
	}
	obs := observe.Instrument(&cfg, observe.Options{})
	med, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer med.Close()

	admin, err := observe.ServeAdmin("127.0.0.1:0", observe.AdminConfig{
		Registry: observe.MediatorRegistry(med, obs),
		Observer: obs,
		Mediator: med,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	// Two good flows on one session.
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int64{{20, 22}, {1, 2}} {
		results, err := client.Invoke("Add", giop.IntParam(pair[0]), giop.IntParam(pair[1]))
		if err != nil {
			t.Fatal(err)
		}
		if results[0].ValueString() != strconv.FormatInt(pair[0]+pair[1], 10) {
			t.Fatalf("Add = %v", results)
		}
	}
	client.Close()

	// One bad flow: the automaton expects Add, so Bogus parses but hits
	// an unexpected action — a failed flow for the flight recorder.
	bad, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Invoke("Bogus", giop.IntParam(1)); err == nil {
		t.Fatal("Bogus invocation succeeded")
	}
	bad.Close()

	// Sessions tear down asynchronously after client close.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		st := med.Stats()
		if st.Flows >= 2 && st.Failures >= 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	hc := &httpwire.Client{Addr: admin.Addr()}
	defer hc.Close()
	get := func(target string) *httpwire.Response {
		t.Helper()
		resp, err := hc.Get(target)
		if err != nil {
			t.Fatalf("GET %s: %v", target, err)
		}
		return resp
	}

	t.Run("healthz", func(t *testing.T) {
		resp := get("/healthz")
		if resp.Status != 200 {
			t.Fatalf("status = %d", resp.Status)
		}
		var body map[string]any
		if err := json.Unmarshal(resp.Body, &body); err != nil {
			t.Fatal(err)
		}
		if body["status"] != "ok" {
			t.Errorf("status field = %v", body["status"])
		}
		if body["sessions"].(float64) < 2 {
			t.Errorf("sessions = %v", body["sessions"])
		}
		if body["tracer_enabled"] != true {
			t.Errorf("tracer_enabled = %v", body["tracer_enabled"])
		}
	})

	t.Run("metrics", func(t *testing.T) {
		resp := get("/metrics")
		if resp.Status != 200 {
			t.Fatalf("status = %d", resp.Status)
		}
		if ct := resp.Headers["Content-Type"]; !strings.Contains(ct, "version=0.0.4") {
			t.Errorf("Content-Type = %q", ct)
		}
		out := string(resp.Body)
		for _, want := range []string{
			"starlink_flows_total 2",
			"starlink_failures_total 1",
			"starlink_tracer_enabled 1",
			"starlink_transition_seconds_bucket",
			"starlink_transition_seconds_count",
			"starlink_translate_compiled_total",
			"starlink_translate_interpreted_total",
			"starlink_translate_seconds_count",
			"starlink_transition_hits_total{transition=",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("metrics missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("flows", func(t *testing.T) {
		resp := get("/flows")
		if resp.Status != 200 {
			t.Fatalf("status = %d", resp.Status)
		}
		var flows []observe.FlowTrace
		if err := json.Unmarshal(resp.Body, &flows); err != nil {
			t.Fatalf("%v\n%s", err, resp.Body)
		}
		if len(flows) != 1 {
			t.Fatalf("recorded flows = %d, want the 1 failure", len(flows))
		}
		ft := flows[0]
		if ft.Err == "" {
			t.Error("recorded flow has no error")
		}
		if !strings.Contains(ft.Wire, "Bogus") {
			t.Errorf("wire hexdump does not show the offending request:\n%s", ft.Wire)
		}
		// ?n=0 truncates to nothing but stays valid JSON.
		resp = get("/flows?n=0")
		if err := json.Unmarshal(resp.Body, &flows); err != nil || len(flows) != 0 {
			t.Errorf("flows?n=0 = %s (err %v)", resp.Body, err)
		}
	})

	t.Run("automaton.dot", func(t *testing.T) {
		resp := get("/automaton.dot")
		if resp.Status != 200 {
			t.Fatalf("status = %d", resp.Status)
		}
		dot := string(resp.Body)
		if !strings.Contains(dot, "digraph \"Add+Plus\"") {
			t.Errorf("DOT header missing:\n%s", dot)
		}
		// The good path ran twice; at least one edge label shows it.
		if !strings.Contains(dot, "(2)") {
			t.Errorf("DOT has no live hit counts:\n%s", dot)
		}
	})

	t.Run("backends without sets", func(t *testing.T) {
		if resp := get("/backends"); resp.Status != 404 {
			t.Errorf("status = %d, want 404 when the mediator has no replica sets", resp.Status)
		}
	})

	t.Run("not-found and bad method", func(t *testing.T) {
		if resp := get("/nope"); resp.Status != 404 {
			t.Errorf("status = %d, want 404", resp.Status)
		}
		resp, err := hc.Post("/metrics", "text/plain", nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != 400 {
			t.Errorf("POST status = %d, want 400", resp.Status)
		}
	})
}

// TestAdminBackendsRoute deploys a mediator whose service side targets a
// one-replica backend set, drives a flow through it, and checks the
// /backends JSON view plus the backend and pool metric families.
func TestAdminBackendsRoute(t *testing.T) {
	plusSrv, err := soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
		"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			x, _ := strconv.Atoi(params[0].Value)
			y, _ := strconv.Atoi(params[1].Value)
			return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer plusSrv.Close()

	set, err := backend.New("plus", []string{plusSrv.Addr()}, backend.Options{Policy: backend.PowerOfTwo})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		t.Fatal(err)
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		t.Fatal(err)
	}
	med, err := engine.New(engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: "plus"},
		},
		Backends: map[string]*backend.Set{"plus": set},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer med.Close()

	admin, err := observe.ServeAdmin("127.0.0.1:0", observe.AdminConfig{
		Registry: observe.MediatorRegistry(med, nil),
		Mediator: med,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	results, err := client.Invoke("Add", giop.IntParam(20), giop.IntParam(22))
	client.Close()
	if err != nil {
		t.Fatal(err)
	}
	if results[0].ValueString() != "42" {
		t.Fatalf("Add = %v", results)
	}

	hc := &httpwire.Client{Addr: admin.Addr()}
	defer hc.Close()

	resp, err := hc.Get("/backends")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("GET /backends status = %d\n%s", resp.Status, resp.Body)
	}
	var snaps []backend.SetSnapshot
	if err := json.Unmarshal(resp.Body, &snaps); err != nil {
		t.Fatalf("%v\n%s", err, resp.Body)
	}
	if len(snaps) != 1 || snaps[0].Name != "plus" || snaps[0].Policy != backend.PowerOfTwo {
		t.Fatalf("backends = %+v", snaps)
	}
	if len(snaps[0].Replicas) != 1 || snaps[0].Replicas[0].Addr != plusSrv.Addr() {
		t.Fatalf("replicas = %+v", snaps[0].Replicas)
	}
	if rs := snaps[0].Replicas[0]; !rs.Live || rs.Picks == 0 {
		t.Errorf("replica = %+v, want live with at least one pick", rs)
	}

	resp, err = hc.Get("/metrics")
	if err != nil {
		t.Fatal(err)
	}
	out := string(resp.Body)
	label := "plus/" + plusSrv.Addr()
	for _, want := range []string{
		"starlink_backend_up{replica=\"" + label + "\"} 1",
		"starlink_backend_picks_total{replica=\"" + label + "\"}",
		"starlink_backend_ejections_total{set=\"plus\"} 0",
		"starlink_pool_idle_conns{key=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}
