package casestudy

import (
	"starlink/internal/automata"
	"starlink/internal/mtl"
)

// Discovery case: a UPnP/SSDP client multicasts M-SEARCH for
// "urn:schemas-upnp-org:service:Printer:1" while the only registry on the
// network is an SLP Directory Agent advertising "service:printer:lpr".
// The heterogeneity is combined, exactly as in the photo case: different
// middleware (SSDP's HTTP-over-UDP vs SLP's binary format) AND different
// application vocabulary (UPnP URNs vs SLP service: types) — so a
// protocol-level discovery bridge alone cannot connect them.

// ServiceTypeMap translates UPnP search targets to SLP service types; it
// is registered as the MTL function maptype() — a developer-provided
// semantic table, like the field-equivalence tables.
var ServiceTypeMap = map[string]string{
	"urn:schemas-upnp-org:service:Printer:1":    "service:printer:lpr",
	"urn:schemas-upnp-org:service:Scanner:1":    "service:scanner:sane",
	"urn:schemas-upnp-org:device:MediaServer:1": "service:media:http",
}

// DiscoveryTypeMapDoc is the on-disk form of the vocabulary map (the
// ".typemap" model artifact).
const DiscoveryTypeMapDoc = `
# UPnP search targets -> SLP service types
urn:schemas-upnp-org:service:Printer:1 = service:printer:lpr
urn:schemas-upnp-org:service:Scanner:1 = service:scanner:sane
urn:schemas-upnp-org:device:MediaServer:1 = service:media:http
`

// DiscoveryFuncs returns the custom MTL functions the discovery mediator
// needs (the maptype vocabulary translation).
func DiscoveryFuncs() map[string]mtl.Func {
	return map[string]mtl.Func{"maptype": mtl.TableFunc(ServiceTypeMap)}
}

// DiscoveryMediator returns the merged automaton mediating SSDP (color 1,
// the client side) to SLP (color 2): one intertwined discovery.search
// operation with γ translations mapping the vocabularies.
func DiscoveryMediator() *automata.Merged {
	b := newMediator("SSDP-to-SLP-discovery", 1, 2)
	req := b.msg(1, automata.Send, "discovery.search")
	b.bicolor(1, 2)
	slpReq := b.next()
	b.gamma(`
`+slpReq+`.Msg.servicetype = maptype(`+req+`.Msg.st)
`+slpReq+`.Msg.scope = "DEFAULT"
`, 2)
	b.msg(2, automata.Send, "discovery.search")
	slpRep := b.msg(2, automata.Receive, "discovery.search.reply")
	b.bicolor(1, 2)
	out := b.next()
	b.gamma(`
`+out+`.Msg.st = `+req+`.Msg.st
`+out+`.Msg.usn = concat("uuid:starlink-mediated::", `+req+`.Msg.st)
`+out+`.Msg.location = `+slpRep+`.Msg.urlentry.url
`, 1)
	b.msg(1, automata.Receive, "discovery.search.reply")
	return b.finish(automata.StronglyMerged)
}
