package casestudy

import "starlink/internal/automata"

// ReverseMediator returns the merged automaton for the opposite direction
// of the case study: a Picasa REST client (color 1) served by the Flickr
// XML-RPC service (color 2). It demonstrates that the binding layer is
// symmetric — the REST binder acts as the *server* side here, matching
// incoming requests against the route table, while XML-RPC plays the
// client-role service side.
//
// The Picasa usage protocol is search -> getComments -> addComment; each
// operation intertwines one-to-one with a Flickr operation (Flickr's
// extra getInfo is simply never invoked — an extra-message mismatch in
// the other direction, resolved by omission).
func ReverseMediator() *automata.Merged {
	b := newMediator("Picasa-REST-to-Flickr-XMLRPC", 1, 2)

	// -- search --
	req := b.msg(1, automata.Send, PicasaSearch)
	b.bicolor(1, 2)
	fReq := b.next()
	b.gamma(`
`+fReq+`.Msg.text = `+req+`.Msg.q
try `+fReq+`.Msg.per_page = `+req+`.Msg.max-results
`, 2)
	b.msg(2, automata.Send, FlickrSearch)
	fRep := b.msg(2, automata.Receive, FlickrSearchReply)
	b.bicolor(1, 2)
	rep := b.next()
	// The Flickr search reply binds as a "photos" array of item structs
	// {id, owner, title}; reshape them as feed entries. Flickr gives no
	// URL without getInfo, so entries carry id/title/author only.
	b.gamma(`
foreach p in `+fRep+`.Msg.photos.item {
  e = newstruct("entry")
  e.id = p.id
  e.title = p.title
  try e.author = p.owner
  `+rep+`.Msg.entry[] = e
}
`, 1)
	b.msg(1, automata.Receive, PicasaSearchReply)

	// -- getComments --
	gc := b.msg(1, automata.Send, PicasaGetComments)
	b.bicolor(1, 2)
	fgc := b.next()
	b.gamma(fgc+`.Msg.photo_id = `+gc+`.Msg.photo_id
`, 2)
	b.msg(2, automata.Send, FlickrGetComments)
	fcr := b.msg(2, automata.Receive, FlickrCommentsReply)
	b.bicolor(1, 2)
	crep := b.next()
	b.gamma(`
foreach c in `+fcr+`.Msg.comments.item {
  e = newstruct("entry")
  e.id = c.id
  e.title = "comment"
  e.summary = c.text
  try e.author = c.author
  `+crep+`.Msg.entry[] = e
}
`, 1)
	b.msg(1, automata.Receive, PicasaCommentsReply)

	// -- addComment --
	ac := b.msg(1, automata.Send, PicasaAddComment)
	b.bicolor(1, 2)
	fac := b.next()
	b.gamma(`
`+fac+`.Msg.photo_id = `+ac+`.Msg.photo_id
`+fac+`.Msg.comment_text = `+ac+`.Msg.entry.summary
`, 2)
	b.msg(2, automata.Send, FlickrAddComment)
	facr := b.msg(2, automata.Receive, FlickrAddReply)
	b.bicolor(1, 2)
	arep := b.next()
	b.gamma(`
e = newstruct("entry")
e.id = `+facr+`.Msg.comment_id
e.title = "comment"
e.summary = `+ac+`.Msg.entry.summary
`+arep+`.Msg.entry = e
`, 1)
	b.msg(1, automata.Receive, PicasaAddReply)

	return b.finish(automata.StronglyMerged)
}
