// Package casestudy holds the Flickr/Picasa models of the paper's
// motivating scenario (Section 2) and evaluation (Section 5): the API
// usage automata of Fig. 2, the semantic-equivalence table that stands in
// for the ontology the paper leaves to future work, and the
// hand-constructed merged automaton of Fig. 3.
package casestudy

import "starlink/internal/automata"

// Abstract message names used by the Flickr API usage automaton. The
// ".reply" suffix distinguishes the received message of an invocation.
const (
	FlickrSearch        = "flickr.photos.search"
	FlickrSearchReply   = "flickr.photos.search.reply"
	FlickrGetInfo       = "flickr.photos.getInfo"
	FlickrGetInfoReply  = "flickr.photos.getInfo.reply"
	FlickrGetComments   = "flickr.photos.comments.getList"
	FlickrCommentsReply = "flickr.photos.comments.getList.reply"
	FlickrAddComment    = "flickr.photos.comments.addComment"
	FlickrAddReply      = "flickr.photos.comments.addComment.reply"
)

// Abstract message names used by the Picasa API usage automaton.
const (
	PicasaSearch        = "picasa.photos.search"
	PicasaSearchReply   = "picasa.photos.search.reply"
	PicasaGetComments   = "picasa.getComments"
	PicasaCommentsReply = "picasa.getComments.reply"
	PicasaAddComment    = "picasa.addComment"
	PicasaAddReply      = "picasa.addComment.reply"
)

// FlickrUsage returns A_Flickr (Fig. 2, restricted to the evaluation's
// search -> getInfo -> getComments -> addComment behaviour): the call
// graph a Flickr client follows.
func FlickrUsage() *automata.Automaton {
	return &automata.Automaton{
		Name:  "AFlickr",
		Color: 1,
		Start: "s0",
		Final: []string{"s8"},
		States: []string{
			"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8",
		},
		Transitions: []automata.Transition{
			{From: "s0", To: "s1", Action: automata.Send, Message: FlickrSearch},
			{From: "s1", To: "s2", Action: automata.Receive, Message: FlickrSearchReply},
			{From: "s2", To: "s3", Action: automata.Send, Message: FlickrGetInfo},
			{From: "s3", To: "s4", Action: automata.Receive, Message: FlickrGetInfoReply},
			{From: "s4", To: "s5", Action: automata.Send, Message: FlickrGetComments},
			{From: "s5", To: "s6", Action: automata.Receive, Message: FlickrCommentsReply},
			{From: "s6", To: "s7", Action: automata.Send, Message: FlickrAddComment},
			{From: "s7", To: "s8", Action: automata.Receive, Message: FlickrAddReply},
		},
		Messages: map[string]automata.MsgDef{
			FlickrSearch: {
				Name:     FlickrSearch,
				Fields:   []string{"api_key", "text", "per_page", "page"},
				Optional: []string{"api_key", "per_page", "page"},
			},
			FlickrSearchReply: {
				Name:   FlickrSearchReply,
				Fields: []string{"photo_id"},
			},
			FlickrGetInfo: {
				Name:     FlickrGetInfo,
				Fields:   []string{"api_key", "photo_id"},
				Optional: []string{"api_key"},
			},
			FlickrGetInfoReply: {
				Name:   FlickrGetInfoReply,
				Fields: []string{"title", "url"},
			},
			FlickrGetComments: {
				Name:     FlickrGetComments,
				Fields:   []string{"api_key", "photo_id", "min_comment_date", "max_comment_date"},
				Optional: []string{"api_key", "min_comment_date", "max_comment_date"},
			},
			FlickrCommentsReply: {
				Name:   FlickrCommentsReply,
				Fields: []string{"comment"},
			},
			FlickrAddComment: {
				Name:     FlickrAddComment,
				Fields:   []string{"api_key", "photo_id", "comment_text"},
				Optional: []string{"api_key"},
			},
			FlickrAddReply: {
				Name:   FlickrAddReply,
				Fields: []string{"comment_id"},
			},
		},
	}
}

// PicasaUsage returns A_Picasa (Fig. 2): search, list comments, add a
// comment — with the photo URL delivered directly in the search feed.
func PicasaUsage() *automata.Automaton {
	return &automata.Automaton{
		Name:  "APicasa",
		Color: 2,
		Start: "s0",
		Final: []string{"s6"},
		States: []string{
			"s0", "s1", "s2", "s3", "s4", "s5", "s6",
		},
		Transitions: []automata.Transition{
			{From: "s0", To: "s1", Action: automata.Send, Message: PicasaSearch},
			{From: "s1", To: "s2", Action: automata.Receive, Message: PicasaSearchReply},
			{From: "s2", To: "s3", Action: automata.Send, Message: PicasaGetComments},
			{From: "s3", To: "s4", Action: automata.Receive, Message: PicasaCommentsReply},
			{From: "s4", To: "s5", Action: automata.Send, Message: PicasaAddComment},
			{From: "s5", To: "s6", Action: automata.Receive, Message: PicasaAddReply},
		},
		Messages: map[string]automata.MsgDef{
			PicasaSearch: {
				Name:     PicasaSearch,
				Fields:   []string{"q", "max-results"},
				Optional: []string{"max-results"},
			},
			PicasaSearchReply: {
				Name:   PicasaSearchReply,
				Fields: []string{"id", "title", "src"},
			},
			PicasaGetComments: {
				Name:     PicasaGetComments,
				Fields:   []string{"id", "kind"},
				Optional: []string{"kind"},
			},
			PicasaCommentsReply: {
				Name:   PicasaCommentsReply,
				Fields: []string{"comment"},
			},
			PicasaAddComment: {
				Name:   PicasaAddComment,
				Fields: []string{"id", "entry"},
			},
			PicasaAddReply: {
				Name:   PicasaAddReply,
				Fields: []string{"comment_id"},
			},
		},
	}
}

// Equivalence returns the semantic-equivalence table ≅ between Flickr and
// Picasa field labels (the developer-provided stand-in for an ontology).
func Equivalence() *automata.Equivalence {
	return automata.NewEquivalence(
		[2]string{"text", "q"},
		[2]string{"per_page", "max-results"},
		[2]string{"photo_id", "id"},
		[2]string{"url", "src"},
		[2]string{"comment_text", "entry"},
	)
}
