package casestudy

import "starlink/internal/automata"

// The shopping case study: a legacy XML-RPC storefront client mediated
// onto a JSON-RPC catalog/order service. It plays the same role for the
// RPC-family protocols that the Flickr/Picasa pair plays for the
// REST/feed family — a second, structurally different set of γ
// translation programs (flat order lines, nested order documents, a
// price cache) used by the interoperability tests and as the second
// workload of the translation benchmark (EXPERIMENTS.md E15).

// Shop-side (color 1) message names.
const (
	ShopSearch          = "shop.products.search"
	ShopSearchReply     = "shop.products.search.reply"
	ShopGetProduct      = "shop.products.getProduct"
	ShopGetProductReply = "shop.products.getProduct.reply"
	ShopCheckout        = "shop.cart.checkout"
	ShopCheckoutReply   = "shop.cart.checkout.reply"
)

// Catalog/order-side (color 2) message names.
const (
	CatalogSearch      = "catalog.search"
	CatalogSearchReply = "catalog.search.reply"
	OrderCreate        = "orders.create"
	OrderCreateReply   = "orders.create.reply"
)

// OrderHost is the logical host the checkout translation retargets to;
// deployments resolve it through the engine's HostMap.
const OrderHost = "https://orders.example.com"

// ShoppingMediator returns the concrete merged automaton for the
// "XML-RPC shop client -> JSON-RPC catalog service" case. Color 1 is
// the shop client, color 2 the catalog/order service. Its three flows
// mirror the Flickr mediator's shapes: a searched-and-cached catalog
// scan, a cache-answered product lookup, and a checkout that rebuilds
// flat order lines into a nested order document.
func ShoppingMediator() *automata.Merged {
	b := newMediator("Shop-XMLRPC-to-Catalog-JSONRPC", 1, 2)

	// -- product search: translate the query, cache every hit --
	req := b.msg(1, automata.Send, ShopSearch)
	b.bicolor(1, 2)
	catReq := b.next()
	b.gamma(`
`+catReq+`.Msg.query = `+req+`.Msg.keywords
try `+catReq+`.Msg.limit = `+req+`.Msg.max
`, 2)
	b.msg(2, automata.Send, CatalogSearch)
	catRep := b.msg(2, automata.Receive, CatalogSearchReply)
	b.bicolor(1, 2)
	rep := b.next()
	b.gamma(`
`+rep+`.Msg.products = newarray("products")
foreach p in `+catRep+`.Msg.result.item {
  cache(p.sku, p)
  it = newstruct("item")
  it.sku = p.sku
  it.name = p.name
  it.price = p.price
  `+rep+`.Msg.products.item[] = it
}
`+rep+`.Msg.count = count(`+catRep+`.Msg.result)
`, 1)
	b.msg(1, automata.Receive, ShopSearchReply)

	// -- product detail: answered from the session cache, no service call --
	g := b.msg(1, automata.Send, ShopGetProduct)
	gRep := b.next()
	b.gamma(`
p = getcache(`+g+`.Msg.sku)
`+gRep+`.Msg.sku = `+g+`.Msg.sku
`+gRep+`.Msg.name = p.name
`+gRep+`.Msg.price = p.price
try `+gRep+`.Msg.stock = p.stock
`, 1)
	b.msg(1, automata.Receive, ShopGetProductReply)

	// -- checkout: flat cart lines become a nested order document --
	co := b.msg(1, automata.Send, ShopCheckout)
	b.bicolor(1, 2)
	ord := b.next()
	b.gamma(`
sethost("`+OrderHost+`")
`+ord+`.Msg.order = newstruct("order")
`+ord+`.Msg.order.customer = `+co+`.Msg.customer
foreach l in `+co+`.Msg.lines.line {
  e = newstruct("item")
  e.sku = l.sku
  e.qty = l.qty
  `+ord+`.Msg.order.items.item[] = e
}
`, 2)
	b.msg(2, automata.Send, OrderCreate)
	oRep := b.msg(2, automata.Receive, OrderCreateReply)
	b.bicolor(1, 2)
	fin := b.next()
	b.gamma(fin+`.Msg.order_id = `+oRep+`.Msg.id
`+fin+`.Msg.total = `+oRep+`.Msg.total
`, 1)
	b.msg(1, automata.Receive, ShopCheckoutReply)

	return b.finish(automata.StronglyMerged)
}
