package casestudy

import (
	"starlink/internal/mdl/textenc"
	"starlink/internal/protocol/giop"
)

// EquivalenceDoc is the on-disk form of the Flickr/Picasa semantic
// equivalence table (the developer-provided ≅ relation).
const EquivalenceDoc = `
# Flickr <-> Picasa field equivalences (the ontology substitute)
text = q
per_page = max-results
photo_id = id
url = src
comment_text = entry
`

// GIOPMDLDoc re-exports the GIOP message description for the models
// directory.
const GIOPMDLDoc = giop.MDLDoc

// HTTPMDLDoc re-exports the HTTP text-MDL for the models directory.
const HTTPMDLDoc = textenc.HTTPMDL

// XMLRPCMediatorSpecDoc deploys the XML-RPC case-study mediator. Target
// and hostmap addresses are placeholders for a real deployment; tests and
// examples override them.
const XMLRPCMediatorSpecDoc = `
# Flickr XML-RPC client -> Picasa REST service
merged Flickr-XMLRPC-to-Picasa-REST
listen 127.0.0.1:9001
side 1 xmlrpc path=/services/xmlrpc defs=AFlickr server
side 2 rest routes=picasa target=127.0.0.1:9002
hostmap https://picasaweb.google.com = 127.0.0.1:9002
`

// SOAPMediatorSpecDoc deploys the SOAP case-study mediator.
const SOAPMediatorSpecDoc = `
# Flickr SOAP client -> Picasa REST service
merged Flickr-SOAP-to-Picasa-REST
listen 127.0.0.1:9003
side 1 soap path=/services/soap server
side 2 rest routes=picasa target=127.0.0.1:9002
hostmap https://picasaweb.google.com = 127.0.0.1:9002
`

// DiscoveryMediatorSpecDoc deploys the SSDP->SLP discovery mediator. The
// target address is a placeholder overridden at deployment.
const DiscoveryMediatorSpecDoc = `
# UPnP/SSDP control point -> SLP Directory Agent
merged SSDP-to-SLP-discovery
listen 127.0.0.1:1900
typemap upnp-to-slp
side 1 ssdp server udp
side 2 slp udp target=127.0.0.1:427
`

// GatewaySpecDoc deploys a mediation gateway fronting both HTTP
// case-study mediators behind one listener: the wire sniffer
// classifies each connection and the request path tells the XML-RPC
// route from the SOAP route. Admission limits are illustrative.
const GatewaySpecDoc = `
# One front door for the Flickr mediators
listen 127.0.0.1:9000
route xmlrpc flickr-xmlrpc path=/services/xmlrpc maxflows=64
route soap flickr-soap path=/services/soap maxflows=64
default xmlrpc
`
