package casestudy

import "starlink/internal/automata"

// PicasaRoutesDoc is the REST binding route table for the Picasa side
// (the GET/POST syntax column of Fig. 1), in the bind package's route
// DSL.
const PicasaRoutesDoc = `
# Picasa GData routes (Fig. 1)
route picasa.photos.search GET /data/feed/api/all q=q max-results=max-results -> feed
route picasa.getComments GET /data/feed/api/photoid/{photo_id} kind=kind -> feed
route picasa.addComment POST /data/feed/api/photoid/{photo_id} body=entry -> entry
`

// PicasaHost is the logical host the Fig. 9 SetHost translation targets;
// deployments map it to the real service address through the engine's
// HostMap.
const PicasaHost = "https://picasaweb.google.com"

// mediatorBuilder assembles a linear concrete merged automaton with the
// m0, m1, ... naming discipline used by the MTL below.
type mediatorBuilder struct {
	m   *automata.Merged
	cur string
	n   int
}

func newMediator(name string, c1, c2 int) *mediatorBuilder {
	b := &mediatorBuilder{m: &automata.Merged{Name: name, Color1: c1, Color2: c2}}
	b.cur = b.add(c1)
	b.m.Start = b.cur
	return b
}

func (b *mediatorBuilder) add(colors ...int) string {
	name := "m" + itoa(b.n)
	b.n++
	b.m.States = append(b.m.States, automata.MergedState{Name: name, Colors: colors})
	return name
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}

// next returns the name the NEXT created state will get — used to write
// γ MTL that targets the state it flows into.
func (b *mediatorBuilder) next() string { return "m" + itoa(b.n) }

func (b *mediatorBuilder) msg(color int, act automata.Action, msgName string) string {
	to := b.add(color)
	b.m.Transitions = append(b.m.Transitions, automata.MergedTransition{
		From: b.cur, To: to, Kind: automata.KindMessage,
		Color: color, Action: act, Message: msgName,
	})
	b.cur = to
	return to
}

func (b *mediatorBuilder) gamma(mtlSrc string, colors ...int) string {
	to := b.add(colors...)
	b.m.Transitions = append(b.m.Transitions, automata.MergedTransition{
		From: b.cur, To: to, Kind: automata.KindGamma, MTL: mtlSrc,
	})
	b.cur = to
	return to
}

func (b *mediatorBuilder) bicolor(colors ...int) {
	for i := range b.m.States {
		if b.m.States[i].Name != b.cur {
			continue
		}
		b.m.States[i].Colors = colors
		return
	}
}

func (b *mediatorBuilder) finish(strength automata.Strength) *automata.Merged {
	b.m.Final = []string{b.cur}
	b.m.Strength = strength
	return b.m
}

// XMLRPCMediator returns the developer-constructed concrete merged
// automaton for the "Flickr XML-RPC client -> Picasa REST service" case
// (Figs. 3, 9 and 10 made executable). Color 1 is the Flickr side, color
// 2 the Picasa side.
func XMLRPCMediator() *automata.Merged {
	b := newMediator("Flickr-XMLRPC-to-Picasa-REST", 1, 2)

	// -- search (Fig. 9) --
	req := b.msg(1, automata.Send, FlickrSearch)
	b.bicolor(1, 2)
	picReq := b.next()
	b.gamma(`
# Fig. 9: S3.HTTPGet.Parameter1 = S2.MethodCall.Params.param1 ; SetHost(...)
sethost("`+PicasaHost+`")
`+picReq+`.Msg.q = `+req+`.Msg.text
try `+picReq+`.Msg.max-results = `+req+`.Msg.per_page
`, 2)
	b.msg(2, automata.Send, PicasaSearch)
	feed := b.msg(2, automata.Receive, PicasaSearchReply)
	b.bicolor(1, 2)
	reply := b.next()
	b.gamma(`
# Fig. 9: for all <entry>: cache(Photo, entryN); build the Flickr photo list
`+reply+`.Msg.photos = newarray("photos")
foreach e in `+feed+`.Msg.entry {
  cache(e.id, e)
  p = newstruct("item")
  p.id = e.id
  p.title = e.title
  try p.owner = e.author
  `+reply+`.Msg.photos.item[] = p
}
`+reply+`.Msg.total = count(`+feed+`.Msg)
`, 1)
	b.msg(1, automata.Receive, FlickrSearchReply)

	// -- getInfo (Fig. 10): answered from the cache, no Picasa call --
	info := b.msg(1, automata.Send, FlickrGetInfo)
	infoReply := b.next()
	b.gamma(`
# Fig. 10: Entry = getCache(photo_id); fill the Flickr <photo> structure
entry = getcache(`+info+`.Msg.photo_id)
`+infoReply+`.Msg.id = `+info+`.Msg.photo_id
`+infoReply+`.Msg.title = entry.title
`+infoReply+`.Msg.url = entry.src
try `+infoReply+`.Msg.owner = entry.author
`, 1)
	b.msg(1, automata.Receive, FlickrGetInfoReply)

	// -- getComments --
	gc := b.msg(1, automata.Send, FlickrGetComments)
	b.bicolor(1, 2)
	pgc := b.next()
	b.gamma(`
`+pgc+`.Msg.photo_id = `+gc+`.Msg.photo_id
`+pgc+`.Msg.kind = "comment"
`, 2)
	b.msg(2, automata.Send, PicasaGetComments)
	cFeed := b.msg(2, automata.Receive, PicasaCommentsReply)
	b.bicolor(1, 2)
	cReply := b.next()
	b.gamma(`
`+cReply+`.Msg.comments = newarray("comments")
foreach e in `+cFeed+`.Msg.entry {
  c = newstruct("item")
  c.id = e.id
  c.text = e.summary
  try c.author = e.author
  `+cReply+`.Msg.comments.item[] = c
}
`, 1)
	b.msg(1, automata.Receive, FlickrCommentsReply)

	// -- addComment --
	ac := b.msg(1, automata.Send, FlickrAddComment)
	b.bicolor(1, 2)
	pac := b.next()
	b.gamma(`
`+pac+`.Msg.photo_id = `+ac+`.Msg.photo_id
e = newstruct("entry")
e.summary = `+ac+`.Msg.comment_text
e.author = "flickr-user"
`+pac+`.Msg.entry = e
`, 2)
	b.msg(2, automata.Send, PicasaAddComment)
	acRep := b.msg(2, automata.Receive, PicasaAddReply)
	b.bicolor(1, 2)
	final := b.next()
	b.gamma(final+`.Msg.comment_id = `+acRep+`.Msg.entry.id
`, 1)
	b.msg(1, automata.Receive, FlickrAddReply)

	return b.finish(automata.StronglyMerged)
}

// SOAPMediator returns the concrete merged automaton for the "Flickr SOAP
// client -> Picasa REST service" case. The application merge is the same
// as XMLRPCMediator; only the reply shaping differs because the SOAP
// Flickr API returns flat repeated parameters instead of nested structs —
// exactly the point of Section 4.4: one application model, two concrete
// bindings.
func SOAPMediator() *automata.Merged {
	b := newMediator("Flickr-SOAP-to-Picasa-REST", 1, 2)

	// -- search --
	req := b.msg(1, automata.Send, FlickrSearch)
	b.bicolor(1, 2)
	picReq := b.next()
	b.gamma(`
sethost("`+PicasaHost+`")
`+picReq+`.Msg.q = `+req+`.Msg.text
try `+picReq+`.Msg.max-results = `+req+`.Msg.per_page
`, 2)
	b.msg(2, automata.Send, PicasaSearch)
	feed := b.msg(2, automata.Receive, PicasaSearchReply)
	b.bicolor(1, 2)
	reply := b.next()
	b.gamma(`
foreach e in `+feed+`.Msg.entry {
  cache(e.id, e)
  `+reply+`.Msg.photo_id[] = e.id
}
`+reply+`.Msg.total = count(`+feed+`.Msg)
`, 1)
	b.msg(1, automata.Receive, FlickrSearchReply)

	// -- getInfo (cache) --
	info := b.msg(1, automata.Send, FlickrGetInfo)
	infoReply := b.next()
	b.gamma(`
entry = getcache(`+info+`.Msg.photo_id)
`+infoReply+`.Msg.id = `+info+`.Msg.photo_id
`+infoReply+`.Msg.title = entry.title
`+infoReply+`.Msg.url = entry.src
try `+infoReply+`.Msg.owner = entry.author
`, 1)
	b.msg(1, automata.Receive, FlickrGetInfoReply)

	// -- getComments --
	gc := b.msg(1, automata.Send, FlickrGetComments)
	b.bicolor(1, 2)
	pgc := b.next()
	b.gamma(`
`+pgc+`.Msg.photo_id = `+gc+`.Msg.photo_id
`+pgc+`.Msg.kind = "comment"
`, 2)
	b.msg(2, automata.Send, PicasaGetComments)
	cFeed := b.msg(2, automata.Receive, PicasaCommentsReply)
	b.bicolor(1, 2)
	cReply := b.next()
	b.gamma(`
foreach e in `+cFeed+`.Msg.entry {
  `+cReply+`.Msg.comment[] = concat(e.author, ": ", e.summary)
}
`, 1)
	b.msg(1, automata.Receive, FlickrCommentsReply)

	// -- addComment --
	ac := b.msg(1, automata.Send, FlickrAddComment)
	b.bicolor(1, 2)
	pac := b.next()
	b.gamma(`
`+pac+`.Msg.photo_id = `+ac+`.Msg.photo_id
e = newstruct("entry")
e.summary = `+ac+`.Msg.comment_text
e.author = "flickr-user"
`+pac+`.Msg.entry = e
`, 2)
	b.msg(2, automata.Send, PicasaAddComment)
	acRep := b.msg(2, automata.Receive, PicasaAddReply)
	b.bicolor(1, 2)
	final := b.next()
	b.gamma(final+`.Msg.comment_id = `+acRep+`.Msg.entry.id
`, 1)
	b.msg(1, automata.Receive, FlickrAddReply)

	return b.finish(automata.StronglyMerged)
}

// ---- The Fig. 7/8 addition example: IIOP Add(x,y) vs SOAP Plus(x,y) ----

// AddUsage is the IIOP client's API usage automaton: one Add invocation.
func AddUsage() *automata.Automaton {
	return &automata.Automaton{
		Name: "AAdd", Color: 1, Start: "s0", Final: []string{"s2"},
		States: []string{"s0", "s1", "s2"},
		Transitions: []automata.Transition{
			{From: "s0", To: "s1", Action: automata.Send, Message: "Add"},
			{From: "s1", To: "s2", Action: automata.Receive, Message: "Add.reply"},
		},
		Messages: map[string]automata.MsgDef{
			"Add":       {Name: "Add", Fields: []string{"x", "y"}},
			"Add.reply": {Name: "Add.reply", Fields: []string{"z"}},
		},
	}
}

// PlusUsage is the SOAP service's API usage automaton: one Plus
// invocation with the same parameters under a different operation name —
// the Fig. 8 mismatch.
func PlusUsage() *automata.Automaton {
	return &automata.Automaton{
		Name: "APlus", Color: 2, Start: "s0", Final: []string{"s2"},
		States: []string{"s0", "s1", "s2"},
		Transitions: []automata.Transition{
			{From: "s0", To: "s1", Action: automata.Send, Message: "Plus"},
			{From: "s1", To: "s2", Action: automata.Receive, Message: "Plus.reply"},
		},
		Messages: map[string]automata.MsgDef{
			"Plus":       {Name: "Plus", Fields: []string{"x", "y"}},
			"Plus.reply": {Name: "Plus.reply", Fields: []string{"result"}},
		},
	}
}

// AddPlusEquivalence maps the addition example's field labels.
func AddPlusEquivalence() *automata.Equivalence {
	return automata.NewEquivalence(
		[2]string{"z", "result"},
	)
}
