package casestudy

import "starlink/internal/automata"

// Read-only search mediators for the cross-flow response-cache
// experiment (EXPERIMENTS.md E16): the search segments of the two case
// studies lifted into standalone merged automata, so one flow is
// exactly one cacheable service exchange. The full mediators interleave
// reads with writes (addComment, checkout) inside a single linear
// traversal, which caps the service-exchange reduction a response cache
// can show; these isolate the read-mostly workload the cache targets.

// SearchMediator is the Flickr/Picasa search flow on its own: the
// XML-RPC flickr.photos.search request is translated to a Picasa REST
// query and the Atom-style feed shaped back into the Flickr photo list.
func SearchMediator() *automata.Merged {
	b := newMediator("Flickr-Search-to-Picasa-REST", 1, 2)

	req := b.msg(1, automata.Send, FlickrSearch)
	b.bicolor(1, 2)
	picReq := b.next()
	b.gamma(`
sethost("`+PicasaHost+`")
`+picReq+`.Msg.q = `+req+`.Msg.text
try `+picReq+`.Msg.max-results = `+req+`.Msg.per_page
`, 2)
	b.msg(2, automata.Send, PicasaSearch)
	feed := b.msg(2, automata.Receive, PicasaSearchReply)
	b.bicolor(1, 2)
	reply := b.next()
	b.gamma(`
`+reply+`.Msg.photos = newarray("photos")
foreach e in `+feed+`.Msg.entry {
  p = newstruct("item")
  p.id = e.id
  p.title = e.title
  try p.owner = e.author
  `+reply+`.Msg.photos.item[] = p
}
`+reply+`.Msg.total = count(`+feed+`.Msg)
`, 1)
	b.msg(1, automata.Receive, FlickrSearchReply)

	return b.finish(automata.StronglyMerged)
}

// ShoppingSearchMediator is the shop/catalog search flow on its own:
// the XML-RPC shop.products.search request becomes a JSON-RPC
// catalog.search call and the nested result list is flattened back
// into the shop's product rows.
func ShoppingSearchMediator() *automata.Merged {
	b := newMediator("Shop-Search-to-Catalog-JSONRPC", 1, 2)

	req := b.msg(1, automata.Send, ShopSearch)
	b.bicolor(1, 2)
	catReq := b.next()
	b.gamma(`
`+catReq+`.Msg.query = `+req+`.Msg.keywords
try `+catReq+`.Msg.limit = `+req+`.Msg.max
`, 2)
	b.msg(2, automata.Send, CatalogSearch)
	catRep := b.msg(2, automata.Receive, CatalogSearchReply)
	b.bicolor(1, 2)
	rep := b.next()
	b.gamma(`
`+rep+`.Msg.products = newarray("products")
foreach p in `+catRep+`.Msg.result.item {
  it = newstruct("item")
  it.sku = p.sku
  it.name = p.name
  it.price = p.price
  `+rep+`.Msg.products.item[] = it
}
`+rep+`.Msg.count = count(`+catRep+`.Msg.result)
`, 1)
	b.msg(1, automata.Receive, ShopSearchReply)

	return b.finish(automata.StronglyMerged)
}
