//go:build !race

// Package testutil holds small helpers shared by the repo's tests.
package testutil

// RaceEnabled reports whether the race detector is compiled in. The
// allocation-budget tests still execute their hot paths under -race (so
// the race CI job exercises them) but skip the strict allocs-per-op
// assertions, which the detector's instrumentation would violate.
const RaceEnabled = false
