package testutil

import (
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB NoLeaks needs; declared here so the
// package stays importable outside tests.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// NoLeaks runs fn and asserts every goroutine it started is gone
// afterwards. Shutdown is asynchronous in places (probe loops winding
// down, drains completing), so the check polls until the goroutine
// count returns to its baseline or five seconds pass; on failure it
// dumps all stacks so the leaked loop is identifiable. Use it to pin
// the lifecycle contracts of anything that spawns background work:
//
//	testutil.NoLeaks(t, func() {
//		set, _ := backend.New(...)
//		set.Start()
//		set.Close()
//	})
//
// The count-based check is deliberately simple — it can be fooled by
// unrelated goroutines exiting mid-test — so keep fn self-contained.
func NoLeaks(t TB, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutine leak: %d before, %d after; stacks:\n%s",
		before, runtime.NumGoroutine(), summarize(string(buf[:n])))
}

// summarize trims the stack dump to the goroutine headers plus their
// top frames — enough to name the leak without pages of noise.
func summarize(stacks string) string {
	var b strings.Builder
	for _, g := range strings.Split(stacks, "\n\n") {
		lines := strings.Split(g, "\n")
		if len(lines) > 5 {
			lines = lines[:5]
		}
		b.WriteString(strings.Join(lines, "\n"))
		b.WriteString("\n\n")
	}
	return b.String()
}
