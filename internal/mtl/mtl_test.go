package mtl

import (
	"errors"
	"strings"
	"testing"

	"starlink/internal/message"
)

func envWith(t *testing.T, handles map[string]*message.Message) *Env {
	t.Helper()
	env := NewEnv(&Cache{})
	for h, m := range handles {
		env.Bind(h, m)
	}
	return env
}

func run(t *testing.T, src string, env *Env) {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := p.Exec(env); err != nil {
		t.Fatalf("exec: %v", err)
	}
}

func TestFig8ParameterCopy(t *testing.T) {
	// S22.SOAPRqst.X = S21.GIOPRqst.X — the Add/Plus binding of Fig. 8.
	giop := message.New("GIOPRequest",
		message.NewArray("ParameterArray",
			message.NewPrimitive("Parameter", message.TypeInt64, 20),
			message.NewPrimitive("Parameter", message.TypeInt64, 22),
		),
	)
	soap := message.New("SOAPRequest")
	env := envWith(t, map[string]*message.Message{"s21": giop, "s22": soap})
	run(t, `
s22.SOAPRequest.Body.Plus.x = s21.GIOPRequest.ParameterArray.Parameter[0]
s22.SOAPRequest.Body.Plus.y = s21.GIOPRequest.ParameterArray.Parameter[1]
`, env)
	x, err := soap.GetInt("Body.Plus.x")
	if err != nil {
		t.Fatal(err)
	}
	y, _ := soap.GetInt("Body.Plus.y")
	if x != 20 || y != 22 {
		t.Errorf("x, y = %d, %d", x, y)
	}
}

func TestSetHostAndLiterals(t *testing.T) {
	env := envWith(t, map[string]*message.Message{"s3": message.New("HTTPRequest")})
	run(t, `
sethost("https://picasaweb.google.com")
s3.HTTPRequest.Method = "GET"
s3.HTTPRequest.Query.max-results = 3
`, env)
	if env.Host != "https://picasaweb.google.com" {
		t.Errorf("Host = %q", env.Host)
	}
	m := env.Message("s3")
	if v, _ := m.GetString("Method"); v != "GET" {
		t.Errorf("Method = %q", v)
	}
	if v, _ := m.GetInt("Query.max-results"); v != 3 {
		t.Errorf("max-results = %v", v)
	}
}

func TestForeachCacheAndAppend(t *testing.T) {
	// Fig. 9: for every feed entry, cache it and append a photo id.
	feed := message.New("HTTPOK",
		message.NewStruct("Body",
			message.NewStruct("feed",
				message.NewStruct("entry",
					message.NewPrimitive("id", message.TypeString, "p1"),
					message.NewPrimitive("title", message.TypeString, "tree"),
				),
				message.NewStruct("entry",
					message.NewPrimitive("id", message.TypeString, "p2"),
					message.NewPrimitive("title", message.TypeString, "oak"),
				),
			),
		),
	)
	resp := message.New("MethodResponse")
	env := envWith(t, map[string]*message.Message{"s5": feed, "s6": resp})
	run(t, `
foreach e in s5.HTTPOK.Body.feed.entry {
  cache(e.id, e)
  s6.MethodResponse.photos.photo[] = e.id
}
`, env)
	ph, err := resp.Lookup("photos")
	if err != nil {
		t.Fatal(err)
	}
	if len(ph.Children) != 2 {
		t.Fatalf("photos = %d", len(ph.Children))
	}
	if v, _ := resp.GetString("photos.photo[1]"); v != "p2" {
		t.Errorf("photo[1] = %q", v)
	}
	if env.Cache.Len() != 2 {
		t.Errorf("cache size = %d", env.Cache.Len())
	}
	got, err := env.Cache.Get("p1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Child("title").ValueString() != "tree" {
		t.Errorf("cached entry title = %q", got.Child("title").ValueString())
	}
}

func TestFig10GetCacheMismatch(t *testing.T) {
	// Fig. 10: fill the Flickr <photo> reply from the cached Picasa entry.
	cache := &Cache{}
	cache.Put("p1", message.NewStruct("entry",
		message.NewPrimitive("title", message.TypeString, "tree"),
		message.NewStruct("content",
			message.NewPrimitive("@src", message.TypeString, "http://x/1.jpg"),
		),
	))
	call := message.New("MethodCall",
		message.NewStruct("params",
			message.NewStruct("param",
				message.NewStruct("value",
					message.NewPrimitive("string", message.TypeString, "p1"),
				),
			),
		),
	)
	resp := message.New("MethodResponse")
	env := NewEnv(cache)
	env.Bind("s8in", call)
	env.Bind("s8out", resp)
	run(t, `
entry = getcache(s8in.MethodCall.params.param.value.string)
s8out.MethodResponse.photo.title = entry.title
s8out.MethodResponse.photo.url = entry.content.@src
`, env)
	if v, _ := resp.GetString("photo.title"); v != "tree" {
		t.Errorf("title = %q", v)
	}
	if v, _ := resp.GetString("photo.url"); v != "http://x/1.jpg" {
		t.Errorf("url = %q", v)
	}
}

func TestGetCacheMiss(t *testing.T) {
	env := NewEnv(&Cache{})
	env.Bind("m", message.New("M"))
	p := MustParse(`x = getcache("absent")`)
	err := p.Exec(env)
	if !errors.Is(err, ErrCacheMiss) {
		t.Errorf("err = %v, want ErrCacheMiss", err)
	}
}

func TestStructuredGraftAndRename(t *testing.T) {
	src := message.New("A",
		message.NewStruct("entry",
			message.NewPrimitive("id", message.TypeString, "p1"),
		),
	)
	dst := message.New("B")
	env := envWith(t, map[string]*message.Message{"a": src, "b": dst})
	run(t, `b.B.photo = a.A.entry`, env)
	f, err := dst.Lookup("photo")
	if err != nil {
		t.Fatal(err)
	}
	if f.Child("id").ValueString() != "p1" {
		t.Error("graft lost children")
	}
	// Mutating the destination must not affect the source (deep copy).
	f.Child("id").Value = "zzz"
	if v, _ := src.GetString("entry.id"); v != "p1" {
		t.Error("graft aliases source")
	}
}

func TestWholeMessageAssignment(t *testing.T) {
	src := message.New("A",
		message.NewPrimitive("x", message.TypeInt64, 1),
	)
	dst := message.New("B")
	env := envWith(t, map[string]*message.Message{"a": src, "b": dst})
	run(t, `b.B = a`, env)
	if v, _ := dst.GetInt("x"); v != 1 {
		t.Errorf("whole-message copy: x = %d", v)
	}
}

func TestMessageNameGuard(t *testing.T) {
	env := envWith(t, map[string]*message.Message{"a": message.New("A")})
	p := MustParse(`a.WRONG.x = 1`)
	if err := p.Exec(env); !errors.Is(err, ErrExec) {
		t.Errorf("name mismatch err = %v", err)
	}
	// Unnamed messages adopt the path's name.
	env2 := envWith(t, map[string]*message.Message{"a": message.New("")})
	run(t, `a.Fresh.x = 1`, env2)
	if env2.Message("a").Name != "Fresh" {
		t.Errorf("adopted name = %q", env2.Message("a").Name)
	}
}

func TestLocalVariablesAndFunctions(t *testing.T) {
	m := message.New("M")
	env := envWith(t, map[string]*message.Message{"m": m})
	run(t, `
s = concat("a", "-", "b")
n = add(toint("40"), 2)
m.M.joined = s
m.M.answer = n
m.M.upper = upper(s)
m.M.rep = replace("x.y", ".", "/")
m.M.sub = substr("hello", 1, 3)
m.M.dflt = default("", "fallback")
m.M.enc = urlencode("a b&c")
m.M.dec = urldecode("a+b%26c")
`, env)
	checks := map[string]string{
		"joined": "a-b",
		"answer": "42",
		"upper":  "A-B",
		"rep":    "x/y",
		"sub":    "el",
		"dflt":   "fallback",
		"enc":    "a+b%26c",
		"dec":    "a b&c",
	}
	for path, want := range checks {
		if got, _ := m.GetString(path); got != want {
			t.Errorf("%s = %q, want %q", path, got, want)
		}
	}
}

func TestCountChildLabelNewstruct(t *testing.T) {
	feed := message.New("F",
		message.NewStruct("feed",
			message.NewStruct("entry", message.NewPrimitive("id", message.TypeString, "1")),
			message.NewStruct("entry", message.NewPrimitive("id", message.TypeString, "2")),
		),
	)
	out := message.New("O")
	env := envWith(t, map[string]*message.Message{"f": feed, "o": out})
	run(t, `
o.O.n = count(f.F.feed)
p = newstruct("photo")
o.O.wrap = p
o.O.first = child(child(f.F.feed, "entry"), "id")
o.O.lbl = label(f.F.feed)
`, env)
	if v, _ := out.GetInt("n"); v != 2 {
		t.Errorf("count = %d", v)
	}
	if v, _ := out.GetString("first"); v != "1" {
		t.Errorf("child = %q", v)
	}
	if v, _ := out.GetString("lbl"); v != "feed" {
		t.Errorf("label = %q", v)
	}
	if f, err := out.Lookup("wrap"); err != nil || f.Type.Primitive() {
		t.Errorf("newstruct wrap = %v, %v", f, err)
	}
}

func TestForeachWithIndexAndShadowing(t *testing.T) {
	m := message.New("M",
		message.NewStruct("list",
			message.NewPrimitive("v", message.TypeInt64, 10),
			message.NewPrimitive("v", message.TypeInt64, 20),
		),
	)
	out := message.New("O")
	env := envWith(t, map[string]*message.Message{"m": m, "o": out})
	env.Vars["e"] = "outer"
	run(t, `
foreach e in m.M.list.v[1] {
  o.O.only = e
}
o.O.after = e
`, env)
	if v, _ := out.GetInt("only"); v != 20 {
		t.Errorf("indexed foreach = %d", v)
	}
	if v, _ := out.GetString("after"); v != "outer" {
		t.Errorf("loop variable leaked: %q", v)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`a.b = `,
		`= 3`,
		`a.b.c`,
		`foreach x m.M.f { }`,
		`foreach x in m.M.f { a.b = 1`,
		`f(1,`,
		`a.b = "unterminated`,
		`a.b = $`,
		`a.b[x] = 1`,
		`a.b = c.d[]`,
		`123 = 4`,
	}
	for _, src := range bad {
		if _, err := Parse(src); !errors.Is(err, ErrParse) {
			t.Errorf("Parse(%q) err = %v, want ErrParse", src, err)
		}
	}
}

func TestExecErrors(t *testing.T) {
	env := envWith(t, map[string]*message.Message{"m": message.New("M")})
	cases := []string{
		`m.M.x = nosuch.P.y`,
		`m.M.x = unknownfn(1)`,
		`nosuchmsg.M.x = 1`,
		`m.M.x = toint("abc")`,
		`foreach e in nosuch.M.f { m.M.x = 1 }`,
		`m.M.x = count("notatree")`,
		`m.M.x = child(m, "missing")`,
		`m.M.x = substr("ab", 5, 9)`,
	}
	for _, src := range cases {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if err := p.Exec(envWith(t, map[string]*message.Message{"m": message.New("M")})); err == nil {
			t.Errorf("Exec(%q) succeeded, want error", src)
		}
	}
	_ = env
}

func TestAssignThroughPrimitiveFails(t *testing.T) {
	m := message.New("M", message.NewPrimitive("leaf", message.TypeString, "x"))
	env := envWith(t, map[string]*message.Message{"m": m})
	p := MustParse(`m.M.leaf.sub = 1`)
	if err := p.Exec(env); !errors.Is(err, ErrExec) {
		t.Errorf("err = %v", err)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	m := message.New("M")
	env := envWith(t, map[string]*message.Message{"m": m})
	run(t, "# leading comment\n\n  m.M.x = 1 # trailing\n# done\n", env)
	if v, _ := m.GetInt("x"); v != 1 {
		t.Errorf("x = %d", v)
	}
}

func TestNoSessionCache(t *testing.T) {
	env := &Env{Messages: map[string]*message.Message{"m": message.New("M")}, Vars: map[string]any{}}
	p := MustParse(`cache("k", "v")`)
	if err := p.Exec(env); err == nil {
		t.Error("cache without session cache succeeded")
	}
}

func TestCustomFunctionShadowsBuiltin(t *testing.T) {
	m := message.New("M")
	env := envWith(t, map[string]*message.Message{"m": m})
	env.Funcs = map[string]Func{
		"concat": func(_ *Env, args []any) (any, error) { return "custom", nil },
	}
	run(t, `m.M.x = concat("a")`, env)
	if v, _ := m.GetString("x"); v != "custom" {
		t.Errorf("x = %q", v)
	}
}

func TestProgramAccessors(t *testing.T) {
	src := "m.M.x = 1\nm.M.y = 2"
	p := MustParse(src)
	if p.Len() != 2 || p.Source() != src {
		t.Errorf("Len=%d Source=%q", p.Len(), p.Source())
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("= bad")
}

func TestNegativeNumberLiteral(t *testing.T) {
	m := message.New("M")
	env := envWith(t, map[string]*message.Message{"m": m})
	run(t, `m.M.x = -5
m.M.f = 2.5`, env)
	if v, _ := m.GetInt("x"); v != -5 {
		t.Errorf("x = %d", v)
	}
	if v, _ := m.Get("f"); v != 2.5 {
		t.Errorf("f = %v", v)
	}
}

func TestValueString(t *testing.T) {
	if ValueString(nil) != "" || ValueString("a") != "a" || ValueString([]byte("b")) != "b" {
		t.Error("ValueString scalar handling")
	}
	if ValueString(message.NewPrimitive("x", message.TypeInt64, 7)) != "7" {
		t.Error("ValueString field handling")
	}
	if !strings.Contains(ValueString(int64(42)), "42") {
		t.Error("ValueString int handling")
	}
}

func BenchmarkExecFig9Translation(b *testing.B) {
	p := MustParse(`
sethost("https://picasaweb.google.com")
foreach e in s5.HTTPOK.Body.feed.entry {
  cache(e.id, e)
  s6.MethodResponse.photos.photo[] = e.id
}
`)
	feed := message.New("HTTPOK",
		message.NewStruct("Body",
			message.NewStruct("feed",
				message.NewStruct("entry", message.NewPrimitive("id", message.TypeString, "p1")),
				message.NewStruct("entry", message.NewPrimitive("id", message.TypeString, "p2")),
				message.NewStruct("entry", message.NewPrimitive("id", message.TypeString, "p3")),
			),
		),
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := NewEnv(&Cache{})
		env.Bind("s5", feed)
		env.Bind("s6", message.New("MethodResponse"))
		if err := p.Exec(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	src := `
sethost("https://x")
a.M.p = b.N.q
foreach e in b.N.list.item { a.M.out.v[] = e }
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMsgWildcard(t *testing.T) {
	// The paper's Fig. 8 addresses messages as "S21.Msg.X".
	in := message.New("GIOPRequest", message.NewPrimitive("X", message.TypeInt64, 20))
	out := message.New("SOAPRequest")
	env := envWith(t, map[string]*message.Message{"s21": in, "s22": out})
	run(t, `s22.Msg.X = s21.Msg.X`, env)
	if v, _ := out.GetInt("X"); v != 20 {
		t.Errorf("X = %d", v)
	}
	if out.Name != "SOAPRequest" {
		t.Errorf("wildcard assignment renamed message to %q", out.Name)
	}
}

func TestTryStatement(t *testing.T) {
	m := message.New("M")
	env := envWith(t, map[string]*message.Message{"m": m, "src": message.New("S")})
	run(t, `
try m.M.a = src.S.absent
m.M.b = 1
try m.M.c = getcache("missing")
`, env)
	if m.Field("a") != nil {
		t.Error("failed try created field")
	}
	if v, _ := m.GetInt("b"); v != 1 {
		t.Error("try aborted program")
	}
}

func TestNewArray(t *testing.T) {
	m := message.New("M")
	env := envWith(t, map[string]*message.Message{"m": m})
	run(t, `
m.M.photos = newarray("x")
m.M.photos.item[] = "p1"
`, env)
	f, err := m.Lookup("photos")
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != message.TypeArray || len(f.Children) != 1 {
		t.Errorf("photos = %v (%d children)", f.Type, len(f.Children))
	}
}

func TestCacheEviction(t *testing.T) {
	c := &Cache{Limit: 3}
	for i := 0; i < 5; i++ {
		c.Put("k"+string(rune('0'+i)), message.NewPrimitive("v", message.TypeInt64, int64(i)))
	}
	if c.Len() != 3 {
		t.Errorf("len = %d, want 3", c.Len())
	}
	// Oldest two evicted.
	if _, err := c.Get("k0"); !errors.Is(err, ErrCacheMiss) {
		t.Errorf("k0 err = %v", err)
	}
	if _, err := c.Get("k1"); !errors.Is(err, ErrCacheMiss) {
		t.Errorf("k1 err = %v", err)
	}
	if v, err := c.Get("k4"); err != nil || v.ValueString() != "4" {
		t.Errorf("k4 = %v, %v", v, err)
	}
	// Overwriting does not duplicate order entries.
	c.Put("k4", message.NewPrimitive("v", message.TypeInt64, 99))
	if c.Len() != 3 {
		t.Errorf("len after overwrite = %d", c.Len())
	}
	if v, _ := c.Get("k4"); v.ValueString() != "99" {
		t.Errorf("overwritten k4 = %v", v)
	}
}

func TestTableFunc(t *testing.T) {
	fn := TableFunc(map[string]string{"a": "b"})
	v, err := fn(nil, []any{"a"})
	if err != nil || v != "b" {
		t.Errorf("TableFunc(a) = %v, %v", v, err)
	}
	if _, err := fn(nil, []any{"zz"}); err == nil {
		t.Error("unmapped key accepted")
	}
	if _, err := fn(nil, nil); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestMoreBuiltins(t *testing.T) {
	m := message.New("M")
	env := envWith(t, map[string]*message.Message{"m": m})
	run(t, `
m.M.s = tostring(7)
m.M.d = sub(10, 4)
m.M.p = mul(6, 7)
m.M.dflt2 = default("keep", "no")
m.M.low = lower("ABC")
m.M.tr = trim("  x  ")
`, env)
	for path, want := range map[string]string{
		"s": "7", "d": "6", "p": "42", "dflt2": "keep", "low": "abc", "tr": "x",
	} {
		if got, _ := m.GetString(path); got != want {
			t.Errorf("%s = %q, want %q", path, got, want)
		}
	}
}

func TestBuiltinArityErrors(t *testing.T) {
	for _, src := range []string{
		`x = tostring()`,
		`x = newstruct()`,
		`x = newarray("a", "b")`,
		`x = label()`,
		`x = urlencode()`,
		`x = urldecode("%zz")`,
		`x = default(1)`,
		`x = add(1)`,
		`x = sub("a", 1)`,
		`x = count()`,
		`x = child(1, 2, 3)`,
		`sethost()`,
		`cache("k")`,
		`x = getcache()`,
		`x = substr("a", 0)`,
		`x = replace("a", "b")`,
		`x = trim()`,
		`x = lower()`,
		`x = upper()`,
		`x = toint()`,
	} {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if err := p.Exec(NewEnv(&Cache{})); err == nil {
			t.Errorf("Exec(%q) succeeded", src)
		}
	}
}
