package mtl

import (
	"strings"
	"testing"

	"starlink/internal/message"
	"starlink/internal/testutil"
)

// fixtureHandles is the handle set every differential test compiles
// against; the fixture envs bind exactly these.
var fixtureHandles = []string{"m1", "m2"}

// fixtureEnv builds one of two identical environments: a rich incoming
// message at m1, an empty outgoing message at m2, and a pre-seeded
// session cache.
func fixtureEnv() *Env {
	env := NewEnv(&Cache{})
	env.Bind("m1", message.New("HTTPOK",
		message.NewPrimitive("Status", message.TypeInt64, 200),
		message.NewStruct("Body",
			message.NewStruct("feed",
				message.NewStruct("entry",
					message.NewPrimitive("id", message.TypeString, "p1"),
					message.NewPrimitive("title", message.TypeString, "first"),
				),
				message.NewStruct("entry",
					message.NewPrimitive("id", message.TypeString, "p2"),
					message.NewPrimitive("title", message.TypeString, "second"),
				),
			),
		),
	))
	env.Bind("m2", message.New(""))
	env.Cache.Put("k", message.NewStruct("cached",
		message.NewPrimitive("title", message.TypeString, "cached-title"),
		message.NewPrimitive("owner", message.TypeString, "cached-owner"),
	))
	return env
}

// diffExec runs src through the interpreter and the compiled fast path
// against identical fixtures and fails the test on any observable
// difference: outcome, message trees, host retarget, or variables.
func diffExec(t *testing.T, src string, funcs map[string]Func) {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	compiled, err := Compile(prog, CompileOptions{Handles: fixtureHandles, Funcs: funcs})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	envI, envC := fixtureEnv(), fixtureEnv()
	envI.Funcs, envC.Funcs = funcs, funcs
	errI := prog.Exec(envI)
	errC := compiled.Exec(envC)
	if (errI != nil) != (errC != nil) {
		t.Fatalf("outcome diverged:\n interpreted: %v\n compiled:    %v\nprogram:\n%s", errI, errC, src)
	}
	assertEnvEqual(t, src, envI, envC)
}

func assertEnvEqual(t *testing.T, src string, envI, envC *Env) {
	t.Helper()
	for _, h := range fixtureHandles {
		if !envI.Message(h).Equal(envC.Message(h)) {
			t.Errorf("message %q diverged:\n interpreted: %v\n compiled:    %v\nprogram:\n%s",
				h, envI.Message(h), envC.Message(h), src)
		}
	}
	if envI.Host != envC.Host {
		t.Errorf("host diverged: %q vs %q\nprogram:\n%s", envI.Host, envC.Host, src)
	}
	for name := range envI.Vars {
		if _, ok := envC.Vars[name]; !ok {
			t.Errorf("var %q only set by interpreter\nprogram:\n%s", name, src)
		}
	}
	for name, vc := range envC.Vars {
		vi, ok := envI.Vars[name]
		if !ok {
			t.Errorf("var %q only set by compiled path\nprogram:\n%s", name, src)
			continue
		}
		if ValueString(vi) != ValueString(vc) {
			t.Errorf("var %q diverged: %q vs %q\nprogram:\n%s",
				name, ValueString(vi), ValueString(vc), src)
		}
	}
}

func TestCompiledMatchesInterpreter(t *testing.T) {
	programs := []string{
		// Field copies, literals, renames.
		`m2.Reply.status = m1.HTTPOK.Status`,
		`m2.Reply.greeting = "hello"`,
		`m2.Reply.n = 42
		 m2.Reply.f = 2.5`,
		`m2.Msg.first = m1.Msg.Body.feed.entry.id`,
		`m2.Msg.second = m1.Msg.Body.feed.entry[1].title`,
		// Whole-message assignment and bare handle reads.
		`m2.Copy = m1`,
		`v = m1
		 m2.Copy = v`,
		// Local variables, functions, folding candidates.
		`x = concat("a", "-", "b")
		 m2.Msg.joined = x`,
		`x = m1.Msg.Body.feed.entry.title
		 m2.Msg.up = upper(x)
		 m2.Msg.len = count(m1.Msg.Body.feed)`,
		`m2.Msg.sum = add(toint(m1.Msg.Status), 1)`,
		// sethost.
		`sethost("https://example.net")`,
		`sethost(concat("https://", "host", ":99"))`,
		// foreach with cache and append.
		`foreach e in m1.Msg.Body.feed.entry {
		   cache(e.id, e)
		   m2.MethodResponse.photos.photo[] = e.id
		 }`,
		// foreach over an indexed single element.
		`foreach e in m1.Msg.Body.feed.entry[1] {
		   m2.Msg.only[] = e.title
		 }`,
		// foreach over a variable tree.
		`v = m1.Msg.Body.feed
		 foreach e in v.entry {
		   m2.Msg.t[] = e.title
		 }`,
		// getcache: peek-safe (no var mutation, builtins only).
		`entry = getcache("k")
		 m2.Msg.title = child(entry, "title")
		 m2.Msg.owner = child(entry, "owner")`,
		// getcache: peek-unsafe (mutates the variable afterwards).
		`entry = getcache("k")
		 entry.title = "rewritten"
		 m2.Msg.title = child(entry, "title")`,
		// Structure building with newstruct/newarray.
		`p = newstruct("photo")
		 p.id = m1.Msg.Body.feed.entry.id
		 p.title = m1.Msg.Body.feed.entry.title
		 m2.Msg.photo = p`,
		`a = newarray("list")
		 a.item[] = "one"
		 a.item[] = "two"
		 m2.Msg.list = a`,
		// Mutating a variable after grafting it must not leak into the
		// message (the interpreter clones on graft; the compiled path
		// transfers then copies-on-write).
		`p = newstruct("photo")
		 p.id = "before"
		 m2.Msg.photo = p
		 p.id = "after"
		 m2.Msg.second = p`,
		// Variable aliasing: q and p share a tree; mutations through one
		// are visible through the other.
		`p = newstruct("s")
		 p.x = "1"
		 q = p
		 p.y = "2"
		 m2.Msg.qy = child(q, "y")`,
		// Aliasing a live message subtree writes through.
		`v = m1.Msg.Body.feed
		 v.extra = "added"
		 m2.Msg.echo = m1.Msg.Body.feed.extra`,
		// try over failing statements, including a foldable call whose
		// fold must stay a runtime error.
		`try m2.Msg.opt = m1.Msg.NoSuchField
		 m2.Msg.after = "ran"`,
		`try m2.Msg.opt = substr("ab", 0, 99)
		 m2.Msg.after = "ran"`,
		`try unknownfn("x")
		 m2.Msg.after = "ran"`,
		// Errors without try: both paths must fail.
		`m2.Msg.opt = m1.Msg.NoSuchField`,
		`m2.Msg.x = unknownfn("x")`,
		`m2.WrongName.x = "v"
		 m2.OtherName.y = "v"`,
		`entry = getcache("missing")`,
		`x = substr("ab", 0, 99)`,
		`foreach e in m1 { m2.Msg.x = "1" }`,
		`v = "scalar"
		 v.child = "x"`,
		`v = "scalar"
		 foreach e in v.kids { m2.Msg.x = "1" }`,
		// Message-name wildcard and guard.
		`m2.Msg.a = "1"
		 m2.*.b = "2"`,
		// default() with empty and non-empty values.
		`m2.Msg.d1 = default("", "fallback")
		 m2.Msg.d2 = default(m1.Msg.Body.feed.entry.id, "fallback")`,
	}
	for _, src := range programs {
		diffExec(t, src, nil)
	}
}

func TestCompiledWithCustomFuncs(t *testing.T) {
	funcs := map[string]Func{
		"vocab": TableFunc(map[string]string{"a": "b"}),
		// Shadow a builtin, as engine configs may.
		"upper": func(_ *Env, args []any) (any, error) { return "shadowed", nil },
	}
	programs := []string{
		`m2.Msg.v = vocab("a")`,
		`m2.Msg.v = vocab("missing")`,
		`m2.Msg.v = upper("x")`,
		// Custom calls force the conservative compile: grafts clone, and
		// the graft/mutate sequence must still match the interpreter.
		`p = newstruct("s")
		 p.x = vocab("a")
		 m2.Msg.photo = p
		 p.x = "after"
		 m2.Msg.second = p`,
	}
	for _, src := range programs {
		diffExec(t, src, funcs)
	}
}

// TestCompiledCacheIsolation pins the getcache fast path: a peeked tree
// is shared with the cache, so the program mutating its own view must
// never corrupt the cached entry.
func TestCompiledCacheIsolation(t *testing.T) {
	src := `entry = getcache("k")
	 entry.title = "rewritten"
	 m2.Msg.title = child(entry, "title")`
	prog := MustParse(src)
	compiled, err := Compile(prog, CompileOptions{Handles: fixtureHandles})
	if err != nil {
		t.Fatal(err)
	}
	env := fixtureEnv()
	if err := compiled.Exec(env); err != nil {
		t.Fatal(err)
	}
	f, err := env.Cache.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Child("title").ValueString(); got != "cached-title" {
		t.Fatalf("cache entry mutated through compiled execution: title = %q", got)
	}
	if got, _ := env.Message("m2").GetString("title"); got != "rewritten" {
		t.Fatalf("m2.title = %q, want rewritten", got)
	}
}

// TestCompiledEnvReuse pins the pooling contract: one Env executes the
// same compiled program many times with Reset between runs, and each run
// behaves like a fresh environment.
func TestCompiledEnvReuse(t *testing.T) {
	src := `foreach e in m1.Msg.Body.feed.entry {
	   cache(e.id, e)
	   m2.MethodResponse.photos.photo[] = e.id
	 }`
	compiled, err := Compile(MustParse(src), CompileOptions{Handles: fixtureHandles})
	if err != nil {
		t.Fatal(err)
	}
	cache := &Cache{}
	env := NewEnv(cache)
	for i := 0; i < 3; i++ {
		env.Reset()
		fresh := fixtureEnv()
		env.Bind("m1", fresh.Message("m1"))
		env.Bind("m2", fresh.Message("m2"))
		if err := compiled.Exec(env); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		m2 := env.Message("m2")
		if n := len(m2.Fields[0].Children); n != 2 {
			t.Fatalf("run %d: %d photos, want 2", i, n)
		}
	}
	if cache.Len() != 2 {
		t.Fatalf("cache has %d entries, want 2", cache.Len())
	}
}

// TestCachePutRefreshesEvictionOrder is the regression test for the
// eviction-order bug: re-putting an existing key must refresh its slot so
// a hot key is not evicted as "oldest" while stale keys survive.
func TestCachePutRefreshesEvictionOrder(t *testing.T) {
	c := &Cache{Limit: 2}
	v := message.NewPrimitive("v", message.TypeString, "x")
	c.Put("hot", v)
	c.Put("stale", v)
	// Rewrite the hot key: it must now be the freshest entry.
	c.Put("hot", v)
	// Inserting a third key must evict "stale", not "hot".
	c.Put("new", v)
	if _, err := c.Get("hot"); err != nil {
		t.Fatalf("hot key evicted despite re-put: %v", err)
	}
	if _, err := c.Get("stale"); err == nil {
		t.Fatal("stale key survived eviction")
	}
	if _, err := c.Get("new"); err != nil {
		t.Fatalf("new key missing: %v", err)
	}
}

// TestForeachSnapshotSemantics is the regression test for mid-iteration
// aliasing: a body that appends matching siblings into the iterated
// parent must not extend the iteration.
func TestForeachSnapshotSemantics(t *testing.T) {
	src := `foreach e in m1.Msg.Body.feed.entry {
	   m1.Msg.Body.feed.entry[] = "copied"
	 }`
	for _, mode := range []string{"interpreted", "compiled"} {
		env := fixtureEnv()
		prog := MustParse(src)
		var err error
		if mode == "compiled" {
			var compiled *CompiledProgram
			compiled, err = Compile(prog, CompileOptions{Handles: fixtureHandles})
			if err != nil {
				t.Fatal(err)
			}
			err = compiled.Exec(env)
		} else {
			err = prog.Exec(env)
		}
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		feed, err := env.Message("m1").Lookup("Body.feed")
		if err != nil {
			t.Fatal(err)
		}
		// 2 original entries, each appending exactly one: 4 total. An
		// implementation that re-reads the child list mid-loop would
		// iterate the appended entries too and never terminate (or
		// produce more than 4).
		if n := len(feed.Children); n != 4 {
			t.Fatalf("%s: feed has %d entries after foreach, want 4", mode, n)
		}
	}
}

// TestCompiledProgramAccessors covers the small introspection surface.
func TestCompiledProgramAccessors(t *testing.T) {
	src := `m2.Msg.x = m1.Msg.Status`
	prog := MustParse(src)
	compiled, err := Compile(prog, CompileOptions{Handles: fixtureHandles})
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Source() != src {
		t.Errorf("Source() = %q", compiled.Source())
	}
	if compiled.Program() != prog {
		t.Error("Program() did not return the parsed program")
	}
	hs := compiled.Handles()
	if len(hs) != 2 {
		t.Errorf("Handles() = %v, want m1 and m2", hs)
	}
}

// TestCompiledExecAllocBudget is the allocation budget for the compiled
// fast path: executing a translation with a pooled Env must stay within
// a small constant number of allocations beyond the field nodes the
// program itself creates.
func TestCompiledExecAllocBudget(t *testing.T) {
	src := `sethost("https://picasaweb.google.com")
	 foreach e in m1.Msg.Body.feed.entry {
	   m2.MethodResponse.photos.photo[] = e.id
	 }`
	compiled, err := Compile(MustParse(src), CompileOptions{Handles: fixtureHandles})
	if err != nil {
		t.Fatal(err)
	}
	fresh := fixtureEnv()
	env := NewEnv(nil)
	env.Bind("m1", fresh.Message("m1"))
	m2 := message.New("")
	env.Bind("m2", m2)
	reset := func() {
		env.Host = ""
		m2.Name = ""
		m2.Fields = m2.Fields[:0]
	}
	reset()
	if err := compiled.Exec(env); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		reset()
		if err := compiled.Exec(env); err != nil {
			t.Fatal(err)
		}
	})
	if testutil.RaceEnabled {
		t.Skipf("race detector enabled; measured %.1f allocs/op unasserted", allocs)
	}
	// 2 photo fields + the photos parent and its child slices are rebuilt
	// each run; everything else (env scratch, args, iteration snapshot)
	// must be reused.
	if allocs > 10 {
		t.Fatalf("compiled Exec allocates %.1f/op, budget 10", allocs)
	}
}

// TestInterpretedVsCompiledAllocs documents (and guards) the headline
// claim: the compiled path allocates at least 30% less than the
// interpreter on a case-study-shaped program.
func TestInterpretedVsCompiledAllocs(t *testing.T) {
	src := `sethost("https://picasaweb.google.com")
	 foreach e in m1.Msg.Body.feed.entry {
	   cache(e.id, e)
	   m2.MethodResponse.photos.photo[] = e.id
	 }`
	prog := MustParse(src)
	compiled, err := Compile(prog, CompileOptions{Handles: fixtureHandles})
	if err != nil {
		t.Fatal(err)
	}
	fresh := fixtureEnv()
	m1 := fresh.Message("m1")

	interpreted := testing.AllocsPerRun(200, func() {
		env := NewEnv(&Cache{})
		env.Bind("m1", m1)
		env.Bind("m2", message.New(""))
		if err := prog.Exec(env); err != nil {
			t.Fatal(err)
		}
	})
	cache := &Cache{}
	env := NewEnv(cache)
	m2 := message.New("")
	compiledAllocs := testing.AllocsPerRun(200, func() {
		env.Reset()
		env.Cache = cache
		m2.Name = ""
		m2.Fields = m2.Fields[:0]
		env.Bind("m1", m1)
		env.Bind("m2", m2)
		if err := compiled.Exec(env); err != nil {
			t.Fatal(err)
		}
	})
	if testutil.RaceEnabled {
		t.Skipf("race detector enabled; interpreted %.1f vs compiled %.1f unasserted", interpreted, compiledAllocs)
	}
	if compiledAllocs > interpreted*0.7 {
		t.Fatalf("compiled path allocates %.1f/op vs interpreted %.1f/op; want >=30%% reduction",
			compiledAllocs, interpreted)
	}
}

// TestCompileReportsHandleSubset ensures only referenced handles are
// resolved per Exec (an engine automaton can have many states while each
// γ touches two or three).
func TestCompileReportsHandleSubset(t *testing.T) {
	compiled, err := Compile(MustParse(`m2.Msg.x = "1"`),
		CompileOptions{Handles: []string{"m1", "m2", "m3", "m4"}})
	if err != nil {
		t.Fatal(err)
	}
	if hs := compiled.Handles(); len(hs) != 1 || hs[0] != "m2" {
		t.Fatalf("Handles() = %v, want [m2]", hs)
	}
}

func TestCompiledForeachVarShadowRestore(t *testing.T) {
	diffExec(t, strings.TrimSpace(`
e = "outer"
foreach e in m1.Msg.Body.feed.entry {
  m2.Msg.ids[] = e.id
}
m2.Msg.restored = e`), nil)
}
