package mtl

import (
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"starlink/internal/message"
)

// builtins are the functions available to every MTL program. Names are
// matched case-insensitively (the paper writes both SetHost and cache).
var builtins = map[string]Func{
	"cache":     builtinCache,
	"getcache":  builtinGetCache,
	"sethost":   builtinSetHost,
	"concat":    builtinConcat,
	"toint":     builtinToInt,
	"tostring":  builtinToString,
	"count":     builtinCount,
	"newstruct": builtinNewStruct,
	"newarray":  builtinNewArray,
	"child":     builtinChild,
	"label":     builtinLabel,
	"urlencode": builtinURLEncode,
	"urldecode": builtinURLDecode,
	"default":   builtinDefault,
	"add":       builtinArithAdd,
	"sub":       builtinArithSub,
	"mul":       builtinArithMul,
	"replace":   builtinReplace,
	"trim":      builtinTrim,
	"lower":     builtinLower,
	"upper":     builtinUpper,
	"substr":    builtinSubstr,
}

// TableFunc builds a one-argument translation function from a lookup
// table — the runtime form of a vocabulary model (e.g. UPnP URNs to SLP
// service types). Unmapped inputs are errors, so missing vocabulary is
// caught at the γ transition rather than producing a wrong message.
func TableFunc(table map[string]string) Func {
	return func(_ *Env, args []any) (any, error) {
		if err := needArgs(args, 1); err != nil {
			return nil, err
		}
		key := ValueString(args[0])
		v, ok := table[key]
		if !ok {
			return nil, fmt.Errorf("no mapping for %q", key)
		}
		return v, nil
	}
}

func needArgs(args []any, n int) error {
	if len(args) != n {
		return fmt.Errorf("want %d argument(s), got %d", n, len(args))
	}
	return nil
}

// cache(key, value) stores value (a field tree or scalar) in the session
// cache — the Fig. 9 "cache(Photo, entryN)" keyword.
func builtinCache(env *Env, args []any) (any, error) {
	if err := needArgs(args, 2); err != nil {
		return nil, err
	}
	if env.Cache == nil {
		return nil, errors.New("no session cache configured")
	}
	key := ValueString(args[0])
	// valueToField already deep-copies tree arguments, so transfer the
	// fresh tree to the cache instead of cloning a second time.
	env.Cache.putOwned(key, valueToField("cached", args[1]))
	return nil, nil
}

// getcache(key) retrieves a previously cached value — the Fig. 10
// "getCache" keyword.
func builtinGetCache(env *Env, args []any) (any, error) {
	if err := needArgs(args, 1); err != nil {
		return nil, err
	}
	if env.Cache == nil {
		return nil, errors.New("no session cache configured")
	}
	f, err := env.Cache.Get(ValueString(args[0]))
	if err != nil {
		return nil, err
	}
	return f, nil
}

// sethost(url) retargets the outgoing side of the mediator — Fig. 9's
// "SetHost(https://picasaweb.google.com)".
func builtinSetHost(env *Env, args []any) (any, error) {
	if err := needArgs(args, 1); err != nil {
		return nil, err
	}
	env.Host = ValueString(args[0])
	return nil, nil
}

func builtinConcat(_ *Env, args []any) (any, error) {
	var b strings.Builder
	for _, a := range args {
		b.WriteString(ValueString(a))
	}
	return b.String(), nil
}

func builtinToInt(_ *Env, args []any) (any, error) {
	if err := needArgs(args, 1); err != nil {
		return nil, err
	}
	s := strings.TrimSpace(ValueString(args[0]))
	if s == "" {
		return int64(0), nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("cannot convert %q to int", s)
	}
	return n, nil
}

func builtinToString(_ *Env, args []any) (any, error) {
	if err := needArgs(args, 1); err != nil {
		return nil, err
	}
	return ValueString(args[0]), nil
}

// count(tree) reports the number of children of a field tree.
func builtinCount(_ *Env, args []any) (any, error) {
	if err := needArgs(args, 1); err != nil {
		return nil, err
	}
	f, ok := args[0].(*message.Field)
	if !ok {
		return nil, errors.New("count() needs a field tree")
	}
	return int64(len(f.Children)), nil
}

// newstruct(label) creates an empty structured field for incremental
// construction (Fig. 9's "new Photo(...)").
func builtinNewStruct(_ *Env, args []any) (any, error) {
	if err := needArgs(args, 1); err != nil {
		return nil, err
	}
	return message.NewStruct(ValueString(args[0])), nil
}

// newarray(label) creates an empty ordered-sequence field; binders render
// array fields as protocol-level lists even when they hold 0 or 1
// elements.
func builtinNewArray(_ *Env, args []any) (any, error) {
	if err := needArgs(args, 1); err != nil {
		return nil, err
	}
	return message.NewArray(ValueString(args[0])), nil
}

// child(tree, label) returns a named child of a field tree.
func builtinChild(_ *Env, args []any) (any, error) {
	if err := needArgs(args, 2); err != nil {
		return nil, err
	}
	f, ok := args[0].(*message.Field)
	if !ok {
		return nil, errors.New("child() needs a field tree")
	}
	c := f.Child(ValueString(args[1]))
	if c == nil {
		return nil, fmt.Errorf("no child %q", ValueString(args[1]))
	}
	return fieldValue(c), nil
}

// label(tree) returns a field tree's label.
func builtinLabel(_ *Env, args []any) (any, error) {
	if err := needArgs(args, 1); err != nil {
		return nil, err
	}
	f, ok := args[0].(*message.Field)
	if !ok {
		return nil, errors.New("label() needs a field tree")
	}
	return f.Label, nil
}

func builtinURLEncode(_ *Env, args []any) (any, error) {
	if err := needArgs(args, 1); err != nil {
		return nil, err
	}
	return url.QueryEscape(ValueString(args[0])), nil
}

func builtinURLDecode(_ *Env, args []any) (any, error) {
	if err := needArgs(args, 1); err != nil {
		return nil, err
	}
	s, err := url.QueryUnescape(ValueString(args[0]))
	if err != nil {
		return nil, err
	}
	return s, nil
}

// default(v, fallback) returns v unless it is empty.
func builtinDefault(_ *Env, args []any) (any, error) {
	if err := needArgs(args, 2); err != nil {
		return nil, err
	}
	if ValueString(args[0]) == "" {
		return args[1], nil
	}
	return args[0], nil
}

func arith(args []any, op func(a, b int64) int64) (any, error) {
	if err := needArgs(args, 2); err != nil {
		return nil, err
	}
	a, err := builtinToInt(nil, args[:1])
	if err != nil {
		return nil, err
	}
	b, err := builtinToInt(nil, args[1:])
	if err != nil {
		return nil, err
	}
	return op(a.(int64), b.(int64)), nil
}

func builtinArithAdd(_ *Env, args []any) (any, error) {
	return arith(args, func(a, b int64) int64 { return a + b })
}

func builtinArithSub(_ *Env, args []any) (any, error) {
	return arith(args, func(a, b int64) int64 { return a - b })
}

func builtinArithMul(_ *Env, args []any) (any, error) {
	return arith(args, func(a, b int64) int64 { return a * b })
}

func builtinReplace(_ *Env, args []any) (any, error) {
	if err := needArgs(args, 3); err != nil {
		return nil, err
	}
	return strings.ReplaceAll(ValueString(args[0]), ValueString(args[1]), ValueString(args[2])), nil
}

func builtinTrim(_ *Env, args []any) (any, error) {
	if err := needArgs(args, 1); err != nil {
		return nil, err
	}
	return strings.TrimSpace(ValueString(args[0])), nil
}

func builtinLower(_ *Env, args []any) (any, error) {
	if err := needArgs(args, 1); err != nil {
		return nil, err
	}
	return strings.ToLower(ValueString(args[0])), nil
}

func builtinUpper(_ *Env, args []any) (any, error) {
	if err := needArgs(args, 1); err != nil {
		return nil, err
	}
	return strings.ToUpper(ValueString(args[0])), nil
}

func builtinSubstr(_ *Env, args []any) (any, error) {
	if err := needArgs(args, 3); err != nil {
		return nil, err
	}
	s := ValueString(args[0])
	from, err := builtinToInt(nil, args[1:2])
	if err != nil {
		return nil, err
	}
	to, err := builtinToInt(nil, args[2:3])
	if err != nil {
		return nil, err
	}
	f, t := int(from.(int64)), int(to.(int64))
	if f < 0 || t > len(s) || f > t {
		return nil, fmt.Errorf("substr bounds [%d,%d) out of range for %d bytes", f, t, len(s))
	}
	return s[f:t], nil
}
