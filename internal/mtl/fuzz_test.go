package mtl

import (
	"testing"

	"starlink/internal/message"
)

func FuzzParse(f *testing.F) {
	f.Add("a.Msg.x = b.Msg.y")
	f.Add(`sethost("https://x") ` + "\n" + `foreach e in m.M.list.item { out.O.v[] = e.id }`)
	f.Add("x = concat(\"a\", 1, 2.5)")
	f.Add("try a.Msg.x = getcache(\"k\")")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		// Programs that parse must execute (possibly to an error) without
		// panicking against a populated environment.
		env := NewEnv(&Cache{})
		env.Bind("a", message.New("Msg"))
		env.Bind("b", message.New("Msg", message.NewPrimitive("y", message.TypeInt64, 1)))
		env.Bind("m", message.New("M"))
		env.Bind("out", message.New("O"))
		_ = prog.Exec(env)
	})
}
