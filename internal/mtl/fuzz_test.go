package mtl

import (
	"testing"

	"starlink/internal/message"
)

func FuzzParse(f *testing.F) {
	f.Add("a.Msg.x = b.Msg.y")
	f.Add(`sethost("https://x") ` + "\n" + `foreach e in m.M.list.item { out.O.v[] = e.id }`)
	f.Add("x = concat(\"a\", 1, 2.5)")
	f.Add("try a.Msg.x = getcache(\"k\")")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		// Programs that parse must execute (possibly to an error) without
		// panicking against a populated environment.
		env := NewEnv(&Cache{})
		env.Bind("a", message.New("Msg"))
		env.Bind("b", message.New("Msg", message.NewPrimitive("y", message.TypeInt64, 1)))
		env.Bind("m", message.New("M"))
		env.Bind("out", message.New("O"))
		_ = prog.Exec(env)
	})
}

// FuzzCompile is the compiled/interpreted equivalence oracle: any program
// that parses must compile, and executing the compiled form against a
// fixture environment must produce exactly the interpreter's observable
// state — outcome, message trees, host retarget and variables.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"a.Msg.x = b.Msg.y",
		`sethost("https://x")` + "\n" + `foreach e in m.M.list.item { out.O.v[] = e.id }`,
		`x = concat("a", 1, 2.5)` + "\n" + `out.O.x = x`,
		`try a.Msg.x = getcache("k")`,
		`entry = getcache("k")` + "\n" + `out.O.t = child(entry, "title")`,
		`entry = getcache("k")` + "\n" + `entry.title = "w"` + "\n" + `out.O.t = child(entry, "title")`,
		`p = newstruct("s")` + "\n" + `p.x = "1"` + "\n" + `out.O.s = p` + "\n" + `p.x = "2"` + "\n" + `out.O.s2 = p`,
		`v = b.Msg.tree` + "\n" + `v.x = "w"` + "\n" + `out.O.echo = b.Msg.tree.x`,
		`foreach e in m.M.list.item { m.M.list.item[] = e.v }`,
		`out.O.n = add(toint(b.Msg.y), 1)` + "\n" + `out.O.s = substr("abcdef", 1, 3)`,
		`try out.O.x = substr("ab", 0, 99)`,
		`try unknownfn("x")`,
		`out.Wrong.x = "1"` + "\n" + `out.Other.y = "2"`,
		`foreach e in v.kids { out.O.x = "1" }`,
		`e = "outer"` + "\n" + `foreach e in m.M.list.item { out.O.i[] = e.v }` + "\n" + `out.O.r = e`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	handles := []string{"a", "b", "m", "out"}
	fixture := func() *Env {
		env := NewEnv(&Cache{})
		env.Bind("a", message.New("Msg"))
		env.Bind("b", message.New("Msg",
			message.NewPrimitive("y", message.TypeInt64, 1),
			message.NewStruct("tree",
				message.NewPrimitive("x", message.TypeString, "tx"),
			),
		))
		env.Bind("m", message.New("M",
			message.NewStruct("list",
				message.NewStruct("item", message.NewPrimitive("v", message.TypeString, "v0"),
					message.NewPrimitive("id", message.TypeString, "i0")),
				message.NewStruct("item", message.NewPrimitive("v", message.TypeString, "v1"),
					message.NewPrimitive("id", message.TypeString, "i1")),
			),
		))
		env.Bind("out", message.New("O"))
		env.Cache.Put("k", message.NewStruct("cached",
			message.NewPrimitive("title", message.TypeString, "ct"),
		))
		return env
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Bound the differential run: a program of repeated whole-tree
		// self-grafts (`x = out` / `out.O.a = x`) doubles state per
		// statement, and this harness executes everything twice.
		if len(src) > 2048 {
			return
		}
		prog, err := Parse(src)
		if err != nil {
			return
		}
		compiled, err := Compile(prog, CompileOptions{Handles: handles})
		if err != nil {
			t.Fatalf("program parsed but did not compile: %v\n%s", err, src)
		}
		envI, envC := fixture(), fixture()
		errI := prog.Exec(envI)
		errC := compiled.Exec(envC)
		if (errI != nil) != (errC != nil) {
			t.Fatalf("outcome diverged: interpreted %v, compiled %v\n%s", errI, errC, src)
		}
		for _, h := range handles {
			if !envI.Message(h).Equal(envC.Message(h)) {
				t.Fatalf("message %q diverged:\n interpreted: %v\n compiled:    %v\n%s",
					h, envI.Message(h), envC.Message(h), src)
			}
		}
		if envI.Host != envC.Host {
			t.Fatalf("host diverged: %q vs %q\n%s", envI.Host, envC.Host, src)
		}
		for name, vi := range envI.Vars {
			if ValueString(vi) != ValueString(envC.Vars[name]) {
				t.Fatalf("var %q diverged: %q vs %q\n%s",
					name, ValueString(vi), ValueString(envC.Vars[name]), src)
			}
		}
		for name := range envC.Vars {
			if _, ok := envI.Vars[name]; !ok {
				t.Fatalf("var %q only set by compiled path\n%s", name, src)
			}
		}
	})
}
