package mtl

// Compiled translation fast path (DESIGN.md §12).
//
// Parse produces an AST the tree-walking interpreter in mtl.go executes
// directly; every Exec then re-resolves message handles through the
// Messages map, re-resolves function names through two map lookups, and
// defensively deep-clones every field tree it grafts. Compile lowers a
// parsed Program into a resolved form executed by CompiledProgram.Exec:
//
//   - message handles and local variables are interned into integer
//     slots, so a statement touches a map at most once per distinct
//     handle per Exec (when the slot table is seeded) instead of once
//     per path step;
//   - builtin and configured functions are bound to direct references
//     at compile time (unknown names still fail at execution time, like
//     the interpreter, so `try unknown()` keeps its semantics);
//   - calls of pure builtins over literal arguments are constant-folded;
//   - a tree freshly produced by a direct newstruct/newarray call and
//     consumed immediately by a graft is transferred instead of cloned
//     (it provably has no other reference); trees read back out of
//     variables always clone on graft, exactly like the interpreter —
//     eliding those clones can be observed through aliases and can even
//     build cyclic trees (`p.s = p`);
//   - in programs that never mutate variables and call only builtins,
//     getcache reads through the session cache (Cache.Peek) instead of
//     cloning the stored tree; the result is marked copy-on-write as a
//     second line of defence;
//   - scalar overwrites of existing fields update the field in place
//     instead of building a replacement node;
//   - per-execution scratch (argument arena, foreach item snapshots,
//     variable slots) lives in the Env and is reused across Execs, so a
//     pooled Env executes a compiled program with a small constant
//     number of allocations beyond the field nodes it creates.
//
// Semantics are identical to the interpreter; FuzzCompile asserts that
// compiled and interpreted execution produce the same message trees,
// variables, host retarget and success/failure outcome on arbitrary
// parsed programs. The one deliberate caveat is a compile-time decision:
// functions are resolved against CompileOptions.Funcs rather than the
// Env's map at each call, so the executing Env should carry the same
// function table the program was compiled with.

import (
	"fmt"

	"starlink/internal/message"
)

// CompileOptions configures Compile.
type CompileOptions struct {
	// Handles is the set of message-handle names (for the engine: the
	// merged automaton's state names). A path root in this set addresses
	// a message in the Env; any other root is a local variable. The
	// interpreter makes the same decision dynamically against
	// Env.Messages, so an Env executing the compiled program should bind
	// exactly these handles.
	Handles []string
	// Funcs are the extra functions available to the program, shadowing
	// builtins by name — the same map the executing Env will carry.
	// Compiled programs bind functions at compile time.
	Funcs map[string]Func
}

// CompiledProgram is the executable form produced by Compile.
// It is immutable after Compile and safe for concurrent Exec from many
// goroutines (each against its own Env).
type CompiledProgram struct {
	src      string
	prog     *Program
	stmts    []cStmt
	handles  []string // slot -> handle name
	varNames []string // slot -> variable name
}

// Source returns the original program text.
func (p *CompiledProgram) Source() string { return p.src }

// Program returns the parsed program the compiled form was lowered
// from (the interpreter fallback).
func (p *CompiledProgram) Program() *Program { return p.prog }

// Handles returns the message-handle names the program references.
func (p *CompiledProgram) Handles() []string { return append([]string(nil), p.handles...) }

// cval is one variable slot.
//
// cow (copy-on-write) marks a tree shared with the session cache (a
// Cache.Peek result): mutating it through the variable clones it first.
// A slot without cow aliases whatever tree it was bound to; reads and
// mutations write through — the interpreter's semantics for
// `v = m1.Msg.sub` — and grafting it into a message clones, exactly like
// the interpreter.
type cval struct {
	v   any
	set bool
	cow bool
}

// cres is one evaluated expression result.
//
// owned is set ONLY for a tree freshly produced by the expression itself
// (a direct newstruct/newarray call): such a tree provably has no other
// reference, so a graft consuming it directly may transfer it without
// the interpreter's defensive clone. Values read out of variable slots
// are never owned — a variable's tree can be aliased by other variables,
// by the program text later on, or (if transferred) observed through
// message mutations, all of which would diverge from the interpreter's
// clone-on-graft semantics (and a self-graft like `p.s = p` would even
// build a cyclic tree).
type cres struct {
	v     any
	owned bool
	cow   bool
}

// cframe is the per-execution scratch state, reused across Execs of the
// same Env.
type cframe struct {
	env   *Env
	msgs  []*message.Message // handle slot -> bound message
	vars  []cval             // variable slot -> value
	args  []any              // argument arena (stack discipline)
	iters []*message.Field   // foreach item snapshots (stack discipline)
	busy  bool
}

type cStmt interface{ exec(fr *cframe) error }
type cExpr interface {
	eval(fr *cframe) (cres, error)
}

// Exec runs the compiled program against env. Variable slots are seeded
// from env.Vars and written back when Exec returns, so local variables
// still flow between programs sharing one Env, as they do under the
// interpreter.
func (p *CompiledProgram) Exec(env *Env) error {
	if env.Vars == nil {
		env.Vars = make(map[string]any)
	}
	if env.Messages == nil {
		env.Messages = make(map[string]*message.Message)
	}
	fr := env.frame
	if fr == nil {
		fr = &cframe{}
		env.frame = fr
	} else if fr.busy {
		// Re-entrant Exec (a Func running a program against its own
		// env): give the nested run its own frame.
		fr = &cframe{}
	}
	fr.busy = true
	fr.env = env
	fr.args = fr.args[:0]
	fr.iters = fr.iters[:0]
	if cap(fr.msgs) < len(p.handles) {
		fr.msgs = make([]*message.Message, len(p.handles))
	} else {
		fr.msgs = fr.msgs[:len(p.handles)]
	}
	for i, h := range p.handles {
		fr.msgs[i] = env.Messages[h]
	}
	if cap(fr.vars) < len(p.varNames) {
		fr.vars = make([]cval, len(p.varNames))
	} else {
		fr.vars = fr.vars[:len(p.varNames)]
		for i := range fr.vars {
			fr.vars[i] = cval{}
		}
	}
	for i, name := range p.varNames {
		if v, ok := env.Vars[name]; ok {
			fr.vars[i] = cval{v: v, set: true}
		}
	}
	defer func() {
		for i, name := range p.varNames {
			if fr.vars[i].set {
				env.Vars[name] = fr.vars[i].v
			}
		}
		fr.busy = false
	}()
	for _, s := range p.stmts {
		if err := s.exec(fr); err != nil {
			return err
		}
	}
	return nil
}

// ---- compiled statements ----

type cAssignVar struct {
	slot int
	rhs  cExpr
}

func (s *cAssignVar) exec(fr *cframe) error {
	res, err := s.rhs.eval(fr)
	if err != nil {
		return err
	}
	fr.vars[s.slot] = cval{v: res.v, set: true, cow: res.cow}
	return nil
}

type cAssignVarPath struct {
	slot  int
	root  string
	steps []pathStep // steps after the root; empty means malformed lvalue
	rhs   cExpr
	text  string
}

func (s *cAssignVarPath) exec(fr *cframe) error {
	res, err := s.rhs.eval(fr)
	if err != nil {
		return err
	}
	sv := &fr.vars[s.slot]
	if !sv.set {
		if v, ok := fr.env.Vars[s.root]; ok {
			*sv = cval{v: v, set: true}
		}
	}
	f, isField := sv.v.(*message.Field)
	if !sv.set || !isField || len(s.steps) == 0 {
		return fmt.Errorf("%w: assign %s: unknown message %q", ErrExec, s.text, s.root)
	}
	if sv.cow {
		// The tree is shared with the session cache; mutate a private
		// copy (the interpreter's getcache cloned eagerly).
		f = f.Clone()
		sv.v, sv.cow = f, false
	}
	return csetSteps(&f.Children, s.steps, res, s.text)
}

type cAssignMsg struct {
	slot  int
	root  string
	steps []pathStep // the full lvalue path including the root step
	rhs   cExpr
	text  string
}

func (s *cAssignMsg) exec(fr *cframe) error {
	res, err := s.rhs.eval(fr)
	if err != nil {
		return err
	}
	msg := fr.msgs[s.slot]
	if msg == nil {
		return fmt.Errorf("%w: assign %s: unknown message %q", ErrExec, s.text, s.root)
	}
	if len(s.steps) < 2 {
		return fmt.Errorf("%w: assign %s: need a message name component", ErrExec, s.text)
	}
	if name := s.steps[1].label; !isMsgWildcard(name) {
		if msg.Name == "" {
			msg.Name = name
		} else if msg.Name != name {
			return fmt.Errorf("%w: assign %s: message at %q is %q, not %q",
				ErrExec, s.text, s.root, msg.Name, name)
		}
	}
	if len(s.steps) == 2 {
		f, ok := res.v.(*message.Field)
		if !ok {
			return fmt.Errorf("%w: assign %s: whole-message assignment needs a field tree", ErrExec, s.text)
		}
		if res.owned {
			msg.Fields = f.Children
		} else {
			msg.Fields = f.Clone().Children
		}
		return nil
	}
	return csetSteps(&msg.Fields, s.steps[2:], res, s.text)
}

type cCallStmt struct{ call cExpr }

func (s *cCallStmt) exec(fr *cframe) error {
	_, err := s.call.eval(fr)
	return err
}

// cNop replaces a statement-level call that was constant-folded (the
// fold only happens when the call is pure and already succeeded).
type cNop struct{}

func (cNop) exec(*cframe) error { return nil }

type cTry struct{ inner cStmt }

func (s *cTry) exec(fr *cframe) error {
	_ = s.inner.exec(fr)
	return nil
}

// cErr is a statement whose malformedness is only detectable with the
// whole-path context; it mirrors the interpreter's runtime error so a
// `try` still swallows it.
type cErr struct{ err error }

func (s *cErr) exec(*cframe) error { return s.err }

type cForeach struct {
	// Source: a message handle (srcIsMsg) or a variable slot.
	srcIsMsg bool
	srcSlot  int
	srcRoot  string
	msgName  string     // message-name component for handle sources
	mid      []pathStep // navigation between root and the final label
	last     pathStep
	varSlot  int
	body     []cStmt
	text     string
}

func (s *cForeach) exec(fr *cframe) error {
	var children []*message.Field
	cowSrc := false
	if s.srcIsMsg {
		msg := fr.msgs[s.srcSlot]
		if msg == nil {
			return fmt.Errorf("%w: foreach source %q: unknown root %q", ErrExec, s.text, s.srcRoot)
		}
		if !nameMatches(msg.Name, s.msgName) {
			return fmt.Errorf("%w: foreach source %q: message at %q is %q, not %q",
				ErrExec, s.text, s.srcRoot, msg.Name, s.msgName)
		}
		children = msg.Fields
	} else {
		sv := &fr.vars[s.srcSlot]
		if !sv.set {
			if v, ok := fr.env.Vars[s.srcRoot]; ok {
				*sv = cval{v: v, set: true}
			} else {
				return fmt.Errorf("%w: foreach source %q: unknown root %q", ErrExec, s.text, s.srcRoot)
			}
		}
		f, ok := sv.v.(*message.Field)
		if !ok {
			return fmt.Errorf("%w: foreach source %q: not a field tree", ErrExec, s.text)
		}
		children = f.Children
		cowSrc = sv.cow
	}
	if len(s.mid) > 0 {
		parent, err := clookupSteps(children, s.mid)
		if err != nil {
			return fmt.Errorf("%w: foreach source %q: %v", ErrExec, s.text, err)
		}
		children = parent.Children
	}
	// Snapshot the matched set before the body runs: a body that appends
	// matching siblings must not extend the iteration (mtl.go's
	// resolveAll gives foreach the same semantics).
	base := len(fr.iters)
	seen := 0
	for _, c := range children {
		if c.Label != s.last.label {
			continue
		}
		if s.last.index >= 0 {
			if seen == s.last.index {
				fr.iters = append(fr.iters, c)
				break
			}
			seen++
			continue
		}
		fr.iters = append(fr.iters, c)
	}
	n := len(fr.iters) - base
	saved := fr.vars[s.varSlot]
	defer func() {
		fr.vars[s.varSlot] = saved
		fr.iters = fr.iters[:base]
	}()
	for i := 0; i < n; i++ {
		fr.vars[s.varSlot] = cval{v: fr.iters[base+i], set: true, cow: cowSrc}
		for _, st := range s.body {
			if err := st.exec(fr); err != nil {
				return err
			}
		}
	}
	return nil
}

// ---- compiled expressions ----

type cLit struct{ val any }

func (e *cLit) eval(*cframe) (cres, error) { return cres{v: e.val, owned: true}, nil }

type cPath struct {
	isMsg   bool
	slot    int
	root    string
	msgName string     // message-name component for handle roots ("" when the path stops at the root)
	hasName bool       // a second component exists
	rest    []pathStep // navigation after root (and message name, for handles)
	text    string
}

func (e *cPath) eval(fr *cframe) (cres, error) {
	if e.isMsg {
		msg := fr.msgs[e.slot]
		if msg == nil {
			return cres{}, fmt.Errorf("%w: %s: unknown message or variable %q", ErrExec, e.text, e.root)
		}
		if !e.hasName {
			return cres{v: message.NewStruct(msg.Name, msg.Fields...)}, nil
		}
		if !nameMatches(msg.Name, e.msgName) {
			return cres{}, fmt.Errorf("%w: %s: message at %q is %q, not %q",
				ErrExec, e.text, e.root, msg.Name, e.msgName)
		}
		if len(e.rest) == 0 {
			return cres{v: message.NewStruct(msg.Name, msg.Fields...)}, nil
		}
		f, err := clookupSteps(msg.Fields, e.rest)
		if err != nil {
			return cres{}, fmt.Errorf("%w: %s: %v", ErrExec, e.text, err)
		}
		return cres{v: fieldValue(f)}, nil
	}
	sv := &fr.vars[e.slot]
	if !sv.set {
		if v, ok := fr.env.Vars[e.root]; ok {
			*sv = cval{v: v, set: true}
		} else {
			return cres{}, fmt.Errorf("%w: %s: unknown message or variable %q", ErrExec, e.text, e.root)
		}
	}
	if len(e.rest) == 0 {
		return cres{v: sv.v, cow: sv.cow}, nil
	}
	f, ok := sv.v.(*message.Field)
	if !ok {
		return cres{}, fmt.Errorf("%w: %s: variable %q is not a field tree", ErrExec, e.text, e.root)
	}
	sub, err := clookupSteps(f.Children, e.rest)
	if err != nil {
		return cres{}, fmt.Errorf("%w: %s: %v", ErrExec, e.text, err)
	}
	return cres{v: fieldValue(sub), cow: sv.cow}, nil
}

type cCall struct {
	name  string
	fn    Func // nil: unknown at compile time, fails at exec like the interpreter
	fresh bool // newstruct/newarray: result tree is owned by the execution
	args  []cExpr
}

func (e *cCall) eval(fr *cframe) (cres, error) {
	if e.fn == nil {
		return cres{}, fmt.Errorf("%w: unknown function %q", ErrExec, e.name)
	}
	base := len(fr.args)
	for _, a := range e.args {
		r, err := a.eval(fr)
		if err != nil {
			fr.args = fr.args[:base]
			return cres{}, err
		}
		fr.args = append(fr.args, r.v)
	}
	v, err := e.fn(fr.env, fr.args[base:])
	fr.args = fr.args[:base]
	if err != nil {
		return cres{}, fmt.Errorf("%w: %s(): %w", ErrExec, e.name, err)
	}
	return cres{v: v, owned: e.fresh}, nil
}

// cGetCachePeek is getcache compiled to read through the session cache
// without cloning the stored tree. Only chosen when the program provably
// never mutates variables or calls non-builtin functions; the returned
// tree is marked copy-on-write anyway.
type cGetCachePeek struct {
	key cExpr
}

func (e *cGetCachePeek) eval(fr *cframe) (cres, error) {
	r, err := e.key.eval(fr)
	if err != nil {
		return cres{}, err
	}
	if fr.env.Cache == nil {
		return cres{}, fmt.Errorf("%w: getcache(): no session cache configured", ErrExec)
	}
	f, err := fr.env.Cache.Peek(ValueString(r.v))
	if err != nil {
		return cres{}, fmt.Errorf("%w: getcache(): %w", ErrExec, err)
	}
	return cres{v: f, cow: true}, nil
}

// ---- compiled navigation and mutation ----

func clookupSteps(children []*message.Field, steps []pathStep) (*message.Field, error) {
	var cur *message.Field
	for i := range steps {
		st := &steps[i]
		cur = nil
		seen := 0
		for _, c := range children {
			if c.Label != st.label {
				continue
			}
			if st.index < 0 || seen == st.index {
				cur = c
				break
			}
			seen++
		}
		if cur == nil {
			return nil, fmt.Errorf("no field %q", st.label)
		}
		children = cur.Children
	}
	return cur, nil
}

// scalarField maps an evaluated scalar onto its field type and canonical
// value (the table of valueToField, without building a field).
func scalarField(val any) (message.Type, any, bool) {
	switch v := val.(type) {
	case string:
		return message.TypeString, v, true
	case int64:
		return message.TypeInt64, v, true
	case uint64:
		return message.TypeUint64, v, true
	case float64:
		return message.TypeFloat64, v, true
	case bool:
		return message.TypeBool, v, true
	case []byte:
		return message.TypeBytes, v, true
	case nil:
		return message.TypeString, "", true
	}
	return 0, nil, false
}

// cvalueToField converts an evaluated value into a graftable field,
// transferring owned trees instead of cloning them.
func cvalueToField(label string, res cres) *message.Field {
	if f, ok := res.v.(*message.Field); ok {
		if res.owned {
			f.Label = label
			return f
		}
		cp := f.Clone()
		cp.Label = label
		return cp
	}
	return valueToField(label, res.v)
}

// csetSteps is setSteps with ownership-aware grafting and an in-place
// overwrite fast path for existing scalar targets.
func csetSteps(children *[]*message.Field, steps []pathStep, res cres, text string) error {
	for i := range steps {
		st := &steps[i]
		last := i == len(steps)-1
		var cur *message.Field
		if !st.append {
			seen := 0
			for _, c := range *children {
				if c.Label != st.label {
					continue
				}
				if st.index < 0 || seen == st.index {
					cur = c
					break
				}
				seen++
			}
		}
		if cur == nil {
			if last {
				*children = append(*children, cvalueToField(st.label, res))
				return nil
			}
			cur = message.NewStruct(st.label)
			*children = append(*children, cur)
		}
		if last {
			if t, v, ok := scalarField(res.v); ok {
				// Overwrite in place: the interpreter's `*cur = *nf`
				// resets length, mandatory flag and children too.
				cur.Type = t
				cur.Value = v
				cur.LengthBits = 0
				cur.Mandatory = false
				cur.Children = nil
				return nil
			}
			nf := cvalueToField(st.label, res)
			*cur = *nf
			return nil
		}
		if cur.Type.Primitive() {
			return fmt.Errorf("%w: assign %s: %q is primitive", ErrExec, text, st.label)
		}
		children = &cur.Children
	}
	return nil
}

// ---- compiler ----

// pureBuiltins are side-effect-free builtins whose calls over literal
// arguments can be folded at compile time.
var pureBuiltins = map[string]bool{
	"concat": true, "toint": true, "tostring": true,
	"urlencode": true, "urldecode": true, "default": true,
	"add": true, "sub": true, "mul": true, "replace": true,
	"trim": true, "lower": true, "upper": true, "substr": true,
}

type compiler struct {
	handles   map[string]int
	handleIDs []string
	vars      map[string]int
	varIDs    []string
	funcs     map[string]Func

	// peekSafe: the program has no non-builtin calls (a custom function
	// could mutate an argument tree) and no variable-path assignments
	// (no tree reachable from a variable is ever mutated), so getcache
	// may return the cache's own tree instead of a clone — nothing can
	// write through it, and grafts always copy.
	peekSafe bool
}

// Compile lowers a parsed program into its compiled form. It never
// fails on a program produced by Parse; the error return guards against
// future unsupported constructs.
func Compile(p *Program, opts CompileOptions) (*CompiledProgram, error) {
	c := &compiler{
		handles: make(map[string]int),
		vars:    make(map[string]int),
		funcs:   opts.Funcs,
	}
	handleSet := make(map[string]bool, len(opts.Handles))
	for _, h := range opts.Handles {
		handleSet[h] = true
	}
	c.peekSafe = c.analyze(p.stmts, handleSet)
	stmts := make([]cStmt, 0, len(p.stmts))
	for _, s := range p.stmts {
		cs, err := c.stmt(s, handleSet)
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, cs)
	}
	return &CompiledProgram{
		src:      p.src,
		prog:     p,
		stmts:    stmts,
		handles:  c.handleIDs,
		varNames: c.varIDs,
	}, nil
}

// analyze scans the program for the properties that gate the getcache
// Peek fast path.
func (c *compiler) analyze(stmts []Stmt, handleSet map[string]bool) (peekSafe bool) {
	peekSafe = true
	noCustomCalls := true
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		call, ok := e.(*callExpr)
		if !ok {
			return
		}
		if _, shadowed := c.funcs[call.name]; shadowed {
			noCustomCalls = false
		} else if _, isBuiltin := builtins[call.name]; !isBuiltin {
			noCustomCalls = false
		}
		for _, a := range call.args {
			walkExpr(a)
		}
	}
	var walkStmt func(s Stmt)
	walkStmt = func(s Stmt) {
		switch st := s.(type) {
		case *assignStmt:
			root := st.lhs.steps[0]
			if !handleSet[root.label] && (len(st.lhs.steps) > 1 || root.append) {
				peekSafe = false
			}
			walkExpr(st.rhs)
		case *callStmt:
			walkExpr(st.call)
		case *foreachStmt:
			for _, b := range st.body {
				walkStmt(b)
			}
		case *tryStmt:
			walkStmt(st.inner)
		}
	}
	for _, s := range stmts {
		walkStmt(s)
	}
	return peekSafe && noCustomCalls
}

func (c *compiler) handleSlot(name string) int {
	if i, ok := c.handles[name]; ok {
		return i
	}
	i := len(c.handleIDs)
	c.handles[name] = i
	c.handleIDs = append(c.handleIDs, name)
	return i
}

func (c *compiler) varSlot(name string) int {
	if i, ok := c.vars[name]; ok {
		return i
	}
	i := len(c.varIDs)
	c.vars[name] = i
	c.varIDs = append(c.varIDs, name)
	return i
}

func (c *compiler) stmt(s Stmt, handleSet map[string]bool) (cStmt, error) {
	switch st := s.(type) {
	case *tryStmt:
		inner, err := c.stmt(st.inner, handleSet)
		if err != nil {
			return nil, err
		}
		return &cTry{inner: inner}, nil
	case *callStmt:
		call, err := c.call(st.call, handleSet)
		if err != nil {
			return nil, err
		}
		if _, folded := call.(*cLit); folded {
			return cNop{}, nil
		}
		return &cCallStmt{call: call}, nil
	case *assignStmt:
		rhs, err := c.expr(st.rhs, handleSet)
		if err != nil {
			return nil, err
		}
		root := st.lhs.steps[0]
		if handleSet[root.label] {
			return &cAssignMsg{
				slot:  c.handleSlot(root.label),
				root:  root.label,
				steps: st.lhs.steps,
				rhs:   rhs,
				text:  st.lhs.text,
			}, nil
		}
		if len(st.lhs.steps) == 1 && !root.append {
			return &cAssignVar{slot: c.varSlot(root.label), rhs: rhs}, nil
		}
		steps := st.lhs.steps[1:]
		return &cAssignVarPath{
			slot:  c.varSlot(root.label),
			root:  root.label,
			steps: steps,
			rhs:   rhs,
			text:  st.lhs.text,
		}, nil
	case *foreachStmt:
		return c.foreach(st, handleSet)
	default:
		return nil, fmt.Errorf("%w: unsupported statement %T", ErrParse, s)
	}
}

func (c *compiler) foreach(st *foreachStmt, handleSet map[string]bool) (cStmt, error) {
	steps := st.src.steps
	if len(steps) < 2 {
		return &cErr{err: fmt.Errorf("%w: foreach source %q too short", ErrExec, st.src.text)}, nil
	}
	root := steps[0]
	f := &cForeach{
		srcRoot: root.label,
		varSlot: c.varSlot(st.varName),
		text:    st.src.text,
	}
	if handleSet[root.label] {
		if len(steps) < 3 {
			return &cErr{err: fmt.Errorf("%w: foreach source %q too short", ErrExec, st.src.text)}, nil
		}
		f.srcIsMsg = true
		f.srcSlot = c.handleSlot(root.label)
		f.msgName = steps[1].label
		f.mid = steps[2 : len(steps)-1]
	} else {
		f.srcSlot = c.varSlot(root.label)
		f.mid = steps[1 : len(steps)-1]
	}
	f.last = steps[len(steps)-1]
	for _, b := range st.body {
		cs, err := c.stmt(b, handleSet)
		if err != nil {
			return nil, err
		}
		f.body = append(f.body, cs)
	}
	return f, nil
}

func (c *compiler) expr(e Expr, handleSet map[string]bool) (cExpr, error) {
	switch ex := e.(type) {
	case *literalExpr:
		return &cLit{val: ex.val}, nil
	case *callExpr:
		return c.call(ex, handleSet)
	case *pathExpr:
		root := ex.steps[0]
		if handleSet[root.label] {
			p := &cPath{
				isMsg: true,
				slot:  c.handleSlot(root.label),
				root:  root.label,
				text:  ex.text,
			}
			if len(ex.steps) >= 2 {
				p.hasName = true
				p.msgName = ex.steps[1].label
				p.rest = ex.steps[2:]
			}
			return p, nil
		}
		return &cPath{
			slot: c.varSlot(root.label),
			root: root.label,
			rest: ex.steps[1:],
			text: ex.text,
		}, nil
	default:
		return nil, fmt.Errorf("%w: unsupported expression %T", ErrParse, e)
	}
}

func (c *compiler) call(e *callExpr, handleSet map[string]bool) (cExpr, error) {
	args := make([]cExpr, len(e.args))
	allLit := true
	for i, a := range e.args {
		ca, err := c.expr(a, handleSet)
		if err != nil {
			return nil, err
		}
		args[i] = ca
		if _, ok := ca.(*cLit); !ok {
			allLit = false
		}
	}
	fn := c.funcs[e.name]
	shadowed := fn != nil
	if fn == nil {
		fn = builtins[e.name]
	}
	// Constant-fold pure builtins over literal arguments. Folding is
	// best-effort: a call that fails stays unfolded so its error (and
	// any enclosing `try`) keeps runtime semantics.
	if !shadowed && fn != nil && allLit && pureBuiltins[e.name] {
		vals := make([]any, len(args))
		for i, a := range args {
			vals[i] = a.(*cLit).val
		}
		if v, err := fn(nil, vals); err == nil {
			return &cLit{val: v}, nil
		}
	}
	if !shadowed && e.name == "getcache" && c.peekSafe && len(args) == 1 {
		return &cGetCachePeek{key: args[0]}, nil
	}
	fresh := !shadowed && (e.name == "newstruct" || e.name == "newarray")
	return &cCall{name: e.name, fn: fn, fresh: fresh, args: args}, nil
}
