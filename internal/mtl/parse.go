package mtl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokIdent tokenKind = iota + 1
	tokString
	tokNumber
	tokEquals
	tokDot
	tokComma
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '=':
			l.emit(tokEquals, "=")
		case c == '.':
			l.emit(tokDot, ".")
		case c == ',':
			l.emit(tokComma, ",")
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == '{':
			l.emit(tokLBrace, "{")
		case c == '}':
			l.emit(tokRBrace, "}")
		case c == '[':
			l.emit(tokLBracket, "[")
		case c == ']':
			l.emit(tokRBracket, "]")
		case c == '"' || c == '\'':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9':
			l.lexNumber()
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			l.lexNumber()
		default:
			return nil, fmt.Errorf("%w: line %d: unexpected character %q", ErrParse, l.line, string(c))
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, line: l.line})
	return l.toks, nil
}

func (l *lexer) emit(k tokenKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, line: l.line})
	l.pos += len(text)
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), line: l.line})
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			switch l.src[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				b.WriteByte(l.src[l.pos])
			}
			l.pos++
			continue
		}
		if c == '\n' {
			break
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("%w: line %d: unterminated string starting at %q", ErrParse, l.line, l.src[start:min(start+10, len(l.src))])
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
		// A dot followed by a non-digit is a path separator, not a decimal
		// point.
		if l.src[l.pos] == '.' && (l.pos+1 >= len(l.src) || l.src[l.pos+1] < '0' || l.src[l.pos+1] > '9') {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], line: l.line})
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '@' || r == '*'
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '@' || r == '*' || r == '/'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentRune(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], line: l.line})
}

// ---- parser ----

type parser struct {
	toks []token
	pos  int
}

// Parse compiles an MTL program.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Stmt
	for p.peek().kind != tokEOF {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return &Program{stmts: stmts, src: src}, nil
}

// MustParse is Parse that panics on error, for statically known programs.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) expect(k tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("%w: line %d: expected %s, got %s", ErrParse, t.line, what, t)
	}
	return t, nil
}

func (p *parser) statement() (Stmt, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("%w: line %d: expected statement, got %s", ErrParse, t.line, t)
	}
	if t.text == "foreach" {
		return p.foreach()
	}
	if t.text == "try" && p.toks[p.pos+1].kind == tokIdent {
		p.next()
		inner, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &tryStmt{inner: inner}, nil
	}
	// Lookahead: ident '(' -> call statement.
	if p.toks[p.pos+1].kind == tokLParen {
		p.next()
		call, err := p.callArgs(t.text)
		if err != nil {
			return nil, err
		}
		return &callStmt{call: call}, nil
	}
	lhs, err := p.path(true)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEquals, `"="`); err != nil {
		return nil, err
	}
	rhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &assignStmt{lhs: lhs, rhs: rhs}, nil
}

func (p *parser) foreach() (Stmt, error) {
	p.next() // foreach
	v, err := p.expect(tokIdent, "loop variable")
	if err != nil {
		return nil, err
	}
	in, err := p.expect(tokIdent, `"in"`)
	if err != nil || in.text != "in" {
		return nil, fmt.Errorf("%w: line %d: expected \"in\" after foreach variable", ErrParse, v.line)
	}
	src, err := p.path(false)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, `"{"`); err != nil {
		return nil, err
	}
	var body []Stmt
	for p.peek().kind != tokRBrace {
		if p.peek().kind == tokEOF {
			return nil, fmt.Errorf("%w: line %d: unterminated foreach body", ErrParse, v.line)
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	p.next() // }
	return &foreachStmt{varName: v.text, src: src, body: body}, nil
}

func (p *parser) path(lvalue bool) (*pathExpr, error) {
	first, err := p.expect(tokIdent, "identifier")
	if err != nil {
		return nil, err
	}
	pe := &pathExpr{steps: []pathStep{{label: first.text, index: -1}}}
	var text strings.Builder
	text.WriteString(first.text)
	for {
		switch p.peek().kind {
		case tokDot:
			p.next()
			id, err := p.expect(tokIdent, "path component")
			if err != nil {
				return nil, err
			}
			pe.steps = append(pe.steps, pathStep{label: id.text, index: -1})
			text.WriteString("." + id.text)
		case tokLBracket:
			p.next()
			last := &pe.steps[len(pe.steps)-1]
			if p.peek().kind == tokRBracket {
				if !lvalue {
					return nil, fmt.Errorf("%w: line %d: append [] only allowed on assignment targets", ErrParse, p.peek().line)
				}
				p.next()
				last.append = true
				text.WriteString("[]")
				continue
			}
			num, err := p.expect(tokNumber, "index")
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(num.text)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("%w: line %d: bad index %q", ErrParse, num.line, num.text)
			}
			if _, err := p.expect(tokRBracket, `"]"`); err != nil {
				return nil, err
			}
			last.index = n
			text.WriteString("[" + num.text + "]")
		default:
			pe.text = text.String()
			return pe, nil
		}
	}
}

func (p *parser) expr() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokString:
		p.next()
		return &literalExpr{val: t.text}, nil
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: bad number %q", ErrParse, t.line, t.text)
			}
			return &literalExpr{val: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: bad number %q", ErrParse, t.line, t.text)
		}
		return &literalExpr{val: n}, nil
	case tokIdent:
		if p.toks[p.pos+1].kind == tokLParen {
			p.next()
			return p.callArgs(t.text)
		}
		switch t.text {
		case "true":
			p.next()
			return &literalExpr{val: true}, nil
		case "false":
			p.next()
			return &literalExpr{val: false}, nil
		}
		return p.path(false)
	default:
		return nil, fmt.Errorf("%w: line %d: expected expression, got %s", ErrParse, t.line, t)
	}
}

func (p *parser) callArgs(name string) (*callExpr, error) {
	if _, err := p.expect(tokLParen, `"("`); err != nil {
		return nil, err
	}
	call := &callExpr{name: strings.ToLower(name)}
	if p.peek().kind == tokRParen {
		p.next()
		return call, nil
	}
	for {
		arg, err := p.expr()
		if err != nil {
			return nil, err
		}
		call.args = append(call.args, arg)
		switch p.peek().kind {
		case tokComma:
			p.next()
		case tokRParen:
			p.next()
			return call, nil
		default:
			return nil, fmt.Errorf("%w: line %d: expected \",\" or \")\" in %s()", ErrParse, p.peek().line, name)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
