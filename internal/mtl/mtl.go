// Package mtl implements Starlink's Message Translation Logic.
//
// MTL describes how to translate between semantically equivalent messages
// at the bicolored states of a merged k-colored automaton (paper Section
// 4.1, Figs. 8-10). A program is a sequence of statements over the
// abstract messages received and sent so far in the session, addressed by
// the state at which they were exchanged:
//
//	# Fig. 8: bind Add's arguments to Plus's
//	s22.SOAPRequest.Parameter[0] = s21.GIOPRequest.ParameterArray.Parameter[0]
//
//	# Fig. 9: retarget and remember each search result
//	sethost("https://picasaweb.google.com")
//	foreach e in s5.HTTPOK.Body.feed.entry {
//	  cache(e.id, e)
//	  s6.MethodResponse.Photos.photo[] = e.id
//	}
//
//	# Fig. 10: answer getInfo from the cache, no remote call
//	entry = getcache(s8.MethodCall.params.param.value.string)
//	s8.MethodResponse.photo.title = entry.title
//
// Statement forms:
//
//	lvalue = expr            field assignment (creates missing path steps;
//	                         a trailing [] on the last step appends)
//	name = expr              local variable binding
//	func(args...)            side-effecting call (cache, sethost, ...)
//	foreach v in path { … }  iterate the children of path's parent that
//	                         share the final label
//
// Expressions are field paths, string/number literals, local variables or
// function calls. A path whose first component names a message in the
// environment reads from that message; assigning a structured field grafts
// a deep copy.
package mtl

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"starlink/internal/message"
)

// Errors reported by the MTL layer.
var (
	// ErrParse is wrapped by all syntax errors.
	ErrParse = errors.New("mtl: parse error")
	// ErrExec is wrapped by all runtime errors.
	ErrExec = errors.New("mtl: execution error")
	// ErrCacheMiss is returned by getcache for an absent key.
	ErrCacheMiss = errors.New("mtl: cache miss")
)

// DefaultCacheLimit bounds a session cache's entry count; long-lived
// sessions (a client looping over many searches on one connection) would
// otherwise grow without bound.
const DefaultCacheLimit = 1024

// Cache is the session-scoped store behind the cache/getcache keywords
// (used for the Fig. 10 extra-message mismatch). It is safe for concurrent
// use and the zero value is ready to use.
//
// Eviction policy: when the cache exceeds its limit (DefaultCacheLimit
// unless Limit is set), entries are evicted oldest-write-first. Re-putting
// an existing key refreshes its position — a repeatedly-rewritten hot key
// counts as fresh, and the stalest write is evicted first. (Reads do not
// refresh; this is write-recency, not LRU.)
type Cache struct {
	// Limit overrides DefaultCacheLimit when positive.
	Limit int

	mu    sync.Mutex
	m     map[string]*message.Field
	order []string
}

// Put stores a deep copy of f under key.
func (c *Cache) Put(key string, f *message.Field) { c.putOwned(key, f.Clone()) }

// putOwned stores f under key without copying; the caller transfers
// ownership of the tree to the cache.
func (c *Cache) putOwned(key string, f *message.Field) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]*message.Field)
	}
	if _, exists := c.m[key]; exists {
		// Refresh the key's eviction slot: without this, a hot key
		// rewritten many times keeps its original (oldest) position and
		// is evicted while stale keys survive.
		for i, k := range c.order {
			if k == key {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
	}
	c.order = append(c.order, key)
	c.m[key] = f
	limit := c.Limit
	if limit <= 0 {
		limit = DefaultCacheLimit
	}
	for len(c.m) > limit && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.m, oldest)
	}
}

// Get returns a deep copy of the field stored under key.
func (c *Cache) Get(key string) (*message.Field, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.m[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrCacheMiss, key)
	}
	return f.Clone(), nil
}

// Peek returns the field stored under key without copying. The returned
// tree is shared with the cache: callers must treat it as read-only (the
// compiled fast path marks it copy-on-write and clones before any
// mutation or graft).
func (c *Cache) Peek(key string) (*message.Field, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.m[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrCacheMiss, key)
	}
	return f, nil
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Func is a callable registered with the interpreter. Arguments are
// evaluated values: scalars (string, int64, float64, bool, []byte) or
// *message.Field trees.
type Func func(env *Env, args []any) (any, error)

// Env is the execution environment of one translation.
type Env struct {
	// Messages maps a state label (or any chosen handle) to the message
	// exchanged there. Lvalues rooted at a handle write into (and create)
	// that message.
	Messages map[string]*message.Message
	// Vars holds local variable bindings.
	Vars map[string]any
	// Cache is the session cache; if nil, cache/getcache fail.
	Cache *Cache
	// Host is set by sethost() and read by the engine to retarget the
	// outgoing connection.
	Host string
	// Funcs are extra functions; built-ins are always available and can be
	// shadowed here.
	Funcs map[string]Func

	// frame is the compiled fast path's reusable per-execution scratch
	// (slot tables, argument arena, foreach snapshots); see compile.go.
	frame *cframe
}

// NewEnv returns an environment with empty bindings and the given cache.
func NewEnv(cache *Cache) *Env {
	return &Env{
		Messages: make(map[string]*message.Message),
		Vars:     make(map[string]any),
		Cache:    cache,
	}
}

// Bind associates a message with a state handle.
func (e *Env) Bind(handle string, msg *message.Message) { e.Messages[handle] = msg }

// Reset clears the environment's bindings and host retarget while keeping
// its cache, extra functions, map capacity and compiled-execution scratch,
// so one Env can be pooled across translations of a session.
func (e *Env) Reset() {
	if e.Messages != nil {
		clear(e.Messages)
	}
	if e.Vars != nil {
		clear(e.Vars)
	}
	e.Host = ""
}

// Message returns the message bound to handle, or nil.
func (e *Env) Message(handle string) *message.Message { return e.Messages[handle] }

// ---- AST ----

// Stmt is one executable statement.
type Stmt interface{ exec(env *Env) error }

// Expr evaluates to a scalar or a *message.Field.
type Expr interface{ eval(env *Env) (any, error) }

type pathStep struct {
	label  string
	index  int  // -1 absent
	append bool // lvalue-only: trailing []
}

type pathExpr struct {
	steps []pathStep
	text  string
}

type literalExpr struct{ val any }

type callExpr struct {
	name string
	args []Expr
}

type assignStmt struct {
	lhs *pathExpr
	rhs Expr
}

type callStmt struct{ call *callExpr }

type foreachStmt struct {
	varName string
	src     *pathExpr
	body    []Stmt
}

// tryStmt runs a statement and ignores its execution errors — the MTL form
// for copying optional fields that may be absent from a message:
//
//	try m2.Msg.max-results = m1.Msg.per_page
type tryStmt struct{ inner Stmt }

func (s *tryStmt) exec(env *Env) error {
	_ = s.inner.exec(env)
	return nil
}

// Program is a parsed MTL program.
type Program struct {
	stmts []Stmt
	src   string
}

// Source returns the original program text.
func (p *Program) Source() string { return p.src }

// Len reports the number of top-level statements.
func (p *Program) Len() int { return len(p.stmts) }

// Exec runs the program against env.
func (p *Program) Exec(env *Env) error {
	if env.Vars == nil {
		env.Vars = make(map[string]any)
	}
	if env.Messages == nil {
		env.Messages = make(map[string]*message.Message)
	}
	for _, s := range p.stmts {
		if err := s.exec(env); err != nil {
			return err
		}
	}
	return nil
}

// ---- execution ----

func (s *assignStmt) exec(env *Env) error {
	val, err := s.rhs.eval(env)
	if err != nil {
		return err
	}
	// Bare single-step lvalue that is not a message handle -> local var.
	if len(s.lhs.steps) == 1 && !s.lhs.steps[0].append {
		name := s.lhs.steps[0].label
		if _, isMsg := env.Messages[name]; !isMsg {
			env.Vars[name] = val
			return nil
		}
	}
	return assignPath(env, s.lhs, val)
}

func (s *callStmt) exec(env *Env) error {
	_, err := s.call.eval(env)
	return err
}

// exec iterates with snapshot semantics: the set of matching fields is
// captured once, before the body first runs. A body that appends matching
// siblings to the iterated parent (e.g. `m.Msg.feed.entry[] = e`) does not
// extend the iteration, and a body that overwrites an upcoming item's
// slot mutates the field the snapshot already points at — the loop still
// visits exactly the fields that matched at entry. The compiled fast path
// (compile.go) enforces the same rule.
func (s *foreachStmt) exec(env *Env) error {
	items, err := resolveAll(env, s.src)
	if err != nil {
		return err
	}
	saved, had := env.Vars[s.varName]
	defer func() {
		if had {
			env.Vars[s.varName] = saved
		} else {
			delete(env.Vars, s.varName)
		}
	}()
	for _, item := range items {
		env.Vars[s.varName] = item
		for _, st := range s.body {
			if err := st.exec(env); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *literalExpr) eval(*Env) (any, error) { return e.val, nil }

func (e *callExpr) eval(env *Env) (any, error) {
	fn := env.Funcs[e.name]
	if fn == nil {
		fn = builtins[e.name]
	}
	if fn == nil {
		return nil, fmt.Errorf("%w: unknown function %q", ErrExec, e.name)
	}
	args := make([]any, len(e.args))
	for i, a := range e.args {
		v, err := a.eval(env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	v, err := fn(env, args)
	if err != nil {
		return nil, fmt.Errorf("%w: %s(): %w", ErrExec, e.name, err)
	}
	return v, nil
}

func (e *pathExpr) eval(env *Env) (any, error) {
	root := e.steps[0]
	// Message handle? The second path component names the message (as in
	// the paper's "S21.GIOPRqst.X") and is checked, not navigated.
	if msg, ok := env.Messages[root.label]; ok {
		if len(e.steps) == 1 {
			return message.NewStruct(msg.Name, msg.Fields...), nil
		}
		if !nameMatches(msg.Name, e.steps[1].label) {
			return nil, fmt.Errorf("%w: %s: message at %q is %q, not %q",
				ErrExec, e.text, root.label, msg.Name, e.steps[1].label)
		}
		if len(e.steps) == 2 {
			return message.NewStruct(msg.Name, msg.Fields...), nil
		}
		f, err := lookupSteps(msg.Fields, e.steps[2:])
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrExec, e.text, err)
		}
		return fieldValue(f), nil
	}
	// Local variable?
	if v, ok := env.Vars[root.label]; ok {
		if len(e.steps) == 1 {
			return v, nil
		}
		f, ok := v.(*message.Field)
		if !ok {
			return nil, fmt.Errorf("%w: %s: variable %q is not a field tree", ErrExec, e.text, root.label)
		}
		sub, err := lookupSteps(f.Children, e.steps[1:])
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrExec, e.text, err)
		}
		return fieldValue(sub), nil
	}
	return nil, fmt.Errorf("%w: %s: unknown message or variable %q", ErrExec, e.text, root.label)
}

// isMsgWildcard reports whether a path's message-name component matches any
// message ("Msg" as in the paper's Fig. 8, or "*").
func isMsgWildcard(name string) bool { return name == "Msg" || name == "*" }

func nameMatches(msgName, pathName string) bool {
	return isMsgWildcard(pathName) || msgName == "" || msgName == pathName
}

// fieldValue unwraps primitive fields to their scalar; structured fields
// stay as trees.
func fieldValue(f *message.Field) any {
	if f.Type.Primitive() {
		return f.Value
	}
	return f
}

func lookupSteps(children []*message.Field, steps []pathStep) (*message.Field, error) {
	var cur *message.Field
	for _, st := range steps {
		cur = nil
		seen := 0
		for _, c := range children {
			if c.Label != st.label {
				continue
			}
			if st.index < 0 || seen == st.index {
				cur = c
				break
			}
			seen++
		}
		if cur == nil {
			return nil, fmt.Errorf("no field %q", st.label)
		}
		children = cur.Children
	}
	return cur, nil
}

// resolveAll returns every sibling matching the path's final label (the
// foreach source set).
func resolveAll(env *Env, p *pathExpr) ([]*message.Field, error) {
	if len(p.steps) < 2 {
		return nil, fmt.Errorf("%w: foreach source %q too short", ErrExec, p.text)
	}
	root := p.steps[0]
	steps := p.steps
	var children []*message.Field
	if msg, ok := env.Messages[root.label]; ok {
		if len(steps) < 3 {
			return nil, fmt.Errorf("%w: foreach source %q too short", ErrExec, p.text)
		}
		if !nameMatches(msg.Name, steps[1].label) {
			return nil, fmt.Errorf("%w: foreach source %q: message at %q is %q, not %q",
				ErrExec, p.text, root.label, msg.Name, steps[1].label)
		}
		children = msg.Fields
		steps = append([]pathStep{steps[0]}, steps[2:]...)
	} else if v, ok := env.Vars[root.label]; ok {
		f, ok := v.(*message.Field)
		if !ok {
			return nil, fmt.Errorf("%w: foreach source %q: not a field tree", ErrExec, p.text)
		}
		children = f.Children
	} else {
		return nil, fmt.Errorf("%w: foreach source %q: unknown root %q", ErrExec, p.text, root.label)
	}
	mid := steps[1 : len(steps)-1]
	if len(mid) > 0 {
		parent, err := lookupSteps(children, mid)
		if err != nil {
			return nil, fmt.Errorf("%w: foreach source %q: %v", ErrExec, p.text, err)
		}
		children = parent.Children
	}
	last := steps[len(steps)-1]
	var out []*message.Field
	seen := 0
	for _, c := range children {
		if c.Label != last.label {
			continue
		}
		if last.index >= 0 {
			if seen == last.index {
				out = append(out, c)
				break
			}
			seen++
			continue
		}
		out = append(out, c)
	}
	return out, nil
}

func assignPath(env *Env, lhs *pathExpr, val any) error {
	root := lhs.steps[0]
	msg, ok := env.Messages[root.label]
	if !ok {
		// Assigning into a structured local variable.
		if v, okVar := env.Vars[root.label]; okVar {
			if f, okField := v.(*message.Field); okField && len(lhs.steps) > 1 {
				return setSteps(&f.Children, lhs.steps[1:], val, lhs.text)
			}
		}
		return fmt.Errorf("%w: assign %s: unknown message %q", ErrExec, lhs.text, root.label)
	}
	if len(lhs.steps) < 2 {
		return fmt.Errorf("%w: assign %s: need a message name component", ErrExec, lhs.text)
	}
	// Second step names (or renames) the abstract message. The paper's
	// Fig. 8 uses the wildcard "Msg" to mean "whatever message is bound
	// here"; we honour that (and "*").
	if name := lhs.steps[1].label; !isMsgWildcard(name) {
		if msg.Name == "" {
			msg.Name = name
		} else if msg.Name != name {
			return fmt.Errorf("%w: assign %s: message at %q is %q, not %q",
				ErrExec, lhs.text, root.label, msg.Name, name)
		}
	}
	if len(lhs.steps) == 2 {
		// Whole-message assignment: graft a field tree's children.
		f, ok := val.(*message.Field)
		if !ok {
			return fmt.Errorf("%w: assign %s: whole-message assignment needs a field tree", ErrExec, lhs.text)
		}
		cp := f.Clone()
		msg.Fields = cp.Children
		return nil
	}
	return setSteps(&msg.Fields, lhs.steps[2:], val, lhs.text)
}

func setSteps(children *[]*message.Field, steps []pathStep, val any, text string) error {
	for i, st := range steps {
		last := i == len(steps)-1
		var cur *message.Field
		if !st.append {
			seen := 0
			for _, c := range *children {
				if c.Label != st.label {
					continue
				}
				if st.index < 0 || seen == st.index {
					cur = c
					break
				}
				seen++
			}
		}
		if cur == nil {
			if last {
				*children = append(*children, valueToField(st.label, val))
				return nil
			}
			cur = message.NewStruct(st.label)
			*children = append(*children, cur)
		}
		if last {
			nf := valueToField(st.label, val)
			*cur = *nf
			return nil
		}
		if cur.Type.Primitive() {
			return fmt.Errorf("%w: assign %s: %q is primitive", ErrExec, text, st.label)
		}
		children = &cur.Children
	}
	return nil
}

// valueToField converts an evaluated value into a field with the given
// label. Field trees are cloned and relabelled.
func valueToField(label string, val any) *message.Field {
	switch v := val.(type) {
	case *message.Field:
		cp := v.Clone()
		cp.Label = label
		return cp
	case string:
		return message.NewPrimitive(label, message.TypeString, v)
	case int64:
		return message.NewPrimitive(label, message.TypeInt64, v)
	case uint64:
		return message.NewPrimitive(label, message.TypeUint64, v)
	case float64:
		return message.NewPrimitive(label, message.TypeFloat64, v)
	case bool:
		return message.NewPrimitive(label, message.TypeBool, v)
	case []byte:
		return message.NewPrimitive(label, message.TypeBytes, v)
	case nil:
		return message.NewPrimitive(label, message.TypeString, "")
	default:
		return message.NewPrimitive(label, message.TypeString, fmt.Sprint(v))
	}
}

// ValueString renders an evaluated value as text (helper for functions).
func ValueString(v any) string {
	switch x := v.(type) {
	case *message.Field:
		return x.ValueString()
	case string:
		return x
	case []byte:
		return string(x)
	case nil:
		return ""
	default:
		return strings.TrimSpace(fmt.Sprint(x))
	}
}
