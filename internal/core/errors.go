package core

import (
	"fmt"
	"strconv"
	"strings"
)

// SpecError is the typed form of every mediator- and gateway-spec
// parse failure: callers inspect Line, Directive and Msg instead of
// string-matching the rendered message. It wraps the parser's
// sentinel errors — errors.Is(err, ErrSpec) holds for both parsers,
// and errors.Is(err, ErrGateway) additionally holds for gateway
// specs — and is surfaced by errors.As.
type SpecError struct {
	// Line is the 1-based line the problem was found on; 0 for
	// whole-document problems (e.g. a missing mandatory directive).
	Line int
	// Directive is the directive being parsed; "" when the problem is
	// not tied to one (whole-document checks).
	Directive string
	// Msg describes the problem.
	Msg string

	// sentinels are the wrapped classification errors (ErrSpec, and
	// ErrGateway for gateway specs); the first one prefixes Error().
	sentinels []error
}

// Error renders the same message shape the parsers have always
// produced: "<sentinel>: line N: directive "x": <msg>", dropping the
// line and directive parts when absent.
func (e *SpecError) Error() string {
	var b strings.Builder
	b.WriteString(e.sentinels[0].Error())
	if e.Line > 0 {
		b.WriteString(": line ")
		b.WriteString(strconv.Itoa(e.Line))
	}
	if e.Directive != "" {
		b.WriteString(": directive ")
		b.WriteString(strconv.Quote(e.Directive))
	}
	b.WriteString(": ")
	b.WriteString(e.Msg)
	return b.String()
}

// Unwrap exposes the sentinel errors so errors.Is sees through the
// typed wrapper.
func (e *SpecError) Unwrap() []error { return e.sentinels }

// newSpecErr builds a mediator-spec error. lineNo is 0-based (-1 for
// whole-document problems).
func newSpecErr(lineNo int, directive, format string, args ...any) *SpecError {
	return &SpecError{
		Line:      lineNo + 1,
		Directive: directive,
		Msg:       fmt.Sprintf(format, args...),
		sentinels: []error{ErrSpec},
	}
}

// newGatewayErr builds a gateway-spec error; it additionally wraps
// ErrGateway so existing errors.Is(err, ErrGateway) checks keep
// working.
func newGatewayErr(lineNo int, directive, format string, args ...any) *SpecError {
	return &SpecError{
		Line:      lineNo + 1,
		Directive: directive,
		Msg:       fmt.Sprintf(format, args...),
		sentinels: []error{ErrGateway, ErrSpec},
	}
}
