package core_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"starlink/internal/core"
	"starlink/internal/protocol/httpwire"
)

func TestParseMediatorSpecDiscoverDirectives(t *testing.T) {
	spec, err := core.ParseMediatorSpec(`
merged Add+Plus
side 1 giop defs=AAdd server
side 2 soap path=/soap target=photos
# discovery may precede the backend it drives
discover photos via=slp agent=127.0.0.1:427 type=service:photos scope=CAMPUS refresh=2s debounce=5s min_ttl=1m max_churn=2
backend photos 10.0.0.1:80 10.0.0.2:80
backend orders 10.0.1.1:80
discover orders via=file path=/etc/starlink/orders.hosts
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Discover) != 2 {
		t.Fatalf("Discover = %+v", spec.Discover)
	}
	slp := spec.Discover[0]
	if slp.Backend != "photos" || slp.Via != "slp" || slp.Agent != "127.0.0.1:427" ||
		slp.Type != "service:photos" || slp.Scope != "CAMPUS" {
		t.Errorf("slp discover = %+v", slp)
	}
	if slp.Refresh != 2*time.Second || slp.Debounce != 5*time.Second ||
		slp.MinTTL != time.Minute || slp.MaxChurn != 2 {
		t.Errorf("slp tuning = %+v", slp)
	}
	file := spec.Discover[1]
	if file.Backend != "orders" || file.Via != "file" || file.Path != "/etc/starlink/orders.hosts" {
		t.Errorf("file discover = %+v", file)
	}

	// The ssdp and dns forms parse their own options.
	spec, err = core.ParseMediatorSpec(`
merged Add+Plus
side 1 giop defs=AAdd server
side 2 soap path=/soap target=a
backend a 10.0.0.1:80
backend b 10.0.0.2:80
discover a via=ssdp search=239.255.255.250:1900 st=urn:photos listen=0.0.0.0:1900 mx=2
discover b via=dns name=_photos._tcp.example.org
`)
	if err != nil {
		t.Fatal(err)
	}
	if d := spec.Discover[0]; d.Search != "239.255.255.250:1900" || d.ST != "urn:photos" ||
		d.Listen != "0.0.0.0:1900" || d.MX != 2 {
		t.Errorf("ssdp discover = %+v", d)
	}
	if d := spec.Discover[1]; d.Name != "_photos._tcp.example.org" {
		t.Errorf("dns discover = %+v", d)
	}
}

func TestParseMediatorSpecDiscoverErrors(t *testing.T) {
	head := "merged m\nside 1 giop server\nside 2 soap path=/s target=b\nbackend b 1.1.1.1:1\n"
	for _, line := range []string{
		"discover b",                                             // no options
		"discover b agent=x",                                     // missing via
		"discover b via=carrier-pigeon path=x",                   // unknown source
		"discover b via=slp type=service:x",                      // slp missing agent
		"discover b via=slp agent=1.1.1.1:427",                   // slp missing type
		"discover b via=ssdp st=urn:x",                           // ssdp missing search
		"discover b via=ssdp search=1.1.1.1:1900",                // ssdp missing st
		"discover b via=dns",                                     // dns missing name
		"discover b via=file",                                    // file missing path
		"discover b via=file path=x refresh=fast",                // bad duration
		"discover b via=file path=x debounce=-1s",                // negative duration
		"discover b via=file path=x min_ttl=0s",                  // zero duration
		"discover b via=file path=x max_churn=none",              // bad count
		"discover b via=file path=x mx=0",                        // bad mx
		"discover b via=file path=x bogus=1",                     // unknown option
		"discover b via=file path=x\ndiscover b via=file path=y", // duplicate per set
		"discover ghost via=file path=x",                         // undeclared backend
	} {
		_, err := core.ParseMediatorSpec(head + line)
		if !errors.Is(err, core.ErrSpec) {
			t.Errorf("ParseMediatorSpec(%q) err = %v, want ErrSpec", line, err)
			continue
		}
		var se *core.SpecError
		if !errors.As(err, &se) {
			t.Errorf("ParseMediatorSpec(%q) err %T is not a *SpecError", line, err)
			continue
		}
		if se.Directive != "discover" {
			t.Errorf("ParseMediatorSpec(%q) blamed directive %q", line, se.Directive)
		}
	}
	// The duplicate error names the first line.
	_, err := core.ParseMediatorSpec(head + "discover b via=file path=x\ndiscover b via=file path=y")
	if err == nil || !strings.Contains(err.Error(), "line 5") {
		t.Errorf("duplicate discover err = %v, want first-line reference", err)
	}
}

// TestDeployWithFileDiscovery drives the whole stack: a spec with a
// discover directive deploys, the reconciler follows the hosts file,
// and the admin endpoint serves /discovery.
func TestDeployWithFileDiscovery(t *testing.T) {
	hosts := filepath.Join(t.TempDir(), "photos.hosts")
	if err := os.WriteFile(hosts, []byte("127.0.0.1:9101\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := writeCaseStudyModels(t)
	specPath := filepath.Join(dir, "flickr-xmlrpc.mediator")
	data, err := os.ReadFile(specPath)
	if err != nil {
		t.Fatal(err)
	}
	patched := string(data) + "\nbackend photos 127.0.0.1:9101\n" +
		"discover photos via=file path=" + hosts + " refresh=10ms debounce=20ms min_ttl=30ms\n"
	if err := os.WriteFile(specPath, []byte(patched), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := core.LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := m.Deploy("flickr-xmlrpc", "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	snaps := dep.Mediator.Discovery()
	if len(snaps) != 1 || snaps[0].Set != "photos" || !strings.HasPrefix(snaps[0].Source, "file://") {
		t.Fatalf("Discovery() = %+v", snaps)
	}
	// A new endpoint in the file is admitted once the hysteresis
	// clears.
	if err := os.WriteFile(hosts, []byte("127.0.0.1:9101\n127.0.0.1:9102\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snaps = dep.Mediator.Discovery(); len(snaps[0].Members) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("endpoint never admitted: %+v", snaps)
		}
		time.Sleep(5 * time.Millisecond)
	}

	hc := &httpwire.Client{Addr: dep.Admin.Addr()}
	defer hc.Close()
	resp, err := hc.Get("/discovery")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || !strings.Contains(string(resp.Body), "\"set\": \"photos\"") {
		t.Errorf("/discovery = %d %s", resp.Status, resp.Body)
	}
	resp, err = hc.Get("/metrics")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"starlink_discovery_resolutions_total{set=\"photos\"}",
		"starlink_discovery_adds_total{set=\"photos\"} 1",
		"starlink_discovery_last_resolution_age_seconds{set=\"photos\"}",
	} {
		if !strings.Contains(string(resp.Body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestBuildMediatorDiscoverBadSource: a discover directive whose source
// cannot be constructed (missing hosts file) fails deployment with a
// spec error instead of limping along.
func TestBuildMediatorDiscoverBadSource(t *testing.T) {
	dir := writeCaseStudyModels(t)
	specPath := filepath.Join(dir, "flickr-xmlrpc.mediator")
	data, err := os.ReadFile(specPath)
	if err != nil {
		t.Fatal(err)
	}
	patched := string(data) + "\nbackend photos 127.0.0.1:9101\n" +
		"discover photos via=file path=" + filepath.Join(dir, "does-not-exist") + "\n"
	if err := os.WriteFile(specPath, []byte(patched), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := core.LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Deploy("flickr-xmlrpc", "127.0.0.1:0", ""); !errors.Is(err, core.ErrSpec) {
		t.Fatalf("Deploy with missing hosts file err = %v, want ErrSpec", err)
	}
}
