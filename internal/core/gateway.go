package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"starlink/internal/engine"
	"starlink/internal/gateway"
	"starlink/internal/network"
	"starlink/internal/observe"
)

// ErrGateway is wrapped by gateway spec failures.
var ErrGateway = errors.New("core: invalid gateway spec")

// GatewayRouteSpec declares one hosted mediator in a gateway spec.
type GatewayRouteSpec struct {
	// Name identifies the route (metrics label, default reference).
	Name string
	// Mediator names the *.mediator spec the route hosts.
	Mediator string
	// Match overrides the wire class ("giop", "http", "xml", "json");
	// "" derives it from the mediator's server-side protocol.
	Match string
	// PathPrefix narrows an HTTP match to a path prefix; "" derives it
	// from the server side's path (when the protocol has one).
	PathPrefix string
	// Payload narrows an HTTP match to a body kind ("xml" or "json") —
	// how two POST routes on one path stay distinct.
	Payload string
	// Rate, Burst and MaxFlows configure admission control; zero values
	// leave the corresponding limit off.
	Rate     float64
	Burst    int
	MaxFlows int
	// Deadline overrides the hosted mediator's per-flow deadline budget
	// (`deadline=` option): a flow that would outlive it is failed fast
	// with a protocol-correct fault, the deadline-budget analogue of
	// shed-style admission rejection. Zero keeps the mediator spec's
	// flow_deadline (or the engine default).
	Deadline time.Duration
}

// GatewaySpec is a parsed *.gateway deployment spec:
//
//	listen <addr>
//	admin <addr>
//	sniff_bytes <n>
//	sniff_timeout <duration>
//	route <name> <mediator-spec> [match=giop|http|xml|json] [path=<prefix>]
//	      [payload=xml|json] [rate=<n>] [burst=<n>] [maxflows=<n>]
//	      [deadline=<duration>]
//	default <route-name>
type GatewaySpec struct {
	// Listen is the front-door address.
	Listen string
	// Admin, when non-empty, is where the gateway's metrics endpoint
	// binds.
	Admin string
	// Default names the route taking unmatched connections ("" drops
	// them).
	Default string
	// SniffBytes and SniffTimeout bound the wire sniffer (zero values
	// take the gateway defaults).
	SniffBytes   int
	SniffTimeout time.Duration
	// Routes in declaration (match) order.
	Routes []GatewayRouteSpec
}

// gwErr reports a gateway-spec problem as a typed *SpecError, naming
// the line and directive.
func gwErr(lineNo int, directive, format string, args ...any) error {
	return newGatewayErr(lineNo, directive, format, args...)
}

// gwSingleValued lists the gateway directives allowed at most once.
var gwSingleValued = map[string]bool{
	"listen": true, "admin": true, "default": true,
	"sniff_bytes": true, "sniff_timeout": true,
}

// ParseGatewaySpec reads a gateway deployment spec document.
func ParseGatewaySpec(doc string) (*GatewaySpec, error) {
	spec := &GatewaySpec{}
	seen := map[string]int{}
	routes := map[string]int{}
	for lineNo, line := range strings.Split(doc, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if gwSingleValued[fields[0]] {
			if first, dup := seen[fields[0]]; dup {
				return nil, gwErr(lineNo, fields[0], "duplicate directive (first given on line %d)", first+1)
			}
			seen[fields[0]] = lineNo
		}
		switch fields[0] {
		case "listen":
			if len(fields) != 2 {
				return nil, gwErr(lineNo, "listen", "want: listen <addr>")
			}
			spec.Listen = fields[1]
		case "admin":
			if len(fields) != 2 {
				return nil, gwErr(lineNo, "admin", "want: admin <addr>")
			}
			spec.Admin = fields[1]
		case "default":
			if len(fields) != 2 {
				return nil, gwErr(lineNo, "default", "want: default <route-name>")
			}
			spec.Default = fields[1]
		case "sniff_bytes":
			if len(fields) != 2 {
				return nil, gwErr(lineNo, "sniff_bytes", "want: sniff_bytes <n>")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, gwErr(lineNo, "sniff_bytes", "bad byte count %q", fields[1])
			}
			spec.SniffBytes = n
		case "sniff_timeout":
			if len(fields) != 2 {
				return nil, gwErr(lineNo, "sniff_timeout", "want: sniff_timeout <duration>")
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil || d <= 0 {
				return nil, gwErr(lineNo, "sniff_timeout", "bad timeout %q", fields[1])
			}
			spec.SniffTimeout = d
		case "route":
			rs, err := parseGatewayRoute(lineNo, fields)
			if err != nil {
				return nil, err
			}
			if first, dup := routes[rs.Name]; dup {
				return nil, gwErr(lineNo, "route", "duplicate route %q (first declared on line %d)", rs.Name, first+1)
			}
			routes[rs.Name] = lineNo
			spec.Routes = append(spec.Routes, rs)
		default:
			return nil, &SpecError{Line: lineNo + 1, Directive: fields[0],
				Msg: "unknown directive", sentinels: []error{ErrGateway, ErrSpec}}
		}
	}
	if len(spec.Routes) == 0 {
		return nil, &SpecError{Msg: "no routes declared (directive \"route\" missing)",
			sentinels: []error{ErrGateway, ErrSpec}}
	}
	if spec.Default != "" {
		if _, ok := routes[spec.Default]; !ok {
			return nil, &SpecError{Directive: "default",
				Msg:       fmt.Sprintf("default route %q not declared", spec.Default),
				sentinels: []error{ErrGateway, ErrSpec}}
		}
	}
	return spec, nil
}

func parseGatewayRoute(lineNo int, fields []string) (GatewayRouteSpec, error) {
	if len(fields) < 3 {
		return GatewayRouteSpec{}, gwErr(lineNo, "route", "want: route <name> <mediator-spec> [options]")
	}
	rs := GatewayRouteSpec{Name: fields[1], Mediator: fields[2]}
	for _, kv := range fields[3:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return GatewayRouteSpec{}, gwErr(lineNo, "route", "bad option %q", kv)
		}
		switch k {
		case "match":
			if _, err := parseWireClass(v); err != nil {
				return GatewayRouteSpec{}, gwErr(lineNo, "route", "bad match %q (want giop|http|xml|json)", v)
			}
			rs.Match = v
		case "path":
			rs.PathPrefix = v
		case "payload":
			if v != "xml" && v != "json" {
				return GatewayRouteSpec{}, gwErr(lineNo, "route", "bad payload %q (want xml|json)", v)
			}
			rs.Payload = v
		case "rate":
			r, err := strconv.ParseFloat(v, 64)
			if err != nil || r <= 0 {
				return GatewayRouteSpec{}, gwErr(lineNo, "route", "bad rate %q", v)
			}
			rs.Rate = r
		case "burst":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return GatewayRouteSpec{}, gwErr(lineNo, "route", "bad burst %q", v)
			}
			rs.Burst = n
		case "maxflows":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return GatewayRouteSpec{}, gwErr(lineNo, "route", "bad maxflows %q", v)
			}
			rs.MaxFlows = n
		case "deadline":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return GatewayRouteSpec{}, gwErr(lineNo, "route", "bad deadline %q", v)
			}
			rs.Deadline = d
		default:
			return GatewayRouteSpec{}, gwErr(lineNo, "route", "unknown option %q", k)
		}
	}
	return rs, nil
}

func parseWireClass(s string) (gateway.WireClass, error) {
	switch s {
	case "giop":
		return gateway.ClassGIOP, nil
	case "http":
		return gateway.ClassHTTP, nil
	case "xml":
		return gateway.ClassXML, nil
	case "json":
		return gateway.ClassJSON, nil
	default:
		return gateway.ClassUnknown, fmt.Errorf("unknown wire class %q", s)
	}
}

// serverSide finds the client-facing side of a mediator spec: the side
// marked "server", else the side whose color is 0 (the engine default).
func serverSide(spec *MediatorSpec) (*SideSpec, error) {
	for i := range spec.Sides {
		if spec.Sides[i].Server {
			return &spec.Sides[i], nil
		}
	}
	for i := range spec.Sides {
		if spec.Sides[i].Color == 0 {
			return &spec.Sides[i], nil
		}
	}
	return nil, fmt.Errorf("%w: no server side", ErrGateway)
}

// wireShape maps a server-side protocol to the framer the gateway must
// put on admitted connections and the wire class its clients present.
func wireShape(protocol string) (network.Framer, gateway.WireClass, error) {
	switch protocol {
	case "giop":
		return network.GIOPFramer{}, gateway.ClassGIOP, nil
	case "xmlrpc", "soap", "rest", "jsonrpc":
		return network.HTTPFramer{}, gateway.ClassHTTP, nil
	default:
		// ssdp/slp ride UDP multicast — not front-door material.
		return nil, gateway.ClassUnknown, fmt.Errorf("%w: protocol %q cannot be gateway-hosted", ErrGateway, protocol)
	}
}

// buildRoute assembles one route: a detached mediator (pool started,
// no listener — the gateway feeds it connections) plus the matcher,
// framer and admission policy the gateway needs.
func (m *Models) buildRoute(rs GatewayRouteSpec) (gateway.RouteConfig, *engine.Mediator, error) {
	spec, ok := m.Mediators[rs.Mediator]
	if !ok {
		return gateway.RouteConfig{}, nil, fmt.Errorf("%w: route %q: mediator spec %q not loaded", ErrGateway, rs.Name, rs.Mediator)
	}
	side, err := serverSide(spec)
	if err != nil {
		return gateway.RouteConfig{}, nil, fmt.Errorf("route %q: mediator %q: %w", rs.Name, rs.Mediator, err)
	}
	framer, class, err := wireShape(side.Protocol)
	if err != nil {
		return gateway.RouteConfig{}, nil, fmt.Errorf("route %q: %w", rs.Name, err)
	}
	match := gateway.Matcher{Class: class}
	if rs.Match != "" {
		match.Class, _ = parseWireClass(rs.Match)
	}
	if match.Class == gateway.ClassHTTP {
		match.PathPrefix = rs.PathPrefix
		if match.PathPrefix == "" {
			match.PathPrefix = side.Path
		}
		switch rs.Payload {
		case "xml":
			match.Payload = gateway.ClassXML
		case "json":
			match.Payload = gateway.ClassJSON
		}
	}
	cfg, err := m.buildConfig(spec)
	if err != nil {
		return gateway.RouteConfig{}, nil, fmt.Errorf("route %q: %w", rs.Name, err)
	}
	if rs.Deadline > 0 {
		// Per-route deadline: the gateway operator's budget beats the
		// mediator spec's own flow_deadline for flows admitted here.
		cfg.FlowDeadline = rs.Deadline
	}
	med, err := engine.New(cfg)
	if err != nil {
		closeDiscovery(cfg.Discovery)
		return gateway.RouteConfig{}, nil, fmt.Errorf("route %q: %w", rs.Name, err)
	}
	if err := med.StartDetached(); err != nil {
		med.Close()
		return gateway.RouteConfig{}, nil, fmt.Errorf("route %q: %w", rs.Name, err)
	}
	return gateway.RouteConfig{
		Name:  rs.Name,
		Match: match,
		Admission: gateway.AdmissionPolicy{
			Rate:     rs.Rate,
			Burst:    rs.Burst,
			MaxFlows: rs.MaxFlows,
		},
		Framer: framer,
		Target: med,
	}, med, nil
}

// GatewayDeployment is a running gateway together with the mediators
// it hosts and its optional metrics endpoint.
type GatewayDeployment struct {
	// Gateway is the running front door.
	Gateway *gateway.Gateway
	// Registry exposes the gateway's metrics; nil without an admin
	// address.
	Registry *observe.Registry
	// Admin is the metrics endpoint; nil when not configured.
	Admin *observe.Admin

	spec *GatewaySpec
	// matchers pins each route's deploy-time wire shape so a reload
	// cannot silently repoint a route at a mediator speaking a
	// different framing.
	matchers map[string]gateway.Matcher

	mu        sync.Mutex
	mediators map[string]*engine.Mediator
	closeOnce sync.Once
	closeErr  error
}

// Addr returns the gateway's front-door address.
func (d *GatewayDeployment) Addr() string { return d.Gateway.Addr() }

// Snapshot captures the front-door counters plus one engine snapshot
// per hosted mediator, keyed by route name.
func (d *GatewayDeployment) Snapshot() DeploySnapshot {
	gs := d.Gateway.Stats()
	snap := DeploySnapshot{
		Kind:      "gateway",
		Mediators: make(map[string]engine.Snapshot),
		Gateway:   &gs,
	}
	d.mu.Lock()
	meds := make(map[string]*engine.Mediator, len(d.mediators))
	for name, med := range d.mediators {
		meds[name] = med
	}
	d.mu.Unlock()
	for name, med := range meds {
		snap.Mediators[name] = med.Snapshot()
	}
	return snap
}

// DeployGateway builds and starts the named gateway spec: every
// route's mediator is built from the loaded models and started
// detached, the front door binds the spec's listen address
// (listenOverride wins when non-empty), and when an admin address is
// configured (spec or adminOverride) a metrics endpoint serves the
// gateway's per-route counters.
func (m *Models) DeployGateway(name, listenOverride, adminOverride string) (*GatewayDeployment, error) {
	spec, ok := m.Gateways[name]
	if !ok {
		return nil, fmt.Errorf("%w: gateway spec %q not loaded", ErrGateway, name)
	}
	var (
		routes    []gateway.RouteConfig
		mediators = make(map[string]*engine.Mediator, len(spec.Routes))
	)
	fail := func(err error) (*GatewayDeployment, error) {
		for _, med := range mediators {
			med.Close()
		}
		return nil, err
	}
	for _, rs := range spec.Routes {
		rc, med, err := m.buildRoute(rs)
		if err != nil {
			return fail(err)
		}
		routes = append(routes, rc)
		mediators[rs.Name] = med
	}
	gw, err := gateway.New(gateway.Config{
		Routes:       routes,
		Default:      spec.Default,
		SniffBytes:   spec.SniffBytes,
		SniffTimeout: spec.SniffTimeout,
	})
	if err != nil {
		return fail(err)
	}
	listen := spec.Listen
	if listenOverride != "" {
		listen = listenOverride
	}
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	if err := gw.Start(listen); err != nil {
		return fail(err)
	}
	d := &GatewayDeployment{
		Gateway:   gw,
		spec:      spec,
		matchers:  make(map[string]gateway.Matcher, len(routes)),
		mediators: mediators,
	}
	for _, rc := range routes {
		d.matchers[rc.Name] = rc.Match
	}
	adminAddr := spec.Admin
	if adminOverride != "" {
		adminAddr = adminOverride
	}
	if adminAddr != "" {
		d.Registry = observe.GatewayRegistry(gw)
		admin, err := observe.ServeAdmin(adminAddr, observe.AdminConfig{Registry: d.Registry})
		if err != nil {
			gw.Close()
			return fail(fmt.Errorf("core: gateway admin endpoint: %w", err))
		}
		d.Admin = admin
	}
	return d, nil
}

// Reload hot-swaps every route onto mediators rebuilt from models
// (typically a fresh LoadModels of the same directory). The swap is
// all-or-nothing per reload: each new mediator is built and started
// detached first, and any failure aborts before a single route is
// repointed. Old mediators drain via Shutdown bounded by ctx — flows
// in flight when the swap lands finish on the mediator that admitted
// them, so a mid-soak reload loses nothing.
func (d *GatewayDeployment) Reload(ctx context.Context, models *Models) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	fresh := make(map[string]*engine.Mediator, len(d.spec.Routes))
	fail := func(err error) error {
		for _, med := range fresh {
			med.Close()
		}
		return err
	}
	for _, rs := range d.spec.Routes {
		rc, med, err := models.buildRoute(rs)
		if err != nil {
			return fail(fmt.Errorf("core: gateway reload: %w", err))
		}
		if rc.Match != d.matchers[rs.Name] {
			med.Close()
			return fail(fmt.Errorf("%w: reload: route %q changed wire shape; redeploy the gateway", ErrGateway, rs.Name))
		}
		// Carry live backend health across the swap: a replica the old
		// mediator ejected stays ejected (with its cooloff clock intact)
		// instead of taking fresh traffic the moment the reload lands.
		// Discovery counters ride along the same way, so /metrics rates
		// stay continuous across the reload.
		med.AdoptBackendHealth(d.mediators[rs.Name])
		med.AdoptDiscovery(d.mediators[rs.Name])
		fresh[rs.Name] = med
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		drainErr error
	)
	for name, med := range fresh {
		old, err := d.Gateway.Swap(name, med)
		if err != nil {
			// Unreachable once deployed (routes are fixed), but do not
			// leak the built mediator if it ever happens.
			med.Close()
			return fmt.Errorf("core: gateway reload: %w", err)
		}
		d.mediators[name] = med
		if oldMed, ok := old.(*engine.Mediator); ok {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := oldMed.Shutdown(ctx); err != nil {
					errMu.Lock()
					if drainErr == nil {
						drainErr = err
					}
					errMu.Unlock()
				}
			}()
		}
	}
	wg.Wait()
	return drainErr
}

// Shutdown gracefully stops the deployment: the front door stops
// accepting, every hosted mediator drains its in-flight flows (bounded
// by ctx), and the admin endpoint closes. A later Close is a no-op.
func (d *GatewayDeployment) Shutdown(ctx context.Context) error {
	var firstErr error
	if err := d.Gateway.Shutdown(ctx); err != nil {
		firstErr = err
	}
	d.mu.Lock()
	meds := make([]*engine.Mediator, 0, len(d.mediators))
	for _, med := range d.mediators {
		meds = append(meds, med)
	}
	d.mu.Unlock()
	var wg sync.WaitGroup
	var errMu sync.Mutex
	for _, med := range meds {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := med.Shutdown(ctx); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}()
	}
	wg.Wait()
	d.closeOnce.Do(func() {
		if d.Admin != nil {
			d.closeErr = d.Admin.Close()
		}
	})
	if firstErr != nil {
		return firstErr
	}
	return d.closeErr
}

// Close abruptly stops the gateway, every hosted mediator and the
// admin endpoint. Idempotent, and a no-op after Shutdown.
func (d *GatewayDeployment) Close() error {
	d.closeOnce.Do(func() {
		d.closeErr = d.Gateway.Close()
		d.mu.Lock()
		meds := make([]*engine.Mediator, 0, len(d.mediators))
		for _, med := range d.mediators {
			meds = append(meds, med)
		}
		d.mu.Unlock()
		for _, med := range meds {
			if err := med.Close(); err != nil && d.closeErr == nil {
				d.closeErr = err
			}
		}
		if d.Admin != nil {
			if err := d.Admin.Close(); err != nil && d.closeErr == nil {
				d.closeErr = err
			}
		}
	})
	return d.closeErr
}
