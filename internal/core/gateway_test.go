package core_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"starlink/internal/automata"
	"starlink/internal/casestudy"
	"starlink/internal/core"
	"starlink/internal/protocol/httpwire"
	"starlink/internal/protocol/soap"
	"starlink/internal/protocol/xmlrpc"
	"starlink/internal/services/photostore"
	"starlink/internal/services/picasa"
)

func TestParseGatewaySpec(t *testing.T) {
	spec, err := core.ParseGatewaySpec(`
# front door
listen 127.0.0.1:9000
admin 127.0.0.1:9090
sniff_bytes 128
sniff_timeout 250ms
route xmlrpc flickr-xmlrpc path=/services/xmlrpc payload=xml rate=100 burst=10 maxflows=32 deadline=750ms
route soap flickr-soap match=http path=/services/soap
route iiop add-giop match=giop
default soap
`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Listen != "127.0.0.1:9000" || spec.Admin != "127.0.0.1:9090" || spec.Default != "soap" {
		t.Errorf("spec = %+v", spec)
	}
	if spec.SniffBytes != 128 || spec.SniffTimeout != 250*time.Millisecond {
		t.Errorf("sniff knobs = %d %v", spec.SniffBytes, spec.SniffTimeout)
	}
	if len(spec.Routes) != 3 {
		t.Fatalf("routes = %d", len(spec.Routes))
	}
	r := spec.Routes[0]
	if r.Name != "xmlrpc" || r.Mediator != "flickr-xmlrpc" || r.PathPrefix != "/services/xmlrpc" ||
		r.Payload != "xml" || r.Rate != 100 || r.Burst != 10 || r.MaxFlows != 32 ||
		r.Deadline != 750*time.Millisecond {
		t.Errorf("route[0] = %+v", r)
	}
	if spec.Routes[2].Match != "giop" {
		t.Errorf("route[2] = %+v", spec.Routes[2])
	}
}

func TestParseGatewaySpecErrors(t *testing.T) {
	cases := map[string]string{
		"no routes":          "listen 127.0.0.1:9000\n",
		"unknown directive":  "zap\n",
		"bad listen arity":   "listen\nroute a b\n",
		"dup listen":         "listen :1\nlisten :2\nroute a b\n",
		"dup admin":          "admin :1\nadmin :2\nroute a b\n",
		"dup default":        "route a b\ndefault a\ndefault a\n",
		"dup sniff_bytes":    "sniff_bytes 8\nsniff_bytes 9\nroute a b\n",
		"dup route name":     "route a b\nroute a c\n",
		"route arity":        "route a\n",
		"bad match":          "route a b match=ftp\n",
		"bad payload":        "route a b payload=yaml\n",
		"bad rate":           "route a b rate=-1\n",
		"bad burst":          "route a b burst=zero\n",
		"bad maxflows":       "route a b maxflows=0\n",
		"bad deadline":       "route a b deadline=whenever\n",
		"zero deadline":      "route a b deadline=0s\n",
		"bad route option":   "route a b color=7\n",
		"bad sniff timeout":  "sniff_timeout soon\nroute a b\n",
		"undeclared default": "route a b\ndefault c\n",
	}
	for name, doc := range cases {
		if _, err := core.ParseGatewaySpec(doc); !errors.Is(err, core.ErrGateway) {
			t.Errorf("%s: err = %v, want ErrGateway", name, err)
		}
	}
	// Duplicate-directive errors must name both lines.
	_, err := core.ParseGatewaySpec("listen :1\nroute a b\nlisten :2\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("duplicate listen err = %v, want both lines named", err)
	}
}

// TestParseMediatorSpecDuplicateDirectives is the regression test for
// the silent-last-wins bug: a spec repeating a single-valued directive
// used to keep only the later value, hiding typos; it must now be
// rejected with an error naming both lines.
func TestParseMediatorSpecDuplicateDirectives(t *testing.T) {
	base := "merged M\nside 1 soap path=/x server\n"
	for _, dup := range []string{
		"listen :1\nlisten :2\n",
		"merged Again\n",
		"typemap a\ntypemap b\n",
		"retries 1\nretries 2\n",
		"backoff 1ms\nbackoff 2ms\n",
		"max_backoff 1s\nmax_backoff 2s\n",
		"flow_deadline 1s\nflow_deadline off\n",
		"dialtimeout 1s\ndialtimeout 2s\n",
		"pool_size 1\npool_size 2\n",
		"pool_idle 1s\npool_idle off\n",
		"admin :1\nadmin :2\n",
	} {
		doc := base + dup
		_, err := core.ParseMediatorSpec(doc)
		if !errors.Is(err, core.ErrSpec) {
			t.Errorf("%q: err = %v, want ErrSpec", dup, err)
			continue
		}
		if !strings.Contains(err.Error(), "duplicate directive") {
			t.Errorf("%q: err = %v, want a duplicate-directive message", dup, err)
		}
	}
	// The error names the directive and both lines.
	_, err := core.ParseMediatorSpec("merged M\nlisten :1\nside 1 soap server\nlisten :2\n")
	for _, want := range []string{`"listen"`, "line 4", "line 2"} {
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("err = %v, want it to mention %s", err, want)
		}
	}
	// Repeating multi-valued directives stays legal.
	spec, err := core.ParseMediatorSpec("merged M\nside 1 soap path=/x server\nside 2 rest routes=r target=:1\nhostmap a = :1\nhostmap b = :2\n")
	if err != nil {
		t.Fatalf("multi-valued repeats rejected: %v", err)
	}
	if len(spec.Sides) != 2 || len(spec.HostMap) != 2 {
		t.Errorf("spec = %+v", spec)
	}
}

// TestDeploymentCloseIdempotent is the regression test for Deployment
// teardown: Close twice, and Close after Shutdown, used to re-close
// the admin listener and surface a spurious "server closed" error.
func TestDeploymentCloseIdempotent(t *testing.T) {
	store := photostore.New()
	pic, err := picasa.New(store)
	if err != nil {
		t.Fatal(err)
	}
	defer pic.Close()

	dir := writeCaseStudyModels(t)
	patchSpec(t, filepath.Join(dir, "flickr-xmlrpc.mediator"), "127.0.0.1:9002", pic.Addr())
	m, err := core.LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}

	dep, err := m.Deploy("flickr-xmlrpc", "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Close(); err != nil {
		t.Errorf("first Close: %v", err)
	}
	if err := dep.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}

	dep2, err := m.Deploy("flickr-xmlrpc", "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := dep2.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if err := dep2.Close(); err != nil {
		t.Errorf("Close after Shutdown: %v", err)
	}
}

func patchSpec(t *testing.T, path, old, new string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(strings.ReplaceAll(string(data), old, new)), 0o644); err != nil {
		t.Fatal(err)
	}
}

// writeGatewayModels materialises a two-route gateway model set (the
// XML-RPC and SOAP case-study mediators behind one front door) with
// service addresses patched to the live Picasa replica.
func writeGatewayModels(t *testing.T, picasaAddr string) string {
	t.Helper()
	dir := writeCaseStudyModels(t)
	write := func(name string, data []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	encM := func(m *automata.Merged) []byte {
		t.Helper()
		data, err := m.EncodeXML()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	write("flickr-soap-to-picasa-rest.merged.xml", encM(casestudy.SOAPMediator()))
	write("flickr-soap.mediator", []byte(casestudy.SOAPMediatorSpecDoc))
	write("flickr.gateway", []byte(casestudy.GatewaySpecDoc))
	patchSpec(t, filepath.Join(dir, "flickr-xmlrpc.mediator"), "127.0.0.1:9002", picasaAddr)
	patchSpec(t, filepath.Join(dir, "flickr-soap.mediator"), "127.0.0.1:9002", picasaAddr)
	return dir
}

// TestDeployGatewayEndToEnd deploys the case-study gateway from disk
// models: an XML-RPC and a SOAP client reach their own mediators
// through ONE listener, distinguished by sniffing alone; the metrics
// endpoint exposes per-route counters; a hot reload swaps both
// mediators without breaking the next call.
func TestDeployGatewayEndToEnd(t *testing.T) {
	store := photostore.New()
	pic, err := picasa.New(store)
	if err != nil {
		t.Fatal(err)
	}
	defer pic.Close()

	dir := writeGatewayModels(t, pic.Addr())
	m, err := core.LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Gateways["flickr"] == nil {
		t.Fatal("gateway spec not loaded from *.gateway file")
	}

	dep, err := m.DeployGateway("flickr", "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	addr := dep.Gateway.Addr()

	callXMLRPC := func() {
		t.Helper()
		c := xmlrpc.NewClient(addr, "/services/xmlrpc")
		defer c.Close()
		v, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
			"text": "tree", "per_page": int64(1),
		})
		if err != nil {
			t.Fatalf("xmlrpc through gateway: %v", err)
		}
		if photos := v.(map[string]xmlrpc.Value)["photos"].([]xmlrpc.Value); len(photos) != 1 {
			t.Errorf("xmlrpc photos = %d", len(photos))
		}
	}
	callSOAP := func() {
		t.Helper()
		c := soap.NewClient(addr, "/services/soap")
		defer c.Close()
		results, err := c.Call(casestudy.FlickrSearch,
			soap.Param{Name: "api_key", Value: "k"},
			soap.Param{Name: "text", Value: "tree"},
			soap.Param{Name: "per_page", Value: "1"},
		)
		if err != nil {
			t.Fatalf("soap through gateway: %v", err)
		}
		if len(results) == 0 {
			t.Error("soap call returned nothing")
		}
	}
	callXMLRPC()
	callSOAP()

	hc := &httpwire.Client{Addr: dep.Admin.Addr()}
	defer hc.Close()
	resp, err := hc.Get("/metrics")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`starlink_gateway_accepted_total{route="soap"} 1`,
		`starlink_gateway_accepted_total{route="xmlrpc"} 1`,
		`starlink_gateway_sniffed_total{class="http"} 2`,
		`starlink_gateway_reloads_total{route="soap"} 0`,
	} {
		if !strings.Contains(string(resp.Body), want) {
			t.Errorf("metrics missing %q:\n%s", want, resp.Body)
		}
	}

	// Hot reload from freshly loaded models: both routes swap, and the
	// very next calls succeed on the new mediators.
	fresh, err := core.LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := dep.Reload(ctx, fresh); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	callXMLRPC()
	callSOAP()
	resp, err = hc.Get("/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp.Body), `starlink_gateway_reloads_total{route="xmlrpc"} 1`) {
		t.Errorf("reload counter missing:\n%s", resp.Body)
	}

	if err := dep.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := dep.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}

	if _, err := m.DeployGateway("missing", "", ""); !errors.Is(err, core.ErrGateway) {
		t.Errorf("missing gateway err = %v", err)
	}
}

// TestDeployGatewayBuildFailure: a route naming an unknown mediator
// must fail the whole deployment without leaking mediators.
func TestDeployGatewayBuildFailure(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "broken.gateway"),
		[]byte("route a no-such-mediator\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := core.LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.DeployGateway("broken", "", ""); !errors.Is(err, core.ErrGateway) {
		t.Errorf("err = %v, want ErrGateway", err)
	}
}
