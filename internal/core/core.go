// Package core assembles Starlink mediators from model files: it loads
// the DSL artifacts (k-colored automata XML, merged automata XML, MDL
// documents, REST route tables, equivalence tables, mediator deployment
// specs) from a models directory and wires binders, engine and network
// together. The public starlink package is a thin facade over this.
package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"starlink/internal/automata"
	"starlink/internal/backend"
	"starlink/internal/bind"
	"starlink/internal/discovery"
	"starlink/internal/engine"
	"starlink/internal/gateway"
	"starlink/internal/mdl"
	"starlink/internal/mdl/binenc"
	"starlink/internal/mdl/textenc"
	"starlink/internal/mdl/xmlenc"
	"starlink/internal/mtl"
	"starlink/internal/network"
	"starlink/internal/observe"
)

// Errors reported by the core layer.
var (
	// ErrModel is wrapped by model loading/validation failures.
	ErrModel = errors.New("core: invalid model")
	// ErrSpec is wrapped by mediator spec failures.
	ErrSpec = errors.New("core: invalid mediator spec")
)

// Models is the set of artifacts loaded from a models directory:
//
//	*.automaton.xml  k-colored API usage / protocol automata
//	*.merged.xml     concrete merged automata
//	*.mdl            message description documents
//	*.routes         REST binding route tables
//	*.equiv          semantic-equivalence tables ("a = b" per line)
//	*.typemap        vocabulary maps ("from = to" per line), exposed to MTL
//	                 as the maptype() function
//	*.mediator       mediator deployment specs
type Models struct {
	// Automata by automaton name.
	Automata map[string]*automata.Automaton
	// Merged automata by name.
	Merged map[string]*automata.Merged
	// MDL specs by spec name.
	MDL map[string]*mdl.Spec
	// Routes tables by file base name.
	Routes map[string][]bind.Route
	// Equivalences by file base name.
	Equivalences map[string]*automata.Equivalence
	// TypeMaps holds vocabulary maps by file base name.
	TypeMaps map[string]map[string]string
	// Mediators holds deployment specs by file base name.
	Mediators map[string]*MediatorSpec
	// Gateways holds gateway deployment specs by file base name.
	Gateways map[string]*GatewaySpec
	// Registry resolves MDL encodings; all built-in engines registered.
	Registry *mdl.Registry
}

// NewModels returns an empty model set with the built-in MDL engines.
func NewModels() *Models {
	reg := &mdl.Registry{}
	binenc.Register(reg)
	textenc.Register(reg)
	xmlenc.Register(reg)
	return &Models{
		Automata:     make(map[string]*automata.Automaton),
		Merged:       make(map[string]*automata.Merged),
		MDL:          make(map[string]*mdl.Spec),
		Routes:       make(map[string][]bind.Route),
		Equivalences: make(map[string]*automata.Equivalence),
		TypeMaps:     make(map[string]map[string]string),
		Mediators:    make(map[string]*MediatorSpec),
		Gateways:     make(map[string]*GatewaySpec),
		Registry:     reg,
	}
}

// LoadModels reads every model artifact under dir (non-recursive).
func LoadModels(dir string) (*Models, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("core: read models dir: %w", err)
	}
	m := NewModels()
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name())
		if err := m.LoadFile(path); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// LoadFile loads one model artifact, dispatching on its extension.
func (m *Models) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("core: read %s: %w", path, err)
	}
	name := filepath.Base(path)
	switch {
	case strings.HasSuffix(name, ".automaton.xml"):
		a, err := automata.ParseAutomaton(string(data))
		if err != nil {
			return fmt.Errorf("%w: %s: %v", ErrModel, name, err)
		}
		m.Automata[a.Name] = a
	case strings.HasSuffix(name, ".merged.xml"):
		mg, err := automata.UnmarshalMerged(strings.NewReader(string(data)))
		if err != nil {
			return fmt.Errorf("%w: %s: %v", ErrModel, name, err)
		}
		m.Merged[mg.Name] = mg
	case strings.HasSuffix(name, ".mdl"):
		spec, err := mdl.ParseString(string(data))
		if err != nil {
			return fmt.Errorf("%w: %s: %v", ErrModel, name, err)
		}
		m.MDL[spec.Name] = spec
	case strings.HasSuffix(name, ".routes"):
		routes, err := bind.ParseRoutes(string(data))
		if err != nil {
			return fmt.Errorf("%w: %s: %v", ErrModel, name, err)
		}
		m.Routes[trimExt(name, ".routes")] = routes
	case strings.HasSuffix(name, ".equiv"):
		eq, err := ParseEquivalence(string(data))
		if err != nil {
			return fmt.Errorf("%w: %s: %v", ErrModel, name, err)
		}
		m.Equivalences[trimExt(name, ".equiv")] = eq
	case strings.HasSuffix(name, ".typemap"):
		tm, err := ParseTypeMap(string(data))
		if err != nil {
			return fmt.Errorf("%w: %s: %v", ErrModel, name, err)
		}
		m.TypeMaps[trimExt(name, ".typemap")] = tm
	case strings.HasSuffix(name, ".mediator"):
		spec, err := ParseMediatorSpec(string(data))
		if err != nil {
			return fmt.Errorf("%w: %s: %v", ErrModel, name, err)
		}
		m.Mediators[trimExt(name, ".mediator")] = spec
	case strings.HasSuffix(name, ".gateway"):
		spec, err := ParseGatewaySpec(string(data))
		if err != nil {
			return fmt.Errorf("%w: %s: %v", ErrModel, name, err)
		}
		m.Gateways[trimExt(name, ".gateway")] = spec
	default:
		// Unknown artifacts (e.g. README) are ignored.
	}
	return nil
}

func trimExt(name, ext string) string { return strings.TrimSuffix(name, ext) }

// ParseEquivalence reads an equivalence table: one "label = label" pair
// per line, # comments allowed.
func ParseEquivalence(doc string) (*automata.Equivalence, error) {
	eq := automata.NewEquivalence()
	count := 0
	for lineNo, line := range strings.Split(doc, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		a, b, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("line %d: want \"label = label\"", lineNo+1)
		}
		eq.Add(strings.TrimSpace(a), strings.TrimSpace(b))
		count++
	}
	if count == 0 {
		return nil, errors.New("empty equivalence table")
	}
	return eq, nil
}

// ParseTypeMap reads a vocabulary map: one "from = to" pair per line,
// # comments allowed.
func ParseTypeMap(doc string) (map[string]string, error) {
	out := map[string]string{}
	for lineNo, line := range strings.Split(doc, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		from, to, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("line %d: want \"from = to\"", lineNo+1)
		}
		out[strings.TrimSpace(from)] = strings.TrimSpace(to)
	}
	if len(out) == 0 {
		return nil, errors.New("empty vocabulary map")
	}
	return out, nil
}

// SideSpec configures one color of a mediator deployment.
type SideSpec struct {
	// Color is the automaton color this side serves.
	Color int
	// Protocol selects the binder: xmlrpc | jsonrpc | soap | rest | giop | ssdp | slp.
	Protocol string
	// Path is the HTTP endpoint path (xmlrpc/soap).
	Path string
	// ObjectKey targets the GIOP object (giop).
	ObjectKey string
	// Routes names the route table (rest).
	Routes string
	// Defs names the automaton whose MsgDefs provide positional parameter
	// names (xmlrpc/giop).
	Defs string
	// Target is the service address for client-role sides.
	Target string
	// Server marks the client-facing color.
	Server bool
	// Transport is "tcp" (default) or "udp".
	Transport string
}

// BackendSpec is one named service replica set (the `backend`
// directive) together with the tuning the balance/probe/eject
// directives applied to it. A client-role side's target= (or a hostmap
// resolution) naming a backend is load-balanced across its replicas
// instead of dialled literally.
type BackendSpec struct {
	// Name is the logical service name sides and hostmaps reference.
	Name string
	// Addrs are the replica addresses traffic balances over.
	Addrs []string
	// Policy is the balancing policy: "roundrobin" (default) or "p2c".
	Policy string
	// ProbeInterval enables active health probing when positive;
	// ProbeTimeout bounds each probe (0 = backend default).
	ProbeInterval, ProbeTimeout time.Duration
	// FailThreshold, Cooloff, MaxCooloff and MinLive tune passive
	// outlier ejection (zero values = backend package defaults).
	FailThreshold       int
	Cooloff, MaxCooloff time.Duration
	MinLive             int
}

// DiscoverSpec is one `discover` directive: a discovery source driving
// a backend set's membership at runtime.
//
//	discover <backend> via=slp agent=<addr> type=<service-type> [scope=<scope>]
//	discover <backend> via=ssdp search=<addr> st=<target> [listen=<addr>] [mx=<seconds>]
//	discover <backend> via=dns name=<host:port | _svc._proto.domain>
//	discover <backend> via=file path=<hosts-file>
//
// every form also takes [refresh=<duration>] [debounce=<duration>]
// [min_ttl=<duration>] [max_churn=<n>].
type DiscoverSpec struct {
	// Backend names the replica set this source drives.
	Backend string
	// Via selects the source kind: "slp", "ssdp", "dns" or "file".
	Via string
	// Agent, Type and Scope configure via=slp (the Directory Agent
	// address, service type, and optional scope).
	Agent, Type, Scope string
	// Search, ST, Listen and MX configure via=ssdp (the M-SEARCH
	// address, search target, optional NOTIFY listen address, and
	// response window in seconds).
	Search, ST, Listen string
	MX                 int
	// Name configures via=dns: "host:port" (A/AAAA) or a full
	// "_svc._proto.domain" SRV name.
	Name string
	// Path configures via=file: the watched hosts file.
	Path string
	// Refresh, Debounce, MinTTL and MaxChurn tune the reconciler (zero
	// values = discovery package defaults).
	Refresh, Debounce, MinTTL time.Duration
	MaxChurn                  int
}

// MediatorSpec is a parsed deployment spec:
//
//	merged <name>
//	listen <addr>
//	side <color> <protocol> [key=value ...] [server] [udp]
//	hostmap <logical-host> = <addr>
//	backend <name> <addr> [addr ...]
//	balance <backend> roundrobin|p2c
//	probe <backend> <interval> [timeout=<duration>]
//	eject <backend> [fails=<n>] [cooloff=<duration>] [max_cooloff=<duration>] [min_live=<n>]
//	discover <backend> via=slp|ssdp|dns|file [source options] [refresh=] [debounce=] [min_ttl=] [max_churn=]
//	typemap <name>
//	retries <n>
//	backoff <duration>
//	max_backoff <duration>
//	flow_deadline <duration>|off
//	dialtimeout <duration>
//	pool_size <n>
//	pool_idle <duration>|off
//	admin <addr>
//	cacheable <operation> ttl=<duration> [vary=<path,...>]
//	invalidates <operation> <cached-op,...>
//	cache_size <n>
//	cache_shards <n>
type MediatorSpec struct {
	// MergedName names the merged automaton to execute.
	MergedName string
	// Listen is the client-facing address.
	Listen string
	// Sides configures each color.
	Sides []SideSpec
	// HostMap resolves sethost logical hosts.
	HostMap map[string]string
	// Backends are the named service replica sets (`backend` directives)
	// with their balance/probe/eject tuning, in declaration order.
	Backends []BackendSpec
	// Discover are the discovery sources (`discover` directives) that
	// drive backend membership at runtime, in declaration order.
	Discover []DiscoverSpec
	// TypeMap names a loaded vocabulary map exposed as maptype().
	TypeMap string
	// Retries overrides the engine's service-retry count when non-nil
	// (0 disables retries).
	Retries *int
	// Backoff overrides the engine's retry backoff when non-zero.
	Backoff time.Duration
	// MaxBackoff overrides the engine's retry backoff cap when
	// non-zero (`max_backoff`).
	MaxBackoff time.Duration
	// FlowDeadline overrides the engine's per-flow deadline budget:
	// positive is a budget, negative ("flow_deadline off") disables
	// budgets, zero leaves the engine default (2 × ExchangeTimeout).
	FlowDeadline time.Duration
	// DialTimeout overrides the engine's service dial timeout when
	// non-zero.
	DialTimeout time.Duration
	// PoolSize overrides the engine's per-(color, address) service pool
	// bound when non-zero.
	PoolSize int
	// PoolIdle overrides how long pooled service connections stay warm:
	// positive is a timeout, negative ("pool_idle off") disables idle
	// keep-alive, zero leaves the engine default.
	PoolIdle time.Duration
	// Admin, when non-empty, is the address the deployment's admin
	// endpoint (/metrics, /healthz, /flows, /automaton.dot) binds to.
	Admin string
	// Cacheable maps service operations declared `cacheable` to their
	// TTL and key-varying field paths.
	Cacheable map[string]engine.CacheRule
	// Invalidates maps write operations to the cacheable operations
	// whose entries they flush (`invalidates` directives).
	Invalidates map[string][]string
	// CacheSize bounds the response cache's stored replies when
	// non-zero (`cache_size`).
	CacheSize int
	// CacheShards sets the response cache's shard count when non-zero
	// (`cache_shards`).
	CacheShards int
}

// specErr reports a mediator-spec problem as a typed *SpecError,
// always naming the line and the directive it occurred in so
// multi-directive specs stay debuggable.
func specErr(lineNo int, directive, format string, args ...any) error {
	return newSpecErr(lineNo, directive, format, args...)
}

// singleValued lists the mediator-spec directives that may appear at
// most once: silently keeping the last occurrence (the old behaviour)
// hid typos, so a repeat is now rejected with both lines named.
var singleValued = map[string]bool{
	"merged": true, "listen": true, "typemap": true, "retries": true,
	"backoff": true, "max_backoff": true, "flow_deadline": true,
	"dialtimeout": true, "pool_size": true,
	"pool_idle": true, "admin": true, "cache_size": true,
	"cache_shards": true,
}

// backendTune is one balance/probe/eject directive waiting to be
// applied to its backend: tuning directives may precede the `backend`
// declaration they refer to, so application is deferred to the end of
// the parse (where a dangling reference becomes a SpecError).
type backendTune struct {
	lineNo    int
	directive string
	name      string
	apply     func(*BackendSpec)
}

// ParseMediatorSpec reads a deployment spec document.
func ParseMediatorSpec(doc string) (*MediatorSpec, error) {
	spec := &MediatorSpec{HostMap: map[string]string{}}
	seen := map[string]int{}          // single-valued directive → first line (0-based)
	backendLines := map[string]int{}  // backend name → declaring line (0-based)
	tunedLines := map[string]int{}    // "directive name" → first line (0-based)
	discoverLines := map[string]int{} // backend name → discover line (0-based)
	var tunes []backendTune
	// tune records one balance/probe/eject directive, rejecting a repeat
	// for the same backend with both lines named (the PR 4 duplicate
	// rule, per backend instead of global).
	tune := func(lineNo int, directive, name string, apply func(*BackendSpec)) error {
		key := directive + " " + name
		if first, dup := tunedLines[key]; dup {
			return specErr(lineNo, directive, "duplicate %s for backend %q (first given on line %d)",
				directive, name, first+1)
		}
		tunedLines[key] = lineNo
		tunes = append(tunes, backendTune{lineNo: lineNo, directive: directive, name: name, apply: apply})
		return nil
	}
	for lineNo, line := range strings.Split(doc, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if singleValued[fields[0]] {
			if first, dup := seen[fields[0]]; dup {
				return nil, specErr(lineNo, fields[0], "duplicate directive (first given on line %d)", first+1)
			}
			seen[fields[0]] = lineNo
		}
		switch fields[0] {
		case "merged":
			if len(fields) != 2 {
				return nil, specErr(lineNo, "merged", "want: merged <name>")
			}
			spec.MergedName = fields[1]
		case "listen":
			if len(fields) != 2 {
				return nil, specErr(lineNo, "listen", "want: listen <addr>")
			}
			spec.Listen = fields[1]
		case "side":
			if len(fields) < 3 {
				return nil, specErr(lineNo, "side", "want: side <color> <protocol> ...")
			}
			var side SideSpec
			if _, err := fmt.Sscanf(fields[1], "%d", &side.Color); err != nil {
				return nil, specErr(lineNo, "side", "bad color %q", fields[1])
			}
			side.Protocol = fields[2]
			for _, kv := range fields[3:] {
				if kv == "server" {
					side.Server = true
					continue
				}
				if kv == "udp" {
					side.Transport = "udp"
					continue
				}
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, specErr(lineNo, "side", "bad option %q", kv)
				}
				switch k {
				case "path":
					side.Path = v
				case "objectkey":
					side.ObjectKey = v
				case "routes":
					side.Routes = v
				case "defs":
					side.Defs = v
				case "target":
					side.Target = v
				default:
					return nil, specErr(lineNo, "side", "unknown option %q", k)
				}
			}
			spec.Sides = append(spec.Sides, side)
		case "typemap":
			if len(fields) != 2 {
				return nil, specErr(lineNo, "typemap", "want: typemap <name>")
			}
			spec.TypeMap = fields[1]
		case "retries":
			if len(fields) != 2 {
				return nil, specErr(lineNo, "retries", "want: retries <n>")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, specErr(lineNo, "retries", "bad retry count %q", fields[1])
			}
			spec.Retries = &n
		case "backoff":
			if len(fields) != 2 {
				return nil, specErr(lineNo, "backoff", "want: backoff <duration>")
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil || d < 0 {
				return nil, specErr(lineNo, "backoff", "bad backoff %q", fields[1])
			}
			spec.Backoff = d
		case "max_backoff":
			if len(fields) != 2 {
				return nil, specErr(lineNo, "max_backoff", "want: max_backoff <duration>")
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil || d <= 0 {
				return nil, specErr(lineNo, "max_backoff", "bad backoff cap %q", fields[1])
			}
			spec.MaxBackoff = d
		case "flow_deadline":
			if len(fields) != 2 {
				return nil, specErr(lineNo, "flow_deadline", "want: flow_deadline <duration>|off")
			}
			if fields[1] == "off" {
				spec.FlowDeadline = -1
				break
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil || d <= 0 {
				return nil, specErr(lineNo, "flow_deadline", "bad flow deadline %q (or \"off\")", fields[1])
			}
			spec.FlowDeadline = d
		case "dialtimeout":
			if len(fields) != 2 {
				return nil, specErr(lineNo, "dialtimeout", "want: dialtimeout <duration>")
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil || d <= 0 {
				return nil, specErr(lineNo, "dialtimeout", "bad dial timeout %q", fields[1])
			}
			spec.DialTimeout = d
		case "pool_size":
			if len(fields) != 2 {
				return nil, specErr(lineNo, "pool_size", "want: pool_size <n>")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, specErr(lineNo, "pool_size", "bad pool size %q", fields[1])
			}
			spec.PoolSize = n
		case "pool_idle":
			if len(fields) != 2 {
				return nil, specErr(lineNo, "pool_idle", "want: pool_idle <duration>|off")
			}
			if fields[1] == "off" {
				spec.PoolIdle = -1
				break
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil || d <= 0 {
				return nil, specErr(lineNo, "pool_idle", "bad idle timeout %q (or \"off\")", fields[1])
			}
			spec.PoolIdle = d
		case "admin":
			if len(fields) != 2 {
				return nil, specErr(lineNo, "admin", "want: admin <addr>")
			}
			spec.Admin = fields[1]
		case "hostmap":
			rest := strings.TrimSpace(strings.TrimPrefix(line, "hostmap"))
			host, addr, ok := strings.Cut(rest, "=")
			if !ok {
				return nil, specErr(lineNo, "hostmap", "want: hostmap <host> = <addr>")
			}
			spec.HostMap[strings.TrimSpace(host)] = strings.TrimSpace(addr)
		case "backend":
			if len(fields) == 2 {
				return nil, specErr(lineNo, "backend", "backend %q declares no replica addresses", fields[1])
			}
			if len(fields) < 3 {
				return nil, specErr(lineNo, "backend", "want: backend <name> <addr> [addr ...]")
			}
			name := fields[1]
			if first, dup := backendLines[name]; dup {
				return nil, specErr(lineNo, "backend", "duplicate backend %q (first declared on line %d)", name, first+1)
			}
			backendLines[name] = lineNo
			addrs := append([]string(nil), fields[2:]...)
			dupAddr := map[string]bool{}
			for _, a := range addrs {
				if dupAddr[a] {
					return nil, specErr(lineNo, "backend", "backend %q lists replica %q twice", name, a)
				}
				dupAddr[a] = true
			}
			spec.Backends = append(spec.Backends, BackendSpec{Name: name, Addrs: addrs})
		case "balance":
			if len(fields) != 3 {
				return nil, specErr(lineNo, "balance", "want: balance <backend> roundrobin|p2c")
			}
			policy := fields[2]
			if policy != "roundrobin" && policy != "p2c" {
				return nil, specErr(lineNo, "balance", "unknown policy %q (want roundrobin or p2c)", policy)
			}
			if err := tune(lineNo, "balance", fields[1], func(b *BackendSpec) { b.Policy = policy }); err != nil {
				return nil, err
			}
		case "probe":
			if len(fields) < 3 {
				return nil, specErr(lineNo, "probe", "want: probe <backend> <interval> [timeout=<duration>]")
			}
			interval, err := time.ParseDuration(fields[2])
			if err != nil || interval <= 0 {
				return nil, specErr(lineNo, "probe", "bad probe interval %q", fields[2])
			}
			var timeout time.Duration
			for _, kv := range fields[3:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok || k != "timeout" {
					return nil, specErr(lineNo, "probe", "bad option %q (want timeout=<duration>)", kv)
				}
				d, err := time.ParseDuration(v)
				if err != nil || d <= 0 {
					return nil, specErr(lineNo, "probe", "bad probe timeout %q", v)
				}
				timeout = d
			}
			err = tune(lineNo, "probe", fields[1], func(b *BackendSpec) {
				b.ProbeInterval, b.ProbeTimeout = interval, timeout
			})
			if err != nil {
				return nil, err
			}
		case "eject":
			if len(fields) < 3 {
				return nil, specErr(lineNo, "eject", "want: eject <backend> [fails=<n>] [cooloff=<duration>] [max_cooloff=<duration>] [min_live=<n>]")
			}
			var (
				fails, minLive      int
				cooloff, maxCooloff time.Duration
			)
			for _, kv := range fields[2:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, specErr(lineNo, "eject", "bad option %q", kv)
				}
				switch k {
				case "fails":
					n, err := strconv.Atoi(v)
					if err != nil || n <= 0 {
						return nil, specErr(lineNo, "eject", "bad fails %q", v)
					}
					fails = n
				case "cooloff":
					d, err := time.ParseDuration(v)
					if err != nil || d <= 0 {
						return nil, specErr(lineNo, "eject", "bad cooloff %q", v)
					}
					cooloff = d
				case "max_cooloff":
					d, err := time.ParseDuration(v)
					if err != nil || d <= 0 {
						return nil, specErr(lineNo, "eject", "bad max_cooloff %q", v)
					}
					maxCooloff = d
				case "min_live":
					n, err := strconv.Atoi(v)
					if err != nil || n <= 0 {
						return nil, specErr(lineNo, "eject", "bad min_live %q", v)
					}
					minLive = n
				default:
					return nil, specErr(lineNo, "eject", "unknown option %q", k)
				}
			}
			err := tune(lineNo, "eject", fields[1], func(b *BackendSpec) {
				b.FailThreshold, b.MinLive = fails, minLive
				b.Cooloff, b.MaxCooloff = cooloff, maxCooloff
			})
			if err != nil {
				return nil, err
			}
		case "discover":
			if len(fields) < 3 {
				return nil, specErr(lineNo, "discover", "want: discover <backend> via=slp|ssdp|dns|file [options]")
			}
			ds := DiscoverSpec{Backend: fields[1]}
			if first, dup := discoverLines[ds.Backend]; dup {
				return nil, specErr(lineNo, "discover", "duplicate discover for backend %q (first given on line %d)", ds.Backend, first+1)
			}
			discoverLines[ds.Backend] = lineNo
			for _, kv := range fields[2:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok || v == "" {
					return nil, specErr(lineNo, "discover", "bad option %q (want key=value)", kv)
				}
				switch k {
				case "via":
					ds.Via = v
				case "agent":
					ds.Agent = v
				case "type":
					ds.Type = v
				case "scope":
					ds.Scope = v
				case "search":
					ds.Search = v
				case "st":
					ds.ST = v
				case "listen":
					ds.Listen = v
				case "mx":
					n, err := strconv.Atoi(v)
					if err != nil || n <= 0 {
						return nil, specErr(lineNo, "discover", "bad mx %q", v)
					}
					ds.MX = n
				case "name":
					ds.Name = v
				case "path":
					ds.Path = v
				case "refresh":
					d, err := time.ParseDuration(v)
					if err != nil || d <= 0 {
						return nil, specErr(lineNo, "discover", "bad refresh %q", v)
					}
					ds.Refresh = d
				case "debounce":
					d, err := time.ParseDuration(v)
					if err != nil || d <= 0 {
						return nil, specErr(lineNo, "discover", "bad debounce %q", v)
					}
					ds.Debounce = d
				case "min_ttl":
					d, err := time.ParseDuration(v)
					if err != nil || d <= 0 {
						return nil, specErr(lineNo, "discover", "bad min_ttl %q", v)
					}
					ds.MinTTL = d
				case "max_churn":
					n, err := strconv.Atoi(v)
					if err != nil || n <= 0 {
						return nil, specErr(lineNo, "discover", "bad max_churn %q", v)
					}
					ds.MaxChurn = n
				default:
					return nil, specErr(lineNo, "discover", "unknown option %q", k)
				}
			}
			switch ds.Via {
			case "slp":
				if ds.Agent == "" || ds.Type == "" {
					return nil, specErr(lineNo, "discover", "via=slp needs agent=<addr> and type=<service-type>")
				}
			case "ssdp":
				if ds.Search == "" || ds.ST == "" {
					return nil, specErr(lineNo, "discover", "via=ssdp needs search=<addr> and st=<target>")
				}
			case "dns":
				if ds.Name == "" {
					return nil, specErr(lineNo, "discover", "via=dns needs name=<host:port or SRV name>")
				}
			case "file":
				if ds.Path == "" {
					return nil, specErr(lineNo, "discover", "via=file needs path=<hosts-file>")
				}
			case "":
				return nil, specErr(lineNo, "discover", "missing via=slp|ssdp|dns|file")
			default:
				return nil, specErr(lineNo, "discover", "unknown source %q (want slp, ssdp, dns or file)", ds.Via)
			}
			spec.Discover = append(spec.Discover, ds)
		case "cacheable":
			if len(fields) < 3 {
				return nil, specErr(lineNo, "cacheable", "want: cacheable <operation> ttl=<duration> [vary=<path,...>]")
			}
			op := fields[1]
			if _, dup := spec.Cacheable[op]; dup {
				return nil, specErr(lineNo, "cacheable", "operation %q already declared cacheable", op)
			}
			var rule engine.CacheRule
			for _, kv := range fields[2:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, specErr(lineNo, "cacheable", "bad option %q", kv)
				}
				switch k {
				case "ttl":
					d, err := time.ParseDuration(v)
					if err != nil || d <= 0 {
						return nil, specErr(lineNo, "cacheable", "bad ttl %q", v)
					}
					rule.TTL = d
				case "vary":
					for _, p := range strings.Split(v, ",") {
						p = strings.TrimSpace(p)
						if p == "" {
							return nil, specErr(lineNo, "cacheable", "empty path in vary %q", v)
						}
						rule.Vary = append(rule.Vary, p)
					}
				default:
					return nil, specErr(lineNo, "cacheable", "unknown option %q", k)
				}
			}
			if rule.TTL <= 0 {
				return nil, specErr(lineNo, "cacheable", "operation %q needs ttl=<duration>", op)
			}
			if spec.Cacheable == nil {
				spec.Cacheable = map[string]engine.CacheRule{}
			}
			spec.Cacheable[op] = rule
		case "invalidates":
			if len(fields) < 3 {
				return nil, specErr(lineNo, "invalidates", "want: invalidates <operation> <cached-op,...>")
			}
			op := fields[1]
			if spec.Invalidates == nil {
				spec.Invalidates = map[string][]string{}
			}
			for _, arg := range fields[2:] {
				for _, target := range strings.Split(arg, ",") {
					target = strings.TrimSpace(target)
					if target == "" {
						return nil, specErr(lineNo, "invalidates", "empty cached-op in %q", arg)
					}
					spec.Invalidates[op] = append(spec.Invalidates[op], target)
				}
			}
		case "cache_size":
			if len(fields) != 2 {
				return nil, specErr(lineNo, "cache_size", "want: cache_size <n>")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, specErr(lineNo, "cache_size", "bad cache size %q", fields[1])
			}
			spec.CacheSize = n
		case "cache_shards":
			if len(fields) != 2 {
				return nil, specErr(lineNo, "cache_shards", "want: cache_shards <n>")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, specErr(lineNo, "cache_shards", "bad shard count %q", fields[1])
			}
			spec.CacheShards = n
		default:
			return nil, &SpecError{Line: lineNo + 1, Directive: fields[0],
				Msg: "unknown directive", sentinels: []error{ErrSpec}}
		}
	}
	if spec.MergedName == "" {
		return nil, &SpecError{Msg: "no merged automaton named (directive \"merged\" missing)",
			sentinels: []error{ErrSpec}}
	}
	if len(spec.Sides) == 0 {
		return nil, &SpecError{Msg: "no sides configured (directive \"side\" missing)",
			sentinels: []error{ErrSpec}}
	}
	for op, targets := range spec.Invalidates {
		for _, target := range targets {
			if _, ok := spec.Cacheable[target]; !ok {
				return nil, &SpecError{Directive: "invalidates",
					Msg:       fmt.Sprintf("operation %q invalidates %q, which is not declared cacheable", op, target),
					sentinels: []error{ErrSpec}}
			}
		}
	}
	for _, tn := range tunes {
		applied := false
		for i := range spec.Backends {
			if spec.Backends[i].Name == tn.name {
				tn.apply(&spec.Backends[i])
				applied = true
				break
			}
		}
		if !applied {
			return nil, specErr(tn.lineNo, tn.directive, "references undeclared backend %q", tn.name)
		}
	}
	// Discover directives may precede the backend they drive, so the
	// dangling-reference check is deferred like the tuning directives'.
	for _, ds := range spec.Discover {
		if _, ok := backendLines[ds.Backend]; !ok {
			return nil, specErr(discoverLines[ds.Backend], "discover", "references undeclared backend %q", ds.Backend)
		}
	}
	return spec, nil
}

// BuildBinder constructs the binder a side spec describes.
func (m *Models) BuildBinder(side SideSpec) (bind.Binder, error) {
	defs := map[string]automata.MsgDef{}
	if side.Defs != "" {
		a, ok := m.Automata[side.Defs]
		if !ok {
			return nil, fmt.Errorf("%w: defs automaton %q not loaded", ErrSpec, side.Defs)
		}
		defs = a.Messages
	}
	switch side.Protocol {
	case "xmlrpc":
		return &bind.XMLRPCBinder{Path: side.Path, Defs: defs}, nil
	case "soap":
		return &bind.SOAPBinder{Path: side.Path}, nil
	case "rest":
		routes, ok := m.Routes[side.Routes]
		if !ok {
			return nil, fmt.Errorf("%w: route table %q not loaded", ErrSpec, side.Routes)
		}
		return bind.NewRESTBinder(routes)
	case "giop":
		return bind.NewGIOPBinder(side.ObjectKey, defs)
	case "jsonrpc":
		return &bind.JSONRPCBinder{Path: side.Path, Defs: defs}, nil
	case "ssdp":
		return &bind.SSDPBinder{}, nil
	case "slp":
		return bind.NewSLPBinder()
	default:
		return nil, fmt.Errorf("%w: unknown protocol %q", ErrSpec, side.Protocol)
	}
}

// BuildMediator assembles (but does not start) a mediator from a spec.
func (m *Models) BuildMediator(spec *MediatorSpec) (*engine.Mediator, error) {
	cfg, err := m.buildConfig(spec)
	if err != nil {
		return nil, err
	}
	med, err := engine.New(cfg)
	if err != nil {
		closeDiscovery(cfg.Discovery)
		return nil, err
	}
	return med, nil
}

// buildSource constructs the discovery source a `discover` directive
// describes.
func buildSource(ds DiscoverSpec) (discovery.Source, error) {
	switch ds.Via {
	case "slp":
		return discovery.NewSLPSource(ds.Agent, ds.Type, ds.Scope)
	case "ssdp":
		return discovery.NewSSDPSource(ds.Search, ds.ST, discovery.SSDPOptions{MX: ds.MX, Listen: ds.Listen})
	case "dns":
		return discovery.NewDNSSource(ds.Name)
	case "file":
		return discovery.NewFileSource(ds.Path)
	default:
		return nil, fmt.Errorf("unknown source %q", ds.Via)
	}
}

// closeDiscovery releases reconcilers (and their sources) built before
// a construction failure; once engine.New succeeds the engine owns
// them.
func closeDiscovery(recs []*discovery.Reconciler) {
	for _, r := range recs {
		r.Close()
	}
}

// buildConfig translates a spec into an engine configuration; Deploy
// and BuildMediator share it so observability can be wired in between
// translation and engine construction.
func (m *Models) buildConfig(spec *MediatorSpec) (engine.Config, error) {
	merged, ok := m.Merged[spec.MergedName]
	if !ok {
		return engine.Config{}, fmt.Errorf("%w: merged automaton %q not loaded", ErrSpec, spec.MergedName)
	}
	cfg := engine.Config{
		Merged:       merged,
		Sides:        make(map[int]*engine.Side, len(spec.Sides)),
		HostMap:      spec.HostMap,
		DialTimeout:  spec.DialTimeout,
		PoolSize:     spec.PoolSize,
		PoolIdle:     spec.PoolIdle,
		FlowDeadline: spec.FlowDeadline,
	}
	// The spec's optional knobs translate into an explicit RetryPolicy;
	// "retries 0" simply allows zero attempts — no sentinel needed.
	retry := engine.RetryPolicy{Attempts: engine.DefaultRetryAttempts, Backoff: engine.DefaultBackoff}
	if spec.Retries != nil {
		retry.Attempts = *spec.Retries
	}
	if spec.Backoff > 0 {
		retry.Backoff = spec.Backoff
	}
	if spec.MaxBackoff > 0 {
		retry.MaxBackoff = spec.MaxBackoff
	}
	cfg.Retry = &retry
	if len(spec.Cacheable) > 0 || len(spec.Invalidates) > 0 ||
		spec.CacheSize != 0 || spec.CacheShards != 0 {
		cfg.Cache = &engine.CachePolicy{
			Rules:       spec.Cacheable,
			Invalidates: spec.Invalidates,
			MaxEntries:  spec.CacheSize,
			Shards:      spec.CacheShards,
		}
	}
	if spec.TypeMap != "" {
		tm, ok := m.TypeMaps[spec.TypeMap]
		if !ok {
			return engine.Config{}, fmt.Errorf("%w: vocabulary map %q not loaded", ErrSpec, spec.TypeMap)
		}
		cfg.Funcs = map[string]mtl.Func{"maptype": mtl.TableFunc(tm)}
	}
	if len(spec.Backends) > 0 {
		cfg.Backends = make(map[string]*backend.Set, len(spec.Backends))
		for _, bs := range spec.Backends {
			set, err := backend.New(bs.Name, bs.Addrs, backend.Options{
				Policy:        backend.Policy(bs.Policy),
				ProbeInterval: bs.ProbeInterval,
				ProbeTimeout:  bs.ProbeTimeout,
				FailThreshold: bs.FailThreshold,
				Cooloff:       bs.Cooloff,
				MaxCooloff:    bs.MaxCooloff,
				MinLive:       bs.MinLive,
			})
			if err != nil {
				return engine.Config{}, fmt.Errorf("%w: backend %q: %v", ErrSpec, bs.Name, err)
			}
			cfg.Backends[bs.Name] = set
		}
	}
	for _, ds := range spec.Discover {
		set, ok := cfg.Backends[ds.Backend]
		if !ok { // the parser already rejects this; keep buildConfig safe for hand-built specs
			closeDiscovery(cfg.Discovery)
			return engine.Config{}, fmt.Errorf("%w: discover references undeclared backend %q", ErrSpec, ds.Backend)
		}
		src, err := buildSource(ds)
		if err != nil {
			closeDiscovery(cfg.Discovery)
			return engine.Config{}, fmt.Errorf("%w: discover %s: %v", ErrSpec, ds.Backend, err)
		}
		minLive := 1
		for _, bs := range spec.Backends {
			if bs.Name == ds.Backend && bs.MinLive > 0 {
				minLive = bs.MinLive
			}
		}
		rec, err := discovery.New(set, discovery.Options{
			Source:   src,
			Refresh:  ds.Refresh,
			Debounce: ds.Debounce,
			MinTTL:   ds.MinTTL,
			MaxChurn: ds.MaxChurn,
			MinLive:  minLive,
		})
		if err != nil {
			src.Close()
			closeDiscovery(cfg.Discovery)
			return engine.Config{}, fmt.Errorf("%w: discover %s: %v", ErrSpec, ds.Backend, err)
		}
		cfg.Discovery = append(cfg.Discovery, rec)
	}
	for _, ss := range spec.Sides {
		binder, err := m.BuildBinder(ss)
		if err != nil {
			return engine.Config{}, err
		}
		transport := ss.Transport
		if transport == "" {
			transport = "tcp"
		}
		cfg.Sides[ss.Color] = &engine.Side{
			Binder: binder,
			Net:    network.Semantics{Transport: transport, Mode: "sync"},
			Target: ss.Target,
		}
		if ss.Server {
			cfg.ServerColor = ss.Color
		}
	}
	return cfg, nil
}

// DeployOptions are the per-deployment overrides accepted by the
// unified deployment entrypoint (DeployAny and the public
// starlink.Deploy façade). Zero values defer to the spec.
type DeployOptions struct {
	// Listen overrides the spec's listen address when non-empty.
	Listen string
	// Admin overrides the spec's admin address when non-empty.
	Admin string
}

// Deployed is the common interface of every running deployment —
// single mediator or gateway alike: clients point at Addr, operators
// inspect Snapshot, and lifecycle ends through Shutdown (graceful) or
// Close (abrupt). *Deployment and *GatewayDeployment implement it.
type Deployed interface {
	// Addr is the client-facing listen address.
	Addr() string
	// Snapshot captures the deployment's counters and histograms.
	Snapshot() DeploySnapshot
	// Shutdown drains in-flight flows (bounded by ctx) before stopping.
	Shutdown(ctx context.Context) error
	// Close stops abruptly. Idempotent, and a no-op after Shutdown.
	Close() error
}

// DeploySnapshot is the uniform observability capture of a Deployed:
// per-mediator engine snapshots, plus the front-door counters when the
// deployment is a gateway.
type DeploySnapshot struct {
	// Kind is "mediator" or "gateway".
	Kind string
	// Mediators holds one engine snapshot per running mediator, keyed
	// by the spec name (mediator deployments) or route name (gateways).
	Mediators map[string]engine.Snapshot
	// Gateway holds the per-route front-door counters; nil for plain
	// mediator deployments.
	Gateway *gateway.Stats
}

// Deployment is a running mediator together with its optional
// observability attachments.
type Deployment struct {
	// Mediator is the running mediation engine.
	Mediator *engine.Mediator
	// Observer is the flow tracer; nil when the deployment has no admin
	// endpoint.
	Observer *observe.Observer
	// Admin is the running admin endpoint; nil when not configured.
	Admin *observe.Admin

	name      string
	closeOnce sync.Once
	closeErr  error
}

// Addr returns the mediator's client-facing address.
func (d *Deployment) Addr() string { return d.Mediator.Addr() }

// Snapshot captures the mediator's counters and latency histograms.
func (d *Deployment) Snapshot() DeploySnapshot {
	name := d.name
	if name == "" {
		name = "mediator"
	}
	return DeploySnapshot{
		Kind:      "mediator",
		Mediators: map[string]engine.Snapshot{name: d.Mediator.Snapshot()},
	}
}

// Close stops the admin endpoint (if any) and the mediator. It is
// idempotent and safe after Shutdown: the teardown runs once, repeat
// calls return the first outcome instead of re-closing the listener
// and surfacing a spurious "already closed" error.
func (d *Deployment) Close() error {
	d.closeOnce.Do(func() {
		if d.Admin != nil {
			d.closeErr = d.Admin.Close()
		}
		if err := d.Mediator.Close(); err != nil && d.closeErr == nil {
			d.closeErr = err
		}
	})
	return d.closeErr
}

// Shutdown gracefully drains the deployment: in-flight flows finish
// (bounded by ctx), then the admin endpoint closes. A later Close is a
// no-op.
func (d *Deployment) Shutdown(ctx context.Context) error {
	err := d.Mediator.Shutdown(ctx)
	d.closeOnce.Do(func() {
		if d.Admin != nil {
			d.closeErr = d.Admin.Close()
		}
	})
	if err != nil {
		return err
	}
	return d.closeErr
}

// Deploy builds and starts the named mediator spec like StartMediator,
// and additionally stands up the observability subsystem when an admin
// address is configured — via the spec's "admin" directive or the
// adminOverride argument (which wins when non-empty). With an admin
// address the mediator is instrumented with a flow tracer and flight
// recorder, and the admin endpoint serves /metrics, /healthz, /flows
// and /automaton.dot for it.
func (m *Models) Deploy(name, listenOverride, adminOverride string) (*Deployment, error) {
	spec, ok := m.Mediators[name]
	if !ok {
		return nil, fmt.Errorf("%w: mediator spec %q not loaded", ErrSpec, name)
	}
	cfg, err := m.buildConfig(spec)
	if err != nil {
		return nil, err
	}
	adminAddr := spec.Admin
	if adminOverride != "" {
		adminAddr = adminOverride
	}
	d := &Deployment{name: name}
	if adminAddr != "" {
		d.Observer = observe.Instrument(&cfg, observe.Options{})
	}
	med, err := engine.New(cfg)
	if err != nil {
		closeDiscovery(cfg.Discovery)
		return nil, err
	}
	listen := spec.Listen
	if listenOverride != "" {
		listen = listenOverride
	}
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	if err := med.Start(listen); err != nil {
		return nil, err
	}
	d.Mediator = med
	if adminAddr != "" {
		admin, err := observe.ServeAdmin(adminAddr, observe.AdminConfig{
			Registry: observe.MediatorRegistry(med, d.Observer),
			Observer: d.Observer,
			Mediator: med,
		})
		if err != nil {
			med.Close()
			return nil, fmt.Errorf("core: admin endpoint: %w", err)
		}
		d.Admin = admin
	}
	return d, nil
}

// DeployAny is the unified deployment entrypoint behind the public
// starlink.Deploy façade: name selects a loaded *.mediator or
// *.gateway spec, and the matching deployment path runs. A name
// shadowed by both kinds is rejected as ambiguous rather than silently
// picking one.
func (m *Models) DeployAny(name string, opts DeployOptions) (Deployed, error) {
	_, isMediator := m.Mediators[name]
	_, isGateway := m.Gateways[name]
	switch {
	case isMediator && isGateway:
		return nil, fmt.Errorf("%w: %q names both a mediator and a gateway spec; rename one", ErrSpec, name)
	case isMediator:
		return m.Deploy(name, opts.Listen, opts.Admin)
	case isGateway:
		return m.DeployGateway(name, opts.Listen, opts.Admin)
	default:
		return nil, fmt.Errorf("%w: no mediator or gateway spec %q loaded", ErrSpec, name)
	}
}

// Merge builds a merged automaton from two loaded usage automata and an
// equivalence table.
func (m *Models) Merge(a1Name, a2Name, equivName, mergedName string) (*automata.Merged, error) {
	a1, ok := m.Automata[a1Name]
	if !ok {
		return nil, fmt.Errorf("%w: automaton %q not loaded", ErrModel, a1Name)
	}
	a2, ok := m.Automata[a2Name]
	if !ok {
		return nil, fmt.Errorf("%w: automaton %q not loaded", ErrModel, a2Name)
	}
	var eq *automata.Equivalence
	if equivName != "" {
		eq, ok = m.Equivalences[equivName]
		if !ok {
			return nil, fmt.Errorf("%w: equivalence table %q not loaded", ErrModel, equivName)
		}
	}
	merged, err := automata.Merge(a1, a2, automata.MergeOptions{Name: mergedName, Equiv: eq})
	if err != nil {
		return nil, err
	}
	m.Merged[merged.Name] = merged
	return merged, nil
}

// MustMerge is Merge for wiring code and tests where the models are
// known-good: a failed merge is a programming error, so it panics
// instead of returning it.
func (m *Models) MustMerge(a1Name, a2Name, equivName, mergedName string) *automata.Merged {
	merged, err := m.Merge(a1Name, a2Name, equivName, mergedName)
	if err != nil {
		panic(err)
	}
	return merged
}
