package core_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"starlink/internal/automata"
	"starlink/internal/casestudy"
	"starlink/internal/core"
	"starlink/internal/protocol/httpwire"
	"starlink/internal/protocol/slp"
	"starlink/internal/protocol/ssdp"
	"starlink/internal/protocol/xmlrpc"
	"starlink/internal/services/photostore"
	"starlink/internal/services/picasa"
)

// writeCaseStudyModels materialises the case-study model files into a
// temporary directory (what `starlink export-models` produces).
func writeCaseStudyModels(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(name string, data []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	enc := func(a *automata.Automaton) []byte {
		t.Helper()
		data, err := a.EncodeXML()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	encM := func(m *automata.Merged) []byte {
		t.Helper()
		data, err := m.EncodeXML()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	write("flickr-usage.automaton.xml", enc(casestudy.FlickrUsage()))
	write("picasa-usage.automaton.xml", enc(casestudy.PicasaUsage()))
	write("flickr-xmlrpc-to-picasa-rest.merged.xml", encM(casestudy.XMLRPCMediator()))
	write("picasa.routes", []byte(casestudy.PicasaRoutesDoc))
	write("flickr-picasa.equiv", []byte(casestudy.EquivalenceDoc))
	write("giop.mdl", []byte(casestudy.GIOPMDLDoc))
	write("flickr-xmlrpc.mediator", []byte(casestudy.XMLRPCMediatorSpecDoc))
	write("README.txt", []byte("ignored artifact"))
	return dir
}

func TestLoadModels(t *testing.T) {
	dir := writeCaseStudyModels(t)
	m, err := core.LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Automata["AFlickr"] == nil || m.Automata["APicasa"] == nil {
		t.Error("usage automata not loaded")
	}
	if m.Merged["Flickr-XMLRPC-to-Picasa-REST"] == nil {
		t.Error("merged automaton not loaded")
	}
	if m.MDL["GIOP"] == nil {
		t.Error("MDL not loaded")
	}
	if len(m.Routes["picasa"]) != 3 {
		t.Errorf("routes = %d", len(m.Routes["picasa"]))
	}
	eq := m.Equivalences["flickr-picasa"]
	if eq == nil || !eq.Equivalent("text", "q") {
		t.Error("equivalence table not loaded")
	}
	spec := m.Mediators["flickr-xmlrpc"]
	if spec == nil || spec.MergedName != "Flickr-XMLRPC-to-Picasa-REST" {
		t.Errorf("mediator spec = %+v", spec)
	}
}

func TestLoadModelsErrors(t *testing.T) {
	if _, err := core.LoadModels("/no/such/dir"); err == nil {
		t.Error("missing dir accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.automaton.xml"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadModels(dir); !errors.Is(err, core.ErrModel) {
		t.Errorf("bad automaton err = %v", err)
	}
	for name, content := range map[string]string{
		"bad.merged.xml": "junk",
		"bad.mdl":        "junk",
		"bad.routes":     "junk",
		"bad.equiv":      "no pairs here",
		"bad.mediator":   "zap",
	} {
		d := t.TempDir()
		if err := os.WriteFile(filepath.Join(d, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := core.LoadModels(d); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestParseEquivalence(t *testing.T) {
	eq, err := core.ParseEquivalence("# c\n a = b \nx=y\n")
	if err != nil {
		t.Fatal(err)
	}
	if !eq.Equivalent("a", "b") || !eq.Equivalent("y", "x") {
		t.Error("pairs not loaded")
	}
	if _, err := core.ParseEquivalence("nonsense line"); err == nil {
		t.Error("bad line accepted")
	}
	if _, err := core.ParseEquivalence("# nothing"); err == nil {
		t.Error("empty table accepted")
	}
}

func TestParseMediatorSpecErrors(t *testing.T) {
	cases := []string{
		"",
		"merged x",                                       // no sides
		"side 1 xmlrpc server",                           // no merged
		"merged x\nside one xmlrpc",                      // bad color
		"merged x\nside 1 xmlrpc foo",                    // bad option
		"merged x\nside 1 xmlrpc a=b",                    // unknown option
		"merged x\nside 1 xmlrpc\nwat 1",                 // unknown directive
		"merged x\nmerged",                               // malformed merged
		"merged x\nlisten",                               // malformed listen
		"merged x\nside 1",                               // short side
		"merged x\nside 1 xmlrpc\nhostmap nope",          // malformed hostmap
		"merged x\nside 1 xmlrpc\nretries",               // malformed retries
		"merged x\nside 1 xmlrpc\nretries -1",            // negative retries
		"merged x\nside 1 xmlrpc\nretries two",           // non-numeric retries
		"merged x\nside 1 xmlrpc\nbackoff",               // malformed backoff
		"merged x\nside 1 xmlrpc\nbackoff -5ms",          // negative backoff
		"merged x\nside 1 xmlrpc\nbackoff fast",          // unparseable backoff
		"merged x\nside 1 xmlrpc\ndialtimeout",           // malformed dialtimeout
		"merged x\nside 1 xmlrpc\ndialtimeout 0s",        // zero dialtimeout
		"merged x\nside 1 xmlrpc\nmax_backoff",           // malformed max_backoff
		"merged x\nside 1 xmlrpc\nmax_backoff 0s",        // zero max_backoff
		"merged x\nside 1 xmlrpc\nmax_backoff -1s",       // negative max_backoff
		"merged x\nside 1 xmlrpc\nflow_deadline",         // malformed flow_deadline
		"merged x\nside 1 xmlrpc\nflow_deadline 0s",      // zero flow_deadline
		"merged x\nside 1 xmlrpc\nflow_deadline -200ms",  // negative flow_deadline
		"merged x\nside 1 xmlrpc\nflow_deadline soonish", // unparseable flow_deadline
	}
	for _, doc := range cases {
		if _, err := core.ParseMediatorSpec(doc); !errors.Is(err, core.ErrSpec) {
			t.Errorf("ParseMediatorSpec(%q) err = %v", doc, err)
		}
	}
}

func TestParseMediatorSpecFaultDirectives(t *testing.T) {
	spec, err := core.ParseMediatorSpec(`
merged Add+Plus
side 1 giop defs=AAdd server
side 2 soap path=/soap target=127.0.0.1:9999
retries 4
backoff 25ms
max_backoff 800ms
dialtimeout 3s
flow_deadline 1500ms
`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Retries == nil || *spec.Retries != 4 {
		t.Errorf("Retries = %v, want 4", spec.Retries)
	}
	if spec.Backoff != 25*time.Millisecond {
		t.Errorf("Backoff = %v", spec.Backoff)
	}
	if spec.DialTimeout != 3*time.Second {
		t.Errorf("DialTimeout = %v", spec.DialTimeout)
	}
	if spec.MaxBackoff != 800*time.Millisecond {
		t.Errorf("MaxBackoff = %v", spec.MaxBackoff)
	}
	if spec.FlowDeadline != 1500*time.Millisecond {
		t.Errorf("FlowDeadline = %v", spec.FlowDeadline)
	}

	// flow_deadline off disables budgets explicitly (negative sentinel).
	spec, err = core.ParseMediatorSpec("merged x\nside 1 xmlrpc path=/x server\nflow_deadline off")
	if err != nil {
		t.Fatal(err)
	}
	if spec.FlowDeadline >= 0 {
		t.Errorf("FlowDeadline = %v, want negative sentinel for off", spec.FlowDeadline)
	}

	// retries 0 is valid and means "disable recovery".
	spec, err = core.ParseMediatorSpec("merged x\nside 1 xmlrpc path=/x server\nretries 0")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Retries == nil || *spec.Retries != 0 {
		t.Errorf("Retries = %v, want 0", spec.Retries)
	}

	// Omitted directives leave the engine defaults in charge.
	spec, err = core.ParseMediatorSpec("merged x\nside 1 xmlrpc path=/x server")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Retries != nil || spec.Backoff != 0 || spec.DialTimeout != 0 ||
		spec.MaxBackoff != 0 || spec.FlowDeadline != 0 {
		t.Errorf("defaults polluted: %+v", spec)
	}
}

func TestBuildBinderErrors(t *testing.T) {
	m := core.NewModels()
	cases := []core.SideSpec{
		{Protocol: "warp"},
		{Protocol: "rest", Routes: "missing"},
		{Protocol: "xmlrpc", Defs: "missing"},
	}
	for _, ss := range cases {
		if _, err := m.BuildBinder(ss); err == nil {
			t.Errorf("BuildBinder(%+v) accepted", ss)
		}
	}
}

func TestMergeFromModels(t *testing.T) {
	dir := writeCaseStudyModels(t)
	m, err := core.LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := m.Merge("AFlickr", "APicasa", "flickr-picasa", "auto")
	if err != nil {
		t.Fatal(err)
	}
	if merged.Strength != automata.StronglyMerged {
		t.Errorf("strength = %v", merged.Strength)
	}
	if m.Merged["auto"] == nil {
		t.Error("merge result not registered")
	}
	for _, bad := range [][3]string{
		{"nope", "APicasa", "flickr-picasa"},
		{"AFlickr", "nope", "flickr-picasa"},
		{"AFlickr", "APicasa", "nope"},
	} {
		if _, err := m.Merge(bad[0], bad[1], bad[2], "x"); err == nil {
			t.Errorf("Merge(%v) accepted", bad)
		}
	}
}

// TestMediatorFromDiskModels runs the whole case study driven purely by
// on-disk model files — the deployment path of Section 5.1: load models,
// start the mediator, point the unmodified client at it.
func TestMediatorFromDiskModels(t *testing.T) {
	store := photostore.New()
	pic, err := picasa.New(store)
	if err != nil {
		t.Fatal(err)
	}
	defer pic.Close()

	dir := writeCaseStudyModels(t)
	// Point the spec's placeholder addresses at the live service.
	specPath := filepath.Join(dir, "flickr-xmlrpc.mediator")
	data, err := os.ReadFile(specPath)
	if err != nil {
		t.Fatal(err)
	}
	patched := strings.ReplaceAll(string(data), "127.0.0.1:9002", pic.Addr())
	if err := os.WriteFile(specPath, []byte(patched), 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := core.LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	med, err := m.DeployAny("flickr-xmlrpc", core.DeployOptions{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer med.Close()

	c := xmlrpc.NewClient(med.Addr(), "/services/xmlrpc")
	defer c.Close()
	v, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
		"text": "tree", "per_page": int64(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	photos := v.(map[string]xmlrpc.Value)["photos"].([]xmlrpc.Value)
	if len(photos) != 2 {
		t.Errorf("photos = %d", len(photos))
	}
	if _, err := m.DeployAny("missing", core.DeployOptions{}); !errors.Is(err, core.ErrSpec) {
		t.Errorf("missing spec err = %v", err)
	}
}

// TestE9Evolution is experiment E9: the Picasa API evolves (v2 renames
// the q and max-results parameters to query and limit). Interoperability
// is restored by editing ONE line of the route model; the merged
// automaton, the binding code and the client are untouched.
func TestE9Evolution(t *testing.T) {
	store := photostore.New()
	picV2, err := picasa.NewWithConfig(store, picasa.Config{
		SearchParam: "query", LimitParam: "limit",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer picV2.Close()

	dir := writeCaseStudyModels(t)
	// The one-line model edit: remap the search route's query parameters.
	v2Routes := strings.ReplaceAll(casestudy.PicasaRoutesDoc,
		"q=q max-results=max-results", "query=q limit=max-results")
	if err := os.WriteFile(filepath.Join(dir, "picasa.routes"), []byte(v2Routes), 0o644); err != nil {
		t.Fatal(err)
	}
	specPath := filepath.Join(dir, "flickr-xmlrpc.mediator")
	data, _ := os.ReadFile(specPath)
	patched := strings.ReplaceAll(string(data), "127.0.0.1:9002", picV2.Addr())
	if err := os.WriteFile(specPath, []byte(patched), 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := core.LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	med, err := m.DeployAny("flickr-xmlrpc", core.DeployOptions{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer med.Close()

	c := xmlrpc.NewClient(med.Addr(), "/services/xmlrpc")
	defer c.Close()
	v, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
		"text": "tree", "per_page": int64(3),
	})
	if err != nil {
		t.Fatalf("v2 search through one-line model edit: %v", err)
	}
	photos := v.(map[string]xmlrpc.Value)["photos"].([]xmlrpc.Value)
	if len(photos) != 3 {
		t.Errorf("v2 photos = %d", len(photos))
	}

	// Control: WITHOUT the model edit, the v1 routes no longer work
	// against the v2 API (the evolution really broke the wire contract).
	v1Dir := writeCaseStudyModels(t)
	v1Spec := filepath.Join(v1Dir, "flickr-xmlrpc.mediator")
	d2, _ := os.ReadFile(v1Spec)
	if err := os.WriteFile(v1Spec, []byte(strings.ReplaceAll(string(d2), "127.0.0.1:9002", picV2.Addr())), 0o644); err != nil {
		t.Fatal(err)
	}
	m1, err := core.LoadModels(v1Dir)
	if err != nil {
		t.Fatal(err)
	}
	medStale, err := m1.DeployAny("flickr-xmlrpc", core.DeployOptions{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer medStale.Close()
	cStale := xmlrpc.NewClient(medStale.Addr(), "/services/xmlrpc")
	defer cStale.Close()
	if _, err := cStale.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
		"text": "tree",
	}); err == nil {
		t.Error("stale v1 routes unexpectedly worked against the v2 API")
	}
}

// TestDiscoveryMediatorFromDiskModels drives the SSDP->SLP discovery
// mediation entirely from model files, including the vocabulary map
// (.typemap) artifact.
func TestDiscoveryMediatorFromDiskModels(t *testing.T) {
	da, err := slp.NewDirectoryAgent("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer da.Close()
	da.Register("service:printer:lpr", slp.URLEntry{
		URL: "service:printer:lpr://modeled.example", Lifetime: 60,
	})

	dir := t.TempDir()
	merged, err := casestudy.DiscoveryMediator().EncodeXML()
	if err != nil {
		t.Fatal(err)
	}
	spec := strings.ReplaceAll(casestudy.DiscoveryMediatorSpecDoc, "127.0.0.1:427", da.Addr())
	for name, data := range map[string][]byte{
		"ssdp-to-slp.merged.xml": merged,
		"upnp-to-slp.typemap":    []byte(casestudy.DiscoveryTypeMapDoc),
		"discovery.mediator":     []byte(spec),
	} {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m, err := core.LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.TypeMaps["upnp-to-slp"]) != 3 {
		t.Errorf("typemap = %v", m.TypeMaps["upnp-to-slp"])
	}
	med, err := m.DeployAny("discovery", core.DeployOptions{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer med.Close()

	responses, err := ssdp.Search(med.Addr(), "urn:schemas-upnp-org:service:Printer:1", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if responses[0].Location != "service:printer:lpr://modeled.example" {
		t.Errorf("location = %q", responses[0].Location)
	}
}

func TestParseTypeMapErrors(t *testing.T) {
	if _, err := core.ParseTypeMap("bogus line"); err == nil {
		t.Error("bad line accepted")
	}
	if _, err := core.ParseTypeMap("# only comments"); err == nil {
		t.Error("empty map accepted")
	}
	tm, err := core.ParseTypeMap(" a = b \n# c\nd=e")
	if err != nil || tm["a"] != "b" || tm["d"] != "e" {
		t.Errorf("tm = %v, %v", tm, err)
	}
}

func TestMediatorSpecTypemapAndUDP(t *testing.T) {
	spec, err := core.ParseMediatorSpec("merged m\ntypemap v\nside 1 ssdp server udp\nside 2 slp udp target=x")
	if err != nil {
		t.Fatal(err)
	}
	if spec.TypeMap != "v" {
		t.Errorf("typemap = %q", spec.TypeMap)
	}
	if !spec.Sides[0].Server || spec.Sides[0].Transport != "udp" {
		t.Errorf("side0 = %+v", spec.Sides[0])
	}
	if _, err := core.ParseMediatorSpec("merged m\ntypemap"); err == nil {
		t.Error("malformed typemap directive accepted")
	}
	// Unknown typemap at build time.
	m := core.NewModels()
	spec.MergedName = "m"
	if _, err := m.BuildMediator(spec); err == nil {
		t.Error("missing merged+typemap accepted")
	}
}

func TestParseMediatorSpecPoolDirectives(t *testing.T) {
	spec, err := core.ParseMediatorSpec(`
merged Add+Plus
side 1 giop defs=AAdd server
side 2 soap path=/soap target=127.0.0.1:9999
pool_size 16
pool_idle 30s
`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.PoolSize != 16 {
		t.Errorf("PoolSize = %d, want 16", spec.PoolSize)
	}
	if spec.PoolIdle != 30*time.Second {
		t.Errorf("PoolIdle = %v, want 30s", spec.PoolIdle)
	}

	// pool_idle off disables idle keep-alive.
	spec, err = core.ParseMediatorSpec("merged x\nside 1 xmlrpc path=/x server\npool_idle off")
	if err != nil {
		t.Fatal(err)
	}
	if spec.PoolIdle >= 0 {
		t.Errorf("PoolIdle = %v, want negative for off", spec.PoolIdle)
	}

	for _, doc := range []string{
		"merged x\nside 1 xmlrpc\npool_size",      // malformed pool_size
		"merged x\nside 1 xmlrpc\npool_size 0",    // zero pool_size
		"merged x\nside 1 xmlrpc\npool_size -2",   // negative pool_size
		"merged x\nside 1 xmlrpc\npool_size big",  // non-numeric pool_size
		"merged x\nside 1 xmlrpc\npool_idle",      // malformed pool_idle
		"merged x\nside 1 xmlrpc\npool_idle 0s",   // zero pool_idle
		"merged x\nside 1 xmlrpc\npool_idle slow", // unparseable pool_idle
	} {
		if _, err := core.ParseMediatorSpec(doc); !errors.Is(err, core.ErrSpec) {
			t.Errorf("ParseMediatorSpec(%q) err = %v", doc, err)
		}
	}
}

// TestSpecErrorsNameDirective: every malformed directive is reported with
// the directive's own name and a line number, so a long spec stays
// debuggable.
func TestSpecErrorsNameDirective(t *testing.T) {
	cases := []struct {
		doc       string
		directive string
	}{
		{"merged x\nside 1 xmlrpc\nretries two", "retries"},
		{"merged x\nside 1 xmlrpc\nbackoff fast", "backoff"},
		{"merged x\nside 1 xmlrpc\ndialtimeout 0s", "dialtimeout"},
		{"merged x\nside 1 xmlrpc\npool_size zero", "pool_size"},
		{"merged x\nside 1 xmlrpc\npool_idle never", "pool_idle"},
		{"merged x\nside one xmlrpc", "side"},
		{"merged x\nside 1 xmlrpc\nhostmap nope", "hostmap"},
		{"merged x\nside 1 xmlrpc\nlisten", "listen"},
	}
	for _, tt := range cases {
		_, err := core.ParseMediatorSpec(tt.doc)
		if err == nil {
			t.Errorf("ParseMediatorSpec(%q) accepted", tt.doc)
			continue
		}
		if !strings.Contains(err.Error(), "directive \""+tt.directive+"\"") {
			t.Errorf("error %q does not name directive %q", err, tt.directive)
		}
		if !strings.Contains(err.Error(), "line 3") && !strings.Contains(err.Error(), "line 2") {
			t.Errorf("error %q lacks line context", err)
		}
	}
}

func TestMustMerge(t *testing.T) {
	dir := writeCaseStudyModels(t)
	m, err := core.LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	merged := m.MustMerge("AFlickr", "APicasa", "flickr-picasa", "must")
	if merged == nil || m.Merged["must"] == nil {
		t.Fatal("MustMerge result not registered")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustMerge with missing automaton did not panic")
		}
	}()
	m.MustMerge("nope", "APicasa", "flickr-picasa", "x")
}

func TestParseMediatorSpecAdminDirective(t *testing.T) {
	spec, err := core.ParseMediatorSpec("merged x\nside 1 xmlrpc path=/x server\nadmin 127.0.0.1:9090")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Admin != "127.0.0.1:9090" {
		t.Errorf("Admin = %q", spec.Admin)
	}
	if _, err := core.ParseMediatorSpec("merged x\nside 1 xmlrpc\nadmin"); !errors.Is(err, core.ErrSpec) {
		t.Errorf("bare admin err = %v", err)
	}
}

// TestDeployWithAdmin stands up a full observed deployment from disk
// models: mediator plus flow tracer plus admin endpoint, with the admin
// address supplied as an override.
func TestDeployWithAdmin(t *testing.T) {
	store := photostore.New()
	pic, err := picasa.New(store)
	if err != nil {
		t.Fatal(err)
	}
	defer pic.Close()

	dir := writeCaseStudyModels(t)
	specPath := filepath.Join(dir, "flickr-xmlrpc.mediator")
	data, err := os.ReadFile(specPath)
	if err != nil {
		t.Fatal(err)
	}
	patched := strings.ReplaceAll(string(data), "127.0.0.1:9002", pic.Addr())
	if err := os.WriteFile(specPath, []byte(patched), 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := core.LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := m.Deploy("flickr-xmlrpc", "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if dep.Observer == nil || dep.Admin == nil {
		t.Fatal("deployment missing observability attachments")
	}

	c := xmlrpc.NewClient(dep.Mediator.Addr(), "/services/xmlrpc")
	v, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
		"text": "tree", "per_page": int64(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if photos := v.(map[string]xmlrpc.Value)["photos"].([]xmlrpc.Value); len(photos) != 1 {
		t.Errorf("photos = %d", len(photos))
	}
	c.Close()

	hc := &httpwire.Client{Addr: dep.Admin.Addr()}
	defer hc.Close()
	resp, err := hc.Get("/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || !strings.Contains(string(resp.Body), "\"ok\"") {
		t.Errorf("healthz = %d %s", resp.Status, resp.Body)
	}
	resp, err = hc.Get("/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp.Body), "starlink_sessions_total 1") {
		t.Errorf("metrics missing session count:\n%s", resp.Body)
	}
	resp, err = hc.Get("/automaton.dot")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp.Body), "digraph") {
		t.Errorf("automaton.dot = %s", resp.Body)
	}

	// Without an admin address the deployment is a bare mediator.
	bare, err := m.Deploy("flickr-xmlrpc", "127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if bare.Observer != nil || bare.Admin != nil {
		t.Error("bare deployment grew observability attachments")
	}
}

func TestParseMediatorSpecBackendDirectives(t *testing.T) {
	spec, err := core.ParseMediatorSpec(`
merged Add+Plus
side 1 giop defs=AAdd server
side 2 soap path=/soap target=photos
# tuning may precede the declaration it refers to
balance photos p2c
backend photos 10.0.0.1:80 10.0.0.2:80 10.0.0.3:80
probe photos 250ms timeout=1s
eject photos fails=2 cooloff=500ms max_cooloff=10s min_live=2
backend orders 10.0.1.1:80
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Backends) != 2 {
		t.Fatalf("Backends = %+v, want photos and orders", spec.Backends)
	}
	photos := spec.Backends[0]
	if photos.Name != "photos" || len(photos.Addrs) != 3 {
		t.Errorf("photos = %+v", photos)
	}
	if photos.Policy != "p2c" {
		t.Errorf("Policy = %q, want p2c", photos.Policy)
	}
	if photos.ProbeInterval != 250*time.Millisecond || photos.ProbeTimeout != time.Second {
		t.Errorf("probe = %v/%v", photos.ProbeInterval, photos.ProbeTimeout)
	}
	if photos.FailThreshold != 2 || photos.Cooloff != 500*time.Millisecond ||
		photos.MaxCooloff != 10*time.Second || photos.MinLive != 2 {
		t.Errorf("eject = %+v", photos)
	}
	orders := spec.Backends[1]
	if orders.Name != "orders" || orders.Policy != "" || orders.ProbeInterval != 0 {
		t.Errorf("orders = %+v, want untouched defaults", orders)
	}
}

func TestParseMediatorSpecBackendErrors(t *testing.T) {
	const head = "merged x\nside 1 xmlrpc path=/x server\n"

	// A duplicate backend name is rejected naming both lines.
	_, err := core.ParseMediatorSpec(head + "backend b 1.1.1.1:1\nbackend b 2.2.2.2:2")
	if !errors.Is(err, core.ErrSpec) {
		t.Fatalf("duplicate backend err = %v", err)
	}
	var se *core.SpecError
	if !errors.As(err, &se) {
		t.Fatalf("duplicate backend err %T is not a *SpecError", err)
	}
	if se.Line != 4 || se.Directive != "backend" {
		t.Errorf("SpecError = %+v, want line 4 directive backend", se)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not name the first declaration line", err)
	}

	// A backend with zero addresses is rejected.
	_, err = core.ParseMediatorSpec(head + "backend lonely")
	if !errors.As(err, &se) || se.Directive != "backend" {
		t.Fatalf("zero-address backend err = %v", err)
	}
	if !strings.Contains(err.Error(), "no replica addresses") {
		t.Errorf("error %q does not explain the zero-address problem", err)
	}

	for _, doc := range []string{
		head + "backend b 1.1.1.1:1 1.1.1.1:1",                            // replica listed twice
		head + "balance b p2c",                                            // undeclared backend
		head + "probe b 1s",                                               // undeclared backend
		head + "eject b fails=1",                                          // undeclared backend
		head + "backend b 1.1.1.1:1\nbalance b lifo",                      // unknown policy
		head + "backend b 1.1.1.1:1\nbalance b",                           // malformed balance
		head + "backend b 1.1.1.1:1\nprobe b fast",                        // bad interval
		head + "backend b 1.1.1.1:1\nprobe b 1s t=2",                      // unknown probe option
		head + "backend b 1.1.1.1:1\neject b",                             // no options
		head + "backend b 1.1.1.1:1\neject b fails=0",                     // non-positive fails
		head + "backend b 1.1.1.1:1\neject b cooloff=-1s",                 // negative cooloff
		head + "backend b 1.1.1.1:1\neject b wat=1",                       // unknown eject option
		head + "backend b 1.1.1.1:1\nbalance b p2c\nbalance b roundrobin", // duplicate tuning
		head + "backend b 1.1.1.1:1\nprobe b 1s\nprobe b 2s",              // duplicate tuning
		head + "backend b 1.1.1.1:1\neject b fails=1\neject b fails=2",    // duplicate tuning
	} {
		if _, err := core.ParseMediatorSpec(doc); !errors.Is(err, core.ErrSpec) {
			t.Errorf("ParseMediatorSpec(%q) err = %v, want ErrSpec", doc, err)
		}
	}
}
