package gateway

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"starlink/internal/mdl"
	"starlink/internal/message"
	"starlink/internal/network"
	"starlink/internal/protocol/giop"
	"starlink/internal/protocol/httpwire"
)

// Errors reported by the gateway.
var (
	// ErrConfig is wrapped by configuration validation failures.
	ErrConfig = errors.New("gateway: invalid configuration")
	// ErrNoRoute is returned by Swap for an unknown route name.
	ErrNoRoute = errors.New("gateway: no such route")
	// ErrClosed is returned by Start/Swap after Close.
	ErrClosed = errors.New("gateway: closed")
)

// rejectTimeout bounds a shed connection's goodbye exchange: reading
// the one request a protocol-correct reject must answer (GIOP carries
// the request id in the body) and writing the reject itself.
const rejectTimeout = time.Second

// Target is what a route forwards admitted connections to. A running
// *engine.Mediator satisfies it; tests substitute fakes.
type Target interface {
	// ServeConn takes ownership of a pre-established client connection
	// and mediates it. engine.ErrDraining (or any error) means the
	// target refused it and the caller still owns the connection.
	ServeConn(conn network.Conn) error
	// Shutdown drains in-flight flows; used when a route is repointed.
	Shutdown(ctx context.Context) error
	// Close aborts immediately.
	Close() error
}

// Matcher decides whether a route claims a sniffed connection.
type Matcher struct {
	// Class is the wire class the route serves; ClassUnknown builds a
	// route reachable only as the default.
	Class WireClass
	// PathPrefix, for ClassHTTP, additionally requires the request path
	// to start with this prefix ("" matches any path).
	PathPrefix string
	// Payload, for ClassHTTP, additionally requires the sniffed body
	// hint (ClassXML or ClassJSON) — how an XML-RPC POST is told from a
	// JSON-RPC POST on the same path. ClassUnknown accepts any body.
	Payload WireClass
}

// Matches reports whether the sniff satisfies the matcher.
func (m Matcher) Matches(s Sniff) bool {
	if m.Class == ClassUnknown || s.Class != m.Class {
		return false
	}
	if m.Class != ClassHTTP {
		return true
	}
	if m.PathPrefix != "" && !hasPrefix(s.Path, m.PathPrefix) {
		return false
	}
	if m.Payload != ClassUnknown && s.Body != m.Payload {
		return false
	}
	return true
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// RouteConfig declares one hosted mediator behind the front door.
type RouteConfig struct {
	// Name identifies the route in metrics, Swap and the spec.
	Name string
	// Match is the sniff-based claim.
	Match Matcher
	// Admission is the route's admission-control policy.
	Admission AdmissionPolicy
	// Framer frames admitted connections for the target — the hosted
	// mediator's server-side binder framer.
	Framer network.Framer
	// Target is the initial mediator (typically started detached).
	Target Target
}

// Config assembles a gateway.
type Config struct {
	// Routes are evaluated in order; the first match claims the
	// connection.
	Routes []RouteConfig
	// Default names the route that takes connections no matcher claims
	// (including sniff timeouts). "" means unmatched connections are
	// dropped.
	Default string
	// SniffBytes bounds the sniff window (default DefaultSniffBytes).
	SniffBytes int
	// SniffTimeout bounds the sniff wait (default DefaultSniffTimeout).
	SniffTimeout time.Duration
}

// route is one RouteConfig's runtime state.
type route struct {
	name   string
	match  Matcher
	adm    *admission
	framer network.Framer
	target atomic.Pointer[targetBox]

	accepted atomic.Uint64 // admitted and handed to the target
	shed     atomic.Uint64 // refused by admission control
	dropped  atomic.Uint64 // lost to a draining target mid-swap
	reloads  atomic.Uint64 // Swap calls
}

// targetBox wraps a Target so atomic.Pointer can hold interface values.
type targetBox struct{ t Target }

// Gateway is the running front door. Lifecycle: New → Start →
// (Shutdown | Close). It owns the listener and the sniffing phase of
// each connection; hosted mediators are owned by the deployer (they
// outlive a gateway Close so their in-flight flows can drain).
type Gateway struct {
	cfg       Config
	routes    []*route
	byName    map[string]*route
	deflt     *route
	giopCodec mdl.Codec

	conns    atomic.Uint64 // connections accepted by the listener
	sniffed  [5]atomic.Uint64
	fallback atomic.Uint64 // unmatched sniffs sent to the default route
	unrouted atomic.Uint64 // unmatched sniffs with no default: dropped

	mu       sync.Mutex
	listener net.Listener
	sniffing map[net.Conn]struct{} // conns still in the sniff/reject phase
	closed   bool
	wg       sync.WaitGroup
}

// New validates the configuration and builds a gateway (not yet
// listening).
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Routes) == 0 {
		return nil, fmt.Errorf("%w: no routes", ErrConfig)
	}
	g := &Gateway{
		cfg:      cfg,
		byName:   make(map[string]*route, len(cfg.Routes)),
		sniffing: make(map[net.Conn]struct{}),
	}
	for _, rc := range cfg.Routes {
		if rc.Name == "" {
			return nil, fmt.Errorf("%w: route without a name", ErrConfig)
		}
		if g.byName[rc.Name] != nil {
			return nil, fmt.Errorf("%w: duplicate route %q", ErrConfig, rc.Name)
		}
		if rc.Target == nil {
			return nil, fmt.Errorf("%w: route %q has no target", ErrConfig, rc.Name)
		}
		if rc.Framer == nil {
			return nil, fmt.Errorf("%w: route %q has no framer", ErrConfig, rc.Name)
		}
		rt := &route{name: rc.Name, match: rc.Match, adm: newAdmission(rc.Admission), framer: rc.Framer}
		rt.target.Store(&targetBox{t: rc.Target})
		g.routes = append(g.routes, rt)
		g.byName[rc.Name] = rt
	}
	if cfg.Default != "" {
		rt := g.byName[cfg.Default]
		if rt == nil {
			return nil, fmt.Errorf("%w: default route %q not declared", ErrConfig, cfg.Default)
		}
		g.deflt = rt
	}
	codec, err := giop.NewCodec()
	if err != nil {
		return nil, err
	}
	g.giopCodec = codec
	return g, nil
}

// Start binds addr and begins accepting.
func (g *Gateway) Start(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("gateway: listen %s: %w", addr, err)
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		l.Close()
		return ErrClosed
	}
	g.listener = l
	g.mu.Unlock()
	g.wg.Add(1)
	go g.acceptLoop()
	return nil
}

// Addr returns the bound front-door address.
func (g *Gateway) Addr() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.listener == nil {
		return ""
	}
	return g.listener.Addr().String()
}

// Routes lists the route names in declaration order.
func (g *Gateway) Routes() []string {
	names := make([]string, len(g.routes))
	for i, rt := range g.routes {
		names[i] = rt.name
	}
	return names
}

// Target returns the route's current target (the zero-downtime swap
// makes this a moving answer).
func (g *Gateway) Target(routeName string) (Target, error) {
	rt := g.byName[routeName]
	if rt == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoRoute, routeName)
	}
	return rt.target.Load().t, nil
}

// Swap atomically repoints a route at a new target and returns the old
// one for the caller to drain (typically old.Shutdown(ctx) in the
// background). Connections admitted before the swap keep flowing on
// the old target; connections sniffed after it land on the new one —
// zero-downtime reload is Swap plus a graceful drain.
func (g *Gateway) Swap(routeName string, newTarget Target) (Target, error) {
	if newTarget == nil {
		return nil, fmt.Errorf("%w: nil target for route %q", ErrConfig, routeName)
	}
	rt := g.byName[routeName]
	if rt == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoRoute, routeName)
	}
	old := rt.target.Swap(&targetBox{t: newTarget})
	rt.reloads.Add(1)
	return old.t, nil
}

func (g *Gateway) acceptLoop() {
	defer g.wg.Done()
	for {
		c, err := g.listener.Accept()
		if err != nil {
			return
		}
		g.conns.Add(1)
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			c.Close()
			return
		}
		g.sniffing[c] = struct{}{}
		g.wg.Add(1)
		g.mu.Unlock()
		go g.handle(c)
	}
}

// doneSniffing removes a connection from the sniff-phase set; returns
// false when the gateway closed it underneath us.
func (g *Gateway) doneSniffing(c net.Conn) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.sniffing[c]; !ok {
		return false
	}
	delete(g.sniffing, c)
	return true
}

// handle sniffs, routes and admits one raw connection.
func (g *Gateway) handle(c net.Conn) {
	defer g.wg.Done()
	pc := network.NewPeekConn(c)
	s := sniffConn(pc, g.cfg.SniffBytes, g.cfg.SniffTimeout)
	g.sniffed[s.Class].Add(1)
	rt := g.routeFor(s)
	if !g.doneSniffing(c) {
		return // gateway closed mid-sniff; the conn is already closed
	}
	if rt == nil {
		g.unrouted.Add(1)
		pc.Close()
		return
	}
	if ok, _ := rt.adm.admit(time.Now()); !ok {
		rt.shed.Add(1)
		g.reject(pc, s)
		return
	}
	gc := &gatedConn{Conn: pc.Framed(rt.framer), adm: rt.adm}
	// A swap between the target load and ServeConn can hand us a
	// draining mediator; re-load the pointer and retry once before
	// giving up on the connection.
	for attempt := 0; attempt < 2; attempt++ {
		if err := rt.target.Load().t.ServeConn(gc); err == nil {
			rt.accepted.Add(1)
			return
		}
	}
	rt.dropped.Add(1)
	gc.Close()
}

// routeFor picks the first matching route, else the default.
func (g *Gateway) routeFor(s Sniff) *route {
	for _, rt := range g.routes {
		if rt.match.Matches(s) {
			return rt
		}
	}
	if g.deflt != nil {
		g.fallback.Add(1)
		return g.deflt
	}
	return nil
}

// reject answers an over-limit connection with a cheap protocol-correct
// refusal and closes it: HTTP 503 for HTTP-shaped traffic, a GIOP
// system exception (echoing the request id) for IIOP, a bare close for
// anything else. The client sees load shedding as a middleware-level
// fault it already knows how to handle, not a hang.
func (g *Gateway) reject(pc *network.PeekConn, s Sniff) {
	switch s.Class {
	case ClassHTTP:
		resp := &httpwire.Response{
			Status: 503,
			Reason: "Service Unavailable",
			Headers: map[string]string{
				"Retry-After": "1",
				"Connection":  "close",
			},
			Body: []byte("gateway: over capacity\n"),
		}
		conn := pc.Framed(network.HTTPFramer{})
		conn.SetDeadline(time.Now().Add(rejectTimeout))
		conn.Send(resp.Marshal())
		conn.Close()
	case ClassGIOP:
		conn := pc.Framed(network.GIOPFramer{})
		conn.SetDeadline(time.Now().Add(rejectTimeout))
		// The reject must echo the request id or the client cannot
		// correlate it; read the one request that is already (or nearly)
		// on the wire.
		var id uint64
		if data, err := conn.Recv(); err == nil {
			if req, err := g.giopCodec.Parse(data); err == nil {
				if n, err := req.GetInt("RequestID"); err == nil {
					id = uint64(n)
				}
			}
		}
		reply := giop.NewReply(id, giop.StatusSystemException,
			[]*message.Field{giop.StringParam("gateway: over capacity")})
		if wire, err := g.giopCodec.Compose(reply); err == nil {
			conn.Send(wire)
		}
		conn.Close()
	default:
		pc.Close()
	}
}

// Shutdown stops accepting and waits for connections still in the
// sniff phase to resolve; admitted connections belong to their
// mediators and drain with them.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.closeListener()
	done := make(chan struct{})
	go func() {
		g.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		g.closeSniffing()
		<-done
		return ctx.Err()
	}
}

// Close abruptly stops the gateway: the listener and every connection
// still being sniffed are closed. Admitted connections are owned by
// their mediators and are not touched.
func (g *Gateway) Close() error {
	g.closeListener()
	g.closeSniffing()
	g.wg.Wait()
	return nil
}

func (g *Gateway) closeListener() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.closed && g.listener != nil {
		g.listener.Close()
	}
	g.closed = true
}

func (g *Gateway) closeSniffing() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for c := range g.sniffing {
		c.Close()
		delete(g.sniffing, c)
	}
}

// gatedConn ties a route's admission slot to the connection's
// lifetime: the mediator closes the client conn when the session ends,
// which releases the slot exactly once.
type gatedConn struct {
	network.Conn
	adm      *admission
	released atomic.Bool
}

// Close implements network.Conn.
func (c *gatedConn) Close() error {
	if !c.released.Swap(true) {
		c.adm.release()
	}
	return c.Conn.Close()
}

// RouteStats is one route's counters snapshot.
type RouteStats struct {
	// Name identifies the route.
	Name string
	// Accepted counts connections admitted and handed to the target.
	Accepted uint64
	// Shed counts connections refused by admission control.
	Shed uint64
	// Dropped counts admitted connections lost to a draining target.
	Dropped uint64
	// Reloads counts target swaps (hot reloads).
	Reloads uint64
	// ActiveFlows is the current number of admitted, still-open
	// connections.
	ActiveFlows int64
}

// Stats is a point-in-time snapshot of the gateway's counters.
type Stats struct {
	// Conns counts connections accepted by the front-door listener.
	Conns uint64
	// Sniffed counts classifications by wire-class name.
	Sniffed map[string]uint64
	// Fallbacks counts sniffs no matcher claimed that went to the
	// default route.
	Fallbacks uint64
	// Unrouted counts sniffs dropped for want of any route.
	Unrouted uint64
	// Routes holds the per-route counters in declaration order.
	Routes []RouteStats
}

// Stats snapshots the gateway's counters.
func (g *Gateway) Stats() Stats {
	st := Stats{
		Conns:     g.conns.Load(),
		Sniffed:   make(map[string]uint64, len(g.sniffed)),
		Fallbacks: g.fallback.Load(),
		Unrouted:  g.unrouted.Load(),
	}
	for i := range g.sniffed {
		if n := g.sniffed[i].Load(); n > 0 {
			st.Sniffed[WireClass(i).String()] = n
		}
	}
	for _, rt := range g.routes {
		st.Routes = append(st.Routes, RouteStats{
			Name:        rt.name,
			Accepted:    rt.accepted.Load(),
			Shed:        rt.shed.Load(),
			Dropped:     rt.dropped.Load(),
			Reloads:     rt.reloads.Load(),
			ActiveFlows: rt.adm.active.Load(),
		})
	}
	sort.SliceStable(st.Routes, func(i, j int) bool { return st.Routes[i].Name < st.Routes[j].Name })
	return st
}
