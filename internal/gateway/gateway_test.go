package gateway

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"starlink/internal/message"
	"starlink/internal/network"
	"starlink/internal/protocol/giop"
	"starlink/internal/protocol/httpwire"
)

// fakeTarget records the connections a route hands it; tests drive the
// received conns directly.
type fakeTarget struct {
	mu     sync.Mutex
	conns  []network.Conn
	refuse int // ServeConn errors this many times before accepting
}

func (f *fakeTarget) ServeConn(c network.Conn) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.refuse > 0 {
		f.refuse--
		return context.Canceled
	}
	f.conns = append(f.conns, c)
	return nil
}

func (f *fakeTarget) Shutdown(context.Context) error { return nil }
func (f *fakeTarget) Close() error                   { return nil }

// wait polls until the target has received n connections.
func (f *fakeTarget) wait(t *testing.T, n int) network.Conn {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		f.mu.Lock()
		got := len(f.conns)
		var last network.Conn
		if got > 0 {
			last = f.conns[got-1]
		}
		f.mu.Unlock()
		if got >= n {
			return last
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("target received %d conns, want %d", len(f.conns), n)
	return nil
}

func startGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// giopWire composes an Add request and runs it through the GIOP framer
// (which patches the MessageSize header bytes) the way a real client
// connection would put it on the wire.
func giopWire(t *testing.T, id uint64) []byte {
	t.Helper()
	codec, err := giop.NewCodec()
	if err != nil {
		t.Fatal(err)
	}
	wire, err := codec.Compose(giop.NewRequest(id, "obj", "Add", []*message.Field{giop.IntParam(1), giop.IntParam(2)}))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := (network.GIOPFramer{}).WriteMessage(&buf, wire); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRoutingBySniff drives one listener with a GIOP and an HTTP
// client concurrently; each must land on its own mediator purely by
// wire classification.
func TestRoutingBySniff(t *testing.T) {
	giopT, httpT := &fakeTarget{}, &fakeTarget{}
	g := startGateway(t, Config{Routes: []RouteConfig{
		{Name: "iiop", Match: Matcher{Class: ClassGIOP}, Framer: network.GIOPFramer{}, Target: giopT},
		{Name: "web", Match: Matcher{Class: ClassHTTP}, Framer: network.HTTPFramer{}, Target: httpT},
	}})

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c := dialRaw(t, g.Addr())
		c.Write(giopWire(t, 1))
	}()
	go func() {
		defer wg.Done()
		c := dialRaw(t, g.Addr())
		c.Write([]byte("GET /x HTTP/1.1\r\nHost: a\r\n\r\n"))
	}()
	wg.Wait()

	gc := giopT.wait(t, 1)
	if data, err := gc.Recv(); err != nil || string(data[:4]) != "GIOP" {
		t.Errorf("giop route Recv = %q, %v; want replayed GIOP message", data, err)
	}
	hc := httpT.wait(t, 1)
	if data, err := hc.Recv(); err != nil {
		t.Errorf("http route Recv: %v", err)
	} else if req, err := httpwire.ParseRequest(data); err != nil || req.Path() != "/x" {
		t.Errorf("http route got %q (%v), want GET /x", data, err)
	}

	st := g.Stats()
	if st.Conns != 2 || st.Sniffed["giop"] != 1 || st.Sniffed["http"] != 1 {
		t.Errorf("stats = %+v, want 2 conns, one sniff each", st)
	}
}

// TestPathAndPayloadRouting tells two HTTP routes apart by path prefix
// and body kind.
func TestPathAndPayloadRouting(t *testing.T) {
	xmlT, jsonT, restT := &fakeTarget{}, &fakeTarget{}, &fakeTarget{}
	g := startGateway(t, Config{Routes: []RouteConfig{
		{Name: "xmlrpc", Match: Matcher{Class: ClassHTTP, PathPrefix: "/rpc", Payload: ClassXML},
			Framer: network.HTTPFramer{}, Target: xmlT},
		{Name: "jsonrpc", Match: Matcher{Class: ClassHTTP, PathPrefix: "/rpc", Payload: ClassJSON},
			Framer: network.HTTPFramer{}, Target: jsonT},
		{Name: "rest", Match: Matcher{Class: ClassHTTP},
			Framer: network.HTTPFramer{}, Target: restT},
	}})

	send := func(body string) {
		c := dialRaw(t, g.Addr())
		c.Write([]byte("POST /rpc HTTP/1.1\r\nContent-Length: " +
			itoa(len(body)) + "\r\n\r\n" + body))
	}
	send("<methodCall/>")
	send("{\"method\":1}")
	c := dialRaw(t, g.Addr())
	c.Write([]byte("GET /photos HTTP/1.1\r\n\r\n"))

	xmlT.wait(t, 1)
	jsonT.wait(t, 1)
	restT.wait(t, 1)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for ; n > 0; n /= 10 {
		b = append([]byte{byte('0' + n%10)}, b...)
	}
	return string(b)
}

// TestDefaultRouteFallback sends garbage: no matcher claims it, so it
// must land on the default route; without a default it is dropped.
func TestDefaultRouteFallback(t *testing.T) {
	def := &fakeTarget{}
	g := startGateway(t, Config{
		Routes: []RouteConfig{
			{Name: "web", Match: Matcher{Class: ClassHTTP}, Framer: network.HTTPFramer{}, Target: def},
		},
		Default:      "web",
		SniffTimeout: 100 * time.Millisecond,
	})
	c := dialRaw(t, g.Addr())
	c.Write([]byte{0xde, 0xad, 0xbe, 0xef})
	def.wait(t, 1)
	if st := g.Stats(); st.Fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", st.Fallbacks)
	}

	// No default: the connection is closed, not forwarded.
	g2 := startGateway(t, Config{
		Routes: []RouteConfig{
			{Name: "iiop", Match: Matcher{Class: ClassGIOP}, Framer: network.GIOPFramer{}, Target: &fakeTarget{}},
		},
		SniffTimeout: 100 * time.Millisecond,
	})
	c2 := dialRaw(t, g2.Addr())
	c2.Write([]byte("junk junk junk"))
	c2.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := c2.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("unrouted conn read = %v, want EOF", err)
	}
	if st := g2.Stats(); st.Unrouted != 1 {
		t.Errorf("unrouted = %d, want 1", st.Unrouted)
	}
}

// TestShedHTTP caps a route at one concurrent flow: the second client
// must get a protocol-correct 503 quickly, and closing the first
// connection must free the slot for a third.
func TestShedHTTP(t *testing.T) {
	target := &fakeTarget{}
	g := startGateway(t, Config{Routes: []RouteConfig{
		{Name: "web", Match: Matcher{Class: ClassHTTP}, Admission: AdmissionPolicy{MaxFlows: 1},
			Framer: network.HTTPFramer{}, Target: target},
	}})

	first := dialRaw(t, g.Addr())
	first.Write([]byte("GET /hold HTTP/1.1\r\n\r\n"))
	held := target.wait(t, 1)

	second := dialRaw(t, g.Addr())
	start := time.Now()
	second.Write([]byte("GET /x HTTP/1.1\r\n\r\n"))
	second.SetReadDeadline(time.Now().Add(3 * time.Second))
	raw, err := io.ReadAll(second)
	shedLatency := time.Since(start)
	if err != nil {
		t.Fatalf("reading shed response: %v", err)
	}
	resp, err := httpwire.ParseResponse(raw)
	if err != nil {
		t.Fatalf("parsing shed response %q: %v", raw, err)
	}
	if resp.Status != 503 {
		t.Errorf("shed status = %d, want 503", resp.Status)
	}
	if shedLatency > time.Second {
		t.Errorf("shed took %v, want a cheap reject", shedLatency)
	}
	if st := g.Stats(); st.Routes[0].Shed != 1 || st.Routes[0].ActiveFlows != 1 {
		t.Errorf("route stats = %+v, want shed=1 active=1", st.Routes[0])
	}

	// Releasing the admitted connection frees the slot.
	held.Close()
	deadline := time.Now().Add(2 * time.Second)
	for g.Stats().Routes[0].ActiveFlows != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	third := dialRaw(t, g.Addr())
	third.Write([]byte("GET /y HTTP/1.1\r\n\r\n"))
	target.wait(t, 2)
}

// TestShedGIOP: an over-limit IIOP client must receive a GIOP system
// exception echoing its request id — a middleware-level fault its ORB
// already understands.
func TestShedGIOP(t *testing.T) {
	target := &fakeTarget{}
	g := startGateway(t, Config{Routes: []RouteConfig{
		{Name: "iiop", Match: Matcher{Class: ClassGIOP}, Admission: AdmissionPolicy{MaxFlows: 1},
			Framer: network.GIOPFramer{}, Target: target},
	}})

	first := dialRaw(t, g.Addr())
	first.Write(giopWire(t, 1))
	target.wait(t, 1)

	second := dialRaw(t, g.Addr())
	second.Write(giopWire(t, 42))
	second.SetReadDeadline(time.Now().Add(3 * time.Second))
	data, err := network.GIOPFramer{}.ReadMessage(bufio.NewReader(second))
	if err != nil {
		t.Fatalf("reading shed reply: %v", err)
	}
	codec, err := giop.NewCodec()
	if err != nil {
		t.Fatal(err)
	}
	reply, err := codec.Parse(data)
	if err != nil {
		t.Fatalf("parsing shed reply: %v", err)
	}
	if id, _ := reply.GetInt("RequestID"); id != 42 {
		t.Errorf("shed reply RequestID = %d, want 42 echoed", id)
	}
	if status, _ := reply.GetInt("ReplyStatus"); uint64(status) != giop.StatusSystemException {
		t.Errorf("shed reply status = %d, want system exception (%d)", status, giop.StatusSystemException)
	}
}

// TestRateLimitShed exhausts a token bucket and checks the overflow is
// shed while the bucket's burst is honoured.
func TestRateLimitShed(t *testing.T) {
	target := &fakeTarget{}
	g := startGateway(t, Config{Routes: []RouteConfig{
		{Name: "web", Match: Matcher{Class: ClassHTTP}, Admission: AdmissionPolicy{Rate: 0.001, Burst: 2},
			Framer: network.HTTPFramer{}, Target: target},
	}})
	for i := 0; i < 4; i++ {
		c := dialRaw(t, g.Addr())
		c.Write([]byte("GET /x HTTP/1.1\r\n\r\n"))
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := g.Stats().Routes[0]
		if st.Accepted+st.Shed == 4 {
			if st.Accepted != 2 || st.Shed != 2 {
				t.Errorf("accepted=%d shed=%d, want 2/2", st.Accepted, st.Shed)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("connections unresolved: %+v", g.Stats().Routes[0])
}

// TestHotSwap repoints a route mid-traffic: connections admitted
// before the swap stay with the old target, connections after it land
// on the new one, and the reload counter ticks.
func TestHotSwap(t *testing.T) {
	oldT, newT := &fakeTarget{}, &fakeTarget{}
	g := startGateway(t, Config{Routes: []RouteConfig{
		{Name: "web", Match: Matcher{Class: ClassHTTP}, Framer: network.HTTPFramer{}, Target: oldT},
	}})

	c1 := dialRaw(t, g.Addr())
	c1.Write([]byte("GET /old HTTP/1.1\r\n\r\n"))
	held := oldT.wait(t, 1)

	prev, err := g.Swap("web", newT)
	if err != nil {
		t.Fatal(err)
	}
	if prev != Target(oldT) {
		t.Errorf("Swap returned %v, want the old target", prev)
	}

	c2 := dialRaw(t, g.Addr())
	c2.Write([]byte("GET /new HTTP/1.1\r\n\r\n"))
	newT.wait(t, 1)

	// The pre-swap connection still flows on the old target.
	if _, err := held.Recv(); err != nil {
		t.Errorf("pre-swap conn broken by swap: %v", err)
	}
	if st := g.Stats(); st.Routes[0].Reloads != 1 {
		t.Errorf("reloads = %d, want 1", st.Routes[0].Reloads)
	}

	if _, err := g.Swap("nope", newT); err == nil {
		t.Error("Swap on unknown route succeeded")
	}
}

// TestSwapRetryOnDraining: a target that refuses the first ServeConn
// (mid-swap drain) must not cost the client its connection — the
// gateway re-loads the route pointer and retries once.
func TestSwapRetryOnDraining(t *testing.T) {
	target := &fakeTarget{refuse: 1}
	g := startGateway(t, Config{Routes: []RouteConfig{
		{Name: "web", Match: Matcher{Class: ClassHTTP}, Framer: network.HTTPFramer{}, Target: target},
	}})
	c := dialRaw(t, g.Addr())
	c.Write([]byte("GET /x HTTP/1.1\r\n\r\n"))
	target.wait(t, 1)
	if st := g.Stats(); st.Routes[0].Accepted != 1 || st.Routes[0].Dropped != 0 {
		t.Errorf("stats = %+v, want accepted=1 dropped=0", st.Routes[0])
	}

	// Two consecutive refusals exhaust the retry: the conn is dropped
	// and the admission slot released.
	target.mu.Lock()
	target.refuse = 2
	target.mu.Unlock()
	c2 := dialRaw(t, g.Addr())
	c2.Write([]byte("GET /y HTTP/1.1\r\n\r\n"))
	deadline := time.Now().Add(3 * time.Second)
	for g.Stats().Routes[0].Dropped == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	st := g.Stats().Routes[0]
	if st.Dropped != 1 || st.ActiveFlows != 1 {
		t.Errorf("stats = %+v, want dropped=1 active=1 (only the held conn)", st)
	}
}

// TestGatewayConfigValidation exercises New's rejection paths.
func TestGatewayConfigValidation(t *testing.T) {
	ft := &fakeTarget{}
	cases := []Config{
		{},
		{Routes: []RouteConfig{{Name: "", Framer: network.HTTPFramer{}, Target: ft}}},
		{Routes: []RouteConfig{{Name: "a", Framer: network.HTTPFramer{}, Target: ft}, {Name: "a", Framer: network.HTTPFramer{}, Target: ft}}},
		{Routes: []RouteConfig{{Name: "a", Target: ft}}},
		{Routes: []RouteConfig{{Name: "a", Framer: network.HTTPFramer{}}}},
		{Routes: []RouteConfig{{Name: "a", Framer: network.HTTPFramer{}, Target: ft}}, Default: "missing"},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config", i)
		}
	}
}

// TestGatewayShutdown: Shutdown stops accepting but leaves admitted
// connections to their mediators; Close is idempotent.
func TestGatewayShutdown(t *testing.T) {
	target := &fakeTarget{}
	g, err := New(Config{Routes: []RouteConfig{
		{Name: "web", Match: Matcher{Class: ClassHTTP}, Framer: network.HTTPFramer{}, Target: target},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c := dialRaw(t, g.Addr())
	c.Write([]byte("GET /x HTTP/1.1\r\n\r\n"))
	held := target.wait(t, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The admitted connection still works: the gateway does not own it.
	go c.Write([]byte("GET /again HTTP/1.1\r\n\r\n"))
	if _, err := held.Recv(); err != nil {
		t.Errorf("admitted conn broken by gateway shutdown: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Errorf("Close after Shutdown: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
