// Package gateway is Starlink's mediation front door: one listener that
// hosts many deployed mediators at once. Each accepted connection is
// classified by sniffing its first bytes (GIOP magic, HTTP request
// line, XML/JSON payload heuristics), routed to the mediator its route
// names, and admission-controlled on the way in — a token-bucket rate
// limit and a max-concurrent-flows cap per route, with over-limit
// clients answered by a cheap protocol-correct reject (HTTP 503, GIOP
// system exception) instead of being accepted and stalled. Routes can
// be hot-swapped at runtime: a reload builds the new mediator, points
// the route at it atomically, and drains the old one without dropping
// in-flight flows.
//
// The paper (§2, §6) deploys mediators "in the network" between
// arbitrary client/service pairs; this package is the runtime layer
// that makes a fleet of them operable as one service. Deployment and
// flow policy live here, not in the protocol engines — the engine keeps
// interpreting automata, the gateway decides who gets to reach one.
package gateway

import (
	"bytes"
	"strings"
	"time"

	"starlink/internal/network"
)

// WireClass is the protocol family a sniffed connection appears to
// speak, judged from its first bytes.
type WireClass int

// Wire classes, in sniffing order.
const (
	// ClassUnknown: nothing recognisable arrived (garbage, a stalled
	// client, or an empty connection). Routing falls back to the route
	// table's default.
	ClassUnknown WireClass = iota
	// ClassGIOP: the 4-byte "GIOP" magic of an IIOP stream.
	ClassGIOP
	// ClassHTTP: an HTTP/1.x request line (covers XML-RPC, SOAP, REST
	// and JSON-RPC bindings, which all ride HTTP framing).
	ClassHTTP
	// ClassXML: a bare XML document with no HTTP envelope — a raw
	// XML-RPC/SOAP payload heuristic.
	ClassXML
	// ClassJSON: a bare JSON value with no HTTP envelope — a raw
	// JSON-RPC payload heuristic.
	ClassJSON
)

// String names the class for logs and metrics labels.
func (c WireClass) String() string {
	switch c {
	case ClassGIOP:
		return "giop"
	case ClassHTTP:
		return "http"
	case ClassXML:
		return "xml"
	case ClassJSON:
		return "json"
	default:
		return "unknown"
	}
}

// Sniff is the result of classifying a connection's first bytes.
type Sniff struct {
	// Class is the protocol family detected.
	Class WireClass
	// Method and Path are filled for ClassHTTP from the request line
	// (Path keeps the query string off).
	Method, Path string
	// Body hints at the HTTP payload kind when the sniff window reached
	// it: ClassXML or ClassJSON for XML resp. JSON bodies, ClassUnknown
	// otherwise. Routes matching on payload use it to tell an XML-RPC
	// POST from a JSON-RPC POST on the same path.
	Body WireClass
}

// SniffBytes classifies a wire prefix. It is pure and total: any input,
// including truncated or hostile bytes, yields a classification (at
// worst ClassUnknown) without blocking or panicking.
func SniffBytes(b []byte) Sniff {
	if len(b) >= 4 && string(b[:4]) == "GIOP" {
		return Sniff{Class: ClassGIOP}
	}
	if s, ok := sniffHTTP(b); ok {
		return s
	}
	switch payloadClass(b) {
	case ClassXML:
		return Sniff{Class: ClassXML}
	case ClassJSON:
		return Sniff{Class: ClassJSON}
	}
	return Sniff{Class: ClassUnknown}
}

// httpMethods are the request-line verbs the sniffer recognises; they
// cover every binding the framework deploys over HTTP.
var httpMethods = []string{"GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS", "PATCH"}

// sniffHTTP recognises an HTTP/1.x request line prefix: METHOD SP
// target SP "HTTP/". The full line need not have arrived — a prefix
// that can still only be HTTP counts once the method and target are
// complete.
func sniffHTTP(b []byte) (Sniff, bool) {
	method, rest, ok := cutToken(b)
	if !ok || !isHTTPMethod(method) {
		return Sniff{}, false
	}
	target, rest, ok := cutToken(rest)
	if !ok || len(target) == 0 {
		return Sniff{}, false
	}
	if !bytes.HasPrefix(rest, []byte("HTTP/")) && !bytes.HasPrefix([]byte("HTTP/"), rest) {
		return Sniff{}, false
	}
	path := string(target)
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	return Sniff{
		Class:  ClassHTTP,
		Method: string(method),
		Path:   path,
		Body:   payloadClass(httpBody(b)),
	}, true
}

// cutToken splits off the next space-delimited token; ok is false while
// the token is still incomplete (no delimiter seen yet).
func cutToken(b []byte) (token, rest []byte, ok bool) {
	i := bytes.IndexByte(b, ' ')
	if i < 0 {
		return nil, nil, false
	}
	return b[:i], b[i+1:], true
}

func isHTTPMethod(tok []byte) bool {
	for _, m := range httpMethods {
		if string(tok) == m {
			return true
		}
	}
	return false
}

// httpBody returns the sniffed bytes past the header block, or nil if
// the blank line is outside the window.
func httpBody(b []byte) []byte {
	if i := bytes.Index(b, []byte("\r\n\r\n")); i >= 0 {
		return b[i+4:]
	}
	if i := bytes.Index(b, []byte("\n\n")); i >= 0 {
		return b[i+2:]
	}
	return nil
}

// payloadClass applies the XML/JSON payload heuristics to a (possibly
// empty) byte prefix.
func payloadClass(b []byte) WireClass {
	b = bytes.TrimLeft(b, " \t\r\n")
	if len(b) == 0 {
		return ClassUnknown
	}
	switch b[0] {
	case '<':
		return ClassXML
	case '{', '[':
		return ClassJSON
	}
	return ClassUnknown
}

// DefaultSniffBytes and DefaultSniffTimeout bound the sniff window:
// how many bytes are peeked and how long the gateway waits for them. A
// slow-trickle or silent client costs at most the timeout before the
// connection falls back to the default route.
const (
	DefaultSniffBytes   = 256
	DefaultSniffTimeout = 500 * time.Millisecond
)

// sniffConn classifies a live connection. It peeks in growing windows
// (so a 4-byte GIOP magic classifies without waiting for bytes that
// will never come) up to maxBytes, never waiting past timeout; a
// client that trickles, stalls or sends garbage costs at most the
// timeout before falling back to ClassUnknown. The peeked bytes stay
// buffered for the chosen mediator's framer to replay.
func sniffConn(pc *network.PeekConn, maxBytes int, timeout time.Duration) Sniff {
	if maxBytes <= 0 {
		maxBytes = DefaultSniffBytes
	}
	if timeout <= 0 {
		timeout = DefaultSniffTimeout
	}
	deadline := time.Now().Add(timeout)
	for n := 8; ; {
		buf, err := pc.Peek(n, deadline)
		// One network read usually buffers a whole client segment;
		// classify everything that arrived, not just the n asked for.
		if b := pc.Buffered(); b > len(buf) {
			buf, _ = pc.Peek(b, deadline)
		}
		s := SniffBytes(buf)
		if s.Class != ClassUnknown || err != nil || len(buf) >= maxBytes || n >= maxBytes {
			return s
		}
		n *= 2
		if n > maxBytes {
			n = maxBytes
		}
	}
}
