package gateway

import (
	"sync"
	"sync/atomic"
	"time"
)

// AdmissionPolicy is one route's admission-control configuration. The
// zero value admits everything.
type AdmissionPolicy struct {
	// Rate is the sustained admission rate in connections per second
	// (token-bucket refill). 0 means unlimited.
	Rate float64
	// Burst is the bucket depth — how many connections may arrive at
	// once before the rate bites. 0 with a non-zero Rate means a depth
	// of max(1, Rate).
	Burst int
	// MaxFlows caps the route's concurrently-admitted connections; an
	// arrival past the cap is shed immediately rather than queued
	// behind stalled flows. 0 means unlimited.
	MaxFlows int
}

// limited reports whether the policy constrains anything.
func (p AdmissionPolicy) limited() bool {
	return p.Rate > 0 || p.MaxFlows > 0
}

// tokenBucket is a classic refill-on-demand token bucket. It is cheap
// enough for the accept path: one mutex, no timers, no goroutines.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket depth
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	depth := float64(burst)
	if depth <= 0 {
		depth = rate
		if depth < 1 {
			depth = 1
		}
	}
	return &tokenBucket{rate: rate, burst: depth, tokens: depth, last: time.Now()}
}

// take consumes one token if available.
func (b *tokenBucket) take(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// admission is one route's runtime admission state.
type admission struct {
	policy AdmissionPolicy
	bucket *tokenBucket // nil when Rate == 0
	active atomic.Int64 // concurrently admitted connections
}

func newAdmission(p AdmissionPolicy) *admission {
	a := &admission{policy: p}
	if p.Rate > 0 {
		a.bucket = newTokenBucket(p.Rate, p.Burst)
	}
	return a
}

// admit decides one arrival. On success the connection holds a flow
// slot until release is called.
func (a *admission) admit(now time.Time) (ok bool, reason string) {
	if a.policy.MaxFlows > 0 {
		if n := a.active.Add(1); n > int64(a.policy.MaxFlows) {
			a.active.Add(-1)
			return false, "max concurrent flows"
		}
	} else {
		a.active.Add(1)
	}
	if a.bucket != nil && !a.bucket.take(now) {
		a.active.Add(-1)
		return false, "rate limit"
	}
	return true, ""
}

// release returns an admitted connection's flow slot.
func (a *admission) release() { a.active.Add(-1) }
