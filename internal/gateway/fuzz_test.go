package gateway

import (
	"bytes"
	"testing"
)

// FuzzSniff throws arbitrary wire prefixes at the sniffer. SniffBytes
// is the gateway's only contact with unauthenticated bytes before
// admission control, so it must be total: classify anything, panic on
// nothing, and keep its own invariants.
func FuzzSniff(f *testing.F) {
	seeds := [][]byte{
		[]byte("GIOP\x01\x00\x00\x00\x00\x00\x00\x10"),
		[]byte("GIO"),
		[]byte("GET /photos?tag=x HTTP/1.1\r\nHost: example\r\n\r\n"),
		[]byte("POST /services/xmlrpc HTTP/1.1\r\nContent-Length: 13\r\n\r\n<methodCall/>"),
		[]byte("POST /rpc HTTP/1.1\r\n\r\n{\"jsonrpc\":\"2.0\",\"method\":\"add\"}"),
		[]byte("PUT /a HT"),
		[]byte("<?xml version=\"1.0\"?><doc/>"),
		[]byte("{\"a\": [1, 2]}"),
		[]byte("  [null]"),
		[]byte("STEAL /x HTTP/1.1\r\n"),
		[]byte("\x00\x01\x02\xff\xfe"),
		[]byte(""),
		[]byte(" \t\r\n"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s := SniffBytes(data)
		switch s.Class {
		case ClassGIOP:
			if !bytes.HasPrefix(data, []byte("GIOP")) {
				t.Fatalf("classified giop without magic: %q", data)
			}
		case ClassHTTP:
			if s.Method == "" {
				t.Fatalf("http sniff with empty method: %+v from %q", s, data)
			}
			if bytes.ContainsAny([]byte(s.Path), "?") {
				t.Fatalf("query survived in path %q", s.Path)
			}
		case ClassXML, ClassJSON, ClassUnknown:
			if s.Method != "" || s.Path != "" {
				t.Fatalf("non-http sniff carries request line: %+v from %q", s, data)
			}
		default:
			t.Fatalf("impossible class %d from %q", s.Class, data)
		}
		// A prefix classified GIOP or HTTP must classify the same with
		// more of the same stream appended (framing is prefix-stable).
		if s.Class == ClassGIOP {
			if again := SniffBytes(append(data[:len(data):len(data)], "more"...)); again.Class != ClassGIOP {
				t.Fatalf("giop classification not prefix-stable: %q", data)
			}
		}
	})
}
