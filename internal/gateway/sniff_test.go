package gateway

import (
	"net"
	"testing"
	"time"

	"starlink/internal/network"
)

func TestSniffBytes(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want Sniff
	}{
		{"giop magic", "GIOP\x01\x00\x00\x00\x00\x00\x00\x10body", Sniff{Class: ClassGIOP}},
		{"giop magic alone", "GIOP", Sniff{Class: ClassGIOP}},
		{"giop truncated", "GIO", Sniff{Class: ClassUnknown}},
		{"http get", "GET /photos HTTP/1.1\r\nHost: x\r\n\r\n",
			Sniff{Class: ClassHTTP, Method: "GET", Path: "/photos"}},
		{"http query stripped", "DELETE /a?q=1 HTTP/1.0\r\n\r\n",
			Sniff{Class: ClassHTTP, Method: "DELETE", Path: "/a"}},
		{"http partial version", "POST /services/soap HT",
			Sniff{Class: ClassHTTP, Method: "POST", Path: "/services/soap"}},
		{"http xml body", "POST /rpc HTTP/1.1\r\nContent-Length: 20\r\n\r\n<methodCall/>",
			Sniff{Class: ClassHTTP, Method: "POST", Path: "/rpc", Body: ClassXML}},
		{"http json body", "POST /rpc HTTP/1.1\r\n\r\n{\"method\":\"add\"}",
			Sniff{Class: ClassHTTP, Method: "POST", Path: "/rpc", Body: ClassJSON}},
		{"http incomplete method", "GET", Sniff{Class: ClassUnknown}},
		{"http incomplete target", "GET ", Sniff{Class: ClassUnknown}},
		{"http bogus verb", "STEAL /x HTTP/1.1\r\n", Sniff{Class: ClassUnknown}},
		{"http wrong version prefix", "GET /x XTTP/1.1\r\n", Sniff{Class: ClassUnknown}},
		{"raw xml", "<?xml version=\"1.0\"?><methodCall/>", Sniff{Class: ClassXML}},
		{"raw xml leading space", "  \r\n<doc/>", Sniff{Class: ClassXML}},
		{"raw json object", "{\"jsonrpc\":\"2.0\"}", Sniff{Class: ClassJSON}},
		{"raw json array", " [1,2,3]", Sniff{Class: ClassJSON}},
		{"empty", "", Sniff{Class: ClassUnknown}},
		{"whitespace only", " \t\r\n", Sniff{Class: ClassUnknown}},
		{"binary garbage", "\x00\x01\x02\xff\xfe", Sniff{Class: ClassUnknown}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := SniffBytes([]byte(tc.in)); got != tc.want {
				t.Errorf("SniffBytes(%q) = %+v, want %+v", tc.in, got, tc.want)
			}
		})
	}
}

// sniffPipe runs sniffConn against one end of a pipe while feed writes
// to the other, and reports the classification and how long it took.
func sniffPipe(t *testing.T, timeout time.Duration, feed func(net.Conn)) (Sniff, time.Duration) {
	t.Helper()
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go feed(client)
	start := time.Now()
	s := sniffConn(network.NewPeekConn(server), 0, timeout)
	return s, time.Since(start)
}

func TestSniffConn(t *testing.T) {
	const timeout = 400 * time.Millisecond
	// The assertion bound is generous (scheduler noise), but well below
	// a blocked read: the sniffer must never wait past its deadline.
	const slack = 2 * time.Second

	t.Run("whole message at once", func(t *testing.T) {
		s, took := sniffPipe(t, timeout, func(c net.Conn) {
			c.Write([]byte("GIOP\x01\x00\x00\x00\x00\x00\x00\x00"))
		})
		if s.Class != ClassGIOP {
			t.Errorf("class = %v, want giop", s.Class)
		}
		if took > timeout {
			t.Errorf("classification of an immediate write took %v (> %v)", took, timeout)
		}
	})

	t.Run("slow trickle", func(t *testing.T) {
		s, took := sniffPipe(t, timeout, func(c net.Conn) {
			for _, chunk := range []string{"PO", "ST /serv", "ices/xmlrpc HTT"} {
				c.Write([]byte(chunk))
				time.Sleep(30 * time.Millisecond)
			}
		})
		if s.Class != ClassHTTP || s.Path != "/services/xmlrpc" {
			t.Errorf("sniff = %+v, want http /services/xmlrpc", s)
		}
		if took > timeout+slack {
			t.Errorf("trickle sniff took %v, deadline not honoured", took)
		}
	})

	t.Run("silent client", func(t *testing.T) {
		s, took := sniffPipe(t, timeout, func(net.Conn) {})
		if s.Class != ClassUnknown {
			t.Errorf("class = %v, want unknown", s.Class)
		}
		if took > timeout+slack {
			t.Errorf("silent client held the sniffer %v (timeout %v)", took, timeout)
		}
	})

	t.Run("garbage then stall", func(t *testing.T) {
		s, took := sniffPipe(t, timeout, func(c net.Conn) {
			c.Write([]byte{0x00, 0xde, 0xad})
		})
		if s.Class != ClassUnknown {
			t.Errorf("class = %v, want unknown", s.Class)
		}
		if took > timeout+slack {
			t.Errorf("garbage sniff took %v, deadline not honoured", took)
		}
	})

	t.Run("disconnect mid-sniff", func(t *testing.T) {
		s, took := sniffPipe(t, timeout, func(c net.Conn) {
			c.Write([]byte("GE"))
			c.Close()
		})
		if s.Class != ClassUnknown {
			t.Errorf("class = %v, want unknown", s.Class)
		}
		if took > timeout+slack {
			t.Errorf("disconnect sniff took %v", took)
		}
	})
}

// TestSniffConnReplay checks that the bytes consumed by sniffing are
// replayed losslessly once the connection is framed for a mediator.
func TestSniffConnReplay(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	full := "POST /rpc HTTP/1.1\r\nContent-Length: 7\r\n\r\n<a>b</a"
	go client.Write([]byte(full))
	pc := network.NewPeekConn(server)
	s := sniffConn(pc, 0, time.Second)
	if s.Class != ClassHTTP {
		t.Fatalf("class = %v, want http", s.Class)
	}
	conn := pc.Framed(network.HTTPFramer{})
	defer conn.Close()
	msg, err := conn.Recv()
	if err != nil {
		t.Fatalf("Recv after sniff: %v", err)
	}
	if string(msg) != full {
		t.Errorf("framed message = %q, want the sniffed prefix replayed (%q)", msg, full)
	}
}
