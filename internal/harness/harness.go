// Package harness runs the paper-reproduction experiments end to end and
// reports their outcomes: each E-number matches the experiment index in
// DESIGN.md and the recorded results in EXPERIMENTS.md. The benchharness
// command prints these; the repository-level benchmarks reuse the same
// fixtures.
package harness

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"starlink/internal/automata"
	"starlink/internal/bind"
	"starlink/internal/bridge"
	"starlink/internal/casestudy"
	"starlink/internal/engine"
	"starlink/internal/message"
	"starlink/internal/network"
	"starlink/internal/observe"
	"starlink/internal/protocol/giop"
	"starlink/internal/protocol/httpwire"
	"starlink/internal/protocol/rest"
	"starlink/internal/protocol/slp"
	"starlink/internal/protocol/soap"
	"starlink/internal/protocol/ssdp"
	"starlink/internal/protocol/xmlrpc"
	"starlink/internal/services/photostore"
	"starlink/internal/services/picasa"
)

// Result is one experiment's outcome.
type Result struct {
	// ID is the experiment identifier ("E1".."E12").
	ID string
	// Artifact names the paper table/figure reproduced.
	Artifact string
	// Detail summarises what was measured.
	Detail string
	// Err is non-nil when the experiment failed.
	Err error
}

// OK reports success.
func (r Result) OK() bool { return r.Err == nil }

// String renders one report line.
func (r Result) String() string {
	status := "OK"
	if r.Err != nil {
		status = "FAIL: " + r.Err.Error()
	}
	return fmt.Sprintf("%-4s %-28s %-60s %s", r.ID, r.Artifact, r.Detail, status)
}

// RunAll executes every experiment in order.
func RunAll() []Result {
	return []Result{
		E1(), E2(), E3(), E4(), E5(), E6(), E7(), E8(), E9(), E10(), E11(), E12(), E13(), E14(), E16(), E17(), E18(), E19(),
	}
}

// E1 validates the Fig. 2 API usage automata.
func E1() Result {
	r := Result{ID: "E1", Artifact: "Fig.2 usage automata"}
	fl, pi := casestudy.FlickrUsage(), casestudy.PicasaUsage()
	if err := fl.Validate(); err != nil {
		r.Err = err
		return r
	}
	if err := pi.Validate(); err != nil {
		r.Err = err
		return r
	}
	r.Detail = fmt.Sprintf("AFlickr: %d ops, APicasa: %d ops", len(fl.Operations()), len(pi.Operations()))
	return r
}

// E2 merges the Fig. 2 automata automatically and checks the Fig. 3
// structure.
func E2() Result {
	r := Result{ID: "E2", Artifact: "Fig.3 merged automaton"}
	m, err := automata.Merge(casestudy.FlickrUsage(), casestudy.PicasaUsage(), automata.MergeOptions{
		Equiv: casestudy.Equivalence(),
	})
	if err != nil {
		r.Err = err
		return r
	}
	bic := len(m.BicoloredStates())
	r.Detail = fmt.Sprintf("%s, %d bicolored states, getInfo %s",
		m.Strength, bic, m.Pairings[1].Kind)
	if m.Strength != automata.StronglyMerged || bic != 6 {
		r.Err = fmt.Errorf("expected strongly merged with 6 bicolored states")
	}
	return r
}

// E3 round-trips GIOP messages through the binary MDL codec (Figs. 4-5).
func E3() Result {
	r := Result{ID: "E3", Artifact: "Fig.4/5 GIOP MDL"}
	codec, err := giop.NewCodec()
	if err != nil {
		r.Err = err
		return r
	}
	req := giop.NewRequest(7, "calc", "Add",
		[]*message.Field{giop.IntParam(20), giop.IntParam(22)})
	wire, err := codec.Compose(req)
	if err != nil {
		r.Err = err
		return r
	}
	back, err := codec.Parse(wire)
	if err != nil {
		r.Err = err
		return r
	}
	op, _ := back.GetString("Operation")
	p0, _ := back.GetInt("ParameterArray.Parameter[0]")
	p1, _ := back.GetInt("ParameterArray.Parameter[1]")
	r.Detail = fmt.Sprintf("%d-byte GIOPRequest round-trips; %s(%d,%d)", len(wire), op, p0, p1)
	if op != "Add" || p0 != 20 || p1 != 22 {
		r.Err = fmt.Errorf("round trip lost data")
	}
	return r
}

// E4 runs the Fig. 7/8 Add/Plus scenario through an automatically merged
// and bound mediator.
func E4() Result {
	r := Result{ID: "E4", Artifact: "Fig.7/8 Add->Plus"}
	srv, err := soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
		"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			x, _ := strconv.Atoi(findParam(params, "x"))
			y, _ := strconv.Atoi(findParam(params, "y"))
			return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	})
	if err != nil {
		r.Err = err
		return r
	}
	defer srv.Close()
	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		r.Err = err
		return r
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		r.Err = err
		return r
	}
	med, err := engine.New(engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: srv.Addr()},
		},
	})
	if err != nil {
		r.Err = err
		return r
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		r.Err = err
		return r
	}
	defer med.Close()
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		r.Err = err
		return r
	}
	defer client.Close()
	results, err := client.Invoke("Add", giop.IntParam(20), giop.IntParam(22))
	if err != nil {
		r.Err = err
		return r
	}
	got := results[0].ValueString()
	r.Detail = "IIOP Add(20,22) answered by SOAP Plus = " + got
	if got != "42" {
		r.Err = fmt.Errorf("got %s, want 42", got)
	}
	return r
}

func findParam(params []soap.Param, name string) string {
	for _, p := range params {
		if p.Name == name {
			return p.Value
		}
	}
	return ""
}

// caseStudyEnv wires a Picasa service and an XML-RPC mediator.
type caseStudyEnv struct {
	store *photostore.Store
	pic   *picasa.Service
	med   *engine.Mediator
}

func (e *caseStudyEnv) close() {
	if e.med != nil {
		e.med.Close()
	}
	if e.pic != nil {
		e.pic.Close()
	}
}

func startCaseStudy() (*caseStudyEnv, error) {
	env := &caseStudyEnv{store: photostore.New()}
	pic, err := picasa.New(env.store)
	if err != nil {
		return nil, err
	}
	env.pic = pic
	routes, err := bind.ParseRoutes(casestudy.PicasaRoutesDoc)
	if err != nil {
		env.close()
		return nil, err
	}
	restBinder, err := bind.NewRESTBinder(routes)
	if err != nil {
		env.close()
		return nil, err
	}
	med, err := engine.New(engine.Config{
		Merged: casestudy.XMLRPCMediator(),
		Sides: map[int]*engine.Side{
			1: {Binder: &bind.XMLRPCBinder{Path: "/services/xmlrpc", Defs: casestudy.FlickrUsage().Messages}},
			2: {Binder: restBinder, Target: pic.Addr()},
		},
		HostMap: map[string]string{casestudy.PicasaHost: pic.Addr()},
	})
	if err != nil {
		env.close()
		return nil, err
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		env.close()
		return nil, err
	}
	env.med = med
	return env, nil
}

// E5 checks the Fig. 9 XML-RPC -> REST search binding.
func E5() Result {
	r := Result{ID: "E5", Artifact: "Fig.9 search binding"}
	env, err := startCaseStudy()
	if err != nil {
		r.Err = err
		return r
	}
	defer env.close()
	c := xmlrpc.NewClient(env.med.Addr(), "/services/xmlrpc")
	defer c.Close()
	v, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{"text": "tree", "per_page": int64(3)})
	if err != nil {
		r.Err = err
		return r
	}
	photos, _ := v.(map[string]xmlrpc.Value)["photos"].([]xmlrpc.Value)
	native := env.store.Search("tree", 3)
	r.Detail = fmt.Sprintf("mediated results %d == native %d", len(photos), len(native))
	if len(photos) != len(native) {
		r.Err = fmt.Errorf("result counts differ")
	}
	return r
}

// E6 checks the Fig. 10 getInfo-from-cache resolution.
func E6() Result {
	r := Result{ID: "E6", Artifact: "Fig.10 getInfo cache"}
	env, err := startCaseStudy()
	if err != nil {
		r.Err = err
		return r
	}
	defer env.close()
	c := xmlrpc.NewClient(env.med.Addr(), "/services/xmlrpc")
	defer c.Close()
	v, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{"text": "tree", "per_page": int64(1)})
	if err != nil {
		r.Err = err
		return r
	}
	photos := v.(map[string]xmlrpc.Value)["photos"].([]xmlrpc.Value)
	id := photos[0].(map[string]xmlrpc.Value)["id"].(string)
	v, err = c.Call(casestudy.FlickrGetInfo, map[string]xmlrpc.Value{"photo_id": id})
	if err != nil {
		r.Err = err
		return r
	}
	url, _ := v.(map[string]xmlrpc.Value)["url"].(string)
	want, _ := env.store.Get(id)
	r.Detail = "getInfo(" + id + ").url resolved from mediator cache"
	if url != want.URL {
		r.Err = fmt.Errorf("url %q != %q", url, want.URL)
	}
	return r
}

// E7 runs the full case study (all four operations) and confirms the
// protocol-only bridge fails on the same workload.
func E7() Result {
	r := Result{ID: "E7", Artifact: "§5.1 full case study"}
	env, err := startCaseStudy()
	if err != nil {
		r.Err = err
		return r
	}
	defer env.close()
	c := xmlrpc.NewClient(env.med.Addr(), "/services/xmlrpc")
	defer c.Close()
	id, err := fullFlow(c)
	if err != nil {
		r.Err = err
		return r
	}
	// Baseline: the direct bridge cannot serve this workload.
	routes, _ := bind.ParseRoutes(casestudy.PicasaRoutesDoc)
	restBinder, err := bind.NewRESTBinder(routes)
	if err != nil {
		r.Err = err
		return r
	}
	br := bridge.New(
		&bind.XMLRPCBinder{Path: "/services/xmlrpc", Defs: casestudy.FlickrUsage().Messages},
		restBinder, env.pic.Addr())
	if err := br.Start("127.0.0.1:0"); err != nil {
		r.Err = err
		return r
	}
	defer br.Close()
	bc := xmlrpc.NewClient(br.Addr(), "/services/xmlrpc")
	defer bc.Close()
	_, bridgeErr := bc.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{"text": "tree"})
	r.Detail = fmt.Sprintf("4/4 ops on %s; protocol-only bridge fails as predicted: %v",
		id, bridgeErr != nil)
	if bridgeErr == nil {
		r.Err = errors.New("bridge unexpectedly served heterogeneous applications")
	}
	return r
}

func fullFlow(c *xmlrpc.Client) (string, error) {
	v, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{"text": "tree", "per_page": int64(2)})
	if err != nil {
		return "", fmt.Errorf("search: %w", err)
	}
	photos := v.(map[string]xmlrpc.Value)["photos"].([]xmlrpc.Value)
	if len(photos) == 0 {
		return "", errors.New("search returned nothing")
	}
	id := photos[0].(map[string]xmlrpc.Value)["id"].(string)
	if _, err := c.Call(casestudy.FlickrGetInfo, map[string]xmlrpc.Value{"photo_id": id}); err != nil {
		return "", fmt.Errorf("getInfo: %w", err)
	}
	if _, err := c.Call(casestudy.FlickrGetComments, map[string]xmlrpc.Value{"photo_id": id}); err != nil {
		return "", fmt.Errorf("getComments: %w", err)
	}
	if _, err := c.Call(casestudy.FlickrAddComment, map[string]xmlrpc.Value{
		"photo_id": id, "comment_text": "harness comment",
	}); err != nil {
		return "", fmt.Errorf("addComment: %w", err)
	}
	return id, nil
}

// E8 measures mediation overhead against a native Picasa client.
func E8() Result {
	r := Result{ID: "E8", Artifact: "§5.2 overhead"}
	env, err := startCaseStudy()
	if err != nil {
		r.Err = err
		return r
	}
	defer env.close()

	// Native flow: what a Picasa client does directly (3 REST calls —
	// Picasa needs no getInfo, the URL is in the search feed).
	const rounds = 50
	native := rest.NewClient(env.pic.Addr())
	defer native.Close()
	start := time.Now()
	for i := 0; i < rounds; i++ {
		feed, err := native.Search("tree", 3)
		if err != nil {
			r.Err = err
			return r
		}
		id := feed.Entries[0].ID
		if _, err := native.Comments(id); err != nil {
			r.Err = err
			return r
		}
		// Write to a photo the read path never queries so iterations stay
		// independent (otherwise getComments re-serializes its own growth).
		if _, err := native.AddComment("photo-0008", "native"); err != nil {
			r.Err = err
			return r
		}
	}
	directPerFlow := time.Since(start) / rounds

	// Mediated flow: the Flickr client's 4 operations through Starlink.
	c := xmlrpc.NewClient(env.med.Addr(), "/services/xmlrpc")
	defer c.Close()
	start = time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := stableFlow(c); err != nil {
			r.Err = err
			return r
		}
	}
	mediatedPerFlow := time.Since(start) / rounds
	r.Detail = fmt.Sprintf("native 3-op flow %v; mediated 4-op flow %v (%.1fx)",
		directPerFlow.Round(time.Microsecond), mediatedPerFlow.Round(time.Microsecond),
		float64(mediatedPerFlow)/float64(directPerFlow))
	return r
}

// stableFlow is fullFlow with the comment written to a photo outside the
// "tree" result set, so repeated measurement flows stay independent.
func stableFlow(c *xmlrpc.Client) (string, error) {
	v, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{"text": "tree", "per_page": int64(2)})
	if err != nil {
		return "", fmt.Errorf("search: %w", err)
	}
	photos := v.(map[string]xmlrpc.Value)["photos"].([]xmlrpc.Value)
	id := photos[0].(map[string]xmlrpc.Value)["id"].(string)
	if _, err := c.Call(casestudy.FlickrGetInfo, map[string]xmlrpc.Value{"photo_id": id}); err != nil {
		return "", fmt.Errorf("getInfo: %w", err)
	}
	if _, err := c.Call(casestudy.FlickrGetComments, map[string]xmlrpc.Value{"photo_id": id}); err != nil {
		return "", fmt.Errorf("getComments: %w", err)
	}
	if _, err := c.Call(casestudy.FlickrAddComment, map[string]xmlrpc.Value{
		"photo_id": "photo-0008", "comment_text": "harness",
	}); err != nil {
		return "", fmt.Errorf("addComment: %w", err)
	}
	return id, nil
}

// E9 demonstrates API evolution absorbed by a one-line route-model edit.
func E9() Result {
	r := Result{ID: "E9", Artifact: "§5.2 evolution"}
	store := photostore.New()
	picV2, err := picasa.NewWithConfig(store, picasa.Config{SearchParam: "query", LimitParam: "limit"})
	if err != nil {
		r.Err = err
		return r
	}
	defer picV2.Close()

	v2Routes := `
route picasa.photos.search GET /data/feed/api/all query=q limit=max-results -> feed
route picasa.getComments GET /data/feed/api/photoid/{photo_id} kind=kind -> feed
route picasa.addComment POST /data/feed/api/photoid/{photo_id} body=entry -> entry
`
	routes, err := bind.ParseRoutes(v2Routes)
	if err != nil {
		r.Err = err
		return r
	}
	restBinder, err := bind.NewRESTBinder(routes)
	if err != nil {
		r.Err = err
		return r
	}
	med, err := engine.New(engine.Config{
		Merged: casestudy.XMLRPCMediator(),
		Sides: map[int]*engine.Side{
			1: {Binder: &bind.XMLRPCBinder{Path: "/services/xmlrpc", Defs: casestudy.FlickrUsage().Messages}},
			2: {Binder: restBinder, Target: picV2.Addr()},
		},
		HostMap: map[string]string{casestudy.PicasaHost: picV2.Addr()},
	})
	if err != nil {
		r.Err = err
		return r
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		r.Err = err
		return r
	}
	defer med.Close()
	c := xmlrpc.NewClient(med.Addr(), "/services/xmlrpc")
	defer c.Close()
	if _, err := fullFlow(c); err != nil {
		r.Err = err
		return r
	}
	r.Detail = "v2 API (query/limit) served after a 1-line route edit; code untouched"
	return r
}

// E10 extends the evaluation to the discovery domain: an SSDP client
// finds a printer registered only in an SLP Directory Agent, through a
// UDP mediator translating both middleware and vocabulary.
func E10() Result {
	r := Result{ID: "E10", Artifact: "discovery SSDP->SLP"}
	da, err := slp.NewDirectoryAgent("127.0.0.1:0")
	if err != nil {
		r.Err = err
		return r
	}
	defer da.Close()
	da.Register("service:printer:lpr", slp.URLEntry{
		URL: "service:printer:lpr://printer1.example:515", Lifetime: 300,
	})
	slpBinder, err := bind.NewSLPBinder()
	if err != nil {
		r.Err = err
		return r
	}
	med, err := engine.New(engine.Config{
		Merged: casestudy.DiscoveryMediator(),
		Sides: map[int]*engine.Side{
			1: {Binder: &bind.SSDPBinder{}, Net: network.Semantics{Transport: "udp"}},
			2: {Binder: slpBinder, Net: network.Semantics{Transport: "udp"}, Target: da.Addr()},
		},
		Funcs: casestudy.DiscoveryFuncs(),
	})
	if err != nil {
		r.Err = err
		return r
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		r.Err = err
		return r
	}
	defer med.Close()
	responses, err := ssdp.Search(med.Addr(), "urn:schemas-upnp-org:service:Printer:1", 1, 1)
	if err != nil {
		r.Err = err
		return r
	}
	r.Detail = "UPnP M-SEARCH answered from SLP registration: " + responses[0].Location
	if responses[0].Location != "service:printer:lpr://printer1.example:515" {
		r.Err = errors.New("wrong location")
	}
	return r
}

// E11 exercises the fault-tolerance path under realistic conditions:
// the Fig. 7/8 Add->Plus deployment where the SOAP service is stopped
// and restarted on the same address between invocations of one live
// client session. The mediator must detect the dead cached connection,
// redial and replay so the client's second call still succeeds.
func E11() Result {
	r := Result{ID: "E11", Artifact: "fault-tolerant session"}
	plusOps := map[string]soap.Operation{
		"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			x, _ := strconv.Atoi(findParam(params, "x"))
			y, _ := strconv.Atoi(findParam(params, "y"))
			return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	}
	srv, err := soap.NewServer("127.0.0.1:0", "/soap", plusOps)
	if err != nil {
		r.Err = err
		return r
	}
	addr := srv.Addr()
	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		srv.Close()
		r.Err = err
		return r
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		srv.Close()
		r.Err = err
		return r
	}
	med, err := engine.New(engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: addr},
		},
		ExchangeTimeout: 2 * time.Second,
		Retry: &engine.RetryPolicy{
			Attempts: engine.DefaultRetryAttempts,
			Backoff:  5 * time.Millisecond,
		},
	})
	if err != nil {
		srv.Close()
		r.Err = err
		return r
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		srv.Close()
		r.Err = err
		return r
	}
	defer med.Close()
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		srv.Close()
		r.Err = err
		return r
	}
	defer client.Close()
	if _, err := client.Invoke("Add", giop.IntParam(1), giop.IntParam(2)); err != nil {
		srv.Close()
		r.Err = err
		return r
	}
	// Kill the service and bring it back on the same address.
	srv.Close()
	restarted, err := soap.NewServer(addr, "/soap", plusOps)
	if err != nil {
		r.Err = fmt.Errorf("rebind %s: %w", addr, err)
		return r
	}
	defer restarted.Close()
	results, err := client.Invoke("Add", giop.IntParam(20), giop.IntParam(22))
	if err != nil {
		r.Err = fmt.Errorf("flow after service restart: %w", err)
		return r
	}
	got := results[0].ValueString()
	st := med.Stats()
	r.Detail = fmt.Sprintf("service restarted mid-session; Add(20,22)=%s after %d redial(s)", got, st.Redials)
	switch {
	case got != "42":
		r.Err = fmt.Errorf("got %s, want 42", got)
	case st.Redials == 0:
		r.Err = errors.New("recovery did not redial")
	case st.Failures != 0:
		r.Err = fmt.Errorf("failures = %d, want 0", st.Failures)
	}
	return r
}

// E12 measures the shared service-side connection pool under concurrent
// sessions and the graceful-drain lifecycle — now soaked with the full
// observability subsystem attached: two waves of parallel IIOP clients
// run through one instrumented mediator (flow tracer + flight recorder
// + admin endpoint), one deliberately bad request exercises the flight
// recorder, the admin routes are scraped over the wire, and the
// mediator is then retired with Shutdown rather than Close.
func E12() Result {
	r := Result{ID: "E12", Artifact: "concurrent pool + admin"}
	srv, err := soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
		"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			x, _ := strconv.Atoi(findParam(params, "x"))
			y, _ := strconv.Atoi(findParam(params, "y"))
			return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	})
	if err != nil {
		r.Err = err
		return r
	}
	defer srv.Close()
	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		r.Err = err
		return r
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		r.Err = err
		return r
	}
	cfg := engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: srv.Addr()},
		},
		ExchangeTimeout: 5 * time.Second,
		Retry:           &engine.RetryPolicy{Attempts: 2, Backoff: 5 * time.Millisecond},
	}
	obs := observe.Instrument(&cfg, observe.Options{})
	med, err := engine.New(cfg)
	if err != nil {
		r.Err = err
		return r
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		r.Err = err
		return r
	}
	defer med.Close()
	admin, err := observe.ServeAdmin("127.0.0.1:0", observe.AdminConfig{
		Registry: observe.MediatorRegistry(med, obs),
		Observer: obs,
		Mediator: med,
	})
	if err != nil {
		r.Err = err
		return r
	}
	defer admin.Close()

	const waves, perWave = 2, 8
	for wave := 0; wave < waves; wave++ {
		var wg sync.WaitGroup
		errs := make(chan error, perWave)
		for i := 0; i < perWave; i++ {
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				client, err := giop.Dial(med.Addr(), "calc")
				if err != nil {
					errs <- err
					return
				}
				defer client.Close()
				results, err := client.Invoke("Add", giop.IntParam(int64(n)), giop.IntParam(int64(n)))
				if err != nil {
					errs <- err
					return
				}
				if got := results[0].ValueString(); got != strconv.Itoa(2*n) {
					errs <- fmt.Errorf("Add(%d,%d) = %s", n, n, got)
				}
			}(i + 1)
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			r.Err = err
			return r
		}
		// Between waves every session has ended; the next wave's checkouts
		// must hit the idle pool instead of dialling.
		time.Sleep(20 * time.Millisecond)
	}

	// One deliberately bad request: Bogus parses as GIOP but is not an
	// action the automaton accepts, so the flow fails and the flight
	// recorder captures its wire image.
	bad, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		r.Err = err
		return r
	}
	if _, err := bad.Invoke("Bogus", giop.IntParam(1)); err == nil {
		bad.Close()
		r.Err = errors.New("bogus invocation unexpectedly succeeded")
		return r
	}
	bad.Close()

	// Scrape the admin endpoint over the wire.
	hc := &httpwire.Client{Addr: admin.Addr()}
	defer hc.Close()
	metricsResp, err := hc.Get("/metrics")
	if err != nil {
		r.Err = fmt.Errorf("scrape /metrics: %w", err)
		return r
	}
	if !strings.Contains(string(metricsResp.Body), "starlink_flows_total") {
		r.Err = errors.New("/metrics missing starlink_flows_total")
		return r
	}
	flowsResp, err := hc.Get("/flows")
	if err != nil {
		r.Err = fmt.Errorf("scrape /flows: %w", err)
		return r
	}
	if !strings.Contains(string(flowsResp.Body), "Bogus") {
		r.Err = errors.New("/flows does not show the recorded failure's wire image")
		return r
	}
	dotResp, err := hc.Get("/automaton.dot")
	if err != nil {
		r.Err = fmt.Errorf("scrape /automaton.dot: %w", err)
		return r
	}
	if !strings.Contains(string(dotResp.Body), "digraph") {
		r.Err = errors.New("/automaton.dot is not a DOT document")
		return r
	}

	st := med.Stats()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := med.Shutdown(ctx); err != nil {
		r.Err = fmt.Errorf("graceful shutdown: %w", err)
		return r
	}
	r.Detail = fmt.Sprintf("%d sessions, %d dial(s), %d pool hit(s); admin served metrics+flows+dot; drained",
		st.Sessions, st.PoolDials, st.PoolHits)
	switch {
	case st.Sessions != waves*perWave+1: // +1 for the injected-fault session
		r.Err = fmt.Errorf("sessions = %d, want %d", st.Sessions, waves*perWave+1)
	case st.PoolDials >= st.Sessions:
		r.Err = fmt.Errorf("pool dials = %d, not below sessions = %d", st.PoolDials, st.Sessions)
	case st.PoolHits == 0:
		r.Err = errors.New("no pool hits: connections not reused across sessions")
	case st.Failures != 1:
		r.Err = fmt.Errorf("failures = %d, want the 1 injected fault", st.Failures)
	case obs.Recorder().Len() == 0:
		r.Err = errors.New("flight recorder is empty after the injected fault")
	}
	return r
}

// E13 quantifies the observability tax: the same concurrent Add/Plus
// workload is run with the flow tracer disabled and enabled, and the
// per-flow times compared. The design target is <5% at the benchmark
// scale (see EXPERIMENTS.md E13 and BENCH_observe.json); here the gate
// is deliberately loose (50%) so the experiment flags regressions, not
// scheduler noise.
func E13() Result {
	r := Result{ID: "E13", Artifact: "tracer overhead"}
	points, err := MeasureObserveOverhead([]int{1, 8}, 40)
	if err != nil {
		r.Err = err
		return r
	}
	detail := make([]string, len(points))
	for i, p := range points {
		detail[i] = fmt.Sprintf("%ds: off %.0fµs on %.0fµs (%+.1f%%)",
			p.Sessions, p.OffNsPerFlow/1e3, p.OnNsPerFlow/1e3, p.OverheadPct)
		if p.OverheadPct > 50 {
			r.Err = fmt.Errorf("tracer overhead %.1f%% at %d sessions exceeds the 50%% sanity gate",
				p.OverheadPct, p.Sessions)
		}
	}
	r.Detail = strings.Join(detail, "; ")
	return r
}

// ObservePoint is one concurrency level of the tracer-overhead
// measurement: per-flow latency with the tracer off and on.
type ObservePoint struct {
	// Sessions is the number of concurrent client sessions.
	Sessions int `json:"sessions"`
	// OffNsPerFlow and OnNsPerFlow are mean wall nanoseconds per
	// mediated flow with the tracer disabled resp. enabled.
	OffNsPerFlow float64 `json:"tracer_off_ns_per_flow"`
	OnNsPerFlow  float64 `json:"tracer_on_ns_per_flow"`
	// OverheadPct is (on-off)/off in percent.
	OverheadPct float64 `json:"overhead_pct"`
}

// MeasureObserveOverhead runs the Add/Plus workload at each concurrency
// level with the flow tracer disabled then enabled, flows complete
// GIOP->SOAP mediations each. The benchharness -observe flag and E13
// share this.
func MeasureObserveOverhead(sessionCounts []int, flowsPerSession int) ([]ObservePoint, error) {
	srv, err := soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
		"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			x, _ := strconv.Atoi(findParam(params, "x"))
			y, _ := strconv.Atoi(findParam(params, "y"))
			return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		return nil, err
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		return nil, err
	}
	cfg := engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: srv.Addr()},
		},
		ExchangeTimeout: 5 * time.Second,
	}
	obs := observe.Instrument(&cfg, observe.Options{Disabled: true})
	med, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	defer med.Close()

	run := func(sessions int) (time.Duration, error) {
		var wg sync.WaitGroup
		errs := make(chan error, sessions)
		start := time.Now()
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				client, err := giop.Dial(med.Addr(), "calc")
				if err != nil {
					errs <- err
					return
				}
				defer client.Close()
				for f := 0; f < flowsPerSession; f++ {
					if _, err := client.Invoke("Add", giop.IntParam(2), giop.IntParam(3)); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errs)
		if err := <-errs; err != nil {
			return 0, err
		}
		return elapsed / time.Duration(sessions*flowsPerSession), nil
	}

	var points []ObservePoint
	for _, sessions := range sessionCounts {
		obs.SetEnabled(false)
		if _, err := run(sessions); err != nil { // warm the pool and caches
			return nil, err
		}
		off, err := run(sessions)
		if err != nil {
			return nil, err
		}
		obs.SetEnabled(true)
		on, err := run(sessions)
		if err != nil {
			return nil, err
		}
		points = append(points, ObservePoint{
			Sessions:     sessions,
			OffNsPerFlow: float64(off.Nanoseconds()),
			OnNsPerFlow:  float64(on.Nanoseconds()),
			OverheadPct:  100 * (float64(on) - float64(off)) / float64(off),
		})
	}
	return points, nil
}
