package harness

// Cross-flow response-cache measurement (EXPERIMENTS.md E16): the search
// segments of both case studies are deployed end to end through the
// public starlink.Deploy façade — real clients, real codecs, real
// backing services — and driven at several session concurrencies with
// two workloads:
//
//   - "repeat": every session draws queries from a small shared pool, the
//     read-mostly traffic a response cache targets. Comparing cache off
//     vs on here yields the service-exchange reduction and the p50 flow
//     latency reduction.
//   - "unique": every request is a distinct query, so a configured cache
//     never hits. Comparing cache off vs on here isolates the overhead
//     the cache machinery adds to flows it cannot serve (key rendering,
//     flight bookkeeping, store on miss) — the honest "cache-off
//     overhead" figure, because both sides do identical service work.
//
// Service-side exchanges are derived from the engine's own counters:
// every flow emits exactly one client-side reply and one service-side
// request when the exchange is real, and cache-served flows skip the
// service leg, so exchanges = ΔMessagesOut − ΔFlows.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"starlink/internal/casestudy"
	"starlink/internal/protocol/jsonrpc"
	"starlink/internal/protocol/xmlrpc"
	"starlink/internal/services/photostore"
	"starlink/internal/services/picasa"
	"starlink/starlink"
)

// CachePoint is one measured configuration: a case study driven with one
// workload, one cache mode and one session concurrency.
type CachePoint struct {
	// CaseStudy is "flickr" or "shopping".
	CaseStudy string `json:"case_study"`
	// Workload is "repeat" (pooled queries) or "unique" (every request
	// distinct; the pure-miss overhead workload).
	Workload string `json:"workload"`
	// Mode is "off" (no cacheable directive) or "cached".
	Mode string `json:"mode"`
	// Sessions is the number of concurrent client sessions.
	Sessions int `json:"sessions"`
	// Requests is the per-session request count in the measured window.
	Requests int `json:"requests_per_session"`
	// Flows is the number of completed flows in the measured window.
	Flows uint64 `json:"flows"`
	// ServiceExchanges is the number of real service-side round-trips in
	// the measured window (ΔMessagesOut − ΔFlows).
	ServiceExchanges uint64 `json:"service_exchanges"`
	// CacheHits/CacheMisses/CacheCoalesced are the cache counter deltas
	// over the measured window (all zero in "off" mode).
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheCoalesced uint64 `json:"cache_coalesced"`
	// P50Ns/P95Ns/MeanNs are client-observed whole-flow latencies in
	// nanoseconds over every request in the measured window.
	P50Ns  float64 `json:"p50_ns_per_flow"`
	P95Ns  float64 `json:"p95_ns_per_flow"`
	MeanNs float64 `json:"mean_ns_per_flow"`
}

// CacheReport is the full measurement written to BENCH_cache.json.
type CacheReport struct {
	// Methodology records how the numbers were produced.
	Methodology string `json:"methodology"`
	// Points are the measurements, one per (case study, workload, mode,
	// concurrency).
	Points []CachePoint `json:"points"`
	// ExchangeReduction maps each case study to the factor by which the
	// cache cuts service-side exchanges on the repeat workload at the
	// highest session count (12.0 = 12× fewer exchanges).
	ExchangeReduction map[string]float64 `json:"exchange_reduction"`
	// P50Reduction maps each case study to the fractional p50 flow-latency
	// drop on the repeat workload at the highest session count (0.42 =
	// 42% faster).
	P50Reduction map[string]float64 `json:"p50_reduction"`
	// MissOverheadPct maps each case study to the cache-off overhead in
	// percent: the p50 penalty of running a configured cache on a
	// workload it can never serve (unique queries, pure misses) relative
	// to no cache at all, measured with paired alternating requests so
	// machine drift cancels.
	MissOverheadPct map[string]float64 `json:"cache_miss_overhead_pct"`
}

// serviceDelay is slept by both backing services before answering: it
// stands in for a remote service's processing and network time, which
// the in-process stores would otherwise hide. Both cache modes pay it
// identically, so comparisons stay fair; without it the denominator of
// every relative figure would be loopback codec time, which no deployed
// mediator ever sees.
const serviceDelay = time.Millisecond

// cacheEnv is one deployed case-study environment: a mediator reached
// through the public Deploy façade plus a per-session client factory.
type cacheEnv struct {
	dep starlink.Deployment
	// med is the spec name under which Snapshot reports the mediator.
	med string
	// newSession returns a call function issuing one search for the
	// given query, plus the session's close function.
	newSession func() (func(query string) error, func())
	cleanup    func()
}

func (e *cacheEnv) stats() (starlink.Stats, error) {
	snap := e.dep.Snapshot()
	st, ok := snap.Mediators[e.med]
	if !ok {
		return starlink.Stats{}, fmt.Errorf("snapshot has no mediator %q", e.med)
	}
	return st.Stats, nil
}

// flush resets the response cache so each measured window starts cold.
func (e *cacheEnv) flush() {
	if md, ok := e.dep.(*starlink.MediatorDeployment); ok {
		md.Mediator.CacheFlush()
	}
}

// startFlickrCacheEnv deploys the Flickr-search-to-Picasa-REST mediator
// against an in-process Picasa service, optionally with the Picasa
// search operation declared cacheable.
func startFlickrCacheEnv(cached bool) (*cacheEnv, error) {
	pic, err := picasa.NewWithConfig(photostore.New(), picasa.Config{ProcessingDelay: serviceDelay})
	if err != nil {
		return nil, err
	}
	models := starlink.NewModels()
	models.Automata["AFlickr"] = casestudy.FlickrUsage()
	models.Merged["Flickr-Search-to-Picasa-REST"] = casestudy.SearchMediator()
	routes, err := starlink.ParseRoutes(casestudy.PicasaRoutesDoc)
	if err != nil {
		pic.Close()
		return nil, err
	}
	models.Routes["picasa"] = routes
	doc := "merged Flickr-Search-to-Picasa-REST\n" +
		"side 1 xmlrpc path=/services/xmlrpc defs=AFlickr server\n" +
		"side 2 rest routes=picasa target=" + pic.Addr() + "\n" +
		"hostmap " + casestudy.PicasaHost + " = " + pic.Addr() + "\n"
	if cached {
		doc += "cacheable " + casestudy.PicasaSearch + " ttl=60s\ncache_size 65536\n"
	}
	spec, err := starlink.ParseMediatorSpec(doc)
	if err != nil {
		pic.Close()
		return nil, err
	}
	models.Mediators["flickr-search"] = spec
	dep, err := starlink.Deploy("flickr-search", models, starlink.DeployOptions{Listen: "127.0.0.1:0"})
	if err != nil {
		pic.Close()
		return nil, err
	}
	return &cacheEnv{
		dep: dep,
		med: "flickr-search",
		newSession: func() (func(string) error, func()) {
			c := xmlrpc.NewClient(dep.Addr(), "/services/xmlrpc")
			call := func(q string) error {
				_, err := c.Call(casestudy.FlickrSearch,
					map[string]xmlrpc.Value{"text": q, "per_page": int64(5)})
				return err
			}
			return call, func() { c.Close() }
		},
		cleanup: func() {
			dep.Close()
			pic.Close()
		},
	}, nil
}

// catalogItems is the shopping case's fixed product catalog; the repeat
// query pool matches substrings of these names.
var catalogItems = []struct {
	sku, name string
	price     float64
}{
	{"sku-1", "lever espresso machine", 649.00},
	{"sku-2", "burr grinder", 129.00},
	{"sku-3", "gooseneck kettle", 54.00},
	{"sku-4", "precision scale", 32.50},
	{"sku-5", "super-automatic machine", 1249.00},
	{"sku-6", "hand grinder", 74.00},
	{"sku-7", "travel kettle", 29.00},
	{"sku-8", "pocket scale", 18.00},
}

// startShoppingCacheEnv deploys the shop-search-to-catalog-JSON-RPC
// mediator against an in-process JSON-RPC catalog service.
func startShoppingCacheEnv(cached bool) (*cacheEnv, error) {
	srv, err := jsonrpc.NewServer("127.0.0.1:0", "/rpc", map[string]jsonrpc.Method{
		casestudy.CatalogSearch: func(params []jsonrpc.Value) (jsonrpc.Value, error) {
			time.Sleep(serviceDelay)
			query, limit := "", 5
			if len(params) == 1 {
				if obj, ok := params[0].(map[string]any); ok {
					if q, ok := obj["query"].(string); ok {
						query = q
					}
					if l, ok := obj["limit"].(float64); ok && l > 0 {
						limit = int(l)
					}
				}
			}
			items := []any{}
			for _, it := range catalogItems {
				if !strings.Contains(it.name, query) {
					continue
				}
				items = append(items, map[string]any{
					"sku": it.sku, "name": it.name, "price": it.price,
				})
				if len(items) >= limit {
					break
				}
			}
			// A bare array result becomes the abstract field `result` with
			// one `item` child per element — the shape the mediator's
			// foreach iterates.
			return items, nil
		},
	})
	if err != nil {
		return nil, err
	}
	models := starlink.NewModels()
	models.Merged["Shop-Search-to-Catalog-JSONRPC"] = casestudy.ShoppingSearchMediator()
	doc := "merged Shop-Search-to-Catalog-JSONRPC\n" +
		"side 1 xmlrpc path=/shop server\n" +
		"side 2 jsonrpc path=/rpc target=" + srv.Addr() + "\n"
	if cached {
		doc += "cacheable " + casestudy.CatalogSearch + " ttl=60s\ncache_size 65536\n"
	}
	spec, err := starlink.ParseMediatorSpec(doc)
	if err != nil {
		srv.Close()
		return nil, err
	}
	models.Mediators["shop-search"] = spec
	dep, err := starlink.Deploy("shop-search", models, starlink.DeployOptions{Listen: "127.0.0.1:0"})
	if err != nil {
		srv.Close()
		return nil, err
	}
	return &cacheEnv{
		dep: dep,
		med: "shop-search",
		newSession: func() (func(string) error, func()) {
			c := xmlrpc.NewClient(dep.Addr(), "/shop")
			call := func(q string) error {
				_, err := c.Call(casestudy.ShopSearch,
					map[string]xmlrpc.Value{"keywords": q, "max": int64(5)})
				return err
			}
			return call, func() { c.Close() }
		},
		cleanup: func() {
			dep.Close()
			srv.Close()
		},
	}, nil
}

// driveCacheLoad runs sessions concurrent client sessions of `requests`
// requests each and returns every per-request flow latency. With unique
// set, each request uses a distinct query tagged with `tag` (so warm-up
// and measured windows never share keys); otherwise queries round-robin
// through pool.
func driveCacheLoad(env *cacheEnv, pool []string, sessions, requests int, unique bool, tag string) ([]time.Duration, error) {
	perSession := make([][]time.Duration, sessions)
	errs := make(chan error, sessions)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			call, done := env.newSession()
			defer done()
			durs := make([]time.Duration, 0, requests)
			for i := 0; i < requests; i++ {
				q := pool[(s+i)%len(pool)]
				if unique {
					q = fmt.Sprintf("q%s-%d-%d", tag, s, i)
				}
				start := time.Now()
				if err := call(q); err != nil {
					errs <- fmt.Errorf("session %d request %d: %w", s, i, err)
					return
				}
				durs = append(durs, time.Since(start))
			}
			perSession[s] = durs
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}
	var all []time.Duration
	for _, d := range perSession {
		all = append(all, d...)
	}
	return all, nil
}

func latencyStats(durs []time.Duration) (p50, p95, mean float64) {
	if len(durs) == 0 {
		return 0, 0, 0
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	var sum time.Duration
	for _, d := range durs {
		sum += d
	}
	p50 = float64(durs[len(durs)/2].Nanoseconds())
	p95 = float64(durs[int(float64(len(durs)-1)*0.95)].Nanoseconds())
	mean = float64(sum.Nanoseconds()) / float64(len(durs))
	return p50, p95, mean
}

// measureCachePoint warms the deployment up, resets the cache so the
// window starts cold, then measures one configuration.
func measureCachePoint(env *cacheEnv, caseName, workload, mode string, pool []string, sessions, requests int, unique bool) (CachePoint, error) {
	if _, err := driveCacheLoad(env, pool, sessions, requests/4+1, unique, "warm"); err != nil {
		return CachePoint{}, err
	}
	env.flush()
	before, err := env.stats()
	if err != nil {
		return CachePoint{}, err
	}
	durs, err := driveCacheLoad(env, pool, sessions, requests, unique, "m")
	if err != nil {
		return CachePoint{}, err
	}
	after, err := env.stats()
	if err != nil {
		return CachePoint{}, err
	}
	flows := after.Flows - before.Flows
	p50, p95, mean := latencyStats(durs)
	return CachePoint{
		CaseStudy:        caseName,
		Workload:         workload,
		Mode:             mode,
		Sessions:         sessions,
		Requests:         requests,
		Flows:            flows,
		ServiceExchanges: (after.MessagesOut - before.MessagesOut) - flows,
		CacheHits:        after.CacheHits - before.CacheHits,
		CacheMisses:      after.CacheMisses - before.CacheMisses,
		CacheCoalesced:   after.CacheCoalesced - before.CacheCoalesced,
		P50Ns:            p50,
		P95Ns:            p95,
		MeanNs:           mean,
	}, nil
}

// measureMissOverhead measures the cache-off overhead by pairing: one
// session against the cache-off deployment and one against the cached
// deployment issue unique queries alternately (order swapped every
// iteration), so ambient machine drift hits both sides equally. The
// returned percentage is the median paired latency difference over the
// median cache-off latency — the p50 penalty of a cache that always
// misses.
func measureMissOverhead(envOff, envOn *cacheEnv, n int) (float64, error) {
	callOff, doneOff := envOff.newSession()
	defer doneOff()
	callOn, doneOn := envOn.newSession()
	defer doneOn()
	timed := func(call func(string) error, q string) (time.Duration, error) {
		start := time.Now()
		err := call(q)
		return time.Since(start), err
	}
	for i := 0; i < n/4+1; i++ {
		q := fmt.Sprintf("qovw-%d", i)
		if _, err := timed(callOff, q); err != nil {
			return 0, err
		}
		if _, err := timed(callOn, q); err != nil {
			return 0, err
		}
	}
	envOn.flush()
	diffs := make([]time.Duration, 0, n)
	base := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		q := fmt.Sprintf("qov-%d", i)
		var dOff, dOn time.Duration
		var err error
		if i%2 == 0 {
			if dOff, err = timed(callOff, q); err == nil {
				dOn, err = timed(callOn, q)
			}
		} else {
			if dOn, err = timed(callOn, q); err == nil {
				dOff, err = timed(callOff, q)
			}
		}
		if err != nil {
			return 0, err
		}
		diffs = append(diffs, dOn-dOff)
		base = append(base, dOff)
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i] < diffs[j] })
	sort.Slice(base, func(i, j int) bool { return base[i] < base[j] })
	return float64(diffs[n/2]) / float64(base[n/2]) * 100, nil
}

// cacheCase is one case-study workload for the E16 measurement.
type cacheCase struct {
	name  string
	start func(cached bool) (*cacheEnv, error)
	pool  []string
}

func cacheCases() []cacheCase {
	return []cacheCase{
		{"flickr", startFlickrCacheEnv, []string{"tree", "cat", "lake", "night"}},
		{"shopping", startShoppingCacheEnv, []string{"machine", "grinder", "kettle", "scale"}},
	}
}

// MeasureCacheOverhead deploys both case-study search mediators with the
// response cache off and on and measures flow latency and service-side
// exchange counts for the repeat and unique workloads at the given
// session concurrencies. requests is the per-session request count per
// measured point.
func MeasureCacheOverhead(sessionCounts []int, requests int) (*CacheReport, error) {
	report := &CacheReport{
		Methodology: "End-to-end flows through starlink.Deploy against in-process backing " +
			"services (Picasa REST photo search; JSON-RPC catalog search), each sleeping " +
			"1ms per request to stand in for remote-service processing and network time " +
			"(paid identically by both cache modes). Each point warms " +
			"up with requests/4+1 requests per session, flushes the response cache, then " +
			"measures `requests_per_session` per session; latencies are client-observed " +
			"whole-flow round trips. service_exchanges = ΔMessagesOut − ΔFlows (cache-served " +
			"flows skip the service leg). The repeat workload round-robins a 4-query pool " +
			"(the cache's target traffic); the unique workload makes every request a " +
			"distinct query so a configured cache always misses. exchange_reduction and " +
			"p50_reduction compare off vs cached on the repeat workload at the highest " +
			"session count. cache_miss_overhead_pct is the cache-off overhead — the p50 " +
			"penalty of a configured cache that always misses vs no cache at all — " +
			"measured paired: one session against each deployment issues the same unique " +
			"query alternately (order swapped every iteration) so ambient drift cancels, " +
			"and the figure is the median paired difference over the median cache-off " +
			"latency.",
		ExchangeReduction: map[string]float64{},
		P50Reduction:      map[string]float64{},
		MissOverheadPct:   map[string]float64{},
	}
	if len(sessionCounts) == 0 {
		sessionCounts = []int{1, 8, 64}
	}
	maxSessions := sessionCounts[0]
	for _, s := range sessionCounts {
		if s > maxSessions {
			maxSessions = s
		}
	}
	type pointKey struct{ workload, mode string }
	for _, cs := range cacheCases() {
		envOff, err := cs.start(false)
		if err != nil {
			return nil, fmt.Errorf("%s off: %w", cs.name, err)
		}
		envOn, err := cs.start(true)
		if err != nil {
			envOff.cleanup()
			return nil, fmt.Errorf("%s cached: %w", cs.name, err)
		}
		peak := map[pointKey]CachePoint{}
		fail := func(err error) (*CacheReport, error) {
			envOff.cleanup()
			envOn.cleanup()
			return nil, err
		}
		for _, mode := range []string{"off", "cached"} {
			env := envOff
			if mode == "cached" {
				env = envOn
			}
			for _, workload := range []string{"repeat", "unique"} {
				for _, sessions := range sessionCounts {
					pt, err := measureCachePoint(env, cs.name, workload, mode, cs.pool,
						sessions, requests, workload == "unique")
					if err != nil {
						return fail(fmt.Errorf("%s %s %s @%d: %w", cs.name, mode, workload, sessions, err))
					}
					report.Points = append(report.Points, pt)
					if sessions == maxSessions {
						peak[pointKey{workload, mode}] = pt
					}
				}
			}
		}
		overhead, err := measureMissOverhead(envOff, envOn, requests*2)
		if err != nil {
			return fail(fmt.Errorf("%s overhead: %w", cs.name, err))
		}
		envOff.cleanup()
		envOn.cleanup()
		report.MissOverheadPct[cs.name] = overhead
		off, on := peak[pointKey{"repeat", "off"}], peak[pointKey{"repeat", "cached"}]
		if on.ServiceExchanges > 0 {
			report.ExchangeReduction[cs.name] = float64(off.ServiceExchanges) / float64(on.ServiceExchanges)
		} else {
			report.ExchangeReduction[cs.name] = float64(off.ServiceExchanges)
		}
		if off.P50Ns > 0 {
			report.P50Reduction[cs.name] = (off.P50Ns - on.P50Ns) / off.P50Ns
		}
	}
	return report, nil
}

// E16 is the quick in-suite form of the response-cache experiment: the
// Flickr search mediator at 8 sessions, repeat workload, cache off vs
// on, asserting the headline service-exchange reduction.
func E16() Result {
	r := Result{ID: "E16", Artifact: "cross-flow response cache"}
	cs := cacheCases()[0]
	const sessions, requests = 8, 24
	points := map[string]CachePoint{}
	for _, cached := range []bool{false, true} {
		mode := "off"
		if cached {
			mode = "cached"
		}
		env, err := cs.start(cached)
		if err != nil {
			r.Err = err
			return r
		}
		pt, err := measureCachePoint(env, cs.name, "repeat", mode, cs.pool, sessions, requests, false)
		env.cleanup()
		if err != nil {
			r.Err = err
			return r
		}
		points[mode] = pt
	}
	off, on := points["off"], points["cached"]
	if off.ServiceExchanges != uint64(sessions*requests) {
		r.Err = fmt.Errorf("cache off: exchanges = %d, want %d", off.ServiceExchanges, sessions*requests)
		return r
	}
	if on.ServiceExchanges*5 > off.ServiceExchanges {
		r.Err = fmt.Errorf("exchanges %d -> %d: reduction below 5x", off.ServiceExchanges, on.ServiceExchanges)
		return r
	}
	if on.CacheHits+on.CacheCoalesced+on.CacheMisses != on.Flows {
		r.Err = fmt.Errorf("cache counters %d+%d+%d don't cover %d flows",
			on.CacheHits, on.CacheCoalesced, on.CacheMisses, on.Flows)
		return r
	}
	r.Detail = fmt.Sprintf("repeat workload @%d sessions: %d -> %d service exchanges (%.1fx), p50 %.0fµs -> %.0fµs",
		sessions, off.ServiceExchanges, on.ServiceExchanges,
		float64(off.ServiceExchanges)/float64(max(on.ServiceExchanges, 1)),
		off.P50Ns/1e3, on.P50Ns/1e3)
	return r
}
