package harness_test

import (
	"strings"
	"testing"

	"starlink/internal/harness"
)

// TestAllExperimentsPass runs the full E1-E14 + E16-E19 reproduction
// suite — the same entry point as cmd/benchharness.
func TestAllExperimentsPass(t *testing.T) {
	results := harness.RunAll()
	if len(results) != 18 {
		t.Fatalf("experiments = %d, want 18", len(results))
	}
	for _, r := range results {
		if !r.OK() {
			t.Errorf("%s (%s): %v", r.ID, r.Artifact, r.Err)
		}
		if r.Detail == "" {
			t.Errorf("%s: empty detail", r.ID)
		}
		line := r.String()
		if !strings.Contains(line, r.ID) {
			t.Errorf("%s: report line missing id: %q", r.ID, line)
		}
		if r.OK() && !strings.HasSuffix(line, "OK") {
			t.Errorf("%s: report line missing OK: %q", r.ID, line)
		}
	}
}

func TestResultStringOnFailure(t *testing.T) {
	r := harness.Result{ID: "EX", Artifact: "x", Detail: "d"}
	if !strings.Contains(r.String(), "OK") {
		t.Errorf("ok line = %q", r.String())
	}
}
