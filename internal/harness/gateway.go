package harness

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"starlink/internal/automata"
	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/engine"
	"starlink/internal/gateway"
	"starlink/internal/network"
	"starlink/internal/observe"
	"starlink/internal/protocol/giop"
	"starlink/internal/protocol/httpwire"
	"starlink/internal/protocol/soap"
	"starlink/internal/protocol/xmlrpc"
	"starlink/internal/services/photostore"
	"starlink/internal/services/picasa"
)

// newAddPlusMediator builds the GIOP Add -> SOAP Plus mediator used
// throughout the harness, started detached so a gateway can feed it.
func newAddPlusMediator(plusAddr string) (*engine.Mediator, error) {
	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		return nil, err
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		return nil, err
	}
	med, err := engine.New(engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: plusAddr},
		},
		ExchangeTimeout: 5 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	if err := med.StartDetached(); err != nil {
		med.Close()
		return nil, err
	}
	return med, nil
}

// newFlickrMediator builds a Flickr -> Picasa REST mediator (XML-RPC or
// SOAP client side, per binder), started detached.
func newFlickrMediator(merged *automata.Merged, binder bind.Binder, picasaAddr string) (*engine.Mediator, error) {
	routes, err := bind.ParseRoutes(casestudy.PicasaRoutesDoc)
	if err != nil {
		return nil, err
	}
	restBinder, err := bind.NewRESTBinder(routes)
	if err != nil {
		return nil, err
	}
	med, err := engine.New(engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: binder},
			2: {Binder: restBinder, Target: picasaAddr},
		},
		HostMap: map[string]string{casestudy.PicasaHost: picasaAddr},
	})
	if err != nil {
		return nil, err
	}
	if err := med.StartDetached(); err != nil {
		med.Close()
		return nil, err
	}
	return med, nil
}

// E14 soaks the mediation gateway: THREE heterogeneous mediators (GIOP
// Add->SOAP Plus, XML-RPC Flickr->Picasa REST, SOAP Flickr->Picasa
// REST) behind ONE front-door listener, clients of all three protocols
// routed purely by wire sniffing. Mid-soak the calculator route is
// hot-reloaded — built anew, swapped atomically, the old mediator
// drained — while a pinned client keeps invoking through the swap with
// zero lost flows. A flow-cap shed phase then checks over-limit IIOP
// clients get a protocol-correct GIOP system exception, fast. The
// gateway's metrics endpoint is scraped for the per-route counters.
func E14() Result {
	const flowCap = 8
	r := Result{ID: "E14", Artifact: "gateway multiplex+reload"}

	plus, err := soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
		"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			x, _ := strconv.Atoi(findParam(params, "x"))
			y, _ := strconv.Atoi(findParam(params, "y"))
			return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	})
	if err != nil {
		r.Err = err
		return r
	}
	defer plus.Close()
	store := photostore.New()
	pic, err := picasa.New(store)
	if err != nil {
		r.Err = err
		return r
	}
	defer pic.Close()

	calcMed, err := newAddPlusMediator(plus.Addr())
	if err != nil {
		r.Err = err
		return r
	}
	defer calcMed.Close()
	xmlMed, err := newFlickrMediator(casestudy.XMLRPCMediator(),
		&bind.XMLRPCBinder{Path: "/services/xmlrpc", Defs: casestudy.FlickrUsage().Messages}, pic.Addr())
	if err != nil {
		r.Err = err
		return r
	}
	defer xmlMed.Close()
	soapMed, err := newFlickrMediator(casestudy.SOAPMediator(),
		&bind.SOAPBinder{Path: "/services/soap"}, pic.Addr())
	if err != nil {
		r.Err = err
		return r
	}
	defer soapMed.Close()

	gw, err := gateway.New(gateway.Config{Routes: []gateway.RouteConfig{
		{Name: "calc", Match: gateway.Matcher{Class: gateway.ClassGIOP},
			Admission: gateway.AdmissionPolicy{MaxFlows: flowCap},
			Framer:    network.GIOPFramer{}, Target: calcMed},
		{Name: "xmlrpc", Match: gateway.Matcher{Class: gateway.ClassHTTP, PathPrefix: "/services/xmlrpc"},
			Framer: network.HTTPFramer{}, Target: xmlMed},
		{Name: "soap", Match: gateway.Matcher{Class: gateway.ClassHTTP, PathPrefix: "/services/soap"},
			Framer: network.HTTPFramer{}, Target: soapMed},
	}})
	if err != nil {
		r.Err = err
		return r
	}
	if err := gw.Start("127.0.0.1:0"); err != nil {
		r.Err = err
		return r
	}
	defer gw.Close()
	admin, err := observe.ServeAdmin("127.0.0.1:0", observe.AdminConfig{
		Registry: observe.GatewayRegistry(gw),
	})
	if err != nil {
		r.Err = err
		return r
	}
	defer admin.Close()

	// Soak: concurrent clients of all three protocols through the one
	// listener, while a pinned GIOP client invokes continuously and the
	// calc route is hot-swapped under it.
	var (
		wg       sync.WaitGroup
		pinnedWg sync.WaitGroup
		soakErrs = make(chan error, 16)
		pinned   atomic.Int64 // flows completed by the pinned client
		stop     = make(chan struct{})
	)
	pinnedWg.Add(1)
	go func() { // the pinned client that must survive the swap
		defer pinnedWg.Done()
		client, err := giop.Dial(gw.Addr(), "calc")
		if err != nil {
			soakErrs <- err
			return
		}
		defer client.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			results, err := client.Invoke("Add", giop.IntParam(20), giop.IntParam(22))
			if err != nil {
				soakErrs <- fmt.Errorf("pinned client: %w", err)
				return
			}
			if got := results[0].ValueString(); got != "42" {
				soakErrs <- fmt.Errorf("pinned client: Add = %s", got)
				return
			}
			pinned.Add(1)
		}
	}()
	const perProto = 4
	for i := 0; i < perProto; i++ {
		wg.Add(2)
		go func(n int) {
			defer wg.Done()
			c := xmlrpc.NewClient(gw.Addr(), "/services/xmlrpc")
			defer c.Close()
			v, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
				"text": "tree", "per_page": int64(1),
			})
			if err != nil {
				soakErrs <- fmt.Errorf("xmlrpc client: %w", err)
				return
			}
			if photos := v.(map[string]xmlrpc.Value)["photos"].([]xmlrpc.Value); len(photos) != 1 {
				soakErrs <- fmt.Errorf("xmlrpc photos = %d", len(photos))
			}
		}(i)
		go func(n int) {
			defer wg.Done()
			c := soap.NewClient(gw.Addr(), "/services/soap")
			defer c.Close()
			if _, err := c.Call(casestudy.FlickrSearch,
				soap.Param{Name: "api_key", Value: "k"},
				soap.Param{Name: "text", Value: "tree"},
				soap.Param{Name: "per_page", Value: "1"},
			); err != nil {
				soakErrs <- fmt.Errorf("soap client: %w", err)
			}
		}(i)
	}

	// waitPinned blocks until the pinned client has completed n flows,
	// surfacing the soak error instead of spinning forever if it died.
	waitPinned := func(n int64) error {
		deadline := time.Now().Add(10 * time.Second)
		for pinned.Load() < n {
			if time.Now().After(deadline) {
				select {
				case err := <-soakErrs:
					return err
				default:
				}
				return fmt.Errorf("pinned client stalled at %d flows (want %d)", pinned.Load(), n)
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}

	// Hot reload mid-soak: build the replacement, swap, drain the old.
	if err := waitPinned(5); err != nil { // make sure traffic is genuinely in flight
		r.Err = err
		return r
	}
	calcMed2, err := newAddPlusMediator(plus.Addr())
	if err != nil {
		r.Err = err
		return r
	}
	defer calcMed2.Close()
	oldTarget, err := gw.Swap("calc", calcMed2)
	if err != nil {
		r.Err = err
		return r
	}
	// The pinned client's established connection keeps flowing on the
	// swapped-out mediator; a fresh dial lands on the replacement.
	if err := waitPinned(pinned.Load() + 5); err != nil {
		r.Err = err
		return r
	}
	fresh, err := giop.Dial(gw.Addr(), "calc")
	if err != nil {
		r.Err = err
		return r
	}
	if _, err := fresh.Invoke("Add", giop.IntParam(20), giop.IntParam(22)); err != nil {
		fresh.Close()
		r.Err = fmt.Errorf("fresh client after swap: %w", err)
		return r
	}
	fresh.Close()
	if st := calcMed2.Stats(); st.Flows == 0 {
		r.Err = errors.New("replacement mediator served no flows after the swap")
		return r
	}
	// Stop the soak clients BEFORE draining: Shutdown harvests sessions
	// parked idle between flows by closing their keep-alive conns, so a
	// client that kept invoking would race the harvest.
	close(stop)
	pinnedWg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := oldTarget.(*engine.Mediator).Shutdown(ctx); err != nil {
		r.Err = fmt.Errorf("draining swapped-out mediator: %w", err)
		return r
	}
	wg.Wait()
	close(soakErrs)
	if err := <-soakErrs; err != nil {
		r.Err = err
		return r
	}
	if st := oldTarget.(*engine.Mediator).Stats(); st.Failures != 0 {
		r.Err = fmt.Errorf("old mediator failures = %d after drain, want 0", st.Failures)
		return r
	}

	// Shed phase: fill the calc route's flow cap with held connections,
	// then one more invocation must be refused with a GIOP system
	// exception — quickly, not by stalling.
	held := make([]*giop.Client, 0, flowCap)
	for i := 0; i < flowCap; i++ {
		c, err := giop.Dial(gw.Addr(), "calc")
		if err != nil {
			r.Err = err
			return r
		}
		held = append(held, c)
		if _, err := c.Invoke("Add", giop.IntParam(1), giop.IntParam(1)); err != nil {
			r.Err = fmt.Errorf("filling flow cap: %w", err)
			return r
		}
	}
	over, err := giop.Dial(gw.Addr(), "calc")
	if err != nil {
		r.Err = err
		return r
	}
	shedStart := time.Now()
	_, shedErr := over.Invoke("Add", giop.IntParam(1), giop.IntParam(1))
	shedLatency := time.Since(shedStart)
	over.Close()
	for _, c := range held {
		c.Close()
	}
	if shedErr == nil {
		r.Err = errors.New("over-cap invocation succeeded, want a shed")
		return r
	}
	if !strings.Contains(shedErr.Error(), "over capacity") {
		r.Err = fmt.Errorf("shed error %q does not carry the gateway's system exception", shedErr)
		return r
	}
	if shedLatency > 100*time.Millisecond {
		r.Err = fmt.Errorf("shed reject took %v, want a cheap refusal", shedLatency)
		return r
	}

	// Scrape the per-route counters over the wire.
	hc := &httpwire.Client{Addr: admin.Addr()}
	defer hc.Close()
	resp, err := hc.Get("/metrics")
	if err != nil {
		r.Err = fmt.Errorf("scrape /metrics: %w", err)
		return r
	}
	for _, want := range []string{
		`starlink_gateway_reloads_total{route="calc"} 1`,
		`starlink_gateway_shed_total{route="calc"} 1`,
		`starlink_gateway_sniffed_total{class="giop"}`,
		`starlink_gateway_sniffed_total{class="http"}`,
	} {
		if !strings.Contains(string(resp.Body), want) {
			r.Err = fmt.Errorf("/metrics missing %s", want)
			return r
		}
	}

	st := gw.Stats()
	var accepted, shed uint64
	for _, rt := range st.Routes {
		accepted += rt.Accepted
		shed += rt.Shed
	}
	r.Detail = fmt.Sprintf("3 protocols, 1 listener: %d conns routed by sniffing, %d flows through hot swap, %d shed in %v",
		accepted, pinned.Load(), shed, shedLatency.Round(time.Microsecond))
	return r
}

// GatewayPoint is one concurrency level of the gateway-overhead
// measurement: per-flow latency straight to a mediator's own listener
// vs through the sniffing front door.
type GatewayPoint struct {
	// Sessions is the number of concurrent client sessions.
	Sessions int `json:"sessions"`
	// DirectNsPerFlow and GatewayNsPerFlow are mean wall nanoseconds
	// per mediated flow against the direct resp. gateway-fronted
	// listener.
	DirectNsPerFlow  float64 `json:"direct_ns_per_flow"`
	GatewayNsPerFlow float64 `json:"gateway_ns_per_flow"`
	// OverheadPct is (gateway-direct)/direct in percent.
	OverheadPct float64 `json:"overhead_pct"`
}

// GatewayBench is the full gateway benchmark artifact
// (BENCH_gateway.json).
type GatewayBench struct {
	// Points are the per-concurrency overhead measurements.
	Points []GatewayPoint `json:"points"`
	// ShedNsMean is the mean nanoseconds an over-limit IIOP client
	// waits for its protocol-correct reject.
	ShedNsMean float64 `json:"shed_reject_ns_mean"`
}

// MeasureGatewayOverhead runs the GIOP Add -> SOAP Plus workload at
// each concurrency level against a directly-listening mediator and
// against an identical mediator behind the gateway, and measures the
// shed-reject latency. The benchharness -gateway flag writes this as
// BENCH_gateway.json.
func MeasureGatewayOverhead(sessionCounts []int, flowsPerSession int) (*GatewayBench, error) {
	plus, err := soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
		"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			x, _ := strconv.Atoi(findParam(params, "x"))
			y, _ := strconv.Atoi(findParam(params, "y"))
			return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	defer plus.Close()

	direct, err := newAddPlusMediator(plus.Addr())
	if err != nil {
		return nil, err
	}
	defer direct.Close()
	// newAddPlusMediator starts detached; give the direct baseline its
	// own listener.
	if err := direct.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	fronted, err := newAddPlusMediator(plus.Addr())
	if err != nil {
		return nil, err
	}
	defer fronted.Close()
	gw, err := gateway.New(gateway.Config{Routes: []gateway.RouteConfig{
		{Name: "calc", Match: gateway.Matcher{Class: gateway.ClassGIOP},
			Framer: network.GIOPFramer{}, Target: fronted},
	}})
	if err != nil {
		return nil, err
	}
	if err := gw.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	defer gw.Close()

	runOnce := func(addr string, sessions int) (time.Duration, error) {
		var wg sync.WaitGroup
		errs := make(chan error, sessions)
		start := time.Now()
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				client, err := giop.Dial(addr, "calc")
				if err != nil {
					errs <- err
					return
				}
				defer client.Close()
				for f := 0; f < flowsPerSession; f++ {
					if _, err := client.Invoke("Add", giop.IntParam(2), giop.IntParam(3)); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errs)
		if err := <-errs; err != nil {
			return 0, err
		}
		return elapsed / time.Duration(sessions*flowsPerSession), nil
	}
	// Best-of-N after a warmup run: scheduler noise on a shared box
	// swamps the per-flow delta, and the minimum is the measurement
	// least polluted by it.
	run := func(addr string, sessions int) (time.Duration, error) {
		best := time.Duration(0)
		for i := 0; i < 7; i++ {
			d, err := runOnce(addr, sessions)
			if err != nil {
				return 0, err
			}
			if i == 0 { // warmup: prime pools, codecs and the page cache
				continue
			}
			if best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}

	bench := &GatewayBench{}
	for _, sessions := range sessionCounts {
		d, err := run(direct.Addr(), sessions)
		if err != nil {
			return nil, err
		}
		g, err := run(gw.Addr(), sessions)
		if err != nil {
			return nil, err
		}
		bench.Points = append(bench.Points, GatewayPoint{
			Sessions:         sessions,
			DirectNsPerFlow:  float64(d.Nanoseconds()),
			GatewayNsPerFlow: float64(g.Nanoseconds()),
			OverheadPct:      100 * float64(g-d) / float64(d),
		})
	}

	// Shed-reject latency: a one-flow route saturated by a held client;
	// every further invocation measures dial + reject round-trip.
	shedMed, err := newAddPlusMediator(plus.Addr())
	if err != nil {
		return nil, err
	}
	defer shedMed.Close()
	capped, err := gateway.New(gateway.Config{Routes: []gateway.RouteConfig{
		{Name: "calc", Match: gateway.Matcher{Class: gateway.ClassGIOP},
			Admission: gateway.AdmissionPolicy{MaxFlows: 1},
			Framer:    network.GIOPFramer{}, Target: shedMed},
	}})
	if err != nil {
		return nil, err
	}
	if err := capped.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	defer capped.Close()
	holder, err := giop.Dial(capped.Addr(), "calc")
	if err != nil {
		return nil, err
	}
	defer holder.Close()
	if _, err := holder.Invoke("Add", giop.IntParam(1), giop.IntParam(1)); err != nil {
		return nil, err
	}
	const rejects = 50
	var total time.Duration
	for i := 0; i < rejects; i++ {
		c, err := giop.Dial(capped.Addr(), "calc")
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := c.Invoke("Add", giop.IntParam(1), giop.IntParam(1)); err == nil {
			c.Close()
			return nil, errors.New("over-cap invocation succeeded during shed measurement")
		}
		total += time.Since(start)
		c.Close()
	}
	bench.ShedNsMean = float64(total.Nanoseconds()) / rejects
	return bench, nil
}
