package harness

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"starlink/internal/automata"
	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/engine"
	"starlink/internal/protocol/giop"
	"starlink/internal/protocol/soap"
	"starlink/internal/testutil"
)

// newDeadlineMediator builds the GIOP Add -> SOAP Plus mediator used by
// the flow-deadline experiments, with the caller tweaking the engine
// config (budget, timeouts, retry) before it starts.
func newDeadlineMediator(target string, tweak func(*engine.Config)) (*engine.Mediator, error) {
	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		return nil, err
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		return nil, err
	}
	cfg := engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: target},
		},
		ExchangeTimeout: 5 * time.Second,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	med, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		med.Close()
		return nil, err
	}
	return med, nil
}

// leakTB adapts testutil.NoLeaks to harness use: experiments are plain
// functions, so a leak failure lands in an error instead of a
// *testing.T.
type leakTB struct{ err error }

func (l *leakTB) Helper() {}

func (l *leakTB) Errorf(format string, args ...any) {
	if l.err == nil {
		l.err = fmt.Errorf(format, args...)
	}
}

// E19 is the slow-service storm soak for flow-deadline budgets: churning
// clients hammer a mediator whose SOAP service stalls every exchange far
// past the per-flow budget, with retries enabled and a generous exchange
// timeout. This is exactly the stacked-timeout shape — without budgets
// every flow would burn attempts × ExchangeTimeout (plus backoff) before
// failing. With budgets every flow must fail within flow_deadline + ε,
// the exhaustion must be counted, and tearing the storm down must leave
// no hung goroutines parked on dials, pool waits, or backoff sleeps.
func E19() Result {
	r := Result{ID: "E19", Artifact: "flow-deadline storm soak"}
	const (
		budget   = 250 * time.Millisecond
		stall    = time.Second
		exchange = 5 * time.Second
		clients  = 8
		flows    = 3
		// Generous scheduler/dial slack on top of the budget; still far
		// below one ExchangeTimeout, let alone the stacked bound.
		ceiling = budget + 750*time.Millisecond
	)

	var (
		lt      leakTB
		slowest time.Duration
		total   int
		stats   engine.Stats
	)
	testutil.NoLeaks(&lt, func() {
		srv, err := soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
			"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
				time.Sleep(stall)
				x, _ := strconv.Atoi(findParam(params, "x"))
				y, _ := strconv.Atoi(findParam(params, "y"))
				return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
			},
		})
		if err != nil {
			r.Err = err
			return
		}
		defer srv.Close()
		med, err := newDeadlineMediator(srv.Addr(), func(cfg *engine.Config) {
			cfg.FlowDeadline = budget
			cfg.ExchangeTimeout = exchange
			cfg.Retry = &engine.RetryPolicy{Attempts: 3, Backoff: 5 * time.Millisecond}
		})
		if err != nil {
			r.Err = err
			return
		}
		defer med.Close()

		// Short-lived clients, as in E17: every flow is a fresh session, so
		// the storm exercises dial, checkout, and exchange under budget on
		// each iteration.
		var (
			wg    sync.WaitGroup
			mu    sync.Mutex
			first error
		)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				for f := 0; f < flows; f++ {
					client, err := giop.Dial(med.Addr(), "calc")
					if err != nil {
						mu.Lock()
						if first == nil {
							first = fmt.Errorf("client %d dial: %w", n, err)
						}
						mu.Unlock()
						return
					}
					start := time.Now()
					_, err = client.Invoke("Add", giop.IntParam(20), giop.IntParam(22))
					elapsed := time.Since(start)
					client.Close()
					mu.Lock()
					total++
					if elapsed > slowest {
						slowest = elapsed
					}
					if first == nil {
						if err == nil {
							first = fmt.Errorf("client %d flow %d succeeded against a %v stall", n, f, stall)
						} else if elapsed > ceiling {
							first = fmt.Errorf("client %d flow %d took %v, want <= %v (budget %v + slack)",
								n, f, elapsed, ceiling, budget)
						}
					}
					mu.Unlock()
				}
			}(c)
		}
		wg.Wait()
		stats = med.Stats()
		if first != nil {
			r.Err = first
		}
	})
	if r.Err != nil {
		return r
	}
	if lt.err != nil {
		r.Err = fmt.Errorf("storm teardown leaked: %w", lt.err)
		return r
	}
	if stats.DeadlineExceeded == 0 {
		r.Err = fmt.Errorf("DeadlineExceeded = 0 after %d budget-bounded failures", total)
		return r
	}
	r.Detail = fmt.Sprintf("%d flows vs %v stall: slowest failure %v (budget %v, stacked bound %v), %d deadline exhaustions, no leaks",
		total, stall, slowest.Round(time.Millisecond), budget, 4*exchange, stats.DeadlineExceeded)
	return r
}

// DeadlinePoint is one concurrency level of the deadline-overhead
// measurement: per-flow latency with flow budgets disabled vs armed
// with a budget generous enough never to trip.
type DeadlinePoint struct {
	// Sessions is the number of concurrent client sessions.
	Sessions int `json:"sessions"`
	// OffNsPerFlow and OnNsPerFlow are mean wall nanoseconds per
	// mediated flow with FlowDeadline disabled resp. armed.
	OffNsPerFlow float64 `json:"off_ns_per_flow"`
	OnNsPerFlow  float64 `json:"on_ns_per_flow"`
	// OverheadPct is (on-off)/off in percent.
	OverheadPct float64 `json:"overhead_pct"`
}

// DeadlineBench is the full deadline-overhead benchmark artifact
// (BENCH_deadline.json).
type DeadlineBench struct {
	// Points are the per-concurrency overhead measurements.
	Points []DeadlinePoint `json:"points"`
}

// MeasureDeadlineOverhead runs the GIOP Add -> SOAP Plus workload at
// each concurrency level against a mediator with flow budgets disabled
// (FlowDeadline < 0) and one with a generous budget armed — so the
// delta is pure budget machinery (stamping the deadline, clamping every
// SetDeadline and checkout to it, the remaining-budget checks in the
// retry loop) on the healthy path where nothing ever trips. The
// benchharness -deadline flag writes this as BENCH_deadline.json.
func MeasureDeadlineOverhead(sessionCounts []int, flowsPerSession int) (*DeadlineBench, error) {
	plus, err := soap.NewServer("127.0.0.1:0", "/soap", plusOperation)
	if err != nil {
		return nil, err
	}
	defer plus.Close()

	off, err := newDeadlineMediator(plus.Addr(), func(cfg *engine.Config) {
		cfg.FlowDeadline = -1
	})
	if err != nil {
		return nil, err
	}
	defer off.Close()
	on, err := newDeadlineMediator(plus.Addr(), func(cfg *engine.Config) {
		cfg.FlowDeadline = 30 * time.Second
	})
	if err != nil {
		return nil, err
	}
	defer on.Close()

	runOnce := func(addr string, sessions int) (time.Duration, error) {
		var wg sync.WaitGroup
		errs := make(chan error, sessions)
		start := time.Now()
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				client, err := giop.Dial(addr, "calc")
				if err != nil {
					errs <- err
					return
				}
				defer client.Close()
				for f := 0; f < flowsPerSession; f++ {
					if _, err := client.Invoke("Add", giop.IntParam(2), giop.IntParam(3)); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errs)
		if err := <-errs; err != nil {
			return 0, err
		}
		return elapsed / time.Duration(sessions*flowsPerSession), nil
	}
	// Best-of-N after a warmup run, as in MeasureBalanceOverhead: the
	// minimum is the measurement least polluted by scheduler noise.
	run := func(addr string, sessions int) (time.Duration, error) {
		best := time.Duration(0)
		for i := 0; i < 7; i++ {
			d, err := runOnce(addr, sessions)
			if err != nil {
				return 0, err
			}
			if i == 0 { // warmup: prime pools, codecs and the page cache
				continue
			}
			if best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}

	bench := &DeadlineBench{}
	for _, sessions := range sessionCounts {
		d, err := run(off.Addr(), sessions)
		if err != nil {
			return nil, err
		}
		b, err := run(on.Addr(), sessions)
		if err != nil {
			return nil, err
		}
		bench.Points = append(bench.Points, DeadlinePoint{
			Sessions:     sessions,
			OffNsPerFlow: float64(d.Nanoseconds()),
			OnNsPerFlow:  float64(b.Nanoseconds()),
			OverheadPct:  100 * float64(b-d) / float64(d),
		})
	}
	return bench, nil
}
