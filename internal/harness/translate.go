package harness

// Translation-overhead measurement (EXPERIMENTS.md E15): the γ MTL
// programs of the two case-study mediators are executed directly —
// interpreted tree-walk vs compiled fast path with a pooled Env — at
// several session concurrencies, and the per-execution wall time and
// heap allocation count are recorded. Network and codec time are
// deliberately excluded; this isolates exactly the translation cost the
// compiled pipeline targets.

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"starlink/internal/automata"
	"starlink/internal/casestudy"
	"starlink/internal/message"
	"starlink/internal/mtl"
)

// TranslatePoint is one measured configuration: a case study's γ
// programs run in one mode at one concurrency.
type TranslatePoint struct {
	// CaseStudy is "flickr" or "shopping".
	CaseStudy string `json:"case_study"`
	// Mode is "interpreted" or "compiled".
	Mode string `json:"mode"`
	// Sessions is the number of concurrent sessions driven.
	Sessions int `json:"sessions"`
	// Iterations is the per-session traversal count.
	Iterations int `json:"iterations_per_session"`
	// Programs is the number of γ programs per traversal.
	Programs int `json:"gamma_programs"`
	// NsPerOp is wall-clock nanoseconds per γ execution (aggregate
	// wall time over all concurrent sessions divided by executions, so
	// at higher concurrency it reflects throughput, not single-op
	// latency).
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per γ execution (global Mallocs
	// delta over executions; includes per-traversal environment setup,
	// which is part of what the pooled path eliminates).
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// TranslateReport is the full measurement written to
// BENCH_translate.json.
type TranslateReport struct {
	// Methodology records how the numbers were produced.
	Methodology string `json:"methodology"`
	// Points are the measurements, one per (case study, mode,
	// concurrency).
	Points []TranslatePoint `json:"points"`
	// AllocsReduction maps each case study to the fractional allocs/op
	// reduction of the compiled path at 1 session (0.42 = 42% fewer
	// allocations than the interpreter).
	AllocsReduction map[string]float64 `json:"allocs_reduction"`
}

// translateCase is one benchmark workload: a mediator's γ programs plus
// representative input messages for its source handles.
type translateCase struct {
	name   string
	merged *automata.Merged
	inputs func() map[string]*message.Message
}

func translateCases() []translateCase {
	return []translateCase{
		{name: "flickr", merged: casestudy.XMLRPCMediator(), inputs: flickrInputs},
		{name: "shopping", merged: casestudy.ShoppingMediator(), inputs: shoppingInputs},
	}
}

func prim(label, v string) *message.Field {
	return message.NewPrimitive(label, message.TypeString, v)
}

// flickrInputs seeds the XMLRPCMediator's source handles (state names
// follow the builder's m0..mN discipline): the search request and feed,
// the cache-answered getInfo request, the comments flow and the
// addComment exchange.
func flickrInputs() map[string]*message.Message {
	entry := func(id, title string) *message.Field {
		return message.NewStruct("entry",
			prim("id", id), prim("title", title),
			prim("author", "ayumi"), prim("src", "https://p.example/"+id),
		)
	}
	return map[string]*message.Message{
		"m1":  message.New("", prim("text", "shibuya"), prim("per_page", "8")),
		"m4":  message.New("", entry("p1", "crossing"), entry("p2", "tower"), entry("p3", "alley")),
		"m7":  message.New("", prim("photo_id", "p1")),
		"m10": message.New("", prim("photo_id", "p1")),
		"m13": message.New("",
			message.NewStruct("entry", prim("id", "c1"), prim("summary", "nice shot"), prim("author", "ken")),
			message.NewStruct("entry", prim("id", "c2"), prim("summary", "great light"), prim("author", "mio")),
		),
		"m16": message.New("", prim("photo_id", "p1"), prim("comment_text", "love it")),
		"m19": message.New("", message.NewStruct("entry", prim("id", "c9"))),
	}
}

// shoppingInputs seeds the ShoppingMediator's source handles: the
// catalog search request and result, the cache-answered product lookup
// and the checkout cart.
func shoppingInputs() map[string]*message.Message {
	item := func(sku, name, price string) *message.Field {
		return message.NewStruct("item",
			prim("sku", sku), prim("name", name),
			prim("price", price), prim("stock", "12"),
		)
	}
	return map[string]*message.Message{
		"m1": message.New("", prim("keywords", "espresso machine"), prim("max", "8")),
		"m4": message.New("", message.NewStruct("result",
			item("sku-1", "lever machine", "649.00"),
			item("sku-2", "burr grinder", "129.00"),
			item("sku-3", "tamper", "24.50"),
		)),
		"m7": message.New("", prim("sku", "sku-1")),
		"m10": message.New("", prim("customer", "c-42"),
			message.NewStruct("lines",
				message.NewStruct("line", prim("sku", "sku-1"), prim("qty", "1")),
				message.NewStruct("line", prim("sku", "sku-3"), prim("qty", "2")),
			)),
		"m13": message.New("", prim("id", "ord-7"), prim("total", "698.00")),
	}
}

// stripMTLComments mirrors the engine's pre-parse comment stripping.
func stripMTLComments(src string) string {
	lines := strings.Split(src, "\n")
	out := lines[:0]
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "#") {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// gammaPrograms parses and compiles every γ program of a merged
// automaton, in transition order.
func gammaPrograms(m *automata.Merged) ([]*mtl.Program, []*mtl.CompiledProgram, error) {
	handles := make([]string, len(m.States))
	for i, st := range m.States {
		handles[i] = st.Name
	}
	var progs []*mtl.Program
	var cprogs []*mtl.CompiledProgram
	for _, t := range m.Transitions {
		if t.Kind != automata.KindGamma {
			continue
		}
		p, err := mtl.Parse(stripMTLComments(t.MTL))
		if err != nil {
			return nil, nil, fmt.Errorf("γ %s->%s: %w", t.From, t.To, err)
		}
		cp, err := mtl.Compile(p, mtl.CompileOptions{Handles: handles})
		if err != nil {
			return nil, nil, fmt.Errorf("compile γ %s->%s: %w", t.From, t.To, err)
		}
		progs = append(progs, p)
		cprogs = append(cprogs, cp)
	}
	return progs, cprogs, nil
}

// runTranslate drives one (case, mode, concurrency) configuration and
// returns ns/op and allocs/op per γ execution.
func runTranslate(cs translateCase, sessions, iterations int, compiled bool) (float64, float64, error) {
	progs, cprogs, err := gammaPrograms(cs.merged)
	if err != nil {
		return 0, 0, err
	}
	states := cs.merged.States
	session := func() error {
		cache := &mtl.Cache{Limit: 128}
		ins := cs.inputs()
		if compiled {
			// Pooled path: one Env for the whole session, target
			// messages recycled across traversals — the engine's
			// steady-state behaviour.
			env := mtl.NewEnv(cache)
			bound := make([]*message.Message, len(states))
			for it := 0; it < iterations; it++ {
				env.Reset()
				for i, st := range states {
					if in, ok := ins[st.Name]; ok {
						env.Bind(st.Name, in)
						continue
					}
					msg := bound[i]
					if msg == nil {
						msg = message.New("")
						bound[i] = msg
					} else {
						msg.Name = ""
						msg.Fields = msg.Fields[:0]
					}
					env.Bind(st.Name, msg)
				}
				for _, cp := range cprogs {
					env.Host = ""
					if err := cp.Exec(env); err != nil {
						return err
					}
				}
			}
			return nil
		}
		// Interpreted baseline: a fresh Env and fresh target messages
		// per traversal — the engine's behaviour before the compiled
		// pipeline.
		for it := 0; it < iterations; it++ {
			env := mtl.NewEnv(cache)
			for _, st := range states {
				if in, ok := ins[st.Name]; ok {
					env.Bind(st.Name, in)
					continue
				}
				env.Bind(st.Name, message.New(""))
			}
			for _, p := range progs {
				env.Host = ""
				if err := p.Exec(env); err != nil {
					return err
				}
			}
		}
		return nil
	}

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := session(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	close(errs)
	for err := range errs {
		return 0, 0, err
	}
	ops := float64(sessions * iterations * len(progs))
	return float64(elapsed.Nanoseconds()) / ops, float64(ms1.Mallocs-ms0.Mallocs) / ops, nil
}

// MeasureTranslateOverhead measures interpreted vs compiled γ execution
// for both case studies at the given session concurrencies. iterations
// is the per-session traversal count (each traversal executes every γ
// program of the mediator once).
func MeasureTranslateOverhead(sessionCounts []int, iterations int) (*TranslateReport, error) {
	report := &TranslateReport{
		Methodology: "Direct γ-program execution, no network or codec time: each session " +
			"binds representative input messages, then runs every γ program of the mediator " +
			"per traversal. Interpreted mode allocates a fresh Env and fresh target messages " +
			"per traversal (the pre-compilation engine behaviour); compiled mode reuses one " +
			"pooled Env and recycled target messages (the current engine behaviour). " +
			"ns_per_op is aggregate wall time over executions; allocs_per_op is the global " +
			"heap-allocation (Mallocs) delta over executions. allocs_reduction compares " +
			"allocs/op at 1 session.",
		AllocsReduction: map[string]float64{},
	}
	base := map[string]float64{}
	for _, cs := range translateCases() {
		progs, _, err := gammaPrograms(cs.merged)
		if err != nil {
			return nil, err
		}
		for _, compiled := range []bool{false, true} {
			mode := "interpreted"
			if compiled {
				mode = "compiled"
			}
			for _, sessions := range sessionCounts {
				// Warm-up run absorbs one-time costs (lazy globals,
				// first-touch growth) outside the measured window.
				if _, _, err := runTranslate(cs, sessions, iterations/4+1, compiled); err != nil {
					return nil, err
				}
				ns, allocs, err := runTranslate(cs, sessions, iterations, compiled)
				if err != nil {
					return nil, err
				}
				report.Points = append(report.Points, TranslatePoint{
					CaseStudy: cs.name, Mode: mode, Sessions: sessions,
					Iterations: iterations, Programs: len(progs),
					NsPerOp: ns, AllocsPerOp: allocs,
				})
				if sessions == 1 {
					if !compiled {
						base[cs.name] = allocs
					} else if b := base[cs.name]; b > 0 {
						report.AllocsReduction[cs.name] = (b - allocs) / b
					}
				}
			}
		}
	}
	return report, nil
}
