package harness

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"starlink/internal/automata"
	"starlink/internal/backend"
	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/discovery"
	"starlink/internal/engine"
	"starlink/internal/protocol/giop"
	"starlink/internal/protocol/soap"
)

// newDiscoverMediator is newBackendMediator with discovery reconcilers
// attached: the engine owns their lifecycle (started after the sets,
// closed before them).
func newDiscoverMediator(sets map[string]*backend.Set, recs []*discovery.Reconciler,
	target string, retry *engine.RetryPolicy) (*engine.Mediator, error) {
	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		return nil, err
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		return nil, err
	}
	med, err := engine.New(engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: target},
		},
		Backends:        sets,
		Discovery:       recs,
		ExchangeTimeout: 5 * time.Second,
		Retry:           retry,
	})
	if err != nil {
		return nil, err
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		med.Close()
		return nil, err
	}
	return med, nil
}

// E18 soaks dynamic service discovery through a full membership churn
// arc with zero lost flows: a backend set seeded with one SOAP replica
// follows a hosts file through a reconciler while churning IIOP clients
// keep flowing. Two announced endpoints must be probed and admitted and
// take traffic; a withdrawn member must be drained and removed without
// failing an in-flight flow; and an endpoint that flaps inside the
// debounce window must be suppressed — never admitted, never probed
// into the balancer.
func E18() Result {
	r := Result{ID: "E18", Artifact: "discovery churn soak"}

	// Three live replicas of the same SOAP Plus service; only the first
	// is known at deploy time.
	srvs := make([]*soap.Server, 3)
	addrs := make([]string, 3)
	for i := range srvs {
		srv, err := soap.NewServer("127.0.0.1:0", "/soap", plusOperation)
		if err != nil {
			r.Err = err
			return r
		}
		defer srv.Close()
		srvs[i], addrs[i] = srv, srv.Addr()
	}
	// A fourth address nothing listens on: the flapping advertisement.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		r.Err = err
		return r
	}
	flapAddr := l.Addr().String()
	l.Close()

	hosts := filepath.Join(os.TempDir(), fmt.Sprintf("starlink-e18-%d.hosts", os.Getpid()))
	defer os.Remove(hosts)
	writeHosts := func(members ...string) error {
		body := ""
		for _, m := range members {
			body += m + "\n"
		}
		return os.WriteFile(hosts, []byte(body), 0o644)
	}
	if err := writeHosts(addrs[0]); err != nil {
		r.Err = err
		return r
	}

	set, err := backend.New("plus", []string{addrs[0]}, backend.Options{
		Policy:        backend.RoundRobin,
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  500 * time.Millisecond,
		FailThreshold: 2,
		Cooloff:       100 * time.Millisecond,
		MinLive:       1,
	})
	if err != nil {
		r.Err = err
		return r
	}
	src, err := discovery.NewFileSource(hosts)
	if err != nil {
		r.Err = err
		return r
	}
	// Tight hysteresis so the whole churn arc fits in an experiment; the
	// flap phase steps the reconciler with Poke so the window still
	// absorbs it deterministically.
	rec, err := discovery.New(set, discovery.Options{
		Source:   src,
		Refresh:  15 * time.Millisecond,
		Debounce: 30 * time.Millisecond,
		MinTTL:   50 * time.Millisecond,
		MinLive:  1,
	})
	if err != nil {
		src.Close()
		r.Err = err
		return r
	}
	med, err := newDiscoverMediator(map[string]*backend.Set{"plus": set},
		[]*discovery.Reconciler{rec}, "plus",
		&engine.RetryPolicy{Attempts: 3, Backoff: time.Millisecond})
	if err != nil {
		r.Err = err
		return r
	}
	defer med.Close()

	// Churning soak clients, as in E17: every session is a fresh
	// balancing decision, so membership changes become visible fast.
	var (
		wg       sync.WaitGroup
		flows    atomic.Int64
		stop     = make(chan struct{})
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	const clients = 6
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				client, err := giop.Dial(med.Addr(), "calc")
				if err != nil {
					fail(fmt.Errorf("client %d dial: %w", n, err))
					return
				}
				for f := 0; f < 3; f++ {
					results, err := client.Invoke("Add", giop.IntParam(20), giop.IntParam(22))
					if err != nil {
						client.Close()
						fail(fmt.Errorf("client %d: %w", n, err))
						return
					}
					if got := results[0].ValueString(); got != "42" {
						client.Close()
						fail(fmt.Errorf("client %d: Add = %s", n, got))
						return
					}
					flows.Add(1)
				}
				client.Close()
			}
		}(i)
	}
	soakErr := func() error {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr
	}
	waitFor := func(what string, cond func() bool) error {
		deadline := time.Now().Add(15 * time.Second)
		for !cond() {
			if err := soakErr(); err != nil {
				return err
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	}
	finish := func(err error) Result {
		close(stop)
		wg.Wait()
		if err == nil {
			err = soakErr()
		}
		r.Err = err
		return r
	}

	// Phase 1: baseline traffic on the seed replica.
	if err := waitFor("baseline traffic", func() bool {
		return flows.Load() >= 20
	}); err != nil {
		return finish(err)
	}

	// Phase 2: announce the other two replicas. Each must clear the
	// debounce window, pass an active probe, join the set and take
	// traffic.
	if err := writeHosts(addrs[0], addrs[1], addrs[2]); err != nil {
		return finish(err)
	}
	if err := waitFor("announced replicas admitted and serving", func() bool {
		for _, addr := range addrs[1:] {
			rs, ok := replicaSnap(med, "plus", addr)
			if !ok || !rs.Live || rs.Successes == 0 {
				return false
			}
		}
		return true
	}); err != nil {
		return finish(err)
	}

	// Phase 3: withdraw the third replica. The reconciler must drain its
	// in-flight picks and remove it — with the soak still at zero
	// failures — while the server itself stays up (a clean deregistration,
	// not an outage).
	if err := writeHosts(addrs[0], addrs[1]); err != nil {
		return finish(err)
	}
	if err := waitFor("withdrawn replica drained and removed", func() bool {
		if _, ok := replicaSnap(med, "plus", addrs[2]); ok {
			return false
		}
		return rec.Snapshot().Removes >= 1
	}); err != nil {
		return finish(err)
	}

	// Phase 4: a flapping advertisement — an unreachable endpoint that
	// appears and vanishes inside the debounce window. Poke steps the
	// reconciler so the flap is observed deterministically: one round
	// sees it arrive (pending), the next sees it gone before the window
	// ever cleared.
	if err := writeHosts(addrs[0], addrs[1], flapAddr); err != nil {
		return finish(err)
	}
	rec.Poke()
	if err := writeHosts(addrs[0], addrs[1]); err != nil {
		return finish(err)
	}
	rec.Poke()
	snap := rec.Snapshot()
	if snap.FlapsSuppressed == 0 {
		return finish(errors.New("flapping endpoint was not suppressed by the debounce window"))
	}
	if _, ok := replicaSnap(med, "plus", flapAddr); ok {
		return finish(fmt.Errorf("flapping endpoint %s was admitted to the set", flapAddr))
	}

	// Let the soak run a moment longer on the steady post-churn
	// membership before judging it.
	if err := waitFor("post-churn traffic", func() bool {
		return flows.Load() >= 200
	}); err != nil {
		return finish(err)
	}
	if res := finish(nil); res.Err != nil {
		return res
	}
	st := med.Stats()
	if st.Failures != 0 {
		r.Err = fmt.Errorf("client-visible failures = %d, want 0 across the churn", st.Failures)
		return r
	}
	snap = rec.Snapshot()
	switch {
	case snap.Adds < 2:
		r.Err = fmt.Errorf("adds = %d, want the 2 announced replicas", snap.Adds)
	case snap.Removes < 1:
		r.Err = fmt.Errorf("removes = %d, want the withdrawn replica", snap.Removes)
	case len(snap.Members) != 2:
		r.Err = fmt.Errorf("members = %v, want the 2 surviving replicas", snap.Members)
	default:
		r.Detail = fmt.Sprintf("%d flows, 0 lost; %d added, %d removed, %d flap(s) suppressed over %d resolutions",
			flows.Load(), snap.Adds, snap.Removes, snap.FlapsSuppressed, snap.Resolutions)
	}
	return r
}

// DiscoverPoint is one concurrency level of the discovery-overhead
// measurement: per-flow latency with a static backend set vs the same
// set driven by a file discovery source in steady state.
type DiscoverPoint struct {
	// Sessions is the number of concurrent client sessions.
	Sessions int `json:"sessions"`
	// StaticNsPerFlow and DiscoveredNsPerFlow are mean wall nanoseconds
	// per mediated flow against the static-membership resp.
	// discovery-driven mediator.
	StaticNsPerFlow     float64 `json:"static_ns_per_flow"`
	DiscoveredNsPerFlow float64 `json:"discovered_ns_per_flow"`
	// OverheadPct is (discovered-static)/static in percent.
	OverheadPct float64 `json:"overhead_pct"`
}

// DiscoverBench is the full discovery benchmark artifact
// (BENCH_discover.json).
type DiscoverBench struct {
	// Points are the per-concurrency overhead measurements.
	Points []DiscoverPoint `json:"points"`
}

// MeasureDiscoverOverhead runs the GIOP Add -> SOAP Plus workload at
// each concurrency level against a mediator balancing over a static
// backend set and against one whose identical set is driven by a file
// discovery source polling every 25ms — so the delta is the steady-state
// cost of the reconcile loop (resolve, diff, sighting bookkeeping)
// sharing the process with the data path. The benchharness -discover
// flag writes this as BENCH_discover.json.
func MeasureDiscoverOverhead(sessionCounts []int, flowsPerSession int) (*DiscoverBench, error) {
	plus, err := soap.NewServer("127.0.0.1:0", "/soap", plusOperation)
	if err != nil {
		return nil, err
	}
	defer plus.Close()

	newSet := func() (*backend.Set, error) {
		return backend.New("plus", []string{plus.Addr()}, backend.Options{
			Policy:        backend.PowerOfTwo,
			ProbeInterval: 50 * time.Millisecond,
		})
	}
	staticSet, err := newSet()
	if err != nil {
		return nil, err
	}
	static, err := newBackendMediator(map[string]*backend.Set{"plus": staticSet}, "plus", nil)
	if err != nil {
		return nil, err
	}
	defer static.Close()

	hosts := filepath.Join(os.TempDir(), fmt.Sprintf("starlink-bench-%d.hosts", os.Getpid()))
	defer os.Remove(hosts)
	if err := os.WriteFile(hosts, []byte(plus.Addr()+"\n"), 0o644); err != nil {
		return nil, err
	}
	discoveredSet, err := newSet()
	if err != nil {
		return nil, err
	}
	src, err := discovery.NewFileSource(hosts)
	if err != nil {
		return nil, err
	}
	rec, err := discovery.New(discoveredSet, discovery.Options{
		Source:  src,
		Refresh: 25 * time.Millisecond,
	})
	if err != nil {
		src.Close()
		return nil, err
	}
	discovered, err := newDiscoverMediator(map[string]*backend.Set{"plus": discoveredSet},
		[]*discovery.Reconciler{rec}, "plus", nil)
	if err != nil {
		return nil, err
	}
	defer discovered.Close()

	runOnce := func(addr string, sessions int) (time.Duration, error) {
		var wg sync.WaitGroup
		errs := make(chan error, sessions)
		start := time.Now()
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				client, err := giop.Dial(addr, "calc")
				if err != nil {
					errs <- err
					return
				}
				defer client.Close()
				for f := 0; f < flowsPerSession; f++ {
					if _, err := client.Invoke("Add", giop.IntParam(2), giop.IntParam(3)); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errs)
		if err := <-errs; err != nil {
			return 0, err
		}
		return elapsed / time.Duration(sessions*flowsPerSession), nil
	}
	bench := &DiscoverBench{}
	for _, sessions := range sessionCounts {
		// The static and discovered runs are interleaved in adjacent
		// pairs, so host-load drift hits both sides of each pair about
		// equally, and the point reported is the pair with the median
		// discovered/static ratio — a robust paired estimate where a
		// best-of-N minimum would chase a floor that itself drifts.
		type pair struct{ s, d time.Duration }
		var pairs []pair
		for i := 0; i < 16; i++ {
			s, err := runOnce(static.Addr(), sessions)
			if err != nil {
				return nil, err
			}
			d, err := runOnce(discovered.Addr(), sessions)
			if err != nil {
				return nil, err
			}
			if i == 0 { // warmup: prime pools, codecs and the page cache
				continue
			}
			pairs = append(pairs, pair{s, d})
		}
		sort.Slice(pairs, func(i, j int) bool {
			return float64(pairs[i].d)/float64(pairs[i].s) < float64(pairs[j].d)/float64(pairs[j].s)
		})
		med := pairs[len(pairs)/2]
		bench.Points = append(bench.Points, DiscoverPoint{
			Sessions:            sessions,
			StaticNsPerFlow:     float64(med.s.Nanoseconds()),
			DiscoveredNsPerFlow: float64(med.d.Nanoseconds()),
			OverheadPct:         100 * float64(med.d-med.s) / float64(med.s),
		})
	}
	return bench, nil
}
